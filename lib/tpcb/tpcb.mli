(** Modified TPC-B benchmark (Section 5.1).

    The database follows the TPC-B scaling rules: for each TPS of rated
    capacity, 100 000 accounts, 10 tellers and 1 branch — the paper's
    10 TPS configuration is 1 000 000 accounts, 100 tellers, 10 branches.
    Accounts, tellers and branches are primary B-trees (data in the
    tree); history is a fixed-length recno file. Each transaction
    withdraws a random amount from a random account, updating the
    account, its teller and its branch, and appends a history record.

    As in the paper: a single log (for the user-level system), a single
    centralized machine, and a single user (multiprogramming level 1). *)

type scale = { accounts : int; tellers : int; branches : int }

val scale_for_tps : int -> scale
(** TPC-B scaling rules; the paper uses [scale_for_tps 10]. *)

(** Which transaction system executes the workload. *)
type backend =
  | User of Libtp.t  (** LIBTP (runs on either file system) *)
  | Kernel of Ktxn.t  (** the embedded manager (LFS only) *)

type db
(** An opened TPC-B database (file handles plus scale). *)

val build :
  Clock.t -> Stats.t -> Config.t -> Vfs.t -> rng:Rng.t -> scale:scale -> db
(** Create and bulk-load the four relations under ["/tpcb"]
    non-transactionally, then flush the file system. Balances start at
    zero. *)

val open_db : Vfs.t -> scale:scale -> db
(** Re-open an existing database (after a remount). *)

val protect_all : db -> Ktxn.t -> unit
(** Mark the four relations transaction-protected (embedded backend). *)

type result = {
  txns : int;
  elapsed_s : float;  (** simulated seconds for the measured run *)
  tps : float;
  max_latency_s : float;  (** worst single-transaction latency *)
  latencies_s : float array;  (** per-transaction latencies, in order *)
}

val run :
  Clock.t -> Stats.t -> Config.t -> db -> backend -> rng:Rng.t -> n:int -> result
(** Execute [n] transactions and report simulated-time throughput.
    @raise Failure if a transaction cannot complete (the single-user
    configuration never conflicts). *)

val account_balance : Clock.t -> Stats.t -> Config.t -> db -> Vfs.t -> int -> int
(** Read one account's balance non-transactionally (for tests). *)

val check_consistency : Clock.t -> Stats.t -> Config.t -> db -> Vfs.t -> unit
(** Verify Σ account balances = Σ teller balances = Σ branch balances and
    that the history count matches the balances' provenance; raises
    [Failure] on violation. *)

val history_count : Clock.t -> Stats.t -> Config.t -> db -> Vfs.t -> int

val account_fd : db -> Vfs.fd
(** File handle of the account relation (used by the SCAN workload). *)

(** {1 Multi-user runs}

    The paper measures single-user (multiprogramming level 1) and notes
    that the configuration "is so disk-bound that increasing the
    multi-programming level increases throughput only marginally". This
    driver runs [mpl] interleaved transactions as cooperative processes:
    a lock conflict deschedules the process until the holder resolves, a
    deadlock aborts and restarts the requester. It exercises the lock
    managers under genuine contention. *)

type multi_result = {
  base : result;
  conflicts : int;  (** times a process blocked on a lock *)
  deadlocks : int;  (** transactions aborted by deadlock detection *)
  restarts : int;  (** transaction restarts (deadlock victims retried) *)
}

val run_multi :
  Clock.t ->
  Stats.t ->
  Config.t ->
  db ->
  backend ->
  rng:Rng.t ->
  n:int ->
  mpl:int ->
  multi_result
(** Run until [n] transactions have committed, [mpl] at a time.
    Legacy round-robin interleaving: steps run back-to-back on the
    shared clock and a blocked process is simply skipped — no simulated
    time passes while it waits. Superseded by {!run_sched} for timing
    studies; kept for lock-manager contention tests. *)

val run_sched :
  Clock.t ->
  Stats.t ->
  Config.t ->
  db ->
  backend ->
  rng:Rng.t ->
  n:int ->
  mpl:int ->
  multi_result
(** True multi-user run on the discrete-event scheduler attached to
    [clock] (see {!Sched}): [mpl] worker processes claim transactions
    from a shared counter, and every blocking point — lock waits,
    disk-queue reads, the group-commit rendezvous — parks the worker so
    others overlap with it. Latencies span begin to durable commit,
    including rendezvous waits. [conflicts] counts real lock blocks.

    All workers share the one history file. At page grain its tail page
    serializes committers through the commit flush (the hot-page problem
    the paper inherits from TPC-B); at record grain
    ([fs.lock_grain = `Record]) appenders lock only their own slot and
    committers overlap.
    @raise Invalid_argument if no scheduler is attached to [clock]. *)
