type scale = { accounts : int; tellers : int; branches : int }

let scale_for_tps tps =
  if tps <= 0 then invalid_arg "Tpcb.scale_for_tps: tps must be positive";
  { accounts = 100_000 * tps; tellers = 10 * tps; branches = tps }

type backend = User of Libtp.t | Kernel of Ktxn.t

type db = {
  scale : scale;
  acct : Vfs.fd;
  tell : Vfs.fd;
  br : Vfs.fd;
  hist : Vfs.fd;
}

(* Record formats: 100-byte balance records keyed by a 10-digit decimal
   id; 50-byte fixed history records. *)

let record_bytes = 100
let history_bytes = 50

let key10 id = Printf.sprintf "%010d" id

let balance_value balance =
  let head = Printf.sprintf "%020d" balance in
  head ^ String.make (record_bytes - String.length head) '.'

let parse_balance v = int_of_string (String.sub v 0 20)

let history_record ~account ~teller ~branch ~delta =
  let head = Printf.sprintf "%010d%05d%05d%+015d" account teller branch delta in
  Bytes.of_string (head ^ String.make (history_bytes - String.length head) '.')

let paths = ("/tpcb/account", "/tpcb/teller", "/tpcb/branch", "/tpcb/history")

let open_db (vfs : Vfs.t) ~scale =
  let pa, pt, pb, ph = paths in
  {
    scale;
    acct = vfs.Vfs.open_file pa;
    tell = vfs.Vfs.open_file pt;
    br = vfs.Vfs.open_file pb;
    hist = vfs.Vfs.open_file ph;
  }

let build clock stats cfg (vfs : Vfs.t) ~rng ~scale =
  ignore rng;
  let pa, pt, pb, ph = paths in
  vfs.Vfs.mkdir "/tpcb";
  List.iter (fun p -> ignore (vfs.Vfs.create p)) [ pa; pt; pb; ph ];
  let db = open_db vfs ~scale in
  let load fd n =
    let bt = Btree.attach clock stats cfg.Config.cpu (Pager.plain vfs fd) in
    for id = 0 to n - 1 do
      Btree.insert bt (key10 id) (balance_value 0)
    done
  in
  load db.acct scale.accounts;
  load db.tell scale.tellers;
  load db.br scale.branches;
  ignore
    (Recno.attach clock stats cfg.Config.cpu (Pager.plain vfs db.hist)
       ~reclen:history_bytes);
  vfs.Vfs.sync ();
  db

let protect_all db ktxn =
  ignore db;
  let pa, pt, pb, ph = paths in
  List.iter (fun p -> Ktxn.protect ktxn p) [ pa; pt; pb; ph ]

type result = {
  txns : int;
  elapsed_s : float;
  tps : float;
  max_latency_s : float;
  latencies_s : float array;
}

(* One TPC-B transaction: update account, teller and branch balances and
   append a history record, all under one transaction. *)
let execute clock stats cfg db backend ~account ~teller ~branch ~delta =
  let cpu = cfg.Config.cpu in
  let adjust tbl bt key =
    let balance =
      match Btree.find bt key with
      | Some v -> parse_balance v
      | None -> failwith ("TPC-B: missing " ^ tbl ^ " record " ^ key)
    in
    Btree.insert bt key (balance_value (balance + delta))
  in
  match backend with
  | User env ->
    let txn = Libtp.begin_txn env in
    let bt fd = Btree.attach clock stats cpu (Pager.wal env txn fd) in
    adjust "acct" (bt db.acct) (key10 account);
    adjust "tell" (bt db.tell) (key10 teller);
    adjust "br" (bt db.br) (key10 branch);
    let hist =
      Recno.attach clock stats cpu (Pager.wal env txn db.hist)
        ~reclen:history_bytes
    in
    ignore (Recno.append hist (history_record ~account ~teller ~branch ~delta));
    Libtp.commit env txn
  | Kernel k ->
    let txn = Ktxn.txn_begin k in
    let bt fd = Btree.attach clock stats cpu (Ktxn.pager k txn ~inum:fd) in
    adjust "acct" (bt db.acct) (key10 account);
    adjust "tell" (bt db.tell) (key10 teller);
    adjust "br" (bt db.br) (key10 branch);
    let hist =
      Recno.attach clock stats cpu (Ktxn.pager k txn ~inum:db.hist)
        ~reclen:history_bytes
    in
    ignore (Recno.append hist (history_record ~account ~teller ~branch ~delta));
    Ktxn.txn_commit k txn

let run clock stats cfg db backend ~rng ~n =
  Stats.declare stats "tpcb.txn";
  let latencies = Array.make n 0.0 in
  let t0 = Clock.now clock in
  for i = 0 to n - 1 do
    let start = Clock.now clock in
    let account = Rng.int rng db.scale.accounts in
    let teller = Rng.int rng db.scale.tellers in
    let branch = teller * db.scale.branches / db.scale.tellers in
    let delta = Rng.int rng 1_999_999 - 999_999 in
    execute clock stats cfg db backend ~account ~teller ~branch ~delta;
    let lat = Clock.now clock -. start in
    latencies.(i) <- lat;
    Stats.incr stats "tpcb.commits";
    Stats.observe stats "tpcb.txn" lat
  done;
  (* Any deferred group commit belongs to the measured run. *)
  (match backend with Kernel k -> Ktxn.flush_commits k | User _ -> ());
  let elapsed = Clock.now clock -. t0 in
  {
    txns = n;
    elapsed_s = elapsed;
    tps = (if elapsed > 0.0 then float_of_int n /. elapsed else 0.0);
    max_latency_s = Array.fold_left Float.max 0.0 latencies;
    latencies_s = latencies;
  }

(* Non-transactional inspection ------------------------------------------- *)

let sum_balances clock stats cfg vfs fd =
  let bt = Btree.attach clock stats cfg.Config.cpu (Pager.plain vfs fd) in
  let total = ref 0 in
  Btree.iter bt (fun _ v ->
      total := !total + parse_balance v;
      true);
  !total

let account_balance clock stats cfg db vfs id =
  let bt = Btree.attach clock stats cfg.Config.cpu (Pager.plain vfs db.acct) in
  match Btree.find bt (key10 id) with
  | Some v -> parse_balance v
  | None -> failwith "TPC-B: no such account"

(* A history slot whose first byte is NUL is a hole: at record grain the
   recno record count moves through a redo-only system write, so an
   aborted append leaves its allocated slot zeroed. Committed records
   always start with a digit. *)
let is_hole data = Bytes.get data 0 = '\000'

let iter_history clock stats cfg db vfs f =
  let hist =
    Recno.attach clock stats cfg.Config.cpu (Pager.plain vfs db.hist)
      ~reclen:history_bytes
  in
  Recno.iter hist (fun _ data ->
      if not (is_hole data) then f data;
      true)

let history_count clock stats cfg db vfs =
  let n = ref 0 in
  iter_history clock stats cfg db vfs (fun _ -> incr n);
  !n

let check_consistency clock stats cfg db vfs =
  let a = sum_balances clock stats cfg vfs db.acct in
  let t = sum_balances clock stats cfg vfs db.tell in
  let b = sum_balances clock stats cfg vfs db.br in
  if a <> t || t <> b then
    failwith
      (Printf.sprintf "TPC-B inconsistent: accounts %d, tellers %d, branches %d"
         a t b);
  (* Every committed transaction moved one delta into each relation and
     appended one history record; replaying history must reproduce the
     balance sums. *)
  let from_history = ref 0 in
  iter_history clock stats cfg db vfs (fun data ->
      from_history := !from_history + int_of_string (Bytes.sub_string data 20 15));
  if !from_history <> a then
    failwith
      (Printf.sprintf "TPC-B history sum %d disagrees with balances %d"
         !from_history a)

let account_fd db = db.acct

(* Multi-user driver ------------------------------------------------------- *)

type multi_result = {
  base : result;
  conflicts : int;
  deadlocks : int;
  restarts : int;
}

type handle = Hu of Libtp.txn | Hk of Ktxn.txn

type step = Sacct | Steller | Sbranch | Shist | Scommit

type proc = {
  pid : int;
  mutable handle : handle option;
  mutable steps : step list;
  mutable account : int;
  mutable teller : int;
  mutable branch : int;
  mutable delta : int;
  mutable blocked : bool;
  mutable t_begin : float; (* simulated time this attempt's txn began *)
}

(* Scheduler-based multi-user driver: [mpl] worker processes claim
   transactions from a shared counter and run the ordinary [execute]
   path; blocking (lock waits, disk-queue reads, the group-commit
   rendezvous) parks the worker's process, so workers genuinely overlap.
   Parameter draws come from the shared [rng] stream — with the
   scheduler's deterministic tie-breaking, a seeded run is
   reproducible.

   The history append is TPC-B's built-in hotspot: every transaction
   extends the same tail page, and under page-grain 2PL that lock is
   held through the commit flush, so at most one committer can ever be
   in flight and group commit degenerates to batches of one. Record
   granularity ([fs.lock_grain = `Record]) is the real fix: appenders
   lock only their own slot, so committers overlap on the single shared
   history file. *)
let run_sched clock stats cfg db backend ~rng ~n ~mpl =
  if mpl <= 0 then invalid_arg "Tpcb.run_sched: mpl must be positive";
  let sched =
    match Sched.of_clock clock with
    | Some s -> s
    | None -> invalid_arg "Tpcb.run_sched: no scheduler attached to the clock"
  in
  Stats.declare stats "tpcb.txn";
  let blocks () =
    Stats.count stats "ktxn.lock_blocks" + Stats.count stats "txn.lock_blocks"
  in
  let blocks0 = blocks () in
  let deadlocks = ref 0 and restarts = ref 0 in
  let latencies = ref [] in
  let issued = ref 0 and committed = ref 0 in
  let t0 = Clock.now clock in
  let worker () =
    while !issued < n do
      incr issued;
      let rec attempt () =
        let account = Rng.int rng db.scale.accounts in
        let teller = Rng.int rng db.scale.tellers in
        let branch = teller * db.scale.branches / db.scale.tellers in
        let delta = Rng.int rng 1_999_999 - 999_999 in
        let start = Clock.now clock in
        match
          execute clock stats cfg db backend ~account ~teller ~branch ~delta
        with
        | () ->
          incr committed;
          let lat = Clock.now clock -. start in
          latencies := lat :: !latencies;
          Stats.incr stats "tpcb.commits";
          Stats.observe stats "tpcb.txn" lat
        | exception (Libtp.Deadlock_abort _ | Ktxn.Deadlock_abort _) ->
          incr deadlocks;
          incr restarts;
          Stats.incr stats "tpcb.deadlocks";
          Stats.incr stats "tpcb.restarts";
          attempt ()
      in
      attempt ()
    done
  in
  for _ = 1 to mpl do
    Sched.spawn sched worker
  done;
  Sched.run sched;
  (* The last batch's rendezvous completes inside [run] (its timeout
     process fires while the committers are parked); this is a safety
     net only. *)
  (match backend with Kernel k -> Ktxn.flush_commits k | User _ -> ());
  let elapsed = Clock.now clock -. t0 in
  let latencies_s = Array.of_list (List.rev !latencies) in
  {
    base =
      {
        txns = !committed;
        elapsed_s = elapsed;
        tps =
          (if elapsed > 0.0 then float_of_int !committed /. elapsed else 0.0);
        max_latency_s = Array.fold_left Float.max 0.0 latencies_s;
        latencies_s;
      };
    conflicts = blocks () - blocks0;
    deadlocks = !deadlocks;
    restarts = !restarts;
  }

let run_multi clock stats cfg db backend ~rng ~n ~mpl =
  if mpl <= 0 then invalid_arg "Tpcb.run_multi: mpl must be positive";
  Stats.declare stats "tpcb.txn";
  let cpu = cfg.Config.cpu in
  let conflicts = ref 0 and deadlocks = ref 0 and restarts = ref 0 in
  let latencies = ref [] in
  let committed = ref 0 in
  let new_params p =
    p.account <- Rng.int rng db.scale.accounts;
    p.teller <- Rng.int rng db.scale.tellers;
    p.branch <- p.teller * db.scale.branches / db.scale.tellers;
    p.delta <- Rng.int rng 1_999_999 - 999_999;
    p.steps <- [ Sacct; Steller; Sbranch; Shist; Scommit ]
  in
  let procs =
    Array.init mpl (fun pid ->
        let p =
          {
            pid;
            handle = None;
            steps = [];
            account = 0;
            teller = 0;
            branch = 0;
            delta = 0;
            blocked = false;
            t_begin = 0.0;
          }
        in
        new_params p;
        p)
  in
  let begin_txn () =
    match backend with
    | User env -> Hu (Libtp.begin_txn env)
    | Kernel k -> Hk (Ktxn.txn_begin k)
  in
  let adjust h fd key =
    let bt =
      match (backend, h) with
      | User env, Hu txn -> Btree.attach clock stats cpu (Pager.wal env txn fd)
      | Kernel k, Hk txn -> Btree.attach clock stats cpu (Ktxn.pager k txn ~inum:fd)
      | _ -> assert false
    in
    let balance =
      match Btree.find bt key with
      | Some v -> parse_balance v
      | None -> failwith ("TPC-B: missing record " ^ key)
    in
    fun delta -> Btree.insert bt key (balance_value (balance + delta))
  in
  let append_hist h p =
    let rn =
      match (backend, h) with
      | User env, Hu txn ->
        Recno.attach clock stats cpu (Pager.wal env txn db.hist)
          ~reclen:history_bytes
      | Kernel k, Hk txn ->
        Recno.attach clock stats cpu (Ktxn.pager k txn ~inum:db.hist)
          ~reclen:history_bytes
      | _ -> assert false
    in
    ignore
      (Recno.append rn
         (history_record ~account:p.account ~teller:p.teller ~branch:p.branch
            ~delta:p.delta))
  in
  let commit h =
    match (backend, h) with
    | User env, Hu txn -> Libtp.commit env txn
    | Kernel k, Hk txn -> Ktxn.txn_commit k txn
    | _ -> assert false
  in
  (* Run one step of process [p]; returns whether any lock was released
     (a commit, or a deadlock abort), which unblocks waiters. *)
  let step p =
    let h =
      match p.handle with
      | Some h -> h
      | None ->
        let h = begin_txn () in
        p.handle <- Some h;
        p.t_begin <- Clock.now clock;
        h
    in
    match p.steps with
    | [] -> false
    | s :: rest -> (
      match
        (match s with
        | Sacct -> (adjust h db.acct (key10 p.account)) p.delta
        | Steller -> (adjust h db.tell (key10 p.teller)) p.delta
        | Sbranch -> (adjust h db.br (key10 p.branch)) p.delta
        | Shist -> append_hist h p
        | Scommit -> commit h)
      with
      | () ->
        p.steps <- rest;
        p.blocked <- false;
        if s = Scommit then begin
          incr committed;
          let lat = Clock.now clock -. p.t_begin in
          latencies := lat :: !latencies;
          Stats.incr stats "tpcb.commits";
          Stats.observe stats "tpcb.txn" lat;
          p.handle <- None;
          new_params p;
          true
        end
        else false
      | exception (Libtp.Conflict _ | Ktxn.Conflict _) ->
        incr conflicts;
        Stats.incr stats "tpcb.conflicts";
        p.blocked <- true;
        Cpu.charge clock stats cpu Cpu.Context_switch;
        false
      | exception (Libtp.Deadlock_abort _ | Ktxn.Deadlock_abort _) ->
        incr deadlocks;
        incr restarts;
        Stats.incr stats "tpcb.deadlocks";
        Stats.incr stats "tpcb.restarts";
        p.handle <- None;
        new_params p;
        p.blocked <- false;
        true)
  in
  let t0 = Clock.now clock in
  let stuck_rounds = ref 0 in
  while !committed < n do
    let progressed = ref false in
    let released = ref false in
    Array.iter
      (fun p ->
        if (not p.blocked) || !released then begin
          if p.blocked then p.blocked <- false;
          if step p then released := true;
          progressed := true
        end)
      procs;
    if not !progressed then begin
      (* Everyone is blocked: wake all and retry (the holder's commit will
         have released by now, or a deadlock will fire on retry). *)
      Array.iter (fun p -> p.blocked <- false) procs;
      incr stuck_rounds;
      if !stuck_rounds > 1000 then failwith "Tpcb.run_multi: no progress"
    end
    else stuck_rounds := 0
  done;
  (* Quiesce: abort the transactions still in flight so the run leaves
     only committed state behind. *)
  Array.iter
    (fun p ->
      match (p.handle, backend) with
      | Some (Hu txn), User env ->
        Libtp.abort env txn;
        p.handle <- None
      | Some (Hk txn), Kernel k ->
        Ktxn.txn_abort k txn;
        p.handle <- None
      | Some _, _ -> assert false
      | None, _ -> ())
    procs;
  (match backend with Kernel k -> Ktxn.flush_commits k | User _ -> ());
  let elapsed = Clock.now clock -. t0 in
  let latencies_s = Array.of_list (List.rev !latencies) in
  {
    base =
      {
        txns = !committed;
        elapsed_s = elapsed;
        tps = (if elapsed > 0.0 then float_of_int !committed /. elapsed else 0.0);
        max_latency_s = Array.fold_left Float.max 0.0 latencies_s;
        latencies_s;
      };
    conflicts = !conflicts;
    deadlocks = !deadlocks;
    restarts = !restarts;
  }
