(** Operating-system buffer cache.

    Frames are keyed by [(file, logical block)] — not by physical address,
    because in a log-structured file system a block's physical address
    changes on every write; the mapping to disk addresses belongs to the
    owning file system, which supplies the {!set_writeback} hook used when
    a dirty victim must be evicted.

    Replacement is strict LRU over unpinned frames. Frames owned by an
    in-kernel transaction ([txn >= 0]) are never evicted or written back
    behind the transaction manager's back: the paper's implementation
    holds all of a transaction's dirty buffers in memory until commit
    (Section 4.5, restriction 1). Each frame also remembers when it was
    first dirtied so the 30-second syncer can find delayed writes, and a
    sequence number of its last modification so a user-space cleaner can
    detect "recently modified" blocks (Section 5.4). *)

type t

type frame = private {
  file : int;  (** owning inode number *)
  lblock : int;  (** logical block within the file *)
  data : bytes;  (** exactly one block; mutated in place *)
  mutable dirty : bool;
  mutable pins : int;
  mutable dirtied_at : float;  (** clock time of the first dirtying *)
  mutable modseq : int;  (** cache-wide sequence of last modification *)
  mutable txn : int;  (** owning kernel transaction id, or -1 *)
  mutable prev : frame;
  mutable next : frame;
  mutable resident : bool;
}

exception Cache_full
(** Raised when every frame is pinned or transaction-owned and a new
    block must be brought in. *)

val create :
  Clock.t -> Stats.t -> Config.cpu -> capacity:int -> t

val set_writeback : t -> (frame -> unit) -> unit
(** [set_writeback t f] installs the file system's writeback routine,
    called when a dirty, unowned victim is evicted. [f] must persist the
    frame's contents; the cache marks the frame clean afterwards. *)

val capacity : t -> int
val resident : t -> int

val lookup : t -> file:int -> lblock:int -> frame option
(** Cache probe; charges one buffer lookup of CPU and refreshes LRU. *)

val insert : t -> file:int -> lblock:int -> bytes -> frame
(** Bring a block into the cache (evicting if needed) and return its
    frame. The byte contents are copied in. Any previous frame for the
    same key is replaced; if it was dirty its contents are written back
    through the {!set_writeback} hook first, never silently discarded.
    @raise Invalid_argument if the previous frame is pinned or owned by
    a kernel transaction.
    @raise Cache_full if no frame can be evicted. *)

val mark_dirty : t -> frame -> unit
(** Flag the frame as containing unwritten data and bump [modseq]. *)

val mark_clean : t -> frame -> unit

val pin : frame -> unit
val unpin : frame -> unit

val set_txn : t -> frame -> int -> unit
(** Attach the frame to kernel transaction [txn] ([-1] releases it). *)

val invalidate : t -> frame -> unit
(** Drop the frame without writing it back (transaction abort). *)

val dirty_frames : t -> ?file:int -> unit -> frame list
(** Dirty frames (optionally of one file), oldest-dirtied first. Frames
    owned by a transaction are excluded — they are not eligible for
    writeback until their transaction commits. *)

val txn_frames : t -> int -> frame list
(** All frames owned by kernel transaction [txn]. *)

val file_frames : t -> int -> frame list

val iter : t -> (frame -> unit) -> unit

val modseq : t -> int
(** Current modification sequence number (monotone). *)
