
type frame = {
  file : int;
  lblock : int;
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  mutable dirtied_at : float;
  mutable modseq : int;
  mutable txn : int;
  mutable prev : frame;
  mutable next : frame;
  mutable resident : bool;
}

exception Cache_full

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cpu : Config.cpu;
  cap : int;
  tbl : (int * int, frame) Hashtbl.t;
  lru : frame; (* sentinel of a cyclic list; [lru.next] is least recent *)
  mutable writeback : frame -> unit;
  mutable seq : int;
}

let make_sentinel () =
  let rec s =
    {
      file = -1;
      lblock = -1;
      data = Bytes.empty;
      dirty = false;
      pins = 0;
      dirtied_at = 0.0;
      modseq = 0;
      txn = -1;
      prev = s;
      next = s;
      resident = false;
    }
  in
  s

let create clock stats cpu ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    clock;
    stats;
    cpu;
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    lru = make_sentinel ();
    writeback = (fun _ -> failwith "Cache: writeback hook not installed");
    seq = 0;
  }

let set_writeback t f = t.writeback <- f
let capacity t = t.cap
let resident t = Hashtbl.length t.tbl
let modseq t = t.seq

let unlink f =
  f.prev.next <- f.next;
  f.next.prev <- f.prev;
  f.prev <- f;
  f.next <- f

(* Insert just before the sentinel: most recently used end. *)
let push_mru t f =
  f.prev <- t.lru.prev;
  f.next <- t.lru;
  t.lru.prev.next <- f;
  t.lru.prev <- f

let touch t f =
  unlink f;
  push_mru t f

let lookup t ~file ~lblock =
  Cpu.charge t.clock t.stats t.cpu Cpu.Buffer_lookup;
  match Hashtbl.find_opt t.tbl (file, lblock) with
  | Some f ->
    Stats.incr t.stats "cache.hits";
    touch t f;
    Some f
  | None ->
    Stats.incr t.stats "cache.misses";
    None

let mark_clean _t f = f.dirty <- false

let drop t f =
  unlink f;
  Hashtbl.remove t.tbl (f.file, f.lblock);
  f.resident <- false

let pin f = f.pins <- f.pins + 1

let unpin f =
  if f.pins <= 0 then invalid_arg "Cache.unpin: frame not pinned";
  f.pins <- f.pins - 1

let evict_one t =
  (* Walk from the LRU end for the first evictable frame. *)
  let rec find f =
    if f == t.lru then raise Cache_full
    else if f.pins = 0 && f.txn < 0 then f
    else find f.next
  in
  let victim = find t.lru.next in
  if victim.dirty then begin
    Stats.incr t.stats "cache.evict_dirty";
    (* Pin across the writeback: under the scheduler the hook can block
       on the disk and yield, and no other fiber may pick this victim
       (pins > 0 excludes it from the walk above) or drop it from the
       cyclic list while its bytes are in flight. *)
    let seq = victim.modseq in
    pin victim;
    Fun.protect
      ~finally:(fun () -> unpin victim)
      (fun () -> t.writeback victim);
    (* Only mark clean if nobody re-dirtied the frame while the
       writeback was parked — a newer modification is not on disk. *)
    if victim.modseq = seq then victim.dirty <- false
  end
  else Stats.incr t.stats "cache.evict_clean";
  (* Re-check after the potential yield: the victim may have been
     invalidated, pinned or re-dirtied by another fiber meanwhile. If it
     is no longer droppable the caller's capacity loop simply evicts
     another frame. *)
  if victim.resident && victim.pins = 0 && not victim.dirty then drop t victim

let insert t ~file ~lblock data =
  (match Hashtbl.find_opt t.tbl (file, lblock) with
  | Some old ->
    if old.pins > 0 || old.txn >= 0 then
      invalid_arg "Cache.insert: replacing a pinned or transaction-owned frame";
    if old.dirty then begin
      (* Replacing a dirty frame must not lose its bytes: push them to
         the backing store first (the hook may clean other frames too,
         hence the re-checks below). *)
      Stats.incr t.stats "cache.insert_writeback";
      let seq = old.modseq in
      pin old;
      Fun.protect ~finally:(fun () -> unpin old) (fun () -> t.writeback old);
      if old.modseq = seq then old.dirty <- false
    end;
    if old.resident then drop t old
  | None -> ());
  while Hashtbl.length t.tbl >= t.cap do
    evict_one t
  done;
  let f =
    {
      file;
      lblock;
      data = Bytes.copy data;
      dirty = false;
      pins = 0;
      dirtied_at = 0.0;
      modseq = 0;
      txn = -1;
      prev = t.lru;
      next = t.lru;
      resident = true;
    }
  in
  Hashtbl.add t.tbl (file, lblock) f;
  push_mru t f;
  f

let mark_dirty t f =
  if not f.resident then invalid_arg "Cache.mark_dirty: frame not resident";
  if not f.dirty then begin
    f.dirty <- true;
    f.dirtied_at <- Clock.now t.clock
  end;
  t.seq <- t.seq + 1;
  f.modseq <- t.seq

let set_txn _t f txn = f.txn <- txn

let invalidate t f = if f.resident then drop t f

let fold t acc0 g =
  let rec go f acc = if f == t.lru then acc else go f.next (g acc f) in
  go t.lru.next acc0

let dirty_frames t ?file () =
  let keep f =
    f.dirty && f.txn < 0
    && match file with None -> true | Some inum -> f.file = inum
  in
  fold t [] (fun acc f -> if keep f then f :: acc else acc)
  |> List.sort (fun a b -> Float.compare a.dirtied_at b.dirtied_at)

let txn_frames t txn = fold t [] (fun acc f -> if f.txn = txn then f :: acc else acc)

let file_frames t inum =
  fold t [] (fun acc f -> if f.file = inum then f :: acc else acc)

let iter t g = fold t () (fun () f -> g f)
