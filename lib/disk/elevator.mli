(** Disk request scheduling policies.

    The read-optimized file system's 30-second syncer does not issue its
    delayed writes in dirty order: they are sorted into the disk queue
    (Section 5.1: "sorted in the disk queue with all other I/O"). This
    module provides the orderings as pure functions over request lists so
    they can be unit-tested independently of the device. *)

type policy =
  | Fcfs  (** issue in arrival order *)
  | Elevator
      (** ascending from the current head position, then wrap to the
          lowest remaining request (C-LOOK) *)

val order : policy -> head:int -> (int * 'a) list -> (int * 'a) list
(** [order policy ~head reqs] returns [reqs] in service order. Requests
    are [(block, payload)] pairs; payloads are carried along untouched. *)
