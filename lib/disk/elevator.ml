type policy = Fcfs | Elevator

let order policy ~head reqs =
  match policy with
  | Fcfs -> reqs
  | Elevator ->
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) reqs
    in
    let ahead, behind = List.partition (fun (b, _) -> b >= head) sorted in
    ahead @ behind
