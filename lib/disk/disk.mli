(** Simulated block device.

    The device is a byte-addressable image plus a service-time model with
    a tracked head position: each request pays

    - a seek, computed from the cylinder distance between the head and the
      target with a square-root curve anchored at the configured
      single-cylinder and full-stroke times;
    - half a rotation of latency (the deterministic expectation);
    - transfer time proportional to bytes moved.

    Sequential multi-block transfers ({!read_run} / {!write_run}) pay the
    positioning cost once and then stream at media rate — this asymmetry
    between one large sequential I/O and many small random I/Os is the
    entire physical basis of the paper's results (Section 2).

    Reads and writes move real bytes: the image is the durable truth that
    crash-recovery tests re-mount. *)

type t

exception Injected_crash
(** Raised from inside a write when the armed {!injector} cuts the power:
    the blocks the injector admitted are on the platter, the rest of the
    request (and everything after it) is lost. *)

type injector = {
  on_write : blkno:int -> nblocks:int -> int;
      (** Consulted once per write request, after service time is
          charged. Returns how many leading blocks of the request
          actually persist; anything less than [nblocks] tears the
          request at that block boundary and raises
          {!Injected_crash}. *)
  on_read : blkno:int -> nblocks:int -> bool;
      (** Consulted after each read; [true] injects one transient error:
          the device retries (a full revolution of latency and a
          ["disk.read_retries"] stat) and asks again. The injector must
          eventually answer [false] for the same request. *)
}

val create : ?prefix:string -> Clock.t -> Stats.t -> Config.disk -> t
(** A zero-filled device with the head parked at block 0. [Clock] and
    [Stats] may be shared with other components of the same machine.
    [prefix] (default ["disk"]) names this spindle's stat keys
    ([<prefix>.busy], [<prefix>.seek], ...), so the members of a
    multi-disk set report per-disk counters and histograms. Queued
    (sorted-write) seeks are recorded under [<prefix>.seek.queued],
    separate from the cold-seek histogram [<prefix>.seek]. *)

val set_injector : t -> injector option -> unit
(** Arm or disarm fault injection. [None] restores fault-free service.
    {!peek}/{!poke} bypass the injector (they model inspection of the
    platter, not I/O). *)

val nblocks : t -> int
val block_size : t -> int

val read : t -> int -> bytes
(** [read t blkno] services a one-block read and returns a fresh copy of
    the block's contents.
    @raise Invalid_argument on an out-of-range block number. *)

val read_async : t -> int -> bytes
(** Like {!read}, but when a {!Sched} scheduler is attached to the
    clock and the caller runs inside a process, the request joins a live
    device queue: a server process picks requests by C-LOOK elevator
    order from the current head position, holds the device for the
    service time while other processes run, then wakes the submitter.
    Block contents are captured at submit time — only the timing is
    asynchronous. Outside a scheduler this is exactly {!read}. *)

val write : t -> int -> bytes -> unit
(** [write t blkno data] services a one-block write. [data] must be
    exactly one block long. *)

val queue_depth : t -> int
(** Outstanding {!read_async} requests at this spindle, including the
    one being served. Zero whenever no scheduler process is waiting on
    the arm — the load signal the adaptive LFS cleaner backs off on. *)

val read_run : t -> int -> int -> bytes
(** [read_run t blkno n] reads [n] consecutive blocks as one sequential
    request, returning their concatenation. *)

val write_run : t -> int -> bytes -> unit
(** [write_run t blkno data] writes [data] (a whole number of blocks) as
    one sequential request starting at [blkno]. Used by the LFS segment
    writer: one seek, one rotational delay, then pure streaming. *)

val write_queued : t -> int -> bytes -> unit
(** A delayed write issued from a sorted disk queue. Because the
    scheduler orders these among the other traffic, positioning is much
    cheaper than a cold random write: the seek is charged at a quarter
    and the rotational delay at half. The resulting ~10 ms per 4 KB page
    (≈ 40 % of media bandwidth) matches the sorted-write ceiling the
    paper cites from the disk-scheduling study it references
    (Section 2). Used by the read-optimized file system's syncer. *)

val head : t -> int
(** Current head position (block number), exposed for scheduler tests. *)

val peek : t -> int -> bytes
(** Read a block {e without} charging any service time or moving the
    head. For consistency checkers and tests only. *)

val poke : t -> int -> bytes -> unit
(** Write a block without charging time. For test setup only. *)

val service_time : t -> int -> nblocks:int -> float
(** [service_time t blkno ~nblocks] is the time a sequential request of
    [nblocks] starting at [blkno] would cost from the current head
    position, without performing it. *)
