exception Injected_crash

type injector = {
  on_write : blkno:int -> nblocks:int -> int;
  on_read : blkno:int -> nblocks:int -> bool;
}

(* A read parked in the live request queue, waiting for the server
   process to reach it. Bytes are captured at SERVICE time, not submit
   time: a synchronous multi-block write holds the device and only
   persists its run when its service delay elapses, so a read queued
   behind it must return the post-write platter — that is what the
   physical head reads once it finally reaches the sectors. Capturing at
   submit once handed a committer a zeroed snapshot of a block whose
   in-flight write carried the real bytes; the address had already been
   updated when the read was issued, so the caller's relocation chase
   could not catch it. [persist] is a single atomic blit with no yield
   inside, so a service-time capture never observes a torn run. *)
type pending = {
  p_blkno : int;
  p_nblocks : int;
  mutable p_data : bytes;
  p_submitted : float;
  mutable p_done : bool;
  p_cond : Sched.cond;
}

(* Stat keys, precomputed from the prefix at create time so multi-disk
   machines report per-spindle counters ("disk0.busy", "disklog.seek",
   ...) without per-op string building. The default prefix "disk" keeps
   every single-disk name bit-for-bit identical to before. *)
type keys = {
  k_busy : string;
  k_seek : string;
  k_seek_queued : string;
  k_seeks : string;
  k_requests : string;
  k_blocks_written : string;
  k_blocks_read : string;
  k_read_service : string;
  k_write_service : string;
  k_rotation : string;
  k_transfer : string;
  k_read_qwait : string;
  k_read_retries : string;
  k_queue_enqueued : string;
  k_queue_depth : string;
  k_op : string;
}

let make_keys pfx =
  {
    k_busy = pfx ^ ".busy";
    k_seek = pfx ^ ".seek";
    k_seek_queued = pfx ^ ".seek.queued";
    k_seeks = pfx ^ ".seeks";
    k_requests = pfx ^ ".requests";
    k_blocks_written = pfx ^ ".blocks_written";
    k_blocks_read = pfx ^ ".blocks_read";
    k_read_service = pfx ^ ".read.service";
    k_write_service = pfx ^ ".write.service";
    k_rotation = pfx ^ ".rotation";
    k_transfer = pfx ^ ".transfer";
    k_read_qwait = pfx ^ ".read.qwait";
    k_read_retries = pfx ^ ".read_retries";
    k_queue_enqueued = pfx ^ ".queue.enqueued";
    k_queue_depth = pfx ^ ".queue.depth";
    k_op = pfx ^ ".op";
  }

type t = {
  data : bytes;
  cfg : Config.disk;
  clock : Clock.t;
  stats : Stats.t;
  keys : keys;
  mutable head : int;
  mutable injector : injector option;
  mutable queue : pending list;
  mutable serving : bool;
  mutable busy_until : float;
      (* device occupancy horizon under the discrete-event scheduler:
         a request issued from a process waits until the arm is free.
         Meaningless (always in the past) on the legacy paths. *)
}

let create ?(prefix = "disk") clock stats (cfg : Config.disk) =
  if cfg.nblocks <= 0 || cfg.block_size <= 0 then
    invalid_arg "Disk.create: bad geometry";
  let keys = make_keys prefix in
  (* Per-op latency histograms exist from boot so every benchmark
     artifact carries them, samples or not. *)
  List.iter (Stats.declare stats)
    [
      keys.k_read_service;
      keys.k_write_service;
      keys.k_seek;
      keys.k_seek_queued;
      keys.k_rotation;
      keys.k_transfer;
      keys.k_read_qwait;
    ];
  {
    data = Bytes.make (cfg.nblocks * cfg.block_size) '\000';
    cfg;
    clock;
    stats;
    keys;
    head = 0;
    injector = None;
    queue = [];
    serving = false;
    busy_until = 0.0;
  }

let set_injector t inj = t.injector <- inj

let nblocks t = t.cfg.nblocks
let block_size t = t.cfg.block_size

let check_range t blkno n =
  if blkno < 0 || n < 0 || blkno + n > t.cfg.nblocks then
    invalid_arg
      (Printf.sprintf "Disk: blocks [%d..%d) out of range [0..%d)" blkno
         (blkno + n) t.cfg.nblocks)

let cylinder t blkno = blkno / t.cfg.blocks_per_cylinder

let ncylinders t =
  (t.cfg.nblocks + t.cfg.blocks_per_cylinder - 1) / t.cfg.blocks_per_cylinder

let seek_time t ~from ~target =
  let d = abs (cylinder t target - cylinder t from) in
  if d = 0 then 0.0
  else
    let c = max 2 (ncylinders t) in
    let frac = sqrt (float_of_int (d - 1)) /. sqrt (float_of_int (c - 1)) in
    t.cfg.min_seek_s +. ((t.cfg.max_seek_s -. t.cfg.min_seek_s) *. frac)

let rotation_time t = 0.5 *. (60.0 /. t.cfg.rpm)

let transfer_time t nblocks =
  float_of_int (nblocks * t.cfg.block_size) /. t.cfg.transfer_bytes_per_s

let service_time t blkno ~nblocks =
  let seek = seek_time t ~from:t.head ~target:blkno in
  (* A request that continues exactly where the head stopped streams with
     no positioning cost at all (the common case for log/segment writes). *)
  let rotation = if seek = 0.0 && blkno = t.head then 0.0 else rotation_time t in
  seek +. rotation +. transfer_time t nblocks

(* Block the calling process until the arm is free. Loop: several
   waiters can wake at the same horizon and only the first to run gets
   the device (it pushes [busy_until] out again). *)
let wait_device t sched =
  while t.busy_until > Clock.now t.clock do
    Sched.sleep_until sched t.busy_until
  done

let serve ?(queued = false) t blkno ~nblocks ~write =
  check_range t blkno nblocks;
  (* Under the discrete-event scheduler each spindle is a real shared
     resource: a synchronous request issued from a process waits for the
     arm, then holds it for its service time while other processes (on
     other spindles) keep running. Outside the scheduler the clock just
     jumps, exactly as before. Positioning costs are computed only after
     the wait — the head may have moved while we queued. *)
  let sched =
    match Sched.of_clock t.clock with
    | Some s when Sched.in_process s -> Some s
    | _ -> None
  in
  (match sched with Some s -> wait_device t s | None -> ());
  let seek = seek_time t ~from:t.head ~target:blkno in
  let seek_c, rot_c =
    if queued then (0.3 *. seek, 0.75 *. rotation_time t)
    else
      ( seek,
        if seek = 0.0 && blkno = t.head then 0.0 else rotation_time t )
  in
  let xfer = transfer_time t nblocks in
  let dt = seek_c +. rot_c +. xfer in
  (match sched with
  | Some s ->
    t.busy_until <- Clock.now t.clock +. dt;
    Sched.delay s dt
  | None -> Clock.advance t.clock dt);
  Stats.add_time t.stats t.keys.k_busy dt;
  Stats.add_time t.stats t.keys.k_seek seek_c;
  (* Count the seek actually charged: a queued request pays a discounted
     seek, so the counter condition must test [seek_c], and its samples
     go to their own histogram so the elevator's benefit stays visible
     next to the cold-seek distribution. *)
  if seek_c > 0.0 then Stats.incr t.stats t.keys.k_seeks;
  Stats.incr t.stats t.keys.k_requests;
  Stats.add t.stats
    (if write then t.keys.k_blocks_written else t.keys.k_blocks_read)
    nblocks;
  Stats.observe t.stats
    (if write then t.keys.k_write_service else t.keys.k_read_service)
    dt;
  Stats.observe t.stats
    (if queued then t.keys.k_seek_queued else t.keys.k_seek)
    seek_c;
  Stats.observe t.stats t.keys.k_rotation rot_c;
  Stats.observe t.stats t.keys.k_transfer xfer;
  if Stats.tracing t.stats then
    Stats.emit t.stats ~time:(Clock.now t.clock) t.keys.k_op
      [
        ("rw", Trace.S (if write then "w" else "r"));
        ("blkno", Trace.I blkno);
        ("nblocks", Trace.I nblocks);
        ("queued", Trace.B queued);
        ("service_s", Trace.F dt);
      ];
  t.head <- blkno + nblocks

(* A transient read error costs a full revolution (the sector comes
   around again) and a retry. The injector promises eventual success, so
   the caller never sees the failure — only the clock and stats do. *)
let retry_reads t blkno n =
  match t.injector with
  | None -> ()
  | Some inj ->
    while inj.on_read ~blkno ~nblocks:n do
      Clock.advance t.clock (2.0 *. rotation_time t);
      Stats.add_time t.stats t.keys.k_busy (2.0 *. rotation_time t);
      Stats.incr t.stats t.keys.k_read_retries
    done

let read t blkno =
  serve t blkno ~nblocks:1 ~write:false;
  retry_reads t blkno 1;
  Bytes.sub t.data (blkno * t.cfg.block_size) t.cfg.block_size

let read_run t blkno n =
  serve t blkno ~nblocks:n ~write:false;
  retry_reads t blkno n;
  Bytes.sub t.data (blkno * t.cfg.block_size) (n * t.cfg.block_size)

(* Persist [data] at [blkno], honouring the injector: only the first
   [keep] blocks reach the platter, and if the injector truncated or
   ended the run it also kills the machine — the write never returns.
   Power failure is modelled at sector granularity: individual blocks
   are atomic, multi-block runs tear on a block boundary. *)
let persist t blkno data =
  let bs = t.cfg.block_size in
  let n = Bytes.length data / bs in
  match t.injector with
  | None -> Bytes.blit data 0 t.data (blkno * bs) (Bytes.length data)
  | Some inj ->
    let keep = inj.on_write ~blkno ~nblocks:n in
    let keep = max 0 (min keep n) in
    Bytes.blit data 0 t.data (blkno * bs) (keep * bs);
    if keep < n then raise Injected_crash

let write_blocks t blkno data =
  let bs = t.cfg.block_size in
  let len = Bytes.length data in
  if len = 0 || len mod bs <> 0 then
    invalid_arg "Disk.write: data must be a positive whole number of blocks";
  let n = len / bs in
  serve t blkno ~nblocks:n ~write:true;
  persist t blkno data

let write t blkno data =
  if Bytes.length data <> t.cfg.block_size then
    invalid_arg "Disk.write: data must be exactly one block";
  write_blocks t blkno data

let write_queued t blkno data =
  if Bytes.length data <> t.cfg.block_size then
    invalid_arg "Disk.write_queued: data must be exactly one block";
  serve ~queued:true t blkno ~nblocks:1 ~write:true;
  persist t blkno data

let write_run t blkno data = write_blocks t blkno data

(* The disk server process: as long as requests are queued, pick the
   next one by C-LOOK from the *live* head position, hold the device for
   its service time (other processes run meanwhile), then wake the
   submitter. Positioning costs use the same arithmetic as the
   synchronous path — the elevator's benefit under load comes from the
   ordering itself shortening seeks, not from a modelled discount. *)
let rec serve_queue t sched =
  match t.queue with
  | [] -> t.serving <- false
  | _ ->
    (* Respect the occupancy horizon a synchronous request may have set,
       and pick only after the wait — the queue and head position can
       both change while the daemon is parked. *)
    wait_device t sched;
    (match t.queue with
     | [] -> t.serving <- false
     | reqs ->
    let pick =
      match
        Elevator.order Elevator.Elevator ~head:t.head
          (List.map (fun r -> (r.p_blkno, r)) reqs)
      with
      | (_, r) :: _ -> r
      | [] -> assert false
    in
    t.queue <- List.filter (fun r -> r != pick) t.queue;
    let seek = seek_time t ~from:t.head ~target:pick.p_blkno in
    let rot =
      if seek = 0.0 && pick.p_blkno = t.head then 0.0 else rotation_time t
    in
    let xfer = transfer_time t pick.p_nblocks in
    let dt = seek +. rot +. xfer in
    t.busy_until <- Clock.now t.clock +. dt;
    Sched.delay sched dt;
    Stats.add_time t.stats t.keys.k_busy dt;
    Stats.add_time t.stats t.keys.k_seek seek;
    if seek > 0.0 then Stats.incr t.stats t.keys.k_seeks;
    Stats.incr t.stats t.keys.k_requests;
    Stats.add t.stats t.keys.k_blocks_read pick.p_nblocks;
    Stats.observe t.stats t.keys.k_read_service dt;
    Stats.observe t.stats t.keys.k_seek seek;
    Stats.observe t.stats t.keys.k_rotation rot;
    Stats.observe t.stats t.keys.k_transfer xfer;
    t.head <- pick.p_blkno + pick.p_nblocks;
    retry_reads t pick.p_blkno pick.p_nblocks;
    pick.p_data <-
      Bytes.sub t.data
        (pick.p_blkno * t.cfg.block_size)
        (pick.p_nblocks * t.cfg.block_size);
    Stats.observe t.stats t.keys.k_read_qwait
      (Clock.now t.clock -. pick.p_submitted);
    if Stats.tracing t.stats then
      Stats.emit t.stats ~time:(Clock.now t.clock) t.keys.k_op
        [
          ("rw", Trace.S "r");
          ("blkno", Trace.I pick.p_blkno);
          ("nblocks", Trace.I pick.p_nblocks);
          ("queued", Trace.B true);
          ("service_s", Trace.F dt);
          ("qdepth", Trace.I (List.length t.queue));
        ];
    pick.p_done <- true;
    Sched.broadcast sched pick.p_cond;
    serve_queue t sched)

let read_async t blkno =
  match Sched.of_clock t.clock with
  | Some sched when Sched.in_process sched ->
    check_range t blkno 1;
    let p =
      {
        p_blkno = blkno;
        p_nblocks = 1;
        p_data = Bytes.empty;  (* captured at service time; see [pending] *)
        p_submitted = Clock.now t.clock;
        p_done = false;
        p_cond = Sched.condition ();
      }
    in
    t.queue <- t.queue @ [ p ];
    Stats.incr t.stats t.keys.k_queue_enqueued;
    Stats.record_max t.stats t.keys.k_queue_depth
      (float_of_int (List.length t.queue + if t.serving then 1 else 0));
    if not t.serving then begin
      t.serving <- true;
      Sched.spawn ~daemon:true sched (fun () -> serve_queue t sched)
    end;
    while not p.p_done do
      Sched.wait sched p.p_cond
    done;
    p.p_data
  | _ -> read t blkno

let head t = t.head

(* Outstanding requests at this spindle: the elevator queue plus the one
   the server process is currently positioning for. The synchronous
   read/write paths never enqueue, so a non-zero depth means scheduler
   processes are actively waiting on this arm. *)
let queue_depth t = List.length t.queue + if t.serving then 1 else 0

let peek t blkno =
  check_range t blkno 1;
  Bytes.sub t.data (blkno * t.cfg.block_size) t.cfg.block_size

let poke t blkno data =
  check_range t blkno 1;
  if Bytes.length data <> t.cfg.block_size then
    invalid_arg "Disk.poke: data must be exactly one block";
  Bytes.blit data 0 t.data (blkno * t.cfg.block_size) t.cfg.block_size
