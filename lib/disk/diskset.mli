(** A set of spindles behind the single-device block API.

    The transaction study's multi-disk configurations need two placement
    policies (Section 5.3 discusses log-disk contention as the dominant
    cost of the user-level architectures):

    - {b dedicated log disk}: the write-ahead log gets its own spindle so
      commit forces never drag the head away from the data;
    - {b striped segments}: LFS segments are distributed round-robin
      across [ndisks] data spindles, segment-granular, so concurrent
      segment writes and cleaner reads proceed on independent heads.

    Both are driven by {!Config.fs} ([ndisks], [log_disk]). A set built
    with [ndisks = 1] and no log disk is a pure pass-through: every call
    forwards verbatim to the one member, so single-disk results are
    bit-for-bit identical to driving a {!Disk.t} directly.

    {b Address mapping.} The first 3 blocks (the LFS boot region:
    superblock and the two checkpoint slots, see [Tx_lfs.Layout]) always
    live on data disk 0 — except that when a log disk is present {e and}
    the set was created with [~route_checkpoints:true], the two
    checkpoint blocks move to the log spindle (sensible only when no
    file system occupies that spindle, i.e. the kernel-embedded setup;
    the user-level setups put a small FFS holding the WAL there).
    Above the boot region, logical segment [i] of size
    [fs.segment_blocks] maps whole onto data disk [i mod ndisks] at
    physical segment slot [i / ndisks] — a segment never straddles
    spindles, so segment writes and cleaner reads stay one sequential
    transfer.

    Members share one clock, so time on one spindle advances time for
    all — the synchronous-write paths model a single outstanding request
    per machine, while {!read_async} queues overlap per spindle exactly
    as with independent devices. Each member reports its own stat keys
    ([disk0.busy], [disklog.seek], ...; a singleton keeps the plain
    [disk.*] names). *)

type t

val create : ?route_checkpoints:bool -> Clock.t -> Stats.t -> Config.t -> t
(** Build the spindles described by [cfg.fs.ndisks] / [cfg.fs.log_disk],
    every member with the geometry of [cfg.disk].
    [route_checkpoints] (default [false]) sends the LFS checkpoint
    blocks to the log spindle when one exists; leave it off whenever the
    log spindle hosts a file system of its own.
    @raise Invalid_argument if [ndisks < 1], or if striping is requested
    and a spindle cannot hold even one segment. *)

val wrap : Disk.t -> t
(** View an existing single disk as a (pass-through) set. For tests and
    tools that already hold a {!Disk.t}. *)

val ndisks : t -> int
(** Number of data spindles (excludes the log disk). *)

val primary : t -> Disk.t
(** Data disk 0 — where the boot region lives, and the whole device for
    a pass-through set. The read-optimized FFS, which has no segment
    structure to stripe, runs entirely on this member. *)

val log_disk : t -> Disk.t option
(** The first dedicated log spindle, when configured. *)

val log_disks : t -> Disk.t array
(** Every dedicated log spindle — with [cfg.fs.log_disk] set there is
    one per WAL stream ([max 1 cfg.fs.log_streams]), so each stream's
    forces run on their own head; empty when no log disk is
    configured. *)

val members : t -> (string * Disk.t) list
(** Every spindle with its stat-key prefix, data disks first
    (["disk"] for a singleton, else ["disk0"], ["disk1"], ...),
    then the log disks (["disklog"], ["disklog1"], ...) if present. *)

val nblocks : t -> int
(** Logical device size. For a striped set this is
    [3 + ndisks * per_spindle_segments * segment_blocks] — the boot
    region plus every segment slot on every data spindle. *)

val block_size : t -> int

val read : t -> int -> bytes
val read_run : t -> int -> int -> bytes

val read_async : t -> int -> bytes
(** Forwards to {!Disk.read_async} on the owning member: under a
    scheduler each spindle runs its own elevator server, so reads on
    different members overlap. *)

val write : t -> int -> bytes -> unit

val write_run : t -> int -> bytes -> unit
(** Splits the run at spindle boundaries and issues one sequential
    {!Disk.write_run} per extent, in logical order. Segment-granular
    striping means an LFS segment write is always a single extent. *)

val peek : t -> int -> bytes
val poke : t -> int -> bytes -> unit

val queue_depth : t -> int
(** Total outstanding queued requests across every member spindle (data
    and log) — see {!Disk.queue_depth}. *)

val set_injector : t -> Disk.injector option -> unit
(** Install the same injector on {e every} member (or disarm all). A
    shared mutable injector closure therefore sees one global,
    deterministic write ordering across the whole set. *)
