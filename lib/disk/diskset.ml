(* Multiple spindles behind the Disk API. Logical block numbers are
   remapped per request: the 3-block LFS boot region stays on data disk 0
   (checkpoint blocks optionally on the log spindle), and above it whole
   segments go round-robin across the data disks. With stripe unit =
   segment size, an LFS segment write or cleaner read is always one
   contiguous extent on one spindle; the generic extent splitter below
   still handles arbitrary runs for safety. *)

(* Blocks 0..2: superblock + two checkpoint slots (Tx_lfs.Layout uses the
   same constant as its data_start). *)
let reserved = 3

type t = {
  data : Disk.t array;
  log : Disk.t array; (* 0 = no log spindle; >1 = one per WAL stream *)
  chunk : int; (* stripe unit in blocks = segment size *)
  logical_nblocks : int;
  route_cp : bool; (* checkpoint blocks 1,2 live on the log spindle *)
}

let create ?(route_checkpoints = false) clock stats (cfg : Config.t) =
  let n = cfg.Config.fs.Config.ndisks in
  if n < 1 then invalid_arg "Diskset.create: ndisks must be >= 1";
  let chunk = cfg.Config.fs.Config.segment_blocks in
  let data =
    if n = 1 then [| Disk.create clock stats cfg.Config.disk |]
    else
      Array.init n (fun i ->
          Disk.create
            ~prefix:(Printf.sprintf "disk%d" i)
            clock stats cfg.Config.disk)
  in
  let log =
    if cfg.Config.fs.Config.log_disk then
      (* One spindle per WAL stream: stream i's forces run on their own
         head. The first keeps the historical "disklog" prefix so
         single-stream artifacts are unchanged. *)
      Array.init
        (max 1 cfg.Config.fs.Config.log_streams)
        (fun i ->
          let prefix =
            if i = 0 then "disklog" else Printf.sprintf "disklog%d" i
          in
          Disk.create ~prefix clock stats cfg.Config.disk)
    else [||]
  in
  let logical_nblocks =
    if n = 1 then cfg.Config.disk.Config.nblocks
    else begin
      let psegs = (cfg.Config.disk.Config.nblocks - reserved) / chunk in
      if psegs < 1 then
        invalid_arg "Diskset.create: spindle too small for one segment";
      reserved + (n * psegs * chunk)
    end
  in
  {
    data;
    log;
    chunk;
    logical_nblocks;
    route_cp = route_checkpoints && Array.length log > 0;
  }

let wrap d =
  {
    data = [| d |];
    log = [||];
    chunk = 1;
    logical_nblocks = Disk.nblocks d;
    route_cp = false;
  }

let ndisks t = Array.length t.data

let queue_depth t =
  let sum = Array.fold_left (fun n d -> n + Disk.queue_depth d) 0 in
  sum t.data + sum t.log
let primary t = t.data.(0)
let log_disk t = if Array.length t.log > 0 then Some t.log.(0) else None
let log_disks t = t.log
let nblocks t = t.logical_nblocks
let block_size t = Disk.block_size t.data.(0)

let members t =
  let data =
    if Array.length t.data = 1 then [ ("disk", t.data.(0)) ]
    else
      Array.to_list
        (Array.mapi (fun i d -> (Printf.sprintf "disk%d" i, d)) t.data)
  in
  let logs =
    Array.to_list
      (Array.mapi
         (fun i d ->
           ((if i = 0 then "disklog" else Printf.sprintf "disklog%d" i), d))
         t.log)
  in
  data @ logs

let check_range t blkno n =
  if blkno < 0 || n < 0 || blkno + n > t.logical_nblocks then
    invalid_arg
      (Printf.sprintf "Diskset: blocks [%d..%d) out of range [0..%d)" blkno
         (blkno + n) t.logical_nblocks)

(* Logical block -> (spindle, physical block). *)
let locate t blkno =
  check_range t blkno 1;
  if t.route_cp && (blkno = 1 || blkno = 2) then (t.log.(0), blkno)
  else
    let n = Array.length t.data in
    if n = 1 || blkno < reserved then (t.data.(0), blkno)
    else
      let seg = (blkno - reserved) / t.chunk in
      let off = (blkno - reserved) mod t.chunk in
      (t.data.(seg mod n), reserved + (seg / n * t.chunk) + off)

(* Cut [blkno, blkno+n) into maximal extents that are contiguous on one
   spindle and feed them to [k] in logical order. *)
let split t blkno n k =
  check_range t blkno n;
  let rec go blkno n =
    if n > 0 then begin
      let d, phys = locate t blkno in
      let len = ref 1 in
      (try
         while !len < n do
           let d', p' = locate t (blkno + !len) in
           if d' == d && p' = phys + !len then incr len else raise Exit
         done
       with Exit -> ());
      k d phys !len;
      go (blkno + !len) (n - !len)
    end
  in
  go blkno n

let read t blkno =
  let d, phys = locate t blkno in
  Disk.read d phys

let read_run t blkno n =
  let bs = block_size t in
  let out = Bytes.create (n * bs) in
  let cursor = ref 0 in
  split t blkno n (fun d phys len ->
      let part = Disk.read_run d phys len in
      Bytes.blit part 0 out (!cursor * bs) (len * bs);
      cursor := !cursor + len);
  out

let read_async t blkno =
  let d, phys = locate t blkno in
  Disk.read_async d phys

let write t blkno data =
  let d, phys = locate t blkno in
  Disk.write d phys data

let write_run t blkno data =
  let bs = block_size t in
  let len = Bytes.length data in
  if len = 0 || len mod bs <> 0 then
    invalid_arg "Diskset.write_run: data must be a positive whole number of blocks";
  let cursor = ref 0 in
  split t blkno (len / bs) (fun d phys n ->
      Disk.write_run d phys (Bytes.sub data (!cursor * bs) (n * bs));
      cursor := !cursor + n)

let peek t blkno =
  let d, phys = locate t blkno in
  Disk.peek d phys

let poke t blkno data =
  let d, phys = locate t blkno in
  Disk.poke d phys data

let set_injector t inj =
  Array.iter (fun d -> Disk.set_injector d inj) t.data;
  Array.iter (fun d -> Disk.set_injector d inj) t.log
