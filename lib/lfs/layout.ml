
let superblock_blkno = 0
let checkpoint_blknos = (1, 2)
let data_start = 3
let inode_size = 256

let sb_magic = 0x4c46_5353 (* "LFSS" *)
let sum_magic = 0x4c46_5355 (* "LFSU" *)
let cp_magic = 0x4c46_5343 (* "LFSC" *)

let checksum b =
  let acc = ref 0 in
  for i = 0 to Bytes.length b - 1 do
    acc := (!acc + (Char.code (Bytes.unsafe_get b i) * (1 + (i land 0xff)))) land 0x3fffffff
  done;
  !acc

(* Checksums live in bytes [4..8) of each structure, just after the magic.
   They are computed with that field zeroed. *)
let seal b =
  Enc.set_u32 b 4 0;
  Enc.set_u32 b 4 (checksum b)

let check_seal b =
  let stored = Enc.get_u32 b 4 in
  Enc.set_u32 b 4 0;
  let ok = checksum b = stored in
  Enc.set_u32 b 4 stored;
  ok

(* Superblock *)

type superblock = {
  block_size : int;
  nblocks : int;
  segment_blocks : int;
  nsegments : int;
  max_inodes : int;
}

let nsegments_of ~block_size:_ ~nblocks ~segment_blocks =
  (nblocks - data_start) / segment_blocks

let segment_base sb i = data_start + (i * sb.segment_blocks)

let write_superblock b sb =
  Bytes.fill b 0 (Bytes.length b) '\000';
  Enc.set_u32 b 0 sb_magic;
  Enc.set_u32 b 8 sb.block_size;
  Enc.set_u32 b 12 sb.nblocks;
  Enc.set_u32 b 16 sb.segment_blocks;
  Enc.set_u32 b 20 sb.nsegments;
  Enc.set_u32 b 24 sb.max_inodes;
  seal b

let read_superblock b =
  if Enc.get_u32 b 0 <> sb_magic || not (check_seal b) then
    Vfs.error Invalid "LFS superblock: bad magic or checksum";
  {
    block_size = Enc.get_u32 b 8;
    nblocks = Enc.get_u32 b 12;
    segment_blocks = Enc.get_u32 b 16;
    nsegments = Enc.get_u32 b 20;
    max_inodes = Enc.get_u32 b 24;
  }

(* Segment summary *)

type summary_entry =
  | Data of { inum : int; lblock : int }
  | Inode_block of { inums : int list }
  | Indirect of { inum : int; index : int }
  | Double_indirect of { inum : int }
  | Imap_block of { index : int }
  | Usage_block of { index : int }

type summary = {
  seq : int64;
  timestamp : float;
  next_seg : int;
  more : bool;
  cold : bool;
      (* written by the cleaner's relocation (cold) log head; never part
         of the roll-forward chain, so carries no meaningful seq *)
  payload_ck : int;
  entries : summary_entry list;
}

let sum_header = 40

(* Fixed 9-byte entries; Inode_block stores its inums in a side table after
   the entries, referenced by (offset, count). *)
let entry_bytes = 9

let max_summary_entries ~block_size =
  (* Reserve a quarter of the block for inode-number side tables. *)
  (block_size - sum_header) * 3 / 4 / entry_bytes

let write_summary b s =
  Bytes.fill b 0 (Bytes.length b) '\000';
  let n = List.length s.entries in
  Enc.set_u32 b 0 sum_magic;
  Enc.set_i64 b 8 s.seq;
  Enc.set_f64 b 16 s.timestamp;
  Enc.set_u32 b 24 s.next_seg;
  Enc.set_u16 b 28 n;
  Enc.set_u8 b 30 (if s.more then 1 else 0);
  Enc.set_u8 b 31 (if s.cold then 1 else 0);
  Enc.set_u32 b 32 s.payload_ck;
  let side = ref (sum_header + (n * entry_bytes)) in
  List.iteri
    (fun i e ->
      let off = sum_header + (i * entry_bytes) in
      match e with
      | Data { inum; lblock } ->
        Enc.set_u8 b off 0;
        Enc.set_u32 b (off + 1) inum;
        Enc.set_u32 b (off + 5) lblock
      | Inode_block { inums } ->
        Enc.set_u8 b off 1;
        Enc.set_u32 b (off + 1) !side;
        Enc.set_u32 b (off + 5) (List.length inums);
        List.iter
          (fun inum ->
            Enc.set_u32 b !side inum;
            side := !side + 4)
          inums
      | Indirect { inum; index } ->
        Enc.set_u8 b off 2;
        Enc.set_u32 b (off + 1) inum;
        Enc.set_u32 b (off + 5) index
      | Double_indirect { inum } ->
        Enc.set_u8 b off 3;
        Enc.set_u32 b (off + 1) inum;
        Enc.set_u32 b (off + 5) 0
      | Imap_block { index } ->
        Enc.set_u8 b off 4;
        Enc.set_u32 b (off + 1) index;
        Enc.set_u32 b (off + 5) 0
      | Usage_block { index } ->
        Enc.set_u8 b off 5;
        Enc.set_u32 b (off + 1) index;
        Enc.set_u32 b (off + 5) 0)
    s.entries;
  seal b

let read_summary b =
  if Enc.get_u32 b 0 <> sum_magic || not (check_seal b) then None
  else
    let n = Enc.get_u16 b 28 in
    let entry i =
      let off = sum_header + (i * entry_bytes) in
      let a = Enc.get_u32 b (off + 1) and c = Enc.get_u32 b (off + 5) in
      match Enc.get_u8 b off with
      | 0 -> Data { inum = a; lblock = c }
      | 1 ->
        let inums = List.init c (fun j -> Enc.get_u32 b (a + (4 * j))) in
        Inode_block { inums }
      | 2 -> Indirect { inum = a; index = c }
      | 3 -> Double_indirect { inum = a }
      | 4 -> Imap_block { index = a }
      | 5 -> Usage_block { index = a }
      | k -> Vfs.error Invalid "LFS summary: bad entry kind %d" k
    in
    Some
      {
        seq = Enc.get_i64 b 8;
        timestamp = Enc.get_f64 b 16;
        next_seg = Enc.get_u32 b 24;
        more = Enc.get_u8 b 30 = 1;
        cold = Enc.get_u8 b 31 = 1;
        payload_ck = Enc.get_u32 b 32;
        entries = List.init n entry;
      }

(* Checkpoint *)

type checkpoint = {
  cp_seq : int64;
  cp_timestamp : float;
  cur_seg : int;
  cur_off : int;
  cp_next_seg : int;
  next_inum : int;
  write_seq : int64;
  imap_addrs : int array;
  usage_addrs : int array;
}

let write_checkpoint b cp =
  Bytes.fill b 0 (Bytes.length b) '\000';
  Enc.set_u32 b 0 cp_magic;
  Enc.set_i64 b 8 cp.cp_seq;
  Enc.set_f64 b 16 cp.cp_timestamp;
  Enc.set_u32 b 24 cp.cur_seg;
  Enc.set_u32 b 28 cp.cur_off;
  Enc.set_u32 b 32 cp.cp_next_seg;
  Enc.set_u32 b 36 cp.next_inum;
  Enc.set_i64 b 40 cp.write_seq;
  Enc.set_u16 b 48 (Array.length cp.imap_addrs);
  Enc.set_u16 b 50 (Array.length cp.usage_addrs);
  let off = ref 52 in
  Array.iter
    (fun a ->
      Enc.set_u32 b !off a;
      off := !off + 4)
    cp.imap_addrs;
  Array.iter
    (fun a ->
      Enc.set_u32 b !off a;
      off := !off + 4)
    cp.usage_addrs;
  seal b

let read_checkpoint b =
  if Enc.get_u32 b 0 <> cp_magic || not (check_seal b) then None
  else
    let n_imap = Enc.get_u16 b 48 and n_usage = Enc.get_u16 b 50 in
    let imap_addrs = Array.init n_imap (fun i -> Enc.get_u32 b (52 + (4 * i))) in
    let base = 52 + (4 * n_imap) in
    let usage_addrs =
      Array.init n_usage (fun i -> Enc.get_u32 b (base + (4 * i)))
    in
    Some
      {
        cp_seq = Enc.get_i64 b 8;
        cp_timestamp = Enc.get_f64 b 16;
        cur_seg = Enc.get_u32 b 24;
        cur_off = Enc.get_u32 b 28;
        cp_next_seg = Enc.get_u32 b 32;
        next_inum = Enc.get_u32 b 36;
        write_seq = Enc.get_i64 b 40;
        imap_addrs;
        usage_addrs;
      }
