(** Segment-selection policies for the cleaner.

    Pure functions so the policies can be property-tested: given per-
    segment live-block counts and last-write times, pick the next
    victim. [`Greedy] takes the emptiest segment; [`Cost_benefit] is the
    Rosenblum/Ousterhout benefit-to-cost ratio
    [(1 - u) * age / (1 + u)], which prefers colder segments at equal
    utilization. The age signal is the time since data was last
    {e written} into the segment — not the usage-table touch time, which
    moves whenever the cleaner's own bookkeeping brushes the entry and
    would make a decaying (colder) segment look younger. *)

val choose :
  policy:[ `Greedy | `Cost_benefit ] ->
  nsegments:int ->
  segment_blocks:int ->
  now:float ->
  live:(int -> int) ->
  last_write:(int -> float) ->
  candidate:(int -> bool) ->
  int option
(** The victim segment, or [None] when no candidate exists. Segments for
    which [candidate] is false (free, current, pending) are skipped;
    fully dead candidates (live = 0) are always preferred since they cost
    nothing to clean. *)
