(** On-disk layout of the log-structured file system.

    Block 0 is the superblock; blocks 1 and 2 are the two alternating
    checkpoint regions; the rest of the device is divided into fixed-size
    segments. Inside a segment, every partial write ("partial segment")
    starts with a summary block describing the blocks that follow — the
    summary is what lets the cleaner decide liveness and what recovery
    rolls forward over.

    All structures carry a magic number and an additive checksum so that a
    torn or stale block is detected rather than trusted. *)

val superblock_blkno : int
val checkpoint_blknos : int * int
val data_start : int
(** First block of segment 0. *)

val inode_size : int
(** Bytes per packed on-disk inode (256; 16 inodes per 4 KB block). *)

val checksum : bytes -> int
(** Additive 32-bit checksum of a buffer with its checksum field zeroed
    (the caller zeroes it before calling). *)

(** {1 Superblock} *)

type superblock = {
  block_size : int;
  nblocks : int;
  segment_blocks : int;
  nsegments : int;
  max_inodes : int;
}

val write_superblock : bytes -> superblock -> unit
val read_superblock : bytes -> superblock
(** @raise Vfs.Error [Invalid] on bad magic or checksum. *)

val nsegments_of : block_size:int -> nblocks:int -> segment_blocks:int -> int
val segment_base : superblock -> int -> int
(** First block number of segment [i]. *)

(** {1 Segment summary} *)

(** What a block inside a partial segment is. The cleaner uses this
    (together with the inode map and inodes) to decide liveness; recovery
    uses it to roll the in-memory state forward. *)
type summary_entry =
  | Data of { inum : int; lblock : int }
  | Inode_block of { inums : int list }  (** packed inodes, in slot order *)
  | Indirect of { inum : int; index : int }
      (** [index]-th single-indirect block of the file *)
  | Double_indirect of { inum : int }
  | Imap_block of { index : int }  (** chunk [index] of the inode map *)
  | Usage_block of { index : int }  (** chunk of the segment usage table *)

type summary = {
  seq : int64;  (** monotone partial-segment sequence number *)
  timestamp : float;
  next_seg : int;  (** where the log continues after this segment *)
  more : bool;
      (** this partial is not the last of an atomic batch: recovery must
          not apply it unless the rest of the batch also made it to disk
          (commit flushes larger than a segment span several partials) *)
  cold : bool;
      (** written by the cleaner's relocation (cold) log head. Cold
          partials are durable only through checkpoints — they are never
          part of the roll-forward chain, carry [seq = 0], and recovery
          must never mistake one for a live continuation of the log *)
  payload_ck : int;
      (** {!checksum} of the payload blocks following the summary — the
          summary's own seal proves nothing about them, and a torn
          multi-block write can persist the summary without its data *)
  entries : summary_entry list;  (** one per following block, in order *)
}

val write_summary : bytes -> summary -> unit
val read_summary : bytes -> summary option
(** [None] if the block is not a valid summary (bad magic or checksum). *)

val max_summary_entries : block_size:int -> int

(** {1 Checkpoint region} *)

type checkpoint = {
  cp_seq : int64;
  cp_timestamp : float;
  cur_seg : int;
  cur_off : int;  (** next free block within [cur_seg] *)
  cp_next_seg : int;
  next_inum : int;
  write_seq : int64;  (** seq of the next partial segment to be written *)
  imap_addrs : int array;  (** disk address of each imap chunk *)
  usage_addrs : int array;
}

val write_checkpoint : bytes -> checkpoint -> unit
val read_checkpoint : bytes -> checkpoint option
