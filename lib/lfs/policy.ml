let choose ~policy ~nsegments ~segment_blocks ~now ~live ~last_write ~candidate =
  let score i =
    let u = float_of_int (live i) /. float_of_int segment_blocks in
    match policy with
    | `Greedy -> -.float_of_int (live i)
    | `Cost_benefit ->
      let age = Float.max 0.0 (now -. last_write i) in
      (1.0 -. u) *. (1.0 +. age) /. (1.0 +. u)
  in
  let best = ref None in
  for i = 0 to nsegments - 1 do
    if candidate i then
      if live i = 0 then (
        (* A dead segment is free to reclaim; nothing beats it. *)
        match !best with
        | Some (_, s) when s = infinity -> ()
        | _ -> best := Some (i, infinity))
      else
        let s = score i in
        match !best with
        | Some (_, s') when s' >= s -> ()
        | _ -> best := Some (i, s)
  done;
  Option.map fst !best
