(** The log-structured file system (Rosenblum & Ousterhout, as described
    in Section 2 of the paper).

    All writes append to the current segment: dirty data blocks, the
    indirect blocks and inodes describing them, and a summary block per
    partial write. The inode map (inum → inode location) and the segment
    usage table live in memory and are written into the log at
    checkpoints; the two alternating checkpoint regions anchor recovery,
    which rolls forward over partial segments written after the newest
    checkpoint. The cleaner reclaims space by copying live blocks out of
    victim segments; in the paper's measured system it runs in the kernel
    and locks the files being cleaned (the cause of the throughput gaps
    discussed in Section 5.1), and Section 5.4's user-space variant is
    available via {!Config.fs}[.lfs_user_cleaner].

    The module exposes both the portable {!Vfs.t} surface and the
    page-frame hooks the embedded transaction manager needs
    ({!get_page}, {!force_frames}, …). *)

type t

exception Crashed
(** Raised by every operation after {!crash} until the image is
    re-mounted. *)

val format :
  Diskset.t -> Clock.t -> Stats.t -> Config.t -> t
(** Write a fresh file system (superblock, empty root directory, initial
    checkpoint) and return it mounted. *)

val mount :
  Diskset.t -> Clock.t -> Stats.t -> Config.t -> t
(** Recover an existing image: load the newest valid checkpoint, roll
    forward through segments written after it, and rebuild the inode map
    and segment usage table. *)

val unmount : t -> unit
(** Flush everything and write a final checkpoint. *)

val crash : t -> unit
(** Simulate a power failure: all volatile state (buffer cache, inode
    cache, in-memory inode map) is discarded. The disk image retains
    exactly the blocks already written; a subsequent {!mount} exercises
    recovery. *)

val vfs : t -> Vfs.t

(** {1 Introspection} *)

val config : t -> Config.t
val clock : t -> Clock.t
val stats : t -> Stats.t
val cache : t -> Cache.t
val free_segments : t -> int
val nsegments : t -> int
val live_blocks : t -> int -> int
(** Live-block count of segment [i], per the usage table. *)

val last_write : t -> int -> float
(** Time data was last written into segment [i] — the cost-benefit
    policy's age signal. Unlike the usage entry's bookkeeping timestamp
    it is preserved across remounts (through the checkpointed usage
    table) and inherited when the cleaner relocates cold survivors. *)

val segment_cold : t -> int -> bool
(** Whether segment [i] was written by the cleaner's relocation (cold)
    log head. Persisted through the checkpointed usage table. *)

val reclaimable_segments : t -> int
(** Free + cleaned-pending segment count, maintained incrementally (the
    cleaner's batch loop and the adaptive daemon read it every pass). *)

val inum_of : t -> string -> int
(** Inode number of a path. @raise Vfs.Error [Not_found]. *)

val is_protected : t -> int -> bool
(** Transaction-protected attribute of a file, by inode number. *)

(** {1 Maintenance} *)

val checkpoint : t -> unit
val sync : t -> unit
val clean_once : t -> bool
(** Clean one victim segment; [false] if no candidate exists. *)

val coalesce_file : t -> int -> unit
(** Rewrite a file's blocks in logical order into fresh segments — the
    "cleaner that selects segments based on coalescing and clustering of
    files" the paper proposes in Section 5.4 to repair sequential-read
    performance after random updates. Runs as an idle-time utility; the
    file is re-laid-out contiguously in the log. *)

val coalesce_all : t -> int
(** Coalesce every regular file, largest first; returns the number of
    files rewritten. *)

val contiguity : t -> int -> float
(** Fraction of a file's adjacent logical blocks that are also adjacent
    on disk (1.0 = perfectly sequential layout). *)

(** {1 Snapshots}

    The paper's closing list of beneficiaries includes "system utilities
    (user registration, backups, undelete, etc.)" — all enabled by the
    no-overwrite log: past file-system states remain on disk until the
    cleaner reclaims them. A snapshot checkpoints the file system, saves
    that checkpoint, and pins every segment that was in use so neither
    the log head nor the cleaner can recycle it. {!snapshot_view} then
    reads the frozen state — including files deleted since — through an
    ordinary read-only {!Vfs.t}.

    Snapshot handles live in memory (a prototype of the mechanism, not a
    persistent backup format): they do not survive a crash, though the
    pinned data trivially does until the next cleaning. *)

type snapshot

val snapshot : t -> snapshot
(** Checkpoint and freeze the current state. Pinned segments are not
    reused until {!release_snapshot}. *)

val release_snapshot : t -> snapshot -> unit
(** Unpin the snapshot's segments (idempotent). *)

val snapshot_view : t -> snapshot -> Vfs.t
(** A read-only view of the file system as it was at the snapshot.
    Mutating operations raise [Vfs.Error (Not_supported, _)].
    @raise Invalid_argument if the snapshot has been released. *)

val snapshots : t -> int
(** Number of live snapshots. *)

val test_disable_payload_check : bool ref
(** Test-only: make roll-forward trust segment summaries without
    verifying their payload checksum, resurrecting the torn-commit
    vulnerability the checksum prevents. Used by the fault-injection
    suite to prove its oracle detects a broken recovery path. Never set
    outside tests. *)

val check : t -> unit
(** Full-consistency check of the in-memory/on-disk state: the segment
    usage table must match recomputed block reachability, no two live
    blocks may share an address, and every imap entry must point at an
    inode block that contains the inode. Raises [Failure] with a
    description on any violation. For tests and the fsck-style tool. *)

(** {1 Page hooks for the embedded transaction manager}

    These bypass the byte-offset interface and work on whole cached
    pages, which is how the kernel transaction module of Section 4
    manipulates transaction-protected files. *)

val get_page : t -> inum:int -> lblock:int -> Cache.frame
(** The cached frame for a page, reading it from the log on a miss
    (zero-filled if it is a hole or lies past end of file). Under a
    {!Sched} scheduler a miss is serviced through the live disk queue:
    the calling process parks and other processes run during the read. *)

val start_background : t -> unit
(** Detach the periodic syncer and the cleaner from the request path,
    running each as a daemon process on the scheduler attached to this
    file system's clock (no-op without one). [tick] keeps an inline
    cleaner backstop so a write burst between cleaner wakeups cannot
    exhaust the writable reserve. *)

val page_dirty : t -> Cache.frame -> unit
(** Mark a page frame dirty and its inode modified. *)

val extend_to : t -> inum:int -> int -> unit
(** Grow the file's byte size (used when a page write extends it). *)

val force_frames : t -> Cache.frame list -> unit
(** Write exactly these frames (plus the metadata describing them) to the
    log as one or more partial segments — the commit-time flush of
    Section 4.3. *)

val fsync_inum : t -> int -> unit
(** Flush one file's dirty pages and inode. *)
