
exception Crashed

type seg_state = Free | Current | Dirty | Pending

type usage_entry = {
  mutable live : int;
  mutable mtime : float;
      (* usage-entry touch time: moves whenever bookkeeping brushes the
         entry (including mount-time recomputation). Not an age signal. *)
  mutable last_write : float;
      (* when data was last written into the segment. Cleaner relocations
         inherit the victim's value instead of stamping "now", so cold
         data keeps looking old — this is what the cost-benefit policy
         reads. *)
  mutable cold : bool;
      (* segment was opened as the cleaner's relocation target and holds
         survivors rather than fresh writes *)
  mutable state : seg_state;
}

type t = {
  disk : Diskset.t;
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  sb : Layout.superblock;
  cache : Cache.t;
  inodes : (int, Inode.t) Hashtbl.t;
  imap_addr : int array; (* inum -> disk address of its inode block; 0 = none *)
  imap_slot : int array;
  imap_alloc : bool array;
  imap_dirty : bool array; (* per imap chunk *)
  imap_chunk_addr : int array;
  usage_chunk_addr : int array;
  inode_block_refs : (int, int) Hashtbl.t; (* inode-block addr -> #inodes *)
  usage : usage_entry array;
  mutable next_inum : int;
  mutable free_inums : int list;
  mutable cur_seg : int;
  mutable cur_off : int;
  mutable next_seg : int;
  (* The cleaner's relocation (cold) log head: survivors are appended
     here so they never re-mix with hot writes at the main head. -1 =
     no relocation segment open. Cold partials are outside the
     roll-forward chain; their durability rides on checkpoints, which is
     already the invariant for cleaned space (Pending -> Free only at a
     checkpoint). *)
  mutable cold_seg : int;
  mutable cold_off : int;
  (* Count of segments in state Free or Pending, maintained at every
     state transition so the kernel cleaner's batch loop does not fold
     over the usage table several times per victim. *)
  mutable n_reclaimable : int;
  mutable cleaned_since_cp : int;
  mutable write_seq : int64;
  mutable cp_seq : int64;
  mutable segs_since_cp : int;
  mutable last_syncer : float;
  mutable maint : int list;
  (* Owner tags of the maintenance sections currently open; see
     [maint_enter] below. *)
  (* Partial-segment writes mutate the shared cursor/usage/imap state
     and park on disk I/O partway through; under a scheduler two fibers
     (concurrent committers, or a commit racing a checkpoint) must not
     interleave inside one. [seg_writing] is the writer mutex bit;
     waiters park on [seg_write_cond]. *)
  mutable seg_writing : bool;
  seg_write_cond : Sched.cond;
  mutable pending_cp : bool;
  mutable crashed : bool;
  mutable bg : bool; (* syncer/cleaner run as scheduler daemons *)
  mutable snaps : snapshot list;
  mutable next_snap : int;
}

and snapshot = {
  snap_id : int;
  snap_cp : Layout.checkpoint;
  snap_segments : bool array; (* segments frozen by this snapshot *)
  mutable snap_live : bool;
}

let max_inodes = 32_768
let root_inum_init = 1

(* Chunk geometry *)
let imap_entry_bytes = 8

(* Usage-table entry on disk: u32 live, f64 mtime, f64 last_write,
   u8 flags (bit 0 = cold). *)
let usage_entry_bytes = 21
let imap_per_chunk t = t.sb.Layout.block_size / imap_entry_bytes
let usage_per_chunk t = t.sb.Layout.block_size / usage_entry_bytes

let n_imap_chunks t =
  (max_inodes + imap_per_chunk t - 1) / imap_per_chunk t

let n_usage_chunks t =
  (t.sb.Layout.nsegments + usage_per_chunk t - 1) / usage_per_chunk t

let block_size t = t.sb.Layout.block_size
let seg_base t i = Layout.segment_base t.sb i
let seg_of_addr t addr = (addr - Layout.data_start) / t.cfg.fs.segment_blocks
let nsegments t = t.sb.Layout.nsegments
let rec free_segments t =
  let n = ref 0 in
  Array.iteri
    (fun i u -> if u.state = Free && not (pinned t i) then incr n)
    t.usage;
  !n

and pinned t i =
  List.exists (fun s -> s.snap_live && s.snap_segments.(i)) t.snaps

let live_blocks t i = t.usage.(i).live
let last_write t i = t.usage.(i).last_write
let segment_cold t i = t.usage.(i).cold
let reclaimable_segments t = t.n_reclaimable
let config t = t.cfg
let clock t = t.clock
let stats t = t.stats
let cache t = t.cache

let check_alive t = if t.crashed then raise Crashed

let dec_usage t addr =
  if addr >= Layout.data_start then begin
    let u = t.usage.(seg_of_addr t addr) in
    if u.live <= 0 then
      invalid_arg (Printf.sprintf "LFS: live count underflow at block %d" addr);
    u.live <- u.live - 1
  end

(* [write] tells whether this touch represents data actually being
   written into the segment (mount-time recomputation passes [false]);
   [age] lets the cleaner stamp relocated survivors with their original
   write time instead of "now". The [mtime] touch, by contrast, always
   moves — it is bookkeeping, and feeding it to the cost-benefit policy
   was the bug that made decaying segments look young. *)
let inc_usage ?(write = true) ?age t seg n =
  let u = t.usage.(seg) in
  u.live <- u.live + n;
  u.mtime <- Clock.now t.clock;
  if write then
    let w = match age with Some a -> a | None -> Clock.now t.clock in
    if w > u.last_write then u.last_write <- w

(* Every segment state change goes through here so [n_reclaimable]
   (Free + Pending) stays exact without refolding the usage table. *)
let set_state t i st =
  let u = t.usage.(i) in
  let reclaimable = function Free | Pending -> true | Current | Dirty -> false in
  let was = reclaimable u.state and is = reclaimable st in
  u.state <- st;
  if was && not is then t.n_reclaimable <- t.n_reclaimable - 1
  else if is && not was then t.n_reclaimable <- t.n_reclaimable + 1

let dec_inode_block_ref t addr =
  if addr <> 0 then
    match Hashtbl.find_opt t.inode_block_refs addr with
    | None -> invalid_arg "LFS: inode block refcount missing"
    | Some 1 ->
      Hashtbl.remove t.inode_block_refs addr;
      dec_usage t addr
    | Some n -> Hashtbl.replace t.inode_block_refs addr (n - 1)

(* Inode cache *)

let iget_opt t inum =
  if inum <= 0 || inum >= max_inodes || not t.imap_alloc.(inum) then None
  else
    match Hashtbl.find_opt t.inodes inum with
    | Some ino -> Some ino
    | None ->
      let addr = t.imap_addr.(inum) in
      if addr = 0 then None (* allocated but never written: lost *)
      else begin
        let block = Diskset.read t.disk addr in
        match Inode.decode block (t.imap_slot.(inum) * Layout.inode_size) with
        | None -> None
        | Some ino ->
          let bs = block_size t in
          let nind = Inode.indirect_count ino ~block_size:bs in
          if nind > 1 && ino.Inode.dbl_addr <> 0 then
            Inode.decode_double ino ~block_size:bs
              (Diskset.read t.disk ino.Inode.dbl_addr);
          for idx = 0 to nind - 1 do
            let a =
              if idx < Array.length ino.Inode.ind_addrs then
                ino.Inode.ind_addrs.(idx)
              else 0
            in
            if a <> 0 then
              Inode.decode_indirect ino ~block_size:bs idx (Diskset.read t.disk a)
          done;
          Hashtbl.replace t.inodes inum ino;
          Some ino
      end

let iget t inum =
  match iget_opt t inum with
  | Some ino -> ino
  | None -> Vfs.error Not_found "inode %d" inum

(* Segment writing ------------------------------------------------------- *)

type ditem = {
  d_inum : int;
  d_lblock : int;
  d_src :
    [ `Frame of Cache.frame
    | `Raw of bytes
    | `Reloc of bytes * int
      (* cleaner-relocated platter copy + the address it was scanned at;
         installed only if the block still lives there (see
         [write_partial]'s race filter) *) ];
}

(* Maintenance sections: paths that relocate or flush blocks (cleaner,
   syncer, checkpoint, commit forces) update shared block addresses and
   then park in disk I/O partway through. [t.maint] holds the owner tag
   of every section currently open — the scheduler process id when
   entered from a process, [0] otherwise (a wildcard: plain synchronous
   contexts and the read-only snapshot view cover every caller).
   Sections overlap under a scheduler (one group-commit flush parks in
   its segment write while the next begins), so the tags form a
   multiset, not a single slot: save-and-restore of a scalar here once
   resurrected an already-finished owner and left the background
   daemons gated off for the rest of the run. The tag exists because
   only a process that OWNS an open section may stay on [get_page]'s
   synchronous platter-read branch. Any other process must join the
   disk queue, which serializes its read behind the in-flight segment
   write; reading the platter directly there returns stale bytes for
   blocks whose inode address was already flipped to the in-flight
   segment. *)
let maint_self t =
  match Sched.of_clock t.clock with
  | Some s when Sched.in_process s -> Sched.self s
  | _ -> 0

let maint_enter t =
  let id = maint_self t in
  t.maint <- id :: t.maint;
  id

let maint_exit t id =
  let rec drop = function
    | [] -> []
    | x :: tl -> if x = id then tl else x :: drop tl
  in
  t.maint <- drop t.maint

let maint_idle t = t.maint = []

let maint_here t sched =
  let self = Sched.self sched in
  List.exists (fun o -> o = 0 || o = self) t.maint

type inode_plan = {
  pi_inode : Inode.t;
  mutable pi_ditems : ditem list;
  mutable pi_ind : int list; (* indirect indexes to write, sorted *)
  mutable pi_dbl : bool;
}

let imap_chunk_of t inum = inum / imap_per_chunk t
let mark_imap_dirty t inum = t.imap_dirty.(imap_chunk_of t inum) <- true

(* Exact block count and per-inode metadata plan for one partial segment. *)
let plan t ~ditems ~inodes =
  let bs = block_size t in
  let per = Hashtbl.create 8 in
  let get_plan ino =
    match Hashtbl.find_opt per ino.Inode.inum with
    | Some p -> p
    | None ->
      let p = { pi_inode = ino; pi_ditems = []; pi_ind = []; pi_dbl = false } in
      Hashtbl.add per ino.Inode.inum p;
      p
  in
  List.iter
    (fun d ->
      let p = get_plan (iget t d.d_inum) in
      p.pi_ditems <- d :: p.pi_ditems)
    ditems;
  List.iter (fun ino -> ignore (get_plan ino)) inodes;
  (* Fill in metadata needs per inode. *)
  let plans =
    Hashtbl.fold (fun _ p acc -> p :: acc) per []
    |> List.sort (fun a b -> Int.compare a.pi_inode.Inode.inum b.pi_inode.Inode.inum)
  in
  List.iter
    (fun p ->
      let ino = p.pi_inode in
      let nmap' =
        List.fold_left
          (fun m d -> max m (d.d_lblock + 1))
          (Inode.nblocks ino) p.pi_ditems
      in
      let module IS = Set.Make (Int) in
      let ind =
        List.fold_left
          (fun s d ->
            if d.d_lblock >= Inode.ndirect then
              IS.add ((d.d_lblock - Inode.ndirect) / Inode.per_indirect ~block_size:bs) s
            else s)
          IS.empty p.pi_ditems
      in
      let ind =
        Hashtbl.fold (fun idx () s -> IS.add idx s) ino.Inode.dirty_ind ind
      in
      let nind =
        if nmap' <= Inode.ndirect then 0
        else
          (nmap' - Inode.ndirect + Inode.per_indirect ~block_size:bs - 1)
          / Inode.per_indirect ~block_size:bs
      in
      p.pi_ind <- IS.elements ind;
      p.pi_dbl <-
        nind > 1 && (ino.Inode.dbl_dirty || IS.exists (fun i -> i >= 1) ind))
    plans;
  let n_data = List.length ditems in
  let n_ind = List.fold_left (fun n p -> n + List.length p.pi_ind) 0 plans in
  let n_dbl = List.fold_left (fun n p -> n + if p.pi_dbl then 1 else 0) 0 plans in
  let ipb = bs / Layout.inode_size in
  let n_inode_blocks = (List.length plans + ipb - 1) / ipb in
  (plans, n_data + n_ind + n_dbl + n_inode_blocks)

let pop_free t =
  let rec find i =
    if i >= nsegments t then Vfs.error No_space "LFS: out of clean segments"
    else if t.usage.(i).state = Free && not (pinned t i) then i
    else find (i + 1)
  in
  let s = find 0 in
  set_state t s Current;
  t.usage.(s).cold <- false;
  s

let note_closed t =
  t.segs_since_cp <- t.segs_since_cp + 1;
  if t.segs_since_cp >= t.cfg.fs.checkpoint_segments then t.pending_cp <- true;
  Stats.incr t.stats "lfs.segments_closed"

let close_segment t =
  set_state t t.cur_seg Dirty;
  t.cur_seg <- t.next_seg;
  t.cur_off <- 0;
  t.next_seg <- pop_free t;
  note_closed t

let close_cold t =
  if t.cold_seg >= 0 then begin
    set_state t t.cold_seg Dirty;
    t.cold_seg <- -1;
    t.cold_off <- 0;
    note_closed t
  end

(* Write one partial segment containing [ditems] data blocks, the dirty
   metadata of every involved inode, plus the listed imap/usage chunks.
   The caller guarantees the partial fits in a segment.

   With [defer_meta] the partial carries only the data blocks and their
   summary — no inodes or indirect blocks. That is how real LFS commits:
   recovery re-derives the block locations from the summary entries, and
   the (still-dirty) in-memory metadata reaches the log with the next
   syncer flush or checkpoint. *)
let write_partial ?(defer_meta = false) ?(more = false) ?(target = `Hot) t
    ~ditems ~inodes ~imap_chunks ~usage_chunks =
  (* One writer at a time: everything below reads and mutates the shared
     cursor/usage/imap state around disk parks. Taking the mutex before
     the first state read keeps a follower's plan consistent with
     whatever the in-flight writer logged (re-logging a frame it already
     cleaned is harmless; interleaving two packs is not). *)
  (match Sched.of_clock t.clock with
  | Some sched when Sched.in_process sched ->
    while t.seg_writing do
      Sched.wait sched t.seg_write_cond
    done
  | _ -> ());
  t.seg_writing <- true;
  Fun.protect
    ~finally:(fun () ->
      t.seg_writing <- false;
      match Sched.of_clock t.clock with
      | Some sched -> Sched.broadcast sched t.seg_write_cond
      | None -> ())
  @@ fun () ->
  (* Relocation items are re-validated here, under the writer mutex: the
     cleaner captured these platter bytes before (possibly) yielding —
     waiting for this mutex, or parked in the victim read — and a
     foreground flush may have re-logged the block since. Installing the
     stale copy would point the inode at old data, which surfaces as a
     lost update once the newer cached frame is evicted. Skip any item
     whose block no longer lives at the address the cleaner scanned; the
     write that moved it already adjusted the victim's live count. *)
  let ditems =
    List.filter
      (fun d ->
        match d.d_src with
        | `Reloc (_, expect) ->
          let still_there =
            match iget_opt t d.d_inum with
            | Some ino -> Inode.get_addr ino d.d_lblock = expect
            | None -> false
          in
          if not still_there then Stats.incr t.stats "cleaner.reloc_races";
          still_there
        | `Frame _ | `Raw _ -> true)
      ditems
  in
  let target =
    match target with
    | `Cold _
      when (t.cold_seg < 0
            || 1 + List.length ditems > t.cfg.fs.segment_blocks - t.cold_off)
           && free_segments t <= 3 ->
      (* This write would have to pop a fresh cold segment while the
         writable reserve is nearly gone (mid-clean, before the next
         checkpoint refills Free). Segregation is an optimization; the
         reserve is an invariant — fall back to the hot head. *)
      Stats.incr t.stats "cleaner.cold_fallbacks";
      `Hot
    | tgt -> tgt
  in
  match target with
  | `Cold age ->
    (* Relocation write: data blocks + summary only, appended at the
       cleaner's cold head. Cold partials live outside the roll-forward
       chain (seq 0, cold flag): if the machine dies before the next
       checkpoint, recovery still finds every survivor live in its
       victim segment, which Pending state keeps from reuse until that
       same checkpoint. The survivors' inodes are marked dirty so their
       new addresses reach the log with the next hot metadata flush or
       the checkpoint itself. *)
    let bs = block_size t in
    if inodes <> [] || imap_chunks <> [] || usage_chunks <> [] then
      invalid_arg "LFS.write_partial: cold partials carry only data";
    if ditems = [] then ()  (* every survivor lost its race; nothing left *)
    else begin
    let total = 1 + List.length ditems in
    if total > t.cfg.fs.segment_blocks then
      invalid_arg "LFS.write_partial: partial larger than a segment";
    if t.cold_seg >= 0 && total > t.cfg.fs.segment_blocks - t.cold_off then
      close_cold t;
    if t.cold_seg < 0 then begin
      let s = pop_free t in
      t.usage.(s).cold <- true;
      t.cold_seg <- s;
      t.cold_off <- 0;
      Stats.incr t.stats "cleaner.cold_segments"
    end;
    let base = seg_base t t.cold_seg + t.cold_off in
    let pos = ref (base + 1) in
    let entries = ref [] in
    let fills = ref [] in
    List.iter
      (fun d ->
        let ino = iget t d.d_inum in
        let old = Inode.get_addr ino d.d_lblock in
        let addr = !pos in
        incr pos;
        entries :=
          Layout.Data { inum = d.d_inum; lblock = d.d_lblock } :: !entries;
        fills :=
          (fun () ->
            match d.d_src with
            | `Frame f -> f.Cache.data
            | `Raw b | `Reloc (b, _) -> b)
          :: !fills;
        inc_usage ~age t t.cold_seg 1;
        dec_usage t old;
        Inode.set_addr ino ~block_size:bs d.d_lblock addr;
        ino.Inode.dirty <- true)
      ditems;
    let entries = List.rev !entries and fills = List.rev !fills in
    let nblocks = !pos - base in
    let buf = Bytes.make (nblocks * bs) '\000' in
    List.iteri (fun i fill -> Bytes.blit (fill ()) 0 buf ((i + 1) * bs) bs) fills;
    let payload_ck = Layout.checksum (Bytes.sub buf bs ((nblocks - 1) * bs)) in
    let summary_bytes = Bytes.make bs '\000' in
    Layout.write_summary summary_bytes
      {
        Layout.seq = 0L;
        timestamp = Clock.now t.clock;
        next_seg = 0;
        more = false;
        cold = true;
        payload_ck;
        entries;
      };
    Bytes.blit summary_bytes 0 buf 0 bs;
    (* Clear dirty flags before the disk park for the same reason as the
       hot path: a frame re-dirtied while the write is in flight must
       stay dirty. *)
    List.iter
      (fun d ->
        match d.d_src with
        | `Frame f -> Cache.mark_clean t.cache f
        | `Raw _ | `Reloc _ -> ())
      ditems;
    Diskset.write_run t.disk base buf;
    Stats.incr t.stats "lfs.partials";
    Stats.incr t.stats "lfs.cold_partials";
    Stats.add t.stats "lfs.blocks_logged" nblocks;
    t.cold_off <- t.cold_off + nblocks;
    if t.cold_off >= t.cfg.fs.segment_blocks then close_cold t
    end
  | `Hot ->
  let bs = block_size t in
  let plans, n_meta =
    if defer_meta then ([], List.length ditems) else plan t ~ditems ~inodes
  in
  let n_chunks = List.length imap_chunks + List.length usage_chunks in
  let total = 1 + n_meta + n_chunks in
  if total > t.cfg.fs.segment_blocks then
    invalid_arg "LFS.write_partial: partial larger than a segment";
  if total > t.cfg.fs.segment_blocks - t.cur_off then close_segment t;
  let base = seg_base t t.cur_seg + t.cur_off in
  (* Position cursor: summary occupies [base]; blocks follow. *)
  let pos = ref (base + 1) in
  let entries = ref [] in
  let fills = ref [] in
  (* [assign entry fill] gives the next block address to a block whose
     bytes are produced by [fill] (thunked: metadata is encoded only after
     every address assignment is done). *)
  let assign entry fill =
    let addr = !pos in
    incr pos;
    entries := entry :: !entries;
    fills := fill :: !fills;
    inc_usage t t.cur_seg 1;
    addr
  in
  (* 1. Data blocks. *)
  let all_ditems =
    if defer_meta then ditems
    else List.concat_map (fun p -> List.rev p.pi_ditems) plans
  in
  List.iter
    (fun d ->
      let ino = iget t d.d_inum in
      let old = Inode.get_addr ino d.d_lblock in
      let addr =
        assign
          (Layout.Data { inum = d.d_inum; lblock = d.d_lblock })
          (fun () ->
            match d.d_src with
            | `Frame f -> f.Cache.data
            | `Raw b | `Reloc (b, _) -> b)
      in
      dec_usage t old;
      Inode.set_addr ino ~block_size:bs d.d_lblock addr)
    all_ditems;
  (* 2. Indirect blocks. *)
  List.iter
    (fun p ->
      let ino = p.pi_inode in
      List.iter
        (fun idx ->
          let old =
            if idx < Array.length ino.Inode.ind_addrs then
              ino.Inode.ind_addrs.(idx)
            else 0
          in
          let addr =
            assign
              (Layout.Indirect { inum = ino.Inode.inum; index = idx })
              (fun () -> Inode.encode_indirect ino ~block_size:bs idx)
          in
          dec_usage t old;
          if idx >= Array.length ino.Inode.ind_addrs then begin
            let a = Array.make (idx + 1) 0 in
            Array.blit ino.Inode.ind_addrs 0 a 0 (Array.length ino.Inode.ind_addrs);
            ino.Inode.ind_addrs <- a
          end;
          ino.Inode.ind_addrs.(idx) <- addr)
        p.pi_ind)
    plans;
  (* 3. Double-indirect blocks. *)
  List.iter
    (fun p ->
      if p.pi_dbl then begin
        let ino = p.pi_inode in
        let old = ino.Inode.dbl_addr in
        let addr =
          assign
            (Layout.Double_indirect { inum = ino.Inode.inum })
            (fun () -> Inode.encode_double ino ~block_size:bs)
        in
        dec_usage t old;
        ino.Inode.dbl_addr <- addr
      end)
    plans;
  (* 4. Inode blocks (packed). *)
  let ipb = bs / Layout.inode_size in
  let rec pack = function
    | [] -> ()
    | group_src ->
      let group, rest =
        let rec take n = function
          | x :: xs when n > 0 ->
            let g, r = take (n - 1) xs in
            (x :: g, r)
          | l -> ([], l)
        in
        take ipb group_src
      in
      let inums = List.map (fun p -> p.pi_inode.Inode.inum) group in
      let addr =
        assign
          (Layout.Inode_block { inums })
          (fun () ->
            let b = Bytes.make bs '\000' in
            List.iteri
              (fun slot p ->
                Bytes.blit (Inode.encode p.pi_inode) 0 b
                  (slot * Layout.inode_size) Layout.inode_size)
              group;
            b)
      in
      Hashtbl.replace t.inode_block_refs addr (List.length group);
      List.iteri
        (fun slot p ->
          let inum = p.pi_inode.Inode.inum in
          dec_inode_block_ref t t.imap_addr.(inum);
          t.imap_addr.(inum) <- addr;
          t.imap_slot.(inum) <- slot;
          mark_imap_dirty t inum)
        group;
      pack rest
  in
  pack plans;
  (* 5. Inode-map and usage-table chunks (checkpoint partials only). *)
  List.iter
    (fun idx ->
      let old = t.imap_chunk_addr.(idx) in
      let addr =
        assign
          (Layout.Imap_block { index = idx })
          (fun () ->
            let b = Bytes.make bs '\000' in
            let lo = idx * imap_per_chunk t in
            for i = 0 to imap_per_chunk t - 1 do
              let inum = lo + i in
              if inum < max_inodes then begin
                Enc.set_u32 b (i * imap_entry_bytes) t.imap_addr.(inum);
                Enc.set_u8 b ((i * imap_entry_bytes) + 4) t.imap_slot.(inum);
                Enc.set_u8 b
                  ((i * imap_entry_bytes) + 5)
                  (if t.imap_alloc.(inum) then 1 else 0)
              end
            done;
            b)
      in
      dec_usage t old;
      t.imap_chunk_addr.(idx) <- addr)
    imap_chunks;
  List.iter
    (fun idx ->
      let old = t.usage_chunk_addr.(idx) in
      let addr =
        assign
          (Layout.Usage_block { index = idx })
          (fun () ->
            let b = Bytes.make bs '\000' in
            let lo = idx * usage_per_chunk t in
            for i = 0 to usage_per_chunk t - 1 do
              let seg = lo + i in
              if seg < nsegments t then begin
                let u = t.usage.(seg) in
                Enc.set_u32 b (i * usage_entry_bytes) u.live;
                Enc.set_f64 b ((i * usage_entry_bytes) + 4) u.mtime;
                Enc.set_f64 b ((i * usage_entry_bytes) + 12) u.last_write;
                Enc.set_u8 b
                  ((i * usage_entry_bytes) + 20)
                  (if u.cold then 1 else 0)
              end
            done;
            b)
      in
      dec_usage t old;
      t.usage_chunk_addr.(idx) <- addr)
    usage_chunks;
  (* 6. Encode and write the whole partial as one sequential I/O. The
     payload is materialized first so the summary can carry its checksum:
     a torn write may persist the summary block without the blocks it
     describes, and recovery must be able to tell. *)
  let entries = List.rev !entries and fills = List.rev !fills in
  let nblocks = !pos - base in
  let buf = Bytes.make (nblocks * bs) '\000' in
  List.iteri
    (fun i fill ->
      let b = fill () in
      Bytes.blit b 0 buf ((i + 1) * bs) bs)
    fills;
  let payload_ck = Layout.checksum (Bytes.sub buf bs ((nblocks - 1) * bs)) in
  let summary_bytes = Bytes.make bs '\000' in
  Layout.write_summary summary_bytes
    {
      Layout.seq = t.write_seq;
      timestamp = Clock.now t.clock;
      next_seg = t.next_seg;
      more;
      cold = false;
      payload_ck;
      entries;
    };
  Bytes.blit summary_bytes 0 buf 0 bs;
  (* 7. Mark everything clean — BEFORE parking in the disk write. The
     snapshot into [buf] is complete and nothing yields between the blit
     and here, so snapshot+clear is atomic; a concurrent process that
     modifies a frame or inode while the write is parked re-dirties it
     and the change rides the next flush. Clearing after the park used
     to eat exactly those updates. *)
  List.iter
    (fun d ->
      match d.d_src with
      | `Frame f -> Cache.mark_clean t.cache f
      | `Raw _ | `Reloc _ -> ())
    all_ditems;
  List.iter
    (fun p ->
      let ino = p.pi_inode in
      ino.Inode.dirty <- false;
      Hashtbl.reset ino.Inode.dirty_ind;
      ino.Inode.dbl_dirty <- false)
    plans;
  List.iter (fun idx -> t.imap_dirty.(idx) <- false) imap_chunks;
  Diskset.write_run t.disk base buf;
  Stats.incr t.stats "lfs.partials";
  Stats.add t.stats "lfs.blocks_logged" nblocks;
  t.write_seq <- Int64.succ t.write_seq;
  t.cur_off <- t.cur_off + nblocks;
  if t.cur_off >= t.cfg.fs.segment_blocks then close_segment t

let dirty_ditems frames =
  List.map
    (fun f -> { d_inum = f.Cache.file; d_lblock = f.Cache.lblock; d_src = `Frame f })
    frames

(* Write an arbitrary amount of dirty data, chunked into partials that fit
   in a segment. With [atomic] the chunks form one all-or-nothing batch:
   every partial but the last carries the [more] flag, and recovery
   discards a batch whose final partial never reached disk — a commit
   larger than a segment must not become durable by halves. *)
let log_write ?(defer_meta = false) ?(atomic = false) t ~ditems ~inodes =
  (* Writing an inode whose file still has dirty cached data would put a
     size and block map on disk that describe bytes which are only in
     memory; pull every involved file's eligible dirty frames into the
     write so each partial is self-consistent. (Irrelevant when metadata
     is deferred: no inodes are written at all.) *)
  let files = Hashtbl.create 8 in
  List.iter (fun d -> Hashtbl.replace files d.d_inum ()) ditems;
  List.iter
    (fun (ino : Inode.t) -> Hashtbl.replace files ino.Inode.inum ())
    inodes;
  let have = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace have (d.d_inum, d.d_lblock) ()) ditems;
  let extra =
    if defer_meta then []
    else
      Hashtbl.fold
        (fun inum () acc ->
          List.filter
            (fun (f : Cache.frame) ->
              not (Hashtbl.mem have (inum, f.Cache.lblock)))
            (Cache.dirty_frames t.cache ~file:inum ())
          @ acc)
        files []
  in
  let ditems = ditems @ dirty_ditems extra in
  let max_data = max 1 (t.cfg.fs.segment_blocks * 3 / 4) in
  let rec chunks = function
    | [] -> []
    | l ->
      let rec take n = function
        | x :: xs when n > 0 ->
          let g, r = take (n - 1) xs in
          (x :: g, r)
        | l -> ([], l)
      in
      let g, r = take max_data l in
      g :: chunks r
  in
  match ditems with
  | [] ->
    if List.exists (fun (i : Inode.t) -> i.Inode.dirty) inodes then
      write_partial ~defer_meta t ~ditems:[] ~inodes ~imap_chunks:[]
        ~usage_chunks:[]
  | _ ->
    let groups = chunks ditems in
    let last = List.length groups - 1 in
    List.iteri
      (fun i g ->
        (* Attach the extra inodes to the last chunk so their final state
           is what lands on disk. *)
        let inodes = if i = last then inodes else [] in
        write_partial ~defer_meta ~more:(atomic && i < last) t ~ditems:g
          ~inodes ~imap_chunks:[] ~usage_chunks:[])
      groups

let dirty_inodes t =
  Hashtbl.fold (fun _ ino acc -> if ino.Inode.dirty then ino :: acc else acc) t.inodes []
  |> List.sort (fun a b -> Int.compare a.Inode.inum b.Inode.inum)

(* Checkpoint ------------------------------------------------------------ *)

let checkpoint t =
  let cp_t0 = Clock.now t.clock in
  let maint_tok = maint_enter t in
  (* A checkpoint must leave the on-disk state self-consistent: flush the
     eligible dirty data first (transaction-owned buffers stay pinned),
     so no inode reaches disk describing data that is only in memory. *)
  (* Files with transaction-pinned buffers keep their older on-disk inode
     until commit forces the buffers. *)
  let file_has_txn_frames inum =
    List.exists
      (fun (f : Cache.frame) -> f.Cache.txn >= 0)
      (Cache.file_frames t.cache inum)
  in
  let flushable =
    List.filter
      (fun (ino : Inode.t) -> not (file_has_txn_frames ino.Inode.inum))
      (dirty_inodes t)
  in
  log_write t
    ~ditems:(dirty_ditems (Cache.dirty_frames t.cache ()))
    ~inodes:flushable;
  (* Then every dirty imap chunk and the whole usage table, and finally
     the alternating checkpoint region. *)
  let imap_chunks =
    List.filter (fun i -> t.imap_dirty.(i)) (List.init (n_imap_chunks t) Fun.id)
  in
  let usage_chunks = List.init (n_usage_chunks t) Fun.id in
  write_partial t ~ditems:[] ~inodes:[] ~imap_chunks ~usage_chunks;
  (* Segments cleaned since the previous checkpoint are now safe to reuse:
     no checkpoint references their old contents any more. *)
  Array.iteri
    (fun i u -> if u.state = Pending then set_state t i Free)
    t.usage;
  t.cleaned_since_cp <- 0;
  t.cp_seq <- Int64.succ t.cp_seq;
  let cp =
    {
      Layout.cp_seq = t.cp_seq;
      cp_timestamp = Clock.now t.clock;
      cur_seg = t.cur_seg;
      cur_off = t.cur_off;
      cp_next_seg = t.next_seg;
      next_inum = t.next_inum;
      write_seq = t.write_seq;
      imap_addrs = Array.copy t.imap_chunk_addr;
      usage_addrs = Array.copy t.usage_chunk_addr;
    }
  in
  let b = Bytes.make (block_size t) '\000' in
  Layout.write_checkpoint b cp;
  let r0, r1 = Layout.checkpoint_blknos in
  let region = if Int64.rem t.cp_seq 2L = 0L then r0 else r1 in
  Diskset.write t.disk region b;
  t.segs_since_cp <- 0;
  t.pending_cp <- false;
  Stats.incr t.stats "lfs.checkpoints";
  Stats.observe t.stats "lfs.checkpoint" (Clock.now t.clock -. cp_t0);
  if Stats.tracing t.stats then
    Stats.emit t.stats ~time:(Clock.now t.clock) "lfs.checkpoint"
      [
        ("seq", Trace.I (Int64.to_int t.cp_seq));
        ("duration_s", Trace.F (Clock.now t.clock -. cp_t0));
      ];
  maint_exit t maint_tok

(* Cleaner --------------------------------------------------------------- *)

let clean_victim t victim =
  let bs = block_size t in
  let u = t.usage.(victim) in
  if u.live = 0 then begin
    set_state t victim Pending;
    t.cleaned_since_cp <- t.cleaned_since_cp + 1;
    (* A dead segment is still a cleaned segment: count it and observe a
       zero-cost clean, or bench artifacts undercount cleaner activity
       and the write-cost metric loses its cheapest points. *)
    Stats.incr t.stats "cleaner.reclaimed_dead";
    Stats.incr t.stats "cleaner.segments";
    Stats.observe t.stats "cleaner.clean" 0.0;
    Stats.add t.stats "cleaner.blocks_reclaimed" t.cfg.fs.segment_blocks;
    Stats.observe t.stats "cleaner.write_cost" 0.0;
    if Stats.tracing t.stats then
      Stats.emit t.stats ~time:(Clock.now t.clock) "cleaner.victim"
        [ ("seg", Trace.I victim); ("live", Trace.I 0) ];
    true
  end
  else begin
    let t0 = Clock.now t.clock in
    let live0 = u.live in
    Stats.add t.stats "cleaner.victim_live" u.live;
    let seg_blocks = t.cfg.fs.segment_blocks in
    let run = Diskset.read_run t.disk (seg_base t victim) seg_blocks in
    let block i = Bytes.sub run (i * bs) bs in
    let segregate = t.cfg.fs.cleaner_segregate in
    let ditems = ref [] in
    let cold_items = ref [] in
    let extra = ref [] in
    let imap_chunks = ref [] in
    let usage_chunks = ref [] in
    let add_inode ino =
      if not (List.memq ino !extra) then extra := ino :: !extra
    in
    let pos = ref 0 in
    let continue = ref true in
    while !continue && !pos < seg_blocks do
      match Layout.read_summary (block !pos) with
      | None -> continue := false
      | Some s ->
        List.iteri
          (fun i entry ->
            let addr = seg_base t victim + !pos + 1 + i in
            match entry with
            | Layout.Data { inum; lblock } -> (
              match iget_opt t inum with
              | Some ino when Inode.get_addr ino lblock = addr -> (
                (* Live. A dirty cached copy supersedes the disk bytes —
                   but only if no transaction owns it: the kernel
                   transaction manager aborts by invalidating its dirty
                   frames and re-reading the on-disk before-image (the
                   no-overwrite property), so for a txn-owned frame it is
                   the PLATTER copy that must stay reachable. Relocating
                   the uncommitted frame content instead would point the
                   inode at the after-image and break rollback. *)
                match Cache.lookup t.cache ~file:inum ~lblock with
                | Some f when f.Cache.dirty && f.Cache.txn < 0 ->
                  (* Freshly dirtied in memory: genuinely hot, goes to
                     the main head with the new write it really is. *)
                  ditems :=
                    { d_inum = inum; d_lblock = lblock; d_src = `Frame f }
                    :: !ditems
                | _ ->
                  let d =
                    {
                      d_inum = inum;
                      d_lblock = lblock;
                      d_src = `Reloc (block (!pos + 1 + i), addr);
                    }
                  in
                  if segregate then begin
                    (* A survivor copied straight off the platter is cold
                       by definition: segregate it so it does not re-mix
                       with hot writes, and flush its inode promptly (a
                       cold partial is outside the roll-forward chain, so
                       only metadata makes the new address durable). *)
                    cold_items := d :: !cold_items;
                    add_inode ino
                  end
                  else ditems := d :: !ditems)
              | _ -> ())
            | Layout.Indirect { inum; index } -> (
              match iget_opt t inum with
              | Some ino
                when index < Array.length ino.Inode.ind_addrs
                     && ino.Inode.ind_addrs.(index) = addr ->
                Hashtbl.replace ino.Inode.dirty_ind index ();
                ino.Inode.dirty <- true;
                if index >= 1 then ino.Inode.dbl_dirty <- true;
                add_inode ino
              | _ -> ())
            | Layout.Double_indirect { inum } -> (
              match iget_opt t inum with
              | Some ino when ino.Inode.dbl_addr = addr ->
                ino.Inode.dbl_dirty <- true;
                ino.Inode.dirty <- true;
                add_inode ino
              | _ -> ())
            | Layout.Inode_block { inums } ->
              List.iter
                (fun inum ->
                  if
                    inum > 0 && inum < max_inodes
                    && t.imap_alloc.(inum)
                    && t.imap_addr.(inum) = addr
                  then
                    match iget_opt t inum with
                    | Some ino ->
                      ino.Inode.dirty <- true;
                      add_inode ino
                    | None -> ())
                inums
            | Layout.Imap_block { index } ->
              if t.imap_chunk_addr.(index) = addr then
                imap_chunks := index :: !imap_chunks
            | Layout.Usage_block { index } ->
              if t.usage_chunk_addr.(index) = addr then
                usage_chunks := index :: !usage_chunks)
          s.Layout.entries;
        pos := !pos + 1 + List.length s.Layout.entries
    done;
    (* Copy the survivors out. Cold survivors (raw platter copies) go to
       the relocation head, inheriting the victim's last-write time so the
       data keeps looking as old as it is to the cost-benefit policy; hot
       data, metadata and table chunks ride the regular log. *)
    let seg_age = u.last_write in
    if !cold_items <> [] then begin
      (* Pack each cold partial to exactly the relocation segment's
         remaining capacity: a cold segment must close 100 % full, or its
         inherited old age combined with a slack tail makes it the
         cost-benefit policy's next victim and the cleaner copies the
         same cold data in a loop. *)
      let max_entries = Layout.max_summary_entries ~block_size:bs in
      let items = ref (List.rev !cold_items) in
      while !items <> [] do
        let cap =
          if t.cold_seg >= 0 && t.cold_off < seg_blocks - 1 then
            seg_blocks - t.cold_off - 1
          else seg_blocks - 1
        in
        let cap = min cap max_entries in
        let rec take n acc = function
          | x :: xs when n > 0 -> take (n - 1) (x :: acc) xs
          | rest -> (List.rev acc, rest)
        in
        let g, rest = take cap [] !items in
        items := rest;
        write_partial ~target:(`Cold seg_age) t ~ditems:g ~inodes:[]
          ~imap_chunks:[] ~usage_chunks:[]
      done
    end;
    log_write t ~ditems:(List.rev !ditems) ~inodes:!extra;
    write_partial t ~ditems:[] ~inodes:[] ~imap_chunks:!imap_chunks
      ~usage_chunks:!usage_chunks;
    if u.live <> 0 then
      invalid_arg
        (Printf.sprintf "LFS cleaner: segment %d still has %d live blocks"
           victim u.live);
    set_state t victim Pending;
    t.cleaned_since_cp <- t.cleaned_since_cp + 1;
    let dt = Clock.now t.clock -. t0 in
    Stats.incr t.stats "cleaner.segments";
    Stats.add_time t.stats "cleaner.busy" dt;
    Stats.observe t.stats "cleaner.clean" dt;
    (* Write cost: blocks physically copied per block of free space
       gained — the per-victim metric the cleanersweep bench compares
       policies on. *)
    Stats.add t.stats "cleaner.blocks_moved" live0;
    let reclaimed = seg_blocks - live0 in
    Stats.add t.stats "cleaner.blocks_reclaimed" reclaimed;
    if reclaimed > 0 then
      Stats.observe t.stats "cleaner.write_cost"
        (float_of_int live0 /. float_of_int reclaimed);
    if Stats.tracing t.stats then
      Stats.emit t.stats ~time:(Clock.now t.clock) "cleaner.victim"
        [ ("seg", Trace.I victim); ("live", Trace.I live0); ("duration_s", Trace.F dt) ];
    true
  end

(* [?policy] overrides the configured victim policy for this one clean.
   The foreground stall paths pass [`Greedy]: when regular processing is
   blocked waiting for free space, the only objective is reclaiming it at
   minimum copy cost. Cost-benefit's value — paying extra copies now to
   segregate cold data and cheapen every future clean — is a long-term
   investment, so it is the background/idle cleaner that makes it. *)
let clean_once ?policy t =
  let policy =
    match policy with Some p -> p | None -> t.cfg.fs.cleaner_policy
  in
  let maint_tok = maint_enter t in
  let r =
    match
      Policy.choose ~policy ~nsegments:(nsegments t)
        ~segment_blocks:t.cfg.fs.segment_blocks ~now:(Clock.now t.clock)
        ~live:(fun i -> t.usage.(i).live)
        ~last_write:(fun i -> t.usage.(i).last_write)
        ~candidate:(fun i -> t.usage.(i).state = Dirty && not (pinned t i))
    with
    | None -> false
    | Some victim -> clean_victim t victim
  in
  maint_exit t maint_tok;
  r

let maybe_clean t =
  if free_segments t < t.cfg.fs.cleaner_low_segments then begin
    let t0 = Clock.now t.clock in
    if t.cfg.fs.lfs_user_cleaner then begin
      (* User-space cleaner (Section 5.4): cleans incrementally, one
         segment per opportunity, without locking files for long bursts.
         Checkpoint only when a segment was actually cleaned — an idle
         tick with no victim must not pay the checkpoint's forced
         metadata flush — and batch a few cleans per checkpoint: the
         checkpoint exists to turn Pending segments into Free ones, so
         it is needed only before the writable reserve runs out. *)
      if clean_once ~policy:`Greedy t then begin
        if
          free_segments t <= 4
          || t.cleaned_since_cp >= max 1 (t.cfg.fs.checkpoint_segments / 2)
        then checkpoint t
      end
    end
    else begin
      (* Kernel cleaner: cleans a batch to the high-water mark while
         holding the files locked; regular processing observes one long
         stall (Section 5.1). [t.n_reclaimable] is maintained
         incrementally by [set_state], so the loop no longer refolds the
         whole usage table up to three times per iteration. *)
      let continue = ref true in
      let stalled = ref 0 in
      while !continue && t.n_reclaimable < t.cfg.fs.cleaner_high_segments do
        let before = t.n_reclaimable in
        if not (clean_once ~policy:`Greedy t) then continue := false
        else begin
          (* Cleaned segments only become reusable at a checkpoint; do
             that mid-batch if the writable reserve runs low, otherwise
             the batch's own relocation writes could starve the log. *)
          if free_segments t <= 4 then checkpoint t;
          (* A single clean can be net-zero when its relocation closes a
             segment; only sustained lack of progress means the disk is
             genuinely full of live data. *)
          if t.n_reclaimable <= before then incr stalled else stalled := 0;
          if !stalled >= 4 then continue := false
        end
      done;
      (* One checkpoint for the whole batch turns Pending segments into
         Free ones. *)
      checkpoint t
    end;
    let stall = Clock.now t.clock -. t0 in
    if stall > 0.0 then begin
      Stats.add_time t.stats "cleaner.stall" stall;
      Stats.record_max t.stats "cleaner.max_stall" stall;
      Stats.observe t.stats "cleaner.stall" stall;
      if Stats.tracing t.stats then
        Stats.emit t.stats ~time:(Clock.now t.clock) "cleaner.stall"
          [ ("duration_s", Trace.F stall) ]
    end
  end

(* One syncer pass: flush everything dirty as a segment write. *)
let syncer_run t =
  let maint_tok = maint_enter t in
  t.last_syncer <- Clock.now t.clock;
  let frames = Cache.dirty_frames t.cache () in
  log_write t ~ditems:(dirty_ditems frames) ~inodes:(dirty_inodes t);
  Stats.incr t.stats "lfs.syncer_runs";
  maint_exit t maint_tok

(* Syncer + maintenance hook executed at every public operation. When
   the syncer and cleaner run as background processes ([start_background])
   the inline syncer is skipped, but the cleaner check stays as an
   emergency backstop: a write burst between cleaner wakeups must never
   exhaust the log's writable reserve. *)
let tick t =
  check_alive t;
  if maint_idle t then begin
    if
      (not t.bg)
      && Clock.now t.clock -. t.last_syncer >= t.cfg.fs.syncer_interval_s
    then syncer_run t;
    maybe_clean t;
    if t.pending_cp then checkpoint t
  end

let start_background t =
  match Sched.of_clock t.clock with
  | None -> ()
  | Some sched ->
    if not t.bg then begin
      t.bg <- true;
      (* The 30 s syncer becomes a real process instead of a check
         piggy-backed on every operation. *)
      Sched.spawn ~daemon:true sched (fun () ->
          let rec loop () =
            if not t.crashed then begin
              Sched.delay sched t.cfg.fs.syncer_interval_s;
              if not t.crashed then begin
                if maint_idle t then syncer_run t;
                loop ()
              end
            end
          in
          loop ());
      (* The cleaner polls for low free space off the request path; the
         inline backstop in [tick] still covers bursts between polls.
         With [cleaner_adaptive] the daemon also watches the disk queues:
         it backs off while foreground I/O is waiting, and cleans ahead
         toward the high-water mark when the machine is idle, so the
         emergency batch-clean stall almost never has to fire. *)
      Sched.spawn ~daemon:true sched (fun () ->
          let adaptive_pass () =
            if free_segments t < t.cfg.fs.cleaner_low_segments then begin
              (* Below low water the reserve is at risk: pay the stall. *)
              maybe_clean t;
              0.5
            end
            else if Diskset.queue_depth t.disk > t.cfg.fs.cleaner_backoff_qdepth
            then begin
              Stats.incr t.stats "cleaner.backoffs";
              0.5
            end
            else if t.n_reclaimable < t.cfg.fs.cleaner_high_segments then begin
              if clean_once t then begin
                Stats.incr t.stats "cleaner.idle_cleans";
                if
                  t.cleaned_since_cp
                  >= max 1 (t.cfg.fs.checkpoint_segments / 2)
                then checkpoint t;
                (* More idle headroom to win back: wake up again soon. *)
                0.05
              end
              else 0.5
            end
            else 0.5
          in
          let rec loop () =
            if not t.crashed then begin
              let wait =
                if maint_idle t then begin
                  let w =
                    if t.cfg.fs.cleaner_adaptive then adaptive_pass ()
                    else begin
                      maybe_clean t;
                      0.5
                    end
                  in
                  if t.pending_cp then checkpoint t;
                  w
                end
                else
                  (* A maintenance section is open — likely a commit
                     flush parked in its segment write. Those are
                     milliseconds long: retry shortly instead of
                     skipping a whole period, or a busy log gates the
                     daemon off exactly when cleaning matters most. *)
                  0.05
              in
              Sched.delay sched wait;
              if not t.crashed then loop ()
            end
          in
          Sched.delay sched 0.5;
          if not t.crashed then loop ())
    end

(* Page access ----------------------------------------------------------- *)

let zero_block t = Bytes.make (block_size t) '\000'

let get_page t ~inum ~lblock =
  check_alive t;
  (* With the transaction manager embedded, every buffer access checks
     whether the file is transaction-protected — the only cost
     non-transactional applications pay (Section 5.2). *)
  if t.cfg.fs.kernel_txn then
    Cpu.charge t.clock t.stats t.cfg.cpu Cpu.Protection_check;
  match Cache.lookup t.cache ~file:inum ~lblock with
  | Some f -> f
  | None -> (
    let ino = iget t inum in
    let addr = Inode.get_addr ino lblock in
    match Sched.of_clock t.clock with
    | Some sched
      when Sched.in_process sched && (not (maint_here t sched)) && addr <> 0 ->
      (* Cache miss under the scheduler: the read joins the live disk
         queue and this process parks. LFS maintenance paths stay on the
         synchronous branch — they must not yield mid-write. *)
      let rec fetch addr =
        let data = Diskset.read_async t.disk addr in
        (* Another process may have brought the page in (and dirtied it)
           while we were parked: never clobber a present frame. *)
        match Cache.lookup t.cache ~file:inum ~lblock with
        | Some f -> f
        | None ->
          (* The cleaner may have relocated the block while we were
             parked — and once the following checkpoint frees the victim
             segment, the address we read from can be overwritten by new
             writes. A read is only trustworthy if the inode still maps
             the block to the address it was issued against; otherwise
             chase the relocation. *)
          let addr' = Inode.get_addr (iget t inum) lblock in
          if addr' = addr then Cache.insert t.cache ~file:inum ~lblock data
          else begin
            Stats.incr t.stats "lfs.read_relocated";
            if addr' = 0 then Cache.insert t.cache ~file:inum ~lblock (zero_block t)
            else fetch addr'
          end
      in
      fetch addr
    | _ ->
      let data = if addr = 0 then zero_block t else Diskset.read t.disk addr in
      Cache.insert t.cache ~file:inum ~lblock data)

let new_page t ~inum ~lblock =
  check_alive t;
  match Cache.lookup t.cache ~file:inum ~lblock with
  | Some f -> f
  | None -> Cache.insert t.cache ~file:inum ~lblock (zero_block t)

let page_dirty t f =
  Cache.mark_dirty t.cache f;
  let ino = iget t f.Cache.file in
  ino.Inode.dirty <- true;
  ino.Inode.mtime <- Clock.now t.clock

let extend_to t ~inum size =
  let ino = iget t inum in
  if size > ino.Inode.size then begin
    ino.Inode.size <- size;
    ino.Inode.dirty <- true
  end

let force_frames t frames =
  check_alive t;
  (* Commit-path reserve backstop. Kernel-transaction workloads reach
     the log through this hook alone — they may never issue the vfs
     operation whose [tick] runs the emergency cleaner — and under
     sustained load some commit flush is nearly always mid-section, so
     the gated [tick] below would never fire its batch clean. When the
     writable reserve is low, stall this committer until the open
     sections drain; the clean then happens on the foreground path,
     which is exactly the Section 5.1 cleaning stall. *)
  (if free_segments t < t.cfg.fs.cleaner_low_segments then
     match Sched.of_clock t.clock with
     | Some sched when Sched.in_process sched ->
       while not (maint_idle t) do
         Sched.delay sched 0.001
       done
     | _ -> ());
  tick t;
  let maint_tok = maint_enter t in
  log_write ~defer_meta:true ~atomic:true t ~ditems:(dirty_ditems frames)
    ~inodes:[];
  maint_exit t maint_tok

let fsync_inum t inum =
  check_alive t;
  let maint_tok = maint_enter t in
  let frames = Cache.dirty_frames t.cache ~file:inum () in
  let inodes = match iget_opt t inum with
    | Some ino when ino.Inode.dirty -> [ ino ]
    | _ -> []
  in
  log_write t ~ditems:(dirty_ditems frames) ~inodes;
  maint_exit t maint_tok

let sync t =
  check_alive t;
  let maint_tok = maint_enter t in
  let frames = Cache.dirty_frames t.cache () in
  log_write t ~ditems:(dirty_ditems frames) ~inodes:[];
  checkpoint t;
  maint_exit t maint_tok

(* Byte-level file I/O --------------------------------------------------- *)

let read_bytes t inum ~off ~len =
  let ino = iget t inum in
  let bs = block_size t in
  if off < 0 || len < 0 then Vfs.error Invalid "read: negative offset/length";
  let len = max 0 (min len (ino.Inode.size - off)) in
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let pos = off + !copied in
    let lb = pos / bs and boff = pos mod bs in
    let n = min (bs - boff) (len - !copied) in
    let f = get_page t ~inum ~lblock:lb in
    Bytes.blit f.Cache.data boff out !copied n;
    Cpu.charge t.clock t.stats t.cfg.cpu Cpu.Copy_block;
    copied := !copied + n
  done;
  out

let write_bytes t inum ~off data =
  let ino = iget t inum in
  let bs = block_size t in
  let len = Bytes.length data in
  if off < 0 then Vfs.error Invalid "write: negative offset";
  let written = ref 0 in
  while !written < len do
    let pos = off + !written in
    let lb = pos / bs and boff = pos mod bs in
    let n = min (bs - boff) (len - !written) in
    let f =
      (* A read-modify-write is needed unless the write covers the whole
         block or the block lies entirely at or past end of file. *)
      if n = bs || lb * bs >= ino.Inode.size then new_page t ~inum ~lblock:lb
      else get_page t ~inum ~lblock:lb
    in
    Bytes.blit data !written f.Cache.data boff n;
    page_dirty t f;
    Cpu.charge t.clock t.stats t.cfg.cpu Cpu.Copy_block;
    written := !written + n
  done;
  if off + len > ino.Inode.size then begin
    ino.Inode.size <- off + len;
    ino.Inode.dirty <- true
  end

let truncate_bytes t inum len =
  let ino = iget t inum in
  let bs = block_size t in
  if len < 0 then Vfs.error Invalid "truncate: negative length";
  if len < ino.Inode.size then begin
    let keep = (len + bs - 1) / bs in
    let old_n = Inode.nblocks ino in
    (* Release on-disk blocks past the cut. *)
    for lb = keep to old_n - 1 do
      dec_usage t (Inode.get_addr ino lb)
    done;
    (* Drop cached frames past the cut — they may exist even for blocks
       that never reached the log. *)
    List.iter
      (fun f -> if f.Cache.lblock >= keep then Cache.invalidate t.cache f)
      (Cache.file_frames t.cache inum);
    (* Zero the tail of the boundary block so a later regrow reads zeros,
       as POSIX requires. *)
    (if len mod bs <> 0 && len < ino.Inode.size then begin
       let f = get_page t ~inum ~lblock:(len / bs) in
       Bytes.fill f.Cache.data (len mod bs) (bs - (len mod bs)) '\000';
       page_dirty t f
     end);
    let old_nind = Inode.indirect_count ino ~block_size:bs in
    Inode.truncate_map ino ~block_size:bs keep;
    let new_nind = Inode.indirect_count ino ~block_size:bs in
    for idx = new_nind to old_nind - 1 do
      if idx < Array.length ino.Inode.ind_addrs then begin
        dec_usage t ino.Inode.ind_addrs.(idx);
        ino.Inode.ind_addrs.(idx) <- 0
      end
    done;
    if new_nind <= 1 && ino.Inode.dbl_addr <> 0 then begin
      dec_usage t ino.Inode.dbl_addr;
      ino.Inode.dbl_addr <- 0;
      ino.Inode.dbl_dirty <- false
    end
  end;
  ino.Inode.size <- len;
  ino.Inode.dirty <- true

(* Inode allocation ------------------------------------------------------ *)

let alloc_inode t ~kind =
  let inum =
    match t.free_inums with
    | i :: rest ->
      t.free_inums <- rest;
      i
    | [] ->
      if t.next_inum >= max_inodes then Vfs.error No_space "LFS: out of inodes";
      let i = t.next_inum in
      t.next_inum <- i + 1;
      i
  in
  let ino = Inode.create ~inum ~kind in
  ino.Inode.mtime <- Clock.now t.clock;
  Hashtbl.replace t.inodes inum ino;
  t.imap_alloc.(inum) <- true;
  t.imap_addr.(inum) <- 0;
  t.imap_slot.(inum) <- 0;
  mark_imap_dirty t inum;
  inum

let free_inode t inum =
  truncate_bytes t inum 0;
  (match Cache.file_frames t.cache inum with
  | frames -> List.iter (Cache.invalidate t.cache) frames);
  dec_inode_block_ref t t.imap_addr.(inum);
  t.imap_addr.(inum) <- 0;
  t.imap_alloc.(inum) <- false;
  mark_imap_dirty t inum;
  Hashtbl.remove t.inodes inum;
  t.free_inums <- inum :: t.free_inums

(* Namespace ------------------------------------------------------------- *)

let root_inum = 1

module Store = struct
  type nonrec t = t

  let root _ = root_inum
  let read t inum ~off ~len = read_bytes t inum ~off ~len
  let write t inum ~off data = write_bytes t inum ~off data
  let truncate t inum ~len = truncate_bytes t inum len
  let size t inum = (iget t inum).Inode.size
  let alloc_inode t ~kind = alloc_inode t ~kind
  let free_inode t inum = free_inode t inum
end

module Ns = Namespace.Make (Store)

let inum_of t path =
  match Ns.lookup t path with
  | Some (inum, _) -> inum
  | None -> Vfs.error Not_found "%s" path

let is_protected t inum =
  match iget_opt t inum with Some ino -> ino.Inode.protected_ | None -> false

(* Construction ---------------------------------------------------------- *)

let make_empty disk clock stats (cfg : Config.t) sb =
  (* LFS-side histograms appear in every benchmark artifact, samples or
     not (short runs may never checkpoint or clean). *)
  List.iter (Stats.declare stats)
    [ "lfs.checkpoint"; "cleaner.clean"; "cleaner.stall"; "cleaner.write_cost" ];
  let nseg = sb.Layout.nsegments in
  let t =
    {
      disk;
      clock;
      stats;
      cfg;
      sb;
      cache = Cache.create clock stats cfg.cpu ~capacity:cfg.fs.cache_blocks;
      inodes = Hashtbl.create 64;
      imap_addr = Array.make max_inodes 0;
      imap_slot = Array.make max_inodes 0;
      imap_alloc = Array.make max_inodes false;
      imap_dirty = Array.make ((max_inodes * imap_entry_bytes / sb.Layout.block_size) + 1) false;
      imap_chunk_addr = Array.make ((max_inodes * imap_entry_bytes / sb.Layout.block_size) + 1) 0;
      usage_chunk_addr =
        Array.make ((nseg * usage_entry_bytes / sb.Layout.block_size) + 1) 0;
      inode_block_refs = Hashtbl.create 64;
      usage =
        Array.init nseg (fun _ ->
            { live = 0; mtime = 0.0; last_write = 0.0; cold = false; state = Free });
      next_inum = root_inum_init;
      free_inums = [];
      cur_seg = 0;
      cur_off = 0;
      next_seg = 1;
      cold_seg = -1;
      cold_off = 0;
      n_reclaimable = nseg;
      cleaned_since_cp = 0;
      write_seq = 1L;
      cp_seq = 0L;
      segs_since_cp = 0;
      last_syncer = Clock.now clock;
      maint = [];
      seg_writing = false;
      seg_write_cond = Sched.condition ();
      pending_cp = false;
      crashed = false;
      bg = false;
      snaps = [];
      next_snap = 1;
    }
  in
  Cache.set_writeback t.cache (fun _victim ->
      (* Cache pressure: flush all eligible dirty blocks as a segment
         write, which leaves the victim clean. *)
      let maint_tok = maint_enter t in
      let frames = Cache.dirty_frames t.cache () in
      log_write t ~ditems:(dirty_ditems frames) ~inodes:[];
      maint_exit t maint_tok);
  t

let format disk clock stats (cfg : Config.t) =
  let sb =
    {
      Layout.block_size = cfg.disk.block_size;
      nblocks = Diskset.nblocks disk;
      segment_blocks = cfg.fs.segment_blocks;
      nsegments =
        Layout.nsegments_of ~block_size:cfg.disk.block_size
          ~nblocks:(Diskset.nblocks disk) ~segment_blocks:cfg.fs.segment_blocks;
      max_inodes;
    }
  in
  let b = Bytes.make cfg.disk.block_size '\000' in
  Layout.write_superblock b sb;
  Diskset.write disk Layout.superblock_blkno b;
  let t = make_empty disk clock stats cfg sb in
  set_state t 0 Current;
  set_state t 1 Current;
  (* Root directory. *)
  let inum = alloc_inode t ~kind:Vfs.Dir in
  assert (inum = root_inum);
  let maint_tok = maint_enter t in
  checkpoint t;
  maint_exit t maint_tok;
  t

(* Mount: load the newest checkpoint, roll forward, rebuild usage. *)

let load_checkpoint t =
  let r0, r1 = Layout.checkpoint_blknos in
  let cp0 = Layout.read_checkpoint (Diskset.read t.disk r0) in
  let cp1 = Layout.read_checkpoint (Diskset.read t.disk r1) in
  match (cp0, cp1) with
  | None, None -> Vfs.error Invalid "LFS mount: no valid checkpoint"
  | Some cp, None | None, Some cp -> cp
  | Some a, Some b -> if a.Layout.cp_seq >= b.Layout.cp_seq then a else b

(* Test-only hook: when set, roll-forward trusts a summary without
   verifying the checksum of its payload blocks — reintroducing the
   torn-commit bug the checksum exists to catch. The fault-injection
   sweep must then report durability violations, which is how the test
   suite proves the oracle is able to fail. *)
let test_disable_payload_check = ref false

let roll_forward t =
  (* Follow the chain of partial segments written after the checkpoint,
     applying inode locations; stop at the first gap in the sequence. *)
  let apply blkno (s : Layout.summary) =
    List.iteri
      (fun i entry ->
        let addr = blkno + 1 + i in
        match entry with
        | Layout.Inode_block { inums } ->
          List.iteri
            (fun slot inum ->
              if inum > 0 && inum < max_inodes then begin
                t.imap_addr.(inum) <- addr;
                t.imap_slot.(inum) <- slot;
                t.imap_alloc.(inum) <- true;
                (* Any inode loaded earlier in this scan is stale now:
                   the block written later in the log wins. *)
                Hashtbl.remove t.inodes inum;
                if inum >= t.next_inum then t.next_inum <- inum + 1
              end)
            inums
        | Layout.Imap_block { index } -> t.imap_chunk_addr.(index) <- addr
        | Layout.Usage_block { index } -> t.usage_chunk_addr.(index) <- addr
        | Layout.Data { inum; lblock } -> (
          (* Commit partials defer their metadata; the summary entry is
             authoritative for the block's new location. *)
          match iget_opt t inum with
          | Some ino ->
            Inode.set_addr ino ~block_size:(block_size t) lblock addr;
            if (lblock + 1) * block_size t > ino.Inode.size then
              ino.Inode.size <- (lblock + 1) * block_size t;
            ino.Inode.dirty <- true
          | None -> () (* file created but its inode never reached disk *))
        | Layout.Indirect _ | Layout.Double_indirect _ -> ())
      s.Layout.entries;
    Stats.incr t.stats "lfs.rolled_partials"
  in
  (* A sealed summary only proves the summary block itself persisted; a
     write torn inside the partial leaves it describing garbage. *)
  let payload_ok blkno (s : Layout.summary) =
    !test_disable_payload_check
    ||
    let n = List.length s.Layout.entries in
    n = 0
    || Layout.checksum (Diskset.read_run t.disk (blkno + 1) n) = s.Layout.payload_ck
  in
  let expected = ref t.write_seq in
  let seg = ref t.cur_seg and off = ref t.cur_off in
  let next = ref t.next_seg in
  (* Partials carrying [more] belong to an atomic batch: buffer them and
     apply only when the batch's final partial validates too, so a commit
     spanning several partials is recovered all-or-nothing. *)
  let batch = ref [] in
  let batch_start = ref None in
  let continue = ref true in
  while !continue do
    if !off >= t.cfg.fs.segment_blocks then begin
      seg := !next;
      off := 0
    end;
    let blkno = seg_base t !seg + !off in
    match Layout.read_summary (Diskset.read t.disk blkno) with
    (* Cold partials carry seq 0 and can never match [expected] (>= 1);
       the explicit [cold] check makes the exclusion structural rather
       than an accident of sequence numbering. *)
    | Some s
      when Int64.equal s.Layout.seq !expected
           && (not s.Layout.cold)
           && payload_ok blkno s ->
      if !batch = [] then batch_start := Some (!seg, !off, !next, !expected);
      batch := (blkno, s) :: !batch;
      if not s.Layout.more then begin
        List.iter (fun (b, p) -> apply b p) (List.rev !batch);
        batch := [];
        batch_start := None
      end;
      expected := Int64.succ !expected;
      off := !off + 1 + List.length s.Layout.entries;
      next := s.Layout.next_seg
    | Some _ | None ->
      if !off > 0 then begin
        (* Maybe the writer moved to the next segment early. *)
        let blkno' = seg_base t !next in
        match Layout.read_summary (Diskset.read t.disk blkno') with
        | Some s when Int64.equal s.Layout.seq !expected && not s.Layout.cold ->
          seg := !next;
          off := 0
        | Some _ | None -> continue := false
      end
      else continue := false
  done;
  (match !batch_start with
  | Some (s0, o0, n0, q0) when !batch <> [] ->
    (* The log ended mid-batch: discard it whole and rewind the head so
       new writes overwrite the orphaned partials. *)
    seg := s0;
    off := o0;
    next := n0;
    expected := q0;
    Stats.incr t.stats "lfs.discarded_batches"
  | _ -> ());
  t.cur_seg <- !seg;
  t.cur_off <- !off;
  t.next_seg <- !next;
  t.write_seq <- !expected;
  (* Scrub any stale summary left beyond the recovered head (a torn or
     discarded partial). If future writes lined up exactly, a later
     recovery could mistake it for a live continuation of the log. *)
  let zero = Bytes.make (block_size t) '\000' in
  let scrub blkno =
    match Layout.read_summary (Diskset.read t.disk blkno) with
    | Some s when Int64.compare s.Layout.seq !expected >= 0 ->
      Diskset.write t.disk blkno zero
    | _ -> ()
  in
  for o = !off to t.cfg.fs.segment_blocks - 1 do
    scrub (seg_base t !seg + o)
  done;
  if !next <> !seg then scrub (seg_base t !next)

let recompute_usage t =
  Array.iter
    (fun u ->
      u.live <- 0;
      u.state <- Free)
    t.usage;
  Hashtbl.reset t.inode_block_refs;
  (* ~write:false: recounting liveness at mount is bookkeeping, not a
     write — stamping [last_write] here would make every segment look
     freshly written and invert the cost-benefit policy's victim choice
     (the age signal the checkpointed usage table exists to preserve). *)
  let count addr = if addr >= Layout.data_start then
      inc_usage ~write:false t (seg_of_addr t addr) 1
  in
  for inum = 1 to max_inodes - 1 do
    if t.imap_alloc.(inum) && t.imap_addr.(inum) <> 0 then begin
      let addr = t.imap_addr.(inum) in
      (match Hashtbl.find_opt t.inode_block_refs addr with
      | Some n -> Hashtbl.replace t.inode_block_refs addr (n + 1)
      | None ->
        Hashtbl.add t.inode_block_refs addr 1;
        count addr);
      match iget_opt t inum with
      | None -> ()
      | Some ino ->
        for lb = 0 to Inode.nblocks ino - 1 do
          count (Inode.get_addr ino lb)
        done;
        let nind = Inode.indirect_count ino ~block_size:(block_size t) in
        for idx = 0 to nind - 1 do
          if idx < Array.length ino.Inode.ind_addrs then
            count ino.Inode.ind_addrs.(idx)
        done;
        if nind > 1 then count ino.Inode.dbl_addr
    end
  done;
  Array.iter count t.imap_chunk_addr;
  Array.iter count t.usage_chunk_addr;
  Array.iteri
    (fun _ u -> if u.live > 0 then u.state <- Dirty else u.state <- Free)
    t.usage;
  t.usage.(t.cur_seg).state <- Current;
  t.usage.(t.next_seg).state <- Current;
  (* States were rebuilt wholesale; re-derive the incremental counter. *)
  t.n_reclaimable <-
    Array.fold_left
      (fun n u -> if u.state = Free || u.state = Pending then n + 1 else n)
      0 t.usage

let mount disk clock stats (cfg : Config.t) =
  let sb = Layout.read_superblock (Diskset.read disk Layout.superblock_blkno) in
  if sb.Layout.block_size <> cfg.disk.block_size then
    Vfs.error Invalid "LFS mount: block size mismatch";
  let t = make_empty disk clock stats { cfg with fs = { cfg.fs with segment_blocks = sb.Layout.segment_blocks } } sb in
  let cp = load_checkpoint t in
  t.cp_seq <- cp.Layout.cp_seq;
  t.cur_seg <- cp.Layout.cur_seg;
  t.cur_off <- cp.Layout.cur_off;
  t.next_seg <- cp.Layout.cp_next_seg;
  t.next_inum <- cp.Layout.next_inum;
  t.write_seq <- cp.Layout.write_seq;
  Array.blit cp.Layout.imap_addrs 0 t.imap_chunk_addr 0
    (Array.length cp.Layout.imap_addrs);
  Array.blit cp.Layout.usage_addrs 0 t.usage_chunk_addr 0
    (Array.length cp.Layout.usage_addrs);
  (* Load the inode map. *)
  Array.iteri
    (fun chunk addr ->
      if addr <> 0 then begin
        let b = Diskset.read t.disk addr in
        let lo = chunk * imap_per_chunk t in
        for i = 0 to imap_per_chunk t - 1 do
          let inum = lo + i in
          if inum < max_inodes then begin
            t.imap_addr.(inum) <- Enc.get_u32 b (i * imap_entry_bytes);
            t.imap_slot.(inum) <- Enc.get_u8 b ((i * imap_entry_bytes) + 4);
            t.imap_alloc.(inum) <-
              Enc.get_u8 b ((i * imap_entry_bytes) + 5) = 1
          end
        done
      end)
    t.imap_chunk_addr;
  (* Load segment usage (live counts are recomputed below; keep the
     timestamps and the hot/cold bit — the age signal and segregation
     survive remounts only through this table). *)
  Array.iteri
    (fun chunk addr ->
      if addr <> 0 then begin
        let b = Diskset.read t.disk addr in
        let lo = chunk * usage_per_chunk t in
        for i = 0 to usage_per_chunk t - 1 do
          let seg = lo + i in
          if seg < nsegments t then begin
            let off = i * usage_entry_bytes in
            t.usage.(seg).mtime <- Enc.get_f64 b (off + 4);
            t.usage.(seg).last_write <- Enc.get_f64 b (off + 12);
            t.usage.(seg).cold <- Enc.get_u8 b (off + 20) land 1 = 1
          end
        done
      end)
    t.usage_chunk_addr;
  roll_forward t;
  recompute_usage t;
  (* Roll-forward can end having followed the log into the reserved next
     segment without learning what the writer reserved after it (the
     first partial there was torn, so its next_seg is untrusted). Leave
     next_seg aliasing cur_seg and the writer would wrap onto the very
     segment it is filling, overwriting live blocks. Reserve afresh. *)
  if t.next_seg = t.cur_seg then t.next_seg <- pop_free t;
  (* Rebuild the free-inode list. *)
  let free = ref [] in
  for inum = t.next_inum - 1 downto 2 do
    if not t.imap_alloc.(inum) then free := inum :: !free
  done;
  t.free_inums <- !free;
  Stats.incr t.stats "lfs.mounts";
  t

let crash t =
  t.crashed <- true

let unmount t =
  sync t;
  t.crashed <- true

(* Coalescing (Section 5.4): rewrite a file's blocks in logical order so
   sequential reads become sequential again. *)

let coalesce_file t inum =
  check_alive t;
  let maint_tok = maint_enter t in
  (match iget_opt t inum with
  | None -> ()
  | Some ino ->
    let n = Inode.nblocks ino in
    (* Rewrite in logical order, one batch at a time, so huge files do
       not need to be held in memory whole. *)
    let batch = 512 in
    let lb = ref 0 in
    while !lb < n do
      let hi = min n (!lb + batch) in
      let ditems = ref [] in
      for b = hi - 1 downto !lb do
        if Inode.get_addr ino b <> 0 then begin
          let src =
            match Cache.lookup t.cache ~file:inum ~lblock:b with
            | Some f when f.Cache.txn < 0 -> `Frame f
            | _ ->
              (* Either uncached or pinned by a live transaction: the
                 on-disk copy is the committed version. *)
              `Raw (Diskset.read t.disk (Inode.get_addr ino b))
          in
          ditems := { d_inum = inum; d_lblock = b; d_src = src } :: !ditems
        end
      done;
      log_write t ~ditems:!ditems ~inodes:[];
      lb := hi;
      (* Rewriting a large file consumes clean segments while its old
         blocks die behind us; give the cleaner a chance between
         batches. *)
      maint_exit t maint_tok;
      maybe_clean t;
      ignore (maint_enter t)
    done;
    Stats.incr t.stats "lfs.coalesced_files");
  maint_exit t maint_tok;
  maybe_clean t

let contiguity t inum =
  match iget_opt t inum with
  | None -> 1.0
  | Some ino ->
    let n = Inode.nblocks ino in
    if n < 2 then 1.0
    else begin
      let adjacent = ref 0 and pairs = ref 0 in
      for lb = 1 to n - 1 do
        let a = Inode.get_addr ino (lb - 1) and b = Inode.get_addr ino lb in
        if a <> 0 && b <> 0 then begin
          incr pairs;
          if b = a + 1 then incr adjacent
        end
      done;
      if !pairs = 0 then 1.0 else float_of_int !adjacent /. float_of_int !pairs
    end

let coalesce_all t =
  check_alive t;
  let files = ref [] in
  for inum = 1 to max_inodes - 1 do
    if t.imap_alloc.(inum) then
      match iget_opt t inum with
      | Some ino when ino.Inode.kind = Vfs.File && Inode.nblocks ino > 1 ->
        files := (Inode.nblocks ino, inum) :: !files
      | _ -> ()
  done;
  let ordered = List.sort (fun (a, _) (b, _) -> Int.compare b a) !files in
  List.iter (fun (_, inum) -> coalesce_file t inum) ordered;
  List.length ordered

(* Snapshots --------------------------------------------------------------- *)

let snapshot t =
  check_alive t;
  let maint_tok = maint_enter t in
  checkpoint t;
  maint_exit t maint_tok;
  let cp =
    {
      Layout.cp_seq = t.cp_seq;
      cp_timestamp = Clock.now t.clock;
      cur_seg = t.cur_seg;
      cur_off = t.cur_off;
      cp_next_seg = t.next_seg;
      next_inum = t.next_inum;
      write_seq = t.write_seq;
      imap_addrs = Array.copy t.imap_chunk_addr;
      usage_addrs = Array.copy t.usage_chunk_addr;
    }
  in
  (* Freeze every segment that holds (or may hold) referenced blocks: the
     partially-filled current segment only ever gains appends, but once
     it closes it must not be cleaned or reused while the snapshot is
     alive, so it is pinned along with everything else non-free. *)
  let snap_segments =
    Array.init (nsegments t) (fun i -> t.usage.(i).state <> Free)
  in
  let s =
    { snap_id = t.next_snap; snap_cp = cp; snap_segments; snap_live = true }
  in
  t.next_snap <- t.next_snap + 1;
  t.snaps <- s :: t.snaps;
  Stats.incr t.stats "lfs.snapshots";
  s

let release_snapshot t s =
  s.snap_live <- false;
  t.snaps <- List.filter (fun x -> x != s) t.snaps

let snapshots t = List.length t.snaps

(* Consistency check ------------------------------------------------------ *)

let check t =
  check_alive t;
  let fail fmt = Printf.ksprintf failwith fmt in
  let live = Array.make (nsegments t) 0 in
  let owner : (int, string) Hashtbl.t = Hashtbl.create 1024 in
  let claim addr what =
    if addr <> 0 then begin
      if addr < Layout.data_start || addr >= t.sb.Layout.nblocks then
        fail "LFS.check: %s points outside the log (block %d)" what addr;
      (match Hashtbl.find_opt owner addr with
      | Some other ->
        fail "LFS.check: block %d claimed by both %s and %s" addr other what
      | None -> Hashtbl.add owner addr what);
      live.(seg_of_addr t addr) <- live.(seg_of_addr t addr) + 1
    end
  in
  (* Walk every allocated inode. *)
  for inum = 1 to max_inodes - 1 do
    if t.imap_alloc.(inum) then
      match iget_opt t inum with
      | None ->
        if t.imap_addr.(inum) <> 0 then
          fail "LFS.check: imap entry %d points at no decodable inode" inum
      | Some ino ->
        for lb = 0 to Inode.nblocks ino - 1 do
          claim (Inode.get_addr ino lb) (Printf.sprintf "inode %d block %d" inum lb)
        done;
        let nind = Inode.indirect_count ino ~block_size:(block_size t) in
        for idx = 0 to nind - 1 do
          if idx < Array.length ino.Inode.ind_addrs then
            claim ino.Inode.ind_addrs.(idx)
              (Printf.sprintf "inode %d indirect %d" inum idx)
        done;
        if nind > 1 then
          claim ino.Inode.dbl_addr (Printf.sprintf "inode %d double-indirect" inum)
  done;
  (* Inode blocks are shared: count each address once. *)
  let seen_iblocks = Hashtbl.create 64 in
  for inum = 1 to max_inodes - 1 do
    if t.imap_alloc.(inum) then begin
      let addr = t.imap_addr.(inum) in
      if addr <> 0 && not (Hashtbl.mem seen_iblocks addr) then begin
        Hashtbl.add seen_iblocks addr ();
        claim addr (Printf.sprintf "inode block (first inum %d)" inum)
      end
    end
  done;
  Array.iteri (fun i a -> claim a (Printf.sprintf "imap chunk %d" i)) t.imap_chunk_addr;
  Array.iteri (fun i a -> claim a (Printf.sprintf "usage chunk %d" i)) t.usage_chunk_addr;
  (* Usage table must agree with reachability. *)
  Array.iteri
    (fun i u ->
      if u.live <> live.(i) then
        fail "LFS.check: segment %d usage says %d live, reachability says %d" i
          u.live live.(i);
      if u.state = Free && u.live <> 0 then
        fail "LFS.check: free segment %d has %d live blocks" i u.live)
    t.usage;
  (* The incrementally-maintained reclaimable counter must agree with a
     full recount — it replaced the cleaner's O(nsegments) folds and any
     drift would silently skew batch-clean termination. *)
  let recount =
    Array.fold_left
      (fun n u -> if u.state = Free || u.state = Pending then n + 1 else n)
      0 t.usage
  in
  if t.n_reclaimable <> recount then
    fail "LFS.check: reclaimable counter %d but recount says %d"
      t.n_reclaimable recount;
  (* Inode-block refcounts. *)
  Hashtbl.iter
    (fun addr n ->
      let counted = ref 0 in
      for inum = 1 to max_inodes - 1 do
        if t.imap_alloc.(inum) && t.imap_addr.(inum) = addr then incr counted
      done;
      if !counted <> n then
        fail "LFS.check: inode block %d refcount %d but %d imap entries" addr n
          !counted)
    t.inode_block_refs

(* VFS surface ----------------------------------------------------------- *)

let charge_op t = Cpu.charge t.clock t.stats t.cfg.cpu Cpu.Syscall

let resolve_file t path =
  match Ns.lookup t path with
  | Some (inum, Vfs.File) -> inum
  | Some (_, Vfs.Dir) -> Vfs.error Is_dir "%s" path
  | None -> Vfs.error Not_found "%s" path

let vfs t =
  let wrap f = fun x ->
    tick t;
    charge_op t;
    f x
  in
  {
    Vfs.name = "lfs";
    block_size = block_size t;
    create =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.cpu Cpu.File_op;
          Ns.create t path ~kind:Vfs.File);
    open_file =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.cpu Cpu.File_op;
          resolve_file t path);
    read =
      (fun fd ~off ~len ->
        tick t;
        charge_op t;
        read_bytes t fd ~off ~len);
    write =
      (fun fd ~off data ->
        tick t;
        charge_op t;
        write_bytes t fd ~off data);
    truncate =
      (fun fd len ->
        tick t;
        charge_op t;
        truncate_bytes t fd len);
    size = (fun fd -> (iget t fd).Inode.size);
    fsync = wrap (fun fd -> fsync_inum t fd);
    sync = wrap (fun () -> sync t);
    remove =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.cpu Cpu.File_op;
          Ns.remove t path);
    mkdir =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.cpu Cpu.File_op;
          ignore (Ns.create t path ~kind:Vfs.Dir));
    readdir = wrap (fun path -> Ns.readdir t path);
    exists = (fun path -> Option.is_some (Ns.lookup t path));
    stat =
      wrap (fun path ->
          match Ns.lookup t path with
          | None -> Vfs.error Not_found "%s" path
          | Some (inum, kind) ->
            let ino = iget t inum in
            {
              Vfs.inum;
              size = ino.Inode.size;
              kind;
              protected_ = ino.Inode.protected_;
            });
    set_protected =
      wrap (fun path value ->
          let inum = inum_of t path in
          let ino = iget t inum in
          ino.Inode.protected_ <- value;
          ino.Inode.dirty <- true);
  }

(* A read-only file system reconstructed from a snapshot's checkpoint:
   its own inode map and caches over the same disk image, with the
   maintenance machinery disabled and every mutator rejected. *)
let snapshot_view t s =
  if not s.snap_live then invalid_arg "Lfs.snapshot_view: snapshot released";
  let view = make_empty t.disk t.clock t.stats t.cfg t.sb in
  let cp = s.snap_cp in
  view.cp_seq <- cp.Layout.cp_seq;
  view.cur_seg <- cp.Layout.cur_seg;
  view.cur_off <- cp.Layout.cur_off;
  view.next_seg <- cp.Layout.cp_next_seg;
  view.next_inum <- cp.Layout.next_inum;
  view.write_seq <- cp.Layout.write_seq;
  Array.blit cp.Layout.imap_addrs 0 view.imap_chunk_addr 0
    (Array.length cp.Layout.imap_addrs);
  Array.iteri
    (fun chunk addr ->
      if addr <> 0 then begin
        let b = Diskset.read view.disk addr in
        let lo = chunk * imap_per_chunk view in
        for i = 0 to imap_per_chunk view - 1 do
          let inum = lo + i in
          if inum < max_inodes then begin
            view.imap_addr.(inum) <- Enc.get_u32 b (i * imap_entry_bytes);
            view.imap_slot.(inum) <- Enc.get_u8 b ((i * imap_entry_bytes) + 4);
            view.imap_alloc.(inum) <-
              Enc.get_u8 b ((i * imap_entry_bytes) + 5) = 1
          end
        done
      end)
    view.imap_chunk_addr;
  (* No syncer, no cleaner, no checkpoints: the view never writes. *)
  view.maint <- [ 0 ];
  let deny _ = Vfs.error Not_supported "snapshot view is read-only" in
  {
    Vfs.name = "lfs-snapshot";
    block_size = block_size view;
    create = deny;
    open_file = (fun path -> resolve_file view path);
    read = (fun fd ~off ~len -> read_bytes view fd ~off ~len);
    write = (fun _ ~off:_ _ -> deny ());
    truncate = (fun _ _ -> deny ());
    size = (fun fd -> (iget view fd).Inode.size);
    fsync = (fun _ -> deny ());
    sync = deny;
    remove = deny;
    mkdir = deny;
    readdir = (fun path -> Ns.readdir view path);
    exists = (fun path -> Option.is_some (Ns.lookup view path));
    stat =
      (fun path ->
        match Ns.lookup view path with
        | None -> Vfs.error Not_found "%s" path
        | Some (inum, kind) ->
          let ino = iget view inum in
          {
            Vfs.inum;
            size = ino.Inode.size;
            kind;
            protected_ = ino.Inode.protected_;
          });
    set_protected = (fun _ _ -> deny ());
  }

let checkpoint t =
  check_alive t;
  checkpoint t

let clean_once t =
  check_alive t;
  clean_once t
