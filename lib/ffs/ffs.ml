exception Crashed

let magic = 0x4646_5342 (* "FFSB" *)
let max_inodes = 8192
let root_inum = 1

(* Disk layout: block 0 superblock; then the inode table; then the block
   bitmap; then data blocks. *)

type t = {
  disk : Disk.t;
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  bs : int;
  nblocks : int;
  itable_start : int;
  itable_blocks : int;
  bitmap_start : int;
  bitmap_blocks : int;
  data_start : int;
  cache : Cache.t;
  inodes : (int, Inode.t) Hashtbl.t;
  dirty_inodes : (int, unit) Hashtbl.t;
  bitmap : Bytes.t; (* one bit per block *)
  mutable bitmap_dirty : bool;
  mutable free_inums : int list;
  mutable next_inum : int;
  mutable rotor : int; (* global next-fit pointer for allocation *)
  mutable last_syncer : float;
  mutable in_maintenance : bool;
  mutable crashed : bool;
}

let inodes_per_block t = t.bs / 256

let check_alive t = if t.crashed then raise Crashed

let config t = t.cfg
let clock t = t.clock
let stats t = t.stats
let cache t = t.cache

(* Bitmap *)

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i v =
  let mask = 1 lsl (i land 7) in
  let c = Char.code (Bytes.get b (i lsr 3)) in
  Bytes.set b (i lsr 3) (Char.chr (if v then c lor mask else c land lnot mask))

let free_blocks t =
  let n = ref 0 in
  for i = t.data_start to t.nblocks - 1 do
    if not (bit_get t.bitmap i) then incr n
  done;
  !n

let alloc_block t ~hint =
  let start =
    if hint >= t.data_start && hint < t.nblocks then hint else t.rotor
  in
  let found = ref (-1) in
  let probe i = if !found < 0 && not (bit_get t.bitmap i) then found := i in
  (* Next-fit from the hint, wrapping through the data region. *)
  let i = ref start in
  let steps = ref 0 in
  let span = t.nblocks - t.data_start in
  while !found < 0 && !steps < span do
    probe !i;
    incr i;
    if !i >= t.nblocks then i := t.data_start;
    incr steps
  done;
  match !found with
  | -1 -> Vfs.error No_space "FFS: disk full"
  | blk ->
    bit_set t.bitmap blk true;
    t.bitmap_dirty <- true;
    t.rotor <- (if blk + 1 >= t.nblocks then t.data_start else blk + 1);
    Stats.incr t.stats "ffs.blocks_allocated";
    blk

let free_block t blk =
  if blk >= t.data_start then begin
    bit_set t.bitmap blk false;
    t.bitmap_dirty <- true
  end

(* Inode table *)

let itable_blkno t inum = t.itable_start + (inum / inodes_per_block t)
let itable_off t inum = inum mod inodes_per_block t * 256

let mark_inode_dirty t ino =
  ino.Inode.dirty <- true;
  Hashtbl.replace t.dirty_inodes ino.Inode.inum ()

let iget_opt t inum =
  if inum <= 0 || inum >= max_inodes then None
  else
    match Hashtbl.find_opt t.inodes inum with
    | Some ino -> Some ino
    | None -> (
      let block = Disk.read t.disk (itable_blkno t inum) in
      match Inode.decode block (itable_off t inum) with
      | None -> None
      | Some ino ->
        let nind = Inode.indirect_count ino ~block_size:t.bs in
        if nind > 1 && ino.Inode.dbl_addr <> 0 then
          Inode.decode_double ino ~block_size:t.bs
            (Disk.read t.disk ino.Inode.dbl_addr);
        for idx = 0 to nind - 1 do
          let a =
            if idx < Array.length ino.Inode.ind_addrs then
              ino.Inode.ind_addrs.(idx)
            else 0
          in
          if a <> 0 then
            Inode.decode_indirect ino ~block_size:t.bs idx (Disk.read t.disk a)
        done;
        Hashtbl.replace t.inodes inum ino;
        Some ino)

let iget t inum =
  match iget_opt t inum with
  | Some ino -> ino
  | None -> Vfs.error Not_found "inode %d" inum

(* Flushing --------------------------------------------------------------

   Delayed writes are issued elevator-sorted, which models the paper's
   "sorted in the disk queue with all the other I/O" behaviour: the write
   sweep pays short seeks instead of random ones, but each page is still a
   separate in-place I/O — LFS's batched segment write is what it is being
   compared against. *)

(* Make sure every dirty frame and every mapped block of a dirty inode has
   a disk address, then return the in-place write list. *)
let writes_for_inode t ino =
  let acc = ref [] in
  (* Indirect blocks that changed. *)
  let nind = Inode.indirect_count ino ~block_size:t.bs in
  if Hashtbl.length ino.Inode.dirty_ind > 0 then begin
    Hashtbl.iter
      (fun idx () ->
        if idx < nind then begin
          (if
             idx >= Array.length ino.Inode.ind_addrs
             || ino.Inode.ind_addrs.(idx) = 0
           then begin
             let addr = alloc_block t ~hint:t.rotor in
             if idx >= Array.length ino.Inode.ind_addrs then begin
               let a = Array.make (idx + 1) 0 in
               Array.blit ino.Inode.ind_addrs 0 a 0
                 (Array.length ino.Inode.ind_addrs);
               ino.Inode.ind_addrs <- a
             end;
             ino.Inode.ind_addrs.(idx) <- addr;
             if idx >= 1 then ino.Inode.dbl_dirty <- true
           end);
          acc :=
            ( ino.Inode.ind_addrs.(idx),
              Inode.encode_indirect ino ~block_size:t.bs idx )
            :: !acc
        end)
      ino.Inode.dirty_ind;
    Hashtbl.reset ino.Inode.dirty_ind
  end;
  if ino.Inode.dbl_dirty && nind > 1 then begin
    if ino.Inode.dbl_addr = 0 then
      ino.Inode.dbl_addr <- alloc_block t ~hint:t.rotor;
    acc := (ino.Inode.dbl_addr, Inode.encode_double ino ~block_size:t.bs) :: !acc;
    ino.Inode.dbl_dirty <- false
  end;
  !acc

let inode_table_writes t inums =
  (* Group dirty inodes by table block; read-modify-write each block. *)
  let by_block = Hashtbl.create 8 in
  List.iter
    (fun inum ->
      let blk = itable_blkno t inum in
      let l = Option.value (Hashtbl.find_opt by_block blk) ~default:[] in
      Hashtbl.replace by_block blk (inum :: l))
    inums;
  Hashtbl.fold
    (fun blk inums acc ->
      let b = Disk.read t.disk blk in
      List.iter
        (fun inum ->
          match Hashtbl.find_opt t.inodes inum with
          | Some ino ->
            Bytes.blit (Inode.encode ino) 0 b (itable_off t inum) 256;
            ino.Inode.dirty <- false
          | None ->
            (* Freed inode: clear the slot. *)
            Bytes.fill b (itable_off t inum) 256 '\000')
        inums;
      (blk, b) :: acc)
    by_block []

let bitmap_writes t =
  if not t.bitmap_dirty then []
  else begin
    t.bitmap_dirty <- false;
    List.init t.bitmap_blocks (fun i ->
        let b = Bytes.make t.bs '\000' in
        let off = i * t.bs in
        let n = min t.bs (Bytes.length t.bitmap - off) in
        if n > 0 then Bytes.blit t.bitmap off b 0 n;
        (t.bitmap_start + i, b))
  end

let issue_sorted t writes =
  let ordered = Elevator.order Elevator.Elevator ~head:(Disk.head t.disk) writes in
  List.iter
    (fun (blk, data) ->
      Disk.write_queued t.disk blk data;
      Stats.incr t.stats "ffs.inplace_writes")
    ordered

(* Assign addresses to dirty frames (allocation on first flush keeps
   sequentially-written files contiguous) and build the write list. *)
let frame_writes t frames =
  List.map
    (fun f ->
      let ino = iget t f.Cache.file in
      let addr =
        match Inode.get_addr ino f.Cache.lblock with
        | 0 ->
          let hint =
            if f.Cache.lblock > 0 then
              match Inode.get_addr ino (f.Cache.lblock - 1) with
              | 0 -> t.rotor
              | prev -> prev + 1
            else t.rotor
          in
          let addr = alloc_block t ~hint in
          Inode.set_addr ino ~block_size:t.bs f.Cache.lblock addr;
          mark_inode_dirty t ino;
          addr
        | addr -> addr
      in
      (addr, Bytes.copy f.Cache.data))
    frames

let flush_frames t frames =
  let data_writes = frame_writes t frames in
  (* Metadata for every file whose inode got dirty. *)
  let meta = ref [] in
  let dirty = Hashtbl.fold (fun inum () acc -> inum :: acc) t.dirty_inodes [] in
  List.iter
    (fun inum ->
      match Hashtbl.find_opt t.inodes inum with
      | Some ino -> meta := writes_for_inode t ino @ !meta
      | None -> ())
    dirty;
  let itable = inode_table_writes t dirty in
  Hashtbl.reset t.dirty_inodes;
  issue_sorted t (data_writes @ !meta @ itable);
  List.iter (fun f -> Cache.mark_clean t.cache f) frames

let sync_internal t =
  let frames = Cache.dirty_frames t.cache () in
  flush_frames t frames;
  issue_sorted t (bitmap_writes t)

let tick t =
  check_alive t;
  if not t.in_maintenance then begin
    t.in_maintenance <- true;
    if Clock.now t.clock -. t.last_syncer >= t.cfg.Config.fs.syncer_interval_s
    then begin
      t.last_syncer <- Clock.now t.clock;
      sync_internal t;
      Stats.incr t.stats "ffs.syncer_runs"
    end;
    t.in_maintenance <- false
  end

(* Page access ------------------------------------------------------------ *)

let zero_block t = Bytes.make t.bs '\000'

let get_page t ~inum ~lblock =
  match Cache.lookup t.cache ~file:inum ~lblock with
  | Some f -> f
  | None ->
    let ino = iget t inum in
    let addr = Inode.get_addr ino lblock in
    let data = if addr = 0 then zero_block t else Disk.read t.disk addr in
    Cache.insert t.cache ~file:inum ~lblock data

let new_page t ~inum ~lblock =
  match Cache.lookup t.cache ~file:inum ~lblock with
  | Some f -> f
  | None -> Cache.insert t.cache ~file:inum ~lblock (zero_block t)

(* Byte-level I/O --------------------------------------------------------- *)

let read_bytes t inum ~off ~len =
  let ino = iget t inum in
  if off < 0 || len < 0 then Vfs.error Invalid "read: negative offset/length";
  let len = max 0 (min len (ino.Inode.size - off)) in
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let pos = off + !copied in
    let lb = pos / t.bs and boff = pos mod t.bs in
    let n = min (t.bs - boff) (len - !copied) in
    let f = get_page t ~inum ~lblock:lb in
    Bytes.blit f.Cache.data boff out !copied n;
    Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Copy_block;
    copied := !copied + n
  done;
  out

let write_bytes t inum ~off data =
  let ino = iget t inum in
  let len = Bytes.length data in
  if off < 0 then Vfs.error Invalid "write: negative offset";
  let written = ref 0 in
  while !written < len do
    let pos = off + !written in
    let lb = pos / t.bs and boff = pos mod t.bs in
    let n = min (t.bs - boff) (len - !written) in
    let f =
      (* A read-modify-write is needed unless the write covers the whole
         block or the block lies entirely at or past end of file. *)
      if n = t.bs || lb * t.bs >= ino.Inode.size then new_page t ~inum ~lblock:lb
      else get_page t ~inum ~lblock:lb
    in
    Bytes.blit data !written f.Cache.data boff n;
    Cache.mark_dirty t.cache f;
    Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Copy_block;
    written := !written + n
  done;
  if off + len > ino.Inode.size then ino.Inode.size <- off + len;
  ino.Inode.mtime <- Clock.now t.clock;
  mark_inode_dirty t ino

let truncate_bytes t inum len =
  let ino = iget t inum in
  if len < 0 then Vfs.error Invalid "truncate: negative length";
  if len < ino.Inode.size then begin
    let keep = (len + t.bs - 1) / t.bs in
    let old_n = Inode.nblocks ino in
    for lb = keep to old_n - 1 do
      let addr = Inode.get_addr ino lb in
      if addr <> 0 then free_block t addr
    done;
    List.iter
      (fun f -> if f.Cache.lblock >= keep then Cache.invalidate t.cache f)
      (Cache.file_frames t.cache inum);
    (if len mod t.bs <> 0 && len < ino.Inode.size then begin
       let f = get_page t ~inum ~lblock:(len / t.bs) in
       Bytes.fill f.Cache.data (len mod t.bs) (t.bs - (len mod t.bs)) '\000';
       Cache.mark_dirty t.cache f
     end);
    let old_nind = Inode.indirect_count ino ~block_size:t.bs in
    Inode.truncate_map ino ~block_size:t.bs keep;
    let new_nind = Inode.indirect_count ino ~block_size:t.bs in
    for idx = new_nind to old_nind - 1 do
      if idx < Array.length ino.Inode.ind_addrs then begin
        free_block t ino.Inode.ind_addrs.(idx);
        ino.Inode.ind_addrs.(idx) <- 0
      end
    done;
    if new_nind <= 1 && ino.Inode.dbl_addr <> 0 then begin
      free_block t ino.Inode.dbl_addr;
      ino.Inode.dbl_addr <- 0;
      ino.Inode.dbl_dirty <- false
    end
  end;
  ino.Inode.size <- len;
  mark_inode_dirty t ino

(* Inode allocation ------------------------------------------------------- *)

let alloc_inode t ~kind =
  let inum =
    match t.free_inums with
    | i :: rest ->
      t.free_inums <- rest;
      i
    | [] ->
      if t.next_inum >= max_inodes then Vfs.error No_space "FFS: out of inodes";
      let i = t.next_inum in
      t.next_inum <- i + 1;
      i
  in
  let ino = Inode.create ~inum ~kind in
  ino.Inode.mtime <- Clock.now t.clock;
  Hashtbl.replace t.inodes inum ino;
  mark_inode_dirty t ino;
  inum

let free_inode t inum =
  truncate_bytes t inum 0;
  List.iter (Cache.invalidate t.cache) (Cache.file_frames t.cache inum);
  Hashtbl.remove t.inodes inum;
  Hashtbl.replace t.dirty_inodes inum () (* forces the slot to be cleared *);
  t.free_inums <- inum :: t.free_inums

(* Namespace --------------------------------------------------------------- *)

module Store = struct
  type nonrec t = t

  let root _ = root_inum
  let read t inum ~off ~len = read_bytes t inum ~off ~len
  let write t inum ~off data = write_bytes t inum ~off data
  let truncate t inum ~len = truncate_bytes t inum len
  let size t inum = (iget t inum).Inode.size
  let alloc_inode t ~kind = alloc_inode t ~kind
  let free_inode t inum = free_inode t inum
end

module Ns = Namespace.Make (Store)

let inum_of t path =
  match Ns.lookup t path with
  | Some (inum, _) -> inum
  | None -> Vfs.error Not_found "%s" path

(* Construction ------------------------------------------------------------ *)

let geometry (cfg : Config.t) nblocks =
  let bs = cfg.disk.block_size in
  let itable_blocks = (max_inodes * 256 + bs - 1) / bs in
  let bitmap_blocks = ((nblocks + 7) / 8 + bs - 1) / bs in
  let itable_start = 1 in
  let bitmap_start = itable_start + itable_blocks in
  let data_start = bitmap_start + bitmap_blocks in
  (bs, itable_blocks, itable_start, bitmap_start, bitmap_blocks, data_start)

let make disk clock stats (cfg : Config.t) =
  let nblocks = Disk.nblocks disk in
  let bs, itable_blocks, itable_start, bitmap_start, bitmap_blocks, data_start =
    geometry cfg nblocks
  in
  let t =
    {
      disk;
      clock;
      stats;
      cfg;
      bs;
      nblocks;
      itable_start;
      itable_blocks;
      bitmap_start;
      bitmap_blocks;
      data_start;
      cache = Cache.create clock stats cfg.cpu ~capacity:cfg.fs.cache_blocks;
      inodes = Hashtbl.create 64;
      dirty_inodes = Hashtbl.create 16;
      bitmap = Bytes.make ((nblocks + 7) / 8) '\000';
      bitmap_dirty = true;
      free_inums = [];
      next_inum = root_inum;
      rotor = data_start;
      last_syncer = Clock.now clock;
      in_maintenance = false;
      crashed = false;
    }
  in
  Cache.set_writeback t.cache (fun _victim ->
      (* Under cache pressure, write back all delayed writes in one
         elevator-sorted sweep, exactly as the syncer does — single
         random writes would misrepresent the sorted disk queue the
         paper's baseline relies on. *)
      let was = t.in_maintenance in
      t.in_maintenance <- true;
      flush_frames t (Cache.dirty_frames t.cache ());
      t.in_maintenance <- was);
  t

let write_superblock t =
  let b = Bytes.make t.bs '\000' in
  Enc.set_u32 b 0 magic;
  Enc.set_u32 b 4 t.nblocks;
  Enc.set_u32 b 8 max_inodes;
  Disk.write t.disk 0 b

let format disk clock stats cfg =
  let t = make disk clock stats cfg in
  (* Reserve the metadata region in the bitmap. *)
  for i = 0 to t.data_start - 1 do
    bit_set t.bitmap i true
  done;
  write_superblock t;
  (* Zero the inode table. *)
  let zero = Bytes.make t.bs '\000' in
  Disk.write_run t.disk t.itable_start
    (Bytes.make (t.itable_blocks * t.bs) '\000');
  ignore zero;
  let inum = alloc_inode t ~kind:Vfs.Dir in
  assert (inum = root_inum);
  sync_internal t;
  issue_sorted t (bitmap_writes t);
  t

let mount disk clock stats cfg =
  let t = make disk clock stats cfg in
  let b = Disk.read disk 0 in
  if Enc.get_u32 b 0 <> magic then Vfs.error Invalid "FFS: bad superblock";
  if Enc.get_u32 b 4 <> t.nblocks then Vfs.error Invalid "FFS: size mismatch";
  (* Load the bitmap. *)
  for i = 0 to t.bitmap_blocks - 1 do
    let blk = Disk.read disk (t.bitmap_start + i) in
    let off = i * t.bs in
    let n = min t.bs (Bytes.length t.bitmap - off) in
    if n > 0 then Bytes.blit blk 0 t.bitmap off n
  done;
  t.bitmap_dirty <- false;
  (* Scan the inode table for the allocation picture. *)
  let free = ref [] in
  let maxseen = ref root_inum in
  for blk = 0 to t.itable_blocks - 1 do
    let b = Disk.read disk (t.itable_start + blk) in
    for slot = 0 to inodes_per_block t - 1 do
      let inum = (blk * inodes_per_block t) + slot in
      if inum >= 1 && inum < max_inodes then
        match Inode.decode b (slot * 256) with
        | Some _ -> if inum > !maxseen then maxseen := inum
        | None -> ()
    done
  done;
  t.next_inum <- !maxseen + 1;
  for inum = t.next_inum - 1 downto 2 do
    let b = Disk.read disk (itable_blkno t inum) in
    if Inode.decode b (itable_off t inum) = None then free := inum :: !free
  done;
  t.free_inums <- !free;
  Stats.incr t.stats "ffs.mounts";
  t

let crash t = t.crashed <- true

let sync t =
  check_alive t;
  let was = t.in_maintenance in
  t.in_maintenance <- true;
  sync_internal t;
  issue_sorted t (bitmap_writes t);
  t.in_maintenance <- was

let unmount t =
  sync t;
  t.crashed <- true

let fsync_inum t inum =
  let was = t.in_maintenance in
  t.in_maintenance <- true;
  flush_frames t (Cache.dirty_frames t.cache ~file:inum ());
  t.in_maintenance <- was

(* fsck -------------------------------------------------------------------- *)

type fsck_report = {
  scanned_inodes : int;
  leaked_blocks : int;
  cross_allocated : int;
  fixed : bool;
}

let fsck t =
  check_alive t;
  let refcount = Bytes.make t.nblocks '\000' in
  let bump addr =
    if addr >= t.data_start && addr < t.nblocks then
      Bytes.set refcount addr
        (Char.chr (min 255 (Char.code (Bytes.get refcount addr) + 1)))
  in
  let scanned = ref 0 in
  for inum = 1 to max_inodes - 1 do
    match iget_opt t inum with
    | None -> ()
    | Some ino ->
      incr scanned;
      for lb = 0 to Inode.nblocks ino - 1 do
        bump (Inode.get_addr ino lb)
      done;
      let nind = Inode.indirect_count ino ~block_size:t.bs in
      for idx = 0 to nind - 1 do
        if idx < Array.length ino.Inode.ind_addrs then
          bump ino.Inode.ind_addrs.(idx)
      done;
      if nind > 1 then bump ino.Inode.dbl_addr
  done;
  let leaked = ref 0 and cross = ref 0 in
  for blk = t.data_start to t.nblocks - 1 do
    let refs = Char.code (Bytes.get refcount blk) in
    let marked = bit_get t.bitmap blk in
    if refs = 0 && marked then begin
      incr leaked;
      bit_set t.bitmap blk false;
      t.bitmap_dirty <- true
    end
    else if refs > 0 && not marked then begin
      bit_set t.bitmap blk true;
      t.bitmap_dirty <- true
    end;
    if refs > 1 then incr cross
  done;
  let fixed = t.bitmap_dirty in
  issue_sorted t (bitmap_writes t);
  { scanned_inodes = !scanned; leaked_blocks = !leaked; cross_allocated = !cross; fixed }

let contiguity t path =
  let ino = iget t (inum_of t path) in
  let n = Inode.nblocks ino in
  if n < 2 then 1.0
  else begin
    let adjacent = ref 0 and pairs = ref 0 in
    for lb = 1 to n - 1 do
      let a = Inode.get_addr ino (lb - 1) and b = Inode.get_addr ino lb in
      if a <> 0 && b <> 0 then begin
        incr pairs;
        if b = a + 1 then incr adjacent
      end
    done;
    if !pairs = 0 then 1.0 else float_of_int !adjacent /. float_of_int !pairs
  end

(* VFS surface -------------------------------------------------------------- *)

let charge_op t = Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Syscall

let resolve_file t path =
  match Ns.lookup t path with
  | Some (inum, Vfs.File) -> inum
  | Some (_, Vfs.Dir) -> Vfs.error Is_dir "%s" path
  | None -> Vfs.error Not_found "%s" path

let vfs t =
  let wrap f = fun x ->
    tick t;
    charge_op t;
    f x
  in
  {
    Vfs.name = "ffs";
    block_size = t.bs;
    create =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.File_op;
          Ns.create t path ~kind:Vfs.File);
    open_file =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.File_op;
          resolve_file t path);
    read =
      (fun fd ~off ~len ->
        tick t;
        charge_op t;
        read_bytes t fd ~off ~len);
    write =
      (fun fd ~off data ->
        tick t;
        charge_op t;
        write_bytes t fd ~off data);
    truncate =
      (fun fd len ->
        tick t;
        charge_op t;
        truncate_bytes t fd len);
    size = (fun fd -> (iget t fd).Inode.size);
    fsync = wrap (fun fd -> fsync_inum t fd);
    sync = wrap (fun () -> sync t);
    remove =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.File_op;
          Ns.remove t path);
    mkdir =
      wrap (fun path ->
          Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.File_op;
          ignore (Ns.create t path ~kind:Vfs.Dir));
    readdir = wrap (fun path -> Ns.readdir t path);
    exists = (fun path -> Option.is_some (Ns.lookup t path));
    stat =
      wrap (fun path ->
          match Ns.lookup t path with
          | None -> Vfs.error Not_found "%s" path
          | Some (inum, kind) ->
            let ino = iget t inum in
            {
              Vfs.inum;
              size = ino.Inode.size;
              kind;
              protected_ = ino.Inode.protected_;
            });
    set_protected =
      (fun path _ ->
        Vfs.error Not_supported
          "%s: transaction protection requires the embedded (LFS) manager"
          path);
  }
