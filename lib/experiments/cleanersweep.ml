(* Adaptive-cleaner sweep: how do victim policy and hot/cold segregation
   hold up as the disk fills?  Cleaning cost is the one LFS overhead that
   grows with utilization — every reclaimed segment costs copying its
   live blocks first, and at 90 % full a greedy victim barely pays for
   itself.  Cost-benefit victim selection (age-weighted) plus routing
   relocated survivors to a separate cold log head is supposed to flatten
   that curve: cold data gets segregated once and stops being recopied,
   so the hot segments the cleaner actually needs stay empty.  The sweep
   prefills the disk with static (cold) fill files to a target
   utilization, then runs TPC-B (whose branch/teller pages are hot and
   whose history tail is append-only) and reports throughput, cleaner
   stall p99 and the per-victim write cost for every
   utilization x MPL x policy x segregation cell. *)

type arm = { policy : [ `Greedy | `Cost_benefit ]; segregate : bool }

type point = {
  util_pct : int;
  mpl : int;
  arm : arm;
  run : Expcommon.tpcb_run;
  stall_p99_s : float;
  write_cost : float;
      (** blocks moved per block reclaimed, whole run; 0 if nothing was
          reclaimed *)
  blocks_moved : int;
  blocks_reclaimed : int;
  segments_cleaned : int;  (** counter ["cleaner.segments"] *)
  cleans_observed : int;
      (** sample count of the ["cleaner.clean"] histogram — must equal
          [segments_cleaned] (dead-segment reclaims observe a zero) *)
  idle_cleans : int;  (** background cleans taken while the disk was idle *)
  backoffs : int;  (** daemon wakeups skipped because the queue was deep *)
  cold_segments : int;  (** relocation segments opened by segregation *)
}

type t = {
  points : point list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;
}

let default_utils = [ 50; 70; 80; 90 ]
let default_mpls = [ 1; 8 ]

let default_arms =
  [
    { policy = `Greedy; segregate = false };
    { policy = `Greedy; segregate = true };
    { policy = `Cost_benefit; segregate = false };
    { policy = `Cost_benefit; segregate = true };
  ]

let policy_key = function `Greedy -> "greedy" | `Cost_benefit -> "cost-benefit"

let arm_key a =
  Printf.sprintf "%s%s" (policy_key a.policy)
    (if a.segregate then "+seg" else "")

(* Small account spread as in the log/MPL sweeps: the cleaner study wants
   a log-bound workload with a compact hot set, not a data-seek-bound
   one. *)
let spread_scale tps =
  { Tpcb.accounts = 2_000 * tps; tellers = 200 * tps; branches = 200 * tps }

(* Fill the disk with static files until only [target_free] segments
   remain.  The fill is written once and never touched again — it is the
   cold mass whose treatment separates the policies.  The floor keeps the
   prefill out of the cleaner's low-water territory, so the measured run
   starts clean-free at every utilization. *)
let prefill ~util_pct _m (vfs : Vfs.t) lfs =
  match lfs with
  | None -> ()
  | Some fs ->
    let cfg = (Lfs.config fs).Config.fs in
    let nseg = Lfs.nsegments fs in
    let target_free =
      max (nseg * (100 - util_pct) / 100) (cfg.Config.cleaner_low_segments + 4)
    in
    let bs = vfs.Vfs.block_size in
    let fill_blocks = max 1 (cfg.Config.segment_blocks - 1) in
    vfs.Vfs.mkdir "/fill";
    let block = Bytes.make bs 'c' in
    let i = ref 0 in
    while Lfs.free_segments fs > target_free do
      let fd = vfs.Vfs.create (Printf.sprintf "/fill/f%d" !i) in
      for b = 0 to fill_blocks - 1 do
        vfs.Vfs.write fd ~off:(b * bs) block
      done;
      vfs.Vfs.fsync fd;
      incr i
    done;
    vfs.Vfs.sync ()

let p99 stats key =
  match Stats.histo stats key with
  | Some h -> Histo.percentile h 0.99
  | None -> 0.0

let histo_count stats key =
  match Stats.histo stats key with Some h -> Histo.count h | None -> 0

let run ?(tps_scale = 2) ?(txns = 1_000) ?(seed = 1) ?(utils = default_utils)
    ?(mpls = default_mpls) ?(arms = default_arms) () =
  let base =
    Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default
  in
  let scale = spread_scale tps_scale in
  let points =
    List.concat_map
      (fun arm ->
        List.concat_map
          (fun util_pct ->
            List.map
              (fun mpl ->
                let fs =
                  {
                    base.Config.fs with
                    Config.cleaner_policy = arm.policy;
                    cleaner_segregate = arm.segregate;
                    lock_grain = `Record;
                    group_commit_size = 8;
                    group_commit_timeout_s = 0.02;
                  }
                in
                let cfg = { base with Config.fs } in
                let prepare = prefill ~util_pct in
                let run =
                  if mpl <= 1 then
                    Expcommon.run_tpcb ~prepare ~config:cfg ~scale ~txns ~seed
                      Expcommon.Lfs_kernel
                  else
                    fst
                      (Expcommon.run_tpcb_mpl ~prepare ~config:cfg ~scale ~txns
                         ~seed ~mpl Expcommon.Lfs_kernel)
                in
                let stats = run.Expcommon.stats in
                let moved = Stats.count stats "cleaner.blocks_moved" in
                let reclaimed = Stats.count stats "cleaner.blocks_reclaimed" in
                {
                  util_pct;
                  mpl;
                  arm;
                  run;
                  stall_p99_s = p99 stats "cleaner.stall";
                  write_cost =
                    (if reclaimed = 0 then 0.0
                     else float_of_int moved /. float_of_int reclaimed);
                  blocks_moved = moved;
                  blocks_reclaimed = reclaimed;
                  segments_cleaned = Stats.count stats "cleaner.segments";
                  cleans_observed = histo_count stats "cleaner.clean";
                  idle_cleans = Stats.count stats "cleaner.idle_cleans";
                  backoffs = Stats.count stats "cleaner.backoffs";
                  cold_segments = Stats.count stats "cleaner.cold_segments";
                })
              mpls)
          utils)
      arms
  in
  { points; scale; txns; config = base }

let point_json p =
  Json.Obj
    [
      ("util_pct", Json.Int p.util_pct);
      ("mpl", Json.Int p.mpl);
      ("policy", Json.Str (policy_key p.arm.policy));
      ("segregate", Json.Bool p.arm.segregate);
      ("arm", Json.Str (arm_key p.arm));
      ("tps", Json.Float p.run.Expcommon.result.Tpcb.tps);
      ("elapsed_s", Json.Float p.run.Expcommon.result.Tpcb.elapsed_s);
      ("txns", Json.Int p.run.Expcommon.result.Tpcb.txns);
      ("max_latency_s", Json.Float p.run.Expcommon.result.Tpcb.max_latency_s);
      ("cleaner_stall_s", Json.Float p.run.Expcommon.cleaner_stall_s);
      ("stall_p99_s", Json.Float p.stall_p99_s);
      ("write_cost", Json.Float p.write_cost);
      ("blocks_moved", Json.Int p.blocks_moved);
      ("blocks_reclaimed", Json.Int p.blocks_reclaimed);
      ("segments_cleaned", Json.Int p.segments_cleaned);
      ("cleans_observed", Json.Int p.cleans_observed);
      ("idle_cleans", Json.Int p.idle_cleans);
      ("backoffs", Json.Int p.backoffs);
      ("cold_segments", Json.Int p.cold_segments);
      ("stats", Stats.to_json p.run.Expcommon.stats);
    ]

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "cleanersweep");
      ( "scale",
        Json.Obj
          [
            ("accounts", Json.Int t.scale.Tpcb.accounts);
            ("tellers", Json.Int t.scale.Tpcb.tellers);
            ("branches", Json.Int t.scale.Tpcb.branches);
          ] );
      ("txns", Json.Int t.txns);
      ("points", Json.List (List.map point_json t.points));
    ]

let print t =
  Expcommon.pp_header
    "Cleaner sweep: utilization x MPL x victim policy x segregation";
  Printf.printf "%-18s %5s %4s %8s %10s %10s %8s %8s %8s\n" "arm" "util" "mpl"
    "tps" "stall_p99" "write_cost" "cleaned" "idle" "backoff";
  List.iter
    (fun p ->
      Printf.printf "%-18s %4d%% %4d %8.2f %9.3fs %10.2f %8d %8d %8d\n"
        (arm_key p.arm) p.util_pct p.mpl p.run.Expcommon.result.Tpcb.tps
        p.stall_p99_s p.write_cost p.segments_cleaned p.idle_cleans p.backoffs)
    t.points;
  (* The curve the sweep exists to draw: throughput retained from the
     emptiest to the fullest disk, per arm, at the highest MPL. *)
  let mpl_hi = List.fold_left max 1 (List.map (fun p -> p.mpl) t.points) in
  let utils = List.sort_uniq compare (List.map (fun p -> p.util_pct) t.points) in
  match (utils, List.rev utils) with
  | lo :: _, hi :: _ when lo <> hi ->
    List.iter
      (fun arm ->
        let at u =
          List.find_opt
            (fun p -> p.arm = arm && p.util_pct = u && p.mpl = mpl_hi)
            t.points
        in
        match (at lo, at hi) with
        | Some plo, Some phi ->
          let tlo = plo.run.Expcommon.result.Tpcb.tps
          and thi = phi.run.Expcommon.result.Tpcb.tps in
          if tlo > 0.0 then
            Printf.printf
              "%-18s keeps %5.1f%% of its %d%%-full TPS at %d%% full (MPL %d)\n"
              (arm_key arm) (100.0 *. thi /. tlo) lo hi mpl_hi
        | _ -> ())
      (List.sort_uniq compare (List.map (fun p -> p.arm) t.points))
  | _ -> ()
