(** Disk-placement sweep: what the paper's single-spindle testbed could
    not measure.

    Section 4 attributes much of LIBTP-on-LFS's shortfall to the log and
    the database sharing one disk arm: every commit force drags the head
    away from the data. {!Diskset} lets the sweep separate them — a
    dedicated log spindle — and stripe LFS segments round-robin across
    several data spindles. Each configuration runs TPC-B at MPL 1 and 8
    (group commit sized to the MPL) and reports throughput plus per-disk
    utilization, so the artifact shows both the speedup and how evenly
    the stripe spreads the load. *)

type disk_stat = {
  prefix : string;  (** stat prefix: [disk], [disk0].., or [disklog] *)
  busy_s : float;
  seek_s : float;
  seeks : int;
  requests : int;
  blocks_read : int;
  blocks_written : int;
}

type point = {
  label : string;  (** e.g. ["1-shared"], ["1+log"], ["4+log"] *)
  ndisks : int;
  log_disk : bool;
  mpl : int;
  run : Expcommon.tpcb_run;
  multi : Tpcb.multi_result;
  disks : disk_stat list;  (** one entry per spindle, data then log *)
}

type t = {
  points : point list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;  (** the base (single shared disk) configuration *)
  setup : Expcommon.setup;
}

val default_setups : (string * int * bool) list
(** [(label, ndisks, log_disk)]: one shared disk, one disk plus log
    spindle, and 2- and 4-wide stripes plus log spindle. *)

val default_mpls : int list

val run :
  ?tps_scale:int ->
  ?txns:int ->
  ?seed:int ->
  ?mpls:int list ->
  ?setups:(string * int * bool) list ->
  ?setup:Expcommon.setup ->
  unit ->
  t

val to_json : t -> Json.t
(** The [data] block of [BENCH_disksweep.json]; every point carries its
    per-disk busy/seek summary and the machine's full stats (including
    the per-spindle seek histograms). *)

val print : t -> unit
