(* Multiprogramming-level sweep: the experiment the paper could not run.
   Section 4.4 concedes that at MPL 1 "group commit provides no benefit";
   with the discrete-event scheduler we can sweep MPL x group-commit
   configuration and watch the rendezvous start doing real work — batch
   sizes above 1, fewer log forces, and throughput that rises with MPL
   instead of paying the full timeout per transaction. *)

type point = {
  mpl : int;
  group_size : int;
  group_timeout_s : float;
  lock_grain : [ `Page | `Record ];
  run : Expcommon.tpcb_run;
  multi : Tpcb.multi_result;
  mean_batch : float;
  group_flushes : int;
  group_commit_wait_s : float;
  lock_wait_p99_s : float;
}

type t = {
  points : point list;
  legacy_mpl1 : (int * float * float) list;
      (* (group_size, group_timeout_s, tps) of the pre-refactor MPL-1
         driver under the same config — the epsilon reference. *)
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;
  setup : Expcommon.setup;
}

let default_mpls = [ 1; 2; 4; 8; 16 ]
let default_grains = [ `Page; `Record ]
(* Timeouts are sized against the per-transaction service time (tens of
   milliseconds on the simulated disk): a timeout well below it never
   sees a second committer arrive. *)
let default_groups = [ (1, 0.0); (4, 0.05); (8, 0.1) ]

(* TPC-B's official ratios (10 tellers and 1 branch per TPS) leave the
   whole teller and branch relations on a single B-tree page at any
   scale this simulator can run, and page-grain 2PL holds those page
   locks through the commit flush — every transaction would serialize
   on them and no MPL could ever produce a commit batch above one. The
   sweep therefore spreads both hot relations across many pages (the
   concurrency analogue of the spec's "scale the database with the
   load" provision) while keeping the account relation at its official
   size. *)
let spread_scale tps =
  { Tpcb.accounts = 100_000 * tps; tellers = 200 * tps; branches = 200 * tps }

let with_group config (size, timeout) =
  let fs =
    {
      config.Config.fs with
      Config.group_commit_size = size;
      group_commit_timeout_s = timeout;
    }
  in
  { config with Config.fs }

let with_grain config grain =
  { config with Config.fs = { config.Config.fs with Config.lock_grain = grain } }

let grain_key = function `Page -> "page" | `Record -> "record"

let grain_of_string = function
  | "page" -> `Page
  | "record" -> `Record
  | s -> invalid_arg ("Mplsweep: unknown lock grain " ^ s)

let batch_key = function
  | Expcommon.Lfs_kernel -> "ktxn.commit_batch"
  | Expcommon.Lfs_user | Expcommon.Readopt_user -> "log.commit_batch"

let flush_key = function
  | Expcommon.Lfs_kernel -> "ktxn.group_flushes"
  | Expcommon.Lfs_user | Expcommon.Readopt_user -> "log.forces"

let wait_key = function
  | Expcommon.Lfs_kernel -> "ktxn.group_commit_wait"
  | Expcommon.Lfs_user | Expcommon.Readopt_user -> "log.group_commit_wait"

let lock_wait_key = function
  | Expcommon.Lfs_kernel -> "ktxn.lock_wait"
  | Expcommon.Lfs_user | Expcommon.Readopt_user -> "txn.lock_wait"

(* Default setup is the user-level system: that is where record-grain
   locking changes transaction behaviour end to end (the embedded kernel
   manager keeps page-exclusive writes — its abort works by invalidating
   whole cached frames — and only relaxes read locks). *)
let run ?config ?(tps_scale = 2) ?(txns = 2_000) ?(seed = 1)
    ?(mpls = default_mpls) ?(groups = default_groups)
    ?(grains = default_grains) ?(setup = Expcommon.Lfs_user) () =
  let base =
    match config with
    | Some c -> c
    | None ->
      Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default
  in
  let scale = spread_scale tps_scale in
  let points =
    List.concat_map
      (fun grain ->
        List.concat_map
          (fun (gsize, gtimeout) ->
            let cfg = with_grain (with_group base (gsize, gtimeout)) grain in
            List.map
              (fun mpl ->
                let run, multi =
                  Expcommon.run_tpcb_mpl ~config:cfg ~scale ~txns ~seed ~mpl
                    setup
                in
                let stats = run.Expcommon.stats in
                let mean_batch =
                  match Stats.histo stats (batch_key setup) with
                  | Some h when Histo.count h > 0 -> Histo.mean h
                  | _ -> 1.0
                in
                let lock_wait_p99_s =
                  match Stats.histo stats (lock_wait_key setup) with
                  | Some h when Histo.count h > 0 -> Histo.percentile h 0.99
                  | _ -> 0.0
                in
                {
                  mpl;
                  group_size = gsize;
                  group_timeout_s = gtimeout;
                  lock_grain = grain;
                  run;
                  multi;
                  mean_batch;
                  group_flushes = Stats.count stats (flush_key setup);
                  group_commit_wait_s = Stats.time stats (wait_key setup);
                  lock_wait_p99_s;
                })
              mpls)
          groups)
      grains
  in
  (* Same configurations through the legacy MPL-1 driver: the scheduler
     at MPL 1 must land within a small epsilon of these. *)
  let legacy_mpl1 =
    List.map
      (fun (gsize, gtimeout) ->
        let cfg = with_group base (gsize, gtimeout) in
        let r = Expcommon.run_tpcb ~config:cfg ~scale ~txns ~seed setup in
        (gsize, gtimeout, r.Expcommon.result.Tpcb.tps))
      groups
  in
  { points; legacy_mpl1; scale; txns; config = base; setup }

let point_json p =
  Json.Obj
    [
      ("mpl", Json.Int p.mpl);
      ("group_size", Json.Int p.group_size);
      ("group_timeout_s", Json.Float p.group_timeout_s);
      ("lock_grain", Json.Str (grain_key p.lock_grain));
      ("tps", Json.Float p.run.Expcommon.result.Tpcb.tps);
      ("elapsed_s", Json.Float p.run.Expcommon.result.Tpcb.elapsed_s);
      ("txns", Json.Int p.run.Expcommon.result.Tpcb.txns);
      ("max_latency_s", Json.Float p.run.Expcommon.result.Tpcb.max_latency_s);
      ("mean_commit_batch", Json.Float p.mean_batch);
      ("group_flushes", Json.Int p.group_flushes);
      ("group_commit_wait_s", Json.Float p.group_commit_wait_s);
      ("lock_blocks", Json.Int p.multi.Tpcb.conflicts);
      ("lock_wait_p99_s", Json.Float p.lock_wait_p99_s);
      ("deadlocks", Json.Int p.multi.Tpcb.deadlocks);
      ("restarts", Json.Int p.multi.Tpcb.restarts);
      ("cleaner_stall_s", Json.Float p.run.Expcommon.cleaner_stall_s);
      ("stats", Stats.to_json p.run.Expcommon.stats);
    ]

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "mplsweep");
      ("setup", Json.Str (Expcommon.setup_key t.setup));
      ( "scale",
        Json.Obj
          [
            ("accounts", Json.Int t.scale.Tpcb.accounts);
            ("tellers", Json.Int t.scale.Tpcb.tellers);
            ("branches", Json.Int t.scale.Tpcb.branches);
          ] );
      ("txns", Json.Int t.txns);
      ("points", Json.List (List.map point_json t.points));
      ( "legacy_mpl1",
        Json.List
          (List.map
             (fun (gsize, gtimeout, tps) ->
               Json.Obj
                 [
                   ("group_size", Json.Int gsize);
                   ("group_timeout_s", Json.Float gtimeout);
                   ("tps", Json.Float tps);
                 ])
             t.legacy_mpl1) );
    ]

let print t =
  Expcommon.pp_header
    (Printf.sprintf
       "MPL sweep: %s, TPC-B, %d accounts, %d txns per point"
       (Expcommon.setup_label t.setup)
       t.scale.Tpcb.accounts t.txns);
  Printf.printf "%6s %4s %6s %10s %8s %10s %8s %8s %8s %9s\n" "grain" "mpl"
    "gsize" "timeout" "TPS" "mean" "flushes" "blocks" "dlocks" "gc wait";
  Printf.printf "%6s %4s %6s %10s %8s %10s %8s %8s %8s %9s\n" "" "" "" "(ms)"
    "" "batch" "" "" "" "(s)";
  List.iter
    (fun p ->
      Printf.printf "%6s %4d %6d %10.1f %8.2f %10.2f %8d %8d %8d %9.2f\n"
        (grain_key p.lock_grain) p.mpl p.group_size
        (1000.0 *. p.group_timeout_s)
        p.run.Expcommon.result.Tpcb.tps p.mean_batch p.group_flushes
        p.multi.Tpcb.conflicts p.multi.Tpcb.deadlocks p.group_commit_wait_s)
    t.points;
  Printf.printf "\nlegacy MPL-1 driver (epsilon reference):\n";
  List.iter
    (fun (gsize, gtimeout, tps) ->
      Printf.printf "  gsize %d timeout %.1fms: %.2f TPS\n" gsize
        (1000.0 *. gtimeout) tps)
    t.legacy_mpl1;
  (* Headline: does group commit do real work once MPL > 1, and does
     record granularity beat page granularity under contention? *)
  let find grain mpl gsize =
    List.find_opt
      (fun p -> p.lock_grain = grain && p.mpl = mpl && p.group_size = gsize)
      t.points
  in
  let first_grain =
    match t.points with [] -> `Page | p :: _ -> p.lock_grain
  in
  (match (find first_grain 1 8, find first_grain 8 8) with
  | Some p1, Some p8 ->
    Printf.printf
      "\nshape: gsize 8, MPL 8 vs MPL 1: %+.1f%% TPS (batch %.2f vs %.2f)\n"
      (100.0
      *. ((p8.run.Expcommon.result.Tpcb.tps
           /. p1.run.Expcommon.result.Tpcb.tps)
         -. 1.0))
      p8.mean_batch p1.mean_batch
  | _ -> ());
  match (find `Page 16 8, find `Record 16 8) with
  | Some pp, Some pr ->
    Printf.printf
      "shape: gsize 8, MPL 16, record vs page grain: %+.1f%% TPS\n"
      (100.0
      *. ((pr.run.Expcommon.result.Tpcb.tps /. pp.run.Expcommon.result.Tpcb.tps)
         -. 1.0))
  | _ -> ()
