(** Adaptive-cleaner sweep: utilization x MPL x victim policy x hot/cold
    segregation under TPC-B.

    Cleaning cost is the LFS overhead that grows with disk utilization
    (Section 5.1's stalls are its foreground face). Each cell prefills
    the disk with static fill files to the target utilization, runs
    TPC-B on the kernel-embedded setup, and reports throughput, cleaner
    stall p99, and the per-victim write cost (blocks moved per block
    reclaimed). Cost-benefit victim selection with cold-survivor
    segregation should lose less throughput between the emptiest and the
    fullest cell than greedy without segregation — that is the claim
    [BENCH_cleanersweep.json] is checked against. *)

type arm = { policy : [ `Greedy | `Cost_benefit ]; segregate : bool }

type point = {
  util_pct : int;
  mpl : int;
  arm : arm;
  run : Expcommon.tpcb_run;
  stall_p99_s : float;
  write_cost : float;
      (** blocks moved per block reclaimed, whole run; 0 if nothing was
          reclaimed *)
  blocks_moved : int;
  blocks_reclaimed : int;
  segments_cleaned : int;  (** counter ["cleaner.segments"] *)
  cleans_observed : int;
      (** sample count of the ["cleaner.clean"] histogram — must equal
          [segments_cleaned] (dead-segment reclaims observe a zero) *)
  idle_cleans : int;  (** background cleans taken while the disk was idle *)
  backoffs : int;  (** daemon wakeups skipped because the queue was deep *)
  cold_segments : int;  (** relocation segments opened by segregation *)
}

type t = {
  points : point list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;  (** the base configuration before per-arm edits *)
}

val default_utils : int list
(** [[50; 70; 80; 90]] *)

val default_mpls : int list
(** [[1; 8]] *)

val default_arms : arm list
(** Both policies, each with and without segregation. *)

val run :
  ?tps_scale:int ->
  ?txns:int ->
  ?seed:int ->
  ?utils:int list ->
  ?mpls:int list ->
  ?arms:arm list ->
  unit ->
  t

val to_json : t -> Json.t
(** The [data] block of [BENCH_cleanersweep.json]; every point carries
    the machine's full stats. *)

val print : t -> unit
