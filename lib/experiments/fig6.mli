(** Figure 6 — Sequential Performance after Random I/O (the SCAN test).

    Both file systems execute a TPC-B run and then read the account
    relation in key order through a B-tree cursor. The read-optimized
    system kept the file's original layout (updates were in place) while
    LFS scattered the updated blocks across segments; the paper measures
    the read-optimized scan ~50 % faster (≈2000 s vs ≈3000 s at full
    scale). *)

type side = {
  fs_name : string;
  tps : float;  (** throughput of the preceding transaction run *)
  scan_s : float;
  contiguity : float option;
      (** fraction of adjacent leaf blocks adjacent on disk (FFS only) *)
  stats : Stats.t;  (** the machine's stats for run + scan *)
}

type t = {
  readopt : side;
  lfs : side;
  txns : int;  (** transactions executed before the scan *)
  config : Config.t;
}

val run :
  ?config:Config.t -> ?tps_scale:int -> ?txns:int -> ?seed:int -> unit -> t
(** Defaults: TPC-B scale 4, 20 000 transactions before the scan. *)

val to_json : t -> Json.t
val print : t -> unit
