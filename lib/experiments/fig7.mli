(** Figure 7 — Total elapsed time for transaction processing plus a
    sequential scan, as a function of how many transactions run before
    the scan.

    As in the paper, the scan time is pessimistically fixed at its
    measured post-run value for each system, and the per-transaction
    rate comes from the Figure 4 measurement:
    [elapsed(n) = n / TPS + scan]. The crossover is the number of
    transactions per scan beyond which LFS wins overall; the paper finds
    ≈134 300 transactions (≈2 h 40 m at 13.6 TPS). *)

type t = {
  readopt_tps : float;
  lfs_tps : float;
  readopt_scan_s : float;
  lfs_scan_s : float;
  crossover_txns : float option;
      (** [None] if the lines never cross (LFS not slower to scan or not
          faster to process) *)
  series : (int * float * float) list;
      (** (n, read-optimized total, LFS total) samples for the plot *)
}

val of_measurements : fig4:Fig4.t -> fig6:Fig6.t -> t
(** Derive the figure from the Figure 4 and Figure 6 measurements. *)

val run :
  ?config:Config.t -> ?tps_scale:int -> ?txns:int -> ?seeds:int list -> unit -> t
(** Run Figures 4 and 6 afresh and derive the crossover. *)

val to_json : t -> Json.t
val print : t -> unit
