type machine = {
  cfg : Config.t;
  clock : Clock.t;
  stats : Stats.t;
  disks : Diskset.t;
}

let machine ?route_checkpoints cfg =
  let clock = Clock.create () in
  let stats = Stats.create () in
  { cfg; clock; stats; disks = Diskset.create ?route_checkpoints clock stats cfg }

(* Open the WAL environment. With dedicated log spindles each log stream
   lives in a small FFS formatted on its own spindle (so commit forces
   never move the data heads, and with several streams never contend for
   one log arm); otherwise the streams are files in the data file
   system. *)
let wal_env m data_vfs ~pool_pages =
  match Diskset.log_disks m.disks with
  | [||] ->
    Libtp.open_env m.clock m.stats m.cfg data_vfs ~pool_pages
      ~log_path:"/tpcb/log" ()
  | lds ->
    let log_vfss =
      Array.map (fun ld -> Ffs.vfs (Ffs.format ld m.clock m.stats m.cfg)) lds
    in
    Libtp.open_env m.clock m.stats m.cfg data_vfs ~log_vfss ~pool_pages
      ~log_path:"/log" ()

type setup = Readopt_user | Lfs_user | Lfs_kernel

let setup_label = function
  | Readopt_user -> "read-optimized / user-level"
  | Lfs_user -> "LFS / user-level"
  | Lfs_kernel -> "LFS / kernel (embedded)"

let setup_key = function
  | Readopt_user -> "ffs-user"
  | Lfs_user -> "lfs-user"
  | Lfs_kernel -> "lfs-kernel"

type tpcb_run = {
  setup : setup;
  seed : int;
  result : Tpcb.result;
  cleaner_stall_s : float;
  cleaner_max_stall_s : float;
  stats : Stats.t;
}

(* [prepare] runs after the database is built but before the measured
   window: experiments use it to shape the disk (e.g. prefill to a target
   utilization for cleaner studies). It receives the machine, the data
   file system's VFS, and the LFS handle when the setup has one. *)
let run_tpcb ?(pool_pages = 1024) ?trace ?prepare ~config ~scale ~txns ~seed
    setup =
  (* Only the kernel-embedded setup leaves the log spindle (if any) free
     of a file system, so only there may the LFS checkpoint region use it. *)
  let m = machine ~route_checkpoints:(setup = Lfs_kernel) config in
  (match trace with
  | Some cap -> Stats.set_trace m.stats (Some (Trace.create ~capacity:cap ()))
  | None -> ());
  let rng = Rng.create ~seed in
  let vfs, backend, lfs =
    match setup with
    | Readopt_user ->
      let fs = Ffs.format (Diskset.primary m.disks) m.clock m.stats m.cfg in
      let v = Ffs.vfs fs in
      let db = Tpcb.build m.clock m.stats m.cfg v ~rng ~scale in
      ignore db;
      let env = wal_env m v ~pool_pages in
      (v, Tpcb.User env, None)
    | Lfs_user ->
      let fs = Lfs.format m.disks m.clock m.stats m.cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build m.clock m.stats m.cfg v ~rng ~scale in
      ignore db;
      let env = wal_env m v ~pool_pages in
      (v, Tpcb.User env, Some fs)
    | Lfs_kernel ->
      let fs = Lfs.format m.disks m.clock m.stats m.cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build m.clock m.stats m.cfg v ~rng ~scale in
      ignore db;
      let k = Ktxn.create fs in
      Tpcb.protect_all db k;
      (v, Tpcb.Kernel k, Some fs)
  in
  (match prepare with Some f -> f m vfs lfs | None -> ());
  let db = Tpcb.open_db vfs ~scale in
  (* Measure the transaction phase only, like the paper. Cleaner stall
     accounting is also restricted to the measured window. *)
  let stall0 = Stats.time m.stats "cleaner.stall" in
  let result = Tpcb.run m.clock m.stats m.cfg db backend ~rng ~n:txns in
  {
    setup;
    seed;
    result;
    cleaner_stall_s = Stats.time m.stats "cleaner.stall" -. stall0;
    cleaner_max_stall_s = Stats.max_of m.stats "cleaner.max_stall";
    stats = m.stats;
  }

let run_tpcb_mpl ?(pool_pages = 1024) ?trace ?prepare ~config ~scale ~txns
    ~seed ~mpl setup =
  let m = machine ~route_checkpoints:(setup = Lfs_kernel) config in
  (match trace with
  | Some cap -> Stats.set_trace m.stats (Some (Trace.create ~capacity:cap ()))
  | None -> ());
  (* Attach the discrete-event scheduler before any component boots, so
     subsystems discover it via [Sched.of_clock] and take their blocking
     paths once inside worker processes. Setup itself runs outside any
     process and stays on the legacy paths. *)
  let sched = Sched.create m.clock in
  let rng = Rng.create ~seed in
  let vfs, backend, lfs =
    match setup with
    | Readopt_user ->
      let fs = Ffs.format (Diskset.primary m.disks) m.clock m.stats m.cfg in
      let v = Ffs.vfs fs in
      ignore (Tpcb.build m.clock m.stats m.cfg v ~rng ~scale);
      let env = wal_env m v ~pool_pages in
      (v, Tpcb.User env, None)
    | Lfs_user ->
      let fs = Lfs.format m.disks m.clock m.stats m.cfg in
      let v = Lfs.vfs fs in
      ignore (Tpcb.build m.clock m.stats m.cfg v ~rng ~scale);
      let env = wal_env m v ~pool_pages in
      (v, Tpcb.User env, Some fs)
    | Lfs_kernel ->
      let fs = Lfs.format m.disks m.clock m.stats m.cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build m.clock m.stats m.cfg v ~rng ~scale in
      let k = Ktxn.create fs in
      Tpcb.protect_all db k;
      (v, Tpcb.Kernel k, Some fs)
  in
  (match prepare with Some f -> f m vfs lfs | None -> ());
  (match lfs with Some fs -> Lfs.start_background fs | None -> ());
  let db = Tpcb.open_db vfs ~scale in
  let stall0 = Stats.time m.stats "cleaner.stall" in
  let multi =
    Tpcb.run_sched m.clock m.stats m.cfg db backend ~rng ~n:txns ~mpl
  in
  Sched.detach sched;
  ( {
      setup;
      seed;
      result = multi.Tpcb.base;
      cleaner_stall_s = Stats.time m.stats "cleaner.stall" -. stall0;
      cleaner_max_stall_s = Stats.max_of m.stats "cleaner.max_stall";
      stats = m.stats;
    },
    multi )

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stdev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let pp_header title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* Machine-readable benchmark artifacts ----------------------------------- *)

let config_json (c : Config.t) =
  let d = c.Config.disk and cpu = c.Config.cpu and fs = c.Config.fs in
  Json.Obj
    [
      ( "disk",
        Json.Obj
          [
            ("block_size", Json.Int d.Config.block_size);
            ("nblocks", Json.Int d.Config.nblocks);
            ("blocks_per_cylinder", Json.Int d.Config.blocks_per_cylinder);
            ("min_seek_s", Json.Float d.Config.min_seek_s);
            ("max_seek_s", Json.Float d.Config.max_seek_s);
            ("rpm", Json.Float d.Config.rpm);
            ("transfer_bytes_per_s", Json.Float d.Config.transfer_bytes_per_s);
          ] );
      ( "cpu",
        Json.Obj
          [
            ("syscall_s", Json.Float cpu.Config.syscall_s);
            ("context_switch_s", Json.Float cpu.Config.context_switch_s);
            ("has_test_and_set", Json.Bool cpu.Config.has_test_and_set);
            ("test_and_set_s", Json.Float cpu.Config.test_and_set_s);
            ("copy_block_s", Json.Float cpu.Config.copy_block_s);
            ("buffer_lookup_s", Json.Float cpu.Config.buffer_lookup_s);
            ("protection_check_s", Json.Float cpu.Config.protection_check_s);
            ("record_op_s", Json.Float cpu.Config.record_op_s);
            ("cursor_next_s", Json.Float cpu.Config.cursor_next_s);
            ("lock_op_s", Json.Float cpu.Config.lock_op_s);
            ("log_record_s", Json.Float cpu.Config.log_record_s);
            ("file_op_s", Json.Float cpu.Config.file_op_s);
            ("compile_unit_s", Json.Float cpu.Config.compile_unit_s);
          ] );
      ( "fs",
        Json.Obj
          [
            ("kernel_txn", Json.Bool fs.Config.kernel_txn);
            ("segment_blocks", Json.Int fs.Config.segment_blocks);
            ("cache_blocks", Json.Int fs.Config.cache_blocks);
            ("syncer_interval_s", Json.Float fs.Config.syncer_interval_s);
            ("checkpoint_segments", Json.Int fs.Config.checkpoint_segments);
            ("cleaner_low_segments", Json.Int fs.Config.cleaner_low_segments);
            ("cleaner_high_segments", Json.Int fs.Config.cleaner_high_segments);
            ( "cleaner_policy",
              Json.Str
                (match fs.Config.cleaner_policy with
                | `Greedy -> "greedy"
                | `Cost_benefit -> "cost-benefit") );
            ("cleaner_segregate", Json.Bool fs.Config.cleaner_segregate);
            ("cleaner_adaptive", Json.Bool fs.Config.cleaner_adaptive);
            ( "cleaner_backoff_qdepth",
              Json.Int fs.Config.cleaner_backoff_qdepth );
            ("lfs_user_cleaner", Json.Bool fs.Config.lfs_user_cleaner);
            ("group_commit_timeout_s", Json.Float fs.Config.group_commit_timeout_s);
            ("group_commit_size", Json.Int fs.Config.group_commit_size);
            ("ndisks", Json.Int fs.Config.ndisks);
            ("log_disk", Json.Bool fs.Config.log_disk);
            ("log_streams", Json.Int fs.Config.log_streams);
            ( "lock_grain",
              Json.Str
                (match fs.Config.lock_grain with
                | `Page -> "page"
                | `Record -> "record") );
            ("lock_escalation", Json.Int fs.Config.lock_escalation);
          ] );
    ]

let config_fingerprint c =
  Printf.sprintf "%08x" (Hashtbl.hash (Json.to_string (config_json c)))

let bench_doc ~name ~config data =
  Json.Obj
    [
      ( "meta",
        Json.Obj
          [
            ("name", Json.Str name);
            ("schema", Json.Int 1);
            ("generator", Json.Str "txnlfs");
            ("config_fingerprint", Json.Str (config_fingerprint config));
            ("config", config_json config);
          ] );
      ("data", data);
    ]

let write_bench ~name ~config data =
  let dir =
    match Sys.getenv_opt "BENCH_DIR" with Some d when d <> "" -> d | _ -> "."
  in
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" name) in
  let oc = open_out path in
  output_string oc (Json.to_string_pretty (bench_doc ~name ~config data));
  output_char oc '\n';
  close_out oc;
  path

let tpcb_run_json (r : tpcb_run) =
  Json.Obj
    [
      ("setup", Json.Str (setup_key r.setup));
      ("seed", Json.Int r.seed);
      ("txns", Json.Int r.result.Tpcb.txns);
      ("elapsed_s", Json.Float r.result.Tpcb.elapsed_s);
      ("tps", Json.Float r.result.Tpcb.tps);
      ("max_latency_s", Json.Float r.result.Tpcb.max_latency_s);
      ("cleaner_stall_s", Json.Float r.cleaner_stall_s);
      ("cleaner_max_stall_s", Json.Float r.cleaner_max_stall_s);
      ("stats", Stats.to_json r.stats);
    ]
