type bar = {
  setup : Expcommon.setup;
  tps_mean : float;
  tps_sd : float;
  per_seed : float list;
  cleaner_stall_mean_s : float;
  paper_tps : float option;
  runs : Expcommon.tpcb_run list;
}

type t = { bars : bar list; scale : Tpcb.scale; txns : int; config : Config.t }

let default_tps_scale = 4

let paper_value = function
  | Expcommon.Readopt_user -> Some 12.3
  | Expcommon.Lfs_user -> Some 13.6
  | Expcommon.Lfs_kernel -> None (* "comparable to user level" *)

let run ?config ?(tps_scale = default_tps_scale) ?(txns = 20_000)
    ?(seeds = [ 1; 2; 3 ]) () =
  let config =
    match config with
    | Some c -> c
    | None ->
      Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default
  in
  let scale = Tpcb.scale_for_tps tps_scale in
  let bar setup =
    let runs =
      List.map
        (fun seed -> Expcommon.run_tpcb ~config ~scale ~txns ~seed setup)
        seeds
    in
    let tps = List.map (fun r -> r.Expcommon.result.Tpcb.tps) runs in
    {
      setup;
      tps_mean = Expcommon.mean tps;
      tps_sd = Expcommon.stdev tps;
      per_seed = tps;
      cleaner_stall_mean_s =
        Expcommon.mean (List.map (fun r -> r.Expcommon.cleaner_stall_s) runs);
      paper_tps = paper_value setup;
      runs;
    }
  in
  {
    bars =
      List.map bar
        [ Expcommon.Readopt_user; Expcommon.Lfs_user; Expcommon.Lfs_kernel ];
    scale;
    txns;
    config;
  }

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "fig4");
      ( "scale",
        Json.Obj
          [
            ("accounts", Json.Int t.scale.Tpcb.accounts);
            ("tellers", Json.Int t.scale.Tpcb.tellers);
            ("branches", Json.Int t.scale.Tpcb.branches);
          ] );
      ("txns", Json.Int t.txns);
      ( "bars",
        Json.List
          (List.map
             (fun b ->
               Json.Obj
                 [
                   ("setup", Json.Str (Expcommon.setup_key b.setup));
                   ("tps_mean", Json.Float b.tps_mean);
                   ("tps_sd", Json.Float b.tps_sd);
                   ( "per_seed",
                     Json.List (List.map (fun v -> Json.Float v) b.per_seed) );
                   ("cleaner_stall_mean_s", Json.Float b.cleaner_stall_mean_s);
                   ( "paper_tps",
                     match b.paper_tps with
                     | Some v -> Json.Float v
                     | None -> Json.Null );
                   ("runs", Json.List (List.map Expcommon.tpcb_run_json b.runs));
                 ])
             t.bars) );
    ]

let print t =
  Expcommon.pp_header
    (Printf.sprintf
       "Figure 4: Transaction Performance Summary (TPC-B, %d accounts, %d txns)"
       t.scale.Tpcb.accounts t.txns);
  Printf.printf "%-30s %10s %8s %14s %10s\n" "configuration" "TPS" "sd"
    "cleaner stall" "paper TPS";
  List.iter
    (fun b ->
      Printf.printf "%-30s %10.2f %8.2f %13.1fs %10s\n"
        (Expcommon.setup_label b.setup)
        b.tps_mean b.tps_sd b.cleaner_stall_mean_s
        (match b.paper_tps with Some v -> Printf.sprintf "%.1f" v | None -> "~user"))
    t.bars;
  match t.bars with
  | [ ro; lu; lk ] ->
    Printf.printf
      "\nshape: LFS/user vs read-optimized: %+.1f%% (paper: +10.6%%); \
       kernel vs user on LFS: %+.1f%% (paper: comparable, kernel >= user)\n"
      (100.0 *. ((lu.tps_mean /. ro.tps_mean) -. 1.0))
      (100.0 *. ((lk.tps_mean /. lu.tps_mean) -. 1.0))
  | _ -> ()
