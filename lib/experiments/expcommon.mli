(** Shared machinery for the paper-reproduction experiments: booting
    machines, building TPC-B databases on either file system, running the
    transaction phase under any of the three configurations, and small
    statistics helpers. *)

type machine = {
  cfg : Config.t;
  clock : Clock.t;
  stats : Stats.t;
  disks : Diskset.t;  (** spindles per [cfg.fs.ndisks] / [cfg.fs.log_disk] *)
}

val machine : ?route_checkpoints:bool -> Config.t -> machine
(** Boot clock, stats and the disk set of [cfg]. [route_checkpoints]
    (default false) is passed to {!Diskset.create}: only set it when the
    log spindle will not host a file system of its own. *)

(** The three measured configurations of Figure 4. *)
type setup =
  | Readopt_user  (** user-level transactions on the read-optimized FS *)
  | Lfs_user  (** user-level transactions on LFS *)
  | Lfs_kernel  (** the embedded transaction manager in LFS *)

val setup_label : setup -> string

val setup_key : setup -> string
(** Short machine-readable slug ([ffs-user], [lfs-user], [lfs-kernel]). *)

type tpcb_run = {
  setup : setup;
  seed : int;
  result : Tpcb.result;
  cleaner_stall_s : float;  (** total time the system stalled cleaning *)
  cleaner_max_stall_s : float;
  stats : Stats.t;  (** the machine's stats — counters, histograms, trace *)
}

val run_tpcb :
  ?pool_pages:int ->
  ?trace:int ->
  ?prepare:(machine -> Vfs.t -> Lfs.t option -> unit) ->
  config:Config.t ->
  scale:Tpcb.scale ->
  txns:int ->
  seed:int ->
  setup ->
  tpcb_run
(** Boot a fresh machine, build the database, run [txns] transactions,
    and report throughput plus cleaner interference. [?trace] attaches an
    event-trace ring of that capacity to the machine's stats before the
    run; retrieve it via [Stats.trace run.stats]. [?prepare] runs after
    the database is built but before the measured window — experiments
    use it to shape the disk (e.g. prefill to a target utilization for
    cleaner studies); it gets the LFS handle when the setup has one. *)

val run_tpcb_mpl :
  ?pool_pages:int ->
  ?trace:int ->
  ?prepare:(machine -> Vfs.t -> Lfs.t option -> unit) ->
  config:Config.t ->
  scale:Tpcb.scale ->
  txns:int ->
  seed:int ->
  mpl:int ->
  setup ->
  tpcb_run * Tpcb.multi_result
(** Like {!run_tpcb} but at multiprogramming level [mpl] on the
    discrete-event scheduler: boots the machine with a {!Sched} attached
    to its clock, starts the LFS syncer/cleaner as background processes,
    and drives the workload with [Tpcb.run_sched]. The [tpcb_run] mirrors
    {!run_tpcb}'s shape; the [multi_result] adds lock blocks, deadlocks
    and restarts. *)

val mean : float list -> float
val stdev : float list -> float

val pp_header : string -> unit
(** Print a section banner for the experiment reports. *)

(** {2 Machine-readable benchmark artifacts}

    Every experiment driver can serialize its results as a [BENCH_*.json]
    document: [{meta: {name; schema; generator; config_fingerprint;
    config}, data: ...}]. The fingerprint lets tooling group artifacts
    produced under identical configurations. *)

val config_json : Config.t -> Json.t
val config_fingerprint : Config.t -> string

val bench_doc : name:string -> config:Config.t -> Json.t -> Json.t
(** Wrap [data] in the standard [{meta; data}] envelope. *)

val write_bench : name:string -> config:Config.t -> Json.t -> string
(** Write [BENCH_<name>.json] (pretty-printed) into [$BENCH_DIR] (or the
    current directory) and return the path. *)

val tpcb_run_json : tpcb_run -> Json.t
(** One TPC-B run: throughput, cleaner interference, and the machine's
    full stats (counters + histograms, including the [tpcb.txn] latency
    histogram). *)
