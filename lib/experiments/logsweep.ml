(* Parallel-WAL sweep: how many log streams does TPC-B want?  One WAL
   stream serializes every commit force behind one rendezvous and (with a
   log spindle) one disk arm.  With [log_streams = n] transactions are
   hash-assigned across n independent streams — n buffers, n force
   mutexes, n group-commit rendezvous, n spindles — at the price of
   vector-LSN dependency forces whenever a transaction touches a page
   last written under another stream.  This sweep measures where the
   extra arms beat the extra forces. *)

type point = {
  streams : int;
  mpl : int;
  run : Expcommon.tpcb_run;
  multi : Tpcb.multi_result;
  mean_commit_batch : float;
  forces : int;
  dep_checks : int;  (** cross-stream dependencies inspected at commit *)
  dep_forces : int;  (** ... of which actually forced another stream *)
  force_p99 : (string * float) list;
      (** per-stream force-latency p99 seconds: [("log", _)] for a single
          stream, else [("s0", _); ("s1", _); ...] *)
}

type t = {
  points : point list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;
  setup : Expcommon.setup;
}

let default_streams = [ 1; 2; 4 ]
let default_mpls = [ 8; 16 ]

(* Tellers/branches spread as in the MPL and disk sweeps (the official
   ratios leave them on single pages, and page contention would
   serialize any MPL above 1) — but unlike those sweeps the account
   relation is kept small enough to stay buffer-pool resident.  A
   disk-resident account working set makes TPC-B data-seek-bound and the
   log arm idles either way; parallel WAL is a remedy for the log-bound
   regime, so that is the regime the sweep measures. *)
let spread_scale tps =
  { Tpcb.accounts = 2_000 * tps; tellers = 200 * tps; branches = 200 * tps }

let p99 stats key =
  match Stats.histo stats key with
  | Some h -> Histo.percentile h 0.99
  | None -> 0.0

let force_p99s stats streams =
  if streams <= 1 then [ ("log", p99 stats "log.force") ]
  else
    List.init streams (fun i ->
        let tag = Printf.sprintf "s%d" i in
        (tag, p99 stats (Printf.sprintf "log.%s.force" tag)))

let run ?(tps_scale = 2) ?(txns = 1_500) ?(seed = 1)
    ?(streams = default_streams) ?(mpls = default_mpls)
    ?(setup = Expcommon.Lfs_user) () =
  let base =
    Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default
  in
  let scale = spread_scale tps_scale in
  let points =
    List.concat_map
      (fun ns ->
        List.map
          (fun mpl ->
            (* Every point gets the full multi-spindle treatment — two
               striped data disks plus one log spindle per stream — so
               the sweep isolates the log-stream count: the single-stream
               point is exactly the disksweep "2+log" placement.  Record
               grain keeps committers overlapped (page grain would
               serialize them on the history tail page); the group-commit
               rendezvous is per stream, so its size stays fixed rather
               than scaling with MPL/streams. *)
            let fs =
              {
                base.Config.fs with
                Config.ndisks = 2;
                log_disk = true;
                log_streams = ns;
                lock_grain = `Record;
                group_commit_size = 8;
                group_commit_timeout_s = 0.02;
              }
            in
            let cfg = { base with Config.fs } in
            let run, multi =
              Expcommon.run_tpcb_mpl ~config:cfg ~scale ~txns ~seed ~mpl setup
            in
            let stats = run.Expcommon.stats in
            let mean_commit_batch =
              match Stats.histo stats "log.commit_batch" with
              | Some h -> Histo.mean h
              | None -> 0.0
            in
            {
              streams = ns;
              mpl;
              run;
              multi;
              mean_commit_batch;
              forces = Stats.count stats "log.forces";
              dep_checks = Stats.count stats "log.dep_checks";
              dep_forces = Stats.count stats "log.dep_forces";
              force_p99 = force_p99s stats ns;
            })
          mpls)
      streams
  in
  { points; scale; txns; config = base; setup }

let point_json p =
  Json.Obj
    [
      ("streams", Json.Int p.streams);
      ("mpl", Json.Int p.mpl);
      ("tps", Json.Float p.run.Expcommon.result.Tpcb.tps);
      ("elapsed_s", Json.Float p.run.Expcommon.result.Tpcb.elapsed_s);
      ("txns", Json.Int p.run.Expcommon.result.Tpcb.txns);
      ("max_latency_s", Json.Float p.run.Expcommon.result.Tpcb.max_latency_s);
      ("mean_commit_batch", Json.Float p.mean_commit_batch);
      ("forces", Json.Int p.forces);
      ("dep_checks", Json.Int p.dep_checks);
      ("dep_forces", Json.Int p.dep_forces);
      ( "force_p99",
        Json.List
          (List.map
             (fun (stream, s) ->
               Json.Obj [ ("stream", Json.Str stream); ("p99_s", Json.Float s) ])
             p.force_p99) );
      ("lock_blocks", Json.Int p.multi.Tpcb.conflicts);
      ("deadlocks", Json.Int p.multi.Tpcb.deadlocks);
      ("restarts", Json.Int p.multi.Tpcb.restarts);
      ("stats", Stats.to_json p.run.Expcommon.stats);
    ]

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "logsweep");
      ("setup", Json.Str (Expcommon.setup_key t.setup));
      ( "scale",
        Json.Obj
          [
            ("accounts", Json.Int t.scale.Tpcb.accounts);
            ("tellers", Json.Int t.scale.Tpcb.tellers);
            ("branches", Json.Int t.scale.Tpcb.branches);
          ] );
      ("txns", Json.Int t.txns);
      ("points", Json.List (List.map point_json t.points));
    ]

let print t =
  Expcommon.pp_header
    (Printf.sprintf
       "Parallel-WAL sweep: %s, TPC-B, %d accounts, %d txns per point"
       (Expcommon.setup_label t.setup)
       t.scale.Tpcb.accounts t.txns);
  Printf.printf "%7s %4s %8s %10s %8s %10s %10s  %s\n" "streams" "mpl" "TPS"
    "batch" "forces" "dep-force" "dep-check" "force p99 (ms)";
  List.iter
    (fun p ->
      let p99s =
        String.concat "  "
          (List.map
             (fun (stream, s) -> Printf.sprintf "%s=%.1f" stream (s *. 1000.0))
             p.force_p99)
      in
      Printf.printf "%7d %4d %8.2f %10.2f %8d %10d %10d  %s\n" p.streams p.mpl
        p.run.Expcommon.result.Tpcb.tps p.mean_commit_batch p.forces
        p.dep_forces p.dep_checks p99s)
    t.points;
  (* Headline: what 4 streams buy over 1 at the contended end. *)
  let find streams mpl =
    List.find_opt (fun p -> p.streams = streams && p.mpl = mpl) t.points
  in
  match (find 1 16, find 4 16) with
  | Some one, Some four ->
    Printf.printf "\nshape: MPL 16, 4 streams vs 1: %+.1f%% TPS\n"
      (100.0
      *. ((four.run.Expcommon.result.Tpcb.tps
           /. one.run.Expcommon.result.Tpcb.tps)
         -. 1.0))
  | _ -> ()
