(** Figure 5 — Impact of Kernel Transaction Implementation on
    Non-transaction Performance.

    The Andrew-like benchmark, the Bigfile benchmark, and the user-level
    transaction system itself are run on a kernel without the embedded
    transaction manager and on one with it. None of them use the new
    system calls, so the only cost is the per-buffer "is this file
    protected?" check — the paper measures differences within 1–2 %. *)

type row = {
  benchmark : string;
  normal_s : float;  (** elapsed on the unmodified kernel *)
  txn_kernel_s : float;  (** elapsed with embedded transactions compiled in *)
  delta_pct : float;
  normal_stats : Stats.t;
  txn_kernel_stats : Stats.t;
}

type t = { rows : row list; config : Config.t }

val run : ?config:Config.t -> ?tps_scale:int -> unit -> t
val to_json : t -> Json.t
val print : t -> unit
