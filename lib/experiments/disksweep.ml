(* Disk-placement sweep: dedicated log spindle and striped segments.
   The paper ran everything on one disk and blamed part of the LIBTP
   shortfall on commit forces competing with data traffic for the single
   arm (Section 4.3). With Diskset the same workload runs with the WAL
   on its own spindle and with LFS segments striped across several data
   spindles; this sweep measures what each placement buys. *)

type disk_stat = {
  prefix : string;
  busy_s : float;
  seek_s : float;
  seeks : int;
  requests : int;
  blocks_read : int;
  blocks_written : int;
}

type point = {
  label : string;
  ndisks : int;
  log_disk : bool;
  mpl : int;
  run : Expcommon.tpcb_run;
  multi : Tpcb.multi_result;
  disks : disk_stat list;
}

type t = {
  points : point list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;
  setup : Expcommon.setup;
}

let default_setups =
  [ ("1-shared", 1, false); ("1+log", 1, true); ("2+log", 2, true);
    ("4+log", 4, true) ]

let default_mpls = [ 1; 8 ]

(* Same page-spreading as the MPL sweep: TPC-B's official teller/branch
   ratios leave those relations on single pages, and page-grain 2PL
   would serialize every transaction on them at any MPL above 1. *)
let spread_scale tps =
  { Tpcb.accounts = 100_000 * tps; tellers = 200 * tps; branches = 200 * tps }

(* The spindles a configuration reports under, in Diskset.members order:
   the lone data disk keeps the historical "disk" prefix so single-disk
   stats stay bit-for-bit identical. *)
let prefixes (cfg : Config.t) =
  let fs = cfg.Config.fs in
  let data =
    if fs.Config.ndisks = 1 then [ "disk" ]
    else List.init fs.Config.ndisks (Printf.sprintf "disk%d")
  in
  if fs.Config.log_disk then data @ [ "disklog" ] else data

let disk_stat stats prefix =
  {
    prefix;
    busy_s = Stats.time stats (prefix ^ ".busy");
    seek_s = Stats.time stats (prefix ^ ".seek");
    seeks = Stats.count stats (prefix ^ ".seeks");
    requests = Stats.count stats (prefix ^ ".requests");
    blocks_read = Stats.count stats (prefix ^ ".blocks_read");
    blocks_written = Stats.count stats (prefix ^ ".blocks_written");
  }

let run ?(tps_scale = 2) ?(txns = 1_000) ?(seed = 1) ?(mpls = default_mpls)
    ?(setups = default_setups) ?(setup = Expcommon.Lfs_user) () =
  let base =
    Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default
  in
  let scale = spread_scale tps_scale in
  let points =
    List.concat_map
      (fun (label, ndisks, log_disk) ->
        List.map
          (fun mpl ->
            (* Group commit sized to the offered concurrency, as in the
               fault sweeps: MPL 1 forces every commit, MPL 8 batches up
               to 8 with a short rendezvous. Record-grain locking so the
               committers genuinely overlap — under page grain the
               shared history tail page serializes them (DESIGN.md §13)
               and the placement question disappears behind the lock
               queue. *)
            let fs =
              {
                base.Config.fs with
                Config.ndisks;
                log_disk;
                lock_grain = `Record;
                group_commit_size = mpl;
                group_commit_timeout_s = (if mpl > 1 then 0.02 else 0.0);
              }
            in
            let cfg = { base with Config.fs } in
            let run, multi =
              Expcommon.run_tpcb_mpl ~config:cfg ~scale ~txns ~seed ~mpl setup
            in
            let disks =
              List.map (disk_stat run.Expcommon.stats) (prefixes cfg)
            in
            { label; ndisks; log_disk; mpl; run; multi; disks })
          mpls)
      setups
  in
  { points; scale; txns; config = base; setup }

let disk_stat_json d =
  Json.Obj
    [
      ("disk", Json.Str d.prefix);
      ("busy_s", Json.Float d.busy_s);
      ("seek_s", Json.Float d.seek_s);
      ("seeks", Json.Int d.seeks);
      ("requests", Json.Int d.requests);
      ("blocks_read", Json.Int d.blocks_read);
      ("blocks_written", Json.Int d.blocks_written);
    ]

let point_json p =
  Json.Obj
    [
      ("label", Json.Str p.label);
      ("ndisks", Json.Int p.ndisks);
      ("log_disk", Json.Bool p.log_disk);
      ("mpl", Json.Int p.mpl);
      ("tps", Json.Float p.run.Expcommon.result.Tpcb.tps);
      ("elapsed_s", Json.Float p.run.Expcommon.result.Tpcb.elapsed_s);
      ("txns", Json.Int p.run.Expcommon.result.Tpcb.txns);
      ("max_latency_s", Json.Float p.run.Expcommon.result.Tpcb.max_latency_s);
      ("lock_blocks", Json.Int p.multi.Tpcb.conflicts);
      ("deadlocks", Json.Int p.multi.Tpcb.deadlocks);
      ("restarts", Json.Int p.multi.Tpcb.restarts);
      ("cleaner_stall_s", Json.Float p.run.Expcommon.cleaner_stall_s);
      ("disks", Json.List (List.map disk_stat_json p.disks));
      ("stats", Stats.to_json p.run.Expcommon.stats);
    ]

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "disksweep");
      ("setup", Json.Str (Expcommon.setup_key t.setup));
      ( "scale",
        Json.Obj
          [
            ("accounts", Json.Int t.scale.Tpcb.accounts);
            ("tellers", Json.Int t.scale.Tpcb.tellers);
            ("branches", Json.Int t.scale.Tpcb.branches);
          ] );
      ("txns", Json.Int t.txns);
      ("points", Json.List (List.map point_json t.points));
    ]

let print t =
  Expcommon.pp_header
    (Printf.sprintf "Disk-placement sweep: %s, TPC-B, %d accounts, %d txns per point"
       (Expcommon.setup_label t.setup)
       t.scale.Tpcb.accounts t.txns);
  Printf.printf "%-10s %4s %8s %10s  %s\n" "config" "mpl" "TPS" "max lat" "per-disk busy (s)";
  List.iter
    (fun p ->
      let busy =
        String.concat "  "
          (List.map
             (fun d -> Printf.sprintf "%s=%.1f" d.prefix d.busy_s)
             p.disks)
      in
      Printf.printf "%-10s %4d %8.2f %9.3fs  %s\n" p.label p.mpl
        p.run.Expcommon.result.Tpcb.tps
        p.run.Expcommon.result.Tpcb.max_latency_s busy)
    t.points;
  (* Headline: what the log spindle buys once commits overlap. *)
  let find label mpl =
    List.find_opt (fun p -> p.label = label && p.mpl = mpl) t.points
  in
  match (find "1-shared" 8, find "1+log" 8) with
  | Some shared, Some dedicated ->
    Printf.printf
      "\nshape: MPL 8, dedicated log spindle vs shared: %+.1f%% TPS\n"
      (100.0
      *. ((dedicated.run.Expcommon.result.Tpcb.tps
           /. shared.run.Expcommon.result.Tpcb.tps)
         -. 1.0))
  | _ -> ()
