(** Multiprogramming-level sweep (MPL x group-commit configuration).

    The paper measured everything at MPL 1 and conceded that "group
    commit provides no benefit" there (Section 4.4). On the
    discrete-event scheduler this experiment sweeps MPL over
    [{1,2,4,8,16}] crossed with group-commit [(size, timeout)]
    configurations and reports, per point: throughput, the mean commit
    batch size actually achieved, flush/force counts, lock blocks,
    deadlocks and rendezvous wait time. A legacy MPL-1 run per
    configuration is included as the epsilon reference for the
    refactor's safety net. *)

type point = {
  mpl : int;
  group_size : int;
  group_timeout_s : float;
  run : Expcommon.tpcb_run;
  multi : Tpcb.multi_result;
  mean_batch : float;  (** mean committers per flush (1.0 if no sample) *)
  group_flushes : int;
  group_commit_wait_s : float;
}

type t = {
  points : point list;
  legacy_mpl1 : (int * float * float) list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;
  setup : Expcommon.setup;
}

val default_mpls : int list
val default_groups : (int * float) list

val run :
  ?config:Config.t ->
  ?tps_scale:int ->
  ?txns:int ->
  ?seed:int ->
  ?mpls:int list ->
  ?groups:(int * float) list ->
  ?setup:Expcommon.setup ->
  unit ->
  t

val to_json : t -> Json.t
(** The [data] block of [BENCH_mplsweep.json]. *)

val print : t -> unit
