(** Multiprogramming-level sweep (MPL x group-commit configuration).

    The paper measured everything at MPL 1 and conceded that "group
    commit provides no benefit" there (Section 4.4). On the
    discrete-event scheduler this experiment sweeps MPL over
    [{1,2,4,8,16}] crossed with group-commit [(size, timeout)]
    configurations crossed with the locking granularity
    ([`Page] vs [`Record], see {!Lockmgr}) and reports, per point:
    throughput, the mean commit batch size actually achieved,
    flush/force counts, lock blocks, deadlocks, rendezvous wait time and
    the p99 lock wait. A legacy MPL-1 run per group configuration is
    included as the epsilon reference for the refactor's safety net. *)

type point = {
  mpl : int;
  group_size : int;
  group_timeout_s : float;
  lock_grain : [ `Page | `Record ];
  run : Expcommon.tpcb_run;
  multi : Tpcb.multi_result;
  mean_batch : float;  (** mean committers per flush (1.0 if no sample) *)
  group_flushes : int;
  group_commit_wait_s : float;
  lock_wait_p99_s : float;  (** p99 time a transaction spent parked on a lock *)
}

type t = {
  points : point list;
  legacy_mpl1 : (int * float * float) list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;
  setup : Expcommon.setup;
}

val default_mpls : int list
val default_groups : (int * float) list
val default_grains : [ `Page | `Record ] list

val grain_key : [ `Page | `Record ] -> string
val grain_of_string : string -> [ `Page | `Record ]

val run :
  ?config:Config.t ->
  ?tps_scale:int ->
  ?txns:int ->
  ?seed:int ->
  ?mpls:int list ->
  ?groups:(int * float) list ->
  ?grains:[ `Page | `Record ] list ->
  ?setup:Expcommon.setup ->
  unit ->
  t
(** Default [setup] is {!Expcommon.Lfs_user}: record granularity changes
    end-to-end behaviour only in the user-level system (the embedded
    kernel manager keeps page-exclusive writes). *)

val to_json : t -> Json.t
(** The [data] block of [BENCH_mplsweep.json]. *)

val print : t -> unit
