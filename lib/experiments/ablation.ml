type row = { label : string; tps : float; max_latency_s : float; note : string }

type t = { title : string; rows : row list }

let base_config config tps_scale =
  match config with
  | Some c -> c
  | None ->
    Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default

let measure ~config ~tps_scale ~txns setup label note =
  let scale = Tpcb.scale_for_tps tps_scale in
  let r = Expcommon.run_tpcb ~config ~scale ~txns ~seed:1 setup in
  {
    label;
    tps = r.Expcommon.result.Tpcb.tps;
    max_latency_s = r.Expcommon.result.Tpcb.max_latency_s;
    note;
  }

let test_and_set ?config ?(tps_scale = 4) ?(txns = 10_000) () =
  let config = base_config config tps_scale in
  let with_tas v =
    { config with Config.cpu = { config.Config.cpu with has_test_and_set = v } }
  in
  {
    title = "Test-and-set ablation (user-level synchronization cost)";
    rows =
      [
        measure ~config:(with_tas false) ~tps_scale ~txns Expcommon.Lfs_user
          "user-level, semaphore syscalls" "the measured DECstation";
        measure ~config:(with_tas true) ~tps_scale ~txns Expcommon.Lfs_user
          "user-level, hardware test-and-set" "Bershad-style fast mutex";
        measure ~config:(with_tas false) ~tps_scale ~txns Expcommon.Lfs_kernel
          "kernel (embedded)" "one trap per operation";
      ];
  }

let cleaner_placement ?config ?(tps_scale = 4) ?(txns = 15_000) () =
  let config = base_config config tps_scale in
  let with_user v =
    { config with Config.fs = { config.Config.fs with lfs_user_cleaner = v } }
  in
  {
    title = "Cleaner placement (Section 5.4): kernel batch vs user-space incremental";
    rows =
      [
        measure ~config:(with_user false) ~tps_scale ~txns Expcommon.Lfs_kernel
          "kernel cleaner (locks files, batch)" "as measured in the paper";
        measure ~config:(with_user true) ~tps_scale ~txns Expcommon.Lfs_kernel
          "user-space cleaner (incremental)" "one segment per opportunity";
      ];
  }

let cleaning_policy ?config ?(tps_scale = 4) ?(txns = 15_000) () =
  let config = base_config config tps_scale in
  let with_policy p =
    { config with Config.fs = { config.Config.fs with cleaner_policy = p } }
  in
  {
    title = "Cleaning policy under the TPC-B hot-update workload";
    rows =
      [
        measure ~config:(with_policy `Greedy) ~tps_scale ~txns
          Expcommon.Lfs_kernel "greedy (fewest live blocks)" "";
        measure ~config:(with_policy `Cost_benefit) ~tps_scale ~txns
          Expcommon.Lfs_kernel "cost-benefit (age-weighted)"
          "age term chases old, nearly-full segments here";
      ];
  }

let group_commit ?config ?(tps_scale = 4) ?(txns = 10_000) () =
  let config = base_config config tps_scale in
  let with_gc timeout =
    {
      config with
      Config.fs = { config.Config.fs with group_commit_timeout_s = timeout };
    }
  in
  {
    title = "Group commit at multiprogramming level 1 (Section 4.4)";
    rows =
      [
        measure ~config:(with_gc 0.0) ~tps_scale ~txns Expcommon.Lfs_kernel
          "flush at every commit" "";
        measure ~config:(with_gc 0.01) ~tps_scale ~txns Expcommon.Lfs_kernel
          "group commit, 10 ms timeout"
          "no concurrent committers: pure added latency";
        measure ~config:(with_gc 0.05) ~tps_scale ~txns Expcommon.Lfs_kernel
          "group commit, 50 ms timeout" "";
      ];
  }

type coalesce_result = {
  scan_before_s : float;
  scan_after_s : float;
  coalesce_cost_s : float;
  contiguity_before : float;
  contiguity_after : float;
}

let coalescing ?config ?(tps_scale = 4) ?(txns = 15_000) () =
  let config = base_config config tps_scale in
  let scale = Tpcb.scale_for_tps tps_scale in
  let m = Expcommon.machine config in
  let rng = Rng.create ~seed:1 in
  let fs = Lfs.format m.Expcommon.disks m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg in
  let v = Lfs.vfs fs in
  let db = Tpcb.build m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v ~rng ~scale in
  let env =
    Libtp.open_env m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v
      ~pool_pages:1024 ~log_path:"/tpcb/log" ()
  in
  ignore
    (Tpcb.run m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg db
       (Tpcb.User env) ~rng ~n:txns);
  Libtp.checkpoint env;
  Lfs.sync fs;
  let inum = Lfs.inum_of fs "/tpcb/account" in
  let contiguity_before = Lfs.contiguity fs inum in
  let scan_before_s =
    Workloads.scan m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v db
  in
  let t0 = Clock.now m.Expcommon.clock in
  Lfs.coalesce_file fs inum;
  Lfs.sync fs;
  let coalesce_cost_s = Clock.now m.Expcommon.clock -. t0 in
  let contiguity_after = Lfs.contiguity fs inum in
  let scan_after_s =
    Workloads.scan m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v db
  in
  {
    scan_before_s;
    scan_after_s;
    coalesce_cost_s;
    contiguity_before;
    contiguity_after;
  }

let print_coalescing r =
  Expcommon.pp_header
    "Coalescing cleaner (Section 5.4): repairing sequential reads after \
     random updates";
  Printf.printf "scan before coalescing: %10.1fs  (account-file contiguity %.2f)\n"
    r.scan_before_s r.contiguity_before;
  Printf.printf "idle-time coalescing:   %10.1fs\n" r.coalesce_cost_s;
  Printf.printf "scan after coalescing:  %10.1fs  (contiguity %.2f)\n"
    r.scan_after_s r.contiguity_after;
  Printf.printf "speedup: %.2fx — \"use the cleaner to coalesce files which \
                 become fragmented\"\n"
    (r.scan_before_s /. r.scan_after_s)

let multiprogramming ?config ?(tps_scale = 4) ?(txns = 8_000) () =
  let config = base_config config tps_scale in
  let scale = Tpcb.scale_for_tps tps_scale in
  let row mpl =
    let m = Expcommon.machine config in
    let rng = Rng.create ~seed:1 in
    let fs = Lfs.format m.Expcommon.disks m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg in
    let v = Lfs.vfs fs in
    let db = Tpcb.build m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v ~rng ~scale in
    let k = Ktxn.create fs in
    Tpcb.protect_all db k;
    let r =
      Tpcb.run_multi m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg db
        (Tpcb.Kernel k) ~rng ~n:txns ~mpl
    in
    {
      label = Printf.sprintf "multiprogramming level %d" mpl;
      tps = r.Tpcb.base.Tpcb.tps;
      max_latency_s = 0.0;
      note =
        Printf.sprintf "%d conflicts, %d deadlocks" r.Tpcb.conflicts
          r.Tpcb.deadlocks;
    }
  in
  {
    title = "Multiprogramming level (embedded manager; paper: single-user, \
             higher MPL helps only marginally)";
    rows = List.map row [ 1; 2; 4 ];
  }

let print t =
  Expcommon.pp_header t.title;
  Printf.printf "%-40s %10s %16s  %s\n" "variant" "TPS" "max latency" "note";
  List.iter
    (fun r ->
      Printf.printf "%-40s %10.2f %15.3fs  %s\n" r.label r.tps r.max_latency_s
        r.note)
    t.rows
