type t = {
  readopt_tps : float;
  lfs_tps : float;
  readopt_scan_s : float;
  lfs_scan_s : float;
  crossover_txns : float option;
  series : (int * float * float) list;
}

let derive ~readopt_tps ~lfs_tps ~readopt_scan_s ~lfs_scan_s =
  let crossover =
    let dslope = (1.0 /. readopt_tps) -. (1.0 /. lfs_tps) in
    let dscan = lfs_scan_s -. readopt_scan_s in
    if dslope > 0.0 && dscan > 0.0 then Some (dscan /. dslope) else None
  in
  let samples =
    match crossover with
    | Some c ->
      List.map (fun f -> int_of_float (f *. c)) [ 0.0; 0.5; 1.0; 1.5; 2.0 ]
    | None -> [ 0; 50_000; 100_000; 150_000; 200_000 ]
  in
  {
    readopt_tps;
    lfs_tps;
    readopt_scan_s;
    lfs_scan_s;
    crossover_txns = crossover;
    series =
      List.map
        (fun n ->
          let fn = float_of_int n in
          ( n,
            (fn /. readopt_tps) +. readopt_scan_s,
            (fn /. lfs_tps) +. lfs_scan_s ))
        samples;
  }

let of_measurements ~(fig4 : Fig4.t) ~(fig6 : Fig6.t) =
  let tps setup =
    match
      List.find_opt (fun b -> b.Fig4.setup = setup) fig4.Fig4.bars
    with
    | Some b -> b.Fig4.tps_mean
    | None -> invalid_arg "Fig7: missing Figure 4 bar"
  in
  derive
    ~readopt_tps:(tps Expcommon.Readopt_user)
    ~lfs_tps:(tps Expcommon.Lfs_user)
    ~readopt_scan_s:fig6.Fig6.readopt.Fig6.scan_s
    ~lfs_scan_s:fig6.Fig6.lfs.Fig6.scan_s

let run ?config ?tps_scale ?txns ?seeds () =
  let fig4 = Fig4.run ?config ?tps_scale ?txns ?seeds () in
  let fig6 = Fig6.run ?config ?tps_scale ?txns () in
  of_measurements ~fig4 ~fig6

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "fig7");
      ("readopt_tps", Json.Float t.readopt_tps);
      ("lfs_tps", Json.Float t.lfs_tps);
      ("readopt_scan_s", Json.Float t.readopt_scan_s);
      ("lfs_scan_s", Json.Float t.lfs_scan_s);
      ( "crossover_txns",
        match t.crossover_txns with
        | Some c -> Json.Float c
        | None -> Json.Null );
      ( "series",
        Json.List
          (List.map
             (fun (n, ro, lfs) ->
               Json.Obj
                 [
                   ("txns", Json.Int n);
                   ("readopt_total_s", Json.Float ro);
                   ("lfs_total_s", Json.Float lfs);
                 ])
             t.series) );
    ]

let print t =
  Expcommon.pp_header
    "Figure 7: Total elapsed time (transactions + one scan) vs transactions";
  Printf.printf
    "inputs: read-optimized %.2f TPS / scan %.0fs; LFS %.2f TPS / scan %.0fs\n\n"
    t.readopt_tps t.readopt_scan_s t.lfs_tps t.lfs_scan_s;
  Printf.printf "%12s %22s %16s %10s\n" "transactions" "read-optimized (s)"
    "LFS (s)" "winner";
  List.iter
    (fun (n, ro, lfs) ->
      Printf.printf "%12d %22.0f %16.0f %10s\n" n ro lfs
        (if lfs < ro then "LFS" else "read-opt"))
    t.series;
  (match t.crossover_txns with
  | Some c ->
    Printf.printf
      "\ncrossover: %.0f transactions per scan (%.1f hours at %.1f TPS)\n" c
      (c /. t.lfs_tps /. 3600.0)
      t.lfs_tps;
    Printf.printf
      "paper: 134,300 transactions (~2h40m at 13.6 TPS), at 10x this \
       database scale and a 100,000-transaction scan-aging run\n"
  | None ->
    print_endline
      "\nno crossover: one system dominates both workloads at this scale")
