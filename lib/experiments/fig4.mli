(** Figure 4 — Transaction Performance Summary.

    TPC-B throughput of the three configurations: user-level transactions
    on the read-optimized file system, user-level on LFS, and the
    embedded (kernel) manager in LFS. The paper reports 12.3 TPS,
    13.6 TPS (LFS ~10 % faster), and a kernel implementation at or
    slightly above the user-level one. *)

type bar = {
  setup : Expcommon.setup;
  tps_mean : float;
  tps_sd : float;
  per_seed : float list;
  cleaner_stall_mean_s : float;
  paper_tps : float option;  (** the value read off Figure 4, if given *)
  runs : Expcommon.tpcb_run list;  (** the underlying per-seed runs *)
}

type t = {
  bars : bar list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;
}

val run :
  ?config:Config.t ->
  ?tps_scale:int ->
  ?txns:int ->
  ?seeds:int list ->
  unit ->
  t
(** Defaults: TPC-B scaling for 4 TPS with all machine parameters scaled
    by the same factor (preserving the paper's cache ≪ database ≪ disk
    ratios), 20 000 measured transactions, three seeds. *)

val to_json : t -> Json.t
(** Machine-readable form: bars with per-seed runs, each carrying the
    machine's full stats (counters and latency histograms). *)

val print : t -> unit
