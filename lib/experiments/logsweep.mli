(** Parallel-WAL sweep: log-stream count under TPC-B.

    One WAL stream funnels every commit through one group-commit
    rendezvous and one log arm; {!Config.fs}[.log_streams] splits the
    log into n hash-assigned streams, each with its own buffer, force
    mutex and (with a log spindle) its own disk, with commit records
    carrying vector LSNs so recovery can merge the streams in dependency
    order. The sweep runs TPC-B at fixed placement (2 striped data
    spindles + one log spindle per stream, record-grain locks) over
    stream counts {1, 2, 4} and MPLs {8, 16}, reporting throughput,
    commit batching, cross-stream dependency forces and per-stream
    force-latency p99 — so the artifact shows both the parallel-commit
    win and its dependency-force cost. *)

type point = {
  streams : int;
  mpl : int;
  run : Expcommon.tpcb_run;
  multi : Tpcb.multi_result;
  mean_commit_batch : float;  (** mean of [log.commit_batch], all streams *)
  forces : int;  (** total log forces across streams *)
  dep_checks : int;  (** cross-stream dependencies inspected at commit *)
  dep_forces : int;  (** ... of which actually forced another stream *)
  force_p99 : (string * float) list;
      (** per-stream force-latency p99 seconds: [("log", _)] for a single
          stream, else [("s0", _); ("s1", _); ...] *)
}

type t = {
  points : point list;
  scale : Tpcb.scale;
  txns : int;
  config : Config.t;  (** the base configuration before per-point edits *)
  setup : Expcommon.setup;
}

val default_streams : int list
(** [[1; 2; 4]] *)

val default_mpls : int list
(** [[8; 16]] *)

val run :
  ?tps_scale:int ->
  ?txns:int ->
  ?seed:int ->
  ?streams:int list ->
  ?mpls:int list ->
  ?setup:Expcommon.setup ->
  unit ->
  t

val to_json : t -> Json.t
(** The [data] block of [BENCH_logsweep.json]; every point carries the
    machine's full stats (including the per-stream force histograms). *)

val print : t -> unit
