type row = {
  benchmark : string;
  normal_s : float;
  txn_kernel_s : float;
  delta_pct : float;
  normal_stats : Stats.t;
  txn_kernel_stats : Stats.t;
}

type t = { rows : row list; config : Config.t }

let elapsed_of phases = List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 phases

(* All three benchmarks run on LFS (the modified operating system), with
   and without the embedded transaction manager compiled in. *)
let measure config bench =
  let m = Expcommon.machine config in
  let fs = Lfs.format m.Expcommon.disks m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg in
  let v = Lfs.vfs fs in
  (bench m v, m.Expcommon.stats)

let andrew_bench m v =
  let t0 = Clock.now m.Expcommon.clock in
  ignore
    (Workloads.andrew m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v
       (Rng.create ~seed:5) Workloads.default_andrew);
  Clock.now m.Expcommon.clock -. t0

let bigfile_bench m v =
  elapsed_of
    (Workloads.bigfile m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v
       (Rng.create ~seed:5) Workloads.default_bigfile)

let user_tp_bench tps_scale txns m v =
  let scale = Tpcb.scale_for_tps tps_scale in
  let rng = Rng.create ~seed:5 in
  let db = Tpcb.build m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v ~rng ~scale in
  let env =
    Libtp.open_env m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v
      ~pool_pages:1024 ~log_path:"/tpcb/log" ()
  in
  let r =
    Tpcb.run m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg db
      (Tpcb.User env) ~rng ~n:txns
  in
  r.Tpcb.elapsed_s

let run ?config ?(tps_scale = 2) () =
  let config =
    match config with
    | Some c -> c
    | None ->
      Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default
  in
  let with_kernel ktxn =
    { config with Config.fs = { config.Config.fs with kernel_txn = ktxn } }
  in
  let row benchmark bench =
    let normal_s, normal_stats = measure (with_kernel false) bench in
    let txn_kernel_s, txn_kernel_stats = measure (with_kernel true) bench in
    {
      benchmark;
      normal_s;
      txn_kernel_s;
      delta_pct = 100.0 *. ((txn_kernel_s /. normal_s) -. 1.0);
      normal_stats;
      txn_kernel_stats;
    }
  in
  {
    rows =
      [
        row "ANDREW" andrew_bench;
        row "BIGFILE" bigfile_bench;
        row "USER-TP" (user_tp_bench tps_scale 3_000);
      ];
    config;
  }

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "fig5");
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("benchmark", Json.Str r.benchmark);
                   ("normal_s", Json.Float r.normal_s);
                   ("txn_kernel_s", Json.Float r.txn_kernel_s);
                   ("delta_pct", Json.Float r.delta_pct);
                   ("normal_stats", Stats.to_json r.normal_stats);
                   ("txn_kernel_stats", Stats.to_json r.txn_kernel_stats);
                 ])
             t.rows) );
    ]

let print t =
  Expcommon.pp_header
    "Figure 5: Non-transaction performance, normal vs transaction kernel";
  Printf.printf "%-12s %14s %18s %10s %12s\n" "benchmark" "normal (s)"
    "txn kernel (s)" "delta" "paper";
  List.iter
    (fun r ->
      Printf.printf "%-12s %14.1f %18.1f %+9.2f%% %12s\n" r.benchmark
        r.normal_s r.txn_kernel_s r.delta_pct "within 1-2%")
    t.rows
