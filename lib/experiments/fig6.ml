type side = {
  fs_name : string;
  tps : float;
  scan_s : float;
  contiguity : float option;
  stats : Stats.t;
}

type t = { readopt : side; lfs : side; txns : int; config : Config.t }

let run ?config ?(tps_scale = 4) ?(txns = 20_000) ?(seed = 1) () =
  let config =
    match config with
    | Some c -> c
    | None ->
      Config.scaled ~factor:(float_of_int tps_scale /. 10.0) Config.default
  in
  let scale = Tpcb.scale_for_tps tps_scale in
  let one which =
    let m = Expcommon.machine config in
    let rng = Rng.create ~seed in
    let v, contiguity =
      match which with
      | `Readopt ->
        let fs = Ffs.format (Diskset.primary m.Expcommon.disks) m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg in
        (Ffs.vfs fs, fun () -> Some (Ffs.contiguity fs "/tpcb/account"))
      | `Lfs ->
        let fs = Lfs.format m.Expcommon.disks m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg in
        (Lfs.vfs fs, fun () -> None)
    in
    let db = Tpcb.build m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v ~rng ~scale in
    let env =
      Libtp.open_env m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v
        ~pool_pages:1024 ~log_path:"/tpcb/log" ()
    in
    let r =
      Tpcb.run m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg db
        (Tpcb.User env) ~rng ~n:txns
    in
    (* Flush everything so the scan measures the on-disk layout, not the
       caches' leftovers. *)
    Libtp.checkpoint env;
    v.Vfs.sync ();
    let scan_s =
      Workloads.scan m.Expcommon.clock m.Expcommon.stats m.Expcommon.cfg v db
    in
    {
      fs_name = v.Vfs.name;
      tps = r.Tpcb.tps;
      scan_s;
      contiguity = contiguity ();
      stats = m.Expcommon.stats;
    }
  in
  { readopt = one `Readopt; lfs = one `Lfs; txns; config }

let side_json s =
  Json.Obj
    [
      ("fs", Json.Str s.fs_name);
      ("tps", Json.Float s.tps);
      ("scan_s", Json.Float s.scan_s);
      ( "contiguity",
        match s.contiguity with Some c -> Json.Float c | None -> Json.Null );
      ("stats", Stats.to_json s.stats);
    ]

let to_json t =
  Json.Obj
    [
      ("figure", Json.Str "fig6");
      ("txns", Json.Int t.txns);
      ("readopt", side_json t.readopt);
      ("lfs", side_json t.lfs);
    ]

let print t =
  Expcommon.pp_header
    (Printf.sprintf
       "Figure 6: Sequential (key-order) read after %d random transactions"
       t.txns);
  let row s =
    Printf.printf "%-16s scan %10.1fs   (preceding run: %.2f TPS)%s\n"
      s.fs_name s.scan_s s.tps
      (match s.contiguity with
      | Some c -> Printf.sprintf "   layout contiguity %.2f" c
      | None -> "")
  in
  row t.readopt;
  row t.lfs;
  Printf.printf
    "\nshape: LFS scan / read-optimized scan = %.2fx (paper: ~1.5x — \
     read-optimized 50%% faster)\n"
    (t.lfs.scan_s /. t.readopt.scan_s)
