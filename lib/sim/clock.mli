(** Simulated wall clock.

    Every simulation instance (one "machine") owns exactly one clock. All
    costs — disk service times, CPU charges, sleeps — advance it.

    Two regimes share this interface. Standalone (no scheduler attached,
    the paper's original multiprogramming-level-1 setup), elapsed simulated
    time is simply the sum of all charges and [sleep_until] jumps the clock
    forward directly. When a {!Sched} discrete-event scheduler is attached
    via {!set_sleeper}, the clock is shared by many cooperative processes:
    the running process still advances it directly through [advance] (CPU
    and inline device charges serialize, as on one CPU), but [sleep_until]
    is routed to the scheduler so the caller parks and other processes run
    in the meantime. Elapsed time is then the makespan of the interleaved
    schedule, not the sum of charges. *)

type t

val create : unit -> t
(** A clock starting at time 0.0 seconds. *)

val now : t -> float
(** Current simulated time in seconds. *)

val advance : t -> float -> unit
(** [advance t dt] moves the clock forward by [dt] seconds.
    @raise Invalid_argument if [dt] is negative or not finite. *)

val catch_up : t -> float -> unit
(** [catch_up t time] moves the clock forward to [time] if it is in the
    future; a no-op otherwise. Never dispatches to the sleeper hook — this
    is the scheduler's own primitive for aligning the clock with the next
    event, and is not for general use. *)

val set_sleeper : t -> (float -> unit) option -> unit
(** Install (or clear) the scheduler's sleep hook. When set, every
    {!sleep_until} is delegated to it. *)

val sleep_until : t -> float -> unit
(** [sleep_until t deadline] waits until [deadline]. Standalone this
    advances the clock to [deadline] if it is in the future and is a no-op
    otherwise. Under a scheduler it parks the calling process until
    [deadline] — yielding to other runnable processes even when the
    deadline has already passed, so a same-time waiter cannot starve a
    timeout process. Used by group commit timeouts and the periodic
    syncer. *)
