(** Simulation parameters.

    Defaults model the paper's platform: a DECstation 5000/200 (≈ 20 MIPS,
    no hardware test-and-set) with a 300 MB DEC RZ55 SCSI disk, running
    Sprite with 4 KB file-system pages and 512 KB LFS segments.

    Every constant that the paper's results depend on is a field here so
    that the benches can ablate it (e.g. [has_test_and_set] closes the
    user/kernel gap of Figure 4; [lfs_user_cleaner] removes the cleaner
    stalls of Section 5.4). *)

(** Disk geometry and service-time model (see {!Tx_disk.Disk}). *)
type disk = {
  block_size : int;  (** bytes per block (file-system page); default 4096 *)
  nblocks : int;  (** total blocks on the device; default 76800 (300 MB) *)
  blocks_per_cylinder : int;
      (** used to convert block distance into seek distance *)
  min_seek_s : float;  (** single-cylinder seek time *)
  max_seek_s : float;  (** full-stroke seek time *)
  rpm : float;  (** spindle speed; average rotational delay is half a turn *)
  transfer_bytes_per_s : float;  (** sustained media transfer rate *)
}

(** CPU cost model. The paper attributes the gap between its simulation
    study and the implementation to exactly these overheads (Section 5.1),
    and the user/kernel gap to semaphore synchronization (two system calls
    per semaphore operation on a machine without test-and-set). *)
type cpu = {
  syscall_s : float;  (** one system call (trap + return) *)
  context_switch_s : float;  (** deschedule + reschedule a process *)
  has_test_and_set : bool;
      (** if false (DECstation), user-level mutexes cost
          [2 * syscall_s]; if true, they cost [test_and_set_s] *)
  test_and_set_s : float;  (** one uncontended hardware test-and-set *)
  copy_block_s : float;  (** memcpy of one block between buffers *)
  buffer_lookup_s : float;  (** buffer-cache hash lookup *)
  protection_check_s : float;
      (** per-buffer check "is this file transaction-protected?" paid by
          {e all} applications once transactions are embedded (Figure 5) *)
  record_op_s : float;
      (** query processing for one record operation inside a transaction
          (parse, access-method descent, call overhead) *)
  cursor_next_s : float;  (** per-record cost of a key-order cursor scan *)
  lock_op_s : float;  (** lock-table work for one acquire or release *)
  log_record_s : float;  (** format + buffer one WAL record *)
  file_op_s : float;  (** generic VFS operation (open, stat, create) *)
  compile_unit_s : float;  (** CPU burned "compiling" one Andrew file *)
}

(** File-system and transaction-manager policy knobs. *)
type fs = {
  kernel_txn : bool;
      (** whether the kernel has the embedded transaction manager compiled
          in; when true, every buffer access pays the (tiny)
          "is this file transaction-protected?" check of Figure 5 *)
  segment_blocks : int;  (** LFS segment size in blocks; default 128 *)
  cache_blocks : int;  (** buffer-cache capacity in blocks *)
  syncer_interval_s : float;  (** delayed-write flush period; default 30 s *)
  checkpoint_segments : int;
      (** LFS writes a checkpoint every this many segment closings *)
  cleaner_low_segments : int;
      (** start cleaning when free segments drop to this *)
  cleaner_high_segments : int;  (** stop cleaning at this many free *)
  cleaner_policy : [ `Greedy | `Cost_benefit ];
      (** default [`Cost_benefit]: the Rosenblum/Ousterhout
          benefit-to-cost ratio, measured against [`Greedy] by the
          cleanersweep experiment. (Earlier revisions defaulted to
          greedy because a bookkeeping bug fed the policy usage-table
          touch times instead of last-write times, which made decaying
          segments look young and inverted the age term.) *)
  cleaner_segregate : bool;
      (** hot/cold segregation: the cleaner writes relocated survivors
          to a separate open "cold" segment instead of re-mixing them
          with fresh writes at the log head; default true *)
  cleaner_adaptive : bool;
      (** load-adaptive background cleaning: the cleaner daemon backs
          off while the disk queue is deep and cleans toward the
          high-water mark when the device idles, instead of waking only
          at the low-water emergency; default true *)
  cleaner_backoff_qdepth : int;
      (** queue depth (outstanding requests across spindles) above which
          the adaptive background cleaner stays off the arm; default 2 *)
  lfs_user_cleaner : bool;
      (** Section 5.4 ablation: a user-space cleaner does not lock the
          files being cleaned *)
  group_commit_timeout_s : float;  (** max wait before forcing a commit *)
  group_commit_size : int;  (** commits that justify an immediate flush *)
  ndisks : int;
      (** data spindles; above 1 the LFS stripes segments round-robin
          across them (see {!Tx_disk.Diskset}); default 1 *)
  log_disk : bool;
      (** give the write-ahead log (and the LFS checkpoint region) a
          dedicated spindle instead of sharing the data disk(s) *)
  log_streams : int;
      (** parallel WAL streams; transactions are hash-assigned to a
          stream, each with its own append buffer, force mutex and
          group-commit rendezvous. With [log_disk] every stream gets its
          own spindle. Commit records carry a vector LSN so recovery can
          merge the streams in dependency order; default 1 *)
  lock_grain : [ `Page | `Record ];
      (** two-phase locking granularity: classic page locks (default) or
          hierarchical record locks with intention modes on page and
          file ancestors *)
  lock_escalation : int;
      (** record-lock count on one page at which a transaction's record
          locks escalate to a single page lock; default 16 *)
}

type t = { disk : disk; cpu : cpu; fs : fs }

val default : t
(** The calibrated DECstation/RZ55/Sprite configuration. *)

val scaled : ?factor:float -> t -> t
(** [scaled ~factor cfg] shrinks the disk and buffer cache by [factor]
    (default [0.1]) while preserving every ratio that drives the paper's
    results (cache ≪ database ≪ disk). Used for quick test runs. *)
