(** Structured event trace: a bounded ring of timestamped events keyed by
    simulated time, exported as JSONL (one JSON object per line, fields
    [t], [ev], then the event's attributes).

    Subsystems emit through {!Stats.emit} so tracing costs nothing when
    no trace is attached; when the ring fills, the oldest events are
    dropped (and counted) so a trace always ends at the present. *)

type value = B of bool | I of int | F of float | S of string

type event = { t : float; name : string; attrs : (string * value) list }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65 536 events. *)

val emit : t -> t:float -> string -> (string * value) list -> unit
val length : t -> int
val dropped : t -> int
(** Events overwritten because the ring was full. *)

val to_list : t -> event list
(** Oldest first. *)

val iter : t -> (event -> unit) -> unit
val clear : t -> unit

val to_json_line : event -> string
val of_json_line : string -> event option
(** Inverse of {!to_json_line}; [None] on malformed lines. *)

val output : out_channel -> t -> unit
(** Write the whole ring as JSONL. *)
