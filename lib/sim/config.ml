type disk = {
  block_size : int;
  nblocks : int;
  blocks_per_cylinder : int;
  min_seek_s : float;
  max_seek_s : float;
  rpm : float;
  transfer_bytes_per_s : float;
}

type cpu = {
  syscall_s : float;
  context_switch_s : float;
  has_test_and_set : bool;
  test_and_set_s : float;
  copy_block_s : float;
  buffer_lookup_s : float;
  protection_check_s : float;
  record_op_s : float;
  cursor_next_s : float;
  lock_op_s : float;
  log_record_s : float;
  file_op_s : float;
  compile_unit_s : float;
}

type fs = {
  kernel_txn : bool;
  segment_blocks : int;
  cache_blocks : int;
  syncer_interval_s : float;
  checkpoint_segments : int;
  cleaner_low_segments : int;
  cleaner_high_segments : int;
  cleaner_policy : [ `Greedy | `Cost_benefit ];
  cleaner_segregate : bool;
  cleaner_adaptive : bool;
  cleaner_backoff_qdepth : int;
  lfs_user_cleaner : bool;
  group_commit_timeout_s : float;
  group_commit_size : int;
  ndisks : int;
  log_disk : bool;
  log_streams : int;
  lock_grain : [ `Page | `Record ];
  lock_escalation : int;
}

type t = { disk : disk; cpu : cpu; fs : fs }

(* RZ55: 300 MB, ~2.2 MB/s synchronous-SCSI media rate, 3600 RPM, 16 ms
   average seek. The sqrt seek curve below averages ~15 ms over random
   block pairs. *)
let default_disk =
  {
    block_size = 4096;
    nblocks = 76_800 (* 300 MB *);
    blocks_per_cylinder = 64 (* 1200 cylinders *);
    min_seek_s = 0.004;
    max_seek_s = 0.030;
    rpm = 3600.0;
    transfer_bytes_per_s = 2.2e6;
  }

(* DECstation 5000/200-era software costs, calibrated so that the TPC-B
   configuration of Section 5.1 lands near the paper's 12-14 TPS band:
   the transaction path is dominated by one random account-leaf read
   (~25 ms) plus ~40 ms of query-processing CPU. *)
let default_cpu =
  {
    syscall_s = 350e-6;
    context_switch_s = 120e-6;
    has_test_and_set = false;
    test_and_set_s = 2e-6;
    copy_block_s = 60e-6;
    buffer_lookup_s = 5e-6;
    protection_check_s = 1e-6;
    record_op_s = 0.0025;
    cursor_next_s = 0.0018;
    lock_op_s = 20e-6;
    log_record_s = 40e-6;
    file_op_s = 300e-6;
    compile_unit_s = 0.25;
  }

let default_fs =
  {
    kernel_txn = true;
    segment_blocks = 128 (* 512 KB *);
    cache_blocks = 4096 (* 16 MB *);
    syncer_interval_s = 30.0;
    checkpoint_segments = 8;
    cleaner_low_segments = 12;
    cleaner_high_segments = 32;
    cleaner_policy = `Cost_benefit;
    cleaner_segregate = true;
    cleaner_adaptive = true;
    cleaner_backoff_qdepth = 2;
    lfs_user_cleaner = false;
    group_commit_timeout_s = 0.0 (* 0 = force at every commit *);
    group_commit_size = 4;
    ndisks = 1;
    log_disk = false;
    log_streams = 1;
    lock_grain = `Page;
    lock_escalation = 16;
  }

let default = { disk = default_disk; cpu = default_cpu; fs = default_fs }

let scaled ?(factor = 0.1) t =
  if factor <= 0.0 || factor > 1.0 then
    invalid_arg "Config.scaled: factor must be in (0, 1]";
  let scale n = max 1 (int_of_float (float_of_int n *. factor)) in
  {
    t with
    disk = { t.disk with nblocks = scale t.disk.nblocks };
    fs = { t.fs with cache_blocks = scale t.fs.cache_blocks };
  }
