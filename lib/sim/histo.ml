(* Fixed logarithmic buckets: four per decade from 100 ns to 100 000 s
   (plus an overflow bucket), which covers every latency the simulation
   produces — a single buffer-cache lookup up to a full-scale benchmark —
   with ≤ ~78 % relative bucket width. Batch-size histograms reuse the
   same scale; small integers land in distinct buckets. *)

let lo = 1e-7
let per_decade = 4
let decades = 12
let nbuckets = per_decade * decades

let bounds =
  Array.init nbuckets (fun i ->
      lo *. (10.0 ** (float_of_int (i + 1) /. float_of_int per_decade)))

type t = {
  counts : int array; (* nbuckets + 1; last is overflow *)
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable invalid : int; (* NaN/negative samples, excluded from the rest *)
}

let create () =
  {
    counts = Array.make (nbuckets + 1) 0;
    n = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    invalid = 0;
  }

(* Smallest bucket whose upper bound is >= v (binary search). *)
let index v =
  if v <= bounds.(0) then 0
  else if v > bounds.(nbuckets - 1) then nbuckets
  else begin
    let a = ref 0 and b = ref (nbuckets - 1) in
    (* invariant: bounds.(!a) < v <= bounds.(!b) *)
    while !b - !a > 1 do
      let mid = (!a + !b) / 2 in
      if v <= bounds.(mid) then b := mid else a := mid
    done;
    !b
  end

(* A sample the distribution accepts. NaN, infinities and negative
   values used to be coerced to 0.0, silently inflating the first bucket
   and dragging p50 down; they are now counted separately and dropped. *)
let is_valid v = Float.is_finite v && v >= 0.0

let add t v =
  if not (is_valid v) then t.invalid <- t.invalid + 1
  else begin
    t.counts.(index v) <- t.counts.(index v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end

let count t = t.n
let invalid t = t.invalid
let sum t = t.sum
let min_value t = if t.n = 0 then 0.0 else t.vmin
let max_value t = if t.n = 0 then 0.0 else t.vmax
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

(* Nearest-rank percentile over the buckets: the upper bound of the
   bucket holding the p-th sample, clamped to the observed range (so
   p=1.0 is exactly the max and a single-sample histogram reports that
   sample's bucket, never less than the true minimum). *)
let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let p = Float.min 1.0 (Float.max 0.0 p) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (p *. float_of_int t.n))) in
    let cum = ref 0 and result = ref t.vmax in
    (try
       for i = 0 to nbuckets do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           result := (if i < nbuckets then bounds.(i) else t.vmax);
           raise Exit
         end
       done
     with Exit -> ());
    Float.min t.vmax (Float.max t.vmin !result)
  end

let merge_into ~src ~dst =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  dst.invalid <- dst.invalid + src.invalid;
  if src.n > 0 then begin
    if src.vmin < dst.vmin then dst.vmin <- src.vmin;
    if src.vmax > dst.vmax then dst.vmax <- src.vmax
  end

let buckets t =
  let acc = ref [] in
  for i = nbuckets downto 0 do
    if t.counts.(i) > 0 then
      acc := (`Le (if i < nbuckets then bounds.(i) else infinity), t.counts.(i)) :: !acc
  done;
  !acc

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("invalid", Json.Int t.invalid);
      ("sum", Json.Float t.sum);
      ("min", Json.Float (min_value t));
      ("mean", Json.Float (mean t));
      ("p50", Json.Float (percentile t 0.50));
      ("p95", Json.Float (percentile t 0.95));
      ("p99", Json.Float (percentile t 0.99));
      ("max", Json.Float (max_value t));
      ( "buckets",
        Json.List
          (List.map
             (fun (`Le ub, n) ->
               Json.List
                 [
                   (if Float.is_finite ub then Json.Float ub else Json.Str "+inf");
                   Json.Int n;
                 ])
             (buckets t)) );
    ]

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf "n=%d p50=%.6f p95=%.6f p99=%.6f max=%.6f" t.n
      (percentile t 0.50) (percentile t 0.95) (percentile t 0.99) (max_value t)
