(** Discrete-event process scheduler.

    Lifts the simulator from multiprogramming level 1 to true multi-user
    concurrency: cooperative simulated processes (OCaml effect-handler
    fibers) run over a pending-event priority queue keyed [(time, seqno)].
    A process runs until it blocks — {!delay}, {!sleep_until}, {!yield},
    or {!wait} on a condition — at which point the scheduler pops the
    next event, advances the shared {!Clock} to its time, and resumes
    that process.

    {b Determinism.} Events at equal simulated times run in the order
    they were scheduled (the strictly increasing [seqno] breaks ties),
    and condition queues are FIFO, so a seeded run is bit-for-bit
    reproducible.

    {b Clock discipline.} The running process advances the shared clock
    directly via [Clock.advance] (CPU and inline device charges
    serialize, as on a single-CPU machine); only blocking operations go
    through the event queue. A scheduler attaches to a clock at
    {!create} time and is discoverable from it via {!of_clock}, which is
    how subsystems deep in the stack (disk, log manager, lock manager)
    opt into blocking behavior without widening their constructors. With
    no scheduler attached — or when called from outside any process —
    every legacy code path behaves exactly as before the refactor. *)

type t

type cond
(** A condition variable: a FIFO queue of parked processes. *)

exception Stalled of int
(** Raised by {!run} when foreground processes remain but no pending
    event can wake any of them (every process is parked on a condition
    nobody will signal). Carries the number of stuck processes. *)

val create : Clock.t -> t
(** Attach a fresh scheduler to [clock]: installs the clock's sleeper
    hook (so [Clock.sleep_until] from inside a process parks it) and
    registers the pair for {!of_clock} discovery. At most one scheduler
    per clock; a second [create] replaces the first. *)

val detach : t -> unit
(** Undo {!create}: clear the sleeper hook and the registry entry. *)

val of_clock : Clock.t -> t option
(** The scheduler attached to this clock, if any. *)

val in_process : t -> bool
(** True while executing inside a spawned process — i.e. blocking
    operations are legal right now. *)

val self : t -> int
(** Identity of the running process: a positive id unique per spawned
    process, stable across suspensions. Only meaningful while
    [in_process] is true. *)

val now : t -> float
(** [Clock.now] of the attached clock. *)

val spawn : ?daemon:bool -> t -> (unit -> unit) -> unit
(** Create a process; it starts when {!run} reaches its start event
    (scheduled at the current time). [daemon] processes (background
    syncer, cleaner, disk server) do not keep {!run} alive: the loop
    exits when all non-daemon processes have finished. *)

val run : t -> unit
(** Drive the event loop until every foreground process has finished.
    Exceptions escaping a process (e.g. an injected crash) propagate out
    of [run] immediately, abandoning all other processes.
    @raise Stalled if foreground processes remain but the event queue
    cannot wake any of them. *)

val delay : t -> float -> unit
(** Park the calling process for a simulated duration. Other processes
    run in the meantime — this is how one process's disk wait overlaps
    another's CPU burst.
    @raise Invalid_argument if the duration is negative or not finite. *)

val sleep_until : t -> float -> unit
(** Park the calling process until an absolute deadline. Always yields,
    even when the deadline has already passed (the process resumes at
    the current time, after already-scheduled same-time events). *)

val yield : t -> unit
(** Reschedule the calling process at the current time, behind any
    already-pending same-time events. *)

val condition : unit -> cond

val wait : t -> cond -> unit
(** Park the calling process on [cond] until {!signal} or {!broadcast}.
    No spurious wakeups, but callers re-checking their predicate in a
    loop stay correct if another waiter runs first. *)

val signal : t -> cond -> unit
(** Wake the longest-parked waiter, scheduling it at the current time.
    No-op if nobody waits. Never blocks the caller. *)

val broadcast : t -> cond -> unit
(** Wake every waiter, in FIFO order, at the current time. *)
