open Effect
open Effect.Deep

(* A suspension hands the scheduler a [resume] thunk; the register
   callback decides when (at what simulated time / on which queue) the
   thunk is scheduled. *)
type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

exception Stalled of int

(* Binary min-heap of pending events keyed (time, seq). [seq] is a
   strictly increasing stamp assigned at scheduling time, so events at
   equal times run in the order they were scheduled — the determinism
   guarantee that keeps seeded runs reproducible. *)
module Heap = struct
  type entry = { at : float; seq : int; go : unit -> unit }

  type t = { mutable arr : entry array; mutable len : int }

  let dummy = { at = 0.0; seq = 0; go = ignore }

  let create () = { arr = Array.make 64 dummy; len = 0 }

  let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.arr then begin
      let arr = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.arr.(!i) <- e;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before h.arr.(!i) h.arr.(p)
      && begin
           let tmp = h.arr.(p) in
           h.arr.(p) <- h.arr.(!i);
           h.arr.(!i) <- tmp;
           i := p;
           true
         end
    do
      ()
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.len && before h.arr.(l) h.arr.(!s) then s := l;
        if r < h.len && before h.arr.(r) h.arr.(!s) then s := r;
        if !s = !i then continue_ := false
        else begin
          let tmp = h.arr.(!s) in
          h.arr.(!s) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !s
        end
      done;
      Some top
    end
end

type t = {
  clock : Clock.t;
  heap : Heap.t;
  mutable seq : int;
  mutable fg : int;  (* live (spawned, not yet finished) foreground fibers *)
  mutable in_fiber : bool;
  mutable fiber_seq : int;  (* id source: one per spawned process *)
  mutable cur : int;  (* id of the running process; only valid in a fiber *)
}

type cond = { mutable waiters : (unit -> unit) list }

(* Clock -> scheduler discovery, so deep subsystems (disk, log manager,
   lock manager) can find the scheduler without widening every
   constructor. Keyed by physical equality; one scheduler per clock. *)
let registry : (Clock.t * t) list ref = ref []

let of_clock clock =
  List.find_map (fun (c, s) -> if c == clock then Some s else None) !registry

let in_process t = t.in_fiber

(* Identity of the running process. Suspension handlers restore it on
   every resume, so it is stable across parks. *)
let self t = t.cur

let now t = Clock.now t.clock

let schedule t time go =
  let at = Float.max time (Clock.now t.clock) in
  t.seq <- t.seq + 1;
  Heap.push t.heap { at; seq = t.seq; go }

let suspend register = perform (Suspend register)

let delay t dt =
  if not (Float.is_finite dt) || dt < 0.0 then
    invalid_arg (Printf.sprintf "Sched.delay: bad delta %g" dt);
  suspend (fun k -> schedule t (Clock.now t.clock +. dt) k)

(* Always yields, even for a deadline already in the past: a same-time
   (or earlier-scheduled) waiter gets to run before the sleeper resumes,
   so a timeout process can never be starved by a zero-length sleep. *)
let sleep_until t deadline = suspend (fun k -> schedule t deadline k)

let yield t = suspend (fun k -> schedule t (Clock.now t.clock) k)

let condition () = { waiters = [] }

let wait _t c = suspend (fun k -> c.waiters <- c.waiters @ [ k ])

let signal t c =
  match c.waiters with
  | [] -> ()
  | k :: rest ->
    c.waiters <- rest;
    schedule t (Clock.now t.clock) k

let broadcast t c =
  let ws = c.waiters in
  c.waiters <- [];
  List.iter (fun k -> schedule t (Clock.now t.clock) k) ws

(* Run [body] as a fiber under the suspension handler. The handler is
   deep, so every Suspend performed anywhere below [body] re-enters it. *)
let exec t ~daemon body =
  t.fiber_seq <- t.fiber_seq + 1;
  let fid = t.fiber_seq in
  t.cur <- fid;
  let finish () = if not daemon then t.fg <- t.fg - 1 in
  match_with body ()
    {
      retc = (fun () -> finish ());
      exnc =
        (fun e ->
          finish ();
          raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
            Some
              (fun (k : (a, _) continuation) ->
                register
                  (fun () ->
                    t.cur <- fid;
                    continue k ()))
          | _ -> None);
    }

let spawn ?(daemon = false) t body =
  if not daemon then t.fg <- t.fg + 1;
  schedule t (Clock.now t.clock) (fun () -> exec t ~daemon body)

let run t =
  let rec loop () =
    if t.fg > 0 then
      match Heap.pop t.heap with
      | None -> raise (Stalled t.fg)
      | Some { at; go; _ } ->
        Clock.catch_up t.clock at;
        t.in_fiber <- true;
        (try go ()
         with e ->
           t.in_fiber <- false;
           raise e);
        t.in_fiber <- false;
        loop ()
  in
  loop ()

let create clock =
  let t =
    {
      clock;
      heap = Heap.create ();
      seq = 0;
      fg = 0;
      in_fiber = false;
      fiber_seq = 0;
      cur = 0;
    }
  in
  registry := (clock, t) :: List.filter (fun (c, _) -> c != clock) !registry;
  (* Route Clock.sleep_until through the scheduler — but only for calls
     made from inside a process; standalone callers (setup code, legacy
     paths) keep the original jump-forward semantics. *)
  Clock.set_sleeper clock
    (Some
       (fun deadline ->
         if t.in_fiber then sleep_until t deadline
         else Clock.catch_up clock deadline));
  t

let detach t =
  Clock.set_sleeper t.clock None;
  registry := List.filter (fun (c, _) -> c != t.clock) !registry
