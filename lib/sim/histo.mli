(** Fixed-bucket latency histogram.

    Buckets are logarithmic — four per decade from 100 ns to 100 000 s
    plus an overflow bucket — so one shape serves every latency in the
    simulation, and recording is O(log buckets) with no allocation.
    Percentiles are nearest-rank over the buckets, clamped to the exact
    observed min/max (which are tracked separately, so [max_value] is
    always exact). *)

type t

val create : unit -> t
val add : t -> float -> unit
(** Record one sample. Negative and non-finite values are rejected: they
    are excluded from the distribution (and from count/sum/extrema) and
    tallied in {!invalid} instead. *)

val is_valid : float -> bool
(** Whether {!add} would accept the sample into the distribution. *)

val count : t -> int

val invalid : t -> int
(** Number of rejected (NaN, infinite or negative) samples. *)

val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
(** Exact extrema of the recorded samples (0 when empty). *)

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank bucket upper bound, clamped to the
    observed range. 0 when empty. *)

val merge_into : src:t -> dst:t -> unit

val buckets : t -> ([ `Le of float ] * int) list
(** Non-empty buckets as (inclusive upper bound, count), ascending; the
    overflow bucket reports [`Le infinity]. *)

val to_json : t -> Json.t
(** [{count, invalid, sum, min, mean, p50, p95, p99, max, buckets}]. *)

val pp : Format.formatter -> t -> unit
