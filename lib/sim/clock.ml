type t = { mutable now : float; mutable sleeper : (float -> unit) option }

let create () = { now = 0.0; sleeper = None }

let now t = t.now

let advance t dt =
  if not (Float.is_finite dt) || dt < 0.0 then
    invalid_arg (Printf.sprintf "Clock.advance: bad delta %g" dt);
  t.now <- t.now +. dt

let catch_up t time = if time > t.now then t.now <- time

let set_sleeper t f = t.sleeper <- f

let sleep_until t deadline =
  match t.sleeper with
  | Some sleep -> sleep deadline
  | None -> if deadline > t.now then t.now <- deadline
