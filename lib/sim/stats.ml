type t = {
  counts : (string, int ref) Hashtbl.t;
  times : (string, float ref) Hashtbl.t;
  maxes : (string, float ref) Hashtbl.t;
  histos : (string, Histo.t) Hashtbl.t;
  mutable trace : Trace.t option;
}

let create () =
  {
    counts = Hashtbl.create 32;
    times = Hashtbl.create 32;
    maxes = Hashtbl.create 8;
    histos = Hashtbl.create 16;
    trace = None;
  }

let cell tbl zero key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref zero in
    Hashtbl.add tbl key r;
    r

let add t key n =
  let r = cell t.counts 0 key in
  r := !r + n

let incr t key = add t key 1

let add_time t key dt =
  let r = cell t.times 0.0 key in
  r := !r +. dt

(* Maxima live in their own table: storing them among the cumulative
   times made [cleaner.max_stall] pretty-print as accumulated seconds,
   and an [add_time] on the same key silently corrupted the maximum. *)
let record_max t key v =
  let r = cell t.maxes 0.0 key in
  if v > !r then r := v

let count t key =
  match Hashtbl.find_opt t.counts key with Some r -> !r | None -> 0

let time t key =
  match Hashtbl.find_opt t.times key with Some r -> !r | None -> 0.0

let max_of t key =
  match Hashtbl.find_opt t.maxes key with Some r -> !r | None -> 0.0

(* Histograms -------------------------------------------------------------- *)

let histo_cell t key =
  match Hashtbl.find_opt t.histos key with
  | Some h -> h
  | None ->
    let h = Histo.create () in
    Hashtbl.add t.histos key h;
    h

let declare t key = ignore (histo_cell t key)

let observe t key v =
  (* Invalid samples (NaN, negative) are dropped by the histogram; keep
     them visible as a counter so an instrumentation bug upstream shows
     up in artifacts instead of silently thinning a distribution. *)
  if not (Histo.is_valid v) then incr t "histo.invalid";
  Histo.add (histo_cell t key) v

let histo t key = Hashtbl.find_opt t.histos key

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.histos []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Tracing ----------------------------------------------------------------- *)

let set_trace t tr = t.trace <- tr
let trace t = t.trace
let tracing t = t.trace <> None

let emit t ~time name attrs =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.emit tr ~t:time name attrs

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.times;
  Hashtbl.reset t.maxes;
  Hashtbl.reset t.histos

(* Reporting --------------------------------------------------------------- *)

let to_list t =
  let entries = ref [] in
  Hashtbl.iter (fun k r -> entries := (k, `Count !r) :: !entries) t.counts;
  Hashtbl.iter (fun k r -> entries := (k, `Seconds !r) :: !entries) t.times;
  Hashtbl.iter (fun k r -> entries := (k, `Max !r) :: !entries) t.maxes;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !entries

let pp ppf t =
  let pp_entry ppf = function
    | key, `Count n -> Format.fprintf ppf "%s: %d" key n
    | key, `Seconds s -> Format.fprintf ppf "%s: %.6fs" key s
    | key, `Max m -> Format.fprintf ppf "%s: max %.6fs" key m
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (to_list t);
  match histograms t with
  | [] -> ()
  | hs ->
    List.iter
      (fun (k, h) ->
        if Histo.count h > 0 then
          Format.fprintf ppf "@,%s: %a" k Histo.pp h)
      hs

let to_json t =
  let sorted tbl f =
    Hashtbl.fold (fun k r acc -> (k, f r) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ("counters", Json.Obj (sorted t.counts (fun r -> Json.Int !r)));
      ("times_s", Json.Obj (sorted t.times (fun r -> Json.Float !r)));
      ("maxes_s", Json.Obj (sorted t.maxes (fun r -> Json.Float !r)));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, Histo.to_json h)) (histograms t)) );
    ]
