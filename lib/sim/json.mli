(** Minimal JSON values: enough to emit the machine-readable benchmark
    artifacts ([BENCH_*.json]) and the JSONL event traces, and to parse
    them back for schema checks and round-trip tests. No external
    dependency; integers and floats are kept distinct so counters stay
    integers on the wire. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line form (used for JSONL trace records). Non-finite
    floats are emitted as [null]. *)

val to_string_pretty : t -> string
(** Two-space indented form for the benchmark files. *)

exception Parse_error of string

val of_string : string -> t
(** Raises {!Parse_error} on malformed input. *)

val of_string_opt : string -> t option

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] for other values. *)

val to_float_opt : t -> float option
(** Numeric value of an [Int] or [Float]. *)
