type value = B of bool | I of int | F of float | S of string

type event = { t : float; name : string; attrs : (string * value) list }

type t = {
  cap : int;
  ring : event array;
  mutable start : int;
  mutable len : int;
  mutable dropped : int;
}

let nil_event = { t = 0.0; name = ""; attrs = [] }

let create ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { cap = capacity; ring = Array.make capacity nil_event; start = 0; len = 0; dropped = 0 }

let emit tr ~t name attrs =
  let e = { t; name; attrs } in
  if tr.len < tr.cap then begin
    tr.ring.((tr.start + tr.len) mod tr.cap) <- e;
    tr.len <- tr.len + 1
  end
  else begin
    (* Full: overwrite the oldest so the trace always ends at "now". *)
    tr.ring.(tr.start) <- e;
    tr.start <- (tr.start + 1) mod tr.cap;
    tr.dropped <- tr.dropped + 1
  end

let length tr = tr.len
let dropped tr = tr.dropped

let to_list tr = List.init tr.len (fun i -> tr.ring.((tr.start + i) mod tr.cap))

let iter tr f = List.iter f (to_list tr)

let clear tr =
  tr.start <- 0;
  tr.len <- 0;
  tr.dropped <- 0

(* JSONL ------------------------------------------------------------------- *)

let json_of_value = function
  | B b -> Json.Bool b
  | I i -> Json.Int i
  | F f -> Json.Float f
  | S s -> Json.Str s

let value_of_json = function
  | Json.Bool b -> Some (B b)
  | Json.Int i -> Some (I i)
  | Json.Float f -> Some (F f)
  | Json.Str s -> Some (S s)
  | _ -> None

let to_json_line e =
  Json.to_string
    (Json.Obj
       (("t", Json.Float e.t)
       :: ("ev", Json.Str e.name)
       :: List.map (fun (k, v) -> (k, json_of_value v)) e.attrs))

let of_json_line line =
  match Json.of_string_opt line with
  | Some (Json.Obj kvs) ->
    let t = ref None and name = ref None and attrs = ref [] in
    List.iter
      (fun (k, v) ->
        match k with
        | "t" -> t := Json.to_float_opt v
        | "ev" -> ( match v with Json.Str s -> name := Some s | _ -> ())
        | _ -> (
          match value_of_json v with
          | Some value -> attrs := (k, value) :: !attrs
          | None -> ()))
      kvs;
    (match (!t, !name) with
    | Some t, Some name -> Some { t; name; attrs = List.rev !attrs }
    | _ -> None)
  | _ -> None

let output oc tr =
  iter tr (fun e ->
      output_string oc (to_json_line e);
      output_char oc '\n')
