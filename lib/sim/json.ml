type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Printing ---------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal representation that parses back to the same double;
   always contains a '.' or exponent so readers keep it a float. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
    else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null" (* JSON has no NaN/inf *)
  | Str s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Pretty printer: two-space indentation, for the BENCH_*.json files
   humans also read. *)
let rec write_pretty buf indent = function
  | List ((_ :: _) as xs) when List.exists (function Obj _ | List _ -> true | _ -> false) xs ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        write_pretty buf (indent + 2) x)
      xs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj ((_ :: _) as kvs) ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        escape buf k;
        Buffer.add_string buf ": ";
        write_pretty buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'
  | v -> write buf v

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  write_pretty buf 0 v;
  Buffer.contents buf

(* Parsing ----------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else parse_error "expected %c at offset %d" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else parse_error "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then parse_error "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then parse_error "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
          pos := !pos + 4;
          (* Encode the code point as UTF-8 (basic plane only). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
          end
        | c -> parse_error "bad escape \\%c" c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> parse_error "expected , or } at offset %d" !pos
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> parse_error "expected , or ] at offset %d" !pos
        in
        List (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_error "trailing garbage at offset %d" !pos;
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ | Failure _ -> None

(* Accessors --------------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
