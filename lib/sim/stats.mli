(** Named simulation counters, accumulators, maxima, latency histograms
    and the event-trace hook.

    Every subsystem records what it did (seeks performed, blocks read,
    segments cleaned, locks waited on, …) into a shared [Stats.t] so the
    experiment harness can report not just elapsed time but {e why} time
    was spent. The same handle carries the observability layer: fixed
    bucket latency histograms ({!observe}) and an optional structured
    event trace ({!set_trace} / {!emit}) that is free when disabled. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Add 1 to the integer counter named by the key. *)

val add : t -> string -> int -> unit
(** Add [n] to the integer counter. *)

val add_time : t -> string -> float -> unit
(** Accumulate [dt] seconds under the key. *)

val record_max : t -> string -> float -> unit
(** Keep the maximum of all values reported under the key. Maxima have
    their own table — read them back with {!max_of}, not {!time}. *)

val count : t -> string -> int
(** Current value of the integer counter (0 if never touched). *)

val time : t -> string -> float
(** Current value of the time accumulator (0.0 if never touched). *)

val max_of : t -> string -> float
(** Current maximum recorded by {!record_max} (0.0 if never touched). *)

val observe : t -> string -> float -> unit
(** Record one sample into the key's latency histogram (created on first
    use). *)

val declare : t -> string -> unit
(** Ensure the key's histogram exists (so reports always carry it, even
    when no sample was recorded). *)

val histo : t -> string -> Histo.t option
val histograms : t -> (string * Histo.t) list
(** All histograms, sorted by key. *)

val set_trace : t -> Trace.t option -> unit
(** Attach (or detach) an event trace; subsequent {!emit} calls land in
    it. *)

val trace : t -> Trace.t option
val tracing : t -> bool
(** True when a trace is attached — guard attribute building in hot
    paths. *)

val emit : t -> time:float -> string -> (string * Trace.value) list -> unit
(** Append an event at the given simulated time. No-op when no trace is
    attached. *)

val reset : t -> unit
(** Zero every counter, accumulator, maximum and histogram. *)

val to_list : t -> (string * [ `Count of int | `Seconds of float | `Max of float ]) list
(** Sorted dump of all scalar entries, for reports and debugging. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** [{counters, times_s, maxes_s, histograms}] — the metrics block of the
    [BENCH_*.json] artifacts. *)
