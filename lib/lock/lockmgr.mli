(** Hierarchical (multi-granularity) lock manager with lock chains per
    transaction and waits-for deadlock detection.

    The lock-name space is a tree of file -> page -> record nodes
    (Gray's granular locking): a transaction that locks a record takes
    intention modes on the record's page and file first, so a
    conflicting whole-page or whole-file request is detected at the
    coarser node without enumerating records. The classic five modes and
    their compatibility matrix:

    {v
              IS    IX    S     SIX   X
        IS    yes   yes   yes   yes   no
        IX    yes   yes   no    no    no
        S     yes   no    yes   no    no
        SIX   yes   no    no    no    no
        X     no    no    no    no    no
    v}

    [acquire] takes the intention locks on ancestors automatically
    (IS below Shared/IS requests, IX below Exclusive/IX/SIX ones), and
    re-requests by a holder fold with the held mode through the mode
    lattice ([sup]), so a Shared holder asking Exclusive upgrades and an
    IX holder asking Shared correctly lands on SIX.

    When a transaction accumulates too many record locks on one page
    (the [?escalation] threshold of [create]), the manager trades them
    for a single page lock covering the same records — Shared if every
    record lock was Shared, else Exclusive. Escalation never blocks: if
    the page grant would conflict it is skipped and retried on the next
    record acquire.

    The manager itself never blocks (the simulation is single-threaded):
    a conflicting request returns [`Would_block] and registers the
    waits-for edges, and the caller decides whether to spin, deschedule
    its simulated process, or abort. A request that would close a cycle
    in the waits-for graph — which may now pass through intention
    holders — returns [`Deadlock] instead.

    A separate latch table provides short-term physical page latches
    (Shared/Exclusive only, no deadlock detection): access methods hold
    latches only across a page edit while record locks persist to
    commit. Latch waiters are woken through the same waker callback.
    Latch acquisition is strictly top-down and latch holders never block
    on locks, so latch waits always make progress. *)

type mode = IS | IX | Shared | SIX | Exclusive

type obj =
  | File of int  (** whole file *)
  | Page of int * int  (** (file, page) *)
  | Rec of int * int * int  (** (file, page, record-on-page) *)

type outcome =
  [ `Granted  (** lock acquired (or already held at this or a stronger mode) *)
  | `Would_block of int list  (** conflicting holders; wait edges recorded *)
  | `Deadlock  (** waiting would close a cycle; caller should abort *)
  ]

type t

val create : ?escalation:int -> Clock.t -> Stats.t -> Config.cpu -> t
(** [escalation] is the per-(transaction, page) record-lock count at
    which the manager escalates to a page lock; defaults to [max_int]
    (never). *)

val compatible : mode -> mode -> bool
(** The multi-granularity compatibility matrix. *)

val sup : mode -> mode -> mode
(** Least upper bound in the mode lattice
    (IS < IX < X, IS < S < SIX < X, IX < SIX; sup S IX = SIX). *)

val set_waker : t -> (int -> unit) option -> unit
(** Install a callback fired with a transaction id whenever that
    transaction's pending request (lock or latch) stops conflicting —
    its wait edges are cleared by a release, abort or grant. The
    transaction layer uses it to unpark a process blocked in [acquire]
    under the discrete-event scheduler; a retried acquire is then
    expected to be granted. [None] (the default) restores the
    fire-nothing behavior. *)

val acquire : t -> txn:int -> obj -> mode -> outcome
(** Request a lock, taking intention locks on all ancestors first.
    Upgrades fold through [sup] and are granted in place when no other
    holder conflicts with the folded mode. Repeated requests at an equal
    or weaker mode are no-ops. *)

val release : t -> txn:int -> obj -> unit
(** Early release of a single lock (used by non-two-phase callers).
    Ancestor intention locks are left in place; [release_all] drops
    them. No-op if not held. *)

val release_all : t -> txn:int -> unit
(** Commit/abort path: walk the transaction's lock chain, release
    everything, and clear its wait edges. *)

val cancel_wait : t -> txn:int -> unit
(** Forget the transaction's wait edges (lock and latch) without
    releasing anything. *)

val holds : t -> txn:int -> obj -> mode option
val chain : t -> txn:int -> (obj * mode) list
(** The transaction's lock chain (most recently acquired first),
    including automatically acquired intention locks. *)

val locked_objects : t -> int
(** Number of nodes in the lock table with at least one holder —
    intention-locked ancestors count. *)

val waiting : t -> txn:int -> bool

val blockers : t -> txn:int -> int list
(** The live blocker list of the transaction's pending request ([[]] if
    it is not waiting). Release, abort and grant re-derive every
    affected waiter's blockers from the lock table, so these edges never
    go stale — a request whose conflicts have all released is dropped
    from the graph entirely. *)

(** {2 Latches} *)

val latch :
  t -> owner:int -> obj -> mode -> [ `Granted | `Would_block of int list ]
(** Acquire a short-term physical latch ([Shared] or [Exclusive] only;
    other modes raise [Invalid_argument]). No deadlock detection: a
    conflicting request registers a latch wait (woken via the waker) and
    returns the blockers. *)

val unlatch : t -> owner:int -> obj -> unit
val release_latches : t -> owner:int -> unit
(** Drop every latch the owner holds and its pending latch wait. *)

val latched : t -> owner:int -> (obj * mode) list
