(** General-purpose lock manager: single-writer / multiple-reader locks at
    page granularity, with lock chains per transaction and waits-for
    deadlock detection.

    Both transaction systems in the paper use page-level two-phase
    locking (Section 3 for the user-level system, Section 4.1's lock
    table for the embedded one); this module is that table. Objects are
    [(file, page)] pairs; lock chains are kept per transaction so commit
    and abort can release everything the transaction holds in one
    traversal, exactly as the paper describes.

    The manager itself never blocks (the simulation is single-threaded):
    a conflicting request returns [`Would_block] and registers the
    waits-for edges, and the caller decides whether to spin, deschedule
    its simulated process, or abort. A request that would close a cycle
    in the waits-for graph returns [`Deadlock] instead. *)

type mode = Shared | Exclusive

type obj = int * int
(** [(file, page)] — the unit of locking. *)

type outcome =
  [ `Granted  (** lock acquired (or already held at this or a stronger mode) *)
  | `Would_block of int list  (** conflicting holders; wait edges recorded *)
  | `Deadlock  (** waiting would close a cycle; caller should abort *)
  ]

type t

val create : Clock.t -> Stats.t -> Config.cpu -> t

val set_waker : t -> (int -> unit) option -> unit
(** Install a callback fired with a transaction id whenever that
    transaction's pending request stops conflicting (its wait edges are
    cleared by a release, abort or grant). The transaction layer uses it
    to unpark a process blocked in [acquire] under the discrete-event
    scheduler; a retried acquire is then expected to be granted. [None]
    (the default) restores the fire-nothing behavior. *)

val acquire : t -> txn:int -> obj -> mode -> outcome
(** Request a lock. Upgrades ([Shared] then [Exclusive] by the sole
    holder) are granted in place. Repeated requests at an equal or weaker
    mode are no-ops. *)

val release : t -> txn:int -> obj -> unit
(** Early release of a single lock (used by non-two-phase callers such as
    B-tree lock coupling). No-op if not held. *)

val release_all : t -> txn:int -> unit
(** Commit/abort path: walk the transaction's lock chain, release
    everything, and clear its wait edges. *)

val cancel_wait : t -> txn:int -> unit
(** Forget the transaction's wait edges without releasing locks. *)

val holds : t -> txn:int -> obj -> mode option
val chain : t -> txn:int -> (obj * mode) list
(** The transaction's lock chain (most recently acquired first). *)

val locked_objects : t -> int
val waiting : t -> txn:int -> bool

val blockers : t -> txn:int -> int list
(** The live blocker list of the transaction's pending request ([[]] if
    it is not waiting). Release, abort and grant re-derive every
    affected waiter's blockers from the lock table, so these edges never
    go stale — a request whose conflicts have all released is dropped
    from the graph entirely. *)
