type mode = Shared | Exclusive

type obj = int * int

type outcome = [ `Granted | `Would_block of int list | `Deadlock ]

type entry = { mutable holders : (int * mode) list }

(* A blocked request: what the transaction asked for and who currently
   stands in the way. Keeping the object and mode (not just the blocker
   list) lets every holder-set change re-derive the blockers, so the
   waits-for graph never carries stale edges. *)
type wait = { w_obj : obj; w_mode : mode; mutable w_blockers : int list }

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cpu : Config.cpu;
  table : (obj, entry) Hashtbl.t;
  chains : (int, (obj * mode) list ref) Hashtbl.t;
  waits_for : (int, wait) Hashtbl.t;
  (* Under the discrete-event scheduler the transaction layer parks a
     process whose acquire would block; this hook tells it which
     transactions' requests stopped conflicting so it can wake them. *)
  mutable waker : (int -> unit) option;
}

let create clock stats cpu =
  {
    clock;
    stats;
    cpu;
    table = Hashtbl.create 256;
    chains = Hashtbl.create 32;
    waits_for = Hashtbl.create 32;
    waker = None;
  }

let set_waker t f = t.waker <- f

let charge t = Cpu.charge t.clock t.stats t.cpu Cpu.Lock_op

let chain_ref t txn =
  match Hashtbl.find_opt t.chains txn with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.chains txn r;
    r

let holds t ~txn obj =
  match Hashtbl.find_opt t.table obj with
  | None -> None
  | Some e -> List.assoc_opt txn e.holders

let chain t ~txn = match Hashtbl.find_opt t.chains txn with
  | Some r -> !r
  | None -> []

let locked_objects t = Hashtbl.length t.table

let waiting t ~txn = Hashtbl.mem t.waits_for txn

(* Would granting [mode] to [txn] conflict with the current holders? *)
let conflicts e ~txn mode =
  List.filter_map
    (fun (holder, hmode) ->
      if holder = txn then None
      else
        match (mode, hmode) with
        | Shared, Shared -> None
        | Shared, Exclusive | Exclusive, Shared | Exclusive, Exclusive ->
          Some holder)
    e.holders

(* DFS over the waits-for graph: is [target] reachable from [start]? *)
let reaches t start target =
  let seen = Hashtbl.create 8 in
  let rec go v =
    v = target
    || (not (Hashtbl.mem seen v))
       && begin
         Hashtbl.add seen v ();
         match Hashtbl.find_opt t.waits_for v with
         | None -> false
         | Some w -> List.exists go w.w_blockers
       end
  in
  go start

let blockers t ~txn =
  match Hashtbl.find_opt t.waits_for txn with
  | Some w -> w.w_blockers
  | None -> []

(* The holder set of [obj] changed: recompute every waiter-on-[obj]'s
   blocker list from the live table. A wait whose request no longer
   conflicts is dropped entirely — the waiter would be granted on retry,
   so it must contribute no waits-for edges. Without this, a release or
   abort left other transactions' blocker lists naming a transaction
   that no longer stood in their way, and [reaches] walking those stale
   edges made [acquire] report spurious deadlocks. *)
let revalidate_waiters t obj =
  let cleared = ref [] in
  Hashtbl.iter
    (fun waiter w ->
      if w.w_obj = obj then
        match Hashtbl.find_opt t.table obj with
        | None -> cleared := waiter :: !cleared
        | Some e -> (
          match conflicts e ~txn:waiter w.w_mode with
          | [] -> cleared := waiter :: !cleared
          | bs -> w.w_blockers <- bs))
    t.waits_for;
  List.iter
    (fun waiter ->
      Hashtbl.remove t.waits_for waiter;
      Stats.incr t.stats "lock.waits_cleared";
      match t.waker with Some wake -> wake waiter | None -> ())
    !cleared

let record_grant t ~txn obj mode =
  let e =
    match Hashtbl.find_opt t.table obj with
    | Some e -> e
    | None ->
      let e = { holders = [] } in
      Hashtbl.add t.table obj e;
      e
  in
  let r = chain_ref t txn in
  (match List.assoc_opt txn e.holders with
  | None ->
    e.holders <- (txn, mode) :: e.holders;
    r := (obj, mode) :: !r
  | Some _ ->
    (* Upgrade in place, in both the table and the chain. *)
    e.holders <-
      List.map (fun (h, m) -> if h = txn then (h, mode) else (h, m)) e.holders;
    r := List.map (fun (o, m) -> if o = obj then (o, mode) else (o, m)) !r);
  Hashtbl.remove t.waits_for txn;
  (* The new holder may block waiters that previously conflicted only
     with others (or with nobody, if they were about to be re-granted). *)
  revalidate_waiters t obj

let acquire t ~txn obj mode =
  charge t;
  Stats.incr t.stats "lock.acquires";
  let e =
    match Hashtbl.find_opt t.table obj with
    | Some e -> e
    | None ->
      let e = { holders = [] } in
      Hashtbl.add t.table obj e;
      e
  in
  match List.assoc_opt txn e.holders with
  | Some Exclusive -> `Granted
  | Some Shared when mode = Shared -> `Granted
  | held -> (
    match conflicts e ~txn mode with
    | [] ->
      (match held with
      | Some Shared ->
        (* Upgrade. *)
        record_grant t ~txn obj Exclusive
      | _ -> record_grant t ~txn obj mode);
      `Granted
    | blockers ->
      Stats.incr t.stats "lock.conflicts";
      (* Would waiting close a cycle? *)
      if List.exists (fun b -> reaches t b txn) blockers then begin
        Stats.incr t.stats "lock.deadlocks";
        if Stats.tracing t.stats then
          Stats.emit t.stats ~time:(Clock.now t.clock) "lock.deadlock"
            [
              ("txn", Trace.I txn);
              ("file", Trace.I (fst obj));
              ("page", Trace.I (snd obj));
              ( "blockers",
                Trace.S (String.concat "," (List.map string_of_int blockers)) );
            ];
        `Deadlock
      end
      else begin
        Hashtbl.replace t.waits_for txn
          { w_obj = obj; w_mode = mode; w_blockers = blockers };
        Stats.incr t.stats "lock.waits";
        if Stats.tracing t.stats then
          Stats.emit t.stats ~time:(Clock.now t.clock) "lock.wait"
            [
              ("txn", Trace.I txn);
              ("file", Trace.I (fst obj));
              ("page", Trace.I (snd obj));
              ( "blockers",
                Trace.S (String.concat "," (List.map string_of_int blockers)) );
            ];
        `Would_block blockers
      end)

let remove_holder t ~txn obj =
  match Hashtbl.find_opt t.table obj with
  | None -> ()
  | Some e ->
    e.holders <- List.filter (fun (h, _) -> h <> txn) e.holders;
    if e.holders = [] then Hashtbl.remove t.table obj

let release t ~txn obj =
  charge t;
  remove_holder t ~txn obj;
  (match Hashtbl.find_opt t.chains txn with
  | None -> ()
  | Some r -> r := List.filter (fun (o, _) -> o <> obj) !r);
  revalidate_waiters t obj

let cancel_wait t ~txn = Hashtbl.remove t.waits_for txn

let release_all t ~txn =
  (* Drop our own pending request first so revalidation below never
     treats the departing transaction as a live waiter. *)
  Hashtbl.remove t.waits_for txn;
  match Hashtbl.find_opt t.chains txn with
  | None -> ()
  | Some r ->
    List.iter
      (fun (obj, _) ->
        charge t;
        remove_holder t ~txn obj;
        revalidate_waiters t obj)
      !r;
    Hashtbl.remove t.chains txn
