type mode = IS | IX | Shared | SIX | Exclusive

type obj =
  | File of int
  | Page of int * int
  | Rec of int * int * int

type outcome = [ `Granted | `Would_block of int list | `Deadlock ]

(* Gray's multi-granularity compatibility matrix. *)
let compatible a b =
  match (a, b) with
  | IS, Exclusive | Exclusive, IS -> false
  | IS, _ | _, IS -> true
  | IX, IX -> true
  | Shared, Shared -> true
  | _ -> false

(* Partial order of lock strength: IS < IX < X, IS < S < SIX < X,
   IX < SIX. *)
let leq a b =
  match (a, b) with
  | IS, _ -> true
  | _, Exclusive -> true
  | IX, (IX | SIX) -> true
  | Shared, (Shared | SIX) -> true
  | SIX, SIX -> true
  | _ -> false

(* Least upper bound; the only incomparable pair is {S, IX}, whose
   supremum is SIX. *)
let sup a b = if leq a b then b else if leq b a then a else SIX

(* The intention mode a request implies on every ancestor node. *)
let intent_of = function
  | IS | Shared -> IS
  | IX | SIX | Exclusive -> IX

(* Root-first ancestor path in the file -> page -> record name space. *)
let ancestors = function
  | File _ -> []
  | Page (f, _) -> [ File f ]
  | Rec (f, p, _) -> [ File f; Page (f, p) ]

type entry = { mutable holders : (int * mode) list }

(* A blocked request: what the transaction asked for (already folded
   with anything it holds, so [w_mode] is the mode it needs granted) and
   who currently stands in the way. Keeping the object and mode (not
   just the blocker list) lets every holder-set change re-derive the
   blockers, so the waits-for graph never carries stale edges. *)
type wait = { w_obj : obj; w_mode : mode; mutable w_blockers : int list }

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cpu : Config.cpu;
  escalation : int;
  table : (obj, entry) Hashtbl.t;
  chains : (int, (obj * mode) list ref) Hashtbl.t;
  waits_for : (int, wait) Hashtbl.t;
  (* Short-term physical latches live in their own table: Shared or
     Exclusive only, no deadlock detection (acquisition is strictly
     top-down and latch holders never block on locks, so latch waits
     always make progress). *)
  latch_table : (obj, entry) Hashtbl.t;
  latch_chains : (int, (obj * mode) list ref) Hashtbl.t;
  latch_waits : (int, wait) Hashtbl.t;
  (* Under the discrete-event scheduler the transaction layer parks a
     process whose acquire would block; this hook tells it which
     transactions' requests stopped conflicting so it can wake them. *)
  mutable waker : (int -> unit) option;
}

let create ?(escalation = max_int) clock stats cpu =
  {
    clock;
    stats;
    cpu;
    escalation;
    table = Hashtbl.create 256;
    chains = Hashtbl.create 32;
    waits_for = Hashtbl.create 32;
    latch_table = Hashtbl.create 64;
    latch_chains = Hashtbl.create 32;
    latch_waits = Hashtbl.create 32;
    waker = None;
  }

let set_waker t f = t.waker <- f

let charge t = Cpu.charge t.clock t.stats t.cpu Cpu.Lock_op

let chain_ref tbl txn =
  match Hashtbl.find_opt tbl txn with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add tbl txn r;
    r

let holds t ~txn obj =
  match Hashtbl.find_opt t.table obj with
  | None -> None
  | Some e -> List.assoc_opt txn e.holders

let chain t ~txn =
  match Hashtbl.find_opt t.chains txn with Some r -> !r | None -> []

let locked_objects t = Hashtbl.length t.table

let waiting t ~txn = Hashtbl.mem t.waits_for txn

(* Would granting [mode] to [txn] conflict with the current holders? *)
let conflicts e ~txn mode =
  List.filter_map
    (fun (holder, hmode) ->
      if holder = txn then None
      else if compatible mode hmode then None
      else Some holder)
    e.holders

(* DFS over the waits-for graph: is [target] reachable from [start]? *)
let reaches t start target =
  let seen = Hashtbl.create 8 in
  let rec go v =
    v = target
    || (not (Hashtbl.mem seen v))
       && begin
         Hashtbl.add seen v ();
         match Hashtbl.find_opt t.waits_for v with
         | None -> false
         | Some w -> List.exists go w.w_blockers
       end
  in
  go start

let blockers t ~txn =
  match Hashtbl.find_opt t.waits_for txn with
  | Some w -> w.w_blockers
  | None -> []

let obj_fields obj =
  match obj with
  | File f -> [ ("file", Trace.I f) ]
  | Page (f, p) -> [ ("file", Trace.I f); ("page", Trace.I p) ]
  | Rec (f, p, r) ->
    [ ("file", Trace.I f); ("page", Trace.I p); ("rec", Trace.I r) ]

(* The holder set of [obj] changed: recompute every waiter-on-[obj]'s
   blocker list from the live table. A wait whose request no longer
   conflicts is dropped entirely — the waiter would be granted on retry,
   so it must contribute no waits-for edges. Without this, a release or
   abort left other transactions' blocker lists naming a transaction
   that no longer stood in their way, and [reaches] walking those stale
   edges made [acquire] report spurious deadlocks. *)
let revalidate_table t ~table ~waits obj =
  let cleared = ref [] in
  Hashtbl.iter
    (fun waiter w ->
      if w.w_obj = obj then
        match Hashtbl.find_opt table obj with
        | None -> cleared := waiter :: !cleared
        | Some e -> (
          match conflicts e ~txn:waiter w.w_mode with
          | [] -> cleared := waiter :: !cleared
          | bs -> w.w_blockers <- bs))
    waits;
  List.iter
    (fun waiter ->
      Hashtbl.remove waits waiter;
      Stats.incr t.stats "lock.waits_cleared";
      match t.waker with Some wake -> wake waiter | None -> ())
    !cleared

let revalidate_waiters t obj =
  revalidate_table t ~table:t.table ~waits:t.waits_for obj

let record_grant t ~txn obj mode =
  let e =
    match Hashtbl.find_opt t.table obj with
    | Some e -> e
    | None ->
      let e = { holders = [] } in
      Hashtbl.add t.table obj e;
      e
  in
  let r = chain_ref t.chains txn in
  (match List.assoc_opt txn e.holders with
  | None ->
    e.holders <- (txn, mode) :: e.holders;
    r := (obj, mode) :: !r
  | Some _ ->
    (* Upgrade in place, in both the table and the chain. *)
    e.holders <-
      List.map (fun (h, m) -> if h = txn then (h, mode) else (h, m)) e.holders;
    r := List.map (fun (o, m) -> if o = obj then (o, mode) else (o, m)) !r);
  Hashtbl.remove t.waits_for txn;
  (* The new holder may block waiters that previously conflicted only
     with others (or with nobody, if they were about to be re-granted). *)
  revalidate_waiters t obj

let remove_holder t ~txn obj =
  match Hashtbl.find_opt t.table obj with
  | None -> ()
  | Some e ->
    e.holders <- List.filter (fun (h, _) -> h <> txn) e.holders;
    if e.holders = [] then Hashtbl.remove t.table obj

(* One node of the hierarchy. [mode] is folded with whatever the
   transaction already holds there ([sup]), so a Shared request by an IX
   holder correctly asks for SIX. *)
let acquire_node t ~txn obj mode =
  let e =
    match Hashtbl.find_opt t.table obj with
    | Some e -> e
    | None ->
      let e = { holders = [] } in
      Hashtbl.add t.table obj e;
      e
  in
  let target =
    match List.assoc_opt txn e.holders with
    | None -> mode
    | Some held -> sup held mode
  in
  if List.assoc_opt txn e.holders = Some target then `Granted
  else
    match conflicts e ~txn target with
    | [] ->
      record_grant t ~txn obj target;
      `Granted
    | blockers ->
      Stats.incr t.stats "lock.conflicts";
      (* Would waiting close a cycle? *)
      if List.exists (fun b -> reaches t b txn) blockers then begin
        Stats.incr t.stats "lock.deadlocks";
        if Stats.tracing t.stats then
          Stats.emit t.stats ~time:(Clock.now t.clock) "lock.deadlock"
            (("txn", Trace.I txn) :: obj_fields obj
            @ [
                ( "blockers",
                  Trace.S (String.concat "," (List.map string_of_int blockers))
                );
              ]);
        `Deadlock
      end
      else begin
        Hashtbl.replace t.waits_for txn
          { w_obj = obj; w_mode = target; w_blockers = blockers };
        Stats.incr t.stats "lock.waits";
        if Stats.tracing t.stats then
          Stats.emit t.stats ~time:(Clock.now t.clock) "lock.wait"
            (("txn", Trace.I txn) :: obj_fields obj
            @ [
                ( "blockers",
                  Trace.S (String.concat "," (List.map string_of_int blockers))
                );
              ]);
        `Would_block blockers
      end

(* Lock escalation: once a transaction holds [t.escalation] or more
   record locks on one page, trade them for a single page lock (Shared
   if every record lock is Shared, else Exclusive) and release the
   record locks. Escalation never blocks: if the page grant would
   conflict — some other transaction holds record locks under the page,
   hence an intention mode on it — it is simply skipped and retried on
   the next record acquire. *)
let maybe_escalate t ~txn file page =
  if t.escalation <> max_int then begin
    let recs =
      List.filter
        (fun (o, _) ->
          match o with Rec (f, p, _) -> f = file && p = page | _ -> false)
        (chain t ~txn)
    in
    if List.length recs >= t.escalation then begin
      let want =
        if List.for_all (fun (_, m) -> leq m Shared) recs then Shared
        else Exclusive
      in
      let page_obj = Page (file, page) in
      let held = holds t ~txn page_obj in
      let target = match held with None -> want | Some h -> sup h want in
      let blocked =
        match Hashtbl.find_opt t.table page_obj with
        | None -> []
        | Some e -> conflicts e ~txn target
      in
      match blocked with
      | _ :: _ -> Stats.incr t.stats "lock.escalations_skipped"
      | [] ->
        record_grant t ~txn page_obj target;
        List.iter
          (fun (o, _) ->
            remove_holder t ~txn o;
            (match Hashtbl.find_opt t.chains txn with
            | None -> ()
            | Some r -> r := List.filter (fun (o', _) -> o' <> o) !r);
            revalidate_waiters t o)
          recs;
        Stats.incr t.stats "lock.escalations";
        if Stats.tracing t.stats then
          Stats.emit t.stats ~time:(Clock.now t.clock) "lock.escalate"
            (("txn", Trace.I txn) :: obj_fields page_obj
            @ [ ("recs", Trace.I (List.length recs)) ])
    end
  end

(* Public acquire: walk the ancestor path root-first taking intention
   locks, then the target node itself. A block anywhere parks the
   request at that node; already-granted ancestors stay held, and the
   retried acquire re-walks the path as no-ops. *)
let acquire t ~txn obj mode =
  charge t;
  Stats.incr t.stats "lock.acquires";
  (* A transaction has one outstanding request at a time: issuing a new
     acquire supersedes any pending one, so its stale edges must not
     linger in the waits-for graph (a deadlocked walk registers no new
     wait, and a grant deep in the ancestor path would otherwise clear
     the old entry only as a side effect). *)
  Hashtbl.remove t.waits_for txn;
  let intent = intent_of mode in
  let path = List.map (fun a -> (a, intent)) (ancestors obj) @ [ (obj, mode) ] in
  let rec go = function
    | [] ->
      (match obj with
      | Rec (f, p, _) -> maybe_escalate t ~txn f p
      | _ -> ());
      `Granted
    | (node, m) :: rest -> (
      match acquire_node t ~txn node m with
      | `Granted -> go rest
      | (`Would_block _ | `Deadlock) as r -> r)
  in
  go path

let release t ~txn obj =
  charge t;
  remove_holder t ~txn obj;
  (match Hashtbl.find_opt t.chains txn with
  | None -> ()
  | Some r -> r := List.filter (fun (o, _) -> o <> obj) !r);
  revalidate_waiters t obj

let cancel_wait t ~txn =
  Hashtbl.remove t.waits_for txn;
  Hashtbl.remove t.latch_waits txn

let release_all t ~txn =
  (* Drop our own pending request first so revalidation below never
     treats the departing transaction as a live waiter. *)
  Hashtbl.remove t.waits_for txn;
  match Hashtbl.find_opt t.chains txn with
  | None -> ()
  | Some r ->
    List.iter
      (fun (obj, _) ->
        charge t;
        remove_holder t ~txn obj;
        revalidate_waiters t obj)
      !r;
    Hashtbl.remove t.chains txn

(* ---- Latches ------------------------------------------------------ *)

let latch t ~owner obj mode =
  charge t;
  (match mode with
  | Shared | Exclusive -> ()
  | _ -> invalid_arg "Lockmgr.latch: latches are Shared or Exclusive");
  let e =
    match Hashtbl.find_opt t.latch_table obj with
    | Some e -> e
    | None ->
      let e = { holders = [] } in
      Hashtbl.add t.latch_table obj e;
      e
  in
  let target =
    match List.assoc_opt owner e.holders with
    | None -> mode
    | Some held -> sup held mode
  in
  if List.assoc_opt owner e.holders = Some target then `Granted
  else
    match conflicts e ~txn:owner target with
    | [] ->
      let r = chain_ref t.latch_chains owner in
      (match List.assoc_opt owner e.holders with
      | None ->
        e.holders <- (owner, target) :: e.holders;
        r := (obj, target) :: !r
      | Some _ ->
        e.holders <-
          List.map
            (fun (h, m) -> if h = owner then (h, target) else (h, m))
            e.holders;
        r := List.map (fun (o, m) -> if o = obj then (o, target) else (o, m)) !r);
      Hashtbl.remove t.latch_waits owner;
      revalidate_table t ~table:t.latch_table ~waits:t.latch_waits obj;
      `Granted
    | blockers ->
      Hashtbl.replace t.latch_waits owner
        { w_obj = obj; w_mode = target; w_blockers = blockers };
      Stats.incr t.stats "lock.latch_waits";
      `Would_block blockers

let remove_latch_holder t ~owner obj =
  match Hashtbl.find_opt t.latch_table obj with
  | None -> ()
  | Some e ->
    e.holders <- List.filter (fun (h, _) -> h <> owner) e.holders;
    if e.holders = [] then Hashtbl.remove t.latch_table obj

let unlatch t ~owner obj =
  charge t;
  remove_latch_holder t ~owner obj;
  (match Hashtbl.find_opt t.latch_chains owner with
  | None -> ()
  | Some r -> r := List.filter (fun (o, _) -> o <> obj) !r);
  revalidate_table t ~table:t.latch_table ~waits:t.latch_waits obj

let release_latches t ~owner =
  Hashtbl.remove t.latch_waits owner;
  match Hashtbl.find_opt t.latch_chains owner with
  | None -> ()
  | Some r ->
    List.iter
      (fun (obj, _) ->
        charge t;
        remove_latch_holder t ~owner obj;
        revalidate_table t ~table:t.latch_table ~waits:t.latch_waits obj)
      !r;
    Hashtbl.remove t.latch_chains owner

let latched t ~owner =
  match Hashtbl.find_opt t.latch_chains owner with Some r -> !r | None -> []
