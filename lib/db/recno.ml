let magic = 0x52454331 (* "REC1" *)

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cpu : Config.cpu;
  pager : Pager.t;
  rl : int;
  mutable n : int;
}

let per_page t = t.pager.Pager.page_size / t.rl

(* The header is written through [put_sys]: a redo-only system write.
   At record grain the record count is protected by the header latch,
   not a lock, and must survive an aborted append — the aborted record
   bytes are undone to a zeroed hole, but the allocation stands. The
   record's own update is always logged before the count update, so a
   durable count implies durable records below it. At page grain
   [put_sys] is just [put] and nothing changes. *)
let write_meta t =
  let b = Bytes.make t.pager.Pager.page_size '\000' in
  Enc.set_u32 b 0 magic;
  Enc.set_u32 b 4 t.rl;
  Enc.set_u32 b 8 t.n;
  t.pager.Pager.put_sys 0 b

let attach clock stats cpu (pager : Pager.t) ~reclen =
  if reclen <= 0 || reclen > pager.Pager.page_size then
    invalid_arg "Recno.attach: record length must fit in a page";
  let meta = pager.Pager.get 0 in
  if Enc.get_u32 meta 0 = magic then begin
    let stored = Enc.get_u32 meta 4 in
    if stored <> reclen then
      invalid_arg
        (Printf.sprintf "Recno.attach: record length %d, file has %d" reclen
           stored);
    { clock; stats; cpu; pager; rl = reclen; n = Enc.get_u32 meta 8 }
  end
  else begin
    let t = { clock; stats; cpu; pager; rl = reclen; n = 0 } in
    write_meta t;
    t
  end

let reclen t = t.rl
let count t = t.n

let charge t kind = Cpu.charge t.clock t.stats t.cpu kind

let location t recno =
  let pp = per_page t in
  (1 + (recno / pp), recno mod pp * t.rl)

let check_size t data =
  if Bytes.length data <> t.rl then
    invalid_arg
      (Printf.sprintf "Recno: record must be %d bytes, got %d" t.rl
         (Bytes.length data))

(* Re-read the record count. The count only ever moves through a single
   u32 in one atomic page update, so a latch-free read sees a valid
   (monotonic) value. *)
let refresh t =
  if t.pager.Pager.record_grain then begin
    let meta = t.pager.Pager.get 0 in
    if Enc.get_u32 meta 0 = magic then t.n <- Enc.get_u32 meta 8
  end

let set_at t recno data =
  let page, off = location t recno in
  let b = Bytes.copy (t.pager.Pager.get page) in
  Bytes.blit data 0 b off t.rl;
  t.pager.Pager.put page b

(* Record-grain append protocol: the exclusive header latch makes the
   slot allocation atomic; the record lock covers the new slot to
   commit (if it must wait — an escalated page lock — the latches drop
   and the operation restarts with a fresh count); the data-page latch
   covers the read-modify-write; the count moves last, as a redo-only
   system write. An abort after the count moved leaves a zeroed hole,
   which history readers skip. *)
let append t data =
  Pager.with_op t.pager (fun () ->
      charge t Cpu.Record_op;
      check_size t data;
      if t.pager.Pager.record_grain then begin
        t.pager.Pager.latch_page ~page:0 ~write:true;
        refresh t;
        let recno = t.n in
        let page, _ = location t recno in
        t.pager.Pager.lock_rec ~page ~recno ~write:true;
        t.pager.Pager.latch_page ~page ~write:true;
        set_at t recno data;
        t.n <- recno + 1;
        write_meta t;
        recno
      end
      else begin
        let recno = t.n in
        set_at t recno data;
        t.n <- recno + 1;
        write_meta t;
        recno
      end)

let get t recno =
  Pager.with_op t.pager (fun () ->
      charge t Cpu.Record_op;
      refresh t;
      if recno < 0 || recno >= t.n then raise Not_found;
      let page, off = location t recno in
      if t.pager.Pager.record_grain then
        t.pager.Pager.lock_rec ~page ~recno ~write:false;
      Bytes.sub (t.pager.Pager.get page) off t.rl)

let set t recno data =
  Pager.with_op t.pager (fun () ->
      charge t Cpu.Record_op;
      check_size t data;
      refresh t;
      if recno < 0 || recno >= t.n then raise Not_found;
      if t.pager.Pager.record_grain then begin
        let page, _ = location t recno in
        t.pager.Pager.lock_rec ~page ~recno ~write:true;
        t.pager.Pager.latch_page ~page ~write:true
      end;
      set_at t recno data)

let iter t f =
  Pager.with_op t.pager (fun () ->
      if t.pager.Pager.record_grain then begin
        t.pager.Pager.lock_file ~write:false;
        refresh t
      end;
      let continue_ = ref true in
      let recno = ref 0 in
      while !continue_ && !recno < t.n do
        charge t Cpu.Cursor_next;
        let page, off = location t !recno in
        let data = Bytes.sub (t.pager.Pager.get page) off t.rl in
        continue_ := f !recno data;
        incr recno
      done)
