exception Entry_too_large

let magic = 0x48534831 (* "HSH1" *)

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cpu : Config.cpu;
  pager : Pager.t;
  buckets : int;
  mutable npages : int;
  mutable n : int;
}

(* Bucket page: u16 nentries | u32 overflow | entries (u16 klen | u16 vlen |
   key | value). Page 0 is the meta page; bucket i lives on page 1+i. *)

let write_meta t =
  let b = Bytes.make t.pager.Pager.page_size '\000' in
  Enc.set_u32 b 0 magic;
  Enc.set_u32 b 4 t.buckets;
  Enc.set_u32 b 8 t.npages;
  Enc.set_u32 b 12 t.n;
  t.pager.Pager.put 0 b

let empty_bucket ps = Bytes.make ps '\000'

let attach clock stats cpu (pager : Pager.t) ~buckets =
  if buckets <= 0 then invalid_arg "Hashdb.attach: buckets must be positive";
  let meta = pager.Pager.get 0 in
  if Enc.get_u32 meta 0 = magic then
    {
      clock;
      stats;
      cpu;
      pager;
      buckets = Enc.get_u32 meta 4;
      npages = Enc.get_u32 meta 8;
      n = Enc.get_u32 meta 12;
    }
  else begin
    let t = { clock; stats; cpu; pager; buckets; npages = 1 + buckets; n = 0 } in
    for i = 1 to buckets do
      pager.Pager.put i (empty_bucket pager.Pager.page_size)
    done;
    write_meta t;
    t
  end

let count t = t.n
let charge t kind = Cpu.charge t.clock t.stats t.cpu kind

let hash key = Hashtbl.hash key

let bucket_page t key = 1 + (hash key mod t.buckets)

let decode_bucket b =
  let n = Enc.get_u16 b 0 in
  let overflow = Enc.get_u32 b 2 in
  let off = ref 6 in
  let items =
    List.init n (fun _ ->
        let klen = Enc.get_u16 b !off in
        let vlen = Enc.get_u16 b (!off + 2) in
        let k = Enc.get_string b (!off + 4) ~len:klen in
        let v = Enc.get_string b (!off + 4 + klen) ~len:vlen in
        off := !off + 4 + klen + vlen;
        (k, v))
  in
  (items, overflow)

let encode_bucket ps items overflow =
  let b = Bytes.make ps '\000' in
  Enc.set_u16 b 0 (List.length items);
  Enc.set_u32 b 2 overflow;
  let off = ref 6 in
  List.iter
    (fun (k, v) ->
      Enc.set_u16 b !off (String.length k);
      Enc.set_u16 b (!off + 2) (String.length v);
      Enc.set_string b (!off + 4) k;
      Enc.set_string b (!off + 4 + String.length k) v;
      off := !off + 4 + String.length k + String.length v)
    items;
  b

let bucket_bytes items =
  List.fold_left (fun acc (k, v) -> acc + 4 + String.length k + String.length v) 6 items

(* Record-grain protocol. A record is named by its bucket-chain head
   page (stable under overflow growth) and the key hash. Readers take
   only the shared record lock: page writes apply atomically, writers
   only rearrange entries they hold exclusively, so the locked key's
   bytes are trustworthy wherever they sit in the chain. Writers
   serialize on an exclusive meta lock held to commit — the hash file
   is not on the TPC-B path, so trading writer concurrency for a
   latch-free structure is the right simplicity. *)
let refresh t =
  if t.pager.Pager.record_grain then begin
    let meta = t.pager.Pager.get 0 in
    if Enc.get_u32 meta 0 = magic then begin
      t.npages <- Enc.get_u32 meta 8;
      t.n <- Enc.get_u32 meta 12
    end
  end

let rec_id key = hash key land 0xFFFFFF

let find t key =
  Pager.with_op t.pager (fun () ->
      charge t Cpu.Record_op;
      let head = bucket_page t key in
      if t.pager.Pager.record_grain then
        t.pager.Pager.lock_rec ~page:head ~recno:(rec_id key) ~write:false;
      let rec probe page =
        if page = 0 then None
        else
          let items, overflow = decode_bucket (t.pager.Pager.get page) in
          match List.assoc_opt key items with
          | Some v -> Some v
          | None -> probe overflow
      in
      probe head)

let lock_write t key =
  if t.pager.Pager.record_grain then begin
    t.pager.Pager.lock_meta ~write:true;
    refresh t;
    t.pager.Pager.lock_rec ~page:(bucket_page t key) ~recno:(rec_id key)
      ~write:true
  end

let insert t key value =
  Pager.with_op t.pager (fun () ->
  charge t Cpu.Record_op;
  let ps = t.pager.Pager.page_size in
  if 4 + String.length key + String.length value > (ps - 6) / 2 then
    raise Entry_too_large;
  lock_write t key;
  (* Replace in whichever chain page holds the key; otherwise add to the
     first page with room, extending the chain if none has any. *)
  let rec replace page =
    if page = 0 then false
    else
      let items, overflow = decode_bucket (t.pager.Pager.get page) in
      if List.mem_assoc key items then begin
        let items = (key, value) :: List.remove_assoc key items in
        t.pager.Pager.put page (encode_bucket ps items overflow);
        true
      end
      else replace overflow
  in
  if not (replace (bucket_page t key)) then begin
    let rec add page =
      let items, overflow = decode_bucket (t.pager.Pager.get page) in
      if bucket_bytes ((key, value) :: items) <= ps then
        t.pager.Pager.put page (encode_bucket ps ((key, value) :: items) overflow)
      else if overflow <> 0 then add overflow
      else begin
        let fresh = t.npages in
        t.npages <- fresh + 1;
        t.pager.Pager.put fresh (encode_bucket ps [ (key, value) ] 0);
        t.pager.Pager.put page (encode_bucket ps items fresh);
        Stats.incr t.stats "hash.overflow_pages"
      end
    in
    add (bucket_page t key);
    t.n <- t.n + 1;
    write_meta t
  end)

let delete t key =
  Pager.with_op t.pager (fun () ->
  charge t Cpu.Record_op;
  lock_write t key;
  let ps = t.pager.Pager.page_size in
  let rec probe page =
    if page = 0 then false
    else
      let items, overflow = decode_bucket (t.pager.Pager.get page) in
      if List.mem_assoc key items then begin
        t.pager.Pager.put page (encode_bucket ps (List.remove_assoc key items) overflow);
        t.n <- t.n - 1;
        write_meta t;
        true
      end
      else probe overflow
  in
  probe (bucket_page t key))

let iter t f =
  Pager.with_op t.pager (fun () ->
  if t.pager.Pager.record_grain then begin
    t.pager.Pager.lock_file ~write:false;
    refresh t
  end;
  let rec chain page =
    if page = 0 then true
    else
      let items, overflow = decode_bucket (t.pager.Pager.get page) in
      if
        List.for_all
          (fun (k, v) ->
            charge t Cpu.Cursor_next;
            f k v)
          items
      then chain overflow
      else false
  in
  let rec buckets i = if i > t.buckets then () else if chain i then buckets (i + 1)
  in
  buckets 1)
