(** The page-access interface the record library is written against.

    The paper's central comparison runs the {e same} access methods on
    three substrates; a [Pager.t] is that seam. {!plain} goes straight to
    the file system (no transactions); {!wal} routes every page through
    LIBTP's locks, log and buffer pool (the user-level system of
    Section 3); the kernel pager for the embedded system lives in
    [lib/core] next to the transaction manager it belongs to.

    Contract: [get] returns bytes the caller must not mutate; changed
    pages are produced fresh and handed to [put] whole (the WAL pager
    diffs them to log only the changed range, Section 3's byte-range
    logging).

    When [record_grain] is set the pager exposes the hierarchical
    locking hooks of the record-grain protocol: the access methods lock
    individual records to commit ([lock_rec]), hold short-term physical
    latches only across page edits ([latch_file]/[latch_page], released
    by [end_op]), and wrap each logical operation in {!with_op}, which
    retries the body whenever a blocking lock acquisition forced the
    latches to be dropped ({!Op_restart}). *)

exception Op_restart
(** Raised (by the lock hooks) when a lock acquisition had to park the
    process after releasing its latches: any page buffers read so far
    may be stale, so the whole operation must re-run. {!with_op}
    catches it. *)

type t = {
  page_size : int;
  get : int -> bytes;
  put : int -> bytes -> unit;
  record_grain : bool;
  put_sys : int -> bytes -> unit;
      (** Redo-only "system" write, logged outside the transaction: the
          update survives even if the enclosing transaction aborts (used
          for the recno record-count, which is protected by a latch, not
          a lock). Falls back to [put] when the substrate has no such
          distinction. *)
  lock_rec : page:int -> recno:int -> write:bool -> unit;
      (** Record lock, held to commit. May raise {!Op_restart}. *)
  lock_meta : write:bool -> unit;
      (** [write:true]: exclusive meta-page lock to commit (taken by
          structure-modifying operations). [write:false]: the meta
          "pulse" — acquire and immediately drop a shared meta lock, so
          the operation waits out any uncommitted structure modifier
          before trusting the meta it reads. May raise {!Op_restart}. *)
  lock_page : int -> unit;
      (** Exclusive page lock to commit (structure-modification path).
          May raise {!Op_restart}. *)
  lock_file : write:bool -> unit;
      (** Whole-file lock to commit — the scan lock of hierarchical
          locking (a shared file lock conflicts with every writer's IX).
          May raise {!Op_restart}. *)
  latch_file : write:bool -> unit;
      (** File latch: shared for ordinary operations, exclusive to drain
          them before rewriting the structure. Blocks; never restarts. *)
  latch_page : page:int -> write:bool -> unit;
      (** Page latch around a read-modify-write of one page. *)
  end_op : unit -> unit;  (** Release every latch the operation holds. *)
}

val nohooks : page_size:int -> (int -> bytes) -> (int -> bytes -> unit) -> t
(** Build a pager from bare [get]/[put] with every record-grain hook a
    no-op and [record_grain] false (substrate constructors start here
    and override what they support). *)

val with_op : t -> (unit -> 'a) -> 'a
(** Run one logical access-method operation, releasing latches on every
    exit and re-running the body on {!Op_restart}. A no-op wrapper when
    [record_grain] is false. *)

val plain : Vfs.t -> Vfs.fd -> t
(** Direct, non-transactional paging (used to bulk-load databases and by
    non-transactional applications). *)

val wal : Libtp.t -> Libtp.txn -> Vfs.fd -> t
(** User-level transactional paging bound to one transaction. At page
    grain, [get] takes a shared page lock and [put] an exclusive one and
    logs before/after images. At record grain the page locks disappear:
    [get]/[put] move bytes under the latches the access method holds,
    and isolation comes from [lock_rec]/[lock_meta]/[lock_page]. *)
