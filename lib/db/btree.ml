exception Entry_too_large

let magic = 0x42545231 (* "BTR1" *)

type node =
  | Leaf of { mutable next : int; mutable items : (string * string) list }
  | Node of { mutable child0 : int; mutable items : (string * int) list }
(* Leaf items are (key, value); internal items are (key, child) with the
   child holding keys >= key; [child0] holds keys below the first key. *)

type meta = {
  mutable root : int;
  mutable npages : int;
  mutable nrecords : int;
  mutable tree_height : int;
}

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cpu : Config.cpu;
  pager : Pager.t;
  meta : meta;
  mutable meta_dirty : bool;
}

(* Codecs ----------------------------------------------------------------- *)

let read_meta b =
  if Enc.get_u32 b 0 <> magic then None
  else
    Some
      {
        root = Enc.get_u32 b 4;
        npages = Enc.get_u32 b 8;
        nrecords = Enc.get_u32 b 12;
        tree_height = Enc.get_u32 b 16;
      }

let write_meta t =
  let b = Bytes.make t.pager.Pager.page_size '\000' in
  Enc.set_u32 b 0 magic;
  Enc.set_u32 b 4 t.meta.root;
  Enc.set_u32 b 8 t.meta.npages;
  Enc.set_u32 b 12 t.meta.nrecords;
  Enc.set_u32 b 16 t.meta.tree_height;
  t.pager.Pager.put 0 b;
  t.meta_dirty <- false

let decode_node ps b =
  match Enc.get_u8 b 0 with
  | 0 ->
    let n = Enc.get_u16 b 1 in
    let next = Enc.get_u32 b 3 in
    let off = ref 7 in
    let items =
      List.init n (fun _ ->
          let klen = Enc.get_u16 b !off in
          let vlen = Enc.get_u16 b (!off + 2) in
          let key = Enc.get_string b (!off + 4) ~len:klen in
          let value = Enc.get_string b (!off + 4 + klen) ~len:vlen in
          off := !off + 4 + klen + vlen;
          (key, value))
    in
    ignore ps;
    Leaf { next; items }
  | 1 ->
    let n = Enc.get_u16 b 1 in
    let child0 = Enc.get_u32 b 3 in
    let off = ref 7 in
    let items =
      List.init n (fun _ ->
          let klen = Enc.get_u16 b !off in
          let child = Enc.get_u32 b (!off + 2) in
          let key = Enc.get_string b (!off + 6) ~len:klen in
          off := !off + 6 + klen;
          (key, child))
    in
    Node { child0; items }
  | k -> failwith (Printf.sprintf "Btree: bad node kind %d" k)

let encode_node ps node =
  let b = Bytes.make ps '\000' in
  (match node with
  | Leaf { next; items } ->
    Enc.set_u8 b 0 0;
    Enc.set_u16 b 1 (List.length items);
    Enc.set_u32 b 3 next;
    let off = ref 7 in
    List.iter
      (fun (k, v) ->
        Enc.set_u16 b !off (String.length k);
        Enc.set_u16 b (!off + 2) (String.length v);
        Enc.set_string b (!off + 4) k;
        Enc.set_string b (!off + 4 + String.length k) v;
        off := !off + 4 + String.length k + String.length v)
      items
  | Node { child0; items } ->
    Enc.set_u8 b 0 1;
    Enc.set_u16 b 1 (List.length items);
    Enc.set_u32 b 3 child0;
    let off = ref 7 in
    List.iter
      (fun (k, child) ->
        Enc.set_u16 b !off (String.length k);
        Enc.set_u32 b (!off + 2) child;
        Enc.set_string b (!off + 6) k;
        off := !off + 6 + String.length k)
      items);
  b

let node_size = function
  | Leaf { items; _ } ->
    List.fold_left (fun acc (k, v) -> acc + 4 + String.length k + String.length v) 7 items
  | Node { items; _ } ->
    List.fold_left (fun acc (k, _) -> acc + 6 + String.length k) 7 items

(* Page I/O --------------------------------------------------------------- *)

let read_node t page = decode_node t.pager.Pager.page_size (t.pager.Pager.get page)
let write_node t page node = t.pager.Pager.put page (encode_node t.pager.Pager.page_size node)

let alloc_page t =
  let p = t.meta.npages in
  t.meta.npages <- p + 1;
  t.meta_dirty <- true;
  p

(* Construction ----------------------------------------------------------- *)

let attach clock stats cpu pager =
  let meta_page = pager.Pager.get 0 in
  match read_meta meta_page with
  | Some meta -> { clock; stats; cpu; pager; meta; meta_dirty = false }
  | None ->
    let meta = { root = 1; npages = 2; nrecords = 0; tree_height = 1 } in
    let t = { clock; stats; cpu; pager; meta; meta_dirty = false } in
    write_node t 1 (Leaf { next = 0; items = [] });
    write_meta t;
    t

let count t = t.meta.nrecords
let height t = t.meta.tree_height

let charge t kind = Cpu.charge t.clock t.stats t.cpu kind

let max_entry t = (t.pager.Pager.page_size - 7) / 4

(* Record-grain machinery ------------------------------------------------- *)

(* Lock name of one key: records are named by the leaf page that holds
   them plus a key hash. A leaf split changes a record's name, but a
   split must take an exclusive lock on the old leaf page first, which
   conflicts with the intention mode every record-lock holder keeps on
   that page — so names can only change when nobody holds them. *)
let rec_id key = Hashtbl.hash key land 0xFFFFFF

let refresh_meta t =
  match read_meta (t.pager.Pager.get 0) with
  | Some m ->
    t.meta.root <- m.root;
    t.meta.npages <- m.npages;
    t.meta.nrecords <- m.nrecords;
    t.meta.tree_height <- m.tree_height;
    t.meta_dirty <- false
  | None -> ()

(* Operation prologue at record grain: the shared file latch freezes the
   tree structure for the duration of the operation (structure modifiers
   drain us with an exclusive file latch); the meta pulse waits out any
   uncommitted structure modifier; then a fresh meta can be trusted. *)
let begin_op t =
  t.pager.Pager.latch_file ~write:false;
  t.pager.Pager.lock_meta ~write:false;
  refresh_meta t

(* Search ------------------------------------------------------------------ *)

(* Child of an internal node that covers [key]. *)
let child_for items child0 key =
  let rec go prev = function
    | [] -> prev
    | (k, child) :: rest -> if key < k then prev else go child rest
  in
  go child0 items

let rec descend t page key =
  match read_node t page with
  | Leaf _ as leaf -> (page, leaf)
  | Node { child0; items } -> descend t (child_for items child0 key) key

let find t key =
  Pager.with_op t.pager (fun () ->
      charge t Cpu.Record_op;
      if not t.pager.Pager.record_grain then begin
        let _, leaf = descend t t.meta.root key in
        match leaf with
        | Leaf { items; _ } -> List.assoc_opt key items
        | Node _ -> assert false
      end
      else begin
        begin_op t;
        let page, _ = descend t t.meta.root key in
        (* Lock, then re-read: the value is only trusted once the record
           lock is held (a lock that had to wait restarts the op). *)
        t.pager.Pager.lock_rec ~page ~recno:(rec_id key) ~write:false;
        match read_node t page with
        | Leaf { items; _ } -> List.assoc_opt key items
        | Node _ -> assert false
      end)

(* Insert ------------------------------------------------------------------ *)

let insert_sorted_leaf items key value =
  let rec go = function
    | [] -> [ (key, value) ]
    | (k, _) :: rest when k = key -> (key, value) :: rest
    | (k, v) :: rest when key < k -> (key, value) :: (k, v) :: rest
    | kv :: rest -> kv :: go rest
  in
  go items

let insert_sorted_node items key child =
  let rec go = function
    | [] -> [ (key, child) ]
    | (k, c) :: rest when key < k -> (key, child) :: (k, c) :: rest
    | kc :: rest -> kc :: go rest
  in
  go items

(* Split a list of items so the left part holds roughly half the bytes —
   except when the overflow was caused by an append at the right end
   ([appending]), where we keep the left node full and start a fresh
   right node: sequential loads then fill pages completely instead of
   leaving every page half empty. *)
let split_items ?(appending = false) size_of items =
  if appending then
    match List.rev items with
    | last :: rev_rest -> (List.rev rev_rest, [ last ])
    | [] -> ([], [])
  else
    let total = List.fold_left (fun acc it -> acc + size_of it) 0 items in
    let rec go acc taken = function
      | [] -> (List.rev acc, [])
      | it :: rest ->
        if taken >= total / 2 && rest <> [] then (List.rev acc, it :: rest)
        else go (it :: acc) (taken + size_of it) rest
    in
    go [] 0 items

let leaf_item_size (k, v) = 4 + String.length k + String.length v
let node_item_size (k, _) = 6 + String.length k

(* Returns [Some (separator, right page)] when the child split. *)
let rec insert_rec t page key value =
  match read_node t page with
  | Leaf { items; next } ->
    let existed = List.mem_assoc key items in
    let items = insert_sorted_leaf items key value in
    if not existed then begin
      t.meta.nrecords <- t.meta.nrecords + 1;
      t.meta_dirty <- true
    end;
    let node = Leaf { next; items } in
    if node_size node <= t.pager.Pager.page_size then begin
      write_node t page node;
      None
    end
    else begin
      let appending =
        match List.rev items with (k, _) :: _ -> k = key | [] -> false
      in
      let left_items, right_items = split_items ~appending leaf_item_size items in
      let right_page = alloc_page t in
      write_node t right_page (Leaf { next; items = right_items });
      write_node t page (Leaf { next = right_page; items = left_items });
      match right_items with
      | (sep, _) :: _ -> Some (sep, right_page)
      | [] -> assert false
    end
  | Node { child0; items } -> (
    let child = child_for items child0 key in
    match insert_rec t child key value with
    | None -> None
    | Some (sep, right) ->
      let items = insert_sorted_node items sep right in
      let node = Node { child0; items } in
      if node_size node <= t.pager.Pager.page_size then begin
        write_node t page node;
        None
      end
      else begin
        let appending =
          match List.rev items with (k, _) :: _ -> k = sep | [] -> false
        in
        let left_items, right_items = split_items ~appending node_item_size items in
        match right_items with
        | (mid_key, mid_child) :: rest ->
          let right_page = alloc_page t in
          write_node t right_page (Node { child0 = mid_child; items = rest });
          write_node t page (Node { child0; items = left_items });
          Some (mid_key, right_page)
        | [] -> assert false
      end)

(* The classic whole-tree insert: recursive descent, splits propagating
   up, root split growing the tree. At record grain this only runs with
   the meta and the whole descent path locked exclusively and concurrent
   operations drained. *)
let insert_locked t key value =
  (match insert_rec t t.meta.root key value with
  | None -> ()
  | Some (sep, right) ->
    let new_root = alloc_page t in
    write_node t new_root (Node { child0 = t.meta.root; items = [ (sep, right) ] });
    t.meta.root <- new_root;
    t.meta.tree_height <- t.meta.tree_height + 1;
    t.meta_dirty <- true);
  if t.meta_dirty then write_meta t

let insert t key value =
  Pager.with_op t.pager (fun () ->
      charge t Cpu.Record_op;
      if 4 + String.length key + String.length value > max_entry t then
        raise Entry_too_large;
      if not t.pager.Pager.record_grain then insert_locked t key value
      else begin
        begin_op t;
        let page, leaf = descend t t.meta.root key in
        let gated =
          (* Only an insert that can change the tree shape needs the
             structure-modification path: a new key, or a value whose
             size changes (an equal-size replacement can never overflow
             the leaf). The decision is stable: a concurrent size change
             would need a record lock that conflicts with ours below. *)
          match leaf with
          | Leaf { items; _ } -> (
            match List.assoc_opt key items with
            | Some v -> String.length v <> String.length value
            | None -> true)
          | Node _ -> assert false
        in
        if not gated then begin
          t.pager.Pager.lock_rec ~page ~recno:(rec_id key) ~write:true;
          t.pager.Pager.latch_page ~page ~write:true;
          match read_node t page with
          | Leaf { next; items }
            when (match List.assoc_opt key items with
                 | Some v -> String.length v = String.length value
                 | None -> false) ->
            write_node t page
              (Leaf { next; items = insert_sorted_leaf items key value })
          | _ ->
            (* The leaf changed in the instant before the lock landed;
               re-run against a fresh view. *)
            raise Pager.Op_restart
        end
        else begin
          (* Structure-modification path: two-phase-lock the meta, every
             page on the descent path and the record before writing
             anything, then drain concurrent operations with an
             exclusive file latch. Blocking on any of these locks drops
             the latches and restarts, so no partial split is ever
             abandoned mid-flight. *)
          t.pager.Pager.lock_meta ~write:true;
          let rec lock_path page =
            t.pager.Pager.lock_page page;
            match read_node t page with
            | Leaf _ -> page
            | Node { child0; items } -> lock_path (child_for items child0 key)
          in
          let leaf_page = lock_path t.meta.root in
          t.pager.Pager.lock_rec ~page:leaf_page ~recno:(rec_id key) ~write:true;
          t.pager.Pager.latch_file ~write:true;
          insert_locked t key value
        end
      end)

(* Delete (lazy, as in db(3): pages are never merged) ---------------------- *)

let delete t key =
  Pager.with_op t.pager (fun () ->
      charge t Cpu.Record_op;
      if not t.pager.Pager.record_grain then begin
        let page, leaf = descend t t.meta.root key in
        match leaf with
        | Leaf { next; items } ->
          if List.mem_assoc key items then begin
            write_node t page (Leaf { next; items = List.remove_assoc key items });
            t.meta.nrecords <- t.meta.nrecords - 1;
            t.meta_dirty <- true;
            write_meta t;
            true
          end
          else false
        | Node _ -> assert false
      end
      else begin
        begin_op t;
        let page, leaf = descend t t.meta.root key in
        let present =
          match leaf with
          | Leaf { items; _ } -> List.mem_assoc key items
          | Node _ -> assert false
        in
        if not present then begin
          (* Lock the (absent) record's name anyway so the verdict holds
             to commit, then re-check under the lock. *)
          t.pager.Pager.lock_rec ~page ~recno:(rec_id key) ~write:false;
          match read_node t page with
          | Leaf { items; _ } when List.mem_assoc key items ->
            raise Pager.Op_restart
          | _ -> false
        end
        else begin
          (* Deletes change the meta (record count), so they take the
             structure-modification locks; pages are never merged, so
             the leaf alone (not the whole path) needs the page lock. *)
          t.pager.Pager.lock_meta ~write:true;
          t.pager.Pager.lock_page page;
          t.pager.Pager.lock_rec ~page ~recno:(rec_id key) ~write:true;
          t.pager.Pager.latch_page ~page ~write:true;
          match read_node t page with
          | Leaf { next; items } when List.mem_assoc key items ->
            write_node t page (Leaf { next; items = List.remove_assoc key items });
            t.meta.nrecords <- t.meta.nrecords - 1;
            t.meta_dirty <- true;
            write_meta t;
            true
          | _ -> raise Pager.Op_restart
        end
      end)

(* Cursor ------------------------------------------------------------------ *)

let iter_body t ?from f =
  let start_key = Option.value from ~default:"" in
  let rec leftmost page =
    match read_node t page with
    | Leaf _ -> page
    | Node { child0; items } ->
      if from = None then leftmost child0
      else leftmost (child_for items child0 start_key)
  in
  let rec walk page skip_below =
    if page <> 0 then
      match read_node t page with
      | Leaf { next; items } ->
        let continue_ =
          List.for_all
            (fun (k, v) ->
              if k < skip_below then true
              else begin
                charge t Cpu.Cursor_next;
                f k v
              end)
            items
        in
        if continue_ then walk next ""
      | Node _ -> failwith "Btree.iter: leaf chain reached an internal node"
  in
  walk (leftmost t.meta.root) start_key

(* A scan locks the whole file (shared): one lock at the top of the
   hierarchy instead of a lock per record, conflicting with every
   writer's intention-exclusive mode. *)
let scan_prologue t =
  if t.pager.Pager.record_grain then begin
    begin_op t;
    t.pager.Pager.lock_file ~write:false
  end

let iter t ?from f =
  Pager.with_op t.pager (fun () ->
      scan_prologue t;
      iter_body t ?from f)

(* Invariant check ---------------------------------------------------------- *)

let check t =
  Pager.with_op t.pager (fun () ->
  scan_prologue t;
  let ps = t.pager.Pager.page_size in
  let counted = ref 0 in
  (* Verify key ordering and separator bounds over the whole tree. *)
  let rec go page lo hi depth =
    let node = read_node t page in
    if node_size node > ps then failwith "node overflows page";
    match node with
    | Leaf { items; _ } ->
      counted := !counted + List.length items;
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          if fst a >= fst b then failwith "leaf keys not strictly sorted";
          sorted rest
        | _ -> ()
      in
      sorted items;
      List.iter
        (fun (k, _) ->
          (match lo with Some l when k < l -> failwith "leaf key below bound" | _ -> ());
          match hi with Some h when k >= h -> failwith "leaf key above bound" | _ -> ())
        items;
      depth
    | Node { child0; items } ->
      let rec bounds = function
        | [] -> []
        | (k, c) :: rest ->
          let hi' = match rest with (k', _) :: _ -> Some k' | [] -> hi in
          (Some k, c, hi') :: bounds rest
      in
      let first_hi = match items with (k, _) :: _ -> Some k | [] -> hi in
      let all = (lo, child0, first_hi) :: bounds items in
      let depths =
        List.map (fun (lo', c, hi') -> go c lo' hi' (depth + 1)) all
      in
      (match depths with
      | d :: rest when List.for_all (( = ) d) rest -> d
      | _ -> failwith "uneven depth")
  in
  ignore (go t.meta.root None None 1);
  if !counted <> t.meta.nrecords then
    failwith
      (Printf.sprintf "record count mismatch: counted %d, meta %d" !counted
         t.meta.nrecords);
  (* Leaf chain must be sorted globally. *)
  let prev = ref None in
  iter_body t (fun k _ ->
      (match !prev with
      | Some p when p >= k -> failwith "leaf chain out of order"
      | _ -> ());
      prev := Some k;
      true))
