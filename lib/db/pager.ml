exception Op_restart

type t = {
  page_size : int;
  get : int -> bytes;
  put : int -> bytes -> unit;
  record_grain : bool;
  put_sys : int -> bytes -> unit;
  lock_rec : page:int -> recno:int -> write:bool -> unit;
  lock_meta : write:bool -> unit;
  lock_page : int -> unit;
  lock_file : write:bool -> unit;
  latch_file : write:bool -> unit;
  latch_page : page:int -> write:bool -> unit;
  end_op : unit -> unit;
}

(* Fill the record-grain hooks with no-ops: plain paging and page-grain
   WAL paging need none of them. *)
let nohooks ~page_size get put =
  {
    page_size;
    get;
    put;
    record_grain = false;
    put_sys = put;
    lock_rec = (fun ~page:_ ~recno:_ ~write:_ -> ());
    lock_meta = (fun ~write:_ -> ());
    lock_page = ignore;
    lock_file = (fun ~write:_ -> ());
    latch_file = (fun ~write:_ -> ());
    latch_page = (fun ~page:_ ~write:_ -> ());
    end_op = (fun () -> ());
  }

let with_op t f =
  if not t.record_grain then f ()
  else
    let rec loop () =
      match f () with
      | v ->
        t.end_op ();
        v
      | exception Op_restart ->
        t.end_op ();
        loop ()
      | exception e ->
        t.end_op ();
        raise e
    in
    loop ()

let plain (vfs : Vfs.t) fd =
  let ps = vfs.Vfs.block_size in
  nohooks ~page_size:ps
    (fun page ->
      let b = Bytes.make ps '\000' in
      let size = vfs.Vfs.size fd in
      if page * ps < size then begin
        let chunk = vfs.Vfs.read fd ~off:(page * ps) ~len:ps in
        Bytes.blit chunk 0 b 0 (Bytes.length chunk)
      end;
      b)
    (fun page data -> vfs.Vfs.write fd ~off:(page * ps) data)

let wal env txn fd =
  if Libtp.grain env = `Page then
    nohooks ~page_size:(Libtp.page_size env)
      (fun page -> Bytes.copy (Libtp.read_page env txn ~file:fd ~page))
      (fun page data -> Libtp.write_page env txn ~file:fd ~page data)
  else begin
    let locks = Libtp.locks env in
    let tid = Libtp.txn_id txn in
    let restartable obj mode =
      match Libtp.lock_restartable env txn obj mode with
      | `Granted -> ()
      | `Restart -> raise Op_restart
    in
    {
      page_size = Libtp.page_size env;
      record_grain = true;
      (* Reads go through the pool without a page lock: isolation comes
         from the record locks the access method takes, and structural
         stability from the file latch. *)
      get = (fun page -> Bytes.copy (Libtp.read_page_raw env txn ~file:fd ~page));
      put = (fun page data -> Libtp.write_page_raw env txn ~file:fd ~page data);
      put_sys = (fun page data -> Libtp.write_page_sys env txn ~file:fd ~page data);
      lock_rec =
        (fun ~page ~recno ~write ->
          restartable
            (Lockmgr.Rec (fd, page, recno))
            (if write then Lockmgr.Exclusive else Lockmgr.Shared));
      lock_meta =
        (fun ~write ->
          let obj = Lockmgr.Page (fd, 0) in
          if write then restartable obj Lockmgr.Exclusive
          else begin
            (* Meta pulse: wait out any uncommitted structure modifier
               (which holds the meta exclusively to commit), then let the
               lock go again — unless we already hold the node. *)
            let held = Lockmgr.holds locks ~txn:tid obj <> None in
            match Libtp.lock_restartable env txn obj Lockmgr.Shared with
            | `Granted -> if not held then Lockmgr.release locks ~txn:tid obj
            | `Restart ->
              if not held then Lockmgr.release locks ~txn:tid obj;
              raise Op_restart
          end);
      lock_page = (fun page -> restartable (Lockmgr.Page (fd, page)) Lockmgr.Exclusive);
      lock_file =
        (fun ~write ->
          restartable (Lockmgr.File fd)
            (if write then Lockmgr.Exclusive else Lockmgr.Shared));
      latch_file =
        (fun ~write ->
          Libtp.latch env txn (Lockmgr.File fd)
            (if write then Lockmgr.Exclusive else Lockmgr.Shared));
      latch_page =
        (fun ~page ~write ->
          Libtp.latch env txn
            (Lockmgr.Page (fd, page))
            (if write then Lockmgr.Exclusive else Lockmgr.Shared));
      end_op = (fun () -> Libtp.end_op env txn);
    }
  end
