type txn = {
  id : int;
  stream : int; (* WAL stream this transaction's records append to *)
  deps : Logrec.lsn array;
  (* Per-stream dependency watermarks: for each stream, the highest LSN
     of a record this transaction's outcome depends on — accumulated
     whenever it touches (reads or overwrites) a page last written under
     another stream. Reads count too: a committed reader must not
     survive a crash that loses the writer it observed. *)
  mutable last_lsn : Logrec.lsn;
  mutable undo : (int * int * int * bytes) list; (* file, page, off, before *)
  mutable live : bool;
}

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  vfs : Vfs.t;
  logs : Logset.t;
  pool : Bufpool.t;
  locks : Lockmgr.t;
  mutable next_txn_id : int;
  active : (int, txn) Hashtbl.t;
  mutable committed_since_cp : int;
  checkpoint_every : int;
  mutable losers : int;
  (* Processes parked in [lock] under the scheduler, keyed by txn id;
     the lock manager's waker broadcasts the condition when the txn's
     wait edges clear. *)
  parked : (int, Sched.cond) Hashtbl.t;
}

exception Conflict of int list
exception Deadlock_abort of int

let txn_id txn = txn.id
let active_txns t = Hashtbl.length t.active
let pool t = t.pool
let logs t = t.logs
let log t = Logset.get t.logs 0
let locks t = t.locks
let page_size t = Bufpool.page_size t.pool
let recovered_losers t = t.losers

let mutex t = Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.User_mutex

let grain t = t.cfg.Config.fs.lock_grain

let check_live txn =
  if not txn.live then invalid_arg "Libtp: transaction already finished"

(* The transaction's own log stream. *)
let lm t txn = Logset.get t.logs txn.stream

(* Record that [txn] touched the page: fold the page's per-stream update
   watermarks into the transaction's dependency vector. *)
let note_touch t txn ~file ~page =
  if Logset.n t.logs > 1 then Bufpool.merge_deps t.pool ~file ~page txn.deps

(* Cross-stream chain pointer for the page's next update record: its
   last writer, unless that writer used the caller's own stream (the
   in-stream order already serializes them). *)
let chain_for t txn ~file ~page =
  let s, l = Bufpool.chain t.pool ~file ~page in
  if s < 0 || s = txn.stream then (-1, Logrec.null_lsn) else (s, l)

(* Sparse vector LSN carried by this transaction's commit/abort record:
   its cross-stream dependency watermarks. Own-stream dependencies are
   implicit in the append order. *)
let sparse_deps txn =
  let out = ref [] in
  Array.iteri
    (fun s l -> if s <> txn.stream && l >= 0 then out := (s, l) :: !out)
    txn.deps;
  List.rev !out

(* Apply one image (before or after) straight through the pool. *)
let apply_image t ~file ~page ~off data ~stream lsn =
  Bufpool.apply_update t.pool ~file ~page ~off data ~stream lsn

let release t txn =
  mutex t;
  Lockmgr.release_all t.locks ~txn:txn.id;
  Lockmgr.release_latches t.locks ~owner:txn.id;
  Hashtbl.remove t.active txn.id;
  txn.live <- false

(* Block until a latch is granted. Latch waits carry no deadlock risk:
   latch acquisition is top-down, and a process never parks on a lock
   while holding latches (it drops them and restarts the operation), so
   every latch holder runs to the end of its operation. *)
let rec block_latch t sched txn obj mode =
  Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Context_switch;
  Stats.incr t.stats "txn.latch_blocks";
  let c = Sched.condition () in
  Hashtbl.replace t.parked txn.id c;
  let t0 = Clock.now t.clock in
  Sched.wait sched c;
  Hashtbl.remove t.parked txn.id;
  Stats.add_time t.stats "txn.latch_wait" (Clock.now t.clock -. t0);
  match Lockmgr.latch t.locks ~owner:txn.id obj mode with
  | `Granted -> ()
  | `Would_block _ -> block_latch t sched txn obj mode

let latch_blocking t txn obj mode =
  match Lockmgr.latch t.locks ~owner:txn.id obj mode with
  | `Granted -> ()
  | `Would_block blockers -> (
    match Sched.of_clock t.clock with
    | Some sched when Sched.in_process sched -> block_latch t sched txn obj mode
    | _ -> raise (Conflict blockers))

let latch t txn obj mode =
  check_live txn;
  latch_blocking t txn obj mode

let end_op t txn = Lockmgr.release_latches t.locks ~owner:txn.id

(* Undo with compensation logging: each restore is itself logged as an
   update, so recovery replays aborts forward (redo-only) and never
   re-applies a stale before-image over a later committed write. At
   record grain the restore of each page happens under its exclusive
   page latch: other transactions share dirty pages there, and a restore
   racing another writer's read-modify-write would resurrect aborted
   bytes through the writer's stale buffer. *)
let do_abort t txn =
  let latched = grain t = `Record in
  List.iter
    (fun (file, page, off, before) ->
      if latched then
        latch_blocking t txn (Lockmgr.Page (file, page)) Lockmgr.Exclusive;
      note_touch t txn ~file ~page;
      let pstream, plsn = chain_for t txn ~file ~page in
      let current =
        Bytes.sub (Bufpool.get t.pool ~file ~page) off (Bytes.length before)
      in
      let lsn =
        Logmgr.append (lm t txn)
          {
            Logrec.txn = txn.id;
            prev = txn.last_lsn;
            body =
              Logrec.Update
                { file; page; off; pstream; plsn; before = current; after = before };
          }
      in
      txn.last_lsn <- lsn;
      apply_image t ~file ~page ~off before ~stream:txn.stream lsn;
      if latched then Lockmgr.unlatch t.locks ~owner:txn.id (Lockmgr.Page (file, page)))
    txn.undo;
  let lsn =
    Logmgr.append (lm t txn)
      {
        Logrec.txn = txn.id;
        prev = txn.last_lsn;
        body = Logrec.Abort { deps = sparse_deps txn };
      }
  in
  txn.last_lsn <- lsn;
  Stats.incr t.stats "txn.aborts";
  release t txn

(* Under the scheduler a conflicting acquire genuinely blocks: the
   process parks until the lock manager's waker reports its wait edges
   cleared, then retries. Deadlock (a real wait cycle, detected at
   acquire time) still aborts and raises. *)
let rec block_lock t sched txn obj mode =
  Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Context_switch;
  Stats.incr t.stats "txn.lock_blocks";
  let c = Sched.condition () in
  Hashtbl.replace t.parked txn.id c;
  let t0 = Clock.now t.clock in
  Sched.wait sched c;
  Hashtbl.remove t.parked txn.id;
  let dt = Clock.now t.clock -. t0 in
  Stats.add_time t.stats "txn.lock_wait" dt;
  Stats.observe t.stats "txn.lock_wait" dt;
  match Lockmgr.acquire t.locks ~txn:txn.id obj mode with
  | `Granted -> ()
  | `Would_block _ -> block_lock t sched txn obj mode
  | `Deadlock ->
    do_abort t txn;
    raise (Deadlock_abort txn.id)

let lock t txn obj mode =
  mutex t;
  match Lockmgr.acquire t.locks ~txn:txn.id obj mode with
  | `Granted -> ()
  | `Would_block blockers -> (
    match Sched.of_clock t.clock with
    | Some sched when Sched.in_process sched ->
      block_lock t sched txn obj mode
    | _ -> raise (Conflict blockers))
  | `Deadlock ->
    do_abort t txn;
    raise (Deadlock_abort txn.id)

(* Record-grain lock acquisition from inside an access-method operation:
   if the request must wait, the process first releases every latch it
   holds (so latch holders always make progress), parks until the lock
   is granted, and reports [`Restart] — any page buffers the operation
   read before parking may be stale, so the caller re-runs the whole
   operation (the granted lock is kept; the retry re-acquires it as a
   no-op). *)
let lock_restartable t txn obj mode =
  check_live txn;
  mutex t;
  match Lockmgr.acquire t.locks ~txn:txn.id obj mode with
  | `Granted -> `Granted
  | `Would_block blockers -> (
    match Sched.of_clock t.clock with
    | Some sched when Sched.in_process sched ->
      Lockmgr.release_latches t.locks ~owner:txn.id;
      Stats.incr t.stats "txn.op_restarts";
      block_lock t sched txn obj mode;
      `Restart
    | _ -> raise (Conflict blockers))
  | `Deadlock ->
    do_abort t txn;
    raise (Deadlock_abort txn.id)

let begin_txn t =
  mutex t;
  let id = t.next_txn_id in
  t.next_txn_id <- id + 1;
  let txn =
    {
      id;
      stream = Logset.stream_of_txn t.logs id;
      deps = Array.make (Logset.n t.logs) Logrec.null_lsn;
      last_lsn = Logrec.null_lsn;
      undo = [];
      live = true;
    }
  in
  Hashtbl.replace t.active id txn;
  txn.last_lsn <-
    Logmgr.append (lm t txn)
      { Logrec.txn = id; prev = Logrec.null_lsn; body = Logrec.Begin };
  Stats.incr t.stats "txn.begins";
  txn

let read_page t txn ~file ~page =
  check_live txn;
  lock t txn (Lockmgr.Page (file, page)) Lockmgr.Shared;
  note_touch t txn ~file ~page;
  Bufpool.get t.pool ~file ~page

let read_page_raw t txn ~file ~page =
  note_touch t txn ~file ~page;
  Bufpool.get t.pool ~file ~page

(* Smallest byte range where [a] and [b] differ; None if equal. *)
let diff_range a b =
  let n = Bytes.length a in
  assert (n = Bytes.length b);
  let lo = ref 0 in
  while !lo < n && Bytes.get a !lo = Bytes.get b !lo do
    incr lo
  done;
  if !lo = n then None
  else begin
    let hi = ref (n - 1) in
    while Bytes.get a !hi = Bytes.get b !hi do
      decr hi
    done;
    Some (!lo, !hi - !lo + 1)
  end

let write_bytes t txn ~file ~page data =
  let current = Bufpool.get t.pool ~file ~page in
  match diff_range current data with
  | None -> ()
  | Some (off, len) ->
    let before = Bytes.sub current off len in
    let after = Bytes.sub data off len in
    note_touch t txn ~file ~page;
    let pstream, plsn = chain_for t txn ~file ~page in
    let lsn =
      Logmgr.append (lm t txn)
        {
          Logrec.txn = txn.id;
          prev = txn.last_lsn;
          body = Logrec.Update { file; page; off; pstream; plsn; before; after };
        }
    in
    txn.last_lsn <- lsn;
    txn.undo <- (file, page, off, before) :: txn.undo;
    apply_image t ~file ~page ~off after ~stream:txn.stream lsn

let write_page t txn ~file ~page data =
  check_live txn;
  if Bytes.length data <> page_size t then
    invalid_arg "Libtp.write_page: data must be exactly one page";
  lock t txn (Lockmgr.Page (file, page)) Lockmgr.Exclusive;
  write_bytes t txn ~file ~page data

(* Record-grain write: no page lock — isolation comes from the record
   locks and latches the access method holds, and byte-range logging
   keeps the undo of co-resident transactions disjoint. *)
let write_page_raw t txn ~file ~page data =
  check_live txn;
  if Bytes.length data <> page_size t then
    invalid_arg "Libtp.write_page_raw: data must be exactly one page";
  write_bytes t txn ~file ~page data

(* Redo-only system write, logged as transaction 0. Transaction 0 never
   logs a Begin, so recovery never classifies it as a loser: the update
   is redone but never undone, even when the transaction that issued it
   aborts. Used for the recno record-count, whose allocation must
   survive an aborted append (the record bytes themselves are undone,
   leaving a zeroed hole). The record goes to the {e enclosing}
   transaction's stream so it is covered by that transaction's
   commit-time force. *)
let write_page_sys t txn ~file ~page data =
  check_live txn;
  if Bytes.length data <> page_size t then
    invalid_arg "Libtp.write_page_sys: data must be exactly one page";
  let current = Bufpool.get t.pool ~file ~page in
  match diff_range current data with
  | None -> ()
  | Some (off, len) ->
    let before = Bytes.sub current off len in
    let after = Bytes.sub data off len in
    note_touch t txn ~file ~page;
    let pstream, plsn = chain_for t txn ~file ~page in
    let lsn =
      Logmgr.append (lm t txn)
        {
          Logrec.txn = 0;
          prev = Logrec.null_lsn;
          body = Logrec.Update { file; page; off; pstream; plsn; before; after };
        }
    in
    apply_image t ~file ~page ~off after ~stream:txn.stream lsn

let checkpoint t =
  if Hashtbl.length t.active = 0 then begin
    Bufpool.flush_all t.pool;
    Logset.force_all t.logs;
    Logset.truncate_all t.logs;
    (* The truncation invalidated every page watermark: stale LSNs would
       point past the (now empty) logs and wedge the next WAL force. *)
    Bufpool.reset_lsns t.pool;
    for s = 0 to Logset.n t.logs - 1 do
      let lg = Logset.get t.logs s in
      let lsn =
        Logmgr.append lg
          {
            Logrec.txn = 0;
            prev = Logrec.null_lsn;
            body = Logrec.Checkpoint { active = [] };
          }
      in
      Logmgr.force lg ~upto:lsn
    done;
    t.committed_since_cp <- 0;
    Stats.incr t.stats "txn.checkpoints"
  end

let commit t txn =
  check_live txn;
  mutex t;
  (* Make every cross-stream dependency durable BEFORE the commit record
     even enters its stream's buffer: once appended, any other
     committer's group force can make it durable, and a durable commit
     whose dependency is still volatile breaks the recovery merge's
     loser argument. *)
  let deps = sparse_deps txn in
  if deps <> [] then Logset.force_deps t.logs ~own:txn.stream txn.deps;
  let lsn =
    Logmgr.append (lm t txn)
      { Logrec.txn = txn.id; prev = txn.last_lsn; body = Logrec.Commit { deps } }
  in
  Logmgr.force_commit (lm t txn) ~upto:lsn;
  release t txn;
  Stats.incr t.stats "txn.commits";
  t.committed_since_cp <- t.committed_since_cp + 1;
  if t.committed_since_cp >= t.checkpoint_every then checkpoint t

let abort t txn =
  check_live txn;
  mutex t;
  do_abort t txn

(* Crash recovery: merge the streams into dependency order, redo history
   from the last checkpoint, then undo losers. After-images are absolute
   bytes, so redo is idempotent. *)
let recover t =
  let merged = Logset.merged_records t.logs in
  let winners = Hashtbl.create 16 in
  List.iter
    (fun (_, _, r) ->
      match r.Logrec.body with
      | Logrec.Commit _ | Logrec.Abort _ ->
        (* Aborted transactions logged their undo as compensation
           updates, so like committed ones they replay forward. *)
        Hashtbl.replace winners r.Logrec.txn ()
      | _ -> ())
    merged;
  (* Redo phase, in merged (dependency) order. *)
  List.iter
    (fun (stream, lsn, r) ->
      match r.Logrec.body with
      | Logrec.Update { file; page; off; after; _ } ->
        apply_image t ~file ~page ~off after ~stream lsn
      | _ -> ())
    merged;
  (* Undo phase: losers' updates, newest first. *)
  let losers = Hashtbl.create 8 in
  List.iter
    (fun (_, _, r) ->
      match r.Logrec.body with
      | Logrec.Begin when not (Hashtbl.mem winners r.Logrec.txn) ->
        Hashtbl.replace losers r.Logrec.txn ()
      | _ -> ())
    merged;
  let undo_list =
    List.filter
      (fun (_, _, r) ->
        Hashtbl.mem losers r.Logrec.txn
        && match r.Logrec.body with Logrec.Update _ -> true | _ -> false)
      merged
  in
  List.iter
    (fun (stream, lsn, r) ->
      match r.Logrec.body with
      | Logrec.Update { file; page; off; before; _ } ->
        apply_image t ~file ~page ~off before ~stream lsn
      | _ -> ())
    (List.rev undo_list);
  t.losers <- Hashtbl.length losers;
  Stats.add t.stats "txn.recovered_losers" t.losers;
  (* Make the recovered state durable and reset the logs. *)
  checkpoint t

let open_env clock stats (cfg : Config.t) vfs ?log_vfs ?log_vfss
    ?(pool_pages = 1024) ?(checkpoint_every = 500) ~log_path () =
  (* The WAL may live in different file systems than the data — on
     dedicated log spindles, commit forces never move the data heads.
     [log_vfss] spreads a multi-stream set across several spindles;
     [log_vfs] keeps the single-home interface. *)
  let homes =
    match log_vfss with
    | Some homes when Array.length homes > 0 -> homes
    | _ -> [| Option.value log_vfs ~default:vfs |]
  in
  let logs = Logset.create clock stats cfg ~homes ~path:log_path in
  let pool = Bufpool.create clock stats cfg vfs logs ~pages:pool_pages in
  let locks =
    Lockmgr.create ~escalation:cfg.Config.fs.lock_escalation clock stats cfg.cpu
  in
  let t =
    {
      clock;
      stats;
      cfg;
      vfs;
      logs;
      pool;
      locks;
      next_txn_id = 1;
      active = Hashtbl.create 16;
      committed_since_cp = 0;
      checkpoint_every;
      losers = 0;
      parked = Hashtbl.create 8;
    }
  in
  Lockmgr.set_waker locks
    (Some
       (fun txnid ->
         match Hashtbl.find_opt t.parked txnid with
         | Some c -> (
           match Sched.of_clock clock with
           | Some sched -> Sched.broadcast sched c
           | None -> ())
         | None -> ()));
  if Logset.flushed_total logs > 0 then recover t else checkpoint t;
  t
