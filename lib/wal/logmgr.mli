(** Log manager of the user-level transaction system.

    Appends buffer records in memory and forces them to a log {e file} on
    whatever file system the environment lives on — which is the point of
    the paper's Figure 4 comparison: on the read-optimized file system the
    log force is an extra positioned write, on LFS it folds into the
    segment stream.

    Optional group commit (Section 4.4): a commit force can wait for more
    committers or a timeout before issuing the write, amortizing the
    flush. With a multiprogramming level of 1 the wait always times out,
    which is why the benches leave it off by default. *)

type t

val open_log :
  ?tag:string -> Clock.t -> Stats.t -> Config.t -> Vfs.t -> path:string -> t
(** Open (or create) the log file and position at its end — found by
    scanning forward until the first torn or invalid record. [tag] names
    the stream in a multi-stream set: force latencies are additionally
    observed under ["log.<tag>.force"]. *)

val append : t -> Logrec.t -> Logrec.lsn
(** Buffer a record; returns its LSN. Charges record-formatting CPU. *)

val force : t -> upto:Logrec.lsn -> unit
(** Make everything up to and including [upto] durable (write + fsync).
    No-op if already flushed. *)

val force_commit : t -> upto:Logrec.lsn -> unit
(** A commit-time force honouring the group-commit policy: waits up to
    the configured timeout for [group_commit_size] commits to accumulate
    before issuing a single force. *)

val flushed_lsn : t -> Logrec.lsn
val next_lsn : t -> Logrec.lsn

val read_from : t -> Logrec.lsn -> (Logrec.lsn * Logrec.t) Seq.t
(** Durable records from the given LSN onward (recovery scan). *)

val truncate : t -> unit
(** Discard the entire log (used by sharp checkpoints once all dirty
    pages are flushed and no transaction is active). Waits out any
    in-flight force and holds the force mutex across the truncate, so a
    force parked in its write/fsync can neither see [flushed] reset
    under it nor start against the half-truncated file. *)
