(** LIBTP — the user-level transaction system of Section 3.

    Combines the log manager, user-level buffer pool, lock manager and
    transaction management into the conventional architecture of
    Figure 2: two-phase page-level locking, before/after-image logging
    with redo/undo recovery, STEAL/NO-FORCE buffering, and (optional)
    group commit. Everything lives in user space and synchronizes with
    user-level mutexes — two system calls each on hardware without
    test-and-set, which is the paper's explanation for the user/kernel
    performance difference.

    The environment runs on any {!Vfs.t}, which is how the same code is
    measured on both the log-structured and the read-optimized file
    systems. *)

type t

type txn

exception Conflict of int list
(** A lock request would block; the blockers' transaction ids are
    reported. With a multiprogramming level above 1 the driver decides
    how long the blocked process sleeps. *)

exception Deadlock_abort of int
(** The request would deadlock; the transaction has been aborted (locks
    released, updates undone) before the exception is raised. *)

val open_env :
  Clock.t ->
  Stats.t ->
  Config.t ->
  Vfs.t ->
  ?log_vfs:Vfs.t ->
  ?log_vfss:Vfs.t array ->
  ?pool_pages:int ->
  ?checkpoint_every:int ->
  log_path:string ->
  unit ->
  t
(** Open a transaction environment. If the logs already contain records
    (an unclean shutdown), crash recovery runs first: merge the streams
    in dependency order, redo all durable updates, undo loser
    transactions, checkpoint.
    [log_vfs] (default: the data [Vfs.t]) is the file system holding
    [log_path] — pass the file system of a dedicated log spindle to
    separate WAL forces from data traffic. With
    [Config.fs.log_streams] > 1, [log_vfss] spreads the streams across
    several spindles (stream [i] on [log_vfss.(i mod len)]); it
    overrides [log_vfs] when both are given.
    [checkpoint_every] (default 500) is the number of committed
    transactions between sharp checkpoints. *)

val begin_txn : t -> txn
val txn_id : txn -> int

val grain : t -> [ `Page | `Record ]
(** The configured locking granularity ([Config.fs.lock_grain]). *)

val read_page : t -> txn -> file:int -> page:int -> bytes
(** Shared-lock the page and return the pooled copy (read-only). *)

val write_page : t -> txn -> file:int -> page:int -> bytes -> unit
(** Exclusive-lock the page, log the changed byte range (before and
    after images), and apply it to the pool. A no-op if [bytes] equals
    the current contents. *)

(** {2 Record-grain protocol}

    At record grain the access methods lock individual records to
    commit and hold short-term page latches only across physical edits.
    The discipline: a process never parks on a {e lock} while holding
    latches — [lock_restartable] drops them first and tells the caller
    to re-run the operation — so latch holders always make progress and
    latch waits need no deadlock detection. *)

val lock_restartable :
  t -> txn -> Lockmgr.obj -> Lockmgr.mode -> [ `Granted | `Restart ]
(** Acquire a lock from inside an access-method operation. [`Restart]
    means the process had to release its latches and park: the lock is
    now held, but the operation must re-run because its page buffers may
    be stale. Raises [Deadlock_abort] after aborting the transaction if
    waiting would deadlock. *)

val latch : t -> txn -> Lockmgr.obj -> Lockmgr.mode -> unit
(** Acquire a physical latch, blocking (parked under the scheduler)
    until granted. *)

val end_op : t -> txn -> unit
(** Release every latch the transaction holds (end of one access-method
    operation). *)

val read_page_raw : t -> txn -> file:int -> page:int -> bytes
(** Pool read without a page lock (record grain: isolation comes from
    record locks, structural stability from the file latch). The read
    still feeds the transaction's cross-stream dependency vector: a
    committed reader must not survive a crash that loses the writer it
    observed. *)

val write_page_raw : t -> txn -> file:int -> page:int -> bytes -> unit
(** Logged, undoable write without a page lock (record grain). *)

val write_page_sys : t -> txn -> file:int -> page:int -> bytes -> unit
(** Redo-only system write logged as transaction 0: recovery replays it
    but never undoes it, even if [txn] aborts. *)

val commit : t -> txn -> unit
(** Force the log through this transaction's commit record (honouring
    group commit) and release its locks. With multiple streams the
    cross-stream dependency watermarks are forced durable first, then
    the commit record — carrying them as a vector LSN — is appended and
    forced on the transaction's own stream. *)

val abort : t -> txn -> unit
(** Undo the transaction's updates from its in-memory undo chain,
    log the abort, and release its locks. *)

val checkpoint : t -> unit
(** Sharp checkpoint: flush all dirty pages, truncate every log stream,
    and seed each with a fresh checkpoint record. Skipped if
    transactions are active. *)

val active_txns : t -> int
val pool : t -> Bufpool.t

val log : t -> Logmgr.t
(** Stream 0 — the whole log when [Config.fs.log_streams] is 1. *)

val logs : t -> Logset.t
val locks : t -> Lockmgr.t
val page_size : t -> int

val recovered_losers : t -> int
(** Number of loser transactions undone by recovery at [open_env]. *)
