(** User-level buffer pool (the LRU cache of database pages that LIBTP
    keeps in shared memory, Section 3).

    STEAL / NO-FORCE: dirty pages may be evicted before commit (after
    forcing the log up to the page's last update — the WAL rule) and are
    not forced at commit. Note that pages read here travel through the
    kernel's buffer cache too; that double caching is inherent to the
    user-level architecture the paper compares against. *)

type t

val create : Clock.t -> Stats.t -> Config.t -> Vfs.t -> Logset.t -> pages:int -> t

val page_size : t -> int

val get : t -> file:int -> page:int -> bytes
(** The cached page contents (loaded from the file system on a miss,
    zero-filled past end of file). The returned bytes are the pool's
    buffer: callers must treat them as read-only and go through
    {!apply_update} for changes. Charges a pool latch (user mutex). *)

val apply_update :
  t -> file:int -> page:int -> off:int -> bytes -> stream:int -> Logrec.lsn -> unit
(** Overwrite a byte range of the cached page, marking it dirty and
    recording which log stream (and LSN) describes the change. The WAL
    rule in {!flush_all} / eviction write-back forces every stream with
    an update to the page before the page reaches disk. *)

val chain : t -> file:int -> page:int -> int * Logrec.lsn
(** The page's last writer as [(stream, lsn)] — the cross-stream chain
    pointer for the page's next update record — or [(-1, null_lsn)] if
    the page has no logged update since the last checkpoint. *)

val merge_deps : t -> file:int -> page:int -> Logrec.lsn array -> unit
(** Max-merge the page's per-stream watermark vector into [deps] (the
    reading/writing transaction's dependency vector) — skipping entries
    not yet flushed in their stream: those belong to concurrent holders
    of {e other} records on the page (record-grain locking), whose bytes
    this transaction neither read nor replaced. A real dependency's
    writer committed — and so flushed — before its lock could pass on. *)

val reset_lsns : t -> unit
(** Forget all page watermarks — required after the logs are truncated
    at a checkpoint, so stale LSNs don't point past the new log end. *)

val flush_all : t -> unit
(** Write every dirty page back (checkpoint); forces the log first. *)

val drop : t -> unit
(** Forget all cached pages (crash simulation at the user level). *)

val dirty_pages : t -> int
