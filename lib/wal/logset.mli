(** A set of parallel WAL streams.

    With [Config.fs.log_streams] = N > 1, transactions are hash-assigned
    to one of N independent {!Logmgr}s — each with its own append buffer,
    force mutex and group-commit rendezvous, each placeable on its own
    spindle — so committers no longer serialize on a single append tail
    (Taurus-style parallel logging). Cross-stream ordering is captured at
    run time as vector-LSN dependencies on the records and reconstructed
    at recovery by {!merged_records}. With N = 1 this degenerates to the
    classic single log (same path, same stats keys). *)

type t

val create :
  Clock.t -> Stats.t -> Config.t -> homes:Vfs.t array -> path:string -> t
(** [create clock stats cfg ~homes ~path] opens
    [max 1 cfg.fs.log_streams] streams. Stream [i] lives on
    [homes.(i mod Array.length homes)] — pass one vfs per log spindle to
    spread the streams — at [path] (single stream) or ["path.i"]. *)

val n : t -> int
val get : t -> int -> Logmgr.t

val stream_of_txn : t -> int -> int
(** Stream assignment for a transaction id (modulo hash; ids are dense,
    so this round-robins across arrival order). *)

val force_deps : t -> own:int -> Logrec.lsn array -> unit
(** [force_deps t ~own deps] makes every cross-stream dependency
    watermark durable: for each stream [s <> own] with [deps.(s) >= 0],
    force stream [s] through [deps.(s)]. Called {e before} the commit
    record is appended to the transaction's own stream, so that the
    commit can never become durable (even via another committer's group
    force) ahead of the updates it depends on. *)

val force_all : t -> unit
(** Force every stream to its buffered end. *)

val truncate_all : t -> unit

val flushed_total : t -> int
(** Sum of durable bytes across streams — nonzero iff there is anything
    to recover. *)

val merged_records : t -> (int * Logrec.lsn * Logrec.t) list
(** The durable records of all streams, merged into one replay order
    consistent with the dependency partial order (cross-stream update
    chains and commit/abort dep vectors). A dependency pointing at or
    past a stream's durable end was lost in the crash; its value is not
    needed (after-images are absolute, and an overlapping successor
    subsumes the lost intermediate) but its order is, so it is treated
    as a dependency on that stream's entire durable portion —
    everything transitively ordered before the lost record lives in
    that prefix, and waiting for it keeps replay consistent with real
    time. Records stranded when no head is eligible (only possible for
    stream contents no real crash can produce) are dropped and counted
    under ["log.merge_dropped"]. Each element is
    [(stream, lsn, record)]. *)
