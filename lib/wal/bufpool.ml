(* Per-page log watermark. With parallel log streams a page may carry
   updates in several streams; the WAL rule then requires forcing every
   stream through its watermark before the page reaches disk. The last
   writer (stream, lsn) is the cross-stream chain pointer recorded by
   the page's next update. *)
type tag = {
  vec : Logrec.lsn array; (* per-stream highest update LSN, -1 = none *)
  mutable last_stream : int;
  mutable last_lsn : Logrec.lsn;
}

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  vfs : Vfs.t;
  logs : Logset.t;
  cache : Cache.t;
  lsns : (int * int, tag) Hashtbl.t; (* (file,page) -> log watermarks *)
  ps : int;
}

let page_size t = t.ps

let write_back t (f : Cache.frame) =
  (* WAL rule: every log stream must cover the page's last update in
     that stream before the page itself reaches disk. *)
  (match Hashtbl.find_opt t.lsns (f.Cache.file, f.Cache.lblock) with
  | Some tag ->
    Array.iteri
      (fun s lsn -> if lsn >= 0 then Logmgr.force (Logset.get t.logs s) ~upto:lsn)
      tag.vec
  | None -> ());
  t.vfs.Vfs.write f.Cache.file ~off:(f.Cache.lblock * t.ps) f.Cache.data;
  Stats.incr t.stats "pool.writebacks"

let create clock stats (cfg : Config.t) vfs logs ~pages =
  let ps = vfs.Vfs.block_size in
  let cache = Cache.create clock stats cfg.cpu ~capacity:pages in
  let t = { clock; stats; cfg; vfs; logs; cache; lsns = Hashtbl.create 256; ps } in
  Cache.set_writeback cache (fun f -> write_back t f);
  t

let latch t = Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.User_mutex

let get t ~file ~page =
  latch t;
  match Cache.lookup t.cache ~file ~lblock:page with
  | Some f -> f.Cache.data
  | None ->
    let data = Bytes.make t.ps '\000' in
    let size = t.vfs.Vfs.size file in
    if page * t.ps < size then begin
      let chunk = t.vfs.Vfs.read file ~off:(page * t.ps) ~len:t.ps in
      Bytes.blit chunk 0 data 0 (Bytes.length chunk)
    end;
    (Cache.insert t.cache ~file ~lblock:page data).Cache.data

let apply_update t ~file ~page ~off data ~stream lsn =
  latch t;
  let f =
    match Cache.lookup t.cache ~file ~lblock:page with
    | Some f -> f
    | None ->
      (* Bring the page in before patching it. *)
      ignore (get t ~file ~page);
      Option.get (Cache.lookup t.cache ~file ~lblock:page)
  in
  Bytes.blit data 0 f.Cache.data off (Bytes.length data);
  Cache.mark_dirty t.cache f;
  let tag =
    match Hashtbl.find_opt t.lsns (file, page) with
    | Some tag -> tag
    | None ->
      let tag =
        {
          vec = Array.make (Logset.n t.logs) (-1);
          last_stream = -1;
          last_lsn = Logrec.null_lsn;
        }
      in
      Hashtbl.replace t.lsns (file, page) tag;
      tag
  in
  tag.vec.(stream) <- max tag.vec.(stream) lsn;
  tag.last_stream <- stream;
  tag.last_lsn <- lsn

let chain t ~file ~page =
  match Hashtbl.find_opt t.lsns (file, page) with
  | Some tag -> (tag.last_stream, tag.last_lsn)
  | None -> (-1, Logrec.null_lsn)

let merge_deps t ~file ~page deps =
  (* A true dependency — a byte range this transaction read or overwrote
     — is always lock-serialized: its writer committed, and therefore
     forced its stream, before the lock could pass to us. An entry still
     unflushed in its stream is the other case: a concurrent holder of a
     different record on the same page (record-grain locking), whose
     bytes we neither read nor replaced. Filtering those keeps the
     commit's vector LSN to real dependencies — merging them would make
     every co-located commit force the other stream mid-rendezvous and
     serialize the streams on shared pages. The page tag keeps the full
     vector: the WAL write-back rule must cover uncommitted before-images
     regardless of who holds the locks. *)
  match Hashtbl.find_opt t.lsns (file, page) with
  | Some tag ->
    Array.iteri
      (fun s lsn ->
        if lsn > deps.(s) && lsn < Logmgr.flushed_lsn (Logset.get t.logs s)
        then deps.(s) <- lsn)
      tag.vec
  | None -> ()

let reset_lsns t = Hashtbl.reset t.lsns

let flush_all t =
  let frames = Cache.dirty_frames t.cache () in
  (match frames with [] -> () | _ -> Logset.force_all t.logs);
  let files = Hashtbl.create 8 in
  List.iter
    (fun f ->
      write_back t f;
      Cache.mark_clean t.cache f;
      Hashtbl.replace files f.Cache.file ())
    frames;
  Hashtbl.iter (fun fd () -> t.vfs.Vfs.fsync fd) files

let drop t =
  Cache.iter t.cache (fun f -> Cache.mark_clean t.cache f);
  let frames = ref [] in
  Cache.iter t.cache (fun f -> frames := f :: !frames);
  List.iter (Cache.invalidate t.cache) !frames;
  Hashtbl.reset t.lsns

let dirty_pages t = List.length (Cache.dirty_frames t.cache ())
