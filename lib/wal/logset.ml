(* A set of parallel WAL streams (Taurus-style). Each stream is a full
   Logmgr — its own append buffer, force mutex and group-commit
   rendezvous — so committers assigned to different streams no longer
   serialize on one append tail. Cross-stream ordering is recovered from
   the vector LSNs carried by the records (see merged_records). *)

type t = { streams : Logmgr.t array; stats : Stats.t }

let create clock stats cfg ~homes ~path =
  let ns = max 1 cfg.Config.fs.log_streams in
  if ns > 0xfe then invalid_arg "Logset.create: too many log streams";
  if Array.length homes = 0 then invalid_arg "Logset.create: no log homes";
  let streams =
    Array.init ns (fun i ->
        let vfs = homes.(i mod Array.length homes) in
        let path = if ns = 1 then path else Printf.sprintf "%s.%d" path i in
        let tag = if ns = 1 then None else Some (Printf.sprintf "s%d" i) in
        Logmgr.open_log ?tag clock stats cfg vfs ~path)
  in
  if ns > 1 then begin
    Stats.declare stats "log.dep_forces";
    Stats.declare stats "log.dep_checks"
  end;
  { streams; stats }

let n t = Array.length t.streams
let get t i = t.streams.(i)

(* Hash-assign transactions to streams. Txn ids are dense sequential
   integers, so modulo doubles as round-robin across workers. Txn 0
   (system/redo-only writes) is logged to the enclosing transaction's
   stream by the caller, never looked up here. *)
let stream_of_txn t id = if n t = 1 then 0 else id mod n t

(* Force every *other* stream up to the dependency watermark before the
   caller's own commit record is appended: once our commit is durable —
   possibly via another committer's group force, at any moment after the
   append — every update it depends on must be durable too. *)
let force_deps t ~own deps =
  Array.iteri
    (fun s upto ->
      if s <> own && upto >= 0 then begin
        Stats.incr t.stats "log.dep_checks";
        if upto >= Logmgr.flushed_lsn t.streams.(s) then begin
          Stats.incr t.stats "log.dep_forces";
          Logmgr.force t.streams.(s) ~upto
        end
      end)
    deps

let force_all t =
  Array.iter
    (fun lm ->
      let upto = Logmgr.next_lsn lm - 1 in
      if upto >= Logmgr.flushed_lsn lm then Logmgr.force lm ~upto)
    t.streams

let truncate_all t = Array.iter Logmgr.truncate t.streams
let flushed_total t = Array.fold_left (fun a lm -> a + Logmgr.flushed_lsn lm) 0 t.streams

(* Merge the durable streams into one replay order that respects the
   dependency partial order:

   - an Update with a cross-stream chain pointer (pstream, plsn) must
     replay after that predecessor record;
   - a Commit/Abort with dep vector entries must replay after each
     (stream, lsn) watermark it names.

   A dependency pointing at or beyond a stream's durable end names a
   record lost in the crash. Its value is not needed — after-images are
   absolute bytes, and an overlapping successor subsumes the lost
   intermediate — but its ORDER still is: the lost record had chain /
   dep edges of its own, and skipping it outright would let the
   dependent record replay ahead of durable records that real time put
   before it (e.g. the history-count chain A -> lost -> B: B's image
   must not be clobbered by A's replaying later). So a lost dependency
   is treated as a dependency on the referenced stream's entire durable
   portion: everything transitively ordered before the lost record
   lives in that prefix. This cannot deadlock for states a real crash
   can reach — a record whose dependency is lost was appended after the
   other stream's whole durable prefix (the lost record postdates it,
   and the chain points to the past), so these waits always agree with
   real-time order.

   Dep vectors are acyclic by construction (they only name records
   appended before the dependent record was appended), so the greedy
   drain below always makes progress: the head whose record was
   appended earliest — across all streams, in real time — has all its
   dependencies already merged or lost-and-drained. Records left over
   when no head is eligible can only be an illegal combination of
   suffixes (manufactured, not crash-reachable); they are dropped
   (counted under "log.merge_dropped"). *)
let merged_records t =
  let ns = n t in
  let recs =
    Array.map
      (fun lm -> Array.of_list (List.of_seq (Logmgr.read_from lm 0)))
      t.streams
  in
  (* Replay only the tail from each stream's last checkpoint, as
     single-stream recovery does. *)
  let start = Array.make ns 0 in
  Array.iteri
    (fun s rs ->
      Array.iteri
        (fun i (_, r) ->
          match r.Logrec.body with
          | Logrec.Checkpoint _ -> start.(s) <- i
          | _ -> ())
        rs)
    recs;
  let durable = Array.map Logmgr.flushed_lsn t.streams in
  let cursor = Array.copy start in
  (* End offset of the last record merged from each stream: every
     record at a strictly lower LSN has been replayed. *)
  let merged = Array.make ns 0 in
  let covered s lsn =
    s < 0 || s >= ns || lsn < 0
    || lsn < merged.(s)
    || (lsn >= durable.(s) && cursor.(s) >= Array.length recs.(s))
  in
  let eligible (r : Logrec.t) =
    match r.body with
    | Logrec.Update { pstream; plsn; _ } -> covered pstream plsn
    | Logrec.Commit { deps } | Logrec.Abort { deps } ->
      List.for_all (fun (ds, dl) -> covered ds dl) deps
    | Logrec.Begin | Logrec.Checkpoint _ -> true
  in
  let out = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    for s = 0 to ns - 1 do
      let continue = ref true in
      while !continue && cursor.(s) < Array.length recs.(s) do
        let lsn, r = recs.(s).(cursor.(s)) in
        if eligible r then begin
          out := (s, lsn, r) :: !out;
          merged.(s) <- lsn + Logrec.size r;
          cursor.(s) <- cursor.(s) + 1;
          progress := true
        end
        else continue := false
      done
    done
  done;
  let dropped = ref 0 in
  for s = 0 to ns - 1 do
    dropped := !dropped + (Array.length recs.(s) - cursor.(s))
  done;
  if !dropped > 0 then Stats.add t.stats "log.merge_dropped" !dropped;
  List.rev !out
