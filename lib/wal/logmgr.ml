type t = {
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  vfs : Vfs.t;
  fd : Vfs.fd;
  tag : string option; (* per-stream stats suffix, e.g. "s0" *)
  buf : Buffer.t; (* records appended since [flushed] *)
  mutable flushed : int; (* bytes durable on disk *)
  mutable pending_commits : int;
  (* Group-commit rendezvous state (used only under a Sched scheduler):
     committers park on [flush_cond] until [force_gen] moves past the
     generation they joined — every force, whoever triggers it,
     increments the generation after the fsync, so waking implies the
     waiter's commit record is durable. *)
  mutable force_gen : int;
  (* A force parks inside the VFS write/fsync (when the log lives on a
     simulated filesystem those are real I/O), so under a scheduler a
     second committer can arrive mid-force. Exactly one force runs at a
     time: [forcing] is the mutex bit, followers park on [flush_cond]. *)
  mutable forcing : bool;
  flush_cond : Sched.cond;
}

(* Incremental log scanning: records are streamed through a bounded
   window instead of slurping the whole file per call — [read_from] and
   [scan_end] used to read the entire log every time, which made replay
   after a long run O(log²) across the recovery loop. The window widens
   geometrically when a record straddles its end, so a scan reads each
   byte a bounded number of times. *)
let scan_chunk_bytes = 64 * 1024

let records ?stats vfs fd ~from =
  let size = vfs.Vfs.size fd in
  let fetch off want =
    let len = min want (size - off) in
    (match stats with
    | Some s ->
      Stats.add s "log.recovery_bytes_scanned" len;
      Stats.incr s "log.recovery_reads"
    | None -> ());
    (off, vfs.Vfs.read fd ~off ~len)
  in
  let rec step ~base ~buf off () =
    if off >= size then Seq.Nil
    else if off < base || off >= base + Bytes.length buf then
      let base, buf = fetch off scan_chunk_bytes in
      decode ~base ~buf off ()
    else decode ~base ~buf off ()
  and decode ~base ~buf off () =
    match Logrec.decode buf (off - base) with
    | Some (rec_, next) -> Seq.Cons ((off, rec_), step ~base ~buf (base + next))
    | None ->
      if base + Bytes.length buf >= size then Seq.Nil (* true end of log *)
      else
        (* The record may straddle the window: re-read from here with a
           wider one (doubling, so this terminates at EOF). *)
        let base, buf = fetch off (2 * (Bytes.length buf + scan_chunk_bytes)) in
        decode ~base ~buf off ()
  in
  step ~base:0 ~buf:Bytes.empty (max 0 from)

let scan_end ?stats vfs fd =
  Seq.fold_left
    (fun _ (off, rec_) -> off + Logrec.size rec_)
    0
    (records ?stats vfs fd ~from:0)

let open_log ?tag clock stats cfg vfs ~path =
  let fd =
    if vfs.Vfs.exists path then vfs.Vfs.open_file path
    else begin
      let fd = vfs.Vfs.create path in
      (* Creating the environment is a utility operation: make the log's
         directory entry durable so recovery can find it after a crash —
         fsync alone covers the file, not its name. *)
      vfs.Vfs.sync ();
      fd
    end
  in
  let tail = scan_end ~stats vfs fd in
  (* Drop any torn tail so new records append at a clean boundary. *)
  if tail < vfs.Vfs.size fd then vfs.Vfs.truncate fd tail;
  (* Group-commit histograms are part of every benchmark artifact, even
     when the run never forces (or never waits). *)
  Stats.declare stats "log.force";
  Stats.declare stats "log.commit_batch";
  Stats.declare stats "log.group_commit_wait";
  (match tag with
  | Some tag -> Stats.declare stats ("log." ^ tag ^ ".force")
  | None -> ());
  {
    clock;
    stats;
    cfg;
    vfs;
    fd;
    tag;
    buf = Buffer.create 4096;
    flushed = tail;
    pending_commits = 0;
    force_gen = 0;
    forcing = false;
    flush_cond = Sched.condition ();
  }

let flushed_lsn t = t.flushed
let next_lsn t = t.flushed + Buffer.length t.buf

let append t rec_ =
  Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Log_record;
  let lsn = next_lsn t in
  Buffer.add_bytes t.buf (Logrec.encode rec_);
  Stats.incr t.stats "log.appends";
  lsn

let do_force t =
  (* Serialize: a second fiber snapshotting the same unflushed bytes
     while the first is parked in the write/fsync would double-write
     them and double-advance [flushed]. Followers wait the in-flight
     force out, then re-check — it may already have covered them. *)
  (match Sched.of_clock t.clock with
  | Some sched when Sched.in_process sched ->
    while t.forcing do
      Sched.wait sched t.flush_cond
    done
  | _ -> ());
  if Buffer.length t.buf > 0 then begin
    t.forcing <- true;
    Fun.protect
      ~finally:(fun () -> t.forcing <- false)
      (fun () ->
        let t0 = Clock.now t.clock in
        let data = Buffer.to_bytes t.buf in
        t.vfs.Vfs.write t.fd ~off:t.flushed data;
        t.vfs.Vfs.fsync t.fd;
        t.flushed <- t.flushed + Bytes.length data;
        (* Records appended while we were parked in the write/fsync sit
           behind the snapshot: drop only the flushed prefix. *)
        let tail =
          Buffer.sub t.buf (Bytes.length data)
            (Buffer.length t.buf - Bytes.length data)
        in
        Buffer.clear t.buf;
        Buffer.add_string t.buf tail;
        if t.pending_commits > 0 then
          (* Group-commit batch size: how many committers shared this
             force. *)
          Stats.observe t.stats "log.commit_batch"
            (float_of_int t.pending_commits);
        t.pending_commits <- 0;
        Stats.incr t.stats "log.forces";
        Stats.observe t.stats "log.force" (Clock.now t.clock -. t0);
        (match t.tag with
        | Some tag ->
          Stats.observe t.stats ("log." ^ tag ^ ".force")
            (Clock.now t.clock -. t0)
        | None -> ());
        if Stats.tracing t.stats then
          Stats.emit t.stats ~time:(Clock.now t.clock) "log.force"
            [
              ("bytes", Trace.I (Bytes.length data)); ("lsn", Trace.I t.flushed);
            ];
        (* The records are on disk: release any committers parked at the
           rendezvous. Incrementing after the fsync means a woken waiter
           whose record made the snapshot is guaranteed durable. *)
        t.force_gen <- t.force_gen + 1;
        match Sched.of_clock t.clock with
        | Some sched -> Sched.broadcast sched t.flush_cond
        | None -> ())
  end

let rec force t ~upto =
  if upto >= t.flushed then begin
    do_force t;
    (* Our record may have been appended after an in-flight force's
       snapshot, in which case waiting it out left us undone: go again
       for the remainder. *)
    if upto >= t.flushed then force t ~upto
  end

let force_commit t ~upto =
  if upto >= t.flushed then begin
    (* A force already in flight snapshotted the buffer before our
       record went in: wait it out and join the NEXT batch rather than
       chasing it with a batch of one — arrivals accumulate while the
       log arm is busy, which is what fills group-commit batches at
       high MPL. *)
    (match Sched.of_clock t.clock with
    | Some sched when Sched.in_process sched ->
      while t.forcing do
        Sched.wait sched t.flush_cond
      done
    | _ -> ())
  end;
  if upto >= t.flushed then begin
    t.pending_commits <- t.pending_commits + 1;
    let timeout = t.cfg.Config.fs.group_commit_timeout_s in
    if timeout <= 0.0 || t.pending_commits >= t.cfg.Config.fs.group_commit_size
    then do_force t
    else begin
      match Sched.of_clock t.clock with
      | Some sched when Sched.in_process sched ->
        (* Real rendezvous: park until the batch fills (a later
           committer's inline force) or our batch's timeout process
           fires. The first committer of a batch arms the timeout. *)
        let gen = t.force_gen in
        let t0 = Clock.now t.clock in
        if t.pending_commits = 1 then
          Sched.spawn ~daemon:true sched (fun () ->
              Sched.delay sched timeout;
              if t.force_gen = gen then do_force t);
        while t.force_gen = gen do
          Sched.wait sched t.flush_cond
        done;
        (* The force that moved the generation snapshotted the buffer
           before parking in its write/fsync; a record appended after
           that snapshot is still volatile. Force the remainder. *)
        if upto >= t.flushed then force t ~upto;
        let waited = Clock.now t.clock -. t0 in
        Stats.add_time t.stats "log.group_commit_wait" waited;
        Stats.observe t.stats "log.group_commit_wait" waited
      | _ ->
        (* Wait for company; at MPL 1 nobody arrives and the timeout
           expires (Section 4.4). *)
        Clock.advance t.clock timeout;
        Stats.add_time t.stats "log.group_commit_wait" timeout;
        Stats.observe t.stats "log.group_commit_wait" timeout;
        do_force t
    end
  end

let read_from t lsn = records ~stats:t.stats t.vfs t.fd ~from:lsn

let truncate t =
  (* Serialize with [do_force]: a force parked inside its write/fsync
     has already snapshotted the buffer and will advance [flushed] by
     the snapshot length when it resumes — truncating under it would
     reset [flushed] to 0 only to have the force march it past the now
     empty file. Wait the in-flight force out, then hold the same mutex
     across our own (yielding) truncate/fsync so no new force starts
     against the half-truncated file. *)
  let sched =
    match Sched.of_clock t.clock with
    | Some sched when Sched.in_process sched -> Some sched
    | _ -> None
  in
  (match sched with
  | Some sched ->
    while t.forcing do
      Sched.wait sched t.flush_cond
    done
  | None -> ());
  if Buffer.length t.buf > 0 then
    invalid_arg "Logmgr.truncate: unflushed records";
  t.forcing <- true;
  Fun.protect
    ~finally:(fun () ->
      t.forcing <- false;
      match sched with
      | Some sched -> Sched.broadcast sched t.flush_cond
      | None -> ())
    (fun () ->
      t.vfs.Vfs.truncate t.fd 0;
      t.vfs.Vfs.fsync t.fd;
      t.flushed <- 0);
  Stats.incr t.stats "log.truncations"

