(** Write-ahead-log record format for the user-level transaction system.

    Records carry before- and after-images of the changed byte range
    (Section 3: "before-image and after-image logging to support both redo
    and undo recovery"), a per-transaction back-chain for undo, and a
    checksum so a torn tail write is detected as the end of the log.

    With parallel log streams ([Config.fs.log_streams] > 1), updates also
    carry a cross-stream chain pointer — the stream and LSN of the page's
    previous update when it was written under a {e different} stream — and
    commit/abort records carry a vector LSN: per-stream dependency
    watermarks. Recovery merges the streams by replaying in an order that
    respects both. *)

type lsn = int
(** Byte offset of the record in its log stream. *)

val null_lsn : lsn

type body =
  | Begin
  | Update of {
      file : int;  (** inode number of the database file *)
      page : int;
      off : int;  (** byte offset of the change within the page *)
      pstream : int;
          (** stream of the page's previous update when that writer used a
              different stream; -1 when the predecessor is in-stream (or
              the page has none). Recovery must replay the predecessor
              first. *)
      plsn : lsn;  (** LSN of that predecessor, or [null_lsn] *)
      before : bytes;
      after : bytes;  (** same length as [before] *)
    }
  | Commit of { deps : (int * lsn) list }
      (** [deps]: sparse vector LSN — for each {e other} stream this
          transaction read or overwrote pages from, the highest LSN it
          depends on. Recovery replays a commit only once every entry is
          covered. *)
  | Abort of { deps : (int * lsn) list }
  | Checkpoint of { active : int list }

type t = {
  txn : int;
  prev : lsn;  (** previous record of the same transaction, or [null_lsn] *)
  body : body;
}

val encode : t -> bytes

val decode : bytes -> int -> (t * int) option
(** [decode buf off] parses the record at [off], returning it and the
    offset just past it; [None] on a truncated, torn or corrupt record
    (which recovery treats as end of log). *)

val size : t -> int
(** Encoded size in bytes. *)
