type lsn = int

let null_lsn = -1

type body =
  | Begin
  | Update of {
      file : int;
      page : int;
      off : int;
      pstream : int;
      plsn : lsn;
      before : bytes;
      after : bytes;
    }
  | Commit of { deps : (int * lsn) list }
  | Abort of { deps : (int * lsn) list }
  | Checkpoint of { active : int list }

type t = { txn : int; prev : lsn; body : body }

let body_size = function
  | Begin -> 0
  | Update { before; after; _ } ->
    12 + 1 + 8 + 2 + Bytes.length before + 2 + Bytes.length after
  | Commit { deps } | Abort { deps } -> 2 + (9 * List.length deps)
  | Checkpoint { active } -> 2 + (4 * List.length active)

(* Header: u32 total size | u8 kind | u32 txn | i64 prev | u32 checksum. *)
let header_size = 21

let size t = header_size + body_size t.body

let kind_code = function
  | Begin -> 0
  | Update _ -> 1
  | Commit _ -> 2
  | Abort _ -> 3
  | Checkpoint _ -> 4

let checksum b off len =
  let acc = ref 0 in
  for i = off to off + len - 1 do
    acc :=
      (!acc + (Char.code (Bytes.unsafe_get b i) * (1 + ((i - off) land 0xff))))
      land 0x3fffffff
  done;
  !acc

(* Streams fit in a byte; 0xff encodes "no cross-stream predecessor". *)
let enc_stream s = if s < 0 then 0xff else s
let dec_stream s = if s = 0xff then -1 else s

let set_deps b pos deps =
  Enc.set_u16 b pos (List.length deps);
  List.iteri
    (fun i (s, l) ->
      Enc.set_u8 b (pos + 2 + (9 * i)) (enc_stream s);
      Enc.set_i64 b (pos + 3 + (9 * i)) (Int64.of_int l))
    deps

let get_deps buf pos =
  let n = Enc.get_u16 buf pos in
  List.init n (fun i ->
      ( dec_stream (Enc.get_u8 buf (pos + 2 + (9 * i))),
        Int64.to_int (Enc.get_i64 buf (pos + 3 + (9 * i))) ))

let encode t =
  let total = size t in
  let b = Bytes.make total '\000' in
  Enc.set_u32 b 0 total;
  Enc.set_u8 b 4 (kind_code t.body);
  Enc.set_u32 b 5 t.txn;
  Enc.set_i64 b 9 (Int64.of_int t.prev);
  (match t.body with
  | Begin -> ()
  | Update { file; page; off; pstream; plsn; before; after } ->
    Enc.set_u32 b 21 file;
    Enc.set_u32 b 25 page;
    Enc.set_u32 b 29 off;
    Enc.set_u8 b 33 (enc_stream pstream);
    Enc.set_i64 b 34 (Int64.of_int plsn);
    Enc.set_u16 b 42 (Bytes.length before);
    Bytes.blit before 0 b 44 (Bytes.length before);
    let apos = 44 + Bytes.length before in
    Enc.set_u16 b apos (Bytes.length after);
    Bytes.blit after 0 b (apos + 2) (Bytes.length after)
  | Commit { deps } | Abort { deps } -> set_deps b 21 deps
  | Checkpoint { active } ->
    Enc.set_u16 b 21 (List.length active);
    List.iteri (fun i txn -> Enc.set_u32 b (23 + (4 * i)) txn) active);
  Enc.set_u32 b 17 ((checksum b header_size (total - header_size) lxor (total * 2654435761)) land 0xffffffff);
  b

let decode buf off =
  let len = Bytes.length buf in
  if off + header_size > len then None
  else
    let total = Enc.get_u32 buf off in
    if total < header_size || off + total > len then None
    else
      let stored = Enc.get_u32 buf (off + 17) in
      let body_len = total - header_size in
      (* Checksum over the body, relative to the record. *)
      let sub = Bytes.sub buf off total in
      let computed =
        (checksum sub header_size body_len lxor (total * 2654435761)) land 0xffffffff
      in
      if stored land 0xffffffff <> computed land 0xffffffff then None
      else
        let txn = Enc.get_u32 buf (off + 5) in
        let prev = Int64.to_int (Enc.get_i64 buf (off + 9)) in
        let body =
          match Enc.get_u8 buf (off + 4) with
          | 0 -> Some Begin
          | 2 -> Some (Commit { deps = get_deps buf (off + 21) })
          | 3 -> Some (Abort { deps = get_deps buf (off + 21) })
          | 1 ->
            let file = Enc.get_u32 buf (off + 21) in
            let page = Enc.get_u32 buf (off + 25) in
            let boff = Enc.get_u32 buf (off + 29) in
            let pstream = dec_stream (Enc.get_u8 buf (off + 33)) in
            let plsn = Int64.to_int (Enc.get_i64 buf (off + 34)) in
            let blen = Enc.get_u16 buf (off + 42) in
            let before = Bytes.sub buf (off + 44) blen in
            let apos = off + 44 + blen in
            let alen = Enc.get_u16 buf apos in
            let after = Bytes.sub buf (apos + 2) alen in
            Some (Update { file; page; off = boff; pstream; plsn; before; after })
          | 4 ->
            let n = Enc.get_u16 buf (off + 21) in
            let active = List.init n (fun i -> Enc.get_u32 buf (off + 23 + (4 * i))) in
            Some (Checkpoint { active })
          | _ -> None
        in
        Option.map (fun body -> ({ txn; prev; body }, off + total)) body
