type system = {
  config : Config.t;
  clock : Clock.t;
  stats : Stats.t;
  disk : Diskset.t;
  lfs : Lfs.t;
  ktxn : Ktxn.t;
}

let boot ?(config = Config.default) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  (* The facade is the kernel-embedded architecture: no file system ever
     occupies a dedicated log spindle, so the checkpoint region may use it. *)
  let disk = Diskset.create ~route_checkpoints:true clock stats config in
  let lfs = Lfs.format disk clock stats config in
  { config; clock; stats; disk; lfs; ktxn = Ktxn.create lfs }

let crash sys = Lfs.crash sys.lfs

let reboot sys =
  Lfs.crash sys.lfs;
  let lfs = Lfs.mount sys.disk sys.clock sys.stats sys.config in
  { sys with lfs; ktxn = Ktxn.create lfs }

let shutdown sys = Lfs.unmount sys.lfs

let with_txn sys f =
  let txn = Ktxn.txn_begin sys.ktxn in
  match f txn with
  | result ->
    Ktxn.txn_commit sys.ktxn txn;
    result
  | exception e ->
    (match e with
    | Ktxn.Deadlock_abort _ -> () (* already aborted by the lock path *)
    | _ -> Ktxn.txn_abort sys.ktxn txn);
    raise e

(* mkdir -p for a database path's parent directories. *)
let ensure_parents (v : Vfs.t) path =
  match String.split_on_char '/' path with
  | "" :: components when components <> [] ->
    let rec go prefix = function
      | [] | [ _ ] -> ()
      | dir :: rest ->
        let p = prefix ^ "/" ^ dir in
        if not (v.Vfs.exists p) then v.Vfs.mkdir p;
        go p rest
    in
    go "" components
  | _ -> ()

let ensure_protected sys path =
  let v = Lfs.vfs sys.lfs in
  let fresh = not (v.Vfs.exists path) in
  if fresh then begin
    ensure_parents v path;
    ignore (v.Vfs.create path)
  end;
  if not (v.Vfs.stat path).Vfs.protected_ then begin
    Ktxn.protect sys.ktxn path;
    (* Creating/protecting a database is a utility operation; make the
       namespace durable so commits only depend on the data they force. *)
    Lfs.sync sys.lfs
  end

let btree sys txn ~path =
  ensure_protected sys path;
  let inum = Lfs.inum_of sys.lfs path in
  Btree.attach sys.clock sys.stats sys.config.Config.cpu
    (Ktxn.pager sys.ktxn txn ~inum)

let recno sys txn ~path ~reclen =
  ensure_protected sys path;
  let inum = Lfs.inum_of sys.lfs path in
  Recno.attach sys.clock sys.stats sys.config.Config.cpu
    (Ktxn.pager sys.ktxn txn ~inum)
    ~reclen

let hash sys txn ~path ~buckets =
  ensure_protected sys path;
  let inum = Lfs.inum_of sys.lfs path in
  Hashdb.attach sys.clock sys.stats sys.config.Config.cpu
    (Ktxn.pager sys.ktxn txn ~inum)
    ~buckets

let elapsed sys = Clock.now sys.clock
