type txn = {
  id : int;
  mutable frames : Cache.frame list; (* this transaction's dirty buffers *)
  mutable live : bool;
}

type t = {
  lfs : Lfs.t;
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  locks : Lockmgr.t; (* the lock table hanging off the file-system state *)
  active_tbl : (int, txn) Hashtbl.t;
  mutable next_id : int;
  mutable pending_commits : (txn * Cache.frame list) list; (* group commit *)
  mutable pending_deadline : float; (* flush time of the oldest pending *)
  (* Scheduler-mode state. [parked]: processes blocked in [lock], keyed
     by txn id, woken by the lock manager's waker. [flush_gen] /
     [commit_cond]: the group-commit rendezvous — committers park until
     the generation moves past the one they joined; every flush bumps it
     after the frames are durable. *)
  parked : (int, Sched.cond) Hashtbl.t;
  mutable flush_gen : int;
  (* [Lfs.force_frames] parks in disk I/O under the scheduler, so a
     flush is not atomic: [flushing] is the mutex bit that keeps a
     second flush (size trigger or timeout daemon) from running under
     the first, and each flush claims its batch out of
     [pending_commits] before yielding. *)
  mutable flushing : bool;
  commit_cond : Sched.cond;
}

exception Conflict of int list
exception Deadlock_abort of int
exception Too_large

let create lfs =
  let clock = Lfs.clock lfs in
  let stats = Lfs.stats lfs in
  let cfg = Lfs.config lfs in
  (* Group-commit histograms exist even in runs that never defer. *)
  Stats.declare stats "ktxn.commit_batch";
  Stats.declare stats "ktxn.group_commit_wait";
  let t =
    {
      lfs;
      clock;
      stats;
      cfg;
      locks =
        Lockmgr.create ~escalation:cfg.Config.fs.lock_escalation clock stats
          cfg.Config.cpu;
      active_tbl = Hashtbl.create 16;
      next_id = 1;
      pending_commits = [];
      pending_deadline = 0.0;
      parked = Hashtbl.create 8;
      flush_gen = 0;
      flushing = false;
      commit_cond = Sched.condition ();
    }
  in
  Lockmgr.set_waker t.locks
    (Some
       (fun txnid ->
         match Hashtbl.find_opt t.parked txnid with
         | Some c -> (
           match Sched.of_clock clock with
           | Some sched -> Sched.broadcast sched c
           | None -> ())
         | None -> ()));
  t

let lfs t = t.lfs
let locks t = t.locks
let txn_id txn = txn.id
let active t = Hashtbl.length t.active_tbl

let syscall t = Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Syscall
let kmutex t = Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Kernel_mutex

let protect t path =
  let v = Lfs.vfs t.lfs in
  v.Vfs.set_protected path true

let unprotect t path =
  let v = Lfs.vfs t.lfs in
  v.Vfs.set_protected path false

(* Forward reference: group-commit flushing is defined with commit below,
   but transaction begin must settle any deferred commits first. *)
let settle_pending_ref = ref (fun _ -> ())

let txn_begin t =
  !settle_pending_ref t;
  syscall t;
  kmutex t;
  let id = t.next_id in
  t.next_id <- id + 1;
  let txn = { id; frames = []; live = true } in
  Hashtbl.replace t.active_tbl id txn;
  Stats.incr t.stats "ktxn.begins";
  txn

let check_live txn =
  if not txn.live then invalid_arg "Ktxn: transaction already finished"

let release t txn =
  Lockmgr.release_all t.locks ~txn:txn.id;
  Hashtbl.remove t.active_tbl txn.id;
  txn.live <- false

let do_abort t txn =
  let cache = Lfs.cache t.lfs in
  List.iter
    (fun f ->
      Cache.set_txn cache f (-1);
      (* Dropping the buffer exposes the on-disk before-image — no log
         needed, courtesy of the no-overwrite policy. *)
      Cache.invalidate cache f)
    txn.frames;
  txn.frames <- [];
  release t txn;
  Stats.incr t.stats "ktxn.aborts"

(* Under the scheduler the process really is descheduled and left
   sleeping (Section 4.2): park until the lock manager's waker reports
   our wait edges cleared, then retry the acquire. *)
let rec block_lock t sched txn obj mode =
  Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Context_switch;
  Stats.incr t.stats "ktxn.lock_blocks";
  let c = Sched.condition () in
  Hashtbl.replace t.parked txn.id c;
  let t0 = Clock.now t.clock in
  Sched.wait sched c;
  Hashtbl.remove t.parked txn.id;
  let dt = Clock.now t.clock -. t0 in
  Stats.add_time t.stats "ktxn.lock_wait" dt;
  Stats.observe t.stats "ktxn.lock_wait" dt;
  match Lockmgr.acquire t.locks ~txn:txn.id obj mode with
  | `Granted -> ()
  | `Would_block _ -> block_lock t sched txn obj mode
  | `Deadlock ->
    do_abort t txn;
    raise (Deadlock_abort txn.id)

let lock_obj t txn obj mode =
  kmutex t;
  match Lockmgr.acquire t.locks ~txn:txn.id obj mode with
  | `Granted -> ()
  | `Would_block blockers -> (
    match Sched.of_clock t.clock with
    | Some sched when Sched.in_process sched ->
      block_lock t sched txn obj mode
    | _ ->
      (* The process would be descheduled and left sleeping
         (Section 4.2); at MPL 1 we charge the switch and bounce the
         caller instead. *)
      Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Context_switch;
      raise (Conflict blockers))
  | `Deadlock ->
    do_abort t txn;
    raise (Deadlock_abort txn.id)

let lock t txn ~inum ~page mode = lock_obj t txn (Lockmgr.Page (inum, page)) mode

let read_page t txn ~inum ~page =
  check_live txn;
  syscall t;
  if Lfs.is_protected t.lfs inum then
    lock t txn ~inum ~page Lockmgr.Shared;
  let f = Lfs.get_page t.lfs ~inum ~lblock:page in
  f.Cache.data

let write_page t txn ~inum ~page data =
  check_live txn;
  syscall t;
  let protected_ = Lfs.is_protected t.lfs inum in
  if protected_ then lock t txn ~inum ~page Lockmgr.Exclusive;
  let cache = Lfs.cache t.lfs in
  let f =
    try Lfs.get_page t.lfs ~inum ~lblock:page
    with Cache.Cache_full -> raise Too_large
  in
  Bytes.blit data 0 f.Cache.data 0 (Bytes.length data);
  Lfs.page_dirty t.lfs f;
  Lfs.extend_to t.lfs ~inum ((page + 1) * Bytes.length data);
  if protected_ && f.Cache.txn <> txn.id then begin
    Cache.set_txn cache f txn.id;
    txn.frames <- f :: txn.frames
  end;
  Stats.incr t.stats "ktxn.page_writes"

let flush_pending t =
  (* Wait out an in-flight flush first: it already claimed its batch,
     and running under it would re-release (without forcing) whatever
     committers enqueued while it was parked in the disk I/O. *)
  (match Sched.of_clock t.clock with
  | Some sched when Sched.in_process sched ->
    while t.flushing do
      Sched.wait sched t.commit_cond
    done
  | _ -> ());
  if t.pending_commits <> [] then begin
    (* Claim the batch before the first yield: committers arriving
       during [Lfs.force_frames] belong to the NEXT flush. *)
    let pending = t.pending_commits in
    t.pending_commits <- [];
    t.flushing <- true;
    Fun.protect
      ~finally:(fun () ->
        t.flushing <- false;
        (* Release committers parked at the rendezvous — each re-checks
           whether its own transaction was in the flushed batch. *)
        t.flush_gen <- t.flush_gen + 1;
        match Sched.of_clock t.clock with
        | Some sched -> Sched.broadcast sched t.commit_cond
        | None -> ())
      (fun () ->
        let cache = Lfs.cache t.lfs in
        let batch = List.length pending in
        let all_frames =
          List.concat_map
            (fun (_, frames) ->
              List.iter (fun f -> Cache.set_txn cache f (-1)) frames;
              frames)
            pending
        in
        (* Frames may have been superseded if two pending transactions
           touched the same page; de-duplicate while preserving order. *)
        let seen = Hashtbl.create 16 in
        let frames =
          List.filter
            (fun (f : Cache.frame) ->
              let k = (f.Cache.file, f.Cache.lblock) in
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                f.Cache.resident && f.Cache.dirty
              end)
            all_frames
        in
        Lfs.force_frames t.lfs frames;
        List.iter (fun (txn, _) -> release t txn) pending;
        Stats.incr t.stats "ktxn.group_flushes";
        Stats.observe t.stats "ktxn.commit_batch" (float_of_int batch);
        if Stats.tracing t.stats then
          Stats.emit t.stats ~time:(Clock.now t.clock) "ktxn.group_flush"
            [ ("batch", Trace.I batch); ("frames", Trace.I (List.length frames)) ])
  end

(* Committers deferred by group commit sleep until the timeout expires;
   any later event past that point (a new transaction, an explicit
   flush) implies the flush happened first. *)
let settle_pending t =
  (* Under a scheduler the batch is owned by the rendezvous (a timeout
     process flushes it); the legacy fast-forward would flush early and
     double-release. *)
  if Option.is_none (Sched.of_clock t.clock) && t.pending_commits <> [] then begin
    let wait = t.pending_deadline -. Clock.now t.clock in
    if wait > 0.0 then Stats.observe t.stats "ktxn.group_commit_wait" wait;
    Clock.sleep_until t.clock t.pending_deadline;
    flush_pending t
  end

let () = settle_pending_ref := settle_pending

let flush_commits t = if t.pending_commits <> [] then flush_pending t

let txn_commit t txn =
  check_live txn;
  syscall t;
  kmutex t;
  let was_empty = t.pending_commits = [] in
  t.pending_commits <- (txn, txn.frames) :: t.pending_commits;
  txn.frames <- [];
  Stats.incr t.stats "ktxn.commits";
  let timeout = t.cfg.Config.fs.group_commit_timeout_s in
  if was_empty then
    t.pending_deadline <- Clock.now t.clock +. Float.max 0.0 timeout;
  if
    timeout <= 0.0
    || List.length t.pending_commits >= t.cfg.Config.fs.group_commit_size
  then flush_pending t
  else
    match Sched.of_clock t.clock with
    | Some sched when Sched.in_process sched ->
      (* Real rendezvous (Section 4.4): park until the batch fills — a
         later committer's inline flush — or this batch's timeout
         process fires. The first committer arms the timeout. Waking is
         keyed on our own transaction's release, not the flush
         generation: a flush that was already in flight when we
         enqueued bumps the generation without covering us. *)
      if was_empty then
        Sched.spawn ~daemon:true sched (fun () ->
            Sched.delay sched timeout;
            if txn.live then flush_pending t);
      let t0 = Clock.now t.clock in
      while txn.live do
        Sched.wait sched t.commit_cond
      done;
      let waited = Clock.now t.clock -. t0 in
      Stats.add_time t.stats "ktxn.group_commit_wait" waited;
      Stats.observe t.stats "ktxn.group_commit_wait" waited
    | _ ->
      (* At MPL 1 the committing process sleeps; the deferred batch is
         settled by the next event (see [settle_pending]). *)
      ()

let txn_abort t txn =
  check_live txn;
  syscall t;
  kmutex t;
  do_abort t txn

(* The kernel pager keeps page-exclusive writes even at record grain:
   abort works by invalidating this transaction's dirty frames (the
   no-overwrite policy exposes the before-image), which cannot tolerate
   two transactions sharing one dirty frame, and group commit forces
   whole frames. Record grain therefore only adds shared record locks
   (with their intention-mode ancestors) on the read path; the physical
   page locks taken by [get]/[put] already serialize structure changes,
   so the latch hooks stay no-ops. *)
let pager t txn ~inum =
  let base =
    Pager.nohooks
      ~page_size:(Lfs.vfs t.lfs).Vfs.block_size
      (fun page -> read_page t txn ~inum ~page)
      (fun page data -> write_page t txn ~inum ~page data)
  in
  if t.cfg.Config.fs.lock_grain = `Page then base
  else
    {
      base with
      Pager.record_grain = true;
      lock_rec =
        (fun ~page ~recno ~write ->
          if (not write) && Lfs.is_protected t.lfs inum then
            lock_obj t txn (Lockmgr.Rec (inum, page, recno)) Lockmgr.Shared);
    }
