(** Public facade: boot a simulated machine with a log-structured file
    system and the embedded transaction manager, and open transactional
    access methods on it.

    This is the API the examples and benchmarks use:

    {[
      let sys = Core.boot () in
      let v = Lfs.vfs sys.lfs in
      ignore (v.Vfs.create "/accounts");
      Ktxn.protect sys.ktxn "/accounts";
      Core.with_txn sys (fun txn ->
          let bt = Core.btree sys txn ~path:"/accounts" in
          Btree.insert bt "alice" "100")
    ]}

    Lower-level pieces ({!Lfs}, {!Ktxn}, {!Disk}, {!Libtp}, …) remain
    fully accessible for anything the facade does not cover. *)

type system = {
  config : Config.t;
  clock : Clock.t;
  stats : Stats.t;
  disk : Diskset.t;  (** one or more spindles, per [config.fs.ndisks] *)
  lfs : Lfs.t;
  ktxn : Ktxn.t;
}

val boot : ?config:Config.t -> unit -> system
(** A fresh machine: simulated clock and disk, newly formatted LFS,
    embedded transaction manager attached. *)

val crash : system -> unit
(** Power failure: volatile state is gone; the disk image remains. *)

val reboot : system -> system
(** Crash (if not already crashed), then mount with full recovery and a
    fresh transaction manager on the same disk. *)

val shutdown : system -> unit
(** Orderly unmount (flush + checkpoint). *)

val with_txn : system -> (Ktxn.txn -> 'a) -> 'a
(** Run a function inside a transaction: commits on return, aborts if it
    raises (and re-raises). *)

val btree : system -> Ktxn.txn -> path:string -> Btree.t
(** Open (or create) a transaction-protected B-tree at [path], bound to
    the given transaction. *)

val recno : system -> Ktxn.txn -> path:string -> reclen:int -> Recno.t

val hash : system -> Ktxn.txn -> path:string -> buckets:int -> Hashdb.t

val elapsed : system -> float
(** Simulated seconds since boot of this [system] value. *)
