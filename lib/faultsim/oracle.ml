(* Durability oracle: an in-memory model of what a crash is allowed to
   leave behind.

   The workload driver records its logical operation trace — setup
   writes, transaction begin/write/commit/abort, with commit and abort
   split into a "start" (the call was issued) and a "done" (the call
   returned, i.e. the outcome was acknowledged). After the crash and
   recovery, [check] replays the trace into a page-image model and
   compares it with what the recovered file system actually serves:

   - every acknowledged commit must be fully visible;
   - no write of an aborted or unfinished transaction may be visible;
   - the at-most-one commit that was in flight when the power died may
     land either way, but atomically — all of its pages or none;
   - bytes past the modelled extent must be zero (a crash may leave a
     file longer than its committed data, e.g. after an abort rolled
     back an append, but never with uncommitted contents). *)

type event =
  | Setup_write of { file : string; page : int; data : bytes }
  | Txn_begin of int
  | Txn_write of { txn : int; file : string; page : int; data : bytes }
  | Commit_start of int
  | Commit_done of int
  | Abort_start of int
  | Abort_done of int

type t = { page_size : int; mutable events : event list (* newest first *) }

let create ~page_size = { page_size; events = [] }
let record t e = t.events <- e :: t.events

type violation = { file : string; page : int; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s page %d: %s" v.file v.page v.detail

let bytes_zero b =
  let ok = ref true in
  Bytes.iter (fun c -> if c <> '\000' then ok := false) b;
  !ok

let check t ~read_page ~size =
  let events = List.rev t.events in
  let committed_txns = Hashtbl.create 16 in
  let commit_started = Hashtbl.create 16 in
  let abort_started = Hashtbl.create 16 in
  List.iter
    (function
      | Commit_done id -> Hashtbl.replace committed_txns id ()
      | Commit_start id -> Hashtbl.replace commit_started id ()
      | Abort_start id -> Hashtbl.replace abort_started id ()
      | _ -> ())
    events;
  (* The commit interrupted by the crash, if any. A sequential workload
     has at most one: every earlier commit was acknowledged. *)
  let inflight =
    Hashtbl.fold
      (fun id () acc ->
        if Hashtbl.mem committed_txns id || Hashtbl.mem abort_started id then
          acc
        else
          match acc with
          | None -> Some id
          | Some _ -> invalid_arg "Oracle.check: two in-flight commits"
      )
      commit_started None
  in
  (* Replay: committed page images in trace order, plus the in-flight
     transaction's writes as an overlay. Writes of aborted or unfinished
     transactions must simply never surface. *)
  let committed = Hashtbl.create 64 in
  let overlay = Hashtbl.create 16 in
  let files = Hashtbl.create 8 in
  List.iter
    (function
      | Setup_write { file; page; data } ->
        Hashtbl.replace files file ();
        Hashtbl.replace committed (file, page) data
      | Txn_write { txn; file; page; data } ->
        Hashtbl.replace files file ();
        if Hashtbl.mem committed_txns txn then
          Hashtbl.replace committed (file, page) data
        else if inflight = Some txn then Hashtbl.replace overlay (file, page) data
      | _ -> ())
    events;
  let ps = t.page_size in
  let violations = ref [] in
  let violate file page fmt =
    Format.kasprintf
      (fun detail -> violations := { file; page; detail } :: !violations)
      fmt
  in
  (* Atomicity vote: across every page (and file) the disk must show
     either the pre-commit state (A) or the post-commit state (B) of the
     in-flight transaction — never a mixture. *)
  let vote = ref None in
  let cast file page b =
    match !vote with
    | None -> vote := Some b
    | Some prev ->
      if prev <> b then
        violate file page
          "torn in-flight commit: some pages show the new state, others the old"
  in
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) committed []
    @ Hashtbl.fold
        (fun k _ acc -> if Hashtbl.mem committed k then acc else k :: acc)
        overlay []
    |> List.sort_uniq compare
  in
  List.iter
    (fun ((file, page) as k) ->
      let actual = read_page file page in
      let zeros = Bytes.make ps '\000' in
      let expect_a =
        match Hashtbl.find_opt committed k with Some d -> d | None -> zeros
      in
      let expect_b =
        match Hashtbl.find_opt overlay k with Some d -> d | None -> expect_a
      in
      if Bytes.equal expect_a expect_b then begin
        if not (Bytes.equal actual expect_a) then
          violate file page "committed data lost or corrupted"
      end
      else if Bytes.equal actual expect_a then cast file page false
      else if Bytes.equal actual expect_b then cast file page true
      else
        violate file page
          "contents match neither the committed state nor the in-flight commit")
    keys;
  (* Extent checks: committed data must fit inside the recovered size,
     and anything past the modelled extent must read as zeros. *)
  let extent tbl file =
    Hashtbl.fold
      (fun (f, p) _ acc -> if f = file then max acc ((p + 1) * ps) else acc)
      tbl 0
  in
  Hashtbl.iter
    (fun file () ->
      let e_committed = extent committed file in
      let e_model =
        if !vote = Some true then max e_committed (extent overlay file)
        else e_committed
      in
      let s = size file in
      if s < e_committed then
        violate file (e_committed / ps - 1)
          "file shorter than its committed data (size %d < %d)" s e_committed;
      let first = e_model / ps and last = (s + ps - 1) / ps - 1 in
      for p = first to last do
        if not (Hashtbl.mem committed (file, p) || Hashtbl.mem overlay (file, p))
        then
          if not (bytes_zero (read_page file p)) then
            violate file p "junk past the modelled extent"
      done)
    files;
  List.rev !violations
