(* Deterministic fault injection over a simulated disk.

   Arming installs a Disk injector that (a) kills the machine after
   exactly the Nth block write since arming — a multi-block request
   crossing the boundary tears there, persisting only its leading
   blocks — and (b) fails reads transiently from a seeded Rng. Nothing
   here draws on wall-clock state, so a (seed, crash_point) pair replays
   the identical failure, block for block. *)

type t = {
  disks : Diskset.t;
  crash_after : int option;
  read_error_rate : float;
  rng : Rng.t option;
  mutable writes : int;
  mutable crashed : bool;
  mutable last_read_failed : bool;
}

let writes t = t.writes
let crashed t = t.crashed

let on_write t ~blkno:_ ~nblocks =
  let before = t.writes in
  t.writes <- before + nblocks;
  match t.crash_after with
  | Some n when before + nblocks > n ->
    t.crashed <- true;
    max 0 (n - before)
  | _ -> nblocks

(* Never fail the same request twice in a row: the device's retry loop
   must terminate, modelling an error that clears on the next
   revolution. *)
let on_read t ~blkno:_ ~nblocks:_ =
  match t.rng with
  | Some rng
    when t.read_error_rate > 0.0
         && (not t.last_read_failed)
         && Rng.float rng 1.0 < t.read_error_rate ->
    t.last_read_failed <- true;
    true
  | _ ->
    t.last_read_failed <- false;
    false

let arm ?crash_after ?(read_error_rate = 0.0) ?rng disks =
  if read_error_rate > 0.0 && rng = None then
    invalid_arg "Faultsim.arm: read errors need an rng";
  let t =
    {
      disks;
      crash_after;
      read_error_rate;
      rng;
      writes = 0;
      crashed = false;
      last_read_failed = false;
    }
  in
  (* One injector closure shared by every spindle: the write counter
     advances in global issue order across the whole set, so a crash
     point means "the Nth block the machine persisted", wherever it
     landed. *)
  Diskset.set_injector disks
    (Some
       {
         Disk.on_write = (fun ~blkno ~nblocks -> on_write t ~blkno ~nblocks);
         on_read = (fun ~blkno ~nblocks -> on_read t ~blkno ~nblocks);
       });
  t

let disarm t = Diskset.set_injector t.disks None
