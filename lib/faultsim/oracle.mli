(** Durability oracle for crash-point sweeps.

    A workload driver records its logical operation trace; after the
    injected crash and recovery, {!check} replays the trace into an
    in-memory page model and asserts the durability invariant: every
    acknowledged commit fully visible, no aborted or unfinished
    transaction's write visible, the single in-flight commit all-or-
    nothing, and nothing but zeros past the modelled extent. *)

type event =
  | Setup_write of { file : string; page : int; data : bytes }
      (** non-transactional preparation, made durable before arming *)
  | Txn_begin of int
  | Txn_write of { txn : int; file : string; page : int; data : bytes }
  | Commit_start of int  (** commit issued — may land either way *)
  | Commit_done of int  (** commit acknowledged — must be durable *)
  | Abort_start of int
  | Abort_done of int

type t

val create : page_size:int -> t
val record : t -> event -> unit

type violation = { file : string; page : int; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check :
  t -> read_page:(string -> int -> bytes) -> size:(string -> int) ->
  violation list
(** Compare the recovered state with the model. [read_page file page]
    must return exactly one page, zero-padded past end of file; [size]
    the recovered byte size. Returns all violations found ([] = the
    invariant held). *)
