(* Crash-point sweeps: run a seeded transactional workload, cut the
   power after exactly the Nth block write, recover, and ask the oracle
   whether the durability invariant survived. Sweeping N across every
   write in the run turns crash consistency into an exhaustively checked
   property; any failure is replayable from its (seed, crash_point). *)

type backend = Lfs_kernel | Lfs_user | Ffs_user

let backend_name = function
  | Lfs_kernel -> "lfs-kernel"
  | Lfs_user -> "lfs-user"
  | Ffs_user -> "ffs-user"

let backend_of_string = function
  | "lfs-kernel" -> Lfs_kernel
  | "lfs-user" -> Lfs_user
  | "ffs-user" -> Ffs_user
  | s -> invalid_arg ("Sweep: unknown backend " ^ s)

(* A small machine: enough segments for the cleaner and checkpoints to
   take part, a cache smaller than the data, and — essential for the
   oracle — group commit disabled, so a commit's acknowledgement implies
   its flush completed. *)
let config ?(ndisks = 1) ?(log_disk = false) ?(log_streams = 1)
    ?(lock_grain = `Page) ?(nblocks = 4096) backend =
  let d = Config.default in
  {
    d with
    Config.disk = { d.Config.disk with nblocks; blocks_per_cylinder = 16 };
    fs =
      {
        d.Config.fs with
        kernel_txn = backend = Lfs_kernel;
        segment_blocks = 32;
        cache_blocks = 128;
        cleaner_low_segments = 6;
        cleaner_high_segments = 12;
        checkpoint_segments = 4;
        syncer_interval_s = 1.0;
        group_commit_timeout_s = 0.0;
        ndisks;
        log_disk;
        log_streams;
        lock_grain;
      };
  }

(* Boot the spindles for a sweep machine. Only the kernel backend leaves
   a dedicated log spindle bare (no WAL file system), so only it may
   route the LFS checkpoint region there. *)
let sweep_disks backend clock stats cfg =
  Diskset.create ~route_checkpoints:(backend = Lfs_kernel) clock stats cfg

let fsck_or_fail label fs' =
  let rep = Ffs.fsck fs' in
  if rep.Ffs.cross_allocated > 0 then
    failwith
      (Printf.sprintf "%s: %d cross-allocated blocks" label
         rep.Ffs.cross_allocated)

(* The WAL's home file systems: a small FFS per dedicated log spindle
   when the config grants them (user backends only — the kernel backend
   has no WAL; with [log_streams] > 1 there is one spindle per stream),
   else the data file system itself. [remount] replays a crash on each
   spindle: mount + bitmap rebuild, like any FFS. *)
type log_home = { log_fs : Ffs.t ref; log_spindle : Disk.t }

let make_log_homes backend clock stats cfg disks =
  match backend with
  | Lfs_kernel -> [||]
  | _ ->
    Array.map
      (fun ld -> { log_fs = ref (Ffs.format ld clock stats cfg); log_spindle = ld })
      (Diskset.log_disks disks)

let crash_log_homes homes = Array.iter (fun h -> Ffs.crash !(h.log_fs)) homes

let remount_log_homes clock stats cfg homes =
  Array.iter
    (fun h ->
      let fs' = Ffs.mount h.log_spindle clock stats cfg in
      fsck_or_fail "log fsck" fs';
      h.log_fs := fs')
    homes

let log_home_vfss homes =
  if Array.length homes = 0 then None
  else Some (Array.map (fun h -> Ffs.vfs !(h.log_fs)) homes)

type outcome = {
  backend : backend;
  seed : int;
  crash_point : int option;
  writes : int;  (** block writes observed while armed *)
  crashed : bool;
  violations : string list;  (** empty = the invariant held *)
}

let describe o =
  let cp =
    match o.crash_point with None -> "none" | Some p -> string_of_int p
  in
  match o.violations with
  | [] ->
    Printf.sprintf "[%s] seed=%d crash_point=%s: ok (%d writes, crashed=%b)"
      (backend_name o.backend) o.seed cp o.writes o.crashed
  | vs ->
    Printf.sprintf
      "[%s] DURABILITY VIOLATION at (seed=%d, crash_point=%s):\n  %s\n\
      \  replay with: --backend %s --seed %d --crash-point %s"
      (backend_name o.backend) o.seed cp
      (String.concat "\n  " vs)
      (backend_name o.backend) o.seed cp

(* Page-level workload ---------------------------------------------------- *)

let files = [ "/acct"; "/tell"; "/branch"; "/hist" ]
let npages = 8

(* A page filled with a repeated seed/stamp tag: cheap, deterministic,
   and distinct for every write of the run. *)
let page_image ~ps ~seed ~stamp =
  let b = Bytes.make ps '\000' in
  let tag = Printf.sprintf "#%d:%d#" seed stamp in
  let tl = String.length tag in
  let i = ref 0 in
  while !i < ps do
    let n = min tl (ps - !i) in
    Bytes.blit_string tag 0 b !i n;
    i := !i + n
  done;
  b

type txn_ops = {
  id : int;
  twrite : string -> int -> bytes -> unit;
  tread : string -> int -> bytes;
  tcommit : unit -> unit;
  tabort : unit -> unit;
}

type recovered = {
  rread : string -> int -> bytes;  (* one page, zero-padded *)
  rsize : string -> int;
  structural : unit -> unit;  (* raises on structural corruption *)
}

type session = { begin_txn : unit -> txn_ops; recover : unit -> recovered }

let pad_page ps b =
  if Bytes.length b = ps then b
  else begin
    let out = Bytes.make ps '\000' in
    Bytes.blit b 0 out 0 (min ps (Bytes.length b));
    out
  end

let vfs_reader ps (v : Vfs.t) structural =
  {
    rread =
      (fun f p ->
        pad_page ps (v.Vfs.read (v.Vfs.open_file f) ~off:(p * ps) ~len:ps));
    rsize = (fun f -> v.Vfs.size (v.Vfs.open_file f));
    structural;
  }

(* Create the working files and give every page committed initial
   contents, recorded as setup writes; the caller makes them durable
   before arming the injector. *)
let setup_pages oracle model fresh_page (v : Vfs.t) ps =
  List.iter
    (fun path ->
      let fd = v.Vfs.create path in
      for p = 0 to npages - 1 do
        let data = fresh_page () in
        v.Vfs.write fd ~off:(p * ps) data;
        Hashtbl.replace model (path, p) data;
        Oracle.record oracle (Oracle.Setup_write { file = path; page = p; data })
      done)
    files;
  ignore ps

let session_lfs_kernel clock stats disks cfg oracle model fresh_page =
  let ps = cfg.Config.disk.block_size in
  let fs = Lfs.format disks clock stats cfg in
  let v = Lfs.vfs fs in
  setup_pages oracle model fresh_page v ps;
  let kt = Ktxn.create fs in
  List.iter (fun f -> Ktxn.protect kt f) files;
  Lfs.sync fs;
  let inums = List.map (fun f -> (f, Lfs.inum_of fs f)) files in
  let inum f = List.assoc f inums in
  {
    begin_txn =
      (fun () ->
        let h = Ktxn.txn_begin kt in
        {
          id = Ktxn.txn_id h;
          twrite = (fun f p d -> Ktxn.write_page kt h ~inum:(inum f) ~page:p d);
          tread =
            (fun f p -> Bytes.copy (Ktxn.read_page kt h ~inum:(inum f) ~page:p));
          tcommit = (fun () -> Ktxn.txn_commit kt h);
          tabort = (fun () -> Ktxn.txn_abort kt h);
        });
    recover =
      (fun () ->
        Lfs.crash fs;
        let fs' = Lfs.mount disks clock stats cfg in
        vfs_reader ps (Lfs.vfs fs') (fun () -> Lfs.check fs'));
  }

let session_libtp backend clock stats disks cfg oracle model fresh_page ~on_lfs =
  let ps = cfg.Config.disk.block_size in
  let homes = make_log_homes backend clock stats cfg disks in
  let log_path = if Array.length homes = 0 then "/wal.log" else "/log" in
  let open_env v =
    Libtp.open_env clock stats cfg v ?log_vfss:(log_home_vfss homes)
      ~pool_pages:16 ~checkpoint_every:25 ~log_path ()
  in
  let crash_fs, mount_fs, v =
    if on_lfs then begin
      let fs = Lfs.format disks clock stats cfg in
      ( (fun () -> Lfs.crash fs),
        (fun () ->
          let fs' = Lfs.mount disks clock stats cfg in
          (Lfs.vfs fs', fun () -> Lfs.check fs')),
        Lfs.vfs fs )
    end
    else begin
      let fs = Ffs.format (Diskset.primary disks) clock stats cfg in
      ( (fun () -> Ffs.crash fs),
        (fun () ->
          let fs' = Ffs.mount (Diskset.primary disks) clock stats cfg in
          (* The on-disk bitmap is stale after any crash (delayed
             writes); rebuild it from the inodes before anything
             allocates. Cross-allocation would be real corruption. *)
          fsck_or_fail "fsck" fs';
          (Ffs.vfs fs', fun () -> fsck_or_fail "fsck" fs')),
        Ffs.vfs fs )
    end
  in
  setup_pages oracle model fresh_page v ps;
  v.Vfs.sync ();
  Array.iter (fun h -> (Ffs.vfs !(h.log_fs)).Vfs.sync ()) homes;
  let env = open_env v in
  let fd = List.map (fun f -> (f, v.Vfs.open_file f)) files in
  let fd f = List.assoc f fd in
  {
    begin_txn =
      (fun () ->
        let h = Libtp.begin_txn env in
        {
          id = Libtp.txn_id h;
          twrite = (fun f p d -> Libtp.write_page env h ~file:(fd f) ~page:p d);
          tread =
            (fun f p -> Bytes.copy (Libtp.read_page env h ~file:(fd f) ~page:p));
          tcommit = (fun () -> Libtp.commit env h);
          tabort = (fun () -> Libtp.abort env h);
        });
    recover =
      (fun () ->
        crash_fs ();
        crash_log_homes homes;
        remount_log_homes clock stats cfg homes;
        let v', structural = mount_fs () in
        (* Re-opening the environment replays the log: redo committed
           updates, undo losers, checkpoint (which flushes the pool, so
           plain file reads below see recovered state). *)
        ignore (open_env v');
        vfs_reader ps v' structural);
  }

let make_session backend clock stats disks cfg oracle model fresh_page =
  match backend with
  | Lfs_kernel -> session_lfs_kernel clock stats disks cfg oracle model fresh_page
  | Lfs_user ->
    session_libtp backend clock stats disks cfg oracle model fresh_page
      ~on_lfs:true
  | Ffs_user ->
    session_libtp backend clock stats disks cfg oracle model fresh_page
      ~on_lfs:false

(* One transaction mixes a few page writes with reads that are verified
   live against the acknowledged model (committed state + own writes) —
   so corruption visible before any crash is caught too. *)
let run_pages session oracle rng fresh_page model ~ps ~txns =
  let zeros = Bytes.make ps '\000' in
  for _ = 1 to txns do
    let t = session.begin_txn () in
    Oracle.record oracle (Oracle.Txn_begin t.id);
    let pending = Hashtbl.create 4 in
    let nops = 1 + Rng.int rng 4 in
    for _ = 1 to nops do
      let f = List.nth files (Rng.int rng (List.length files)) in
      let p = Rng.int rng npages in
      if Rng.int rng 4 = 0 then begin
        let actual = t.tread f p in
        let expected =
          match Hashtbl.find_opt pending (f, p) with
          | Some d -> d
          | None -> (
            match Hashtbl.find_opt model (f, p) with
            | Some d -> d
            | None -> zeros)
        in
        if not (Bytes.equal actual expected) then
          failwith (Printf.sprintf "live read of %s page %d diverged" f p)
      end
      else begin
        let d = fresh_page () in
        t.twrite f p d;
        Hashtbl.replace pending (f, p) d;
        Oracle.record oracle
          (Oracle.Txn_write { txn = t.id; file = f; page = p; data = d })
      end
    done;
    if Hashtbl.length pending > 0 && Rng.int rng 5 = 0 then begin
      Oracle.record oracle (Oracle.Abort_start t.id);
      t.tabort ();
      Oracle.record oracle (Oracle.Abort_done t.id)
    end
    else begin
      Oracle.record oracle (Oracle.Commit_start t.id);
      t.tcommit ();
      Oracle.record oracle (Oracle.Commit_done t.id);
      Hashtbl.iter (fun k d -> Hashtbl.replace model k d) pending
    end
  done

let run_one ?ndisks ?log_disk ?log_streams backend ~seed ~txns ?crash_point () =
  let cfg = config ?ndisks ?log_disk ?log_streams backend in
  let clock = Clock.create () in
  let stats = Stats.create () in
  let disks = sweep_disks backend clock stats cfg in
  let rng = Rng.create ~seed in
  let ps = cfg.Config.disk.block_size in
  let stamp = ref 0 in
  let fresh_page () =
    incr stamp;
    page_image ~ps ~seed ~stamp:!stamp
  in
  let oracle = Oracle.create ~page_size:ps in
  let model = Hashtbl.create 64 in
  let session = make_session backend clock stats disks cfg oracle model fresh_page in
  let arm =
    Faultsim.arm ?crash_after:crash_point ~read_error_rate:0.02
      ~rng:(Rng.split rng) disks
  in
  let crashed, workload_err =
    match run_pages session oracle rng fresh_page model ~ps ~txns with
    | () -> (false, None)
    | exception Disk.Injected_crash -> (true, None)
    | exception e -> (false, Some (Printexc.to_string e))
  in
  let writes = Faultsim.writes arm in
  Faultsim.disarm arm;
  let violations =
    ref (match workload_err with Some m -> [ "workload: " ^ m ] | None -> [])
  in
  let push m = violations := m :: !violations in
  (try
     let r = session.recover () in
     (try r.structural ()
      with e -> push ("structural check: " ^ Printexc.to_string e));
     List.iter
       (fun v -> push (Format.asprintf "%a" Oracle.pp_violation v))
       (Oracle.check oracle ~read_page:r.rread ~size:r.rsize)
   with e -> push ("recovery failed: " ^ Printexc.to_string e));
  { backend; seed; crash_point; writes; crashed; violations = List.rev !violations }

(* TPC-B workload --------------------------------------------------------- *)

(* Small-scale TPC-B: the database must fit the sweep machine, and a run
   must stay short enough to repeat hundreds of times. The oracle here
   is the benchmark's own accounting identity — balances, history
   provenance, and an acknowledged-commit lower bound — plus the file
   system's structural checker. *)
let tpcb_scale = { Tpcb.accounts = 200; tellers = 10; branches = 2 }

let run_one_tpcb ?ndisks ?log_disk ?log_streams backend ~seed ~txns ?crash_point
    () =
  let cfg = config ?ndisks ?log_disk ?log_streams backend in
  let clock = Clock.create () in
  let stats = Stats.create () in
  let disks = sweep_disks backend clock stats cfg in
  let rng = Rng.create ~seed in
  let scale = tpcb_scale in
  let homes = make_log_homes backend clock stats cfg disks in
  let open_env v =
    Libtp.open_env clock stats cfg v ?log_vfss:(log_home_vfss homes)
      ~pool_pages:64 ~checkpoint_every:50
      ~log_path:(if Array.length homes = 0 then "/tpcb.log" else "/log")
      ()
  in
  let recover_log () =
    crash_log_homes homes;
    remount_log_homes clock stats cfg homes
  in
  let bh, db, recover =
    match backend with
    | Lfs_kernel ->
      let fs = Lfs.format disks clock stats cfg in
      let db = Tpcb.build clock stats cfg (Lfs.vfs fs) ~rng ~scale in
      let kt = Ktxn.create fs in
      Tpcb.protect_all db kt;
      ( Tpcb.Kernel kt,
        db,
        fun () ->
          Lfs.crash fs;
          let fs' = Lfs.mount disks clock stats cfg in
          (Lfs.vfs fs', fun () -> Lfs.check fs') )
    | Lfs_user ->
      let fs = Lfs.format disks clock stats cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build clock stats cfg v ~rng ~scale in
      let env = open_env v in
      ( Tpcb.User env,
        db,
        fun () ->
          Lfs.crash fs;
          recover_log ();
          let fs' = Lfs.mount disks clock stats cfg in
          let v' = Lfs.vfs fs' in
          ignore (open_env v');
          (v', fun () -> Lfs.check fs') )
    | Ffs_user ->
      let fs = Ffs.format (Diskset.primary disks) clock stats cfg in
      let v = Ffs.vfs fs in
      let db = Tpcb.build clock stats cfg v ~rng ~scale in
      let env = open_env v in
      ( Tpcb.User env,
        db,
        fun () ->
          Ffs.crash fs;
          recover_log ();
          let fs' = Ffs.mount (Diskset.primary disks) clock stats cfg in
          fsck_or_fail "fsck" fs';
          let v' = Ffs.vfs fs' in
          ignore (open_env v');
          (v', fun () -> ()) )
  in
  let arm =
    Faultsim.arm ?crash_after:crash_point ~read_error_rate:0.02
      ~rng:(Rng.split rng) disks
  in
  let acked = ref 0 in
  let crashed, workload_err =
    try
      for _ = 1 to txns do
        ignore (Tpcb.run clock stats cfg db bh ~rng ~n:1);
        incr acked
      done;
      (false, None)
    with
    | Disk.Injected_crash -> (true, None)
    | e -> (false, Some (Printexc.to_string e))
  in
  let writes = Faultsim.writes arm in
  Faultsim.disarm arm;
  let violations =
    ref (match workload_err with Some m -> [ "workload: " ^ m ] | None -> [])
  in
  let push m = violations := m :: !violations in
  (try
     let v, structural = recover () in
     (try structural ()
      with e -> push ("structural check: " ^ Printexc.to_string e));
     let db' = Tpcb.open_db v ~scale in
     (try Tpcb.check_consistency clock stats cfg db' v
      with e -> push ("tpcb consistency: " ^ Printexc.to_string e));
     let h = Tpcb.history_count clock stats cfg db' v in
     (* Every acknowledged commit is durable; at most the one in-flight
        transaction may have landed beyond them. *)
     if h < !acked || h > !acked + 1 then
       push
         (Printf.sprintf "history count %d outside [%d, %d]" h !acked
            (!acked + 1))
   with e -> push ("recovery failed: " ^ Printexc.to_string e));
  { backend; seed; crash_point; writes; crashed; violations = List.rev !violations }

(* TPC-B at MPL > 1: the same oracle under real concurrency. Worker
   processes on the discrete-event scheduler park at the group-commit
   rendezvous, so a crash point can land mid-batch — some committers
   flushed but not yet resumed, others parked with nothing durable.
   Acknowledgement is [txn_commit] returning (a parked committer wakes
   only after its batch's force), so every acknowledged commit must
   survive recovery; beyond them at most [mpl] in-flight transactions
   may have landed. *)
let run_one_tpcb_mpl ?ndisks ?log_disk ?log_streams ?lock_grain ?nblocks
    backend ~seed ~txns ~mpl ?crash_point () =
  let cfg = config ?ndisks ?log_disk ?log_streams ?lock_grain ?nblocks backend in
  (* Group commit on — the rendezvous is the point of this sweep. *)
  let cfg =
    {
      cfg with
      Config.fs =
        {
          cfg.Config.fs with
          group_commit_size = mpl;
          group_commit_timeout_s = 0.02;
        };
    }
  in
  let clock = Clock.create () in
  let stats = Stats.create () in
  let disks = sweep_disks backend clock stats cfg in
  let sched = Sched.create clock in
  let rng = Rng.create ~seed in
  let scale = tpcb_scale in
  let homes = make_log_homes backend clock stats cfg disks in
  let open_env v =
    Libtp.open_env clock stats cfg v ?log_vfss:(log_home_vfss homes)
      ~pool_pages:64 ~checkpoint_every:50
      ~log_path:(if Array.length homes = 0 then "/tpcb.log" else "/log")
      ()
  in
  let recover_log () =
    crash_log_homes homes;
    remount_log_homes clock stats cfg homes
  in
  let bh, db, _vfs, recover =
    match backend with
    | Lfs_kernel ->
      let fs = Lfs.format disks clock stats cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build clock stats cfg v ~rng ~scale in
      let kt = Ktxn.create fs in
      Tpcb.protect_all db kt;
      Lfs.start_background fs;
      ( Tpcb.Kernel kt,
        db,
        v,
        fun () ->
          Lfs.crash fs;
          let fs' = Lfs.mount disks clock stats cfg in
          (Lfs.vfs fs', fun () -> Lfs.check fs') )
    | Lfs_user ->
      let fs = Lfs.format disks clock stats cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build clock stats cfg v ~rng ~scale in
      let env = open_env v in
      Lfs.start_background fs;
      ( Tpcb.User env,
        db,
        v,
        fun () ->
          Lfs.crash fs;
          recover_log ();
          let fs' = Lfs.mount disks clock stats cfg in
          let v' = Lfs.vfs fs' in
          ignore (open_env v');
          (v', fun () -> Lfs.check fs') )
    | Ffs_user ->
      let fs = Ffs.format (Diskset.primary disks) clock stats cfg in
      let v = Ffs.vfs fs in
      let db = Tpcb.build clock stats cfg v ~rng ~scale in
      let env = open_env v in
      ( Tpcb.User env,
        db,
        v,
        fun () ->
          Ffs.crash fs;
          recover_log ();
          let fs' = Ffs.mount (Diskset.primary disks) clock stats cfg in
          fsck_or_fail "fsck" fs';
          let v' = Ffs.vfs fs' in
          ignore (open_env v');
          (v', fun () -> ()) )
  in
  let arm =
    Faultsim.arm ?crash_after:crash_point ~read_error_rate:0.02
      ~rng:(Rng.split rng) disks
  in
  let crashed, workload_err =
    match Tpcb.run_sched clock stats cfg db bh ~rng ~n:txns ~mpl with
    | (_ : Tpcb.multi_result) -> (false, None)
    | exception Disk.Injected_crash -> (true, None)
    | exception e -> (false, Some (Printexc.to_string e))
  in
  (* Workers bump "tpcb.commits" immediately after [txn_commit] returns,
     with no intervening yield — exactly the acknowledgement point. *)
  let acked = Stats.count stats "tpcb.commits" in
  let writes = Faultsim.writes arm in
  Faultsim.disarm arm;
  (* Recovery must run on the legacy (non-scheduler) paths. *)
  Sched.detach sched;
  let violations =
    ref (match workload_err with Some m -> [ "workload: " ^ m ] | None -> [])
  in
  let push m = violations := m :: !violations in
  (try
     let v, structural = recover () in
     (try structural ()
      with e -> push ("structural check: " ^ Printexc.to_string e));
     let db' = Tpcb.open_db v ~scale in
     (try Tpcb.check_consistency clock stats cfg db' v
      with e -> push ("tpcb consistency: " ^ Printexc.to_string e));
     let h = Tpcb.history_count clock stats cfg db' v in
     if h < acked || h > acked + mpl then
       push
         (Printf.sprintf "history count %d outside [%d, %d]" h acked
            (acked + mpl))
   with e -> push ("recovery failed: " ^ Printexc.to_string e));
  { backend; seed; crash_point; writes; crashed; violations = List.rev !violations }

(* Sweeping --------------------------------------------------------------- *)

type sweep_result = {
  total_writes : int;  (** crash points available in the run *)
  points_run : int;
  failures : outcome list;
}

let sweep_runs ?(progress = fun (_ : outcome) -> ()) run ~points =
  (* The fault-free run both counts the crash points and sanity-checks
     that the oracle holds without any fault injected. *)
  let base = run ?crash_point:None () in
  if base.violations <> [] then
    { total_writes = base.writes; points_run = 1; failures = [ base ] }
  else begin
    let total = base.writes in
    let pts =
      if points <= 0 || points >= total then List.init total (fun i -> i + 1)
      else
        List.sort_uniq compare
          (List.init points (fun i -> 1 + (i * (total - 1) / max 1 (points - 1))))
    in
    let failures =
      List.filter_map
        (fun p ->
          let r = run ?crash_point:(Some p) () in
          progress r;
          if r.violations = [] then None else Some r)
        pts
    in
    { total_writes = total; points_run = List.length pts; failures }
  end

let sweep ?progress ?ndisks ?log_disk ?log_streams backend ~seed ~txns ~points =
  sweep_runs ?progress
    (fun ?crash_point () ->
      run_one ?ndisks ?log_disk ?log_streams backend ~seed ~txns ?crash_point ())
    ~points

let sweep_tpcb ?progress ?ndisks ?log_disk ?log_streams backend ~seed ~txns
    ~points =
  sweep_runs ?progress
    (fun ?crash_point () ->
      run_one_tpcb ?ndisks ?log_disk ?log_streams backend ~seed ~txns
        ?crash_point ())
    ~points

let sweep_tpcb_mpl ?progress ?ndisks ?log_disk ?log_streams ?lock_grain
    ?nblocks backend ~seed ~txns ~mpl ~points =
  sweep_runs ?progress
    (fun ?crash_point () ->
      run_one_tpcb_mpl ?ndisks ?log_disk ?log_streams ?lock_grain ?nblocks
        backend ~seed ~txns ~mpl ?crash_point ())
    ~points
