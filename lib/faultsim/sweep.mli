(** Exhaustive crash-point sweeps over transactional workloads.

    A sweep first runs a seeded workload fault-free to count its block
    writes, then repeats it once per chosen crash point: the injector
    cuts the power after exactly that many writes, the file system and
    transaction environment recover, and the oracle checks the
    durability invariant. Everything is deterministic, so a reported
    failure replays from its [(seed, crash_point)] pair alone. *)

(** Which stack executes the workload: the embedded (kernel) transaction
    manager on LFS, or LIBTP on either file system. *)
type backend = Lfs_kernel | Lfs_user | Ffs_user

val backend_name : backend -> string

val backend_of_string : string -> backend
(** Inverse of {!backend_name}. @raise Invalid_argument on others. *)

type outcome = {
  backend : backend;
  seed : int;
  crash_point : int option;
  writes : int;  (** block writes observed while armed *)
  crashed : bool;
  violations : string list;  (** empty = the invariant held *)
}

val describe : outcome -> string
(** One human-readable report; violations include the replay recipe. *)

val run_one :
  ?ndisks:int ->
  ?log_disk:bool ->
  ?log_streams:int ->
  backend ->
  seed:int ->
  txns:int ->
  ?crash_point:int ->
  unit ->
  outcome
(** Run the page-level workload once: random page-sized transactional
    writes mixed with live-verified reads and occasional aborts, crash
    after [crash_point] block writes (never, if omitted), recover, and
    check the oracle. Transient read errors are always injected.
    [ndisks]/[log_disk] (defaults 1/false) select the multi-disk
    placement of {!Diskset}: for the user backends each dedicated log
    spindle carries a small FFS holding a WAL stream, crashed,
    remounted and fsck'd along with the data file system.
    [log_streams] (default 1) runs that many parallel WAL streams —
    with [log_disk], one spindle each. *)

val run_one_tpcb :
  ?ndisks:int ->
  ?log_disk:bool ->
  ?log_streams:int ->
  backend ->
  seed:int ->
  txns:int ->
  ?crash_point:int ->
  unit ->
  outcome
(** Same, driving [txns] TPC-B transactions on a small database; after
    recovery the balance-consistency identity must hold and the history
    count must lie in [acked, acked+1]. *)

val run_one_tpcb_mpl :
  ?ndisks:int ->
  ?log_disk:bool ->
  ?log_streams:int ->
  ?lock_grain:[ `Page | `Record ] ->
  ?nblocks:int ->
  backend ->
  seed:int ->
  txns:int ->
  mpl:int ->
  ?crash_point:int ->
  unit ->
  outcome
(** TPC-B at multiprogramming level [mpl] on the discrete-event
    scheduler with group commit enabled (size [mpl], 20 ms timeout), so
    crash points land mid-rendezvous. An acknowledged commit is one
    whose [txn_commit] returned — a parked committer wakes only after
    its batch's force — so after recovery the history count must lie in
    [acked, acked + mpl]. [lock_grain] (default [`Page]) selects the
    locking granularity; at [`Record] aborted history appends leave
    zeroed holes, which the oracle's hole-tolerant count skips. *)

type sweep_result = {
  total_writes : int;  (** crash points available in the run *)
  points_run : int;
  failures : outcome list;
}

val sweep :
  ?progress:(outcome -> unit) ->
  ?ndisks:int ->
  ?log_disk:bool ->
  ?log_streams:int ->
  backend -> seed:int -> txns:int -> points:int -> sweep_result
(** Sweep the page workload. [points <= 0] (or >= the write count) runs
    every crash point; otherwise [points] evenly spaced ones. *)

val sweep_tpcb :
  ?progress:(outcome -> unit) ->
  ?ndisks:int ->
  ?log_disk:bool ->
  ?log_streams:int ->
  backend -> seed:int -> txns:int -> points:int -> sweep_result

val sweep_tpcb_mpl :
  ?progress:(outcome -> unit) ->
  ?ndisks:int ->
  ?log_disk:bool ->
  ?log_streams:int ->
  ?lock_grain:[ `Page | `Record ] ->
  ?nblocks:int ->
  backend -> seed:int -> txns:int -> mpl:int -> points:int -> sweep_result
(** Sweep {!run_one_tpcb_mpl}. [nblocks] (default 4096) sizes the disk:
    shrinking it puts the run under live cleaning pressure, so crash
    points land inside segment cleaning and hot/cold relocation. *)
