(** Deterministic fault injection over a simulated disk.

    Arming wraps every spindle of a {!Diskset.t} with one shared injector that kills the machine
    after exactly the Nth block write since arming (tearing a
    multi-block request at that boundary, so only its leading blocks
    persist) and injects seeded transient read errors. Every behaviour
    is a pure function of the caller's seed and [crash_after], so a
    [(seed, crash_point)] pair replays an identical failure. *)

type t

val arm : ?crash_after:int -> ?read_error_rate:float -> ?rng:Rng.t -> Diskset.t -> t
(** Install the injector. [crash_after n] raises {!Disk.Injected_crash}
    out of the write that performs the [n+1]th block since arming; a
    request straddling the boundary persists exactly its first
    [n - writes_so_far] blocks. Omitting it never crashes (used to count
    a run's writes). [read_error_rate] is the per-request probability of
    one transient read error, drawn from [rng].
    @raise Invalid_argument if a rate is given without an rng. *)

val disarm : t -> unit
(** Remove the injector; the disk serves fault-free again (recovery runs
    on clean hardware). *)

val writes : t -> int
(** Block writes observed since arming. *)

val crashed : t -> bool
(** Whether the injector has cut the power. *)
