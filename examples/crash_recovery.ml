(* Crash recovery, both ways: the same workload runs under the user-level
   write-ahead-logging system (LIBTP) and under the embedded kernel
   transaction manager, a power failure hits mid-transaction, and both
   recover to exactly the committed state — one by replaying its log, the
   other with no log at all.

   Run with: dune exec examples/crash_recovery.exe *)

let cfg () = Config.scaled ~factor:0.1 Config.default

let show name values =
  Printf.printf "%-10s %s\n" name
    (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) values))

(* --- user-level: WAL on LFS ---------------------------------------------- *)

let user_level () =
  print_endline "== user-level transactions (LIBTP: write-ahead log + 2PL)";
  let clock = Clock.create () in
  let stats = Stats.create () in
  let config = cfg () in
  let disks = Diskset.create clock stats config in
  let fs = Lfs.format disks clock stats config in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/data" in
  Lfs.sync fs;
  let env = Libtp.open_env clock stats config v ~log_path:"/wal.log" () in
  let page c = Bytes.make v.Vfs.block_size c in

  let t1 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:0 (page 'A');
  Libtp.commit env t1;

  let t2 = Libtp.begin_txn env in
  Libtp.write_page env t2 ~file:fd ~page:0 (page 'B');
  Libtp.write_page env t2 ~file:fd ~page:1 (page 'C');
  (* Force the log so the loser's records are durable, then pull the plug:
     recovery must redo the winner and undo the loser. *)
  Logmgr.force (Libtp.log env) ~upto:(Logmgr.next_lsn (Libtp.log env) - 1);
  print_endline "crash! (txn 2 uncommitted, its log records on disk)";
  Lfs.crash fs;

  let fs = Lfs.mount disks clock stats config in
  let v = Lfs.vfs fs in
  let env = Libtp.open_env clock stats config v ~log_path:"/wal.log" () in
  Printf.printf "recovery undid %d loser transaction(s)\n"
    (Libtp.recovered_losers env);
  let fd = v.Vfs.open_file "/data" in
  let t = Libtp.begin_txn env in
  show "state:"
    [
      ("page0", String.make 1 (Bytes.get (Libtp.read_page env t ~file:fd ~page:0) 0));
      ("page1",
       match Bytes.get (Libtp.read_page env t ~file:fd ~page:1) 0 with
       | '\000' -> "(empty)"
       | c -> String.make 1 c);
    ];
  Libtp.commit env t

(* --- embedded: no log at all --------------------------------------------- *)

let embedded () =
  print_endline "\n== embedded transactions (no log: LFS no-overwrite + segment force)";
  let sys = Core.boot ~config:(cfg ()) () in
  let v = Lfs.vfs sys.Core.lfs in
  ignore (v.Vfs.create "/data");
  Ktxn.protect sys.Core.ktxn "/data";
  Lfs.sync sys.Core.lfs;
  let inum = Lfs.inum_of sys.Core.lfs "/data" in
  let page c = Bytes.make v.Vfs.block_size c in
  let k = sys.Core.ktxn in

  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page 'A');
  Ktxn.txn_commit k t1;

  let t2 = Ktxn.txn_begin k in
  Ktxn.write_page k t2 ~inum ~page:0 (page 'B');
  Ktxn.write_page k t2 ~inum ~page:1 (page 'C');
  print_endline
    "crash! (txn 2's dirty pages were pinned in memory, never written)";
  let sys = Core.reboot sys in

  let inum = Lfs.inum_of sys.Core.lfs "/data" in
  let t = Ktxn.txn_begin sys.Core.ktxn in
  show "state:"
    [
      ("page0", String.make 1 (Bytes.get (Ktxn.read_page sys.Core.ktxn t ~inum ~page:0) 0));
      ("page1",
       match Bytes.get (Ktxn.read_page sys.Core.ktxn t ~inum ~page:1) 0 with
       | '\000' -> "(empty)"
       | c -> String.make 1 c);
    ];
  Ktxn.txn_commit sys.Core.ktxn t;
  print_endline
    "same outcome, but recovery needed no log: atomicity came from the \
     file system's no-overwrite policy"

let () =
  user_level ();
  embedded ()
