(* Benchmark harness: regenerates every measured artifact of the paper's
   evaluation (Figures 4-7; Figures 1-3 are architecture diagrams), runs
   the design-choice ablations, and finishes with Bechamel
   micro-benchmarks of the core data structures.

   Scale: by default the TPC-B database uses a 4-TPS rating with every
   machine parameter scaled by the same factor, preserving the paper's
   cache << database << disk ratios; pass `--scale 10 --txns 100000` for
   the paper's full configuration (slow). `--quick` shrinks everything
   for a smoke run. *)

let usage () =
  print_endline
    "usage: bench [--quick] [--scale N] [--txns N] [--seeds N] [--skip-micro]";
  exit 1

type opts = {
  mutable tps_scale : int;
  mutable txns : int;
  mutable nseeds : int;
  mutable micro : bool;
}

let parse_args () =
  let o = { tps_scale = 4; txns = 20_000; nseeds = 3; micro = true } in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      o.tps_scale <- 2;
      o.txns <- 3_000;
      o.nseeds <- 1;
      go rest
    | "--scale" :: n :: rest ->
      o.tps_scale <- int_of_string n;
      go rest
    | "--txns" :: n :: rest ->
      o.txns <- int_of_string n;
      go rest
    | "--seeds" :: n :: rest ->
      o.nseeds <- int_of_string n;
      go rest
    | "--skip-micro" :: rest ->
      o.micro <- false;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  o

(* Bechamel micro-benchmarks ------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let mk_btree n =
    let clock = Clock.create () in
    let stats = Stats.create () in
    let cfg = Config.scaled ~factor:0.05 Config.default in
    let disks = Diskset.create clock stats cfg in
    let fs = Lfs.format disks clock stats cfg in
    let v = Lfs.vfs fs in
    let fd = v.Vfs.create "/bench" in
    let bt = Btree.attach clock stats cfg.Config.cpu (Pager.plain v fd) in
    for i = 0 to n - 1 do
      Btree.insert bt (Printf.sprintf "key%08d" i) "value"
    done;
    bt
  in
  let btree_find =
    let bt = mk_btree 10_000 in
    let i = ref 0 in
    Test.make ~name:"btree.find (10k keys)"
      (Staged.stage (fun () ->
           incr i;
           ignore (Btree.find bt (Printf.sprintf "key%08d" (!i * 7919 mod 10_000)))))
  in
  let btree_insert =
    let bt = mk_btree 1_000 in
    let i = ref 0 in
    Test.make ~name:"btree.insert (growing)"
      (Staged.stage (fun () ->
           incr i;
           Btree.insert bt (Printf.sprintf "new%08d" !i) "value"))
  in
  let lock_cycle =
    let clock = Clock.create () in
    let stats = Stats.create () in
    let lm = Lockmgr.create clock stats Config.default.Config.cpu in
    let i = ref 0 in
    Test.make ~name:"lockmgr.acquire+release_all"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Lockmgr.acquire lm ~txn:1
                (Lockmgr.Page (0, !i land 1023))
                Lockmgr.Exclusive);
           Lockmgr.release_all lm ~txn:1))
  in
  let logrec_codec =
    let r =
      {
        Logrec.txn = 42;
        prev = 1234;
        body =
          Logrec.Update
            {
              file = 7;
              page = 99;
              off = 100;
              pstream = -1;
              plsn = Logrec.null_lsn;
              before = Bytes.make 120 'b';
              after = Bytes.make 120 'a';
            };
      }
    in
    Test.make ~name:"logrec encode+decode"
      (Staged.stage (fun () ->
           match Logrec.decode (Logrec.encode r) 0 with
           | Some _ -> ()
           | None -> assert false))
  in
  let summary_codec =
    let entries = List.init 100 (fun i -> Layout.Data { inum = 7; lblock = i }) in
    let b = Bytes.make 4096 '\000' in
    Test.make ~name:"segment summary encode+decode"
      (Staged.stage (fun () ->
           Layout.write_summary b
             {
               Layout.seq = 9L;
               timestamp = 1.0;
               next_seg = 3;
               more = false;
               cold = false;
               payload_ck = 0;
               entries;
             };
           match Layout.read_summary b with
           | Some _ -> ()
           | None -> assert false))
  in
  let cache_hit =
    let clock = Clock.create () in
    let stats = Stats.create () in
    let c = Cache.create clock stats Config.default.Config.cpu ~capacity:1024 in
    Cache.set_writeback c (fun _ -> ());
    for i = 0 to 1023 do
      ignore (Cache.insert c ~file:1 ~lblock:i (Bytes.make 64 'x'))
    done;
    let i = ref 0 in
    Test.make ~name:"buffer cache hit"
      (Staged.stage (fun () ->
           incr i;
           ignore (Cache.lookup c ~file:1 ~lblock:(!i land 1023))))
  in
  [ btree_find; btree_insert; lock_cycle; logrec_codec; summary_codec; cache_hit ]

let run_micro () =
  let open Bechamel in
  Expcommon.pp_header "Micro-benchmarks (Bechamel; real time per operation)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name result ->
          let v = Analyze.one ols instance result in
          match Analyze.OLS.estimates v with
          | Some (t :: _) -> Printf.printf "%-42s %12.0f ns/op\n%!" name t
          | _ -> Printf.printf "%-42s (no estimate)\n%!" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"micro" [ t ]) (micro_tests ()))

let () =
  let o = parse_args () in
  let seeds = List.init o.nseeds (fun i -> i + 1) in
  Printf.printf
    "Reproduction benches for: Seltzer, \"Transaction Support in a \
     Log-Structured File System\" (ICDE 1993)\n";
  Printf.printf "TPC-B scale: %d TPS rating (%d accounts); %d txns; %d seed(s)\n%!"
    o.tps_scale
    (Tpcb.scale_for_tps o.tps_scale).Tpcb.accounts
    o.txns o.nseeds;
  let emit ~name ~config json =
    Printf.printf "wrote %s\n%!" (Expcommon.write_bench ~name ~config json)
  in
  let fig4 = Fig4.run ~tps_scale:o.tps_scale ~txns:o.txns ~seeds () in
  Fig4.print fig4;
  emit ~name:"fig4" ~config:fig4.Fig4.config (Fig4.to_json fig4);
  let fig5 = Fig5.run ~tps_scale:(min o.tps_scale 2) () in
  Fig5.print fig5;
  emit ~name:"fig5" ~config:fig5.Fig5.config (Fig5.to_json fig5);
  let fig6 = Fig6.run ~tps_scale:o.tps_scale ~txns:o.txns () in
  Fig6.print fig6;
  emit ~name:"fig6" ~config:fig6.Fig6.config (Fig6.to_json fig6);
  let fig7 = Fig7.of_measurements ~fig4 ~fig6 in
  Fig7.print fig7;
  emit ~name:"fig7" ~config:fig4.Fig4.config
    (Json.Obj
       [
         ("fig7", Fig7.to_json fig7);
         ( "sources",
           Json.Obj [ ("fig4", Fig4.to_json fig4); ("fig6", Fig6.to_json fig6) ] );
       ]);
  Ablation.print (Ablation.test_and_set ~tps_scale:o.tps_scale ~txns:(o.txns / 2) ());
  Ablation.print
    (Ablation.cleaner_placement ~tps_scale:o.tps_scale ~txns:(o.txns * 3 / 4) ());
  Ablation.print
    (Ablation.cleaning_policy ~tps_scale:o.tps_scale ~txns:(o.txns * 3 / 4) ());
  Ablation.print (Ablation.group_commit ~tps_scale:o.tps_scale ~txns:(o.txns / 2) ());
  Ablation.print_coalescing
    (Ablation.coalescing ~tps_scale:o.tps_scale ~txns:(o.txns * 3 / 4) ());
  Ablation.print
    (Ablation.multiprogramming ~tps_scale:o.tps_scale ~txns:(o.txns / 2) ());
  if o.micro then run_micro ()
