(* Shared helpers for the test suites: a small machine configuration that
   keeps tests fast while preserving every ratio that matters (cache smaller
   than the data, several segments, room for the cleaner to work). *)

let small_config () =
  let d = Config.default in
  {
    d with
    disk = { d.disk with nblocks = 4096 (* 16 MB *); blocks_per_cylinder = 16 };
    fs =
      {
        d.fs with
        segment_blocks = 32;
        cache_blocks = 128;
        cleaner_low_segments = 6;
        cleaner_high_segments = 12;
        checkpoint_segments = 4;
      };
  }

type machine = {
  clock : Clock.t;
  stats : Stats.t;
  disks : Diskset.t;
  disk : Disk.t; (* primary spindle, for tests that drive the device raw *)
  cfg : Config.t;
}

let machine ?(cfg = small_config ()) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let disks = Diskset.create clock stats cfg in
  { clock; stats; disks; disk = Diskset.primary disks; cfg }

let fresh_lfs ?cfg () =
  let m = machine ?cfg () in
  let fs = Lfs.format m.disks m.clock m.stats m.cfg in
  (m, fs)

(* Deterministic pseudo-random payload of [len] bytes seeded by [tag]. *)
let payload tag len =
  let b = Bytes.create len in
  let state = ref (tag * 2654435761) in
  for i = 0 to len - 1 do
    state := (!state * 1103515245) + 12345;
    Bytes.set b i (Char.chr ((!state lsr 16) land 0xff))
  done;
  b

let check_bytes msg expected actual =
  Alcotest.(check string) msg (Bytes.to_string expected) (Bytes.to_string actual)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
