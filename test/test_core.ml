(* Tests for the embedded (kernel) transaction manager and the Core
   facade: commit durability without any log, abort via buffer
   invalidation, locking, group commit, and crash atomicity. *)

let boot () = Core.boot ~config:(Tutil.small_config ()) ()

let page sys byte = Bytes.make (Lfs.vfs sys.Core.lfs).Vfs.block_size byte

let setup_file sys path =
  let v = Lfs.vfs sys.Core.lfs in
  ignore (v.Vfs.create path);
  Ktxn.protect sys.Core.ktxn path;
  Lfs.sync sys.Core.lfs;
  Lfs.inum_of sys.Core.lfs path

let test_commit_then_read () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'A');
  Ktxn.txn_commit k t1;
  let t2 = Ktxn.txn_begin k in
  Alcotest.(check char) "committed visible" 'A'
    (Bytes.get (Ktxn.read_page k t2 ~inum ~page:0) 0);
  Ktxn.txn_commit k t2

let test_abort_restores_before_image () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'A');
  Ktxn.txn_commit k t1;
  let t2 = Ktxn.txn_begin k in
  Ktxn.write_page k t2 ~inum ~page:0 (page sys 'B');
  Ktxn.write_page k t2 ~inum ~page:1 (page sys 'C');
  Alcotest.(check char) "own write visible" 'B'
    (Bytes.get (Ktxn.read_page k t2 ~inum ~page:0) 0);
  Ktxn.txn_abort k t2;
  let t3 = Ktxn.txn_begin k in
  Alcotest.(check char) "before-image restored from the log" 'A'
    (Bytes.get (Ktxn.read_page k t3 ~inum ~page:0) 0);
  Alcotest.(check char) "never-written page empty" '\000'
    (Bytes.get (Ktxn.read_page k t3 ~inum ~page:1) 0);
  Ktxn.txn_commit k t3

let test_no_log_exists () =
  (* The embedded system performs no explicit logging: no log file, and
     commit durability comes from the segment write alone. *)
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'D');
  Ktxn.txn_commit k t1;
  let v = Lfs.vfs sys.Core.lfs in
  Alcotest.(check (list string)) "only the database file exists" [ "db" ]
    (List.map fst (v.Vfs.readdir "/"))

let test_commit_survives_crash () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'X');
  Ktxn.txn_commit k t1;
  (* Crash with no checkpoint: recovery rolls the segment forward. *)
  let sys = Core.reboot sys in
  let inum = Lfs.inum_of sys.Core.lfs "/db" in
  let t = Ktxn.txn_begin sys.Core.ktxn in
  Alcotest.(check char) "commit durable across crash" 'X'
    (Bytes.get (Ktxn.read_page sys.Core.ktxn t ~inum ~page:0) 0);
  Ktxn.txn_commit sys.Core.ktxn t

let test_uncommitted_lost_on_crash () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'A');
  Ktxn.txn_commit k t1;
  let t2 = Ktxn.txn_begin k in
  Ktxn.write_page k t2 ~inum ~page:0 (page sys 'B');
  (* Crash mid-transaction: t2's pages were pinned in memory, never
     written — atomicity needs no undo at all. *)
  let sys = Core.reboot sys in
  let inum = Lfs.inum_of sys.Core.lfs "/db" in
  let t = Ktxn.txn_begin sys.Core.ktxn in
  Alcotest.(check char) "only committed state on disk" 'A'
    (Bytes.get (Ktxn.read_page sys.Core.ktxn t ~inum ~page:0) 0);
  Ktxn.txn_commit sys.Core.ktxn t

let test_unprotected_files_bypass_locking () =
  let sys = boot () in
  let v = Lfs.vfs sys.Core.lfs in
  ignore (v.Vfs.create "/plain");
  Lfs.sync sys.Core.lfs;
  let inum = Lfs.inum_of sys.Core.lfs "/plain" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'P');
  (* Another transaction sees it immediately: no lock, no txn buffering. *)
  let t2 = Ktxn.txn_begin k in
  Alcotest.(check char) "no isolation on unprotected file" 'P'
    (Bytes.get (Ktxn.read_page k t2 ~inum ~page:0) 0);
  Alcotest.(check int) "no locks taken" 0 (Lockmgr.locked_objects (Ktxn.locks k));
  Ktxn.txn_commit k t1;
  Ktxn.txn_commit k t2

let test_lock_conflict_and_deadlock () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  let t2 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'A');
  Ktxn.write_page k t2 ~inum ~page:1 (page sys 'B');
  (* t1 blocks on t2's page and is left sleeping... *)
  Alcotest.(check bool) "writer blocks" true
    (match Ktxn.write_page k t1 ~inum ~page:1 (page sys 'C') with
    | exception Ktxn.Conflict [ b ] -> b = Ktxn.txn_id t2
    | _ -> false);
  (* ...so t2 requesting t1's page closes the cycle and is aborted. *)
  Alcotest.(check bool) "deadlock detected and aborted" true
    (match Ktxn.read_page k t2 ~inum ~page:0 with
    | exception Ktxn.Deadlock_abort id -> id = Ktxn.txn_id t2
    | _ -> false);
  (* Victim's buffers invalidated; survivor retries and proceeds. *)
  Ktxn.write_page k t1 ~inum ~page:1 (page sys 'C');
  Ktxn.txn_commit k t1;
  let t3 = Ktxn.txn_begin k in
  Alcotest.(check char) "survivor's writes present" 'A'
    (Bytes.get (Ktxn.read_page k t3 ~inum ~page:0) 0);
  Alcotest.(check char) "victim's write gone, survivor's retry applied" 'C'
    (Bytes.get (Ktxn.read_page k t3 ~inum ~page:1) 0);
  Ktxn.txn_commit k t3

let test_group_commit_batches () =
  let cfg = Tutil.small_config () in
  let cfg =
    {
      cfg with
      Config.fs =
        { cfg.Config.fs with group_commit_timeout_s = 0.005; group_commit_size = 2 };
    }
  in
  let sys = Core.boot ~config:cfg () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let partials_before = Stats.count sys.Core.stats "lfs.partials" in
  (* Two overlapping transactions on different pages: the second commit
     reaches the group size and both flush in one segment write. *)
  let t1 = Ktxn.txn_begin k in
  let t2 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys '1');
  Ktxn.write_page k t2 ~inum ~page:1 (page sys '2');
  Ktxn.txn_commit k t1;
  Alcotest.(check int) "first commit deferred" partials_before
    (Stats.count sys.Core.stats "lfs.partials");
  Ktxn.txn_commit k t2;
  Alcotest.(check int) "one shared flush" (partials_before + 1)
    (Stats.count sys.Core.stats "lfs.partials");
  Alcotest.(check int) "both committed" 2 (Stats.count sys.Core.stats "ktxn.commits");
  let t3 = Ktxn.txn_begin k in
  Alcotest.(check char) "t1 data" '1' (Bytes.get (Ktxn.read_page k t3 ~inum ~page:0) 0);
  Alcotest.(check char) "t2 data" '2' (Bytes.get (Ktxn.read_page k t3 ~inum ~page:1) 0);
  Ktxn.txn_commit k t3

let test_syncer_skips_txn_buffers () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'Z');
  (* Push past the syncer interval; uncommitted buffers must not leak to
     disk (they are on the inode's transaction list, not its dirty list). *)
  Clock.advance sys.Core.clock 31.0;
  let v = Lfs.vfs sys.Core.lfs in
  ignore (v.Vfs.exists "/db");
  ignore (v.Vfs.stat "/db");
  let sys2 = Core.reboot sys in
  let inum2 = Lfs.inum_of sys2.Core.lfs "/db" in
  let t = Ktxn.txn_begin sys2.Core.ktxn in
  Alcotest.(check char) "uncommitted data never hit the disk" '\000'
    (Bytes.get (Ktxn.read_page sys2.Core.ktxn t ~inum:inum2 ~page:0) 0);
  Ktxn.txn_commit sys2.Core.ktxn t

let test_group_commit_timeout_settles_at_next_begin () =
  let cfg = Tutil.small_config () in
  let cfg =
    {
      cfg with
      Config.fs =
        { cfg.Config.fs with group_commit_timeout_s = 0.05; group_commit_size = 99 };
    }
  in
  let sys = Core.boot ~config:cfg () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'T');
  let before = Clock.now sys.Core.clock in
  Ktxn.txn_commit k t1;
  (* The commit itself deferred the flush... *)
  Alcotest.(check bool) "commit returned promptly" true
    (Clock.now sys.Core.clock -. before < 0.05);
  (* ...and the next transaction begin sleeps to the deadline and flushes. *)
  let t2 = Ktxn.txn_begin k in
  Alcotest.(check bool) "deadline honoured" true
    (Clock.now sys.Core.clock -. before >= 0.05);
  Alcotest.(check char) "flushed data visible" 'T'
    (Bytes.get (Ktxn.read_page k t2 ~inum ~page:0) 0);
  Ktxn.txn_commit k t2

let test_explicit_flush_commits () =
  let cfg = Tutil.small_config () in
  let cfg =
    {
      cfg with
      Config.fs =
        { cfg.Config.fs with group_commit_timeout_s = 5.0; group_commit_size = 99 };
    }
  in
  let sys = Core.boot ~config:cfg () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t1 = Ktxn.txn_begin k in
  Ktxn.write_page k t1 ~inum ~page:0 (page sys 'F');
  Ktxn.txn_commit k t1;
  Ktxn.flush_commits k;
  (* Crash immediately: the flushed commit must be durable. *)
  let sys = Core.reboot sys in
  let inum = Lfs.inum_of sys.Core.lfs "/db" in
  let t = Ktxn.txn_begin sys.Core.ktxn in
  Alcotest.(check char) "durable after explicit flush" 'F'
    (Bytes.get (Ktxn.read_page sys.Core.ktxn t ~inum ~page:0) 0);
  Ktxn.txn_commit sys.Core.ktxn t

(* Scheduler-based concurrency ---------------------------------------------- *)

(* Two worker processes lock the same pages in opposite orders. Both
   genuinely park on each other's locks (a real wait-for cycle between
   suspended processes, not a same-thread retry); the detector aborts
   one and the lock manager's waker resumes the survivor. *)
let test_sched_deadlock_cycle () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let sched = Sched.create sys.Core.clock in
  let aborted = ref 0 and committed = ref 0 in
  let proc first second () =
    let t = Ktxn.txn_begin k in
    match
      Ktxn.write_page k t ~inum ~page:first (page sys 'X');
      (* yield so the other process takes its first lock too *)
      Sched.delay sched 0.001;
      Ktxn.write_page k t ~inum ~page:second (page sys 'Y')
    with
    | () ->
      Ktxn.txn_commit k t;
      incr committed
    | exception Ktxn.Deadlock_abort _ -> incr aborted
  in
  Sched.spawn sched (proc 0 1);
  Sched.spawn sched (proc 1 0);
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check int) "one victim" 1 !aborted;
  Alcotest.(check int) "one survivor" 1 !committed;
  Alcotest.(check bool) "a process really blocked first" true
    (Stats.count sys.Core.stats "ktxn.lock_blocks" >= 1);
  (* The survivor's writes are intact and the victim's are gone. *)
  let t = Ktxn.txn_begin k in
  let a = Bytes.get (Ktxn.read_page k t ~inum ~page:0) 0 in
  let b = Bytes.get (Ktxn.read_page k t ~inum ~page:1) 0 in
  Ktxn.txn_commit k t;
  Alcotest.(check bool) "exactly one txn's pages survive" true
    ((a = 'X' && b = 'Y') || (a = 'Y' && b = 'X'))

(* With MPL >= group size, parked committers fill the batch and the
   filling commit flushes everyone at once: one group flush, full-size
   batch, and nobody pays the timeout. At MPL 1 the same configuration
   degenerates to one flush per commit. *)
let test_sched_group_commit_rendezvous () =
  let cfg = Tutil.small_config () in
  let cfg =
    {
      cfg with
      Config.fs =
        { cfg.Config.fs with group_commit_timeout_s = 10.0; group_commit_size = 4 };
    }
  in
  let sys = Core.boot ~config:cfg () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let sched = Sched.create sys.Core.clock in
  let t0 = Clock.now sys.Core.clock in
  for i = 0 to 3 do
    Sched.spawn sched (fun () ->
        let t = Ktxn.txn_begin k in
        Ktxn.write_page k t ~inum ~page:i (page sys 'G');
        Ktxn.txn_commit k t)
  done;
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check int) "one shared flush" 1
    (Stats.count sys.Core.stats "ktxn.group_flushes");
  (match Stats.histo sys.Core.stats "ktxn.commit_batch" with
  | Some h ->
    Alcotest.(check (float 1e-9)) "batch reached the group size" 4.0
      (Histo.max_value h)
  | None -> Alcotest.fail "no batch histogram");
  Alcotest.(check bool) "filled batch beat the timeout" true
    (Clock.now sys.Core.clock -. t0 < 10.0);
  (* The same work at MPL 1 (legacy path, no scheduler) forces a flush
     per commit and waits out each timeout. *)
  let sys' = Core.boot ~config:cfg () in
  let inum' = setup_file sys' "/db" in
  let k' = sys'.Core.ktxn in
  for i = 0 to 3 do
    let t = Ktxn.txn_begin k' in
    Ktxn.write_page k' t ~inum:inum' ~page:i (page sys' 'G');
    Ktxn.txn_commit k' t
  done;
  Ktxn.flush_commits k';
  Alcotest.(check int) "MPL 1: a flush per commit" 4
    (Stats.count sys'.Core.stats "ktxn.group_flushes")

let test_protect_unprotect_toggle () =
  let sys = boot () in
  let v = Lfs.vfs sys.Core.lfs in
  ignore (v.Vfs.create "/f");
  Ktxn.protect sys.Core.ktxn "/f";
  Alcotest.(check bool) "on" true (v.Vfs.stat "/f").Vfs.protected_;
  Ktxn.unprotect sys.Core.ktxn "/f";
  Alcotest.(check bool) "off" false (v.Vfs.stat "/f").Vfs.protected_;
  (* With protection off, transactional writes take no locks. *)
  Lfs.sync sys.Core.lfs;
  let inum = Lfs.inum_of sys.Core.lfs "/f" in
  let t = Ktxn.txn_begin sys.Core.ktxn in
  Ktxn.write_page sys.Core.ktxn t ~inum ~page:0 (page sys 'u');
  Alcotest.(check int) "no locks" 0 (Lockmgr.locked_objects (Ktxn.locks sys.Core.ktxn));
  Ktxn.txn_commit sys.Core.ktxn t

let test_finished_txn_rejected () =
  let sys = boot () in
  let inum = setup_file sys "/db" in
  let k = sys.Core.ktxn in
  let t = Ktxn.txn_begin k in
  Ktxn.txn_commit k t;
  Alcotest.(check bool) "reuse rejected" true
    (match Ktxn.read_page k t ~inum ~page:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Core facade with transactional access methods --------------------------- *)

let test_facade_btree_roundtrip () =
  let sys = boot () in
  Core.with_txn sys (fun txn ->
      let bt = Core.btree sys txn ~path:"/accounts" in
      for i = 0 to 499 do
        Btree.insert bt (Printf.sprintf "k%04d" i) (string_of_int i)
      done);
  Core.with_txn sys (fun txn ->
      let bt = Core.btree sys txn ~path:"/accounts" in
      Alcotest.(check int) "all committed" 500 (Btree.count bt);
      Btree.check bt)

let test_facade_abort_on_exception () =
  let sys = boot () in
  Core.with_txn sys (fun txn ->
      let bt = Core.btree sys txn ~path:"/t" in
      Btree.insert bt "committed" "yes");
  (try
     Core.with_txn sys (fun txn ->
         let bt = Core.btree sys txn ~path:"/t" in
         Btree.insert bt "doomed" "yes";
         failwith "boom")
   with Failure _ -> ());
  Core.with_txn sys (fun txn ->
      let bt = Core.btree sys txn ~path:"/t" in
      Alcotest.(check (option string)) "committed stays" (Some "yes")
        (Btree.find bt "committed");
      Alcotest.(check (option string)) "aborted gone" None (Btree.find bt "doomed"))

let test_facade_crash_atomicity_with_btree () =
  let sys = boot () in
  Core.with_txn sys (fun txn ->
      let bt = Core.btree sys txn ~path:"/t" in
      for i = 0 to 99 do
        Btree.insert bt (Printf.sprintf "k%03d" i) "v"
      done);
  (* Uncommitted transaction in flight at the crash. *)
  let txn = Ktxn.txn_begin sys.Core.ktxn in
  let bt = Core.btree sys txn ~path:"/t" in
  for i = 100 to 199 do
    Btree.insert bt (Printf.sprintf "k%03d" i) "v"
  done;
  let sys = Core.reboot sys in
  Core.with_txn sys (fun txn ->
      let bt = Core.btree sys txn ~path:"/t" in
      Alcotest.(check int) "exactly the committed records" 100 (Btree.count bt);
      Btree.check bt)

(* Randomized crash-atomicity property. *)
let prop_crash_atomicity =
  Tutil.qtest ~count:20 "embedded commits are atomic across crashes"
    QCheck2.Gen.(list_size (int_range 1 12) (pair (int_bound 4) (int_bound 255)))
    (fun writes ->
      let sys = boot () in
      let inum = setup_file sys "/db" in
      let committed = Hashtbl.create 8 in
      List.iteri
        (fun i (pageno, v) ->
          let k = sys.Core.ktxn in
          let txn = Ktxn.txn_begin k in
          Ktxn.write_page k txn ~inum ~page:pageno (page sys (Char.chr v));
          if i mod 3 = 2 then Ktxn.txn_abort k txn
          else begin
            Ktxn.txn_commit k txn;
            Hashtbl.replace committed pageno v
          end)
        writes;
      let sys = Core.reboot sys in
      let inum = Lfs.inum_of sys.Core.lfs "/db" in
      let txn = Ktxn.txn_begin sys.Core.ktxn in
      let ok =
        Hashtbl.fold
          (fun pageno v ok ->
            ok
            && Char.code
                 (Bytes.get (Ktxn.read_page sys.Core.ktxn txn ~inum ~page:pageno) 0)
               = v)
          committed true
      in
      Ktxn.txn_commit sys.Core.ktxn txn;
      ok)

let () =
  Alcotest.run "core"
    [
      ( "ktxn",
        [
          Alcotest.test_case "commit visible" `Quick test_commit_then_read;
          Alcotest.test_case "abort restores" `Quick test_abort_restores_before_image;
          Alcotest.test_case "no log file" `Quick test_no_log_exists;
          Alcotest.test_case "commit survives crash" `Quick test_commit_survives_crash;
          Alcotest.test_case "uncommitted lost" `Quick test_uncommitted_lost_on_crash;
          Alcotest.test_case "unprotected bypass" `Quick
            test_unprotected_files_bypass_locking;
          Alcotest.test_case "conflict/deadlock" `Quick test_lock_conflict_and_deadlock;
          Alcotest.test_case "group commit" `Quick test_group_commit_batches;
          Alcotest.test_case "syncer skips txn buffers" `Quick
            test_syncer_skips_txn_buffers;
          Alcotest.test_case "group commit settle" `Quick
            test_group_commit_timeout_settles_at_next_begin;
          Alcotest.test_case "explicit flush" `Quick test_explicit_flush_commits;
          Alcotest.test_case "protect/unprotect" `Quick test_protect_unprotect_toggle;
          Alcotest.test_case "finished txn rejected" `Quick test_finished_txn_rejected;
        ] );
      ( "sched",
        [
          Alcotest.test_case "deadlock on a real wait cycle" `Quick
            test_sched_deadlock_cycle;
          Alcotest.test_case "group-commit rendezvous" `Quick
            test_sched_group_commit_rendezvous;
        ] );
      ( "facade",
        [
          Alcotest.test_case "btree roundtrip" `Quick test_facade_btree_roundtrip;
          Alcotest.test_case "abort on exception" `Quick test_facade_abort_on_exception;
          Alcotest.test_case "crash atomicity" `Quick
            test_facade_crash_atomicity_with_btree;
          prop_crash_atomicity;
        ] );
    ]
