(* Tests for the log-structured file system: basic I/O, metadata layouts,
   the cleaner, checkpointing, crash recovery, and a model-based property
   test of random operation sequences. *)

let remount (m : Tutil.machine) fs =
  Lfs.crash fs;
  Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg

let make_harness () =
  let m = Tutil.machine () in
  let fs = ref (Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg) in
  {
    Conformance.vfs = (fun () -> Lfs.vfs !fs);
    sync_remount =
      (fun () ->
        Lfs.sync !fs;
        fs := remount m !fs);
  }

let test_create_write_read () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/hello" in
  let data = Bytes.of_string "hello, log-structured world" in
  v.Vfs.write fd ~off:0 data;
  Tutil.check_bytes "read back" data (v.Vfs.read fd ~off:0 ~len:(Bytes.length data));
  Alcotest.(check int) "size" (Bytes.length data) (v.Vfs.size fd);
  Alcotest.(check bool) "exists" true (v.Vfs.exists "/hello");
  Alcotest.(check bool) "not exists" false (v.Vfs.exists "/other")

let test_multi_block_and_offsets () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  let fd = v.Vfs.create "/big" in
  let data = Tutil.payload 7 (5 * bs) in
  v.Vfs.write fd ~off:0 data;
  Tutil.check_bytes "full read" data (v.Vfs.read fd ~off:0 ~len:(5 * bs));
  (* Unaligned read spanning blocks. *)
  Tutil.check_bytes "unaligned"
    (Bytes.sub data (bs - 10) 50)
    (v.Vfs.read fd ~off:(bs - 10) ~len:50);
  (* Unaligned overwrite spanning a block boundary. *)
  let patch = Tutil.payload 8 100 in
  v.Vfs.write fd ~off:(2 * bs) data;
  v.Vfs.write fd ~off:((3 * bs) - 50) patch;
  Tutil.check_bytes "patched"
    patch
    (v.Vfs.read fd ~off:((3 * bs) - 50) ~len:100)

let test_holes_read_zero () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  let fd = v.Vfs.create "/sparse" in
  v.Vfs.write fd ~off:(10 * bs) (Bytes.of_string "tail");
  Alcotest.(check int) "size includes hole" ((10 * bs) + 4) (v.Vfs.size fd);
  let hole = v.Vfs.read fd ~off:bs ~len:bs in
  Alcotest.(check bool) "hole reads as zeros" true
    (Bytes.for_all (fun c -> c = '\000') hole)

let test_short_read_at_eof () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/short" in
  v.Vfs.write fd ~off:0 (Bytes.of_string "abc");
  Alcotest.(check string) "short read" "bc"
    (Bytes.to_string (v.Vfs.read fd ~off:1 ~len:100));
  Alcotest.(check string) "read past eof" ""
    (Bytes.to_string (v.Vfs.read fd ~off:50 ~len:10))

let test_indirect_and_double_indirect () =
  let cfg = Tutil.small_config () in
  (* Bigger disk so a double-indirect file fits. *)
  let cfg =
    { cfg with
      Config.disk = { cfg.Config.disk with nblocks = 16384 };
      fs = { cfg.Config.fs with cache_blocks = 64 } }
  in
  let m, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  let per = bs / 4 in
  let fd = v.Vfs.create "/deep" in
  (* One block in each addressing regime: direct, single-indirect, and
     double-indirect territory. *)
  let direct = Tutil.payload 1 bs in
  let single = Tutil.payload 2 bs in
  let dbl = Tutil.payload 3 bs in
  v.Vfs.write fd ~off:0 direct;
  v.Vfs.write fd ~off:(20 * bs) single;
  v.Vfs.write fd ~off:((12 + (2 * per)) * bs) dbl;
  let check () =
    let v = Lfs.vfs fs in
    Tutil.check_bytes "direct" direct (v.Vfs.read fd ~off:0 ~len:bs);
    Tutil.check_bytes "single indirect" single (v.Vfs.read fd ~off:(20 * bs) ~len:bs);
    Tutil.check_bytes "double indirect" dbl
      (v.Vfs.read fd ~off:((12 + (2 * per)) * bs) ~len:bs)
  in
  check ();
  v.Vfs.sync ();
  let fs = remount m fs in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.open_file "/deep" in
  Tutil.check_bytes "direct after remount" direct (v.Vfs.read fd ~off:0 ~len:bs);
  Tutil.check_bytes "single after remount" single
    (v.Vfs.read fd ~off:(20 * bs) ~len:bs);
  Tutil.check_bytes "double after remount" dbl
    (v.Vfs.read fd ~off:((12 + (2 * per)) * bs) ~len:bs)

let test_truncate () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  let fd = v.Vfs.create "/t" in
  let data = Tutil.payload 4 (4 * bs) in
  v.Vfs.write fd ~off:0 data;
  v.Vfs.truncate fd bs;
  Alcotest.(check int) "shrunk" bs (v.Vfs.size fd);
  Tutil.check_bytes "prefix kept" (Bytes.sub data 0 bs) (v.Vfs.read fd ~off:0 ~len:bs);
  (* Growing again reads zeros where old data used to be. *)
  v.Vfs.truncate fd (2 * bs);
  let z = v.Vfs.read fd ~off:bs ~len:bs in
  Alcotest.(check bool) "zeros after regrow" true
    (Bytes.for_all (fun c -> c = '\000') z)

let test_directories () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  v.Vfs.mkdir "/docs";
  v.Vfs.mkdir "/docs/old";
  let fd = v.Vfs.create "/docs/readme" in
  v.Vfs.write fd ~off:0 (Bytes.of_string "hi");
  Alcotest.(check (list string)) "listing" [ "old"; "readme" ]
    (List.sort compare (List.map fst (v.Vfs.readdir "/docs")));
  let st = v.Vfs.stat "/docs/readme" in
  Alcotest.(check int) "stat size" 2 st.Vfs.size;
  Alcotest.(check bool) "stat kind" true (st.Vfs.kind = Vfs.File);
  v.Vfs.remove "/docs/readme";
  v.Vfs.remove "/docs/old";
  v.Vfs.remove "/docs";
  Alcotest.(check bool) "all gone" false (v.Vfs.exists "/docs")

let test_protected_attribute () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let _ = v.Vfs.create "/db" in
  Alcotest.(check bool) "default unprotected" false (v.Vfs.stat "/db").Vfs.protected_;
  v.Vfs.set_protected "/db" true;
  Alcotest.(check bool) "set" true (v.Vfs.stat "/db").Vfs.protected_;
  v.Vfs.sync ();
  let fs = remount m fs in
  let v = Lfs.vfs fs in
  Alcotest.(check bool) "persists across remount" true
    (v.Vfs.stat "/db").Vfs.protected_

let test_sync_remount_preserves () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  let files =
    List.init 10 (fun i ->
        let path = Printf.sprintf "/f%d" i in
        let data = Tutil.payload i ((i + 1) * 500) in
        let fd = v.Vfs.create path in
        v.Vfs.write fd ~off:0 data;
        (path, data))
  in
  ignore bs;
  v.Vfs.sync ();
  let fs = remount m fs in
  let v = Lfs.vfs fs in
  List.iter
    (fun (path, data) ->
      let fd = v.Vfs.open_file path in
      Tutil.check_bytes path data (v.Vfs.read fd ~off:0 ~len:(Bytes.length data)))
    files

let test_fsync_then_crash () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let data = Tutil.payload 9 10_000 in
  let fd = v.Vfs.create "/durable" in
  (* Persist the namespace first — fsync covers file data, not the parent
     directory, exactly as in UNIX. *)
  v.Vfs.sync ();
  v.Vfs.write fd ~off:0 data;
  v.Vfs.fsync fd;
  (* Crash without a checkpoint: recovery must roll forward. *)
  let fs = remount m fs in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.open_file "/durable" in
  Tutil.check_bytes "rolled forward" data
    (v.Vfs.read fd ~off:0 ~len:(Bytes.length data))

let test_unsynced_data_lost_cleanly () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/a" in
  v.Vfs.write fd ~off:0 (Bytes.of_string "persisted");
  v.Vfs.sync ();
  let fd2 = v.Vfs.create "/volatile" in
  v.Vfs.write fd2 ~off:0 (Bytes.of_string "in cache only");
  v.Vfs.write fd ~off:0 (Bytes.of_string "PERSISTED");
  (* no sync *)
  let fs = remount m fs in
  let v = Lfs.vfs fs in
  Alcotest.(check bool) "unsynced create lost" false (v.Vfs.exists "/volatile");
  let fd = v.Vfs.open_file "/a" in
  Alcotest.(check string) "old contents intact" "persisted"
    (Bytes.to_string (v.Vfs.read fd ~off:0 ~len:100))

let test_crash_raises () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/x" in
  Lfs.crash fs;
  Alcotest.check_raises "ops raise after crash" Lfs.Crashed (fun () ->
      ignore (v.Vfs.read fd ~off:0 ~len:1))

let test_cleaner_reclaims_and_preserves () =
  let cfg = Tutil.small_config () in
  let cfg = { cfg with Config.disk = { cfg.Config.disk with nblocks = 1024 } } in
  let m, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  (* Persistent file that must survive all cleaning. *)
  let keep = Tutil.payload 42 (8 * bs) in
  let kfd = v.Vfs.create "/keep" in
  v.Vfs.write kfd ~off:0 keep;
  v.Vfs.sync ();
  (* Churn: repeatedly overwrite a scratch file, generating dead segments
     until the cleaner has to run. *)
  let sfd = v.Vfs.create "/scratch" in
  for round = 0 to 80 do
    let data = Tutil.payload round (16 * bs) in
    v.Vfs.write sfd ~off:0 data;
    v.Vfs.fsync sfd
  done;
  Alcotest.(check bool) "cleaner ran" true
    (Stats.count m.Tutil.stats "cleaner.segments"
     + Stats.count m.Tutil.stats "cleaner.reclaimed_dead"
    > 0);
  Alcotest.(check bool) "free segments available" true (Lfs.free_segments fs > 0);
  Tutil.check_bytes "survivor intact" keep (v.Vfs.read kfd ~off:0 ~len:(8 * bs));
  (* And after a crash+remount everything still checks out. *)
  v.Vfs.sync ();
  let fs = remount m fs in
  let v = Lfs.vfs fs in
  let kfd = v.Vfs.open_file "/keep" in
  Tutil.check_bytes "survivor intact after remount" keep
    (v.Vfs.read kfd ~off:0 ~len:(8 * bs))

let test_no_space () =
  let cfg = Tutil.small_config () in
  let cfg =
    {
      cfg with
      Config.disk = { cfg.Config.disk with nblocks = 512 };
      fs =
        {
          cfg.Config.fs with
          cleaner_low_segments = 2;
          cleaner_high_segments = 3;
        };
    }
  in
  let _, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/huge" in
  Alcotest.(check bool) "fills up" true
    (match
       for i = 0 to 1000 do
         v.Vfs.write fd ~off:(i * v.Vfs.block_size)
           (Tutil.payload i v.Vfs.block_size);
         if i mod 8 = 0 then v.Vfs.fsync fd
       done
     with
    | exception Vfs.Error (Vfs.No_space, _) -> true
    | () -> false)

(* Model-based property test: random create/write/remove/sync/remount
   sequences must match an in-memory map of path -> contents. Only synced
   state is compared after a remount. *)
let prop_model =
  let op_gen =
    QCheck2.Gen.(
      frequency
        [
          (6, map2 (fun f (off, len) -> `Write (f, off, len))
                (int_bound 4) (pair (int_bound 3000) (int_range 1 2000)));
          (2, map (fun f -> `Remove f) (int_bound 4));
          (2, map (fun f -> `Truncate f) (int_bound 4));
          (1, return `Sync);
          (1, return `Remount);
        ])
  in
  Tutil.qtest ~count:30 "model equivalence" QCheck2.Gen.(list_size (int_range 1 40) op_gen)
    (fun ops ->
      let m, fs0 = Tutil.fresh_lfs () in
      let fs = ref fs0 in
      let model : (string, bytes) Hashtbl.t = Hashtbl.create 8 in
      let synced = ref [] in
      let path i = Printf.sprintf "/file%d" i in
      let counter = ref 0 in
      List.iter
        (fun op ->
          let v = Lfs.vfs !fs in
          incr counter;
          match op with
          | `Write (i, off, len) ->
            let p = path i in
            let data = Tutil.payload !counter len in
            let fd =
              if v.Vfs.exists p then v.Vfs.open_file p else v.Vfs.create p
            in
            v.Vfs.write fd ~off data;
            let old = Option.value (Hashtbl.find_opt model p) ~default:Bytes.empty in
            let size = max (Bytes.length old) (off + len) in
            let b = Bytes.make size '\000' in
            Bytes.blit old 0 b 0 (Bytes.length old);
            Bytes.blit data 0 b off len;
            Hashtbl.replace model p b
          | `Remove i ->
            let p = path i in
            if v.Vfs.exists p then begin
              v.Vfs.remove p;
              Hashtbl.remove model p
            end
          | `Truncate i ->
            let p = path i in
            if v.Vfs.exists p then begin
              let n = v.Vfs.size (v.Vfs.open_file p) / 2 in
              v.Vfs.truncate (v.Vfs.open_file p) n;
              let old = Hashtbl.find model p in
              Hashtbl.replace model p
                (Bytes.sub old 0 (min n (Bytes.length old)))
            end
          | `Sync ->
            v.Vfs.sync ();
            synced :=
              Hashtbl.fold (fun k d acc -> (k, Bytes.copy d) :: acc) model []
          | `Remount ->
            fs := remount m !fs;
            Hashtbl.reset model;
            List.iter (fun (k, d) -> Hashtbl.replace model k d) !synced)
        ops;
      (* The image must be internally consistent after every sequence. *)
      Lfs.check !fs;
      (* Final check against the live model. *)
      let v = Lfs.vfs !fs in
      Hashtbl.fold
        (fun p data ok ->
          ok
          && v.Vfs.exists p
          &&
          let fd = v.Vfs.open_file p in
          v.Vfs.size fd = Bytes.length data
          && Bytes.equal (v.Vfs.read fd ~off:0 ~len:(Bytes.length data)) data)
        model true)

let test_consistency_check_after_activity () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let rng = Rng.create ~seed:12 in
  for i = 0 to 14 do
    let fd = v.Vfs.create (Printf.sprintf "/f%d" i) in
    v.Vfs.write fd ~off:0 (Tutil.payload i (1 + Rng.int rng 30_000))
  done;
  for round = 0 to 30 do
    let p = Printf.sprintf "/f%d" (Rng.int rng 15) in
    if v.Vfs.exists p then begin
      let fd = v.Vfs.open_file p in
      v.Vfs.write fd ~off:(Rng.int rng 20_000) (Tutil.payload round 5_000)
    end
  done;
  Lfs.sync fs;
  Lfs.check fs;
  (* And after a crash + remount the recovered state is consistent too. *)
  let fs = remount m fs in
  Lfs.check fs

let test_coalesce_restores_contiguity () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  let fd = v.Vfs.create "/frag" in
  (* Sequential load... *)
  for i = 0 to 63 do
    v.Vfs.write fd ~off:(i * bs) (Tutil.payload i bs)
  done;
  Lfs.sync fs;
  let inum = Lfs.inum_of fs "/frag" in
  (* ...then random updates scatter it across segments. *)
  let expected = Array.init 64 (fun i -> Tutil.payload i bs) in
  let rng = Rng.create ~seed:5 in
  for r = 0 to 119 do
    let blk = Rng.int rng 64 in
    let data = Tutil.payload (1000 + r) bs in
    v.Vfs.write fd ~off:(blk * bs) data;
    expected.(blk) <- data;
    if r mod 10 = 0 then v.Vfs.fsync fd
  done;
  Lfs.sync fs;
  let before = Lfs.contiguity fs inum in
  Alcotest.(check bool)
    (Printf.sprintf "fragmented after random updates (%.2f)" before)
    true (before < 0.9);
  (* The Section 5.4 coalescing cleaner restores sequential layout. *)
  Lfs.coalesce_file fs inum;
  Lfs.sync fs;
  let after = Lfs.contiguity fs inum in
  Alcotest.(check bool)
    (Printf.sprintf "coalesced back to sequential (%.2f)" after)
    true (after > 0.95);
  (* Contents unchanged: the last write to each block wins. *)
  Lfs.check fs;
  Array.iteri
    (fun i data ->
      Tutil.check_bytes
        (Printf.sprintf "block %d after coalesce" i)
        data
        (v.Vfs.read fd ~off:(i * bs) ~len:bs))
    expected

let test_coalesce_all_counts () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  for i = 0 to 4 do
    let fd = v.Vfs.create (Printf.sprintf "/c%d" i) in
    v.Vfs.write fd ~off:0 (Tutil.payload i (4 * bs))
  done;
  let fd1 = v.Vfs.create "/single" in
  v.Vfs.write fd1 ~off:0 (Bytes.of_string "tiny");
  Lfs.sync fs;
  Alcotest.(check int) "multi-block files rewritten" 5 (Lfs.coalesce_all fs);
  Lfs.check fs

let test_crash_after_cleaning_before_checkpoint () =
  (* Segments cleaned since the last checkpoint must not be reused until
     a checkpoint makes the relocation durable; a crash in that window
     must recover cleanly from the old checkpoint. *)
  let cfg = Tutil.small_config () in
  let cfg = { cfg with Config.disk = { cfg.Config.disk with nblocks = 2048 } } in
  let m, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let keep = Tutil.payload 1 50_000 in
  let kfd = v.Vfs.create "/keep" in
  v.Vfs.write kfd ~off:0 keep;
  v.Vfs.sync ();
  (* Generate dead segments. *)
  let sfd = v.Vfs.create "/churn" in
  for round = 0 to 30 do
    v.Vfs.write sfd ~off:0 (Tutil.payload round 40_000);
    v.Vfs.fsync sfd
  done;
  v.Vfs.sync ();
  (* Clean one victim but crash before any checkpoint. *)
  Alcotest.(check bool) "cleaned one" true (Lfs.clean_once fs);
  Lfs.crash fs;
  let fs = remount m fs in
  Lfs.check fs;
  let v = Lfs.vfs fs in
  let kfd = v.Vfs.open_file "/keep" in
  Tutil.check_bytes "contents intact" keep (v.Vfs.read kfd ~off:0 ~len:50_000)

let test_repeated_crash_recovery_cycles () =
  (* Crash, recover, write, crash again — five times over; every synced
     generation must be intact and the image consistent. *)
  let m, fs0 = Tutil.fresh_lfs () in
  let fs = ref fs0 in
  for generation = 0 to 4 do
    let v = Lfs.vfs !fs in
    let path = Printf.sprintf "/gen%d" generation in
    let fd = v.Vfs.create path in
    v.Vfs.write fd ~off:0 (Tutil.payload generation 20_000);
    v.Vfs.sync ();
    (* Unsynced noise that each crash must discard. *)
    let fd2 =
      if v.Vfs.exists "/noise" then v.Vfs.open_file "/noise" else v.Vfs.create "/noise"
    in
    v.Vfs.write fd2 ~off:0 (Tutil.payload (100 + generation) 8_000);
    fs := remount m !fs;
    Lfs.check !fs
  done;
  let v = Lfs.vfs !fs in
  for generation = 0 to 4 do
    let fd = v.Vfs.open_file (Printf.sprintf "/gen%d" generation) in
    Tutil.check_bytes
      (Printf.sprintf "generation %d" generation)
      (Tutil.payload generation 20_000)
      (v.Vfs.read fd ~off:0 ~len:20_000)
  done

let test_snapshot_time_travel_and_undelete () =
  let _, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let original = Tutil.payload 1 10_000 in
  let fd = v.Vfs.create "/report" in
  v.Vfs.write fd ~off:0 original;
  let fd2 = v.Vfs.create "/doomed" in
  v.Vfs.write fd2 ~off:0 (Bytes.of_string "save me");
  let snap = Lfs.snapshot fs in
  (* Mutate the present: overwrite one file, delete the other. *)
  v.Vfs.write fd ~off:0 (Tutil.payload 2 10_000);
  v.Vfs.remove "/doomed";
  v.Vfs.sync ();
  Alcotest.(check bool) "deleted in the present" false (v.Vfs.exists "/doomed");
  (* The snapshot still shows the old world. *)
  let old = Lfs.snapshot_view fs snap in
  Alcotest.(check bool) "deleted file visible in snapshot" true
    (old.Vfs.exists "/doomed");
  Alcotest.(check string) "undelete: content recovered" "save me"
    (Bytes.to_string
       (old.Vfs.read (old.Vfs.open_file "/doomed") ~off:0 ~len:100));
  Tutil.check_bytes "old version of overwritten file" original
    (old.Vfs.read (old.Vfs.open_file "/report") ~off:0 ~len:10_000);
  (* The view is read-only. *)
  Alcotest.(check bool) "writes rejected" true
    (match old.Vfs.write (old.Vfs.open_file "/report") ~off:0 (Bytes.of_string "x") with
    | exception Vfs.Error (Vfs.Not_supported, _) -> true
    | _ -> false);
  Lfs.release_snapshot fs snap;
  Alcotest.(check int) "no snapshots left" 0 (Lfs.snapshots fs);
  Alcotest.(check bool) "released view rejected" true
    (match Lfs.snapshot_view fs snap with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_snapshot_survives_cleaning_pressure () =
  let cfg = Tutil.small_config () in
  let cfg = { cfg with Config.disk = { cfg.Config.disk with nblocks = 2048 } } in
  let _, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let precious = Tutil.payload 42 30_000 in
  let fd = v.Vfs.create "/precious" in
  v.Vfs.write fd ~off:0 precious;
  let snap = Lfs.snapshot fs in
  let frozen = Lfs.free_segments fs in
  (* Churn hard enough to need the cleaner; pinned segments must survive.
     The writable space is reduced while the snapshot lives. *)
  let sfd = v.Vfs.create "/churn" in
  (try
     for round = 0 to 60 do
       v.Vfs.write sfd ~off:0 (Tutil.payload round 30_000);
       v.Vfs.fsync sfd
     done
   with Vfs.Error (Vfs.No_space, _) -> () (* acceptable under a snapshot *));
  let old = Lfs.snapshot_view fs snap in
  Tutil.check_bytes "snapshot data intact under cleaning pressure" precious
    (old.Vfs.read (old.Vfs.open_file "/precious") ~off:0 ~len:30_000);
  (* Releasing the snapshot returns the frozen segments to service. *)
  Lfs.release_snapshot fs snap;
  v.Vfs.sync ();
  Alcotest.(check bool) "space recoverable after release" true
    (Lfs.free_segments fs >= frozen - 2 || Lfs.clean_once fs);
  Lfs.check fs

let test_policy_greedy_prefers_emptiest () =
  let live = [| 10; 3; 0; 7 |] in
  let v =
    Policy.choose ~policy:`Greedy ~nsegments:4 ~segment_blocks:32 ~now:100.0
      ~live:(fun i -> live.(i))
      ~last_write:(fun _ -> 0.0)
      ~candidate:(fun i -> i <> 2)
  in
  Alcotest.(check (option int)) "picks min live" (Some 1) v

let test_policy_dead_segment_wins () =
  let live = [| 10; 3; 0; 7 |] in
  let v =
    Policy.choose ~policy:`Cost_benefit ~nsegments:4 ~segment_blocks:32
      ~now:100.0
      ~live:(fun i -> live.(i))
      ~last_write:(fun _ -> 0.0)
      ~candidate:(fun _ -> true)
  in
  Alcotest.(check (option int)) "dead segment free to claim" (Some 2) v

let test_policy_cost_benefit_prefers_cold () =
  (* Equal utilization: the older (colder) segment should win. *)
  let v =
    Policy.choose ~policy:`Cost_benefit ~nsegments:2 ~segment_blocks:32
      ~now:100.0
      ~live:(fun _ -> 16)
      ~last_write:(fun i -> if i = 0 then 90.0 else 10.0)
      ~candidate:(fun _ -> true)
  in
  Alcotest.(check (option int)) "cold wins" (Some 1) v

let test_policy_none () =
  Alcotest.(check (option int)) "no candidates" None
    (Policy.choose ~policy:`Greedy ~nsegments:4 ~segment_blocks:32 ~now:0.0
       ~live:(fun _ -> 1)
       ~last_write:(fun _ -> 0.0)
       ~candidate:(fun _ -> false))

(* Model-based property test for victim selection: the policy must match
   a one-pass reference (dead segments score infinity; ties keep the
   earliest index; replacement only on a strictly better score). *)
let prop_policy_model =
  let gen =
    QCheck2.Gen.(
      pair
        (oneofl [ `Greedy; `Cost_benefit ])
        (list_size (int_range 1 12)
           (triple (int_bound 32)
              (map (fun w -> float_of_int w /. 10.0) (int_bound 1000))
              bool)))
  in
  Tutil.qtest ~count:300 "policy matches reference model" gen
    (fun (policy, segs) ->
      let a = Array.of_list segs in
      let n = Array.length a in
      let live i = match a.(i) with l, _, _ -> l in
      let last_write i = match a.(i) with _, w, _ -> w in
      let candidate i = match a.(i) with _, _, c -> c in
      let now = 100.0 in
      let score i =
        if live i = 0 then infinity
        else
          let u = float_of_int (live i) /. 32.0 in
          match policy with
          | `Greedy -> -.float_of_int (live i)
          | `Cost_benefit ->
            let age = Float.max 0.0 (now -. last_write i) in
            (1.0 -. u) *. (1.0 +. age) /. (1.0 +. u)
      in
      let expect = ref None in
      for i = 0 to n - 1 do
        if candidate i then
          match !expect with
          | Some (_, s) when s >= score i -> ()
          | _ -> expect := Some (i, score i)
      done;
      Policy.choose ~policy ~nsegments:n ~segment_blocks:32 ~now ~live
        ~last_write ~candidate
      = Option.map fst !expect)

(* Regression for the cost-benefit age signal: a segment's [last_write]
   must move only when data is written into that segment — not when the
   usage entry is touched for bookkeeping — and must survive a remount
   through the checkpointed usage table. *)
let test_last_write_age_signal () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  (* Three segments' worth of data, so at least two segments close and
     stop receiving writes. *)
  let fd = v.Vfs.create "/old" in
  v.Vfs.write fd ~off:0 (Tutil.payload 1 (96 * bs));
  v.Vfs.sync ();
  let n = Lfs.nsegments fs in
  let snap () =
    List.init n (fun i -> (i, Lfs.live_blocks fs i, Lfs.last_write fs i))
  in
  let before = snap () in
  (* Ten simulated minutes later, unrelated writes land in other (or
     still-open) segments; any closed segment's age signal must not
     move. A segment whose live count changed took part in the new
     write, so only stable ones are compared. *)
  Clock.advance m.Tutil.clock 600.0;
  let fd2 = v.Vfs.create "/new" in
  v.Vfs.write fd2 ~off:0 (Tutil.payload 2 (4 * bs));
  v.Vfs.sync ();
  let stable = ref 0 in
  List.iter
    (fun (i, live, lw) ->
      if live > 0 && Lfs.live_blocks fs i = live then begin
        incr stable;
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "segment %d last_write unchanged" i)
          lw (Lfs.last_write fs i)
      end)
    before;
  Alcotest.(check bool) "some stable segments compared" true (!stable > 0);
  (* And the signal is durable: a crash + remount rebuilds the usage
     table from the checkpoint, ages intact. *)
  let persisted = snap () in
  let fs = remount m fs in
  List.iter
    (fun (i, live, lw) ->
      if live > 0 then
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "segment %d last_write after remount" i)
          lw (Lfs.last_write fs i))
    (List.filter (fun (i, _, _) -> Lfs.live_blocks fs i > 0) persisted)

(* Regression: the user-space cleaner must checkpoint only when it
   actually cleaned a segment. With the low-water mark set impossibly
   high, every operation consults the cleaner; on a fresh file system
   there is no victim, so no cleaning — and therefore no checkpoint —
   may happen. *)
let test_user_cleaner_idle_no_checkpoint () =
  let cfg = Tutil.small_config () in
  let cfg =
    {
      cfg with
      Config.fs =
        {
          cfg.Config.fs with
          lfs_user_cleaner = true;
          cleaner_low_segments = 10_000;
          cleaner_high_segments = 10_001;
        };
    }
  in
  let m, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let base_cp = Stats.count m.Tutil.stats "lfs.checkpoints" in
  for _ = 1 to 200 do
    ignore (v.Vfs.exists "/nope")
  done;
  Alcotest.(check int) "idle ticks cleaned nothing" 0
    (Stats.count m.Tutil.stats "cleaner.segments");
  Alcotest.(check int) "idle ticks forced no checkpoints" base_cp
    (Stats.count m.Tutil.stats "lfs.checkpoints")

(* Regression: dead-segment reclaims must feed the same accounting as
   copying cleans — ["cleaner.segments"] counts them and the
   ["cleaner.clean"] histogram observes them (as a zero-cost clean), so
   the two stay equal; and the incrementally-maintained reclaimable
   counter must agree with a recount ([Lfs.check] asserts it). *)
let test_cleaner_counter_consistency () =
  let cfg = Tutil.small_config () in
  let cfg = { cfg with Config.disk = { cfg.Config.disk with nblocks = 1024 } } in
  let m, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  let fd = v.Vfs.create "/churn" in
  for round = 0 to 60 do
    v.Vfs.write fd ~off:0 (Tutil.payload round (16 * bs));
    v.Vfs.fsync fd
  done;
  v.Vfs.sync ();
  Alcotest.(check bool) "dead segments were reclaimed" true
    (Stats.count m.Tutil.stats "cleaner.reclaimed_dead" >= 1);
  let segs = Stats.count m.Tutil.stats "cleaner.segments" in
  let cleans =
    match Stats.histo m.Tutil.stats "cleaner.clean" with
    | Some h -> Histo.count h
    | None -> 0
  in
  Alcotest.(check int) "cleaner.segments = cleaner.clean samples" segs cleans;
  Alcotest.(check bool) "segments counter covers dead reclaims" true
    (segs >= Stats.count m.Tutil.stats "cleaner.reclaimed_dead");
  (* Reclaimable = Free + Pending; a checkpoint converts every Pending
     segment to Free, so afterwards the two accessors must agree. *)
  Alcotest.(check bool) "reclaimable >= free" true
    (Lfs.reclaimable_segments fs >= Lfs.free_segments fs);
  Lfs.checkpoint fs;
  Alcotest.(check int) "after checkpoint, reclaimable = free"
    (Lfs.free_segments fs)
    (Lfs.reclaimable_segments fs);
  Lfs.check fs

(* Hot/cold segregation: survivors relocated by the cleaner land in a
   dedicated cold segment, and the cold bit rides the checkpointed usage
   table across a crash + remount. *)
let test_cold_bit_persists_remount () =
  let cfg = Tutil.small_config () in
  let cfg =
    {
      cfg with
      Config.disk = { cfg.Config.disk with nblocks = 1024 };
      fs = { cfg.Config.fs with cleaner_segregate = true };
    }
  in
  let m, fs = Tutil.fresh_lfs ~cfg () in
  let v = Lfs.vfs fs in
  let bs = v.Vfs.block_size in
  (* Long-lived data the cleaner will have to carry as cold survivors. *)
  let kfd = v.Vfs.create "/keep" in
  let keep = Tutil.payload 42 (8 * bs) in
  v.Vfs.write kfd ~off:0 keep;
  v.Vfs.sync ();
  let sfd = v.Vfs.create "/scratch" in
  for round = 0 to 20 do
    v.Vfs.write sfd ~off:0 (Tutil.payload round (16 * bs));
    v.Vfs.fsync sfd
  done;
  v.Vfs.sync ();
  let n = Lfs.nsegments fs in
  let cold_segments () =
    List.filter
      (fun i -> Lfs.segment_cold fs i && Lfs.live_blocks fs i > 0)
      (List.init n (fun i -> i))
  in
  (* Dead scratch segments reclaim for free; keep cleaning until a
     victim with survivors forces a copying clean through the
     relocation (cold) head. *)
  let guard = ref 0 in
  while cold_segments () = [] && !guard < 64 && Lfs.clean_once fs do
    incr guard
  done;
  let cold = cold_segments () in
  Alcotest.(check bool) "segregation opened a cold segment" true (cold <> []);
  Lfs.checkpoint fs;
  let fs = remount m fs in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "segment %d still cold after remount" i)
        true (Lfs.segment_cold fs i))
    cold;
  let v = Lfs.vfs fs in
  let kfd = v.Vfs.open_file "/keep" in
  Tutil.check_bytes "cold survivor intact" keep (v.Vfs.read kfd ~off:0 ~len:(8 * bs))

let () =
  Alcotest.run "tx_lfs"
    [
      ("conformance", Conformance.cases make_harness);
      ( "io",
        [
          Alcotest.test_case "create/write/read" `Quick test_create_write_read;
          Alcotest.test_case "multi-block" `Quick test_multi_block_and_offsets;
          Alcotest.test_case "holes" `Quick test_holes_read_zero;
          Alcotest.test_case "short reads" `Quick test_short_read_at_eof;
          Alcotest.test_case "indirect/double-indirect" `Quick
            test_indirect_and_double_indirect;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "directories" `Quick test_directories;
          Alcotest.test_case "protected attribute" `Quick test_protected_attribute;
        ] );
      ( "durability",
        [
          Alcotest.test_case "sync+remount" `Quick test_sync_remount_preserves;
          Alcotest.test_case "fsync then crash" `Quick test_fsync_then_crash;
          Alcotest.test_case "unsynced lost cleanly" `Quick
            test_unsynced_data_lost_cleanly;
          Alcotest.test_case "crash raises" `Quick test_crash_raises;
          Alcotest.test_case "crash after cleaning" `Quick
            test_crash_after_cleaning_before_checkpoint;
          Alcotest.test_case "repeated crash cycles" `Quick
            test_repeated_crash_recovery_cycles;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "time travel / undelete" `Quick
            test_snapshot_time_travel_and_undelete;
          Alcotest.test_case "survives cleaning" `Quick
            test_snapshot_survives_cleaning_pressure;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "consistency check" `Quick
            test_consistency_check_after_activity;
          Alcotest.test_case "coalesce restores contiguity" `Quick
            test_coalesce_restores_contiguity;
          Alcotest.test_case "coalesce_all" `Quick test_coalesce_all_counts;
        ] );
      ( "cleaner",
        [
          Alcotest.test_case "reclaims and preserves" `Quick
            test_cleaner_reclaims_and_preserves;
          Alcotest.test_case "no space" `Quick test_no_space;
          Alcotest.test_case "greedy policy" `Quick test_policy_greedy_prefers_emptiest;
          Alcotest.test_case "dead segment" `Quick test_policy_dead_segment_wins;
          Alcotest.test_case "cost-benefit cold" `Quick
            test_policy_cost_benefit_prefers_cold;
          Alcotest.test_case "no candidate" `Quick test_policy_none;
          prop_policy_model;
          Alcotest.test_case "last_write age signal" `Quick
            test_last_write_age_signal;
          Alcotest.test_case "user cleaner: no idle checkpoint" `Quick
            test_user_cleaner_idle_no_checkpoint;
          Alcotest.test_case "counter consistency" `Quick
            test_cleaner_counter_consistency;
          Alcotest.test_case "cold bit persists" `Quick
            test_cold_bit_persists_remount;
        ] );
      ("model", [ prop_model ]);
    ]
