(* Integration tests: TPC-B on all three configurations (user-level on
   read-optimized, user-level on LFS, embedded in LFS) at a small scale,
   with balance-consistency invariants, plus the Andrew/Bigfile/SCAN
   workloads. *)

let small_scale = { Tpcb.accounts = 2_000; tellers = 20; branches = 2 }

let test_cfg () =
  let cfg = Tutil.small_config () in
  (* Roomy enough for a 2000-account database plus churn. *)
  { cfg with Config.disk = { cfg.Config.disk with nblocks = 8192 } }

let build_lfs () =
  let m = Tutil.machine ~cfg:(test_cfg ()) () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let rng = Rng.create ~seed:1 in
  let db = Tpcb.build m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~rng ~scale:small_scale in
  (m, fs, v, db)

let build_ffs () =
  let m = Tutil.machine ~cfg:(test_cfg ()) () in
  let fs = Ffs.format m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Ffs.vfs fs in
  let rng = Rng.create ~seed:1 in
  let db = Tpcb.build m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~rng ~scale:small_scale in
  (m, fs, v, db)

let run_user (m : Tutil.machine) v db n =
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:256
      ~log_path:"/tpcb/log" ()
  in
  let rng = Rng.create ~seed:7 in
  let r = Tpcb.run m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.User env) ~rng ~n in
  (* Flush the user-level pool so plain-pager inspection sees the data. *)
  Libtp.checkpoint env;
  r

let test_scaling_rules () =
  let s = Tpcb.scale_for_tps 10 in
  Alcotest.(check int) "accounts" 1_000_000 s.Tpcb.accounts;
  Alcotest.(check int) "tellers" 100 s.Tpcb.tellers;
  Alcotest.(check int) "branches" 10 s.Tpcb.branches

let test_user_on_lfs () =
  let m, _, v, db = build_lfs () in
  let r = run_user m v db 150 in
  Alcotest.(check int) "all committed" 150 r.Tpcb.txns;
  Alcotest.(check bool) "simulated time advanced" true (r.Tpcb.elapsed_s > 0.0);
  Alcotest.(check int) "history grew" 150
    (Tpcb.history_count m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v);
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v

let test_user_on_ffs () =
  let m, _, v, db = build_ffs () in
  let r = run_user m v db 150 in
  Alcotest.(check int) "all committed" 150 r.Tpcb.txns;
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v

let test_kernel_on_lfs () =
  let m, fs, v, db = build_lfs () in
  let k = Ktxn.create fs in
  Tpcb.protect_all db k;
  let rng = Rng.create ~seed:7 in
  let r = Tpcb.run m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.Kernel k) ~rng ~n:150 in
  Alcotest.(check int) "all committed" 150 r.Tpcb.txns;
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v

let test_kernel_crash_consistency () =
  let m, fs, _, db = build_lfs () in
  let k = Ktxn.create fs in
  Tpcb.protect_all db k;
  let rng = Rng.create ~seed:7 in
  ignore (Tpcb.run m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.Kernel k) ~rng ~n:80);
  (* Crash mid-transaction. *)
  let txn = Ktxn.txn_begin k in
  let inum = Tpcb.account_fd db in
  Ktxn.write_page k txn ~inum ~page:1 (Bytes.make 4096 'J');
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let db = Tpcb.open_db v ~scale:small_scale in
  (* The database is consistent: committed transactions all present, the
     torn one absent. *)
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v;
  Alcotest.(check int) "exactly the committed history" 80
    (Tpcb.history_count m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v)

let test_user_crash_consistency () =
  let m, fs, v, db = build_lfs () in
  ignore (run_user m v db 60);
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  (* Recovery happens inside open_env. *)
  let _env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:256
      ~log_path:"/tpcb/log" ()
  in
  let db = Tpcb.open_db v ~scale:small_scale in
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v;
  Alcotest.(check int) "history preserved" 60
    (Tpcb.history_count m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v)

let test_balances_match_known_deltas () =
  let m, _, v, db = build_lfs () in
  ignore (run_user m v db 40);
  (* Σ accounts = Σ tellers = Σ branches is checked; additionally the
     grand total must equal the history sum, i.e. money is conserved. *)
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v

let dump_balances (m : Tutil.machine) v db =
  let bt =
    Btree.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu
      (Pager.plain v (Tpcb.account_fd db))
  in
  let acc = ref [] in
  Btree.iter bt (fun k v ->
      acc := (k, v) :: !acc;
      true);
  List.rev !acc

let test_user_and_kernel_produce_identical_state () =
  (* The same seed drives the same transaction mix through both systems;
     semantically they must compute the same database. *)
  let run_kernel () =
    let m, fs, v, db = build_lfs () in
    let k = Ktxn.create fs in
    Tpcb.protect_all db k;
    let rng = Rng.create ~seed:23 in
    ignore (Tpcb.run m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.Kernel k) ~rng ~n:120);
    dump_balances m v db
  in
  let run_user () =
    let m, _, v, db = build_lfs () in
    let env =
      Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:256
        ~log_path:"/tpcb/log" ()
    in
    let rng = Rng.create ~seed:23 in
    ignore (Tpcb.run m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.User env) ~rng ~n:120);
    Libtp.checkpoint env;
    dump_balances m v db
  in
  let a = run_kernel () and b = run_user () in
  Alcotest.(check int) "same record count" (List.length a) (List.length b);
  List.iter2
    (fun (k1, v1) (k2, v2) ->
      if k1 <> k2 || v1 <> v2 then
        Alcotest.failf "divergence at %s: kernel=%s user=%s" k1 v1 v2)
    a b

let test_multi_user_lfs_kernel () =
  let m, fs, v, db = build_lfs () in
  let k = Ktxn.create fs in
  Tpcb.protect_all db k;
  let rng = Rng.create ~seed:11 in
  let r =
    Tpcb.run_multi m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.Kernel k)
      ~rng ~n:200 ~mpl:4
  in
  Alcotest.(check int) "all committed" 200 r.Tpcb.base.Tpcb.txns;
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v;
  Alcotest.(check int) "history matches commits" 200
    (Tpcb.history_count m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v)

let test_multi_user_contention () =
  (* A tiny database forces conflicts and deadlocks; the run must still
     complete with a consistent outcome. *)
  let tiny = { Tpcb.accounts = 8; tellers = 4; branches = 2 } in
  let m = Tutil.machine ~cfg:(test_cfg ()) () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let rng = Rng.create ~seed:4 in
  let db = Tpcb.build m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~rng ~scale:tiny in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:64
      ~log_path:"/tpcb/log" ()
  in
  let r =
    Tpcb.run_multi m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.User env)
      ~rng ~n:300 ~mpl:6
  in
  Alcotest.(check int) "all committed" 300 r.Tpcb.base.Tpcb.txns;
  Alcotest.(check bool) "contention observed" true (r.Tpcb.conflicts > 0);
  Libtp.checkpoint env;
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v

let test_record_grain_mpl8_shared_history () =
  (* Regression for the deleted history-partitioning hack: at record
     grain all eight workers append to the one shared history file
     (PR 3 gave each worker a private partition to dodge the tail-page
     lock). Slot-level record locks must keep the run consistent, and
     the hole-tolerant readers must count exactly the committed
     appends. *)
  let cfg = test_cfg () in
  let cfg =
    { cfg with Config.fs = { cfg.Config.fs with Config.lock_grain = `Record } }
  in
  let m = Tutil.machine ~cfg () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let rng = Rng.create ~seed:5 in
  let db =
    Tpcb.build m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~rng ~scale:small_scale
  in
  let sched = Sched.create m.Tutil.clock in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:256
      ~log_path:"/tpcb/log" ()
  in
  let r =
    Tpcb.run_sched m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.User env)
      ~rng ~n:200 ~mpl:8
  in
  Sched.detach sched;
  Alcotest.(check int) "all committed" 200 r.Tpcb.base.Tpcb.txns;
  Libtp.checkpoint env;
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v;
  Alcotest.(check int) "committed appends visible in shared history" 200
    (Tpcb.history_count m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v)

let test_multi_user_matches_single_user_invariants () =
  let m, fs, v, db = build_lfs () in
  let k = Ktxn.create fs in
  Tpcb.protect_all db k;
  let rng = Rng.create ~seed:11 in
  let r =
    Tpcb.run_multi m.Tutil.clock m.Tutil.stats m.Tutil.cfg db (Tpcb.Kernel k)
      ~rng ~n:120 ~mpl:3
  in
  (* Crash right after: everything committed must survive. *)
  ignore r;
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v' = Lfs.vfs fs in
  ignore v;
  let db = Tpcb.open_db v' ~scale:small_scale in
  Tpcb.check_consistency m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v';
  Alcotest.(check int) "committed history after crash" 120
    (Tpcb.history_count m.Tutil.clock m.Tutil.stats m.Tutil.cfg db v')

(* Workloads ---------------------------------------------------------------- *)

let test_andrew_runs_on_both () =
  let run_one mk =
    let m = Tutil.machine ~cfg:(test_cfg ()) () in
    let v = mk m in
    let rng = Rng.create ~seed:3 in
    let phases =
      Workloads.andrew m.Tutil.clock m.Tutil.stats m.Tutil.cfg v rng
        { Workloads.dirs = 4; files_per_dir = 5; file_bytes = 3000 }
    in
    Alcotest.(check int) "five phases" 5 (List.length phases);
    List.iter
      (fun (name, dt) ->
        if dt < 0.0 then Alcotest.failf "phase %s negative time" name)
      phases;
    (* The tree really exists. *)
    Alcotest.(check int) "dirs" 4 (List.length (v.Vfs.readdir "/andrew"));
    List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 phases
  in
  let lfs_time =
    run_one (fun m ->
        Lfs.vfs (Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg))
  in
  let ffs_time =
    run_one (fun m ->
        Ffs.vfs (Ffs.format m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg))
  in
  Alcotest.(check bool) "both measurable" true (lfs_time > 0.0 && ffs_time > 0.0)

let test_bigfile () =
  let m = Tutil.machine ~cfg:(test_cfg ()) () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let rng = Rng.create ~seed:3 in
  let phases =
    Workloads.bigfile m.Tutil.clock m.Tutil.stats m.Tutil.cfg v rng
      { Workloads.sizes_bytes = [ 500_000; 1_000_000 ] }
  in
  Alcotest.(check int) "three phases per size" 6 (List.length phases);
  (* Files are gone afterwards. *)
  Alcotest.(check int) "cleaned up" 0 (List.length (v.Vfs.readdir "/bigfile"))

let test_scan_counts_all_records () =
  let m, _, v, db = build_lfs () in
  let dt = Workloads.scan m.Tutil.clock m.Tutil.stats m.Tutil.cfg v db in
  Alcotest.(check bool) "takes time" true (dt > 0.0);
  Alcotest.(check int) "saw every account" small_scale.Tpcb.accounts
    (Stats.count m.Tutil.stats "scan.records")

let test_lfs_scan_slower_after_random_updates () =
  (* The Section 5.3 effect at miniature scale: scanning after random
     updates is slower on LFS than on the read-optimized system. *)
  let scan_time build run_txns =
    let m, v, db, fssync =
      match build with
      | `Lfs ->
        let m, fs, v, db = build_lfs () in
        (m, v, db, fun () -> Lfs.sync fs)
      | `Ffs ->
        let m, fs, v, db = build_ffs () in
        (m, v, db, fun () -> Ffs.sync fs)
    in
    ignore (run_user m v db run_txns);
    fssync ();
    Workloads.scan m.Tutil.clock m.Tutil.stats m.Tutil.cfg v db
  in
  let lfs = scan_time `Lfs 400 in
  let ffs = scan_time `Ffs 400 in
  Alcotest.(check bool)
    (Printf.sprintf "LFS scan (%.3fs) slower than read-optimized (%.3fs)" lfs ffs)
    true (lfs > ffs)

let () =
  Alcotest.run "tx_tpcb"
    [
      ( "tpcb",
        [
          Alcotest.test_case "scaling rules" `Quick test_scaling_rules;
          Alcotest.test_case "user on LFS" `Quick test_user_on_lfs;
          Alcotest.test_case "user on FFS" `Quick test_user_on_ffs;
          Alcotest.test_case "kernel on LFS" `Quick test_kernel_on_lfs;
          Alcotest.test_case "kernel crash consistency" `Quick
            test_kernel_crash_consistency;
          Alcotest.test_case "user crash consistency" `Quick
            test_user_crash_consistency;
          Alcotest.test_case "money conserved" `Quick test_balances_match_known_deltas;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "user == kernel semantics" `Quick
            test_user_and_kernel_produce_identical_state;
        ] );
      ( "multi-user",
        [
          Alcotest.test_case "kernel mpl=4" `Quick test_multi_user_lfs_kernel;
          Alcotest.test_case "high contention" `Quick test_multi_user_contention;
          Alcotest.test_case "record grain, shared history, mpl=8" `Quick
            test_record_grain_mpl8_shared_history;
          Alcotest.test_case "crash after multi-user run" `Quick
            test_multi_user_matches_single_user_invariants;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "andrew" `Quick test_andrew_runs_on_both;
          Alcotest.test_case "bigfile" `Quick test_bigfile;
          Alcotest.test_case "scan" `Quick test_scan_counts_all_records;
          Alcotest.test_case "scan slower on LFS" `Quick
            test_lfs_scan_slower_after_random_updates;
        ] );
    ]
