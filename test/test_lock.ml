(* Tests for the hierarchical lock manager: the multi-granularity
   compatibility matrix, intention-mode propagation to ancestors, mode
   upgrades through the lattice, lock escalation, latches, deadlock
   detection over the full hierarchy, and model-based properties whose
   oracle re-derives the waits-for graph from scratch at every step. *)

let mk ?escalation () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  (stats, Lockmgr.create ?escalation clock stats Config.default.Config.cpu)

let obj f p = Lockmgr.Page (f, p)

let test_compatibility_matrix () =
  let _, lm = mk () in
  let o = obj 1 0 in
  (* S + S compatible *)
  Alcotest.(check bool) "S grant" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "S+S" true (Lockmgr.acquire lm ~txn:2 o Shared = `Granted);
  (* S + X conflicts *)
  (match Lockmgr.acquire lm ~txn:3 o Exclusive with
  | `Would_block blockers ->
    Alcotest.(check (list int)) "blockers" [ 1; 2 ] (List.sort compare blockers)
  | _ -> Alcotest.fail "X over S should block");
  Lockmgr.release_all lm ~txn:1;
  Lockmgr.release_all lm ~txn:2;
  Lockmgr.cancel_wait lm ~txn:3;
  (* X + anything conflicts *)
  Alcotest.(check bool) "X grant" true
    (Lockmgr.acquire lm ~txn:3 o Exclusive = `Granted);
  Alcotest.(check bool) "S over X blocks" true
    (match Lockmgr.acquire lm ~txn:4 o Shared with
    | `Would_block _ -> true
    | _ -> false);
  Alcotest.(check bool) "X over X blocks" true
    (match Lockmgr.acquire lm ~txn:5 o Exclusive with
    | `Would_block _ -> true
    | _ -> false)

let test_reentrant_and_upgrade () =
  let _, lm = mk () in
  let o = obj 1 1 in
  Alcotest.(check bool) "S" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "S again" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "upgrade to X (sole holder)" true
    (Lockmgr.acquire lm ~txn:1 o Exclusive = `Granted);
  Alcotest.(check bool) "X then S is no-op" true
    (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "held at X" true (Lockmgr.holds lm ~txn:1 o = Some Exclusive);
  (* Upgrade blocked when another reader exists. *)
  let o2 = obj 1 2 in
  ignore (Lockmgr.acquire lm ~txn:1 o2 Shared);
  ignore (Lockmgr.acquire lm ~txn:2 o2 Shared);
  Alcotest.(check bool) "upgrade blocks with two readers" true
    (match Lockmgr.acquire lm ~txn:1 o2 Exclusive with
    | `Would_block [ 2 ] -> true
    | _ -> false)

let test_chain_traversal () =
  let _, lm = mk () in
  ignore (Lockmgr.acquire lm ~txn:7 (obj 1 0) Shared);
  ignore (Lockmgr.acquire lm ~txn:7 (obj 1 1) Exclusive);
  ignore (Lockmgr.acquire lm ~txn:7 (obj 2 5) Shared);
  (* Three page locks plus the two files' intention locks. *)
  Alcotest.(check int) "chain length" 5 (List.length (Lockmgr.chain lm ~txn:7));
  Alcotest.(check int) "five objects locked" 5 (Lockmgr.locked_objects lm);
  Alcotest.(check bool) "file 1 intent is IX" true
    (Lockmgr.holds lm ~txn:7 (Lockmgr.File 1) = Some Lockmgr.IX);
  Alcotest.(check bool) "file 2 intent is IS" true
    (Lockmgr.holds lm ~txn:7 (Lockmgr.File 2) = Some Lockmgr.IS);
  Lockmgr.release_all lm ~txn:7;
  Alcotest.(check int) "chain empty" 0 (List.length (Lockmgr.chain lm ~txn:7));
  Alcotest.(check int) "table empty" 0 (Lockmgr.locked_objects lm)

let test_deadlock_detection () =
  let stats, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  (* 1 waits for b (held by 2)... *)
  Alcotest.(check bool) "1 blocks on b" true
    (match Lockmgr.acquire lm ~txn:1 b Exclusive with
    | `Would_block _ -> true
    | _ -> false);
  (* ...and 2 requesting a would close the cycle. *)
  Alcotest.(check bool) "2 on a deadlocks" true
    (Lockmgr.acquire lm ~txn:2 a Exclusive = `Deadlock);
  Alcotest.(check int) "counted" 1 (Stats.count stats "lock.deadlocks");
  (* Victim aborts; the survivor can proceed. *)
  Lockmgr.release_all lm ~txn:2;
  Alcotest.(check bool) "1 retries and wins" true
    (Lockmgr.acquire lm ~txn:1 b Exclusive = `Granted)

let test_three_party_deadlock () =
  let _, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 and c = obj 1 2 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  ignore (Lockmgr.acquire lm ~txn:3 c Exclusive);
  ignore (Lockmgr.acquire lm ~txn:1 b Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 c Exclusive);
  Alcotest.(check bool) "closing the 3-cycle detected" true
    (Lockmgr.acquire lm ~txn:3 a Exclusive = `Deadlock)

let test_early_release () =
  let _, lm = mk () in
  let o = obj 9 9 in
  ignore (Lockmgr.acquire lm ~txn:1 o Exclusive);
  Lockmgr.release lm ~txn:1 o;
  Alcotest.(check bool) "free for others" true
    (Lockmgr.acquire lm ~txn:2 o Exclusive = `Granted)

let test_wait_cleared_on_grant () =
  let _, lm = mk () in
  let o = obj 1 0 in
  ignore (Lockmgr.acquire lm ~txn:1 o Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 o Exclusive);
  Alcotest.(check bool) "2 waiting" true (Lockmgr.waiting lm ~txn:2);
  Lockmgr.release_all lm ~txn:1;
  Alcotest.(check bool) "retry wins" true (Lockmgr.acquire lm ~txn:2 o Exclusive = `Granted);
  Alcotest.(check bool) "no longer waiting" false (Lockmgr.waiting lm ~txn:2)

(* Regression: [release] used to leave other transactions' waits-for
   edges naming the releasing transaction, and [reaches] walking those
   stale edges made a later [acquire] report a spurious deadlock. The
   B-tree's lock-coupling descent releases early, so this needed no
   transaction-id reuse to fire. *)
let test_no_spurious_deadlock_after_early_release () =
  let _, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  (* 2 blocks on a: edge 2 -> 1. *)
  (match Lockmgr.acquire lm ~txn:2 a Exclusive with
  | `Would_block [ 1 ] -> ()
  | _ -> Alcotest.fail "expected 2 blocked by 1");
  (* 1 releases a early (lock coupling): 2's request no longer conflicts
     with anyone, so it must contribute no waits-for edges. *)
  Lockmgr.release lm ~txn:1 a;
  Alcotest.(check (list int)) "2's blockers cleared" [] (Lockmgr.blockers lm ~txn:2);
  Alcotest.(check bool) "2 dropped from the graph" false (Lockmgr.waiting lm ~txn:2);
  (* 1 requesting b must block on 2, not walk the stale 2 -> 1 edge and
     report a deadlock that isn't there. *)
  Alcotest.(check bool) "no spurious deadlock" true
    (match Lockmgr.acquire lm ~txn:1 b Exclusive with
    | `Would_block [ 2 ] -> true
    | _ -> false)

(* Same bug through the commit/abort path: release_all must re-derive the
   blocker lists of every waiter on every object it frees. *)
let test_release_all_prunes_other_waiters () =
  let _, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  (match Lockmgr.acquire lm ~txn:2 a Exclusive with
  | `Would_block [ 1 ] -> ()
  | _ -> Alcotest.fail "expected 2 blocked by 1");
  (* 1 aborts: everything it held is free, so 2's wait entry must go. *)
  Lockmgr.release_all lm ~txn:1;
  Alcotest.(check bool) "2 no longer waiting" false (Lockmgr.waiting lm ~txn:2);
  Alcotest.(check (list int)) "no blockers" [] (Lockmgr.blockers lm ~txn:2);
  (* A later holder of a sees 2 as a plain waiter, not a deadlock. *)
  ignore (Lockmgr.acquire lm ~txn:3 a Exclusive);
  Alcotest.(check bool) "2 blocks on the new holder" true
    (match Lockmgr.acquire lm ~txn:2 a Exclusive with
    | `Would_block [ 3 ] -> true
    | _ -> false)

(* Hierarchy unit tests ---------------------------------------------------- *)

let rec_ f p r = Lockmgr.Rec (f, p, r)

let test_intention_propagation () =
  let _, lm = mk () in
  (* A record lock plants IX/IS on both ancestors. *)
  Alcotest.(check bool) "rec X" true
    (Lockmgr.acquire lm ~txn:1 (rec_ 1 4 7) Exclusive = `Granted);
  Alcotest.(check bool) "page intent IX" true
    (Lockmgr.holds lm ~txn:1 (obj 1 4) = Some Lockmgr.IX);
  Alcotest.(check bool) "file intent IX" true
    (Lockmgr.holds lm ~txn:1 (Lockmgr.File 1) = Some Lockmgr.IX);
  (* Two writers on different records of the same page coexist (IX+IX). *)
  Alcotest.(check bool) "second writer, same page" true
    (Lockmgr.acquire lm ~txn:2 (rec_ 1 4 9) Exclusive = `Granted);
  (* A whole-page X request is stopped by the intention modes without
     enumerating the records. *)
  (match Lockmgr.acquire lm ~txn:3 (obj 1 4) Exclusive with
  | `Would_block bs ->
    Alcotest.(check (list int)) "page X sees both intents" [ 1; 2 ]
      (List.sort compare bs)
  | _ -> Alcotest.fail "page X over record holders should block");
  Lockmgr.cancel_wait lm ~txn:3;
  (* A whole-file S request conflicts with the writers' file IX. *)
  Alcotest.(check bool) "file scan blocks on writers" true
    (match Lockmgr.acquire lm ~txn:3 (Lockmgr.File 1) Shared with
    | `Would_block _ -> true
    | _ -> false);
  (* But a reader of an unrelated page sails through (IS below IX). *)
  Alcotest.(check bool) "reader elsewhere unaffected" true
    (Lockmgr.acquire lm ~txn:4 (rec_ 1 5 0) Shared = `Granted)

let test_six_upgrade () =
  let _, lm = mk () in
  (* Record X then whole-page S: the page fold lands on SIX — read the
     whole page, still intending to write one record. *)
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 2 3) Exclusive);
  Alcotest.(check bool) "page S over own IX" true
    (Lockmgr.acquire lm ~txn:1 (obj 1 2) Shared = `Granted);
  Alcotest.(check bool) "landed on SIX" true
    (Lockmgr.holds lm ~txn:1 (obj 1 2) = Some Lockmgr.SIX);
  (* SIX admits other IS, nothing stronger. *)
  Alcotest.(check bool) "IS below SIX ok" true
    (Lockmgr.acquire lm ~txn:2 (rec_ 1 2 9) Shared = `Granted);
  Alcotest.(check bool) "second writer blocks on SIX" true
    (match Lockmgr.acquire lm ~txn:3 (rec_ 1 2 5) Exclusive with
    | `Would_block _ -> true
    | _ -> false)

let test_escalation () =
  let stats, lm = mk ~escalation:3 () in
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 0 0) Exclusive);
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 0 1) Shared);
  Alcotest.(check int) "not yet" 0 (Stats.count stats "lock.escalations");
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 0 2) Shared);
  Alcotest.(check int) "escalated" 1 (Stats.count stats "lock.escalations");
  (* One record lock was Exclusive, so the page lock must be Exclusive;
     the record locks are gone from the chain. *)
  Alcotest.(check bool) "page X" true
    (Lockmgr.holds lm ~txn:1 (obj 1 0) = Some Lockmgr.Exclusive);
  Alcotest.(check bool) "record locks traded in" true
    (List.for_all
       (fun (o, _) -> match o with Lockmgr.Rec _ -> false | _ -> true)
       (Lockmgr.chain lm ~txn:1));
  (* The protected set survives: another transaction still cannot touch
     record 1 (now covered by the page lock). *)
  Alcotest.(check bool) "still protected" true
    (match Lockmgr.acquire lm ~txn:2 (rec_ 1 0 1) Exclusive with
    | `Would_block _ -> true
    | _ -> false)

let test_escalation_all_shared () =
  let _, lm = mk ~escalation:2 () in
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 0 0) Shared);
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 0 1) Shared);
  Alcotest.(check bool) "all-Shared escalates to page S" true
    (Lockmgr.holds lm ~txn:1 (obj 1 0) = Some Lockmgr.Shared);
  (* Page S still admits other readers. *)
  Alcotest.(check bool) "readers coexist" true
    (Lockmgr.acquire lm ~txn:2 (rec_ 1 0 5) Shared = `Granted)

let test_escalation_skipped_on_conflict () =
  let stats, lm = mk ~escalation:2 () in
  (* Another transaction reads a record on the page: its IS is fine
     below our IX, but a page X would conflict — escalation must be
     skipped, not block, and the record locks must survive. *)
  ignore (Lockmgr.acquire lm ~txn:2 (rec_ 1 0 9) Shared);
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 0 0) Exclusive);
  ignore (Lockmgr.acquire lm ~txn:1 (rec_ 1 0 1) Exclusive);
  Alcotest.(check int) "skipped" 1 (Stats.count stats "lock.escalations_skipped");
  Alcotest.(check int) "no escalation" 0 (Stats.count stats "lock.escalations");
  Alcotest.(check bool) "record locks intact" true
    (Lockmgr.holds lm ~txn:1 (rec_ 1 0 1) = Some Lockmgr.Exclusive)

let test_latches () =
  let stats, lm = mk () in
  let p = obj 1 0 in
  Alcotest.(check bool) "S latch" true (Lockmgr.latch lm ~owner:1 p Shared = `Granted);
  Alcotest.(check bool) "S+S latch" true (Lockmgr.latch lm ~owner:2 p Shared = `Granted);
  (match Lockmgr.latch lm ~owner:3 p Exclusive with
  | `Would_block bs ->
    Alcotest.(check (list int)) "latch blockers" [ 1; 2 ] (List.sort compare bs)
  | `Granted -> Alcotest.fail "X latch over readers should block");
  Alcotest.(check int) "latch wait counted" 1 (Stats.count stats "lock.latch_waits");
  (* Latches and locks live in separate tables: a page LOCK by another
     transaction is invisible to the latch path. *)
  Alcotest.(check bool) "lock does not see latch" true
    (Lockmgr.acquire lm ~txn:4 p Exclusive = `Granted);
  Lockmgr.unlatch lm ~owner:1 p;
  Lockmgr.unlatch lm ~owner:2 p;
  Alcotest.(check bool) "retry after unlatch" true
    (Lockmgr.latch lm ~owner:3 p Exclusive = `Granted);
  Lockmgr.release_latches lm ~owner:3;
  Alcotest.(check int) "all latches gone" 0
    (List.length (Lockmgr.latched lm ~owner:3));
  Alcotest.(check bool) "intention latch rejected" true
    (try
       ignore (Lockmgr.latch lm ~owner:5 p Lockmgr.IS);
       false
     with Invalid_argument _ -> true)

(* Model-based property: the lock manager must agree, outcome for
   outcome, with a tiny reference model whose waits-for edges are
   re-derived from the holder table at every step — i.e. [`Deadlock] is
   reported iff the request would close a cycle in the LIVE graph. A
   waiter whose conflicts have all gone is dropped from the graph (it
   would be granted on retry), exactly as the implementation does. *)
type mstate = {
  mutable mholders : ((int * int) * (int * Lockmgr.mode) list) list;
  mutable mwaits : (int * ((int * int) * Lockmgr.mode)) list;
}

let m_holders st obj = try List.assoc obj st.mholders with Not_found -> []

let m_conflicts st obj ~txn mode =
  List.filter_map
    (fun (h, hm) ->
      if h = txn then None
      else
        match (mode, hm) with
        | Lockmgr.Shared, Lockmgr.Shared -> None
        | _ -> Some h)
    (m_holders st obj)

let m_blockers st txn =
  match List.assoc_opt txn st.mwaits with
  | None -> []
  | Some (obj, mode) -> m_conflicts st obj ~txn mode

let m_reaches st start target =
  let rec go seen v =
    v = target
    || ((not (List.mem v seen))
       && List.exists (go (v :: seen)) (m_blockers st v))
  in
  go [] start

(* Drop waiters whose pending request no longer conflicts. The
   implementation does this locally on every holder-set change; since a
   request's conflicts only change when its object's holders do, a global
   sweep is equivalent. *)
let m_prune st =
  st.mwaits <-
    List.filter
      (fun (txn, (obj, mode)) -> m_conflicts st obj ~txn mode <> [])
      st.mwaits

let m_set_holder st obj txn mode =
  let hs = (txn, mode) :: List.filter (fun (h, _) -> h <> txn) (m_holders st obj) in
  st.mholders <- (obj, hs) :: List.remove_assoc obj st.mholders

let m_acquire st ~txn obj mode =
  (* A new request supersedes the transaction's pending one. *)
  st.mwaits <- List.remove_assoc txn st.mwaits;
  let held = List.assoc_opt txn (m_holders st obj) in
  match held with
  | Some Lockmgr.Exclusive -> `Granted
  | Some Lockmgr.Shared when mode = Lockmgr.Shared -> `Granted
  | _ -> (
    match m_conflicts st obj ~txn mode with
    | [] ->
      let granted_mode =
        if held = Some Lockmgr.Shared then Lockmgr.Exclusive else mode
      in
      m_set_holder st obj txn granted_mode;
      st.mwaits <- List.remove_assoc txn st.mwaits;
      m_prune st;
      `Granted
    | bs ->
      if List.exists (fun b -> m_reaches st b txn) bs then `Deadlock
      else begin
        st.mwaits <- (txn, (obj, mode)) :: List.remove_assoc txn st.mwaits;
        `Would_block (List.sort compare bs)
      end)

let m_release st ~txn obj =
  let hs = List.filter (fun (h, _) -> h <> txn) (m_holders st obj) in
  st.mholders <-
    (if hs = [] then List.remove_assoc obj st.mholders
     else (obj, hs) :: List.remove_assoc obj st.mholders);
  m_prune st

let m_release_all st ~txn =
  st.mwaits <- List.remove_assoc txn st.mwaits;
  st.mholders <-
    List.filter_map
      (fun (obj, hs) ->
        match List.filter (fun (h, _) -> h <> txn) hs with
        | [] -> None
        | hs -> Some (obj, hs))
      st.mholders;
  m_prune st

let norm = function
  | `Would_block bs -> `Would_block (List.sort compare bs)
  | (`Granted | `Deadlock) as o -> o

(* The flat (single-granularity) oracle of PR 2, now running against the
   hierarchical manager: all objects are pages of one file, so the only
   ancestor traffic is mutually compatible IS/IX on that file and the
   outcomes must still agree step for step. *)
let prop_model_deadlock_iff_live_cycle =
  Tutil.qtest ~count:500 "deadlock iff cycle in live waits-for graph"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (tup4 (int_range 0 4) (int_range 1 4) (int_bound 3) bool))
    (fun ops ->
      let _, lm = mk () in
      let st = { mholders = []; mwaits = [] } in
      List.for_all
        (fun (op, txn, page, excl) ->
          let o = (0, page) in
          let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
          let agree =
            match op with
            | 0 | 1 | 2 ->
              (* acquire dominates the op mix *)
              norm (Lockmgr.acquire lm ~txn (obj 0 page) mode)
              = norm (m_acquire st ~txn o mode)
            | 3 ->
              Lockmgr.release lm ~txn (obj 0 page);
              m_release st ~txn o;
              true
            | _ ->
              Lockmgr.release_all lm ~txn;
              m_release_all st ~txn;
              true
          in
          agree
          && List.for_all
               (fun t ->
                 Lockmgr.waiting lm ~txn:t = List.mem_assoc t st.mwaits
                 && List.sort compare (Lockmgr.blockers lm ~txn:t)
                    = List.sort compare (m_blockers st t))
               [ 1; 2; 3; 4 ])
        ops)

(* Hierarchical oracle ----------------------------------------------------- *)

(* Independent encodings of Gray's compatibility matrix and mode
   lattice: written as literal tables here precisely so a slip in the
   implementation's algebra cannot also hide in the oracle. *)
let h_compat a b =
  match (a, b) with
  | Lockmgr.Exclusive, _ | _, Lockmgr.Exclusive -> false
  | Lockmgr.IS, _ | _, Lockmgr.IS -> true
  | Lockmgr.IX, Lockmgr.IX -> true
  | Lockmgr.Shared, Lockmgr.Shared -> true
  | _ -> false

let h_leq a b =
  a = b
  ||
  match (a, b) with
  | Lockmgr.IS, _ -> true
  | Lockmgr.IX, (Lockmgr.SIX | Lockmgr.Exclusive) -> true
  | Lockmgr.Shared, (Lockmgr.SIX | Lockmgr.Exclusive) -> true
  | Lockmgr.SIX, Lockmgr.Exclusive -> true
  | _ -> false

let h_sup a b =
  if h_leq a b then b else if h_leq b a then a else Lockmgr.SIX

let h_intent = function
  | Lockmgr.IS | Lockmgr.Shared -> Lockmgr.IS
  | _ -> Lockmgr.IX

let h_ancestors = function
  | Lockmgr.File _ -> []
  | Lockmgr.Page (f, _) -> [ Lockmgr.File f ]
  | Lockmgr.Rec (f, p, _) -> [ Lockmgr.File f; Lockmgr.Page (f, p) ]

type hstate = {
  mutable hholders : (Lockmgr.obj * (int * Lockmgr.mode) list) list;
  mutable hwaits : (int * (Lockmgr.obj * Lockmgr.mode)) list;
}

let h_holders st o = try List.assoc o st.hholders with Not_found -> []

let h_conflicts st o ~txn mode =
  List.filter_map
    (fun (h, hm) -> if h = txn || h_compat mode hm then None else Some h)
    (h_holders st o)

let h_blockers st txn =
  match List.assoc_opt txn st.hwaits with
  | None -> []
  | Some (o, mode) -> h_conflicts st o ~txn mode

let h_reaches st start target =
  let rec go seen v =
    v = target
    || ((not (List.mem v seen))
       && List.exists (go (v :: seen)) (h_blockers st v))
  in
  go [] start

let h_prune st =
  st.hwaits <-
    List.filter (fun (txn, (o, m)) -> h_conflicts st o ~txn m <> []) st.hwaits

let h_set_holder st o txn mode =
  let hs = (txn, mode) :: List.filter (fun (h, _) -> h <> txn) (h_holders st o) in
  st.hholders <- (o, hs) :: List.remove_assoc o st.hholders

(* Mirror of [Lockmgr.acquire]'s path walk, driven by the literal
   tables: fold the requested mode over what is already held at each
   node root-first; grant where compatible, park at the first conflict,
   deadlock iff a live path leads from a blocker back to the requester. *)
let h_acquire st ~txn o mode =
  (* A new request supersedes the transaction's pending one. *)
  st.hwaits <- List.remove_assoc txn st.hwaits;
  let path = List.map (fun a -> (a, h_intent mode)) (h_ancestors o) @ [ (o, mode) ] in
  let rec walk = function
    | [] -> `Granted
    | (node, need) :: rest -> (
      let held = List.assoc_opt txn (h_holders st node) in
      let want = match held with None -> need | Some h -> h_sup h need in
      if held = Some want then walk rest
      else
        match h_conflicts st node ~txn want with
        | [] ->
          h_set_holder st node txn want;
          st.hwaits <- List.remove_assoc txn st.hwaits;
          h_prune st;
          walk rest
        | bs ->
          if List.exists (fun b -> h_reaches st b txn) bs then `Deadlock
          else begin
            st.hwaits <- (txn, (node, want)) :: List.remove_assoc txn st.hwaits;
            `Would_block (List.sort compare bs)
          end)
  in
  walk path

let h_release_all st ~txn =
  st.hwaits <- List.remove_assoc txn st.hwaits;
  st.hholders <-
    List.filter_map
      (fun (o, hs) ->
        match List.filter (fun (h, _) -> h <> txn) hs with
        | [] -> None
        | hs -> Some (o, hs))
      st.hholders;
  h_prune st

let h_release st ~txn o =
  let hs = List.filter (fun (h, _) -> h <> txn) (h_holders st o) in
  st.hholders <-
    (if hs = [] then List.remove_assoc o st.hholders
     else (o, hs) :: List.remove_assoc o st.hholders);
  h_prune st

(* Invariant (a): no two holders of any node are incompatible. *)
let inv_matrix lm txns =
  let by_obj = Hashtbl.create 16 in
  List.iter
    (fun t ->
      List.iter
        (fun (o, m) ->
          Hashtbl.replace by_obj o
            ((t, m) :: (try Hashtbl.find by_obj o with Not_found -> [])))
        (Lockmgr.chain lm ~txn:t))
    txns;
  Hashtbl.fold
    (fun _ hs acc ->
      acc
      && List.for_all
           (fun (t1, m1) ->
             List.for_all (fun (t2, m2) -> t1 = t2 || h_compat m1 m2) hs)
           hs)
    by_obj true

(* Invariant (b): every held page/record lock has the matching intention
   mode (or stronger) on each of its ancestors. *)
let inv_ancestors lm txns =
  List.for_all
    (fun t ->
      List.for_all
        (fun (o, m) ->
          List.for_all
            (fun a ->
              match Lockmgr.holds lm ~txn:t a with
              | Some am -> h_leq (h_intent m) am
              | None -> false)
            (h_ancestors o))
        (Lockmgr.chain lm ~txn:t))
    txns

let all_modes =
  [| Lockmgr.IS; Lockmgr.IX; Lockmgr.Shared; Lockmgr.SIX; Lockmgr.Exclusive |]

let gen_obj =
  QCheck2.Gen.(
    tup4 (int_bound 2) (int_bound 1) (int_bound 1) (int_bound 1)
    >|= fun (level, f, p, r) ->
    match level with
    | 0 -> Lockmgr.File f
    | 1 -> Lockmgr.Page (f, p)
    | _ -> Lockmgr.Rec (f, p, r))

(* The full hierarchical property: random acquire/release/upgrade
   sequences over files, pages and records in all five modes, across
   four transactions. The manager must agree with the oracle outcome for
   outcome — in particular [`Deadlock] iff the live waits-for graph
   (whose edges may pass through intention holders) has a cycle — and
   the matrix/ancestor invariants must hold after every step. *)
let prop_hierarchical_model =
  Tutil.qtest ~count:500 "hierarchical oracle: outcomes, edges, invariants"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (tup4 (int_range 0 6) (int_range 1 4) gen_obj (int_bound 4)))
    (fun ops ->
      let _, lm = mk () in
      let st = { hholders = []; hwaits = [] } in
      let txns = [ 1; 2; 3; 4 ] in
      List.for_all
        (fun (op, txn, o, m) ->
          let mode = all_modes.(m) in
          let agree =
            match op with
            | 0 | 1 | 2 | 3 | 4 ->
              norm (Lockmgr.acquire lm ~txn o mode) = norm (h_acquire st ~txn o mode)
            | 5 ->
              (* Early release is legal only while no held lock depends
                 on it: releasing an ancestor intent out from under a
                 held record/page lock is caller error (the access
                 methods never do it), so the generator skips those. *)
              let has_descendant =
                List.exists
                  (fun (node, hs) ->
                    List.mem_assoc txn hs && List.mem o (h_ancestors node))
                  st.hholders
              in
              if not has_descendant then begin
                Lockmgr.release lm ~txn o;
                h_release st ~txn o
              end;
              true
            | _ ->
              Lockmgr.release_all lm ~txn;
              h_release_all st ~txn;
              true
          in
          agree
          && List.for_all
               (fun t ->
                 Lockmgr.waiting lm ~txn:t = List.mem_assoc t st.hwaits
                 && List.sort compare (Lockmgr.blockers lm ~txn:t)
                    = List.sort compare (h_blockers st t))
               txns
          && inv_matrix lm txns && inv_ancestors lm txns)
        ops)

(* Invariant (c): escalation trades record locks for a page lock that
   covers the same records at least as strongly. Tracked against a
   ledger of every record grant; checked after every operation. *)
let prop_escalation_preserves_protection =
  Tutil.qtest ~count:500 "escalation preserves the protected-record set"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (tup4 (int_range 0 6) (int_range 1 3)
           (tup3 (int_bound 1) (int_bound 1) (int_bound 3))
           bool))
    (fun ops ->
      let _, lm = mk ~escalation:3 () in
      let txns = [ 1; 2; 3 ] in
      (* (txn, rec-obj) -> strongest mode ever granted *)
      let ledger : (int * Lockmgr.obj, Lockmgr.mode) Hashtbl.t =
        Hashtbl.create 16
      in
      let covered t o m =
        let covers node =
          match Lockmgr.holds lm ~txn:t node with
          | Some held -> h_leq m held
          | None -> false
        in
        match o with
        | Lockmgr.Rec (f, p, _) -> covers o || covers (Lockmgr.Page (f, p))
        | _ -> assert false
      in
      List.for_all
        (fun (op, txn, (f, p, r), excl) ->
          let o = Lockmgr.Rec (f, p, r) in
          let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
          (if op >= 6 then begin
             Lockmgr.release_all lm ~txn;
             Hashtbl.iter
               (fun (t, o) _ -> if t = txn then Hashtbl.remove ledger (t, o))
               (Hashtbl.copy ledger)
           end
           else
             match Lockmgr.acquire lm ~txn o mode with
             | `Granted ->
               let prev =
                 match Hashtbl.find_opt ledger (txn, o) with
                 | Some m -> m
                 | None -> mode
               in
               Hashtbl.replace ledger (txn, o) (h_sup prev mode)
             | `Would_block _ ->
               Lockmgr.cancel_wait lm ~txn
             | `Deadlock -> ());
          Hashtbl.fold
            (fun (t, o) m acc -> acc && covered t o m)
            ledger true
          && inv_matrix lm txns && inv_ancestors lm txns)
        ops)

let prop_release_all_empties =
  Tutil.qtest "release_all leaves no residue"
    QCheck2.Gen.(list (tup3 (int_range 1 4) (int_bound 8) bool))
    (fun reqs ->
      let _, lm = mk () in
      List.iter
        (fun (txn, page, excl) ->
          let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
          ignore (Lockmgr.acquire lm ~txn (obj 0 page) mode))
        reqs;
      List.iter (fun txn -> Lockmgr.release_all lm ~txn) [ 1; 2; 3; 4 ];
      Lockmgr.locked_objects lm = 0)

(* Targeted interleaving property for [release_all] chain ordering: while
   walking the releasing transaction's chain, revalidating the waiters of
   a *later* object must not resurrect a wait entry that the *first*
   released object already cleared. Observable invariant, checked after
   every single operation of a random acquire/release_all interleaving:
   (a) nobody's blocker list ever names a transaction that holds nothing,
   and (b) a transaction whose pending request conflicts with no current
   holder is not waiting at all — i.e. no stale waits-for edges, in
   either direction, at any interleaving point. *)
let prop_release_all_no_stale_edges =
  let txns = [ 1; 2; 3; 4; 5 ] in
  Tutil.qtest ~count:500 "release_all interleavings leave no stale edges"
    QCheck2.Gen.(
      list_size (int_range 1 50)
        (tup4 (int_range 1 5) (int_bound 5) bool (int_bound 6)))
    (fun ops ->
      let _, lm = mk () in
      (* Track the holder table ourselves so "holds nothing" and "no
         conflict" are judged against ground truth, not the unit under
         test. Page locks of one file only, so the file node adds
         mutually compatible intents — but "holds nothing" must include
         them, hence holders are read back from the chain. *)
      let holders : ((int * int), (int * Lockmgr.mode) list) Hashtbl.t =
        Hashtbl.create 16
      in
      let holds_nothing t = Lockmgr.chain lm ~txn:t = [] in
      let pending : (int, (int * int) * Lockmgr.mode) Hashtbl.t =
        Hashtbl.create 8
      in
      let conflicts t =
        match Hashtbl.find_opt pending t with
        | None -> []
        | Some (o, mode) ->
          List.filter
            (fun (h, hm) ->
              h <> t && not (mode = Lockmgr.Shared && hm = Lockmgr.Shared))
            (try Hashtbl.find holders o with Not_found -> [])
      in
      let invariant () =
        List.for_all
          (fun t ->
            List.for_all (fun b -> not (holds_nothing b)) (Lockmgr.blockers lm ~txn:t)
            && ((not (Lockmgr.waiting lm ~txn:t)) || conflicts t <> []))
          txns
      in
      List.for_all
        (fun (txn, page, excl, action) ->
          (* Bias toward acquires; release_all fires on ~2/7 of the ops so
             chains of several objects build up before a release walks
             them. *)
          (if action >= 5 then begin
             Lockmgr.release_all lm ~txn;
             Hashtbl.remove pending txn;
             Hashtbl.iter
               (fun o hs ->
                 Hashtbl.replace holders o
                   (List.filter (fun (h, _) -> h <> txn) hs))
               (Hashtbl.copy holders)
           end
           else
             let o = (0, page) in
             let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
             let held =
               List.assoc_opt txn (try Hashtbl.find holders o with Not_found -> [])
             in
             let noop =
               held = Some Lockmgr.Exclusive
               || (held = Some Lockmgr.Shared && mode = Lockmgr.Shared)
             in
             match Lockmgr.acquire lm ~txn (obj 0 page) mode with
             | `Granted when noop ->
               (* Re-entrant no-op: the lock table is untouched, so any
                  pending request elsewhere stays pending. *)
               ()
             | `Granted ->
               let hs =
                 (try Hashtbl.find holders o with Not_found -> [])
                 |> List.filter (fun (h, _) -> h <> txn)
               in
               let granted =
                 match Lockmgr.holds lm ~txn (obj 0 page) with
                 | Some m -> m
                 | None -> mode
               in
               Hashtbl.replace holders o ((txn, granted) :: hs);
               Hashtbl.remove pending txn
             | `Would_block _ -> Hashtbl.replace pending txn (o, mode)
             | `Deadlock -> ());
          invariant ())
        ops)

let prop_shared_never_conflicts =
  Tutil.qtest "readers never conflict"
    QCheck2.Gen.(list (pair (int_range 1 6) (int_bound 10)))
    (fun reqs ->
      let _, lm = mk () in
      List.for_all
        (fun (txn, page) -> Lockmgr.acquire lm ~txn (obj 0 page) Shared = `Granted)
        reqs)

let () =
  Alcotest.run "tx_lock"
    [
      ( "locks",
        [
          Alcotest.test_case "compatibility" `Quick test_compatibility_matrix;
          Alcotest.test_case "reentrancy/upgrade" `Quick test_reentrant_and_upgrade;
          Alcotest.test_case "chains" `Quick test_chain_traversal;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detection;
          Alcotest.test_case "3-party deadlock" `Quick test_three_party_deadlock;
          Alcotest.test_case "early release" `Quick test_early_release;
          Alcotest.test_case "wait cleared" `Quick test_wait_cleared_on_grant;
          Alcotest.test_case "stale edge after early release" `Quick
            test_no_spurious_deadlock_after_early_release;
          Alcotest.test_case "stale edge after release_all" `Quick
            test_release_all_prunes_other_waiters;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "intention propagation" `Quick test_intention_propagation;
          Alcotest.test_case "SIX upgrade" `Quick test_six_upgrade;
          Alcotest.test_case "escalation" `Quick test_escalation;
          Alcotest.test_case "escalation all-shared" `Quick test_escalation_all_shared;
          Alcotest.test_case "escalation skipped on conflict" `Quick
            test_escalation_skipped_on_conflict;
          Alcotest.test_case "latches" `Quick test_latches;
        ] );
      ( "properties",
        [
          prop_model_deadlock_iff_live_cycle;
          prop_hierarchical_model;
          prop_escalation_preserves_protection;
          prop_release_all_no_stale_edges;
          prop_release_all_empties;
          prop_shared_never_conflicts;
        ] );
    ]
