(* Tests for the lock manager: compatibility matrix, upgrades, chains,
   deadlock detection, and a property test that the table is empty after
   all transactions release. *)

let mk () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  (stats, Lockmgr.create clock stats Config.default.Config.cpu)

let obj f p = (f, p)

let test_compatibility_matrix () =
  let _, lm = mk () in
  let o = obj 1 0 in
  (* S + S compatible *)
  Alcotest.(check bool) "S grant" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "S+S" true (Lockmgr.acquire lm ~txn:2 o Shared = `Granted);
  (* S + X conflicts *)
  (match Lockmgr.acquire lm ~txn:3 o Exclusive with
  | `Would_block blockers ->
    Alcotest.(check (list int)) "blockers" [ 1; 2 ] (List.sort compare blockers)
  | _ -> Alcotest.fail "X over S should block");
  Lockmgr.release_all lm ~txn:1;
  Lockmgr.release_all lm ~txn:2;
  Lockmgr.cancel_wait lm ~txn:3;
  (* X + anything conflicts *)
  Alcotest.(check bool) "X grant" true
    (Lockmgr.acquire lm ~txn:3 o Exclusive = `Granted);
  Alcotest.(check bool) "S over X blocks" true
    (match Lockmgr.acquire lm ~txn:4 o Shared with
    | `Would_block _ -> true
    | _ -> false);
  Alcotest.(check bool) "X over X blocks" true
    (match Lockmgr.acquire lm ~txn:5 o Exclusive with
    | `Would_block _ -> true
    | _ -> false)

let test_reentrant_and_upgrade () =
  let _, lm = mk () in
  let o = obj 1 1 in
  Alcotest.(check bool) "S" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "S again" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "upgrade to X (sole holder)" true
    (Lockmgr.acquire lm ~txn:1 o Exclusive = `Granted);
  Alcotest.(check bool) "X then S is no-op" true
    (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "held at X" true (Lockmgr.holds lm ~txn:1 o = Some Exclusive);
  (* Upgrade blocked when another reader exists. *)
  let o2 = obj 1 2 in
  ignore (Lockmgr.acquire lm ~txn:1 o2 Shared);
  ignore (Lockmgr.acquire lm ~txn:2 o2 Shared);
  Alcotest.(check bool) "upgrade blocks with two readers" true
    (match Lockmgr.acquire lm ~txn:1 o2 Exclusive with
    | `Would_block [ 2 ] -> true
    | _ -> false)

let test_chain_traversal () =
  let _, lm = mk () in
  ignore (Lockmgr.acquire lm ~txn:7 (obj 1 0) Shared);
  ignore (Lockmgr.acquire lm ~txn:7 (obj 1 1) Exclusive);
  ignore (Lockmgr.acquire lm ~txn:7 (obj 2 5) Shared);
  Alcotest.(check int) "chain length" 3 (List.length (Lockmgr.chain lm ~txn:7));
  Alcotest.(check int) "three objects locked" 3 (Lockmgr.locked_objects lm);
  Lockmgr.release_all lm ~txn:7;
  Alcotest.(check int) "chain empty" 0 (List.length (Lockmgr.chain lm ~txn:7));
  Alcotest.(check int) "table empty" 0 (Lockmgr.locked_objects lm)

let test_deadlock_detection () =
  let stats, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  (* 1 waits for b (held by 2)... *)
  Alcotest.(check bool) "1 blocks on b" true
    (match Lockmgr.acquire lm ~txn:1 b Exclusive with
    | `Would_block _ -> true
    | _ -> false);
  (* ...and 2 requesting a would close the cycle. *)
  Alcotest.(check bool) "2 on a deadlocks" true
    (Lockmgr.acquire lm ~txn:2 a Exclusive = `Deadlock);
  Alcotest.(check int) "counted" 1 (Stats.count stats "lock.deadlocks");
  (* Victim aborts; the survivor can proceed. *)
  Lockmgr.release_all lm ~txn:2;
  Alcotest.(check bool) "1 retries and wins" true
    (Lockmgr.acquire lm ~txn:1 b Exclusive = `Granted)

let test_three_party_deadlock () =
  let _, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 and c = obj 1 2 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  ignore (Lockmgr.acquire lm ~txn:3 c Exclusive);
  ignore (Lockmgr.acquire lm ~txn:1 b Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 c Exclusive);
  Alcotest.(check bool) "closing the 3-cycle detected" true
    (Lockmgr.acquire lm ~txn:3 a Exclusive = `Deadlock)

let test_early_release () =
  let _, lm = mk () in
  let o = obj 9 9 in
  ignore (Lockmgr.acquire lm ~txn:1 o Exclusive);
  Lockmgr.release lm ~txn:1 o;
  Alcotest.(check bool) "free for others" true
    (Lockmgr.acquire lm ~txn:2 o Exclusive = `Granted)

let test_wait_cleared_on_grant () =
  let _, lm = mk () in
  let o = obj 1 0 in
  ignore (Lockmgr.acquire lm ~txn:1 o Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 o Exclusive);
  Alcotest.(check bool) "2 waiting" true (Lockmgr.waiting lm ~txn:2);
  Lockmgr.release_all lm ~txn:1;
  Alcotest.(check bool) "retry wins" true (Lockmgr.acquire lm ~txn:2 o Exclusive = `Granted);
  Alcotest.(check bool) "no longer waiting" false (Lockmgr.waiting lm ~txn:2)

(* Regression: [release] used to leave other transactions' waits-for
   edges naming the releasing transaction, and [reaches] walking those
   stale edges made a later [acquire] report a spurious deadlock. The
   B-tree's lock-coupling descent releases early, so this needed no
   transaction-id reuse to fire. *)
let test_no_spurious_deadlock_after_early_release () =
  let _, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  (* 2 blocks on a: edge 2 -> 1. *)
  (match Lockmgr.acquire lm ~txn:2 a Exclusive with
  | `Would_block [ 1 ] -> ()
  | _ -> Alcotest.fail "expected 2 blocked by 1");
  (* 1 releases a early (lock coupling): 2's request no longer conflicts
     with anyone, so it must contribute no waits-for edges. *)
  Lockmgr.release lm ~txn:1 a;
  Alcotest.(check (list int)) "2's blockers cleared" [] (Lockmgr.blockers lm ~txn:2);
  Alcotest.(check bool) "2 dropped from the graph" false (Lockmgr.waiting lm ~txn:2);
  (* 1 requesting b must block on 2, not walk the stale 2 -> 1 edge and
     report a deadlock that isn't there. *)
  Alcotest.(check bool) "no spurious deadlock" true
    (match Lockmgr.acquire lm ~txn:1 b Exclusive with
    | `Would_block [ 2 ] -> true
    | _ -> false)

(* Same bug through the commit/abort path: release_all must re-derive the
   blocker lists of every waiter on every object it frees. *)
let test_release_all_prunes_other_waiters () =
  let _, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  (match Lockmgr.acquire lm ~txn:2 a Exclusive with
  | `Would_block [ 1 ] -> ()
  | _ -> Alcotest.fail "expected 2 blocked by 1");
  (* 1 aborts: everything it held is free, so 2's wait entry must go. *)
  Lockmgr.release_all lm ~txn:1;
  Alcotest.(check bool) "2 no longer waiting" false (Lockmgr.waiting lm ~txn:2);
  Alcotest.(check (list int)) "no blockers" [] (Lockmgr.blockers lm ~txn:2);
  (* A later holder of a sees 2 as a plain waiter, not a deadlock. *)
  ignore (Lockmgr.acquire lm ~txn:3 a Exclusive);
  Alcotest.(check bool) "2 blocks on the new holder" true
    (match Lockmgr.acquire lm ~txn:2 a Exclusive with
    | `Would_block [ 3 ] -> true
    | _ -> false)

(* Model-based property: the lock manager must agree, outcome for
   outcome, with a tiny reference model whose waits-for edges are
   re-derived from the holder table at every step — i.e. [`Deadlock] is
   reported iff the request would close a cycle in the LIVE graph. A
   waiter whose conflicts have all gone is dropped from the graph (it
   would be granted on retry), exactly as the implementation does. *)
type mstate = {
  mutable mholders : ((int * int) * (int * Lockmgr.mode) list) list;
  mutable mwaits : (int * ((int * int) * Lockmgr.mode)) list;
}

let m_holders st obj = try List.assoc obj st.mholders with Not_found -> []

let m_conflicts st obj ~txn mode =
  List.filter_map
    (fun (h, hm) ->
      if h = txn then None
      else
        match (mode, hm) with
        | Lockmgr.Shared, Lockmgr.Shared -> None
        | _ -> Some h)
    (m_holders st obj)

let m_blockers st txn =
  match List.assoc_opt txn st.mwaits with
  | None -> []
  | Some (obj, mode) -> m_conflicts st obj ~txn mode

let m_reaches st start target =
  let rec go seen v =
    v = target
    || ((not (List.mem v seen))
       && List.exists (go (v :: seen)) (m_blockers st v))
  in
  go [] start

(* Drop waiters whose pending request no longer conflicts. The
   implementation does this locally on every holder-set change; since a
   request's conflicts only change when its object's holders do, a global
   sweep is equivalent. *)
let m_prune st =
  st.mwaits <-
    List.filter
      (fun (txn, (obj, mode)) -> m_conflicts st obj ~txn mode <> [])
      st.mwaits

let m_set_holder st obj txn mode =
  let hs = (txn, mode) :: List.filter (fun (h, _) -> h <> txn) (m_holders st obj) in
  st.mholders <- (obj, hs) :: List.remove_assoc obj st.mholders

let m_acquire st ~txn obj mode =
  let held = List.assoc_opt txn (m_holders st obj) in
  match held with
  | Some Lockmgr.Exclusive -> `Granted
  | Some Lockmgr.Shared when mode = Lockmgr.Shared -> `Granted
  | _ -> (
    match m_conflicts st obj ~txn mode with
    | [] ->
      let granted_mode =
        if held = Some Lockmgr.Shared then Lockmgr.Exclusive else mode
      in
      m_set_holder st obj txn granted_mode;
      st.mwaits <- List.remove_assoc txn st.mwaits;
      m_prune st;
      `Granted
    | bs ->
      if List.exists (fun b -> m_reaches st b txn) bs then `Deadlock
      else begin
        st.mwaits <- (txn, (obj, mode)) :: List.remove_assoc txn st.mwaits;
        `Would_block (List.sort compare bs)
      end)

let m_release st ~txn obj =
  let hs = List.filter (fun (h, _) -> h <> txn) (m_holders st obj) in
  st.mholders <-
    (if hs = [] then List.remove_assoc obj st.mholders
     else (obj, hs) :: List.remove_assoc obj st.mholders);
  m_prune st

let m_release_all st ~txn =
  st.mwaits <- List.remove_assoc txn st.mwaits;
  st.mholders <-
    List.filter_map
      (fun (obj, hs) ->
        match List.filter (fun (h, _) -> h <> txn) hs with
        | [] -> None
        | hs -> Some (obj, hs))
      st.mholders;
  m_prune st

let norm = function
  | `Would_block bs -> `Would_block (List.sort compare bs)
  | (`Granted | `Deadlock) as o -> o

let prop_model_deadlock_iff_live_cycle =
  Tutil.qtest ~count:500 "deadlock iff cycle in live waits-for graph"
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (tup4 (int_range 0 4) (int_range 1 4) (int_bound 3) bool))
    (fun ops ->
      let _, lm = mk () in
      let st = { mholders = []; mwaits = [] } in
      List.for_all
        (fun (op, txn, page, excl) ->
          let obj = (0, page) in
          let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
          let agree =
            match op with
            | 0 | 1 | 2 ->
              (* acquire dominates the op mix *)
              norm (Lockmgr.acquire lm ~txn obj mode)
              = norm (m_acquire st ~txn obj mode)
            | 3 ->
              Lockmgr.release lm ~txn obj;
              m_release st ~txn obj;
              true
            | _ ->
              Lockmgr.release_all lm ~txn;
              m_release_all st ~txn;
              true
          in
          agree
          && List.for_all
               (fun t ->
                 Lockmgr.waiting lm ~txn:t = List.mem_assoc t st.mwaits
                 && List.sort compare (Lockmgr.blockers lm ~txn:t)
                    = List.sort compare (m_blockers st t))
               [ 1; 2; 3; 4 ])
        ops)

let prop_release_all_empties =
  Tutil.qtest "release_all leaves no residue"
    QCheck2.Gen.(list (tup3 (int_range 1 4) (int_bound 8) bool))
    (fun reqs ->
      let _, lm = mk () in
      List.iter
        (fun (txn, page, excl) ->
          let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
          ignore (Lockmgr.acquire lm ~txn (0, page) mode))
        reqs;
      List.iter (fun txn -> Lockmgr.release_all lm ~txn) [ 1; 2; 3; 4 ];
      Lockmgr.locked_objects lm = 0)

(* Targeted interleaving property for [release_all] chain ordering: while
   walking the releasing transaction's chain, revalidating the waiters of
   a *later* object must not resurrect a wait entry that the *first*
   released object already cleared. Observable invariant, checked after
   every single operation of a random acquire/release_all interleaving:
   (a) nobody's blocker list ever names a transaction that holds nothing,
   and (b) a transaction whose pending request conflicts with no current
   holder is not waiting at all — i.e. no stale waits-for edges, in
   either direction, at any interleaving point. *)
let prop_release_all_no_stale_edges =
  let txns = [ 1; 2; 3; 4; 5 ] in
  Tutil.qtest ~count:500 "release_all interleavings leave no stale edges"
    QCheck2.Gen.(
      list_size (int_range 1 50)
        (tup4 (int_range 1 5) (int_bound 5) bool (int_bound 6)))
    (fun ops ->
      let _, lm = mk () in
      (* Track the holder table ourselves so "holds nothing" and "no
         conflict" are judged against ground truth, not the unit under
         test. *)
      let holders : ((int * int), (int * Lockmgr.mode) list) Hashtbl.t =
        Hashtbl.create 16
      in
      let holds_nothing t =
        not (Hashtbl.fold (fun _ hs acc -> acc || List.mem_assoc t hs) holders false)
      in
      let pending : (int, (int * int) * Lockmgr.mode) Hashtbl.t =
        Hashtbl.create 8
      in
      let conflicts t =
        match Hashtbl.find_opt pending t with
        | None -> []
        | Some (obj, mode) ->
          List.filter
            (fun (h, hm) ->
              h <> t && not (mode = Lockmgr.Shared && hm = Lockmgr.Shared))
            (try Hashtbl.find holders obj with Not_found -> [])
      in
      let invariant () =
        List.for_all
          (fun t ->
            List.for_all (fun b -> not (holds_nothing b)) (Lockmgr.blockers lm ~txn:t)
            && ((not (Lockmgr.waiting lm ~txn:t)) || conflicts t <> []))
          txns
      in
      List.for_all
        (fun (txn, page, excl, action) ->
          (* Bias toward acquires; release_all fires on ~2/7 of the ops so
             chains of several objects build up before a release walks
             them. *)
          (if action >= 5 then begin
             Lockmgr.release_all lm ~txn;
             Hashtbl.remove pending txn;
             Hashtbl.iter
               (fun obj hs ->
                 Hashtbl.replace holders obj
                   (List.filter (fun (h, _) -> h <> txn) hs))
               (Hashtbl.copy holders)
           end
           else
             let obj = (0, page) in
             let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
             let held =
               List.assoc_opt txn (try Hashtbl.find holders obj with Not_found -> [])
             in
             let noop =
               held = Some Lockmgr.Exclusive
               || (held = Some Lockmgr.Shared && mode = Lockmgr.Shared)
             in
             match Lockmgr.acquire lm ~txn obj mode with
             | `Granted when noop ->
               (* Re-entrant no-op: the lock table is untouched, so any
                  pending request elsewhere stays pending. *)
               ()
             | `Granted ->
               let hs =
                 (try Hashtbl.find holders obj with Not_found -> [])
                 |> List.filter (fun (h, _) -> h <> txn)
               in
               let granted =
                 match Lockmgr.holds lm ~txn obj with
                 | Some m -> m
                 | None -> mode
               in
               Hashtbl.replace holders obj ((txn, granted) :: hs);
               Hashtbl.remove pending txn
             | `Would_block _ -> Hashtbl.replace pending txn (obj, mode)
             | `Deadlock -> ());
          invariant ())
        ops)

let prop_shared_never_conflicts =
  Tutil.qtest "readers never conflict"
    QCheck2.Gen.(list (pair (int_range 1 6) (int_bound 10)))
    (fun reqs ->
      let _, lm = mk () in
      List.for_all
        (fun (txn, page) -> Lockmgr.acquire lm ~txn (0, page) Shared = `Granted)
        reqs)

let () =
  Alcotest.run "tx_lock"
    [
      ( "locks",
        [
          Alcotest.test_case "compatibility" `Quick test_compatibility_matrix;
          Alcotest.test_case "reentrancy/upgrade" `Quick test_reentrant_and_upgrade;
          Alcotest.test_case "chains" `Quick test_chain_traversal;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detection;
          Alcotest.test_case "3-party deadlock" `Quick test_three_party_deadlock;
          Alcotest.test_case "early release" `Quick test_early_release;
          Alcotest.test_case "wait cleared" `Quick test_wait_cleared_on_grant;
          Alcotest.test_case "stale edge after early release" `Quick
            test_no_spurious_deadlock_after_early_release;
          Alcotest.test_case "stale edge after release_all" `Quick
            test_release_all_prunes_other_waiters;
          prop_model_deadlock_iff_live_cycle;
          prop_release_all_no_stale_edges;
          prop_release_all_empties;
          prop_shared_never_conflicts;
        ] );
    ]
