(* Shape tests for the experiment harness: tiny-scale versions of every
   figure must reproduce the paper's qualitative claims. These are the
   same code paths the bench runs, pinned down as assertions. *)

let tiny_scale = 1
let tiny_txns = 800

let cfg () = Config.scaled ~factor:0.1 Config.default

let test_fig4_shape () =
  let f =
    Fig4.run ~config:(cfg ()) ~tps_scale:tiny_scale ~txns:tiny_txns ~seeds:[ 1 ] ()
  in
  match f.Fig4.bars with
  | [ ro; lu; lk ] ->
    Alcotest.(check bool)
      (Printf.sprintf "LFS/user (%.2f) beats read-optimized (%.2f)"
         lu.Fig4.tps_mean ro.Fig4.tps_mean)
      true
      (lu.Fig4.tps_mean > ro.Fig4.tps_mean);
    Alcotest.(check bool)
      (Printf.sprintf "kernel (%.2f) within 15%% of user (%.2f)"
         lk.Fig4.tps_mean lu.Fig4.tps_mean)
      true
      (lk.Fig4.tps_mean > 0.85 *. lu.Fig4.tps_mean);
    List.iter
      (fun b -> Alcotest.(check bool) "positive TPS" true (b.Fig4.tps_mean > 0.0))
      f.Fig4.bars
  | _ -> Alcotest.fail "expected three bars"

let test_fig4_deterministic_per_seed () =
  let one () =
    Fig4.run ~config:(cfg ()) ~tps_scale:tiny_scale ~txns:300 ~seeds:[ 7 ] ()
  in
  let a = one () and b = one () in
  List.iter2
    (fun x y ->
      Alcotest.(check (float 1e-9)) "same seed, same TPS" x.Fig4.tps_mean
        y.Fig4.tps_mean)
    a.Fig4.bars b.Fig4.bars

let test_fig5_shape () =
  let f = Fig5.run ~config:(cfg ()) ~tps_scale:tiny_scale () in
  Alcotest.(check int) "three benchmarks" 3 (List.length f.Fig5.rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within 2%% (got %+.2f%%)" r.Fig5.benchmark
           r.Fig5.delta_pct)
        true
        (Float.abs r.Fig5.delta_pct < 2.0))
    f.Fig5.rows

let test_fig6_shape () =
  let f = Fig6.run ~config:(cfg ()) ~tps_scale:tiny_scale ~txns:tiny_txns () in
  Alcotest.(check bool)
    (Printf.sprintf "LFS scan (%.1fs) slower than read-optimized (%.1fs)"
       f.Fig6.lfs.Fig6.scan_s f.Fig6.readopt.Fig6.scan_s)
    true
    (f.Fig6.lfs.Fig6.scan_s > f.Fig6.readopt.Fig6.scan_s);
  (match f.Fig6.readopt.Fig6.contiguity with
  | Some c -> Alcotest.(check bool) "read-optimized layout stayed sequential" true (c > 0.95)
  | None -> Alcotest.fail "expected contiguity for the read-optimized side")

let test_fig7_crossover_math () =
  (* Synthetic inputs with a known crossover. *)
  let fig4 =
    {
      Fig4.bars =
        [
          {
            Fig4.setup = Expcommon.Readopt_user;
            tps_mean = 10.0;
            tps_sd = 0.0;
            per_seed = [ 10.0 ];
            cleaner_stall_mean_s = 0.0;
            paper_tps = None;
            runs = [];
          };
          {
            Fig4.setup = Expcommon.Lfs_user;
            tps_mean = 12.5;
            tps_sd = 0.0;
            per_seed = [ 12.5 ];
            cleaner_stall_mean_s = 0.0;
            paper_tps = None;
            runs = [];
          };
        ];
      scale = Tpcb.scale_for_tps 1;
      txns = 0;
      config = Config.default;
    }
  in
  let side name tps scan_s =
    { Fig6.fs_name = name; tps; scan_s; contiguity = None; stats = Stats.create () }
  in
  let fig6 =
    {
      Fig6.readopt = side "ffs" 10.0 100.0;
      lfs = side "lfs" 12.5 200.0;
      txns = 0;
      config = Config.default;
    }
  in
  let f = Fig7.of_measurements ~fig4 ~fig6 in
  (* 1/10 - 1/12.5 = 0.02 s/txn slope difference; 100 s scan difference
     -> 5000 transactions. *)
  (match f.Fig7.crossover_txns with
  | Some c -> Alcotest.(check (float 0.5)) "crossover" 5000.0 c
  | None -> Alcotest.fail "expected a crossover");
  (* At the crossover both totals are equal. *)
  List.iter
    (fun (n, ro, lfs) ->
      if n = 5000 then Alcotest.(check (float 0.5)) "equal at crossover" ro lfs)
    f.Fig7.series

let test_fig7_no_crossover () =
  let side tps scan =
    {
      Fig6.fs_name = "";
      tps;
      scan_s = scan;
      contiguity = None;
      stats = Stats.create ();
    }
  in
  let bar setup tps =
    {
      Fig4.setup;
      tps_mean = tps;
      tps_sd = 0.0;
      per_seed = [ tps ];
      cleaner_stall_mean_s = 0.0;
      paper_tps = None;
      runs = [];
    }
  in
  (* LFS faster at everything: no crossover. *)
  let f =
    Fig7.of_measurements
      ~fig4:
        {
          Fig4.bars = [ bar Expcommon.Readopt_user 10.0; bar Expcommon.Lfs_user 12.0 ];
          scale = Tpcb.scale_for_tps 1;
          txns = 0;
          config = Config.default;
        }
      ~fig6:
        {
          Fig6.readopt = side 10.0 200.0;
          lfs = side 12.0 100.0;
          txns = 0;
          config = Config.default;
        }
  in
  Alcotest.(check bool) "no crossover" true (f.Fig7.crossover_txns = None)

let test_coalescing_ablation_shape () =
  let r = Ablation.coalescing ~config:(cfg ()) ~tps_scale:tiny_scale ~txns:tiny_txns () in
  Alcotest.(check bool) "fragmented before" true
    (r.Ablation.contiguity_before < r.Ablation.contiguity_after);
  Alcotest.(check bool)
    (Printf.sprintf "scan improves (%.1fs -> %.1fs)" r.Ablation.scan_before_s
       r.Ablation.scan_after_s)
    true
    (r.Ablation.scan_after_s < r.Ablation.scan_before_s)

let test_tas_ablation_shape () =
  let t = Ablation.test_and_set ~config:(cfg ()) ~tps_scale:tiny_scale ~txns:tiny_txns () in
  match t.Ablation.rows with
  | [ semaphores; tas; _kernel ] ->
    Alcotest.(check bool)
      (Printf.sprintf "test-and-set speeds up user level (%.2f -> %.2f)"
         semaphores.Ablation.tps tas.Ablation.tps)
      true
      (tas.Ablation.tps > semaphores.Ablation.tps)
  | _ -> Alcotest.fail "expected three rows"

let test_cleanersweep_shape () =
  let arms =
    [
      { Cleanersweep.policy = `Greedy; segregate = false };
      { Cleanersweep.policy = `Cost_benefit; segregate = true };
    ]
  in
  let s =
    Cleanersweep.run ~tps_scale:tiny_scale ~txns:120 ~seed:1 ~utils:[ 50; 80 ]
      ~mpls:[ 1; 2 ] ~arms ()
  in
  Alcotest.(check int) "full grid" (2 * 2 * 2) (List.length s.Cleanersweep.points);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "positive TPS at util %d mpl %d" p.Cleanersweep.util_pct
           p.Cleanersweep.mpl)
        true
        (p.Cleanersweep.run.Expcommon.result.Tpcb.tps > 0.0);
      (* The counter-consistency invariant the bench-check rule enforces:
         every cleaned segment (copying or dead-reclaim) observes exactly
         one sample in the clean-latency histogram. *)
      Alcotest.(check int) "segments_cleaned = cleans_observed"
        p.Cleanersweep.segments_cleaned p.Cleanersweep.cleans_observed;
      Alcotest.(check bool) "write cost non-negative" true
        (p.Cleanersweep.write_cost >= 0.0))
    s.Cleanersweep.points;
  (* The fuller disk must actually exercise the cleaner somewhere. *)
  Alcotest.(check bool) "cleaner ran at 80% utilization" true
    (List.exists
       (fun p ->
         p.Cleanersweep.util_pct = 80 && p.Cleanersweep.segments_cleaned > 0)
       s.Cleanersweep.points)

let test_stats_helpers () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Expcommon.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Expcommon.mean []);
  Alcotest.(check (float 1e-9)) "stdev constant" 0.0 (Expcommon.stdev [ 5.0; 5.0 ]);
  Alcotest.(check bool) "stdev positive" true (Expcommon.stdev [ 1.0; 3.0 ] > 0.0)

let () =
  Alcotest.run "tx_exp"
    [
      ( "figures",
        [
          Alcotest.test_case "fig4 shape" `Slow test_fig4_shape;
          Alcotest.test_case "fig4 deterministic" `Slow test_fig4_deterministic_per_seed;
          Alcotest.test_case "fig5 shape" `Slow test_fig5_shape;
          Alcotest.test_case "fig6 shape" `Slow test_fig6_shape;
          Alcotest.test_case "fig7 crossover math" `Quick test_fig7_crossover_math;
          Alcotest.test_case "fig7 no crossover" `Quick test_fig7_no_crossover;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "coalescing" `Slow test_coalescing_ablation_shape;
          Alcotest.test_case "test-and-set" `Slow test_tas_ablation_shape;
          Alcotest.test_case "cleanersweep" `Slow test_cleanersweep_shape;
        ] );
      ("helpers", [ Alcotest.test_case "mean/stdev" `Quick test_stats_helpers ]);
    ]
