(* Tests for the user-level transaction system: log record codecs, the log
   manager, the buffer pool's WAL rule, transaction semantics
   (commit/abort/isolation), and crash recovery on a real LFS substrate. *)

let mk_env ?(cfg = Tutil.small_config ()) () =
  let m = Tutil.machine ~cfg () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:32
      ~checkpoint_every:1000 ~log_path:"/wal.log" ()
  in
  (m, fs, v, env)

(* Crash the machine and bring the environment back up, running recovery. *)
let crash_recover (m : Tutil.machine) fs =
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:32
      ~checkpoint_every:1000 ~log_path:"/wal.log" ()
  in
  (fs, v, env)

let page_with v byte = Bytes.make v.Vfs.block_size byte

(* Logrec codec ----------------------------------------------------------- *)

let test_logrec_roundtrip () =
  let recs =
    [
      { Logrec.txn = 1; prev = Logrec.null_lsn; body = Logrec.Begin };
      {
        Logrec.txn = 1;
        prev = 0;
        body =
          Logrec.Update
            {
              file = 42;
              page = 7;
              off = 123;
              pstream = -1;
              plsn = Logrec.null_lsn;
              before = Bytes.of_string "old!";
              after = Bytes.of_string "new!";
            };
      };
      {
        Logrec.txn = 3;
        prev = 12;
        body =
          Logrec.Update
            {
              file = 42;
              page = 8;
              off = 0;
              pstream = 2;
              plsn = 4096;
              before = Bytes.of_string "x";
              after = Bytes.of_string "y";
            };
      };
      { Logrec.txn = 1; prev = 30; body = Logrec.Commit { deps = [] } };
      {
        Logrec.txn = 4;
        prev = 31;
        body = Logrec.Commit { deps = [ (0, 128); (3, 77) ] };
      };
      { Logrec.txn = 2; prev = 99; body = Logrec.Abort { deps = [ (1, 0) ] } };
      { Logrec.txn = 0; prev = Logrec.null_lsn; body = Logrec.Checkpoint { active = [ 3; 4 ] } };
    ]
  in
  let buf = Buffer.create 256 in
  List.iter (fun r -> Buffer.add_bytes buf (Logrec.encode r)) recs;
  let data = Buffer.to_bytes buf in
  let rec decode_all off acc =
    match Logrec.decode data off with
    | Some (r, next) -> decode_all next (r :: acc)
    | None -> List.rev acc
  in
  let out = decode_all 0 [] in
  Alcotest.(check int) "all decoded" (List.length recs) (List.length out);
  List.iter2
    (fun a b ->
      Alcotest.(check int) "txn" a.Logrec.txn b.Logrec.txn;
      Alcotest.(check int) "prev" a.Logrec.prev b.Logrec.prev;
      Alcotest.(check bool) "body" true (a.Logrec.body = b.Logrec.body))
    recs out

let test_logrec_rejects_torn () =
  let r =
    {
      Logrec.txn = 1;
      prev = 0;
      body =
        Logrec.Update
          {
            file = 1;
            page = 1;
            off = 0;
            pstream = -1;
            plsn = Logrec.null_lsn;
            before = Bytes.make 50 'a';
            after = Bytes.make 50 'b';
          };
    }
  in
  let enc = Logrec.encode r in
  (* Truncated *)
  Alcotest.(check bool) "truncated" true
    (Logrec.decode (Bytes.sub enc 0 (Bytes.length enc - 5)) 0 = None);
  (* Flipped byte in the body *)
  let bad = Bytes.copy enc in
  Bytes.set bad (Bytes.length bad - 1) 'x';
  Alcotest.(check bool) "corrupt" true (Logrec.decode bad 0 = None)

let prop_logrec_roundtrip =
  Tutil.qtest "logrec round-trip"
    QCheck2.Gen.(
      tup5 (int_bound 10000) (int_bound 100) (int_bound 4000)
        (string_size (int_range 1 80))
        (pair (int_range (-1) 7) (int_bound 100000)))
    (fun (txn, page, off, s, (pstream, plsn)) ->
      let body =
        Logrec.Update
          {
            file = 3;
            page;
            off;
            pstream;
            plsn = (if pstream < 0 then Logrec.null_lsn else plsn);
            before = Bytes.of_string s;
            after = Bytes.of_string (String.uppercase_ascii s);
          }
      in
      let r = { Logrec.txn; prev = 17; body } in
      match Logrec.decode (Logrec.encode r) 0 with
      | Some (r', _) -> r' = r
      | None -> false)

(* Log manager ------------------------------------------------------------ *)

let test_logmgr_force_and_scan () =
  let m, _fs, v, _env = mk_env () in
  let log = Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/log2" in
  let l1 = Logmgr.append log { Logrec.txn = 1; prev = -1; body = Logrec.Begin } in
  let l2 =
    Logmgr.append log
      { Logrec.txn = 1; prev = l1; body = Logrec.Commit { deps = [] } }
  in
  Alcotest.(check bool) "nothing flushed yet" true (Logmgr.flushed_lsn log = 0);
  Logmgr.force log ~upto:l2;
  Alcotest.(check bool) "flushed" true (Logmgr.flushed_lsn log > l2);
  let records = List.of_seq (Logmgr.read_from log 0) in
  Alcotest.(check int) "scan finds both" 2 (List.length records)

let test_logmgr_reopen_positions_at_end () =
  let m, _fs, v, _env = mk_env () in
  let log = Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/log3" in
  let l1 = Logmgr.append log { Logrec.txn = 5; prev = -1; body = Logrec.Begin } in
  Logmgr.force log ~upto:l1;
  let end1 = Logmgr.next_lsn log in
  let log' = Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/log3" in
  Alcotest.(check int) "reopen at end" end1 (Logmgr.next_lsn log')

(* The recovery scan reads the log incrementally (64 KiB windows), not as
   one whole-file slurp. A record bigger than the window must still decode
   (the window widens until it fits), and the bytes touched must stay
   proportional to the log size. *)
let test_logmgr_incremental_scan () =
  let m, _fs, v, _env = mk_env () in
  let log = Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/big" in
  let big n c =
    {
      Logrec.txn = 9;
      prev = Logrec.null_lsn;
      body =
        Logrec.Update
          {
            file = 1;
            page = 0;
            off = 0;
            pstream = -1;
            plsn = Logrec.null_lsn;
            before = Bytes.make n c;
            after = Bytes.make n c;
          };
    }
  in
  (* One record straddling the 64 KiB window, padded with small ones. *)
  let lsns =
    List.map
      (fun r -> Logmgr.append log r)
      [ big 200 'a'; big 70_000 'b'; big 200 'c'; big 200 'd' ]
  in
  Logmgr.force log ~upto:(List.nth lsns 3);
  Stats.reset m.Tutil.stats;
  let scanned = List.of_seq (Logmgr.read_from log 0) in
  Alcotest.(check int) "all records decoded" 4 (List.length scanned);
  List.iter2
    (fun lsn (lsn', _) -> Alcotest.(check int) "lsn" lsn lsn')
    lsns scanned;
  let reads = Stats.count m.Tutil.stats "log.recovery_reads" in
  let bytes = Stats.count m.Tutil.stats "log.recovery_bytes_scanned" in
  let log_fd = v.Vfs.open_file "/big" in
  let size = v.Vfs.size log_fd in
  Alcotest.(check bool) "multiple incremental reads" true (reads > 1);
  Alcotest.(check bool)
    (Printf.sprintf "bytes scanned (%d) bounded by 4x log size (%d)" bytes size)
    true
    (bytes > 0 && bytes <= 4 * size);
  (* Reopening replays the same scan: position still lands at the end. *)
  let log' = Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/big" in
  Alcotest.(check int) "reopen at end" (Logmgr.next_lsn log) (Logmgr.next_lsn log')

(* Transactions ----------------------------------------------------------- *)

let test_commit_visible () =
  let _m, _fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  let txn = Libtp.begin_txn env in
  Libtp.write_page env txn ~file:fd ~page:0 (page_with v 'A');
  Libtp.commit env txn;
  let txn2 = Libtp.begin_txn env in
  let got = Libtp.read_page env txn2 ~file:fd ~page:0 in
  Alcotest.(check char) "committed data visible" 'A' (Bytes.get got 0);
  Libtp.commit env txn2

let test_abort_undoes () =
  let _m, _fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  let t1 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:0 (page_with v 'A');
  Libtp.commit env t1;
  let t2 = Libtp.begin_txn env in
  Libtp.write_page env t2 ~file:fd ~page:0 (page_with v 'B');
  Libtp.write_page env t2 ~file:fd ~page:1 (page_with v 'C');
  Libtp.abort env t2;
  let t3 = Libtp.begin_txn env in
  Alcotest.(check char) "page 0 restored" 'A'
    (Bytes.get (Libtp.read_page env t3 ~file:fd ~page:0) 0);
  Alcotest.(check char) "page 1 restored" '\000'
    (Bytes.get (Libtp.read_page env t3 ~file:fd ~page:1) 0);
  Libtp.commit env t3

let test_two_phase_locking_conflict () =
  let _m, _fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  let t1 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:0 (page_with v 'A');
  let t2 = Libtp.begin_txn env in
  Alcotest.(check bool) "reader blocks on writer" true
    (match Libtp.read_page env t2 ~file:fd ~page:0 with
    | exception Libtp.Conflict [ blocker ] -> blocker = Libtp.txn_id t1
    | _ -> false);
  Libtp.commit env t1;
  (* After commit the lock is free. *)
  ignore (Libtp.read_page env t2 ~file:fd ~page:0);
  Libtp.commit env t2

let test_deadlock_aborts_requester () =
  let _m, _fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  let t1 = Libtp.begin_txn env in
  let t2 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:0 (page_with v 'A');
  Libtp.write_page env t2 ~file:fd ~page:1 (page_with v 'B');
  (* t1 waits for page 1 *)
  (try ignore (Libtp.read_page env t1 ~file:fd ~page:1) with Libtp.Conflict _ -> ());
  (* t2 requesting page 0 closes the cycle: t2 is aborted. *)
  Alcotest.(check bool) "deadlock abort" true
    (match Libtp.read_page env t2 ~file:fd ~page:0 with
    | exception Libtp.Deadlock_abort id -> id = Libtp.txn_id t2
    | _ -> false);
  (* t2's update is undone. *)
  Libtp.commit env t1;
  let t3 = Libtp.begin_txn env in
  Alcotest.(check char) "t2 undone" '\000'
    (Bytes.get (Libtp.read_page env t3 ~file:fd ~page:1) 0);
  Libtp.commit env t3

let test_no_op_write_logs_nothing () =
  let m, _fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  let t1 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:0 (page_with v 'A');
  Libtp.commit env t1;
  let appends = Stats.count m.Tutil.stats "log.appends" in
  let t2 = Libtp.begin_txn env in
  Libtp.write_page env t2 ~file:fd ~page:0 (page_with v 'A');
  Libtp.commit env t2;
  (* Only Begin and Commit were logged, no Update. *)
  Alcotest.(check int) "no update record" (appends + 2)
    (Stats.count m.Tutil.stats "log.appends")

(* Random force points: whatever was forced must scan back identically
   after reopening the log. *)
let prop_logmgr_force_scan =
  Tutil.qtest ~count:30 "forced records survive reopen"
    QCheck2.Gen.(
      list_size (int_range 1 25)
        (tup3 (int_range 1 50) (string_size ~gen:(char_range 'a' 'z') (int_range 1 60)) bool))
    (fun batches ->
      let m, _fs, v, _env = mk_env () in
      let log = Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/plog" in
      let durable = ref [] in
      let pending = ref [] in
      List.iter
        (fun (txn, payload, force_now) ->
          let r =
            {
              Logrec.txn;
              prev = Logrec.null_lsn;
              body =
                Logrec.Update
                  {
                    file = 1;
                    page = 0;
                    off = 0;
                    pstream = -1;
                    plsn = Logrec.null_lsn;
                    before = Bytes.of_string payload;
                    after = Bytes.of_string (String.uppercase_ascii payload);
                  };
            }
          in
          let lsn = Logmgr.append log r in
          pending := (lsn, r) :: !pending;
          if force_now then begin
            Logmgr.force log ~upto:lsn;
            durable := !durable @ List.rev !pending;
            pending := []
          end)
        batches;
      (* Reopen: only the forced prefix is visible. *)
      let log' = Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/plog" in
      let scanned = List.of_seq (Logmgr.read_from log' 0) in
      List.length scanned = List.length !durable
      && List.for_all2
           (fun (lsn, r) (lsn', r') -> lsn = lsn' && r = r')
           !durable scanned)

(* Buffer pool / WAL rule --------------------------------------------------- *)

let test_wal_rule_on_eviction () =
  (* Evicting a dirty page must force the log that covers its update
     first. Use a 2-page pool so the eviction is immediate. *)
  let m = Tutil.machine () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:2
      ~log_path:"/wal.log" ()
  in
  let fd = v.Vfs.create "/db" in
  let txn = Libtp.begin_txn env in
  Libtp.write_page env txn ~file:fd ~page:0 (page_with v 'W');
  let flushed_before = Logmgr.flushed_lsn (Libtp.log env) in
  (* Touch two other pages: page 0 gets evicted dirty. *)
  ignore (Libtp.read_page env txn ~file:fd ~page:1);
  ignore (Libtp.read_page env txn ~file:fd ~page:2);
  Alcotest.(check bool) "log forced before page write" true
    (Logmgr.flushed_lsn (Libtp.log env) > flushed_before);
  (* The evicted page's content reached the file system. *)
  Alcotest.(check char) "page on fs" 'W' (Bytes.get (v.Vfs.read fd ~off:0 ~len:1) 0);
  Libtp.commit env txn

let test_group_commit_timeout_adds_latency () =
  let cfg =
    let c = Tutil.small_config () in
    { c with Config.fs = { c.Config.fs with group_commit_timeout_s = 0.02 } }
  in
  let m, _fs, v, _ = mk_env ~cfg () in
  let env2 =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:16
      ~log_path:"/gc.log" ()
  in
  let fd = v.Vfs.create "/gcdb" in
  let t0 = Clock.now m.Tutil.clock in
  let txn = Libtp.begin_txn env2 in
  Libtp.write_page env2 txn ~file:fd ~page:0 (page_with v 'G');
  Libtp.commit env2 txn;
  Alcotest.(check bool) "waited out the group-commit timeout" true
    (Clock.now m.Tutil.clock -. t0 >= 0.02);
  Alcotest.(check bool) "recorded" true
    (Stats.time m.Tutil.stats "log.group_commit_wait" >= 0.02)

let test_group_commit_size_skips_wait () =
  let cfg =
    let c = Tutil.small_config () in
    {
      c with
      Config.fs =
        { c.Config.fs with group_commit_timeout_s = 10.0; group_commit_size = 1 };
    }
  in
  let m, _fs, v, _ = mk_env ~cfg () in
  let env2 =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:16
      ~log_path:"/gc.log" ()
  in
  let fd = v.Vfs.create "/gcdb" in
  let t0 = Clock.now m.Tutil.clock in
  let txn = Libtp.begin_txn env2 in
  Libtp.write_page env2 txn ~file:fd ~page:0 (page_with v 'G');
  Libtp.commit env2 txn;
  (* With the group size already reached, no 10-second wait happens. *)
  Alcotest.(check bool) "no timeout wait" true (Clock.now m.Tutil.clock -. t0 < 5.0)

let test_checkpoint_truncates_log () =
  let m, _fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  for i = 0 to 9 do
    let txn = Libtp.begin_txn env in
    Libtp.write_page env txn ~file:fd ~page:i (page_with v 'x');
    Libtp.commit env txn
  done;
  let log_fd = v.Vfs.open_file "/wal.log" in
  let before = v.Vfs.size log_fd in
  Alcotest.(check bool) "log grew" true (before > 0);
  Libtp.checkpoint env;
  let after = v.Vfs.size log_fd in
  Alcotest.(check bool)
    (Printf.sprintf "log truncated (%d -> %d)" before after)
    true
    (after < before);
  ignore m

(* Crash recovery --------------------------------------------------------- *)

let test_recovery_redo () =
  let m, fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  Lfs.sync fs;
  let t1 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:3 (page_with v 'R');
  Libtp.commit env t1;
  (* Committed but the data page never left the user pool: the log has it. *)
  let _fs, v, env = crash_recover m fs in
  let fd = v.Vfs.open_file "/db" in
  let t = Libtp.begin_txn env in
  Alcotest.(check char) "redo recovered committed data" 'R'
    (Bytes.get (Libtp.read_page env t ~file:fd ~page:3) 0);
  Libtp.commit env t

let test_recovery_undo_loser () =
  let m, fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  Lfs.sync fs;
  let t1 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:0 (page_with v 'W');
  Libtp.commit env t1;
  (* A loser: updates logged and even flushed, but never committed. *)
  let t2 = Libtp.begin_txn env in
  Libtp.write_page env t2 ~file:fd ~page:0 (page_with v 'L');
  Logmgr.force (Libtp.log env) ~upto:(Logmgr.next_lsn (Libtp.log env) - 1);
  Bufpool.flush_all (Libtp.pool env);
  let _fs, v, env = crash_recover m fs in
  Alcotest.(check int) "one loser undone" 1 (Libtp.recovered_losers env);
  let fd = v.Vfs.open_file "/db" in
  let t = Libtp.begin_txn env in
  Alcotest.(check char) "loser rolled back" 'W'
    (Bytes.get (Libtp.read_page env t ~file:fd ~page:0) 0);
  Libtp.commit env t

let test_recovery_idempotent_after_clean_shutdown () =
  let m, fs, v, env = mk_env () in
  let fd = v.Vfs.create "/db" in
  let t1 = Libtp.begin_txn env in
  Libtp.write_page env t1 ~file:fd ~page:0 (page_with v 'Z');
  Libtp.commit env t1;
  Libtp.checkpoint env;
  Lfs.sync fs;
  let _fs, v, env = crash_recover m fs in
  Alcotest.(check int) "no losers" 0 (Libtp.recovered_losers env);
  let fd = v.Vfs.open_file "/db" in
  let t = Libtp.begin_txn env in
  Alcotest.(check char) "data intact" 'Z'
    (Bytes.get (Libtp.read_page env t ~file:fd ~page:0) 0);
  Libtp.commit env t

(* Randomized recovery property: run committed and uncommitted transactions
   over a small database, crash at a random point, recover, and check that
   exactly the committed values survive. *)
let prop_recovery_atomicity =
  Tutil.qtest ~count:25 "recovery keeps exactly committed state"
    QCheck2.Gen.(list_size (int_range 1 15) (pair (int_bound 4) (int_bound 255)))
    (fun writes ->
      let m, fs, v, env = mk_env () in
      let fd = v.Vfs.create "/db" in
      Lfs.sync fs;
      let committed = Hashtbl.create 8 in
      List.iteri
        (fun i (page, value) ->
          let txn = Libtp.begin_txn env in
          let b = page_with v (Char.chr value) in
          Libtp.write_page env txn ~file:fd ~page b;
          if i mod 3 = 2 then Libtp.abort env txn
          else begin
            Libtp.commit env txn;
            Hashtbl.replace committed page value
          end)
        writes;
      (* Crash without any orderly shutdown. *)
      let _fs, v, env = crash_recover m fs in
      let fd = v.Vfs.open_file "/db" in
      let txn = Libtp.begin_txn env in
      let ok =
        Hashtbl.fold
          (fun page value ok ->
            ok
            && Char.code (Bytes.get (Libtp.read_page env txn ~file:fd ~page) 0)
               = value)
          committed true
      in
      Libtp.commit env txn;
      ok)

(* Truncate vs. force interleaving ---------------------------------------- *)

(* Regression: Logmgr.truncate used to ignore the force serialization —
   a checkpoint's truncate racing a commit force parked in its
   write/fsync could reset [flushed] under the force and resurrect the
   just-truncated bytes. Two fibers on the deterministic scheduler pin
   the interleaving: the truncator arrives while the forcer is parked on
   the log disk, and must wait the force out. *)
let test_truncate_waits_for_force () =
  let m = Tutil.machine () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let log =
    Logmgr.open_log m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~path:"/trunc"
  in
  let big byte =
    {
      Logrec.txn = 1;
      prev = Logrec.null_lsn;
      body =
        Logrec.Update
          {
            file = 1;
            page = 0;
            off = 0;
            pstream = -1;
            plsn = Logrec.null_lsn;
            before = Bytes.make (2 * v.Vfs.block_size) byte;
            after = Bytes.make (2 * v.Vfs.block_size) byte;
          };
    }
  in
  let sched = Sched.create m.Tutil.clock in
  let force_done = ref false in
  let truncated_during_force = ref false in
  Sched.spawn sched (fun () ->
      let lsn = Logmgr.append log (big 'a') in
      Logmgr.force log ~upto:lsn;
      force_done := true);
  Sched.spawn sched (fun () ->
      (* Arrive while the force above is parked in its disk write. *)
      Sched.yield sched;
      Logmgr.truncate log;
      if not !force_done then truncated_during_force := true);
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check bool) "truncate waited out the in-flight force" false
    !truncated_during_force;
  Alcotest.(check int) "one truncation" 1
    (Stats.count m.Tutil.stats "log.truncations");
  Alcotest.(check int) "log reset" 0 (Logmgr.flushed_lsn log);
  (* The log still works from a clean slate. *)
  let lsn = Logmgr.append log (big 'b') in
  Logmgr.force log ~upto:lsn;
  Alcotest.(check int) "one record after truncate" 1
    (List.length (List.of_seq (Logmgr.read_from log 0)))

(* Multi-stream WAL ------------------------------------------------------- *)

let streams_cfg n =
  let cfg = Tutil.small_config () in
  { cfg with Config.fs = { cfg.Config.fs with Config.log_streams = n } }

(* Commits spread across three streams, cross-stream overwrites of one
   page (exercising the vector-LSN dependency tracking), one loser whose
   stream was forced — recovery must merge the streams, redo the
   committed writes in dependency order and undo the loser. *)
let test_multi_stream_commit_recover () =
  let m, fs, v, env = mk_env ~cfg:(streams_cfg 3) () in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " exists") true (v.Vfs.exists p))
    [ "/wal.log.0"; "/wal.log.1"; "/wal.log.2" ];
  let fd = v.Vfs.create "/db" in
  Lfs.sync fs;
  (* Six serial transactions: consecutive ids land on different streams,
     and every one overwrites page 0, so each commit carries a
     cross-stream dependency on its predecessor. *)
  for i = 0 to 5 do
    let txn = Libtp.begin_txn env in
    Libtp.write_page env txn ~file:fd ~page:0 (page_with v (Char.chr (65 + i)));
    Libtp.write_page env txn ~file:fd ~page:(1 + (i mod 3)) (page_with v 'p');
    Libtp.commit env txn
  done;
  Alcotest.(check bool) "cross-stream deps tracked" true
    (Stats.count m.Tutil.stats "log.dep_checks" > 0);
  (* A loser: updates flushed on its own stream, commit never logged. *)
  let loser = Libtp.begin_txn env in
  Libtp.write_page env loser ~file:fd ~page:0 (page_with v '!');
  let logs = Libtp.logs env in
  let lm = Logset.get logs (Logset.stream_of_txn logs (Libtp.txn_id loser)) in
  Logmgr.force lm ~upto:(Logmgr.next_lsn lm - 1);
  let _fs, v, env = crash_recover m fs in
  Alcotest.(check int) "loser undone" 1 (Libtp.recovered_losers env);
  let fd = v.Vfs.open_file "/db" in
  let t = Libtp.begin_txn env in
  Alcotest.(check char) "last committed write wins across streams" 'F'
    (Bytes.get (Libtp.read_page env t ~file:fd ~page:0) 0);
  Libtp.commit env t

(* Randomized multi-stream crash prefixes. A real crash can only lose a
   suffix of each stream; with a serial workload (each transaction
   forces its stream at commit before the next begins) the reachable
   durable states are exactly: every record of the first K transactions,
   plus a prefix of transaction K+1's records on its own stream.
   Arbitrary independent per-stream cuts would manufacture states no
   crash can produce — a durable commit whose cross-stream dependency
   was lost — so the generator cuts along that frontier and recovery
   must reproduce precisely the surviving committed writes. *)
let prop_multi_stream_crash_prefix =
  Tutil.qtest ~count:15 "multi-stream recovery replays any crash prefix"
    QCheck2.Gen.(
      tup4 (int_range 2 3)
        (list_size (int_range 1 12) (pair (int_bound 4) (int_range 1 255)))
        nat nat)
    (fun (ns, writes, kseed, pseed) ->
      let cfg = streams_cfg ns in
      let m = Tutil.machine ~cfg () in
      let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
      let v = Lfs.vfs fs in
      let env =
        Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:64
          ~checkpoint_every:100_000 ~log_path:"/wal.log" ()
      in
      let fd = v.Vfs.create "/db" in
      Lfs.sync fs;
      let history = ref [] in
      List.iter
        (fun (page, value) ->
          let txn = Libtp.begin_txn env in
          Libtp.write_page env txn ~file:fd ~page (page_with v (Char.chr value));
          Libtp.commit env txn;
          history := (Libtp.txn_id txn, page, value) :: !history)
        writes;
      let history = List.rev !history in
      let ids = List.map (fun (id, _, _) -> id) history in
      let k = kseed mod (List.length ids + 1) in
      let full = List.filteri (fun i _ -> i < k) ids in
      let partial = List.nth_opt ids k in
      Lfs.crash fs;
      let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
      let v = Lfs.vfs fs in
      let winners = Hashtbl.create 8 in
      List.iter (fun id -> Hashtbl.replace winners id ()) full;
      for s = 0 to ns - 1 do
        let lfd = v.Vfs.open_file (Printf.sprintf "/wal.log.%d" s) in
        let size = v.Vfs.size lfd in
        let buf =
          if size = 0 then Bytes.empty else v.Vfs.read lfd ~off:0 ~len:size
        in
        (* Record boundaries on this stream, in append order. *)
        let recs = ref [] in
        let off = ref 0 in
        let scanning = ref true in
        while !scanning do
          match Logrec.decode buf !off with
          | Some (r, next) ->
            recs := (r.Logrec.txn, next) :: !recs;
            off := next
          | None -> scanning := false
        done;
        let recs = List.rev !recs in
        (* How much of the partial transaction to keep: only its own
           stream holds its records. Keeping all of them makes it a
           winner after all. *)
        let keep_partial =
          match partial with
          | None -> 0
          | Some id ->
            let own = List.length (List.filter (fun (t, _) -> t = id) recs) in
            let j = if own = 0 then 0 else pseed mod (own + 1) in
            if j = own && own > 0 then Hashtbl.replace winners id ();
            j
        in
        (* Cut at the last record of the kept prefix: checkpoint records
           (txn 0) and fully-kept transactions, then [keep_partial]
           records of the partial one. *)
        let cut = ref 0 in
        let kept = ref 0 in
        let stop = ref false in
        List.iter
          (fun (t, endoff) ->
            if not !stop then
              if t = 0 || List.mem t full then cut := endoff
              else if partial = Some t && !kept < keep_partial then begin
                incr kept;
                cut := endoff
              end
              else stop := true)
          recs;
        v.Vfs.truncate lfd !cut
      done;
      let env =
        Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:64
          ~checkpoint_every:100_000 ~log_path:"/wal.log" ()
      in
      ignore (Libtp.recovered_losers env);
      let fd = v.Vfs.open_file "/db" in
      (* Oracle: the last surviving committed write per page; pages were
         never written back before the crash, so everything else is
         zero. *)
      let expect = Hashtbl.create 8 in
      List.iter
        (fun (id, page, value) ->
          if Hashtbl.mem winners id then Hashtbl.replace expect page value)
        history;
      let txn = Libtp.begin_txn env in
      let ok = ref true in
      for page = 0 to 4 do
        let got =
          Char.code (Bytes.get (Libtp.read_page env txn ~file:fd ~page) 0)
        in
        let want = Option.value (Hashtbl.find_opt expect page) ~default:0 in
        if got <> want then ok := false
      done;
      Libtp.commit env txn;
      !ok)

let () =
  Alcotest.run "tx_wal"
    [
      ( "logrec",
        [
          Alcotest.test_case "roundtrip" `Quick test_logrec_roundtrip;
          Alcotest.test_case "torn/corrupt" `Quick test_logrec_rejects_torn;
          prop_logrec_roundtrip;
        ] );
      ( "logmgr",
        [
          Alcotest.test_case "force and scan" `Quick test_logmgr_force_and_scan;
          Alcotest.test_case "reopen at end" `Quick
            test_logmgr_reopen_positions_at_end;
          Alcotest.test_case "incremental scan" `Quick test_logmgr_incremental_scan;
          Alcotest.test_case "truncate waits for force" `Quick
            test_truncate_waits_for_force;
          prop_logmgr_force_scan;
        ] );
      ( "txn",
        [
          Alcotest.test_case "commit visible" `Quick test_commit_visible;
          Alcotest.test_case "abort undoes" `Quick test_abort_undoes;
          Alcotest.test_case "2PL conflict" `Quick test_two_phase_locking_conflict;
          Alcotest.test_case "deadlock abort" `Quick test_deadlock_aborts_requester;
          Alcotest.test_case "no-op write" `Quick test_no_op_write_logs_nothing;
        ] );
      ( "pool",
        [
          Alcotest.test_case "WAL rule on eviction" `Quick test_wal_rule_on_eviction;
          Alcotest.test_case "group commit timeout" `Quick
            test_group_commit_timeout_adds_latency;
          Alcotest.test_case "group commit size" `Quick
            test_group_commit_size_skips_wait;
          Alcotest.test_case "checkpoint truncates log" `Quick
            test_checkpoint_truncates_log;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "redo" `Quick test_recovery_redo;
          Alcotest.test_case "undo loser" `Quick test_recovery_undo_loser;
          Alcotest.test_case "clean shutdown" `Quick
            test_recovery_idempotent_after_clean_shutdown;
          prop_recovery_atomicity;
        ] );
      ( "multi-stream",
        [
          Alcotest.test_case "commit and recover across streams" `Quick
            test_multi_stream_commit_recover;
          prop_multi_stream_crash_prefix;
        ] );
    ]
