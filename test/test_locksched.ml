(* Two-fiber interleaving tests for the record-grain locking protocol
   under the discrete-event scheduler: the classic S->X upgrade race
   (one deadlock victim, no lost update) and lock escalation racing a
   concurrent lock request on the same page. The scheduler is
   deterministic (FIFO at equal times), so each test scripts one exact
   interleaving with yields and condition variables. *)

let record_cfg ?escalation () =
  let cfg = Tutil.small_config () in
  let fs =
    {
      cfg.Config.fs with
      Config.lock_grain = `Record;
      Config.lock_escalation =
        (match escalation with
        | Some e -> e
        | None -> cfg.Config.fs.Config.lock_escalation);
    }
  in
  { cfg with Config.fs = fs }

let mk_env cfg =
  let m = Tutil.machine ~cfg () in
  let fs = Lfs.format m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:32
      ~checkpoint_every:1000 ~log_path:"/wal.log" ()
  in
  (m, env)

(* Both fibers read a shared counter under a Shared record lock, then
   upgrade to Exclusive to write back read+1. With both holding S,
   neither upgrade can be granted and the second request closes a
   2-cycle: exactly one fiber must be chosen as deadlock victim
   (aborted, restarted), and the survivor's [`Restart] forces a re-read
   — so the final value must be 2, never the lost-update 1. *)
let test_upgrade_race () =
  let m, env = mk_env (record_cfg ()) in
  let sched = Sched.create m.Tutil.clock in
  let o = Lockmgr.Rec (1, 0, 5) in
  let v = ref 0 in
  let deadlocks = ref 0 in
  let commits = ref 0 in
  let worker () =
    let rec attempt () =
      let txn = Libtp.begin_txn env in
      match
        try
          ignore (Libtp.lock_restartable env txn o Lockmgr.Shared);
          let read = !v in
          (* Let the other fiber take its shared lock too. *)
          Sched.yield sched;
          let read =
            match Libtp.lock_restartable env txn o Lockmgr.Exclusive with
            | `Granted -> read
            | `Restart ->
              (* We parked; the snapshot may be stale. Re-read under the
                 now-held exclusive lock. *)
              !v
          in
          `Write read
        with Libtp.Deadlock_abort _ ->
          incr deadlocks;
          `Retry
      with
      | `Write read ->
        v := read + 1;
        Libtp.commit env txn;
        incr commits
      | `Retry ->
        (* Back off before retrying so the survivor (already woken by
           our abort) upgrades and commits first. *)
        Sched.yield sched;
        attempt ()
    in
    attempt ()
  in
  Sched.spawn sched worker;
  Sched.spawn sched worker;
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check int) "exactly one deadlock victim" 1 !deadlocks;
  Alcotest.(check int) "deadlock counted once" 1
    (Stats.count m.Tutil.stats "lock.deadlocks");
  Alcotest.(check int) "both committed" 2 !commits;
  Alcotest.(check int) "no lost update" 2 !v

(* Escalation racing concurrent lock traffic on the same page.

   Phase 1 (skip): fiber B holds one Shared record lock on the page —
   and with it a Page IS intent — so when fiber A's third record lock
   trips the threshold, the page Exclusive would conflict: escalation
   must be skipped (never block) and A's record locks survive
   untouched. This is also why a parked record-acquirer blocks
   escalation outright: its Page IX is already planted before it waits
   at the record node.

   Phase 2 (swap vs. waiter): fiber C requests the whole page Shared
   and parks at the page node (holding only File IS, which conflicts
   with nothing). A's next record lock then escalates for real: the
   swap trades A's record locks for a page Exclusive while C waits on
   that very node, and C must not slip through — its grant may come
   only after A commits. *)
let test_escalation_race () =
  let m, env = mk_env (record_cfg ~escalation:3 ()) in
  let sched = Sched.create m.Tutil.clock in
  let lm = Libtp.locks env in
  let stats = m.Tutil.stats in
  let rec_ r = Lockmgr.Rec (1, 0, r) in
  (* flag+condition rendezvous: [await] parks until [set] fires. *)
  let mk_flag () = (ref false, Sched.condition ()) in
  let set (f, c) =
    f := true;
    Sched.broadcast sched c
  in
  let await (f, c) =
    while not !f do
      Sched.wait sched c
    done
  in
  let b_locked = mk_flag () in
  let b_may_commit = mk_flag () in
  let b_done = mk_flag () in
  let c_go = mk_flag () in
  let a_committed = ref false in
  let c_granted = ref false in
  let fiber_b () =
    let txn = Libtp.begin_txn env in
    ignore (Libtp.lock_restartable env txn (rec_ 9) Lockmgr.Shared);
    set b_locked;
    await b_may_commit;
    Libtp.commit env txn;
    set b_done
  in
  let fiber_c () =
    await c_go;
    let txn = Libtp.begin_txn env in
    (* A holds Page (1,0) IX under its record locks: park here. The wait
       must survive A's escalation replacing those record locks with a
       page lock on this very node. *)
    ignore
      (Libtp.lock_restartable env txn (Lockmgr.Page (1, 0)) Lockmgr.Shared);
    c_granted := true;
    Alcotest.(check bool) "granted only after A committed" true !a_committed;
    Libtp.commit env txn
  in
  let fiber_a () =
    await b_locked;
    let txn = Libtp.begin_txn env in
    let id = Libtp.txn_id txn in
    ignore (Libtp.lock_restartable env txn (rec_ 0) Lockmgr.Exclusive);
    ignore (Libtp.lock_restartable env txn (rec_ 1) Lockmgr.Exclusive);
    ignore (Libtp.lock_restartable env txn (rec_ 2) Lockmgr.Exclusive);
    (* Threshold reached, but B's Page IS makes the page Exclusive
       ungrantable: skipped, record locks intact. *)
    Alcotest.(check int) "escalation skipped under conflict" 1
      (Stats.count stats "lock.escalations_skipped");
    Alcotest.(check int) "no escalation yet" 0
      (Stats.count stats "lock.escalations");
    Alcotest.(check bool) "record locks intact" true
      (Lockmgr.holds lm ~txn:id (rec_ 1) = Some Lockmgr.Exclusive);
    set b_may_commit;
    await b_done;
    (* Start C; it runs up to its page request and parks there. *)
    set c_go;
    Sched.yield sched;
    Alcotest.(check bool) "C parked at the page" true
      ((not !c_granted) && Lockmgr.waiting lm ~txn:(id + 1));
    ignore (Libtp.lock_restartable env txn (rec_ 3) Lockmgr.Exclusive);
    Alcotest.(check int) "escalated once the intent cleared" 1
      (Stats.count stats "lock.escalations");
    Alcotest.(check bool) "page lock covers the records" true
      (Lockmgr.holds lm ~txn:id (Lockmgr.Page (1, 0)) = Some Lockmgr.Exclusive);
    Alcotest.(check bool) "record locks traded in" true
      (List.for_all
         (fun (o, _) -> match o with Lockmgr.Rec _ -> false | _ -> true)
         (Lockmgr.chain lm ~txn:id));
    (* C parked across the swap must still be waiting, now on us. *)
    Alcotest.(check bool) "waiter did not slip through the swap" false
      !c_granted;
    a_committed := true;
    Libtp.commit env txn
  in
  Sched.spawn sched fiber_b;
  Sched.spawn sched fiber_a;
  Sched.spawn sched fiber_c;
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check bool) "C completed" true !c_granted

let () =
  Alcotest.run "tx_locksched"
    [
      ( "interleavings",
        [
          Alcotest.test_case "S->X upgrade race" `Quick test_upgrade_race;
          Alcotest.test_case "escalation vs concurrent acquire" `Quick
            test_escalation_race;
        ] );
    ]
