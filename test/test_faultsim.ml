(* Fault-injection harness tests: the injector itself (tearing,
   read-error retries, determinism), short crash-point sweeps per
   backend that run on every `dune runtest`, and a negative control — a
   deliberately broken recovery path must make the sweep light up.

   Set FAULTSIM_FULL=1 for the exhaustive sweeps (every crash point,
   larger workloads); by default those run a small sampled version. *)

let full = Sys.getenv_opt "FAULTSIM_FULL" <> None

(* Injector ------------------------------------------------------------ *)

let test_tear_multiblock_write () =
  let m = Tutil.machine () in
  let bs = m.Tutil.cfg.Config.disk.block_size in
  let f = Faultsim.arm ~crash_after:5 m.Tutil.disks in
  let first = Tutil.payload 1 (3 * bs) in
  Disk.write_run m.Tutil.disk 100 first;
  let torn = Tutil.payload 2 (4 * bs) in
  (match Disk.write_run m.Tutil.disk 200 torn with
  | () -> Alcotest.fail "expected Injected_crash"
  | exception Disk.Injected_crash -> ());
  Alcotest.(check bool) "crashed" true (Faultsim.crashed f);
  Alcotest.(check int) "writes counted through the tear" 7 (Faultsim.writes f);
  Tutil.check_bytes "pre-crash write intact" (Bytes.sub first 0 bs)
    (Disk.peek m.Tutil.disk 100);
  (* crash_after 5 with 3 blocks already down: exactly 2 of the 4 persist *)
  Tutil.check_bytes "torn block 0" (Bytes.sub torn 0 bs) (Disk.peek m.Tutil.disk 200);
  Tutil.check_bytes "torn block 1" (Bytes.sub torn bs bs)
    (Disk.peek m.Tutil.disk 201);
  Tutil.check_bytes "beyond the tear untouched" (Bytes.make bs '\000')
    (Disk.peek m.Tutil.disk 202);
  Faultsim.disarm f;
  Disk.write_run m.Tutil.disk 300 torn;
  Tutil.check_bytes "disarmed disk writes normally" (Bytes.sub torn (3 * bs) bs)
    (Disk.peek m.Tutil.disk 303)

let test_read_errors_are_transient () =
  let m = Tutil.machine () in
  let bs = m.Tutil.cfg.Config.disk.block_size in
  let data = Tutil.payload 3 bs in
  Disk.write m.Tutil.disk 50 data;
  let rng = Rng.create ~seed:42 in
  let f = Faultsim.arm ~read_error_rate:1.0 ~rng m.Tutil.disks in
  for _ = 1 to 6 do
    Tutil.check_bytes "read survives transient errors" data
      (Disk.read m.Tutil.disk 50)
  done;
  Faultsim.disarm f;
  Alcotest.(check bool) "retries were recorded" true
    (Stats.count m.Tutil.stats "disk.read_retries" > 0)

let test_rate_without_rng_rejected () =
  let m = Tutil.machine () in
  match Faultsim.arm ~read_error_rate:0.5 m.Tutil.disks with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Every run is a pure function of (seed, crash_point): replaying one
   must reproduce the identical outcome, byte counts and all. *)
let test_replay_is_deterministic () =
  let run () = Sweep.run_one Sweep.Lfs_kernel ~seed:9 ~txns:5 ~crash_point:37 () in
  let a = run () and b = run () in
  Alcotest.(check string) "identical outcome" (Sweep.describe a)
    (Sweep.describe b);
  Alcotest.(check int) "identical write counts" a.Sweep.writes b.Sweep.writes;
  Alcotest.(check bool) "both crashed the same way" a.Sweep.crashed
    b.Sweep.crashed

(* Sweeps --------------------------------------------------------------- *)

let assert_clean r =
  (match r.Sweep.failures with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "\n" (List.map Sweep.describe fs)));
  Alcotest.(check bool) "run produced writes to crash into" true
    (r.Sweep.total_writes > 5)

let sweep_pages backend () =
  let points = if full then 0 else 25 in
  let txns = if full then 20 else 6 in
  assert_clean (Sweep.sweep backend ~seed:7 ~txns ~points)

let sweep_tpcb_kernel () =
  if full then begin
    let r = Sweep.sweep_tpcb Sweep.Lfs_kernel ~seed:1 ~txns:40 ~points:0 in
    Alcotest.(check bool)
      (Printf.sprintf "at least 200 crash points (got %d)" r.Sweep.total_writes)
      true
      (r.Sweep.total_writes >= 200);
    assert_clean r
  end
  else assert_clean (Sweep.sweep_tpcb Sweep.Lfs_kernel ~seed:1 ~txns:5 ~points:8)

let sweep_tpcb_ffs () =
  if full then begin
    let r = Sweep.sweep_tpcb Sweep.Ffs_user ~seed:1 ~txns:100 ~points:0 in
    Alcotest.(check bool)
      (Printf.sprintf "at least 200 crash points (got %d)" r.Sweep.total_writes)
      true
      (r.Sweep.total_writes >= 200);
    assert_clean r
  end
  else assert_clean (Sweep.sweep_tpcb Sweep.Ffs_user ~seed:1 ~txns:6 ~points:8)

let sweep_tpcb_lfs_user () =
  assert_clean (Sweep.sweep_tpcb Sweep.Lfs_user ~seed:2 ~txns:5 ~points:8)

(* MPL 2 on the discrete-event scheduler with group commit enabled:
   crash points land mid-rendezvous, with one committer possibly
   flushed-but-parked and another unflushed. The acknowledged-commit
   lower bound must still hold. *)
let sweep_tpcb_mpl2 () =
  if full then
    assert_clean
      (Sweep.sweep_tpcb_mpl Sweep.Lfs_kernel ~seed:3 ~txns:20 ~mpl:2 ~points:0)
  else
    assert_clean
      (Sweep.sweep_tpcb_mpl Sweep.Lfs_kernel ~seed:3 ~txns:6 ~mpl:2 ~points:10)

(* Multi-spindle crash coverage: two striped data disks plus a dedicated
   log spindle, MPL 2. A crash now interrupts I/O that spans spindles —
   segment writes striped across the data disks and WAL flushes on the
   log disk — and recovery must roll forward from a log whose home file
   system itself went through crash/remount/fsck. *)
let sweep_tpcb_multidisk () =
  if full then
    assert_clean
      (Sweep.sweep_tpcb_mpl ~ndisks:2 ~log_disk:true Sweep.Lfs_user ~seed:5
         ~txns:20 ~mpl:2 ~points:0)
  else
    assert_clean
      (Sweep.sweep_tpcb_mpl ~ndisks:2 ~log_disk:true Sweep.Lfs_user ~seed:5
         ~txns:6 ~mpl:2 ~points:10)

(* Record-grain locking on the same 2-disks-plus-log topology: commits
   overlap far more than at page grain (the hot history tail page no
   longer serializes committers), so crash points land inside
   concurrent log forces and partial-segment writes. Aborted history
   appends leave zeroed holes at this grain; the oracle counts only
   non-hole records, which must still lie in [acked, acked + mpl]. *)
let sweep_tpcb_record_grain () =
  if full then
    assert_clean
      (Sweep.sweep_tpcb_mpl ~ndisks:2 ~log_disk:true ~lock_grain:`Record
         Sweep.Lfs_user ~seed:11 ~txns:20 ~mpl:2 ~points:0)
  else
    assert_clean
      (Sweep.sweep_tpcb_mpl ~ndisks:2 ~log_disk:true ~lock_grain:`Record
         Sweep.Lfs_user ~seed:11 ~txns:6 ~mpl:2 ~points:10)

(* Two parallel WAL streams on the 2-disks-plus-log topology: every
   stream lives in its own FFS on its own spindle, all of which crash,
   remount and fsck together; recovery must merge the streams by
   vector-LSN dependency order, with crash points that can strand one
   stream's tail behind a dependency lost on the other. Record grain
   keeps committers — and so the two group-commit rendezvous — genuinely
   concurrent. *)
let sweep_tpcb_multistream () =
  if full then
    assert_clean
      (Sweep.sweep_tpcb_mpl ~ndisks:2 ~log_disk:true ~log_streams:2
         ~lock_grain:`Record Sweep.Lfs_user ~seed:7 ~txns:20 ~mpl:2 ~points:0)
  else
    assert_clean
      (Sweep.sweep_tpcb_mpl ~ndisks:2 ~log_disk:true ~log_streams:2
         ~lock_grain:`Record Sweep.Lfs_user ~seed:7 ~txns:6 ~mpl:2 ~points:10)

(* Crash sweep under genuine cleaning pressure: a 640-block disk (20
   segments at the sweep's 32-block geometry) keeps the kernel cleaner —
   cost-benefit victim selection, hot/cold segregation and the adaptive
   daemon, all on by default — running throughout the workload, so crash
   points land inside segment cleaning and cold-survivor relocation.
   Recovery from a crash mid-relocation must still satisfy the TPC-B
   oracle. *)
let sweep_tpcb_cleaning_pressure () =
  if full then
    assert_clean
      (Sweep.sweep_tpcb_mpl ~nblocks:640 Sweep.Lfs_kernel ~seed:13 ~txns:20
         ~mpl:2 ~points:0)
  else
    assert_clean
      (Sweep.sweep_tpcb_mpl ~nblocks:640 Sweep.Lfs_kernel ~seed:13 ~txns:6
         ~mpl:2 ~points:10)

(* Negative control: disable the roll-forward payload verification and
   the sweep must catch torn partial-segment writes that the hardened
   recovery path would have rejected. A harness that cannot detect a
   known-broken recovery proves nothing. *)
let test_broken_recovery_is_caught () =
  Lfs.test_disable_payload_check := true;
  Fun.protect
    ~finally:(fun () -> Lfs.test_disable_payload_check := false)
    (fun () ->
      let r = Sweep.sweep Sweep.Lfs_kernel ~seed:3 ~txns:4 ~points:0 in
      Alcotest.(check bool) "sweep detects the broken recovery path" true
        (r.Sweep.failures <> []))

let () =
  Alcotest.run "faultsim"
    [
      ( "injector",
        [
          Alcotest.test_case "tears a multi-block write" `Quick
            test_tear_multiblock_write;
          Alcotest.test_case "read errors are transient" `Quick
            test_read_errors_are_transient;
          Alcotest.test_case "rate without rng rejected" `Quick
            test_rate_without_rng_rejected;
          Alcotest.test_case "replay is deterministic" `Quick
            test_replay_is_deterministic;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "pages / lfs-kernel" `Slow
            (sweep_pages Sweep.Lfs_kernel);
          Alcotest.test_case "pages / lfs-user" `Slow (sweep_pages Sweep.Lfs_user);
          Alcotest.test_case "pages / ffs-user" `Slow (sweep_pages Sweep.Ffs_user);
          Alcotest.test_case "tpcb / lfs-kernel" `Slow sweep_tpcb_kernel;
          Alcotest.test_case "tpcb / lfs-user" `Slow sweep_tpcb_lfs_user;
          Alcotest.test_case "tpcb / ffs-user" `Slow sweep_tpcb_ffs;
          Alcotest.test_case "tpcb / lfs-kernel at MPL 2" `Slow sweep_tpcb_mpl2;
          Alcotest.test_case "tpcb / lfs-user 2+log at MPL 2" `Slow
            sweep_tpcb_multidisk;
          Alcotest.test_case "tpcb / lfs-user 2+log at MPL 2, record grain"
            `Slow sweep_tpcb_record_grain;
          Alcotest.test_case "tpcb / lfs-user 2+log at MPL 2, 2 streams"
            `Slow sweep_tpcb_multistream;
          Alcotest.test_case "tpcb / lfs-kernel under cleaning pressure"
            `Slow sweep_tpcb_cleaning_pressure;
          Alcotest.test_case "broken recovery is caught" `Slow
            test_broken_recovery_is_caught;
        ] );
    ]
