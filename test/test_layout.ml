(* Tests for the LFS on-disk codecs: superblock, segment summaries, and
   checkpoint regions, including corruption detection. *)

let bs = 4096

let test_superblock_roundtrip () =
  let sb =
    {
      Layout.block_size = bs;
      nblocks = 76800;
      segment_blocks = 128;
      nsegments = 600;
      max_inodes = 32768;
    }
  in
  let b = Bytes.make bs '\000' in
  Layout.write_superblock b sb;
  let d = Layout.read_superblock b in
  Alcotest.(check int) "block_size" sb.Layout.block_size d.Layout.block_size;
  Alcotest.(check int) "nblocks" sb.Layout.nblocks d.Layout.nblocks;
  Alcotest.(check int) "segment_blocks" sb.Layout.segment_blocks d.Layout.segment_blocks;
  Alcotest.(check int) "nsegments" sb.Layout.nsegments d.Layout.nsegments;
  Alcotest.(check int) "max_inodes" sb.Layout.max_inodes d.Layout.max_inodes

let test_superblock_corruption () =
  let sb =
    { Layout.block_size = bs; nblocks = 100; segment_blocks = 16; nsegments = 6; max_inodes = 64 }
  in
  let b = Bytes.make bs '\000' in
  Layout.write_superblock b sb;
  Bytes.set b 12 'X';
  Alcotest.(check bool) "corrupt superblock rejected" true
    (match Layout.read_superblock b with
    | exception Vfs.Error (Vfs.Invalid, _) -> true
    | _ -> false)

let sample_entries =
  [
    Layout.Data { inum = 3; lblock = 0 };
    Layout.Data { inum = 3; lblock = 999 };
    Layout.Indirect { inum = 3; index = 2 };
    Layout.Double_indirect { inum = 3 };
    Layout.Inode_block { inums = [ 3; 9; 27 ] };
    Layout.Imap_block { index = 5 };
    Layout.Usage_block { index = 1 };
  ]

let test_summary_roundtrip () =
  let s =
    {
      Layout.seq = 123456789L;
      timestamp = 3.25;
      next_seg = 42;
      more = true;
      cold = false;
      payload_ck = 0x1234_5678;
      entries = sample_entries;
    }
  in
  let b = Bytes.make bs '\000' in
  Layout.write_summary b s;
  match Layout.read_summary b with
  | None -> Alcotest.fail "valid summary rejected"
  | Some d ->
    Alcotest.(check int64) "seq" s.Layout.seq d.Layout.seq;
    Alcotest.(check (float 0.0)) "timestamp" s.Layout.timestamp d.Layout.timestamp;
    Alcotest.(check int) "next_seg" s.Layout.next_seg d.Layout.next_seg;
    Alcotest.(check bool) "more" true d.Layout.more;
    Alcotest.(check int) "payload_ck" s.Layout.payload_ck d.Layout.payload_ck;
    Alcotest.(check bool) "entries" true (d.Layout.entries = sample_entries)

let test_summary_rejects_garbage () =
  Alcotest.(check bool) "zeros" true (Layout.read_summary (Bytes.make bs '\000') = None);
  let s =
    {
      Layout.seq = 1L;
      timestamp = 0.0;
      next_seg = 0;
      more = false;
      cold = false;
      payload_ck = 0;
      entries = sample_entries;
    }
  in
  let b = Bytes.make bs '\000' in
  Layout.write_summary b s;
  Bytes.set b 100 '\255';
  Alcotest.(check bool) "bit flip detected" true (Layout.read_summary b = None)

let prop_summary_roundtrip =
  let entry_gen =
    QCheck2.Gen.(
      oneof
        [
          map2 (fun i l -> Layout.Data { inum = i; lblock = l }) (int_bound 30000) (int_bound 100000);
          map2 (fun i x -> Layout.Indirect { inum = i; index = x }) (int_bound 30000) (int_bound 50);
          map (fun i -> Layout.Double_indirect { inum = i }) (int_bound 30000);
          map (fun l -> Layout.Inode_block { inums = l }) (list_size (int_range 1 16) (int_bound 30000));
          map (fun i -> Layout.Imap_block { index = i }) (int_bound 63);
          map (fun i -> Layout.Usage_block { index = i }) (int_bound 3);
        ])
  in
  Tutil.qtest "summary round-trip"
    QCheck2.Gen.(
      tup3 (list_size (int_range 0 80) entry_gen) (int_bound 500)
        (map Int64.of_int (int_bound 1_000_000)))
    (fun (entries, next_seg, seq) ->
      let s =
        { Layout.seq; timestamp = 1.5; next_seg; more = false; cold = false; payload_ck = 7; entries }
      in
      let b = Bytes.make bs '\000' in
      Layout.write_summary b s;
      match Layout.read_summary b with
      | Some d -> d.Layout.entries = entries && d.Layout.seq = seq
      | None -> false)

let test_checkpoint_roundtrip () =
  let cp =
    {
      Layout.cp_seq = 77L;
      cp_timestamp = 12.0;
      cur_seg = 5;
      cur_off = 17;
      cp_next_seg = 6;
      next_inum = 444;
      write_seq = 999L;
      imap_addrs = Array.init 64 (fun i -> 100 + i);
      usage_addrs = [| 7; 8 |];
    }
  in
  let b = Bytes.make bs '\000' in
  Layout.write_checkpoint b cp;
  match Layout.read_checkpoint b with
  | None -> Alcotest.fail "valid checkpoint rejected"
  | Some d ->
    Alcotest.(check int64) "cp_seq" cp.Layout.cp_seq d.Layout.cp_seq;
    Alcotest.(check int) "cur_seg" cp.Layout.cur_seg d.Layout.cur_seg;
    Alcotest.(check int) "cur_off" cp.Layout.cur_off d.Layout.cur_off;
    Alcotest.(check int) "next_inum" cp.Layout.next_inum d.Layout.next_inum;
    Alcotest.(check int64) "write_seq" cp.Layout.write_seq d.Layout.write_seq;
    Alcotest.(check bool) "imap addrs" true (d.Layout.imap_addrs = cp.Layout.imap_addrs);
    Alcotest.(check bool) "usage addrs" true (d.Layout.usage_addrs = cp.Layout.usage_addrs)

let test_checkpoint_corruption () =
  let cp =
    {
      Layout.cp_seq = 1L;
      cp_timestamp = 0.0;
      cur_seg = 0;
      cur_off = 0;
      cp_next_seg = 1;
      next_inum = 2;
      write_seq = 1L;
      imap_addrs = [||];
      usage_addrs = [||];
    }
  in
  let b = Bytes.make bs '\000' in
  Layout.write_checkpoint b cp;
  Bytes.set b 30 '\042';
  Alcotest.(check bool) "bit flip detected" true (Layout.read_checkpoint b = None)

let test_checksum_sensitivity () =
  (* The positional weighting must catch transpositions, which a plain
     byte sum would miss. *)
  let a = Bytes.of_string "abcdef" in
  let b = Bytes.of_string "abcdfe" in
  Alcotest.(check bool) "transposition detected" true
    (Layout.checksum a <> Layout.checksum b)

let test_segment_geometry () =
  let sb =
    { Layout.block_size = bs; nblocks = 1000; segment_blocks = 64; nsegments = 15; max_inodes = 64 }
  in
  Alcotest.(check int) "nsegments_of"
    ((1000 - Layout.data_start) / 64)
    (Layout.nsegments_of ~block_size:bs ~nblocks:1000 ~segment_blocks:64);
  Alcotest.(check int) "segment 0 base" Layout.data_start (Layout.segment_base sb 0);
  Alcotest.(check int) "segment 3 base" (Layout.data_start + 192) (Layout.segment_base sb 3)

let () =
  Alcotest.run "layout"
    [
      ( "superblock",
        [
          Alcotest.test_case "roundtrip" `Quick test_superblock_roundtrip;
          Alcotest.test_case "corruption" `Quick test_superblock_corruption;
          Alcotest.test_case "geometry" `Quick test_segment_geometry;
        ] );
      ( "summary",
        [
          Alcotest.test_case "roundtrip" `Quick test_summary_roundtrip;
          Alcotest.test_case "garbage" `Quick test_summary_rejects_garbage;
          prop_summary_roundtrip;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "corruption" `Quick test_checkpoint_corruption;
          Alcotest.test_case "checksum" `Quick test_checksum_sensitivity;
        ] );
    ]
