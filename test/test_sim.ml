(* Unit and property tests for the simulation core: clock, stats, cost
   model, RNG and binary encoding. *)

let test_clock_basics () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  Alcotest.(check (float 1e-9)) "accumulates" 1.75 (Clock.now c);
  Clock.sleep_until c 1.0;
  Alcotest.(check (float 1e-9)) "sleep into the past is a no-op" 1.75
    (Clock.now c);
  Clock.sleep_until c 3.0;
  Alcotest.(check (float 1e-9)) "sleep into the future" 3.0 (Clock.now c)

let test_clock_rejects_bad_delta () =
  let c = Clock.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: bad delta -1")
    (fun () -> Clock.advance c (-1.0));
  (match Clock.advance c Float.nan with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "nan delta accepted")

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.add s "a" 4;
  Stats.add_time s "t" 0.5;
  Stats.add_time s "t" 0.25;
  Alcotest.(check int) "count" 5 (Stats.count s "a");
  Alcotest.(check (float 1e-9)) "time" 0.75 (Stats.time s "t");
  Alcotest.(check int) "missing count is 0" 0 (Stats.count s "nope");
  Stats.record_max s "m" 2.0;
  Stats.record_max s "m" 1.0;
  Alcotest.(check (float 1e-9)) "max keeps larger" 2.0 (Stats.max_of s "m");
  (* Maxima live in their own table: a cumulative time under the same key
     must not be polluted by (or pollute) the recorded maximum. *)
  Stats.add_time s "m" 0.125;
  Alcotest.(check (float 1e-9)) "max unaffected by add_time" 2.0
    (Stats.max_of s "m");
  Alcotest.(check (float 1e-9)) "time unaffected by record_max" 0.125
    (Stats.time s "m");
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.count s "a")

(* Histograms --------------------------------------------------------------- *)

let test_histo_basics () =
  let h = Histo.create () in
  Alcotest.(check int) "empty count" 0 (Histo.count h);
  Histo.add h 0.037;
  Alcotest.(check int) "count" 1 (Histo.count h);
  Alcotest.(check (float 1e-12)) "min" 0.037 (Histo.min_value h);
  Alcotest.(check (float 1e-12)) "max" 0.037 (Histo.max_value h);
  Alcotest.(check (float 1e-12)) "mean" 0.037 (Histo.mean h);
  (* Any percentile of a single sample is that sample (clamped to the
     exact tracked min/max, not the bucket bound). *)
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%.0f" p)
        0.037 (Histo.percentile h p))
    [ 0.0; 0.50; 0.95; 0.99; 1.0 ]

let test_histo_percentiles () =
  let h = Histo.create () in
  for _ = 1 to 90 do Histo.add h 0.001 done;
  for _ = 1 to 10 do Histo.add h 1.0 done;
  Alcotest.(check int) "count" 100 (Histo.count h);
  Alcotest.(check bool) "p50 in the low mode" true (Histo.percentile h 0.50 < 0.002);
  Alcotest.(check (float 1e-12)) "p99 is the high mode" 1.0 (Histo.percentile h 0.99);
  Alcotest.(check (float 1e-12)) "p100 = max" 1.0 (Histo.percentile h 1.0);
  (* Percentiles are monotone in p. *)
  let ps = [ 0.01; 0.25; 0.50; 0.75; 0.90; 0.95; 0.99; 1.0 ] in
  let vs = List.map (Histo.percentile h) ps in
  ignore
    (List.fold_left
       (fun prev v ->
         Alcotest.(check bool) "monotone" true (v >= prev);
         v)
       0.0 vs);
  (* Bucket counts account for every sample. *)
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Histo.buckets h) in
  Alcotest.(check int) "buckets sum to count" 100 total

let test_histo_outliers_and_merge () =
  let h = Histo.create () in
  Histo.add h (-1.0);
  (* invalid: dropped from the distribution, counted separately *)
  Histo.add h 1e9;
  (* overflow bucket *)
  Alcotest.(check int) "only the valid sample counted" 1 (Histo.count h);
  Alcotest.(check int) "negative counted as invalid" 1 (Histo.invalid h);
  Alcotest.(check (float 0.0)) "min is the valid sample" 1e9 (Histo.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 1e9 (Histo.max_value h);
  let dst = Histo.create () in
  Histo.add dst 0.5;
  Histo.merge_into ~src:h ~dst;
  Alcotest.(check int) "merged count" 2 (Histo.count dst);
  Alcotest.(check int) "merged invalid" 1 (Histo.invalid dst);
  Alcotest.(check (float 0.0)) "merged max" 1e9 (Histo.max_value dst)

(* Regression: a stream polluted with NaN and negative samples used to be
   coerced to 0.0, inflating the first bucket and dragging every
   percentile toward zero. Now the distribution reflects only the valid
   samples and the pollution is tallied in [invalid] (and, through
   [Stats.observe], in the "histo.invalid" counter). *)
let test_histo_nan_stream () =
  let h = Histo.create () in
  for _ = 1 to 50 do
    Histo.add h Float.nan;
    Histo.add h (-0.5);
    Histo.add h Float.neg_infinity;
    Histo.add h 1.0
  done;
  Alcotest.(check int) "valid samples" 50 (Histo.count h);
  Alcotest.(check int) "invalid samples" 150 (Histo.invalid h);
  Alcotest.(check (float 1e-12)) "p50 undisturbed" 1.0 (Histo.percentile h 0.50);
  Alcotest.(check (float 1e-12)) "min undisturbed" 1.0 (Histo.min_value h);
  Alcotest.(check (float 1e-12)) "mean undisturbed" 1.0 (Histo.mean h);
  (* Every bucketed sample is a valid one. *)
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Histo.buckets h) in
  Alcotest.(check int) "buckets hold only valid samples" 50 total;
  (* The stats layer surfaces the same tally as a counter. *)
  let stats = Stats.create () in
  Stats.observe stats "lat" Float.nan;
  Stats.observe stats "lat" 0.25;
  Alcotest.(check int) "histo.invalid counter" 1 (Stats.count stats "histo.invalid");
  match Stats.histo stats "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "stats histo count" 1 (Histo.count h);
    Alcotest.(check int) "stats histo invalid" 1 (Histo.invalid h)

let prop_histo_percentile_bounded =
  Tutil.qtest "percentiles stay within [min, max]"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 100.0))
    (fun xs ->
      let h = Histo.create () in
      List.iter (Histo.add h) xs;
      List.for_all
        (fun p ->
          let v = Histo.percentile h p in
          v >= Histo.min_value h && v <= Histo.max_value h)
        [ 0.0; 0.10; 0.50; 0.90; 0.99; 1.0 ])

(* Discrete-event scheduler ------------------------------------------------- *)

let test_sched_ordering () =
  let clock = Clock.create () in
  let sched = Sched.create clock in
  let log = ref [] in
  let emit tag = log := (tag, Clock.now clock) :: !log in
  Sched.spawn sched (fun () ->
      emit "a0";
      Sched.delay sched 2.0;
      emit "a2");
  Sched.spawn sched (fun () ->
      emit "b0";
      Sched.delay sched 1.0;
      emit "b1");
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check (list (pair string (float 1e-9))))
    "time order; spawn order at t=0"
    [ ("a0", 0.0); ("b0", 0.0); ("b1", 1.0); ("a2", 2.0) ]
    (List.rev !log)

let test_sched_deterministic_ties () =
  (* Same-time events run in scheduling order, so a whole run replays
     identically. *)
  let one_run () =
    let clock = Clock.create () in
    let sched = Sched.create clock in
    let log = ref [] in
    for i = 1 to 5 do
      Sched.spawn sched (fun () ->
          Sched.delay sched 1.0;
          (* all five land at t=1.0 *)
          log := i :: !log;
          Sched.yield sched;
          log := (10 * i) :: !log)
    done;
    Sched.run sched;
    Sched.detach sched;
    List.rev !log
  in
  let a = one_run () in
  Alcotest.(check (list int))
    "ties break by schedule order" [ 1; 2; 3; 4; 5; 10; 20; 30; 40; 50 ] a;
  Alcotest.(check (list int)) "replay is identical" a (one_run ())

let test_sched_condition_fifo () =
  let clock = Clock.create () in
  let sched = Sched.create clock in
  let cond = Sched.condition () in
  let order = ref [] in
  for i = 1 to 3 do
    Sched.spawn sched (fun () ->
        Sched.wait sched cond;
        order := i :: !order)
  done;
  Sched.spawn sched (fun () ->
      Sched.delay sched 1.0;
      Sched.signal sched cond;
      (* remaining two wake together *)
      Sched.broadcast sched cond);
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check (list int)) "FIFO wake order" [ 1; 2; 3 ] (List.rev !order)

let test_sched_stalled_and_daemons () =
  let clock = Clock.create () in
  let sched = Sched.create clock in
  let cond = Sched.condition () in
  Sched.spawn sched (fun () -> Sched.wait sched cond);
  Alcotest.check_raises "waiter with no signaller" (Sched.Stalled 1) (fun () ->
      Sched.run sched);
  Sched.detach sched;
  (* A daemon alone does not keep the scheduler alive. *)
  let clock = Clock.create () in
  let sched = Sched.create clock in
  let ticks = ref 0 in
  Sched.spawn ~daemon:true sched (fun () ->
      while true do
        Sched.delay sched 1.0;
        incr ticks
      done);
  Sched.spawn sched (fun () -> Sched.delay sched 2.5);
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check int) "daemon ran while foreground lived" 2 !ticks

(* Regression: under a scheduler, [Clock.sleep_until] must yield even
   when the deadline is already past — otherwise a same-time waiter
   (e.g. a group-commit timeout process) can be starved by a
   zero-length sleep. Without a scheduler it stays a no-op jump. *)
let test_sched_sleep_until_past_still_yields () =
  let clock = Clock.create () in
  let sched = Sched.create clock in
  let log = ref [] in
  Sched.spawn sched (fun () ->
      Clock.advance clock 5.0;
      Clock.sleep_until clock 1.0;
      (* already past *)
      log := "sleeper" :: !log);
  Sched.spawn sched (fun () -> log := "other" :: !log);
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check (float 1e-9)) "time kept" 5.0 (Clock.now clock);
  Alcotest.(check (list string))
    "the other process ran before the sleeper resumed" [ "other"; "sleeper" ]
    (List.rev !log)

let test_sched_registry () =
  let c1 = Clock.create () and c2 = Clock.create () in
  let s1 = Sched.create c1 in
  Alcotest.(check bool) "found" true
    (match Sched.of_clock c1 with Some s -> s == s1 | None -> false);
  Alcotest.(check bool) "other clock unclaimed" true (Sched.of_clock c2 = None);
  Alcotest.(check bool) "outside any process" false (Sched.in_process s1);
  Sched.detach s1;
  Alcotest.(check bool) "detached" true (Sched.of_clock c1 = None)

(* JSON --------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.Str "x\"y\\z\n");
        ("n", Json.Int (-42));
        ("f", Json.Float 3.25);
        ("tiny", Json.Float 1.25e-7);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Str "two"; Json.Float 0.5 ]);
        ("empty", Json.Obj []);
      ]
  in
  (match Json.of_string_opt (Json.to_string v) with
  | Some v' -> Alcotest.(check bool) "compact round-trip" true (v = v')
  | None -> Alcotest.fail "reparse failed");
  match Json.of_string_opt (Json.to_string_pretty v) with
  | Some v' -> Alcotest.(check bool) "pretty round-trip" true (v = v')
  | None -> Alcotest.fail "pretty reparse failed"

let test_json_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        true
        (Json.of_string_opt s = None))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{} trailing" ]

let test_json_member () =
  let v = Json.Obj [ ("a", Json.Int 1); ("b", Json.Obj [ ("c", Json.Str "x") ]) ] in
  Alcotest.(check bool) "member" true (Json.member "a" v = Some (Json.Int 1));
  Alcotest.(check bool) "missing" true (Json.member "z" v = None);
  Alcotest.(check bool) "nested" true
    (match Json.member "b" v with
    | Some b -> Json.member "c" b = Some (Json.Str "x")
    | None -> false)

(* Event trace -------------------------------------------------------------- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.emit tr ~t:(float_of_int i) "ev" [ ("i", Trace.I i) ]
  done;
  Alcotest.(check int) "bounded" 4 (Trace.length tr);
  Alcotest.(check int) "dropped" 2 (Trace.dropped tr);
  (* Oldest two fell off; the survivors are in order. *)
  let ts = List.map (fun e -> e.Trace.t) (Trace.to_list tr) in
  Alcotest.(check (list (float 0.0))) "oldest first" [ 3.0; 4.0; 5.0; 6.0 ] ts;
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let test_trace_jsonl_roundtrip () =
  let e =
    {
      Trace.t = 1.5;
      name = "disk.op";
      attrs =
        [
          ("rw", Trace.S "w");
          ("blkno", Trace.I 17);
          ("queued", Trace.B false);
          ("service_s", Trace.F 0.012);
        ];
    }
  in
  let line = Trace.to_json_line e in
  Alcotest.(check bool) "single line" true (not (String.contains line '\n'));
  (match Trace.of_json_line line with
  | Some e' ->
    Alcotest.(check (float 0.0)) "t" e.Trace.t e'.Trace.t;
    Alcotest.(check string) "name" e.Trace.name e'.Trace.name;
    Alcotest.(check bool) "attrs" true (e.Trace.attrs = e'.Trace.attrs)
  | None -> Alcotest.fail "reparse failed");
  Alcotest.(check bool) "garbage rejected" true (Trace.of_json_line "{oops" = None)

let test_stats_to_json () =
  let s = Stats.create () in
  Stats.incr s "ops";
  Stats.add_time s "busy" 0.5;
  Stats.record_max s "peak" 2.0;
  Stats.observe s "lat" 0.01;
  let j = Stats.to_json s in
  let field k = match Json.member k j with Some v -> v | None -> Json.Null in
  Alcotest.(check bool) "counters" true
    (Json.member "ops" (field "counters") = Some (Json.Int 1));
  Alcotest.(check bool) "times" true
    (Json.member "busy" (field "times_s") = Some (Json.Float 0.5));
  Alcotest.(check bool) "maxes" true
    (Json.member "peak" (field "maxes_s") = Some (Json.Float 2.0));
  match Json.member "lat" (field "histograms") with
  | Some h ->
    Alcotest.(check bool) "histogram count" true
      (Json.member "count" h = Some (Json.Int 1));
    List.iter
      (fun k ->
        Alcotest.(check bool) (k ^ " present") true (Json.member k h <> None))
      [ "p50"; "p95"; "p99"; "max"; "buckets" ]
  | None -> Alcotest.fail "histogram missing from json"

let test_cpu_charges () =
  let cfg = Config.default.Config.cpu in
  let clock = Clock.create () in
  let stats = Stats.create () in
  Cpu.charge clock stats cfg Cpu.Syscall;
  Alcotest.(check (float 1e-12)) "syscall advances clock" cfg.Config.syscall_s
    (Clock.now clock);
  Alcotest.(check int) "recorded" 1 (Stats.count stats "cpu.syscall.n")

let test_user_mutex_cost () =
  let cpu = Config.default.Config.cpu in
  let without = Cpu.cost cpu Cpu.User_mutex in
  let with_tas = Cpu.cost { cpu with Config.has_test_and_set = true } Cpu.User_mutex in
  Alcotest.(check (float 1e-12)) "no TAS: two syscalls"
    (2.0 *. cpu.Config.syscall_s) without;
  Alcotest.(check bool) "TAS much cheaper" true (with_tas < without /. 10.0)

let test_config_scaled () =
  let c = Config.scaled ~factor:0.5 Config.default in
  Alcotest.(check int) "disk halved" (Config.default.Config.disk.nblocks / 2)
    c.Config.disk.nblocks;
  Alcotest.(check int) "cache halved" (Config.default.Config.fs.cache_blocks / 2)
    c.Config.fs.cache_blocks;
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Config.scaled: factor must be in (0, 1]") (fun () ->
      ignore (Config.scaled ~factor:0.0 Config.default))

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create ~seed:43 in
  let zs = List.init 100 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_shuffle_is_permutation () =
  let r = Rng.create ~seed:7 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_enc_fixed_width () =
  let b = Bytes.make 64 '\000' in
  Enc.set_u8 b 0 0xab;
  Enc.set_u16 b 1 0xbeef;
  Enc.set_u32 b 3 0xdeadbeef;
  Enc.set_i64 b 7 (-123456789L);
  Enc.set_f64 b 15 3.14159;
  Alcotest.(check int) "u8" 0xab (Enc.get_u8 b 0);
  Alcotest.(check int) "u16" 0xbeef (Enc.get_u16 b 1);
  Alcotest.(check int) "u32" 0xdeadbeef (Enc.get_u32 b 3);
  Alcotest.(check int64) "i64" (-123456789L) (Enc.get_i64 b 7);
  Alcotest.(check (float 0.0)) "f64" 3.14159 (Enc.get_f64 b 15)

let test_enc_u32_range () =
  let b = Bytes.make 8 '\000' in
  Alcotest.(check bool) "max u32 fits" true
    (Enc.set_u32 b 0 0xffffffff;
     Enc.get_u32 b 0 = 0xffffffff);
  (match Enc.set_u32 b 0 (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative accepted")

let prop_lstring_roundtrip =
  Tutil.qtest "lstring round-trip" QCheck2.Gen.(string_size (int_bound 300))
    (fun s ->
      let b = Bytes.make (Enc.lstring_size s + 8) '\000' in
      let stop = Enc.set_lstring b 4 s in
      let s', stop' = Enc.get_lstring b 4 in
      s = s' && stop = stop')

let prop_u32_roundtrip =
  Tutil.qtest "u32 round-trip" QCheck2.Gen.(int_bound 0xffffffff) (fun v ->
      let b = Bytes.make 4 '\000' in
      Enc.set_u32 b 0 v;
      Enc.get_u32 b 0 = v)

let () =
  Alcotest.run "tx_sim"
    [
      ( "clock",
        [
          Alcotest.test_case "basics" `Quick test_clock_basics;
          Alcotest.test_case "bad delta" `Quick test_clock_rejects_bad_delta;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick test_stats;
                  Alcotest.test_case "to_json" `Quick test_stats_to_json ]);
      ( "histo",
        [
          Alcotest.test_case "basics" `Quick test_histo_basics;
          Alcotest.test_case "percentiles" `Quick test_histo_percentiles;
          Alcotest.test_case "outliers/merge" `Quick test_histo_outliers_and_merge;
          Alcotest.test_case "nan stream dropped" `Quick test_histo_nan_stream;
          prop_histo_percentile_bounded;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring" `Quick test_trace_ring;
          Alcotest.test_case "jsonl roundtrip" `Quick test_trace_jsonl_roundtrip;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "charges" `Quick test_cpu_charges;
          Alcotest.test_case "user mutex" `Quick test_user_mutex_cost;
        ] );
      ("config", [ Alcotest.test_case "scaled" `Quick test_config_scaled ]);
      ( "sched",
        [
          Alcotest.test_case "ordering" `Quick test_sched_ordering;
          Alcotest.test_case "deterministic ties" `Quick
            test_sched_deterministic_ties;
          Alcotest.test_case "condition fifo" `Quick test_sched_condition_fifo;
          Alcotest.test_case "stalled / daemons" `Quick
            test_sched_stalled_and_daemons;
          Alcotest.test_case "sleep into the past yields" `Quick
            test_sched_sleep_until_past_still_yields;
          Alcotest.test_case "registry" `Quick test_sched_registry;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_is_permutation;
        ] );
      ( "enc",
        [
          Alcotest.test_case "fixed width" `Quick test_enc_fixed_width;
          Alcotest.test_case "u32 range" `Quick test_enc_u32_range;
          prop_lstring_roundtrip;
          prop_u32_roundtrip;
        ] );
    ]
