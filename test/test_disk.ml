(* Tests for the disk service-time model and the request scheduler. *)

let mk () =
  let m = Tutil.machine () in
  (m.Tutil.clock, m.Tutil.disk)

let test_rw_roundtrip () =
  let _, d = mk () in
  let b = Tutil.payload 1 (Disk.block_size d) in
  Disk.write d 17 b;
  Tutil.check_bytes "read back" b (Disk.read d 17)

let test_run_roundtrip () =
  let _, d = mk () in
  let bs = Disk.block_size d in
  let data = Tutil.payload 2 (5 * bs) in
  Disk.write_run d 100 data;
  Tutil.check_bytes "run read back" data (Disk.read_run d 100 5);
  Tutil.check_bytes "single block within run"
    (Bytes.sub data (2 * bs) bs)
    (Disk.read d 102)

let test_time_charged () =
  let c, d = mk () in
  let b = Bytes.make (Disk.block_size d) 'x' in
  let t0 = Clock.now c in
  Disk.write d 0 b;
  Alcotest.(check bool) "I/O takes time" true (Clock.now c > t0)

let test_sequential_cheaper_than_random () =
  let cfg = Tutil.small_config () in
  let seq =
    let m = Tutil.machine ~cfg () in
    let bs = cfg.Config.disk.block_size in
    Disk.write_run m.Tutil.disk 0 (Bytes.make (64 * bs) 'a');
    Clock.now m.Tutil.clock
  in
  let rand =
    let m = Tutil.machine ~cfg () in
    let bs = cfg.Config.disk.block_size in
    let b = Bytes.make bs 'a' in
    for i = 0 to 63 do
      Disk.write m.Tutil.disk (((i * 37) mod 64) * 64) b
    done;
    Clock.now m.Tutil.clock
  in
  Alcotest.(check bool)
    (Printf.sprintf "sequential (%.4fs) beats random (%.4fs) by 5x" seq rand)
    true
    (seq *. 5.0 < rand)

let test_zero_seek_continuation () =
  let _, d = mk () in
  let bs = Disk.block_size d in
  Disk.write d 10 (Bytes.make bs 'x');
  (* Head now at block 11; continuing there needs no seek or rotation. *)
  let t = Disk.service_time d 11 ~nblocks:1 in
  let expect = float_of_int bs /. Config.default.Config.disk.transfer_bytes_per_s in
  Alcotest.(check (float 1e-9)) "pure transfer" expect t

let test_service_time_monotone_in_distance () =
  let _, d = mk () in
  let near = Disk.service_time d 64 ~nblocks:1 in
  let far = Disk.service_time d 4000 ~nblocks:1 in
  Alcotest.(check bool) "longer seeks cost more" true (far > near)

let test_out_of_range () =
  let _, d = mk () in
  Alcotest.(check bool) "read out of range rejected" true
    (match Disk.read d (Disk.nblocks d) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative rejected" true
    (match Disk.read d (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_peek_poke_free () =
  let c, d = mk () in
  let b = Tutil.payload 3 (Disk.block_size d) in
  let t0 = Clock.now c in
  Disk.poke d 5 b;
  Tutil.check_bytes "poke/peek" b (Disk.peek d 5);
  Alcotest.(check (float 0.0)) "no time charged" t0 (Clock.now c)

let test_elevator_order () =
  let reqs = [ (50, "a"); (10, "b"); (90, "c"); (30, "d") ] in
  let ordered = Elevator.order Elevator.Elevator ~head:40 reqs in
  Alcotest.(check (list int)) "ascending from head, then wrap"
    [ 50; 90; 10; 30 ]
    (List.map fst ordered);
  let fcfs = Elevator.order Elevator.Fcfs ~head:40 reqs in
  Alcotest.(check (list int)) "fcfs keeps arrival order" [ 50; 10; 90; 30 ]
    (List.map fst fcfs)

let prop_elevator_is_permutation =
  Tutil.qtest "elevator preserves requests"
    QCheck2.Gen.(pair (int_bound 1000) (list (int_bound 1000)))
    (fun (head, blocks) ->
      let reqs = List.map (fun b -> (b, ())) blocks in
      let out = Elevator.order Elevator.Elevator ~head reqs in
      List.sort compare (List.map fst out) = List.sort compare blocks)

(* Queued reads under the scheduler: concurrent processes enqueue
   requests, the server daemon serves them in elevator order, and each
   process gets the bytes that were on the platter at submission. *)
let test_read_async_queue () =
  let c, d = mk () in
  let bs = Disk.block_size d in
  let blocks = [ 900; 50; 700; 200 ] in
  List.iter (fun b -> Disk.write d b (Tutil.payload b bs)) blocks;
  let sched = Sched.create c in
  let done_order = ref [] in
  List.iter
    (fun b ->
      Sched.spawn sched (fun () ->
          let data = Disk.read_async d b in
          Tutil.check_bytes "content" (Tutil.payload b bs) data;
          done_order := b :: !done_order))
    blocks;
  Sched.run sched;
  Sched.detach sched;
  let served = List.rev !done_order in
  Alcotest.(check int) "all served" 4 (List.length served);
  (* All four were queued before the server daemon first ran, so the
     elevator reordered them: service order differs from submission
     order yet is a single C-LOOK sweep (at most one descent). *)
  Alcotest.(check bool) "reordered" true (served <> blocks);
  let rec descents prev = function
    | [] -> 0
    | x :: rest -> (if x < prev then 1 else 0) + descents x rest
  in
  (match served with
  | x :: rest ->
    Alcotest.(check bool) "single sweep" true (descents x rest <= 1)
  | [] -> Alcotest.fail "nothing served")

let prop_elevator_clook_from_head =
  Tutil.qtest "elevator is C-LOOK-monotone from the head"
    QCheck2.Gen.(pair (int_bound 1000) (list (int_bound 1000)))
    (fun (head, blocks) ->
      (* Exactly: ascending blocks at or past the head, then one wrap to
         the ascending blocks below it. *)
      let ge, lt = List.partition (fun b -> b >= head) blocks in
      let reqs = List.map (fun b -> (b, ())) blocks in
      let out = List.map fst (Elevator.order Elevator.Elevator ~head reqs) in
      out = List.sort compare ge @ List.sort compare lt)

let prop_elevator_single_sweep =
  Tutil.qtest "elevator does at most one wrap"
    QCheck2.Gen.(pair (int_bound 1000) (list (int_bound 1000)))
    (fun (head, blocks) ->
      let reqs = List.map (fun b -> (b, ())) blocks in
      let out = List.map fst (Elevator.order Elevator.Elevator ~head reqs) in
      (* Direction changes downward at most once. *)
      let rec descents prev = function
        | [] -> 0
        | x :: rest -> (if x < prev then 1 else 0) + descents x rest
      in
      match out with [] -> true | x :: rest -> descents x rest <= 1)

(* Regression: a queued request pays a discounted (0.3x) seek. The seeks
   counter must test the *charged* value, and the discounted samples go
   to their own "disk.seek.queued" histogram instead of polluting the
   cold-seek distribution. *)
let test_queued_seek_accounting () =
  let histo m key =
    match Stats.histo m.Tutil.stats key with
    | Some h -> h
    | None -> Alcotest.failf "missing histogram %s" key
  in
  let unqueued =
    let m = Tutil.machine () in
    Disk.write m.Tutil.disk 4000 (Bytes.make (Disk.block_size m.Tutil.disk) 'x');
    m
  in
  let queued =
    let m = Tutil.machine () in
    Disk.write_queued m.Tutil.disk 4000
      (Bytes.make (Disk.block_size m.Tutil.disk) 'x');
    m
  in
  Alcotest.(check int) "unqueued sample in disk.seek" 1
    (Histo.count (histo unqueued "disk.seek"));
  Alcotest.(check int) "unqueued leaves disk.seek.queued empty" 0
    (Histo.count (histo unqueued "disk.seek.queued"));
  Alcotest.(check int) "unqueued seek counted" 1
    (Stats.count unqueued.Tutil.stats "disk.seeks");
  Alcotest.(check int) "queued sample in disk.seek.queued" 1
    (Histo.count (histo queued "disk.seek.queued"));
  Alcotest.(check int) "queued leaves disk.seek empty" 0
    (Histo.count (histo queued "disk.seek"));
  Alcotest.(check int) "queued seek counted" 1
    (Stats.count queued.Tutil.stats "disk.seeks");
  Alcotest.(check (float 1e-12)) "queued seek charged at 0.3x"
    (0.3 *. Histo.sum (histo unqueued "disk.seek"))
    (Histo.sum (histo queued "disk.seek.queued"));
  (* Zero-distance queued request: rotation is charged but no seek, so
     the counter must not tick. *)
  let m = Tutil.machine () in
  Disk.write_queued m.Tutil.disk 0
    (Bytes.make (Disk.block_size m.Tutil.disk) 'x');
  Alcotest.(check int) "zero-seek queued request not counted" 0
    (Stats.count m.Tutil.stats "disk.seeks")

(* Diskset: multi-spindle mapping behind the Disk API. *)

let stripe_cfg ?(ndisks = 2) ?(log_disk = false) () =
  let cfg = Tutil.small_config () in
  { cfg with Config.fs = { cfg.Config.fs with Config.ndisks; log_disk } }

let test_diskset_passthrough () =
  let m = Tutil.machine () in
  let ds = m.Tutil.disks in
  Alcotest.(check int) "same geometry" (Disk.nblocks m.Tutil.disk)
    (Diskset.nblocks ds);
  Alcotest.(check (list string)) "single member, historical name" [ "disk" ]
    (List.map fst (Diskset.members ds));
  let b = Tutil.payload 7 (Diskset.block_size ds) in
  Diskset.write ds 42 b;
  Tutil.check_bytes "write forwarded verbatim" b (Disk.peek m.Tutil.disk 42);
  Tutil.check_bytes "read back" b (Diskset.read ds 42)

let test_diskset_stripe_mapping () =
  let cfg = stripe_cfg ~ndisks:2 ~log_disk:true () in
  let m = Tutil.machine ~cfg () in
  let ds = m.Tutil.disks in
  let chunk = cfg.Config.fs.Config.segment_blocks in
  let bs = Diskset.block_size ds in
  let psegs = (cfg.Config.disk.Config.nblocks - 3) / chunk in
  Alcotest.(check int) "logical geometry spans both spindles"
    (3 + (2 * psegs * chunk))
    (Diskset.nblocks ds);
  let members = Diskset.members ds in
  Alcotest.(check (list string)) "member names"
    [ "disk0"; "disk1"; "disklog" ]
    (List.map fst members);
  (* The boot region stays on data disk 0. *)
  let b0 = Tutil.payload 1 bs in
  Diskset.write ds 0 b0;
  Tutil.check_bytes "superblock on disk0" b0
    (Disk.peek (List.assoc "disk0" members) 0);
  (* Logical segment i -> data disk (i mod 2), physical slot (i / 2). *)
  List.iter
    (fun seg ->
      let off = 5 in
      let b = Tutil.payload (100 + seg) bs in
      Diskset.write ds (3 + (seg * chunk) + off) b;
      let phys = 3 + (seg / 2 * chunk) + off in
      Tutil.check_bytes
        (Printf.sprintf "segment %d on disk%d slot %d" seg (seg mod 2) (seg / 2))
        b
        (Disk.peek (List.assoc (Printf.sprintf "disk%d" (seg mod 2)) members) phys);
      Tutil.check_bytes "round-trip" b (Diskset.read ds (3 + (seg * chunk) + off)))
    [ 0; 1; 2; 3 ]

let test_diskset_run_split () =
  let cfg = stripe_cfg ~ndisks:2 () in
  let m = Tutil.machine ~cfg () in
  let ds = m.Tutil.disks in
  let chunk = cfg.Config.fs.Config.segment_blocks in
  let bs = Diskset.block_size ds in
  (* A run crossing a stripe boundary spans two spindles and must still
     round-trip; its tail lands at the start of disk1's first slot. *)
  let start = 3 + chunk - 2 in
  let data = Tutil.payload 9 (4 * bs) in
  Diskset.write_run ds start data;
  Tutil.check_bytes "run across the stripe boundary" data
    (Diskset.read_run ds start 4);
  Tutil.check_bytes "tail block on disk1"
    (Bytes.sub data (2 * bs) bs)
    (Disk.peek (List.assoc "disk1" (Diskset.members ds)) 3)

let test_diskset_checkpoint_routing () =
  let cfg = stripe_cfg ~ndisks:1 ~log_disk:true () in
  let clock = Clock.create () in
  let stats = Stats.create () in
  let ds = Diskset.create ~route_checkpoints:true clock stats cfg in
  let members = Diskset.members ds in
  let bs = Diskset.block_size ds in
  let cp = Tutil.payload 11 bs in
  Diskset.write ds 1 cp;
  Tutil.check_bytes "checkpoint block on the log spindle" cp
    (Disk.peek (List.assoc "disklog" members) 1);
  let sb = Tutil.payload 12 bs in
  Diskset.write ds 0 sb;
  Tutil.check_bytes "superblock stays on the data spindle" sb
    (Disk.peek (List.assoc "disk" members) 0);
  (* Without the routing flag, checkpoints stay on the data spindle even
     when a log spindle exists (it hosts a file system of its own). *)
  let ds' = Diskset.create clock stats cfg in
  let cp' = Tutil.payload 13 bs in
  Diskset.write ds' 1 cp';
  Tutil.check_bytes "unrouted checkpoint on the data spindle" cp'
    (Disk.peek (List.assoc "disk" (Diskset.members ds')) 1)

let prop_diskset_roundtrip =
  Tutil.qtest "diskset round-trips any block"
    QCheck2.Gen.(pair (int_range 1 4) (list_size (int_range 1 20) (int_bound 5000)))
    (fun (ndisks, blknos) ->
      let cfg = stripe_cfg ~ndisks ~log_disk:(ndisks mod 2 = 0) () in
      let clock = Clock.create () in
      let stats = Stats.create () in
      let ds = Diskset.create clock stats cfg in
      let bs = Diskset.block_size ds in
      List.for_all
        (fun blkno ->
          let blkno = blkno mod Diskset.nblocks ds in
          let b = Tutil.payload blkno bs in
          Diskset.write ds blkno b;
          Bytes.equal b (Diskset.read ds blkno))
        blknos)

let () =
  Alcotest.run "tx_disk"
    [
      ( "disk",
        [
          Alcotest.test_case "roundtrip" `Quick test_rw_roundtrip;
          Alcotest.test_case "run roundtrip" `Quick test_run_roundtrip;
          Alcotest.test_case "time charged" `Quick test_time_charged;
          Alcotest.test_case "seq vs random" `Quick
            test_sequential_cheaper_than_random;
          Alcotest.test_case "zero-seek continuation" `Quick
            test_zero_seek_continuation;
          Alcotest.test_case "seek monotone" `Quick
            test_service_time_monotone_in_distance;
          Alcotest.test_case "range checks" `Quick test_out_of_range;
          Alcotest.test_case "peek/poke" `Quick test_peek_poke_free;
          Alcotest.test_case "queued reads" `Quick test_read_async_queue;
          Alcotest.test_case "queued seek accounting" `Quick
            test_queued_seek_accounting;
        ] );
      ( "diskset",
        [
          Alcotest.test_case "single-disk passthrough" `Quick
            test_diskset_passthrough;
          Alcotest.test_case "stripe mapping" `Quick test_diskset_stripe_mapping;
          Alcotest.test_case "run split across spindles" `Quick
            test_diskset_run_split;
          Alcotest.test_case "checkpoint routing" `Quick
            test_diskset_checkpoint_routing;
          prop_diskset_roundtrip;
        ] );
      ( "elevator",
        [
          Alcotest.test_case "elevator order" `Quick test_elevator_order;
          prop_elevator_is_permutation;
          prop_elevator_clook_from_head;
          prop_elevator_single_sweep;
        ] );
    ]
