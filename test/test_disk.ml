(* Tests for the disk service-time model and the request scheduler. *)

let mk () =
  let m = Tutil.machine () in
  (m.Tutil.clock, m.Tutil.disk)

let test_rw_roundtrip () =
  let _, d = mk () in
  let b = Tutil.payload 1 (Disk.block_size d) in
  Disk.write d 17 b;
  Tutil.check_bytes "read back" b (Disk.read d 17)

let test_run_roundtrip () =
  let _, d = mk () in
  let bs = Disk.block_size d in
  let data = Tutil.payload 2 (5 * bs) in
  Disk.write_run d 100 data;
  Tutil.check_bytes "run read back" data (Disk.read_run d 100 5);
  Tutil.check_bytes "single block within run"
    (Bytes.sub data (2 * bs) bs)
    (Disk.read d 102)

let test_time_charged () =
  let c, d = mk () in
  let b = Bytes.make (Disk.block_size d) 'x' in
  let t0 = Clock.now c in
  Disk.write d 0 b;
  Alcotest.(check bool) "I/O takes time" true (Clock.now c > t0)

let test_sequential_cheaper_than_random () =
  let cfg = Tutil.small_config () in
  let seq =
    let m = Tutil.machine ~cfg () in
    let bs = cfg.Config.disk.block_size in
    Disk.write_run m.Tutil.disk 0 (Bytes.make (64 * bs) 'a');
    Clock.now m.Tutil.clock
  in
  let rand =
    let m = Tutil.machine ~cfg () in
    let bs = cfg.Config.disk.block_size in
    let b = Bytes.make bs 'a' in
    for i = 0 to 63 do
      Disk.write m.Tutil.disk (((i * 37) mod 64) * 64) b
    done;
    Clock.now m.Tutil.clock
  in
  Alcotest.(check bool)
    (Printf.sprintf "sequential (%.4fs) beats random (%.4fs) by 5x" seq rand)
    true
    (seq *. 5.0 < rand)

let test_zero_seek_continuation () =
  let _, d = mk () in
  let bs = Disk.block_size d in
  Disk.write d 10 (Bytes.make bs 'x');
  (* Head now at block 11; continuing there needs no seek or rotation. *)
  let t = Disk.service_time d 11 ~nblocks:1 in
  let expect = float_of_int bs /. Config.default.Config.disk.transfer_bytes_per_s in
  Alcotest.(check (float 1e-9)) "pure transfer" expect t

let test_service_time_monotone_in_distance () =
  let _, d = mk () in
  let near = Disk.service_time d 64 ~nblocks:1 in
  let far = Disk.service_time d 4000 ~nblocks:1 in
  Alcotest.(check bool) "longer seeks cost more" true (far > near)

let test_out_of_range () =
  let _, d = mk () in
  Alcotest.(check bool) "read out of range rejected" true
    (match Disk.read d (Disk.nblocks d) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative rejected" true
    (match Disk.read d (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_peek_poke_free () =
  let c, d = mk () in
  let b = Tutil.payload 3 (Disk.block_size d) in
  let t0 = Clock.now c in
  Disk.poke d 5 b;
  Tutil.check_bytes "poke/peek" b (Disk.peek d 5);
  Alcotest.(check (float 0.0)) "no time charged" t0 (Clock.now c)

let test_elevator_order () =
  let reqs = [ (50, "a"); (10, "b"); (90, "c"); (30, "d") ] in
  let ordered = Elevator.order Elevator.Elevator ~head:40 reqs in
  Alcotest.(check (list int)) "ascending from head, then wrap"
    [ 50; 90; 10; 30 ]
    (List.map fst ordered);
  let fcfs = Elevator.order Elevator.Fcfs ~head:40 reqs in
  Alcotest.(check (list int)) "fcfs keeps arrival order" [ 50; 10; 90; 30 ]
    (List.map fst fcfs)

let prop_elevator_is_permutation =
  Tutil.qtest "elevator preserves requests"
    QCheck2.Gen.(pair (int_bound 1000) (list (int_bound 1000)))
    (fun (head, blocks) ->
      let reqs = List.map (fun b -> (b, ())) blocks in
      let out = Elevator.order Elevator.Elevator ~head reqs in
      List.sort compare (List.map fst out) = List.sort compare blocks)

(* Queued reads under the scheduler: concurrent processes enqueue
   requests, the server daemon serves them in elevator order, and each
   process gets the bytes that were on the platter at submission. *)
let test_read_async_queue () =
  let c, d = mk () in
  let bs = Disk.block_size d in
  let blocks = [ 900; 50; 700; 200 ] in
  List.iter (fun b -> Disk.write d b (Tutil.payload b bs)) blocks;
  let sched = Sched.create c in
  let done_order = ref [] in
  List.iter
    (fun b ->
      Sched.spawn sched (fun () ->
          let data = Disk.read_async d b in
          Tutil.check_bytes "content" (Tutil.payload b bs) data;
          done_order := b :: !done_order))
    blocks;
  Sched.run sched;
  Sched.detach sched;
  let served = List.rev !done_order in
  Alcotest.(check int) "all served" 4 (List.length served);
  (* All four were queued before the server daemon first ran, so the
     elevator reordered them: service order differs from submission
     order yet is a single C-LOOK sweep (at most one descent). *)
  Alcotest.(check bool) "reordered" true (served <> blocks);
  let rec descents prev = function
    | [] -> 0
    | x :: rest -> (if x < prev then 1 else 0) + descents x rest
  in
  (match served with
  | x :: rest ->
    Alcotest.(check bool) "single sweep" true (descents x rest <= 1)
  | [] -> Alcotest.fail "nothing served")

let prop_elevator_clook_from_head =
  Tutil.qtest "elevator is C-LOOK-monotone from the head"
    QCheck2.Gen.(pair (int_bound 1000) (list (int_bound 1000)))
    (fun (head, blocks) ->
      (* Exactly: ascending blocks at or past the head, then one wrap to
         the ascending blocks below it. *)
      let ge, lt = List.partition (fun b -> b >= head) blocks in
      let reqs = List.map (fun b -> (b, ())) blocks in
      let out = List.map fst (Elevator.order Elevator.Elevator ~head reqs) in
      out = List.sort compare ge @ List.sort compare lt)

let prop_elevator_single_sweep =
  Tutil.qtest "elevator does at most one wrap"
    QCheck2.Gen.(pair (int_bound 1000) (list (int_bound 1000)))
    (fun (head, blocks) ->
      let reqs = List.map (fun b -> (b, ())) blocks in
      let out = List.map fst (Elevator.order Elevator.Elevator ~head reqs) in
      (* Direction changes downward at most once. *)
      let rec descents prev = function
        | [] -> 0
        | x :: rest -> (if x < prev then 1 else 0) + descents x rest
      in
      match out with [] -> true | x :: rest -> descents x rest <= 1)

let () =
  Alcotest.run "tx_disk"
    [
      ( "disk",
        [
          Alcotest.test_case "roundtrip" `Quick test_rw_roundtrip;
          Alcotest.test_case "run roundtrip" `Quick test_run_roundtrip;
          Alcotest.test_case "time charged" `Quick test_time_charged;
          Alcotest.test_case "seq vs random" `Quick
            test_sequential_cheaper_than_random;
          Alcotest.test_case "zero-seek continuation" `Quick
            test_zero_seek_continuation;
          Alcotest.test_case "seek monotone" `Quick
            test_service_time_monotone_in_distance;
          Alcotest.test_case "range checks" `Quick test_out_of_range;
          Alcotest.test_case "peek/poke" `Quick test_peek_poke_free;
          Alcotest.test_case "queued reads" `Quick test_read_async_queue;
        ] );
      ( "elevator",
        [
          Alcotest.test_case "elevator order" `Quick test_elevator_order;
          prop_elevator_is_permutation;
          prop_elevator_clook_from_head;
          prop_elevator_single_sweep;
        ] );
    ]
