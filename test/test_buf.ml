(* Tests for the buffer cache: lookup/insert, LRU eviction, dirty
   writeback, pinning, and transaction-owned frames. *)

let mk ?(capacity = 4) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let cache = Cache.create clock stats Config.default.Config.cpu ~capacity in
  (clock, stats, cache)

let block c = Bytes.make 16 c

let test_insert_lookup () =
  let _, _, c = mk () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Alcotest.(check bool) "same frame on lookup" true
    (match Cache.lookup c ~file:1 ~lblock:0 with
    | Some f' -> f' == f
    | None -> false);
  Alcotest.(check bool) "miss on other key" true
    (Cache.lookup c ~file:1 ~lblock:1 = None)

let test_lru_eviction_order () =
  let _, _, c = mk ~capacity:2 () in
  let evicted = ref [] in
  Cache.set_writeback c (fun f -> evicted := (f.Cache.file, f.Cache.lblock) :: !evicted);
  ignore (Cache.insert c ~file:1 ~lblock:0 (block 'a'));
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  (* Touch (1,0) so (1,1) becomes LRU. *)
  ignore (Cache.lookup c ~file:1 ~lblock:0);
  ignore (Cache.insert c ~file:1 ~lblock:2 (block 'c'));
  Alcotest.(check bool) "LRU victim gone" true
    (Cache.lookup c ~file:1 ~lblock:1 = None);
  Alcotest.(check bool) "recently used survives" true
    (Cache.lookup c ~file:1 ~lblock:0 <> None);
  Alcotest.(check (list (pair int int))) "clean eviction: no writeback" []
    !evicted

let test_dirty_eviction_writes_back () =
  let _, _, c = mk ~capacity:1 () in
  let written = ref [] in
  Cache.set_writeback c (fun f ->
      written := Bytes.to_string f.Cache.data :: !written);
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  Alcotest.(check (list string)) "dirty victim written back"
    [ Bytes.to_string (block 'a') ]
    !written

let test_pinned_not_evicted () =
  let _, _, c = mk ~capacity:2 () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.pin f;
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  ignore (Cache.insert c ~file:1 ~lblock:2 (block 'c'));
  Alcotest.(check bool) "pinned frame survives" true
    (Cache.lookup c ~file:1 ~lblock:0 <> None);
  Cache.unpin f;
  (* The survival check above touched the frame, so push two more blocks
     through to evict it. *)
  ignore (Cache.insert c ~file:1 ~lblock:3 (block 'd'));
  ignore (Cache.insert c ~file:1 ~lblock:4 (block 'e'));
  Alcotest.(check bool) "unpinned frame evictable" true
    (Cache.lookup c ~file:1 ~lblock:0 = None)

let test_txn_frames_protected () =
  let _, _, c = mk ~capacity:2 () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  Cache.set_txn c f 7;
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  ignore (Cache.insert c ~file:1 ~lblock:2 (block 'c'));
  Alcotest.(check bool) "txn frame survives eviction pressure" true
    (Cache.lookup c ~file:1 ~lblock:0 <> None);
  Alcotest.(check bool) "txn frame not in dirty list" true
    (Cache.dirty_frames c () = []);
  Alcotest.(check int) "txn_frames finds it" 1 (List.length (Cache.txn_frames c 7));
  Cache.set_txn c f (-1);
  Alcotest.(check int) "released to dirty list" 1
    (List.length (Cache.dirty_frames c ()))

let test_cache_full () =
  let _, _, c = mk ~capacity:1 () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.pin f;
  Alcotest.(check bool) "all pinned -> Cache_full" true
    (match Cache.insert c ~file:1 ~lblock:1 (block 'b') with
    | exception Cache.Cache_full -> true
    | _ -> false)

let test_dirty_frames_order () =
  let clock, _, c =
    let clock = Clock.create () in
    let stats = Stats.create () in
    (clock, stats, Cache.create clock stats Config.default.Config.cpu ~capacity:8)
  in
  Cache.set_writeback c (fun _ -> ());
  let f1 = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  let f2 = Cache.insert c ~file:1 ~lblock:1 (block 'b') in
  Clock.advance clock 1.0;
  Cache.mark_dirty c f2;
  Clock.advance clock 1.0;
  Cache.mark_dirty c f1;
  Alcotest.(check (list int)) "oldest dirtied first" [ 1; 0 ]
    (List.map (fun f -> f.Cache.lblock) (Cache.dirty_frames c ()))

let test_invalidate () =
  let _, _, c = mk () in
  Cache.set_writeback c (fun _ -> Alcotest.fail "invalidate must not write");
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  Cache.invalidate c f;
  Alcotest.(check bool) "gone" true (Cache.lookup c ~file:1 ~lblock:0 = None);
  Alcotest.(check int) "resident count" 0 (Cache.resident c)

let test_file_frames () =
  let _, _, c = mk ~capacity:8 () in
  Cache.set_writeback c (fun _ -> ());
  ignore (Cache.insert c ~file:1 ~lblock:0 (block 'a'));
  ignore (Cache.insert c ~file:2 ~lblock:0 (block 'b'));
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'c'));
  Alcotest.(check int) "frames of file 1" 2 (List.length (Cache.file_frames c 1));
  Alcotest.(check int) "frames of file 2" 1 (List.length (Cache.file_frames c 2))

let test_modseq_monotone () =
  let _, _, c = mk () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  let s0 = Cache.modseq c in
  Cache.mark_dirty c f;
  let s1 = Cache.modseq c in
  Cache.mark_dirty c f;
  let s2 = Cache.modseq c in
  Alcotest.(check bool) "monotone" true (s0 < s1 && s1 < s2);
  Alcotest.(check int) "frame carries latest" s2 f.Cache.modseq

(* Regression: insert over an existing *dirty* frame used to drop it
   without invoking the writeback hook, silently losing the dirty bytes.
   The old contents must reach the backing store before the replacement
   lands. *)
let test_insert_over_dirty_writes_back () =
  let _, _, c = mk () in
  let store = Hashtbl.create 8 in
  Cache.set_writeback c (fun f ->
      Hashtbl.replace store (f.Cache.file, f.Cache.lblock)
        (Bytes.to_string f.Cache.data));
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  let f' = Cache.insert c ~file:1 ~lblock:0 (block 'b') in
  Alcotest.(check string) "old dirty bytes reached the backing store"
    (Bytes.to_string (block 'a'))
    (Hashtbl.find store (1, 0));
  Alcotest.(check bool) "replacement is resident" true
    (match Cache.lookup c ~file:1 ~lblock:0 with
    | Some g -> g == f' && Bytes.to_string g.Cache.data = Bytes.to_string (block 'b')
    | None -> false);
  Alcotest.(check int) "no duplicate frames" 1 (Cache.resident c)

let test_insert_over_pinned_rejected () =
  let _, _, c = mk () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.pin f;
  Alcotest.(check bool) "pinned frame cannot be replaced" true
    (match Cache.insert c ~file:1 ~lblock:0 (block 'b') with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Cache.unpin f;
  Cache.set_txn c f 3;
  Alcotest.(check bool) "txn-owned frame cannot be replaced" true
    (match Cache.insert c ~file:1 ~lblock:0 (block 'b') with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* A frame re-dirtied while its writeback is in flight holds newer bytes
   than the ones on their way to disk: it must stay dirty (and get a
   second writeback) rather than be marked clean and dropped. *)
let test_redirty_during_writeback () =
  let _, _, c = mk ~capacity:1 () in
  let writes = ref 0 in
  let redirtied = ref false in
  Cache.set_writeback c (fun f ->
      incr writes;
      if not !redirtied then begin
        redirtied := true;
        Cache.mark_dirty c f
      end);
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  Alcotest.(check int) "written back again after the re-dirty" 2 !writes;
  Alcotest.(check bool) "old frame gone" true
    (Cache.lookup c ~file:1 ~lblock:0 = None)

(* Regression for the scheduled-path race: the writeback hook can block
   on the disk and yield, letting another fiber run eviction against the
   same LRU list. The victim is pinned across the writeback, so the
   second fiber must pick a different victim, every dirty frame is
   written back exactly once, and the cyclic list stays consistent. *)
let test_evict_race_two_fibers () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let c = Cache.create clock stats Config.default.Config.cpu ~capacity:2 in
  let sched = Sched.create clock in
  let written = ref [] in
  Cache.set_writeback c (fun f ->
      (* Park the writeback: the other fiber's eviction runs meanwhile. *)
      Sched.delay sched 0.01;
      written := (f.Cache.file, f.Cache.lblock) :: !written);
  Cache.mark_dirty c (Cache.insert c ~file:1 ~lblock:0 (block 'a'));
  Cache.mark_dirty c (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  Sched.spawn sched (fun () -> ignore (Cache.insert c ~file:1 ~lblock:2 (block 'c')));
  Sched.spawn sched (fun () -> ignore (Cache.insert c ~file:1 ~lblock:3 (block 'd')));
  Sched.run sched;
  Sched.detach sched;
  Alcotest.(check (list (pair int int)))
    "each dirty frame written back exactly once"
    [ (1, 0); (1, 1) ]
    (List.sort compare !written);
  Alcotest.(check bool) "old frames gone" true
    (Cache.lookup c ~file:1 ~lblock:0 = None
    && Cache.lookup c ~file:1 ~lblock:1 = None);
  Alcotest.(check bool) "new frames resident" true
    (Cache.lookup c ~file:1 ~lblock:2 <> None
    && Cache.lookup c ~file:1 ~lblock:3 <> None);
  Alcotest.(check bool) "within capacity" true (Cache.resident c <= 2)

let prop_never_exceeds_capacity =
  Tutil.qtest "resident <= capacity"
    QCheck2.Gen.(list (pair (int_bound 3) (int_bound 10)))
    (fun keys ->
      let _, _, c = mk ~capacity:4 () in
      Cache.set_writeback c (fun _ -> ());
      List.iter
        (fun (file, lblock) -> ignore (Cache.insert c ~file ~lblock (block 'x')))
        keys;
      Cache.resident c <= 4)

let () =
  Alcotest.run "tx_buf"
    [
      ( "cache",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "LRU order" `Quick test_lru_eviction_order;
          Alcotest.test_case "dirty writeback" `Quick
            test_dirty_eviction_writes_back;
          Alcotest.test_case "pinning" `Quick test_pinned_not_evicted;
          Alcotest.test_case "txn frames" `Quick test_txn_frames_protected;
          Alcotest.test_case "cache full" `Quick test_cache_full;
          Alcotest.test_case "dirty order" `Quick test_dirty_frames_order;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          Alcotest.test_case "file frames" `Quick test_file_frames;
          Alcotest.test_case "modseq" `Quick test_modseq_monotone;
          Alcotest.test_case "insert over dirty writes back" `Quick
            test_insert_over_dirty_writes_back;
          Alcotest.test_case "insert over pinned rejected" `Quick
            test_insert_over_pinned_rejected;
          Alcotest.test_case "re-dirty during writeback" `Quick
            test_redirty_during_writeback;
          Alcotest.test_case "scheduled eviction race" `Quick
            test_evict_race_two_fibers;
          prop_never_exceeds_capacity;
        ] );
    ]
