(* Tests for the access methods: B+tree, recno, and hash, over both the
   plain pager and the transactional (WAL) pager. *)

let mk_plain () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/db" in
  (m, fs, v, Pager.plain v fd)

let attach_btree (m : Tutil.machine) pager =
  Btree.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager

let key i = Printf.sprintf "key%06d" i
let value i = Printf.sprintf "value-%d-%s" i (String.make (i mod 40) 'x')

(* B+tree ------------------------------------------------------------------ *)

let test_btree_basic () =
  let m, _, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  Alcotest.(check (option string)) "empty" None (Btree.find bt "a");
  Btree.insert bt "a" "1";
  Btree.insert bt "b" "2";
  Btree.insert bt "a" "updated";
  Alcotest.(check (option string)) "find a" (Some "updated") (Btree.find bt "a");
  Alcotest.(check (option string)) "find b" (Some "2") (Btree.find bt "b");
  Alcotest.(check int) "count" 2 (Btree.count bt);
  Alcotest.(check bool) "delete" true (Btree.delete bt "a");
  Alcotest.(check bool) "delete again" false (Btree.delete bt "a");
  Alcotest.(check (option string)) "gone" None (Btree.find bt "a");
  Btree.check bt

let test_btree_splits_and_height () =
  let m, _, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  Alcotest.(check int) "height 1" 1 (Btree.height bt);
  for i = 0 to 4999 do
    Btree.insert bt (key i) (value i)
  done;
  Alcotest.(check int) "all present" 5000 (Btree.count bt);
  Alcotest.(check bool) "height grew" true (Btree.height bt >= 2);
  Btree.check bt;
  for i = 0 to 4999 do
    if Btree.find bt (key i) <> Some (value i) then
      Alcotest.failf "missing %s" (key i)
  done

let test_btree_random_order_inserts () =
  let m, _, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  let rng = Rng.create ~seed:99 in
  let keys = Array.init 2000 key in
  Rng.shuffle rng keys;
  Array.iter (fun k -> Btree.insert bt k ("v" ^ k)) keys;
  Btree.check bt;
  (* Iteration is globally sorted. *)
  let prev = ref "" in
  let n = ref 0 in
  Btree.iter bt (fun k _ ->
      Alcotest.(check bool) "sorted" true (!prev < k);
      prev := k;
      incr n;
      true);
  Alcotest.(check int) "iterated all" 2000 !n

let test_btree_iter_from () =
  let m, _, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  for i = 0 to 99 do
    Btree.insert bt (key i) (string_of_int i)
  done;
  let seen = ref [] in
  Btree.iter bt ~from:(key 90) (fun k _ ->
      seen := k :: !seen;
      true);
  Alcotest.(check int) "ten from key 90" 10 (List.length !seen);
  Alcotest.(check string) "first is key90" (key 90) (List.nth (List.rev !seen) 0);
  (* Early stop. *)
  let count = ref 0 in
  Btree.iter bt (fun _ _ ->
      incr count;
      !count < 5);
  Alcotest.(check int) "stopped early" 5 !count

let test_btree_persistence () =
  let m, fs, v, pager = mk_plain () in
  let bt = attach_btree m pager in
  for i = 0 to 499 do
    Btree.insert bt (key i) (value i)
  done;
  Lfs.sync fs;
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v' = Lfs.vfs fs in
  let fd = v'.Vfs.open_file "/db" in
  ignore v;
  let bt = attach_btree m (Pager.plain v' fd) in
  Alcotest.(check int) "count preserved" 500 (Btree.count bt);
  Btree.check bt;
  for i = 0 to 499 do
    if Btree.find bt (key i) <> Some (value i) then Alcotest.failf "lost %s" (key i)
  done

let test_btree_entry_too_large () =
  let m, _, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  Alcotest.check_raises "oversized rejected" Btree.Entry_too_large (fun () ->
      Btree.insert bt "k" (String.make 4000 'x'))

let prop_btree_model =
  Tutil.qtest ~count:40 "btree matches a map model"
    QCheck2.Gen.(
      list_size (int_range 1 200)
        (pair (int_bound 50) (option (string_size ~gen:(char_range 'a' 'z') (int_bound 20)))))
    (fun ops ->
      let m, _, _, pager = mk_plain () in
      let bt = attach_btree m pager in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            Btree.insert bt k v;
            Hashtbl.replace model k v
          | None ->
            let existed = Hashtbl.mem model k in
            Hashtbl.remove model k;
            let deleted = Btree.delete bt k in
            if existed <> deleted then failwith "delete mismatch")
        ops;
      Btree.check bt;
      Hashtbl.fold (fun k v ok -> ok && Btree.find bt k = Some v) model true
      && Btree.count bt = Hashtbl.length model)

(* Iteration must deliver exactly the model's bindings in sorted key
   order — in full, from an arbitrary starting key, and as a prefix when
   the callback stops early. *)
let prop_btree_iteration =
  Tutil.qtest ~count:30 "btree iteration matches the sorted model"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 150)
           (pair (int_bound 60)
              (option (string_size ~gen:(char_range 'a' 'z') (int_bound 12)))))
        (int_bound 60))
    (fun (ops, from_k) ->
      let m, _, _, pager = mk_plain () in
      let bt = attach_btree m pager in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            Btree.insert bt k v;
            Hashtbl.replace model k v
          | None ->
            Hashtbl.remove model k;
            ignore (Btree.delete bt k))
        ops;
      let expect =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
      in
      let collect ?from () =
        let seen = ref [] in
        Btree.iter bt ?from (fun k v ->
            seen := (k, v) :: !seen;
            true);
        List.rev !seen
      in
      let from = key from_k in
      let stop_after = (List.length expect + 1) / 2 in
      let prefix = ref [] and n = ref 0 in
      Btree.iter bt (fun k v ->
          prefix := (k, v) :: !prefix;
          incr n;
          !n < stop_after);
      let prefix = List.rev !prefix in
      let take n l = List.filteri (fun i _ -> i < n) l in
      collect () = expect
      && collect ~from () = List.filter (fun (k, _) -> k >= from) expect
      && prefix = take (min stop_after (List.length expect)) expect)

let test_btree_iter_from_missing_key () =
  let m, _, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  Btree.insert bt "b" "1";
  Btree.insert bt "d" "2";
  Btree.insert bt "f" "3";
  let from_c = ref [] in
  Btree.iter bt ~from:"c" (fun k _ -> from_c := k :: !from_c; true);
  Alcotest.(check (list string)) "starts at next key" [ "d"; "f" ]
    (List.rev !from_c);
  let from_z = ref 0 in
  Btree.iter bt ~from:"z" (fun _ _ -> incr from_z; true);
  Alcotest.(check int) "past the end: nothing" 0 !from_z

let test_btree_sequential_load_fill () =
  (* The rightmost-split optimization must keep sequentially-loaded
     leaves nearly full: 2000 records of ~24 bytes fit ~160 to a page,
     so the tree needs only a little over the minimum page count. *)
  let m, _, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  for i = 0 to 1999 do
    Btree.insert bt (key i) "v"
  done;
  Btree.check bt;
  let meta = pager.Pager.get 0 in
  let npages = Enc.get_u32 meta 8 in
  Alcotest.(check bool)
    (Printf.sprintf "compact layout (%d pages)" npages)
    true (npages < 30)

let test_btree_delete_persists () =
  let m, fs, _, pager = mk_plain () in
  let bt = attach_btree m pager in
  for i = 0 to 99 do
    Btree.insert bt (key i) (value i)
  done;
  for i = 0 to 99 do
    if i mod 2 = 0 then ignore (Btree.delete bt (key i))
  done;
  Lfs.sync fs;
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let bt = attach_btree m (Pager.plain v (v.Vfs.open_file "/db")) in
  Alcotest.(check int) "half remain" 50 (Btree.count bt);
  Alcotest.(check (option string)) "odd kept" (Some (value 51)) (Btree.find bt (key 51));
  Alcotest.(check (option string)) "even gone" None (Btree.find bt (key 50))

let test_hash_persistence () =
  let m, fs, _, pager = mk_plain () in
  let h = Hashdb.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager ~buckets:4 in
  for i = 0 to 199 do
    Hashdb.insert h (key i) (value i)
  done;
  Lfs.sync fs;
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let h =
    Hashdb.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu
      (Pager.plain v (v.Vfs.open_file "/db"))
      ~buckets:999 (* ignored on reopen *)
  in
  Alcotest.(check int) "count preserved" 200 (Hashdb.count h);
  for i = 0 to 199 do
    if Hashdb.find h (key i) <> Some (value i) then Alcotest.failf "lost %s" (key i)
  done

(* Transactional B-tree over the WAL pager --------------------------------- *)

let mk_wal () =
  let m, fs = Tutil.fresh_lfs () in
  let v = Lfs.vfs fs in
  let fd = v.Vfs.create "/db" in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:64
      ~log_path:"/wal.log" ()
  in
  (m, fs, v, fd, env)

let test_btree_wal_commit_and_abort () =
  let m, _, _, fd, env = mk_wal () in
  (* Load under one committed transaction. *)
  let txn = Libtp.begin_txn env in
  let bt = attach_btree m (Pager.wal env txn fd) in
  for i = 0 to 199 do
    Btree.insert bt (key i) (value i)
  done;
  Libtp.commit env txn;
  (* Abort a second transaction's inserts. *)
  let txn2 = Libtp.begin_txn env in
  let bt2 = attach_btree m (Pager.wal env txn2 fd) in
  for i = 200 to 299 do
    Btree.insert bt2 (key i) (value i)
  done;
  Alcotest.(check (option string)) "visible inside txn" (Some (value 250))
    (Btree.find bt2 (key 250));
  Libtp.abort env txn2;
  (* A third transaction sees only the committed data. *)
  let txn3 = Libtp.begin_txn env in
  let bt3 = attach_btree m (Pager.wal env txn3 fd) in
  Alcotest.(check int) "count back to 200" 200 (Btree.count bt3);
  Alcotest.(check (option string)) "committed present" (Some (value 7))
    (Btree.find bt3 (key 7));
  Alcotest.(check (option string)) "aborted gone" None (Btree.find bt3 (key 250));
  Btree.check bt3;
  Libtp.commit env txn3

let test_btree_wal_crash_recovery () =
  let m, fs, _, fd, env = mk_wal () in
  let txn = Libtp.begin_txn env in
  let bt = attach_btree m (Pager.wal env txn fd) in
  for i = 0 to 99 do
    Btree.insert bt (key i) (value i)
  done;
  Libtp.commit env txn;
  (* Uncommitted second transaction, then crash. *)
  let txn2 = Libtp.begin_txn env in
  let bt2 = attach_btree m (Pager.wal env txn2 fd) in
  for i = 100 to 150 do
    Btree.insert bt2 (key i) (value i)
  done;
  Logmgr.force (Libtp.log env) ~upto:(Logmgr.next_lsn (Libtp.log env) - 1);
  Lfs.crash fs;
  let fs = Lfs.mount m.Tutil.disks m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Lfs.vfs fs in
  let env =
    Libtp.open_env m.Tutil.clock m.Tutil.stats m.Tutil.cfg v ~pool_pages:64
      ~log_path:"/wal.log" ()
  in
  let fd = v.Vfs.open_file "/db" in
  let txn = Libtp.begin_txn env in
  let bt = attach_btree m (Pager.wal env txn fd) in
  Alcotest.(check int) "exactly committed records" 100 (Btree.count bt);
  Btree.check bt;
  Alcotest.(check (option string)) "committed survives" (Some (value 42))
    (Btree.find bt (key 42));
  Alcotest.(check (option string)) "loser undone" None (Btree.find bt (key 120));
  Libtp.commit env txn

(* Recno -------------------------------------------------------------------- *)

let mk_recno ?(reclen = 50) () =
  let m, _, _, pager = mk_plain () in
  (m, Recno.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager ~reclen)

let record i reclen =
  let b = Bytes.make reclen ' ' in
  let s = Printf.sprintf "record-%d" i in
  Bytes.blit_string s 0 b 0 (String.length s);
  b

let test_recno_exact_page_fill () =
  (* 4096/64 = 64 records per page exactly: the boundary record must land
     on a fresh page with no straddling. *)
  let _, r = mk_recno ~reclen:64 () in
  for i = 0 to 129 do
    ignore (Recno.append r (record i 64))
  done;
  Tutil.check_bytes "record 63 (end of page 1)" (record 63 64) (Recno.get r 63);
  Tutil.check_bytes "record 64 (start of page 2)" (record 64 64) (Recno.get r 64);
  Tutil.check_bytes "record 129" (record 129 64) (Recno.get r 129)

let test_recno_oversized_rejected () =
  let m, _, _, pager = mk_plain () in
  Alcotest.(check bool) "reclen > page rejected" true
    (match
       Recno.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager
         ~reclen:5000
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_recno_append_get () =
  let _, r = mk_recno () in
  let ids = List.init 500 (fun i -> Recno.append r (record i 50)) in
  Alcotest.(check (list int)) "sequential recnos" (List.init 500 Fun.id) ids;
  Alcotest.(check int) "count" 500 (Recno.count r);
  Tutil.check_bytes "get 250" (record 250 50) (Recno.get r 250);
  Alcotest.(check bool) "out of range" true
    (match Recno.get r 500 with exception Not_found -> true | _ -> false)

let test_recno_set_and_iter () =
  let _, r = mk_recno () in
  for i = 0 to 99 do
    ignore (Recno.append r (record i 50))
  done;
  Recno.set r 50 (record 9999 50);
  Tutil.check_bytes "updated" (record 9999 50) (Recno.get r 50);
  let n = ref 0 in
  Recno.iter r (fun recno data ->
      if recno = 50 then Tutil.check_bytes "iter sees update" (record 9999 50) data;
      incr n;
      true);
  Alcotest.(check int) "iterated all" 100 !n

let prop_recno_model =
  Tutil.qtest ~count:40 "recno matches an array model"
    QCheck2.Gen.(
      list_size (int_range 1 200)
        (oneof
           [
             map (fun i -> `Append i) (int_bound 10_000);
             map (fun (r, i) -> `Set (r, i)) (pair (int_bound 300) (int_bound 10_000));
           ]))
    (fun ops ->
      let reclen = 32 in
      let _, r = mk_recno ~reclen () in
      let model = ref [||] in
      List.iter
        (function
          | `Append i ->
            let id = Recno.append r (record i reclen) in
            if id <> Array.length !model then failwith "recno id mismatch";
            model := Array.append !model [| record i reclen |]
          | `Set (recno, i) ->
            let n = Array.length !model in
            if n > 0 then begin
              let recno = recno mod n in
              Recno.set r recno (record i reclen);
              !model.(recno) <- record i reclen
            end)
        ops;
      Array.iteri
        (fun i expect ->
          if not (Bytes.equal (Recno.get r i) expect) then failwith "get mismatch")
        !model;
      (* The iteration sequence is exactly the array, in record order. *)
      let seen = ref [] in
      Recno.iter r (fun recno data ->
          seen := (recno, Bytes.copy data) :: !seen;
          true);
      let seen = List.rev !seen in
      Recno.count r = Array.length !model
      && List.length seen = Array.length !model
      && List.for_all2
           (fun (i, d) (j, e) -> i = j && Bytes.equal d e)
           seen
           (Array.to_list (Array.mapi (fun i d -> (i, d)) !model)))

let test_recno_reclen_mismatch () =
  let m, _, _, pager = mk_plain () in
  let _ = Recno.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager ~reclen:50 in
  Alcotest.(check bool) "mismatch rejected" true
    (match
       Recno.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager ~reclen:64
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Hash --------------------------------------------------------------------- *)

let mk_hash ?(buckets = 8) () =
  let m, _, _, pager = mk_plain () in
  (m, Hashdb.attach m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager ~buckets)

let test_hash_basic () =
  let _, h = mk_hash () in
  Hashdb.insert h "alpha" "1";
  Hashdb.insert h "beta" "2";
  Hashdb.insert h "alpha" "one";
  Alcotest.(check (option string)) "replace" (Some "one") (Hashdb.find h "alpha");
  Alcotest.(check int) "count" 2 (Hashdb.count h);
  Alcotest.(check bool) "delete" true (Hashdb.delete h "beta");
  Alcotest.(check (option string)) "gone" None (Hashdb.find h "beta")

let test_hash_overflow_chains () =
  let m, h = mk_hash ~buckets:2 () in
  (* Two buckets force long chains. *)
  for i = 0 to 999 do
    Hashdb.insert h (key i) (value i)
  done;
  Alcotest.(check int) "all inserted" 1000 (Hashdb.count h);
  Alcotest.(check bool) "overflow pages created" true
    (Stats.count m.Tutil.stats "hash.overflow_pages" > 0);
  for i = 0 to 999 do
    if Hashdb.find h (key i) <> Some (value i) then Alcotest.failf "lost %s" (key i)
  done;
  let n = ref 0 in
  Hashdb.iter h (fun _ _ ->
      incr n;
      true);
  Alcotest.(check int) "iter sees all" 1000 !n

let prop_hash_model =
  Tutil.qtest ~count:40 "hash matches a map model"
    QCheck2.Gen.(
      list_size (int_range 1 150)
        (pair (int_bound 40) (option (string_size ~gen:(char_range 'a' 'z') (int_bound 15)))))
    (fun ops ->
      let _, h = mk_hash ~buckets:4 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            Hashdb.insert h k v;
            Hashtbl.replace model k v
          | None ->
            let existed = Hashtbl.mem model k in
            Hashtbl.remove model k;
            if Hashdb.delete h k <> existed then failwith "delete mismatch")
        ops;
      Hashtbl.fold (fun k v ok -> ok && Hashdb.find h k = Some v) model true
      && Hashdb.count h = Hashtbl.length model)


(* Hash iteration has no order guarantee, but it must visit every model
   binding exactly once and nothing else. *)
let prop_hash_iteration =
  Tutil.qtest ~count:30 "hash iteration visits each binding once"
    QCheck2.Gen.(
      list_size (int_range 1 150)
        (pair (int_bound 40)
           (option (string_size ~gen:(char_range 'a' 'z') (int_bound 15)))))
    (fun ops ->
      let _, h = mk_hash ~buckets:2 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          let k = key k in
          match v with
          | Some v ->
            Hashdb.insert h k v;
            Hashtbl.replace model k v
          | None ->
            Hashtbl.remove model k;
            ignore (Hashdb.delete h k))
        ops;
      let seen = Hashtbl.create 16 in
      let dup = ref false in
      Hashdb.iter h (fun k v ->
          if Hashtbl.mem seen k then dup := true;
          Hashtbl.replace seen k v;
          true);
      (not !dup)
      && Hashtbl.length seen = Hashtbl.length model
      && Hashtbl.fold
           (fun k v acc -> acc && Hashtbl.find_opt seen k = Some v)
           model true)

(* db(3)-style unified facade ---------------------------------------------- *)

let mk_db kind =
  let m, _, _, pager = mk_plain () in
  (m, Db.opendb m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager kind)

let test_db_facade_btree () =
  let _, db = mk_db Db.Btree_db in
  Db.put db "beta" "2";
  Db.put db "alpha" "1";
  Alcotest.(check (option string)) "get" (Some "1") (Db.get db "alpha");
  Alcotest.(check int) "count" 2 (Db.count db);
  let keys = ref [] in
  Db.seq db (fun k _ -> keys := k :: !keys; true);
  Alcotest.(check (list string)) "sorted scan" [ "alpha"; "beta" ] (List.rev !keys);
  Alcotest.(check bool) "del" true (Db.del db "alpha");
  Alcotest.(check (option string)) "gone" None (Db.get db "alpha")

let test_db_facade_hash () =
  let _, db = mk_db (Db.Hash_db 4) in
  for i = 0 to 49 do
    Db.put db (key i) (value i)
  done;
  Alcotest.(check int) "count" 50 (Db.count db);
  Alcotest.(check (option string)) "get" (Some (value 7)) (Db.get db (key 7));
  let n = ref 0 in
  Db.seq db (fun _ _ -> incr n; true);
  Alcotest.(check int) "scan sees all" 50 !n

let test_db_facade_recno () =
  let _, db = mk_db (Db.Recno_db 32) in
  let rec32 s = s ^ String.make (32 - String.length s) ' ' in
  Db.put db "0" (rec32 "first");
  Db.put db "1" (rec32 "second");
  Db.put db "0" (rec32 "FIRST");
  Alcotest.(check (option string)) "overwrite" (Some (rec32 "FIRST")) (Db.get db "0");
  Alcotest.(check (option string)) "missing" None (Db.get db "9");
  Alcotest.(check bool) "bad key rejected" true
    (match Db.get db "not-a-number" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "del unsupported" true
    (match Db.del db "0" with exception Invalid_argument _ -> true | _ -> false);
  let seen = ref [] in
  Db.seq db (fun k v -> seen := (k, v) :: !seen; true);
  Alcotest.(check int) "scan" 2 (List.length !seen)

let test_db_facade_kind_mismatch () =
  let m, _, v, pager = mk_plain () in
  let _ = Db.opendb m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager Db.Btree_db in
  ignore v;
  Alcotest.(check bool) "hash over btree rejected" true
    (match
       Db.opendb m.Tutil.clock m.Tutil.stats m.Tutil.cfg.Config.cpu pager (Db.Hash_db 2)
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "tx_db"
    [
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "splits/height" `Quick test_btree_splits_and_height;
          Alcotest.test_case "random order" `Quick test_btree_random_order_inserts;
          Alcotest.test_case "iter from" `Quick test_btree_iter_from;
          Alcotest.test_case "persistence" `Quick test_btree_persistence;
          Alcotest.test_case "entry too large" `Quick test_btree_entry_too_large;
          Alcotest.test_case "iter from missing key" `Quick
            test_btree_iter_from_missing_key;
          Alcotest.test_case "sequential fill" `Quick test_btree_sequential_load_fill;
          Alcotest.test_case "delete persists" `Quick test_btree_delete_persists;
          prop_btree_model;
          prop_btree_iteration;
        ] );
      ( "btree-wal",
        [
          Alcotest.test_case "commit/abort" `Quick test_btree_wal_commit_and_abort;
          Alcotest.test_case "crash recovery" `Quick test_btree_wal_crash_recovery;
        ] );
      ( "recno",
        [
          Alcotest.test_case "append/get" `Quick test_recno_append_get;
          Alcotest.test_case "set/iter" `Quick test_recno_set_and_iter;
          Alcotest.test_case "reclen mismatch" `Quick test_recno_reclen_mismatch;
          Alcotest.test_case "exact page fill" `Quick test_recno_exact_page_fill;
          Alcotest.test_case "oversized reclen" `Quick test_recno_oversized_rejected;
          prop_recno_model;
        ] );
      ( "db-facade",
        [
          Alcotest.test_case "btree" `Quick test_db_facade_btree;
          Alcotest.test_case "hash" `Quick test_db_facade_hash;
          Alcotest.test_case "recno" `Quick test_db_facade_recno;
          Alcotest.test_case "kind mismatch" `Quick test_db_facade_kind_mismatch;
        ] );
      ( "hash",
        [
          Alcotest.test_case "basic" `Quick test_hash_basic;
          Alcotest.test_case "overflow chains" `Quick test_hash_overflow_chains;
          Alcotest.test_case "persistence" `Quick test_hash_persistence;
          prop_hash_model;
          prop_hash_iteration;
        ] );
    ]
