(* txnlfs — command-line driver for the reproduction: run any paper
   experiment or ablation individually, run TPC-B ad hoc on any of the
   three configurations, or poke at a simulated file system. *)

open Cmdliner

let scale_arg =
  let doc = "TPC-B scale rating in TPS (the paper uses 10). All machine \
             parameters are scaled by scale/10 to preserve the paper's \
             cache/database/disk ratios." in
  Arg.(value & opt int 4 & info [ "scale" ] ~docv:"N" ~doc)

let txns_arg default =
  let doc = "Number of transactions to execute." in
  Arg.(value & opt int default & info [ "txns" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let seeds_arg =
  let doc = "Number of seeds (independent runs averaged)." in
  Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc)

let json_arg =
  let doc =
    "Also write the machine-readable $(b,BENCH_<name>.json) artifact into \
     $(b,\\$BENCH_DIR) (or the current directory)."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let ndisks_arg =
  let doc =
    "Number of data spindles. Above 1, LFS stripes whole segments \
     round-robin across the spindles; 1 reproduces the paper's single-disk \
     configuration bit-for-bit."
  in
  Arg.(value & opt int 1 & info [ "ndisks" ] ~docv:"N" ~doc)

let log_disk_arg =
  let doc =
    "Add a dedicated log spindle: the write-ahead log (user setups) or the \
     LFS checkpoint region (kernel setup) stops competing with data-disk \
     traffic."
  in
  Arg.(value & flag & info [ "log-disk" ] ~doc)

let log_streams_arg =
  let doc =
    "Number of parallel write-ahead log streams (user setups). Each \
     transaction is hash-assigned to one stream; commit records carry a \
     vector LSN so recovery can merge the streams in dependency order. \
     With $(b,--log-disk), every stream gets its own spindle."
  in
  Arg.(value & opt int 1 & info [ "log-streams" ] ~docv:"N" ~doc)

let with_disks ~ndisks ~log_disk ?(log_streams = 1) (c : Config.t) =
  { c with Config.fs = { c.Config.fs with Config.ndisks; log_disk; log_streams } }

let lock_grain_arg =
  let doc =
    "Two-phase locking granularity: $(b,page) (classic page locks) or \
     $(b,record) (hierarchical record locks with intention modes; see the \
     lock manager docs)."
  in
  Arg.(value & opt string "page" & info [ "lock-grain" ] ~docv:"G" ~doc)

let parse_grain s =
  try Mplsweep.grain_of_string s
  with Invalid_argument _ ->
    prerr_endline ("unknown lock grain " ^ s ^ " (page, record)");
    exit 2

let with_grain grain (c : Config.t) =
  { c with Config.fs = { c.Config.fs with Config.lock_grain = grain } }

let emit_bench ~name ~config json =
  let path = Expcommon.write_bench ~name ~config json in
  Printf.printf "wrote %s\n" path

(* fig4 *)
let fig4_cmd =
  let run scale txns nseeds json =
    let f =
      Fig4.run ~tps_scale:scale ~txns ~seeds:(List.init nseeds (fun i -> i + 1)) ()
    in
    Fig4.print f;
    if json then emit_bench ~name:"fig4" ~config:f.Fig4.config (Fig4.to_json f)
  in
  Cmd.v
    (Cmd.info "fig4" ~doc:"Figure 4: TPC-B throughput of the three configurations")
    Term.(const run $ scale_arg $ txns_arg 20_000 $ seeds_arg $ json_arg)

let fig5_cmd =
  let run scale json =
    let f = Fig5.run ~tps_scale:scale () in
    Fig5.print f;
    if json then emit_bench ~name:"fig5" ~config:f.Fig5.config (Fig5.to_json f)
  in
  Cmd.v
    (Cmd.info "fig5"
       ~doc:"Figure 5: non-transaction performance on normal vs transaction kernel")
    Term.(const run $ scale_arg $ json_arg)

let fig6_cmd =
  let run scale txns seed json =
    let f = Fig6.run ~tps_scale:scale ~txns ~seed () in
    Fig6.print f;
    if json then emit_bench ~name:"fig6" ~config:f.Fig6.config (Fig6.to_json f)
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: key-order scan after random updates")
    Term.(const run $ scale_arg $ txns_arg 20_000 $ seed_arg $ json_arg)

let fig7_cmd =
  let run scale txns nseeds json =
    let seeds = List.init nseeds (fun i -> i + 1) in
    let fig4 = Fig4.run ~tps_scale:scale ~txns ~seeds () in
    let fig6 = Fig6.run ~tps_scale:scale ~txns () in
    let f = Fig7.of_measurements ~fig4 ~fig6 in
    Fig7.print f;
    if json then
      (* Figure 7 is derived; ship the source measurements (and their
         metrics) alongside so the artifact stands on its own. *)
      emit_bench ~name:"fig7" ~config:fig4.Fig4.config
        (Json.Obj
           [
             ("fig7", Fig7.to_json f);
             ( "sources",
               Json.Obj
                 [ ("fig4", Fig4.to_json fig4); ("fig6", Fig6.to_json fig6) ] );
           ])
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Figure 7: transaction/scan trade-off crossover")
    Term.(const run $ scale_arg $ txns_arg 20_000 $ seeds_arg $ json_arg)

let ablation_cmd =
  let which =
    let doc = "Which ablation: tas, cleaner, policy, group-commit, coalesce, mpl, or all." in
    Arg.(value & pos 0 string "all" & info [] ~docv:"NAME" ~doc)
  in
  let run name scale txns =
    let all =
      [
        ("tas", fun () -> Ablation.test_and_set ~tps_scale:scale ~txns ());
        ("cleaner", fun () -> Ablation.cleaner_placement ~tps_scale:scale ~txns ());
        ("policy", fun () -> Ablation.cleaning_policy ~tps_scale:scale ~txns ());
        ("group-commit", fun () -> Ablation.group_commit ~tps_scale:scale ~txns ());
        ("mpl", fun () -> Ablation.multiprogramming ~tps_scale:scale ~txns ());
      ]
    in
    match name with
    | "all" ->
      List.iter (fun (_, f) -> Ablation.print (f ())) all;
      Ablation.print_coalescing (Ablation.coalescing ~tps_scale:scale ~txns ())
    | "coalesce" ->
      Ablation.print_coalescing (Ablation.coalescing ~tps_scale:scale ~txns ())
    | _ -> (
      match List.assoc_opt name all with
      | Some f -> Ablation.print (f ())
      | None -> prerr_endline ("unknown ablation: " ^ name))
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablations (test-and-set, cleaner, ...)")
    Term.(const run $ which $ scale_arg $ txns_arg 10_000)

(* Ad hoc TPC-B *)
let setup_arg =
  let doc = "Configuration: readopt-user, lfs-user, or lfs-kernel." in
  Arg.(value & opt string "lfs-kernel" & info [ "setup" ] ~docv:"SETUP" ~doc)

let parse_setup = function
  | "readopt-user" -> Expcommon.Readopt_user
  | "lfs-user" -> Expcommon.Lfs_user
  | "lfs-kernel" -> Expcommon.Lfs_kernel
  | s -> failwith ("unknown setup: " ^ s)

let mpl_arg =
  let doc =
    "Multiprogramming level: number of concurrent simulated transaction \
     processes. 1 uses the classic single-user driver; above 1 the run \
     executes on the discrete-event scheduler."
  in
  Arg.(value & opt int 1 & info [ "mpl" ] ~docv:"N" ~doc)

let tpcb_cmd =
  let run setup scale txns seed mpl ndisks log_disk log_streams grain =
    let setup = parse_setup setup in
    let config =
      with_grain (parse_grain grain)
        (with_disks ~ndisks ~log_disk ~log_streams
           (Config.scaled ~factor:(float_of_int scale /. 10.0) Config.default))
    in
    let r =
      if mpl <= 1 then
        Expcommon.run_tpcb ~config ~scale:(Tpcb.scale_for_tps scale) ~txns
          ~seed setup
      else begin
        let r, multi =
          Expcommon.run_tpcb_mpl ~config ~scale:(Tpcb.scale_for_tps scale)
            ~txns ~seed ~mpl setup
        in
        Printf.printf "mpl %d: %d lock block(s), %d deadlock(s), %d restart(s)\n"
          mpl multi.Tpcb.conflicts multi.Tpcb.deadlocks multi.Tpcb.restarts;
        r
      end
    in
    Printf.printf
      "%s: %d txns in %.1f simulated seconds = %.2f TPS (max latency %.3fs, \
       cleaner stall %.1fs)\n"
      (Expcommon.setup_label setup)
      r.Expcommon.result.Tpcb.txns r.Expcommon.result.Tpcb.elapsed_s
      r.Expcommon.result.Tpcb.tps r.Expcommon.result.Tpcb.max_latency_s
      r.Expcommon.cleaner_stall_s
  in
  Cmd.v
    (Cmd.info "tpcb" ~doc:"Run TPC-B on one configuration and report TPS")
    Term.(
      const run $ setup_arg $ scale_arg $ txns_arg 10_000 $ seed_arg $ mpl_arg
      $ ndisks_arg $ log_disk_arg $ log_streams_arg $ lock_grain_arg)

(* MPL x group-commit sweep on the discrete-event scheduler. *)
let mplsweep_cmd =
  let mpls_arg =
    let doc = "Comma-separated multiprogramming levels to sweep." in
    Arg.(value & opt string "1,2,4,8,16" & info [ "mpls" ] ~docv:"LIST" ~doc)
  in
  let groups_arg =
    let doc =
      "Comma-separated group-commit configurations as size:timeout_ms pairs \
       (size 1 / timeout 0 forces every commit)."
    in
    Arg.(value & opt string "1:0,4:50,8:100" & info [ "groups" ] ~docv:"LIST" ~doc)
  in
  let setup_arg =
    (* lfs-user, not the shared default: record granularity changes
       behaviour end to end only in the user-level system. *)
    let doc = "Configuration: readopt-user, lfs-user, or lfs-kernel." in
    Arg.(value & opt string "lfs-user" & info [ "setup" ] ~docv:"SETUP" ~doc)
  in
  let grains_arg =
    let doc = "Comma-separated lock granularities to sweep (page, record)." in
    Arg.(value & opt string "page,record" & info [ "grains" ] ~docv:"LIST" ~doc)
  in
  let run setup scale txns seed mpls groups grains json ndisks log_disk =
    let setup = parse_setup setup in
    let parse_list name conv s =
      List.map
        (fun item ->
          try conv (String.trim item)
          with _ ->
            prerr_endline ("mplsweep: bad " ^ name ^ " element: " ^ item);
            exit 2)
        (String.split_on_char ',' s)
    in
    let mpls = parse_list "mpls" int_of_string mpls in
    let grains = parse_list "grains" Mplsweep.grain_of_string grains in
    let groups =
      parse_list "groups"
        (fun item ->
          match String.split_on_char ':' item with
          | [ size; ms ] ->
            (int_of_string size, float_of_string ms /. 1000.0)
          | _ -> failwith "expected size:timeout_ms")
        groups
    in
    let config =
      with_disks ~ndisks ~log_disk
        (Config.scaled ~factor:(float_of_int scale /. 10.0) Config.default)
    in
    let s =
      Mplsweep.run ~config ~tps_scale:scale ~txns ~seed ~mpls ~groups ~grains
        ~setup ()
    in
    Mplsweep.print s;
    if json then
      emit_bench ~name:"mplsweep" ~config:s.Mplsweep.config
        (Mplsweep.to_json s)
  in
  Cmd.v
    (Cmd.info "mplsweep"
       ~doc:
         "Sweep multiprogramming level x group-commit configuration x lock \
          granularity on the discrete-event scheduler and report TPS, commit \
          batch sizes, lock blocks and deadlocks")
    Term.(
      const run $ setup_arg $ scale_arg $ txns_arg 2_000 $ seed_arg $ mpls_arg
      $ groups_arg $ grains_arg $ json_arg $ ndisks_arg $ log_disk_arg)

(* Disk-placement sweep: dedicated log spindle and striped segments. *)
let disksweep_cmd =
  let mpls_arg =
    let doc = "Comma-separated multiprogramming levels to sweep." in
    Arg.(value & opt string "1,8" & info [ "mpls" ] ~docv:"LIST" ~doc)
  in
  (* Default to lfs-user: the WAL is where a dedicated log spindle pays
     off. In lfs-kernel the LFS log IS the data, so the spindle only
     carries checkpoints. *)
  let setup_arg =
    let doc = "Configuration: readopt-user, lfs-user, or lfs-kernel." in
    Arg.(value & opt string "lfs-user" & info [ "setup" ] ~docv:"SETUP" ~doc)
  in
  let run setup scale txns seed mpls json =
    let setup = parse_setup setup in
    let mpls =
      List.map
        (fun item ->
          try int_of_string (String.trim item)
          with _ ->
            prerr_endline ("disksweep: bad mpl element: " ^ item);
            exit 2)
        (String.split_on_char ',' mpls)
    in
    let s = Disksweep.run ~tps_scale:scale ~txns ~seed ~mpls ~setup () in
    Disksweep.print s;
    if json then
      emit_bench ~name:"disksweep" ~config:s.Disksweep.config
        (Disksweep.to_json s)
  in
  Cmd.v
    (Cmd.info "disksweep"
       ~doc:
         "Sweep disk placement — one shared spindle, dedicated log spindle, \
          2- and 4-wide segment stripes — under TPC-B and report TPS and \
          per-disk utilization")
    Term.(
      const run $ setup_arg $ scale_arg $ txns_arg 1_000 $ seed_arg $ mpls_arg
      $ json_arg)

(* Parallel-WAL sweep: log-stream count x MPL. *)
let logsweep_cmd =
  let streams_arg =
    let doc = "Comma-separated log-stream counts to sweep." in
    Arg.(value & opt string "1,2,4" & info [ "streams" ] ~docv:"LIST" ~doc)
  in
  let mpls_arg =
    let doc = "Comma-separated multiprogramming levels to sweep." in
    Arg.(value & opt string "8,16" & info [ "mpls" ] ~docv:"LIST" ~doc)
  in
  let setup_arg =
    (* lfs-user: the WAL (and so the stream count) only exists in the
       user-level systems. *)
    let doc = "Configuration: readopt-user or lfs-user." in
    Arg.(value & opt string "lfs-user" & info [ "setup" ] ~docv:"SETUP" ~doc)
  in
  let run setup scale txns seed streams mpls json =
    let setup = parse_setup setup in
    let parse_list name s =
      List.map
        (fun item ->
          try int_of_string (String.trim item)
          with _ ->
            prerr_endline ("logsweep: bad " ^ name ^ " element: " ^ item);
            exit 2)
        (String.split_on_char ',' s)
    in
    let streams = parse_list "streams" streams in
    let mpls = parse_list "mpls" mpls in
    let s = Logsweep.run ~tps_scale:scale ~txns ~seed ~streams ~mpls ~setup () in
    Logsweep.print s;
    if json then
      emit_bench ~name:"logsweep" ~config:s.Logsweep.config (Logsweep.to_json s)
  in
  Cmd.v
    (Cmd.info "logsweep"
       ~doc:
         "Sweep the parallel-WAL stream count under TPC-B (one log spindle \
          per stream) and report TPS, commit batching, cross-stream \
          dependency forces and per-stream force latency")
    Term.(
      const run $ setup_arg $ scale_arg $ txns_arg 1_500 $ seed_arg
      $ streams_arg $ mpls_arg $ json_arg)

let cleanersweep_cmd =
  let utils_arg =
    let doc = "Comma-separated disk utilizations (percent) to sweep." in
    Arg.(value & opt string "50,70,80,90" & info [ "utils" ] ~docv:"LIST" ~doc)
  in
  let mpls_arg =
    let doc = "Comma-separated multiprogramming levels to sweep." in
    Arg.(value & opt string "1,8" & info [ "mpls" ] ~docv:"LIST" ~doc)
  in
  let arms_arg =
    let doc =
      "Comma-separated cleaner arms: any of greedy, greedy+seg, \
       cost-benefit, cost-benefit+seg."
    in
    Arg.(
      value
      & opt string "greedy,greedy+seg,cost-benefit,cost-benefit+seg"
      & info [ "arms" ] ~docv:"LIST" ~doc)
  in
  let run scale txns seed utils mpls arms json =
    let parse_ints name s =
      List.map
        (fun item ->
          try int_of_string (String.trim item)
          with _ ->
            prerr_endline ("cleanersweep: bad " ^ name ^ " element: " ^ item);
            exit 2)
        (String.split_on_char ',' s)
    in
    let utils = parse_ints "utils" utils in
    let mpls = parse_ints "mpls" mpls in
    let arms =
      List.map
        (fun item ->
          match String.trim item with
          | "greedy" -> { Cleanersweep.policy = `Greedy; segregate = false }
          | "greedy+seg" -> { Cleanersweep.policy = `Greedy; segregate = true }
          | "cost-benefit" ->
            { Cleanersweep.policy = `Cost_benefit; segregate = false }
          | "cost-benefit+seg" ->
            { Cleanersweep.policy = `Cost_benefit; segregate = true }
          | other ->
            prerr_endline ("cleanersweep: bad arms element: " ^ other);
            exit 2)
        (String.split_on_char ',' arms)
    in
    let s = Cleanersweep.run ~tps_scale:scale ~txns ~seed ~utils ~mpls ~arms () in
    Cleanersweep.print s;
    if json then
      emit_bench ~name:"cleanersweep" ~config:s.Cleanersweep.config
        (Cleanersweep.to_json s)
  in
  Cmd.v
    (Cmd.info "cleanersweep"
       ~doc:
         "Sweep disk utilization x MPL x cleaner victim policy x hot/cold \
          segregation under TPC-B (kernel-embedded setup) and report TPS, \
          cleaner stall p99 and per-victim write cost")
    Term.(
      const run $ scale_arg $ txns_arg 1_000 $ seed_arg $ utils_arg $ mpls_arg
      $ arms_arg $ json_arg)

(* Event tracing: run TPC-B with the trace ring attached and dump it. *)
let trace_cmd =
  let out_arg =
    let doc = "Write the JSONL trace to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let cap_arg =
    let doc =
      "Trace ring capacity; once full, the oldest events are dropped (the \
       summary line reports how many)."
    in
    Arg.(value & opt int 65_536 & info [ "cap" ] ~docv:"N" ~doc)
  in
  let run setup scale txns seed out cap mpl ndisks log_disk grain =
    let setup = parse_setup setup in
    let config =
      with_grain (parse_grain grain)
        (with_disks ~ndisks ~log_disk
           (Config.scaled ~factor:(float_of_int scale /. 10.0) Config.default))
    in
    let r =
      if mpl <= 1 then
        Expcommon.run_tpcb ~trace:cap ~config
          ~scale:(Tpcb.scale_for_tps scale) ~txns ~seed setup
      else
        fst
          (Expcommon.run_tpcb_mpl ~trace:cap ~config
             ~scale:(Tpcb.scale_for_tps scale) ~txns ~seed ~mpl setup)
    in
    match Stats.trace r.Expcommon.stats with
    | None -> prerr_endline "trace: no events captured"
    | Some tr ->
      (match out with
      | None -> Trace.output stdout tr
      | Some file ->
        let oc = open_out file in
        Trace.output oc tr;
        close_out oc);
      Printf.eprintf "trace: %d event(s), %d dropped (ring cap %d)\n"
        (Trace.length tr) (Trace.dropped tr) cap
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run TPC-B with event tracing enabled and emit the structured trace \
          as JSONL (one event per line, keyed by simulated time); --mpl \
          captures multi-process interleavings")
    Term.(
      const run $ setup_arg $ scale_arg $ txns_arg 1_000 $ seed_arg $ out_arg
      $ cap_arg $ mpl_arg $ ndisks_arg $ log_disk_arg $ lock_grain_arg)

(* Schema check for BENCH_*.json artifacts (used by CI to reject empty or
   malformed benchmark output). *)
let bench_check_cmd =
  let files_arg =
    let doc = "BENCH_*.json files to validate." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let rec collect key j acc =
    match j with
    | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let acc = if k = key then v :: acc else acc in
          collect key v acc)
        acc kvs
    | Json.List l -> List.fold_left (fun acc v -> collect key v acc) acc l
    | _ -> acc
  in
  let check file =
    let contents =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
    (match Json.of_string_opt contents with
    | None -> err "not valid JSON"
    | Some doc ->
      (match Json.member "meta" doc with
      | None -> err "missing meta object"
      | Some meta ->
        (match Json.member "name" meta with
        | Some (Json.Str n) when n <> "" -> ()
        | _ -> err "meta.name missing or empty");
        (match Json.member "config" meta with
        | Some (Json.Obj (_ :: _)) -> ()
        | _ -> err "meta.config missing or empty"));
      if Json.member "data" doc = None then err "missing data object";
      let counters =
        List.concat_map
          (function Json.Obj kvs -> kvs | _ -> [])
          (collect "counters" doc [])
      in
      let nonzero =
        List.exists (function _, Json.Int n -> n > 0 | _ -> false) counters
      in
      if counters = [] then err "no counters anywhere in the document"
      else if not nonzero then err "all counters are zero";
      let histos =
        List.concat_map
          (function Json.Obj kvs -> kvs | _ -> [])
          (collect "histograms" doc [])
      in
      if histos = [] then err "no histograms anywhere in the document"
      else
        List.iter
          (fun (name, h) ->
            List.iter
              (fun field ->
                if Json.member field h = None then
                  err "histogram %s missing field %s" name field)
              [ "count"; "p50"; "p95"; "p99"; "max"; "buckets" ])
          histos;
      (* mplsweep artifacts additionally promise per-point sweep fields
         and that group commit demonstrably batched once MPL and group
         size allow it. *)
      (match Json.member "meta" doc with
      | Some meta when Json.member "name" meta = Some (Json.Str "mplsweep") -> (
        let points =
          match Json.member "data" doc with
          | Some data -> (
            match Json.member "points" data with
            | Some (Json.List ps) -> ps
            | _ -> [])
          | None -> []
        in
        if points = [] then err "mplsweep: data.points missing or empty"
        else begin
          List.iter
            (fun p ->
              List.iter
                (fun field ->
                  if Json.member field p = None then
                    err "mplsweep point missing field %s" field)
                [
                  "mpl";
                  "group_size";
                  "group_timeout_s";
                  "lock_grain";
                  "tps";
                  "mean_commit_batch";
                  "group_flushes";
                  "lock_wait_p99_s";
                ])
            points;
          let num = function
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> 0.0
          in
          let batching_possible =
            List.exists
              (fun p ->
                num (Json.member "mpl" p) > 1.0
                && num (Json.member "group_size" p) > 1.0)
              points
          in
          let max_batch =
            List.fold_left
              (fun acc p -> Float.max acc (num (Json.member "mean_commit_batch" p)))
              0.0 points
          in
          if batching_possible && max_batch <= 1.0 then
            err
              "mplsweep: no point achieved a mean commit batch > 1 despite \
               MPL > 1 and group size > 1";
          (* Where both endpoints exist for a grouped configuration (at
             the same lock granularity — legacy artifacts carry none and
             still match), MPL 8 must beat MPL 1. *)
          List.iter
            (fun p8 ->
              if
                num (Json.member "mpl" p8) = 8.0
                && num (Json.member "group_size" p8) > 1.0
              then
                List.iter
                  (fun p1 ->
                    if
                      num (Json.member "mpl" p1) = 1.0
                      && Json.member "group_size" p1
                         = Json.member "group_size" p8
                      && Json.member "lock_grain" p1
                         = Json.member "lock_grain" p8
                      && num (Json.member "tps" p8)
                         <= num (Json.member "tps" p1)
                    then
                      err
                        "mplsweep: TPS at MPL 8 (%.2f) not above MPL 1 (%.2f) \
                         for group size %g"
                        (num (Json.member "tps" p8))
                        (num (Json.member "tps" p1))
                        (num (Json.member "group_size" p8)))
                  points)
            points;
          (* Record granularity is the point of hierarchical locking:
             where both grains were swept, record must out-run page at
             MPL 16 (the contention end of the sweep). *)
          let grain_at g p =
            Json.member "lock_grain" p = Some (Json.Str g)
            && num (Json.member "mpl" p) = 16.0
          in
          List.iter
            (fun pr ->
              if grain_at "record" pr then
                List.iter
                  (fun pp ->
                    if
                      grain_at "page" pp
                      && Json.member "group_size" pp
                         = Json.member "group_size" pr
                      && num (Json.member "tps" pr)
                         <= num (Json.member "tps" pp)
                    then
                      err
                        "mplsweep: record-grain TPS at MPL 16 (%.2f) not \
                         above page grain (%.2f) for group size %g"
                        (num (Json.member "tps" pr))
                        (num (Json.member "tps" pp))
                        (num (Json.member "group_size" pr)))
                  points)
            points
        end)
      | _ -> ());
      (* disksweep artifacts promise per-point placement fields, that the
         dedicated log spindle and the stripe beat the shared single disk
         at MPL 8, and that the stripe actually spreads the load. *)
      (match Json.member "meta" doc with
      | Some meta when Json.member "name" meta = Some (Json.Str "disksweep") ->
        let points =
          match Json.member "data" doc with
          | Some data -> (
            match Json.member "points" data with
            | Some (Json.List ps) -> ps
            | _ -> [])
          | None -> []
        in
        if points = [] then err "disksweep: data.points missing or empty"
        else begin
          List.iter
            (fun p ->
              List.iter
                (fun field ->
                  if Json.member field p = None then
                    err "disksweep point missing field %s" field)
                [ "label"; "ndisks"; "log_disk"; "mpl"; "tps"; "disks" ])
            points;
          let num = function
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> 0.0
          in
          let at ~ndisks ~log_disk ~mpl =
            List.find_opt
              (fun p ->
                num (Json.member "ndisks" p) = float_of_int ndisks
                && Json.member "log_disk" p = Some (Json.Bool log_disk)
                && num (Json.member "mpl" p) = float_of_int mpl)
              points
          in
          let require_faster ~what a b =
            if num (Json.member "tps" a) <= num (Json.member "tps" b) then
              err "disksweep: TPS(%s) (%.2f) not above TPS(1 shared) (%.2f) \
                   at MPL 8"
                what
                (num (Json.member "tps" a))
                (num (Json.member "tps" b))
          in
          (match (at ~ndisks:1 ~log_disk:false ~mpl:8,
                  at ~ndisks:1 ~log_disk:true ~mpl:8) with
          | Some shared, Some dedicated ->
            require_faster ~what:"1+log" dedicated shared
          | _ -> ());
          (match (at ~ndisks:1 ~log_disk:false ~mpl:8,
                  at ~ndisks:4 ~log_disk:true ~mpl:8) with
          | Some shared, Some stripe ->
            require_faster ~what:"4+log" stripe shared
          | _ -> ());
          (* Per-disk busy times of a 4-wide stripe must lie within 2x of
             each other — the round-robin layout has no hot spindle. *)
          List.iter
            (fun p ->
              if num (Json.member "ndisks" p) = 4.0 then
                match Json.member "disks" p with
                | Some (Json.List ds) ->
                  let busies =
                    List.filter_map
                      (fun d ->
                        match Json.member "disk" d with
                        | Some (Json.Str name) when name <> "disklog" ->
                          Some (num (Json.member "busy_s" d))
                        | _ -> None)
                      ds
                  in
                  let hi = List.fold_left Float.max 0.0 busies in
                  let lo = List.fold_left Float.min infinity busies in
                  if busies <> [] && hi > 2.0 *. lo then
                    err
                      "disksweep: 4-disk stripe busy times unbalanced at MPL \
                       %g (max %.2fs > 2x min %.2fs)"
                      (num (Json.member "mpl" p))
                      hi lo
                | _ -> ())
            points
        end
      | _ -> ());
      (* logsweep artifacts promise per-point stream-sweep fields, that
         parallel streams pay off at the contended end (4 streams beat 1
         at MPL 16), and that every point carries its per-stream
         force-latency p99. *)
      (match Json.member "meta" doc with
      | Some meta when Json.member "name" meta = Some (Json.Str "logsweep") ->
        let points =
          match Json.member "data" doc with
          | Some data -> (
            match Json.member "points" data with
            | Some (Json.List ps) -> ps
            | _ -> [])
          | None -> []
        in
        if points = [] then err "logsweep: data.points missing or empty"
        else begin
          List.iter
            (fun p ->
              List.iter
                (fun field ->
                  if Json.member field p = None then
                    err "logsweep point missing field %s" field)
                [
                  "streams";
                  "mpl";
                  "tps";
                  "mean_commit_batch";
                  "dep_checks";
                  "dep_forces";
                  "force_p99";
                ];
              (match Json.member "force_p99" p with
              | Some (Json.List (_ :: _ as l)) ->
                List.iter
                  (fun entry ->
                    if
                      Json.member "stream" entry = None
                      || Json.member "p99_s" entry = None
                    then err "logsweep: force_p99 entry missing stream/p99_s")
                  l
              | Some (Json.List []) -> err "logsweep: force_p99 empty"
              | _ -> ()))
            points;
          let num = function
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> 0.0
          in
          let at ~streams ~mpl =
            List.find_opt
              (fun p ->
                num (Json.member "streams" p) = float_of_int streams
                && num (Json.member "mpl" p) = float_of_int mpl)
              points
          in
          match (at ~streams:1 ~mpl:16, at ~streams:4 ~mpl:16) with
          | Some one, Some four ->
            if num (Json.member "tps" four) <= num (Json.member "tps" one)
            then
              err
                "logsweep: TPS(4 streams) (%.2f) not above TPS(1 stream) \
                 (%.2f) at MPL 16"
                (num (Json.member "tps" four))
                (num (Json.member "tps" one))
          | _ -> ()
        end
      | _ -> ());
      (* cleanersweep artifacts promise per-point sweep fields, consistent
         cleaner accounting (every cleaned segment observed exactly once),
         and the headline claim: cost-benefit with segregation degrades
         less from the emptiest to the fullest disk than greedy without,
         at the contended end of the sweep (MPL 8). *)
      (match Json.member "meta" doc with
      | Some meta when Json.member "name" meta = Some (Json.Str "cleanersweep")
        ->
        let points =
          match Json.member "data" doc with
          | Some data -> (
            match Json.member "points" data with
            | Some (Json.List ps) -> ps
            | _ -> [])
          | None -> []
        in
        if points = [] then err "cleanersweep: data.points missing or empty"
        else begin
          let num = function
            | Some (Json.Float f) -> f
            | Some (Json.Int i) -> float_of_int i
            | _ -> 0.0
          in
          List.iter
            (fun p ->
              List.iter
                (fun field ->
                  if Json.member field p = None then
                    err "cleanersweep point missing field %s" field)
                [
                  "util_pct";
                  "mpl";
                  "policy";
                  "segregate";
                  "tps";
                  "stall_p99_s";
                  "write_cost";
                  "segments_cleaned";
                  "cleans_observed";
                ];
              (* Dead-segment reclaims must still be observed: the clean
                 histogram and the segment counter move in lock step. *)
              let cleaned = num (Json.member "segments_cleaned" p) in
              let observed = num (Json.member "cleans_observed" p) in
              if cleaned <> observed then
                err
                  "cleanersweep: segments_cleaned (%g) != cleans_observed \
                   (%g) at util %g%% mpl %g (%s)"
                  cleaned observed
                  (num (Json.member "util_pct" p))
                  (num (Json.member "mpl" p))
                  (match Json.member "arm" p with
                  | Some (Json.Str a) -> a
                  | _ -> "?"))
            points;
          let at ~policy ~segregate ~util ~mpl =
            List.find_opt
              (fun p ->
                Json.member "policy" p = Some (Json.Str policy)
                && Json.member "segregate" p = Some (Json.Bool segregate)
                && num (Json.member "util_pct" p) = float_of_int util
                && num (Json.member "mpl" p) = float_of_int mpl)
              points
          in
          let utils =
            List.sort_uniq compare
              (List.map (fun p -> num (Json.member "util_pct" p)) points)
          in
          match (utils, List.rev utils) with
          | lo :: _, hi :: _ when lo <> hi -> (
            let lo = int_of_float lo and hi = int_of_float hi in
            let retention ~policy ~segregate =
              match
                ( at ~policy ~segregate ~util:lo ~mpl:8,
                  at ~policy ~segregate ~util:hi ~mpl:8 )
              with
              | Some plo, Some phi when num (Json.member "tps" plo) > 0.0 ->
                Some
                  (num (Json.member "tps" phi)
                  /. num (Json.member "tps" plo))
              | _ -> None
            in
            match
              ( retention ~policy:"cost-benefit" ~segregate:true,
                retention ~policy:"greedy" ~segregate:false )
            with
            | Some cb, Some greedy ->
              if cb <= greedy then
                err
                  "cleanersweep: cost-benefit+seg keeps %.1f%% of its \
                   %d%%-full TPS at %d%% full (MPL 8) — not above greedy's \
                   %.1f%%"
                  (100.0 *. cb) lo hi (100.0 *. greedy)
            | _ -> ())
          | _ -> ()
        end
      | _ -> ()));
    match !errors with
    | [] ->
      Printf.printf "%s: ok\n" file;
      true
    | es ->
      List.iter (fun e -> Printf.printf "%s: %s\n" file e) (List.rev es);
      false
  in
  let run files =
    let ok = List.fold_left (fun acc f -> check f && acc) true files in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Validate BENCH_*.json artifacts: schema envelope present, at least \
          one non-zero counter, and every histogram carries count and \
          p50/p95/p99/max")
    Term.(const run $ files_arg)

(* LFS inspection: build a small fs, exercise it, dump segment usage. *)
let lfsdump_cmd =
  let run () =
    let cfg = Config.scaled ~factor:0.1 Config.default in
    let clock = Clock.create () in
    let stats = Stats.create () in
    let disks = Diskset.create clock stats cfg in
    let fs = Lfs.format disks clock stats cfg in
    let v = Lfs.vfs fs in
    let rng = Rng.create ~seed:1 in
    for i = 0 to 19 do
      let fd = v.Vfs.create (Printf.sprintf "/file%02d" i) in
      let data = Bytes.create (4096 * (1 + Rng.int rng 32)) in
      v.Vfs.write fd ~off:0 data
    done;
    Lfs.sync fs;
    Printf.printf "segments: %d   free: %d\n" (Lfs.nsegments fs)
      (Lfs.free_segments fs);
    Printf.printf "segment live-block counts:\n";
    for i = 0 to Lfs.nsegments fs - 1 do
      let l = Lfs.live_blocks fs i in
      if l > 0 then Printf.printf "  seg %3d: %d live\n" i l
    done;
    Format.printf "%a@." Stats.pp stats
  in
  Cmd.v
    (Cmd.info "lfs-dump" ~doc:"Build a demo LFS image and dump segment usage")
    Term.(const run $ const ())

let fsck_cmd =
  let run () =
    let cfg = Config.scaled ~factor:0.1 Config.default in
    let clock = Clock.create () in
    let stats = Stats.create () in
    let disk = Disk.create clock stats cfg.Config.disk in
    let fs = Ffs.format disk clock stats cfg in
    let v = Ffs.vfs fs in
    let fd = v.Vfs.create "/data" in
    v.Vfs.write fd ~off:0 (Bytes.create 100_000);
    v.Vfs.fsync fd;
    Ffs.crash fs;
    let fs = Ffs.mount disk clock stats cfg in
    let r = Ffs.fsck fs in
    Printf.printf
      "fsck: %d inodes scanned, %d leaked blocks, %d cross-allocated, fixed=%b\n"
      r.Ffs.scanned_inodes r.Ffs.leaked_blocks r.Ffs.cross_allocated r.Ffs.fixed
  in
  Cmd.v
    (Cmd.info "ffs-fsck" ~doc:"Demonstrate FFS crash + fsck repair")
    Term.(const run $ const ())

let snapshot_cmd =
  let run () =
    let cfg = Config.scaled ~factor:0.1 Config.default in
    let clock = Clock.create () in
    let stats = Stats.create () in
    let disks = Diskset.create clock stats cfg in
    let fs = Lfs.format disks clock stats cfg in
    let v = Lfs.vfs fs in
    let fd = v.Vfs.create "/journal" in
    v.Vfs.write fd ~off:0 (Bytes.of_string "day 1: all is well");
    let snap = Lfs.snapshot fs in
    Printf.printf "snapshot taken; %d segment(s) free for new writes\n"
      (Lfs.free_segments fs);
    v.Vfs.write fd ~off:0 (Bytes.of_string "day 2: overwritten!");
    v.Vfs.remove "/journal";
    v.Vfs.sync ();
    Printf.printf "present: /journal exists = %b\n" (v.Vfs.exists "/journal");
    let old = Lfs.snapshot_view fs snap in
    Printf.printf "snapshot: /journal exists = %b, contents = %S\n"
      (old.Vfs.exists "/journal")
      (Bytes.to_string
         (old.Vfs.read (old.Vfs.open_file "/journal") ~off:0 ~len:100));
    Lfs.release_snapshot fs snap;
    print_endline "snapshot released; segments returned to the cleaner"
  in
  Cmd.v
    (Cmd.info "snapshot-demo"
       ~doc:"Demonstrate snapshots and undelete on the no-overwrite log")
    Term.(const run $ const ())

(* Crash-point sweeps: exhaustive fault injection over a seeded
   workload, or a single replay of one reported (seed, crash_point). *)
let faultsim_cmd =
  let backend_arg =
    let doc = "Backend: lfs-kernel, lfs-user, or ffs-user." in
    Arg.(value & opt string "lfs-kernel" & info [ "backend" ] ~docv:"B" ~doc)
  in
  let points_arg =
    let doc = "Number of evenly spaced crash points (0 = every write)." in
    Arg.(value & opt int 0 & info [ "points" ] ~docv:"N" ~doc)
  in
  let crash_point_arg =
    let doc =
      "Replay a single run that crashes after exactly $(docv) block writes \
       (skips the sweep)."
    in
    Arg.(value & opt (some int) None & info [ "crash-point" ] ~docv:"N" ~doc)
  in
  let workload_arg =
    let doc = "Workload: pages (random transactional page writes) or tpcb." in
    Arg.(value & opt string "tpcb" & info [ "workload" ] ~docv:"W" ~doc)
  in
  let verbose_arg =
    let doc = "Print every run's outcome, not just violations." in
    Arg.(value & flag & info [ "verbose" ] ~doc)
  in
  let run backend workload txns seed points crash_point verbose mpl ndisks
      log_disk log_streams grain =
    let usage msg =
      prerr_endline ("txnlfs faultsim: " ^ msg);
      exit 2
    in
    let backend =
      try Sweep.backend_of_string backend
      with Invalid_argument _ ->
        usage ("unknown backend " ^ backend ^ " (lfs-kernel, lfs-user, ffs-user)")
    in
    let one, swp =
      match (workload, mpl) with
      | "pages", 1 ->
        ( Sweep.run_one ~ndisks ~log_disk ~log_streams,
          Sweep.sweep ~ndisks ~log_disk ~log_streams )
      | "pages", _ -> usage "--mpl applies to the tpcb workload only"
      | "tpcb", 1 ->
        ( Sweep.run_one_tpcb ~ndisks ~log_disk ~log_streams,
          Sweep.sweep_tpcb ~ndisks ~log_disk ~log_streams )
      | "tpcb", _ ->
        let lock_grain = parse_grain grain in
        ( (fun backend ~seed ~txns ?crash_point () ->
            Sweep.run_one_tpcb_mpl ~ndisks ~log_disk ~log_streams ~lock_grain
              backend ~seed ~txns ~mpl ?crash_point ()),
          fun ?progress backend ~seed ~txns ~points ->
            Sweep.sweep_tpcb_mpl ?progress ~ndisks ~log_disk ~log_streams
              ~lock_grain backend ~seed ~txns ~mpl ~points )
      | w, _ -> usage ("unknown workload " ^ w ^ " (pages, tpcb)")
    in
    if parse_grain grain = `Record && (workload <> "tpcb" || mpl = 1) then
      usage "--lock-grain record applies to the tpcb workload at --mpl > 1";
    match crash_point with
    | Some p ->
      let o = one backend ~seed ~txns ~crash_point:p () in
      print_endline (Sweep.describe o);
      if o.Sweep.violations <> [] then exit 1
    | None ->
      let progress o = if verbose then print_endline (Sweep.describe o) in
      let r = swp ~progress backend ~seed ~txns ~points in
      List.iter (fun o -> print_endline (Sweep.describe o)) r.Sweep.failures;
      Printf.printf
        "%s/%s seed=%d: swept %d of %d crash points, %d violation(s)\n"
        (Sweep.backend_name backend)
        workload seed r.Sweep.points_run r.Sweep.total_writes
        (List.length r.Sweep.failures);
      if r.Sweep.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:
         "Crash after every k-th disk write, recover, and check the \
          durability oracle")
    Term.(
      const run $ backend_arg $ workload_arg $ txns_arg 25 $ seed_arg
      $ points_arg $ crash_point_arg $ verbose_arg $ mpl_arg $ ndisks_arg
      $ log_disk_arg $ log_streams_arg $ lock_grain_arg)

let main =
  Cmd.group
    (Cmd.info "txnlfs" ~version:"1.0.0"
       ~doc:
         "Reproduction of Seltzer's 'Transaction Support in a Log-Structured \
          File System' (ICDE 1993)")
    [
      fig4_cmd;
      fig5_cmd;
      fig6_cmd;
      fig7_cmd;
      ablation_cmd;
      tpcb_cmd;
      mplsweep_cmd;
      disksweep_cmd;
      logsweep_cmd;
      cleanersweep_cmd;
      trace_cmd;
      bench_check_cmd;
      lfsdump_cmd;
      fsck_cmd;
      snapshot_cmd;
      faultsim_cmd;
    ]

let () = exit (Cmd.eval main)
