lib/disk/disk.mli: Clock Config Stats
