lib/disk/sched.mli:
