lib/disk/disk.ml: Bytes Clock Config Printf Stats
