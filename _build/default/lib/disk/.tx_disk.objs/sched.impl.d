lib/disk/sched.ml: Int List
