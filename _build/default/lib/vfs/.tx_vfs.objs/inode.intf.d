lib/vfs/inode.mli: Hashtbl Vfs
