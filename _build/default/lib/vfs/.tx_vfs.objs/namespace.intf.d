lib/vfs/namespace.mli: Vfs
