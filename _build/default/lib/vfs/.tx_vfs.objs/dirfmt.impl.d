lib/vfs/dirfmt.ml: Bytes Enc List String Vfs
