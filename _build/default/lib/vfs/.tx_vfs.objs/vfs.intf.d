lib/vfs/vfs.mli: Format
