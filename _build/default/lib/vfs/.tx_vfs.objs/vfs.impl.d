lib/vfs/vfs.ml: Format Printexc Printf
