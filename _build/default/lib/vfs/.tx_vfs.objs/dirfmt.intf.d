lib/vfs/dirfmt.mli: Vfs
