lib/vfs/namespace.ml: Bytes Dirfmt List String Vfs
