lib/vfs/inode.ml: Array Bytes Enc Hashtbl Int64 List Vfs
