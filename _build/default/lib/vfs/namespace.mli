(** Hierarchical namespace implemented once over any inode store.

    Both file systems differ in {e where} bytes land on disk, not in how
    paths map to inodes, so path walking, entry insertion/removal and
    directory listing live here, as a functor over the minimal per-file
    byte store each file system already provides. *)

module type STORE = sig
  type t

  val root : t -> int
  (** Inode number of the root directory (which always exists). *)

  val read : t -> int -> off:int -> len:int -> bytes
  val write : t -> int -> off:int -> bytes -> unit
  val truncate : t -> int -> len:int -> unit
  val size : t -> int -> int

  val alloc_inode : t -> kind:Vfs.file_kind -> int
  (** Allocate a fresh, empty inode of the given kind. *)

  val free_inode : t -> int -> unit
  (** Release an inode and all its data blocks. *)
end

module Make (S : STORE) : sig
  val split : string -> string list
  (** Path components of an absolute path.
      @raise Vfs.Error with [Invalid] on empty or relative paths. *)

  val lookup : S.t -> string -> (int * Vfs.file_kind) option
  (** Resolve a path to (inode, kind); [None] if any component is
      missing. The root resolves to [(S.root, Dir)]. *)

  val create : S.t -> string -> kind:Vfs.file_kind -> int
  (** Create the final component (file or directory).
      @raise Vfs.Error [Exists] if the path already exists, [Not_found]
      if the parent is missing, [Not_dir] if the parent is a file. *)

  val remove : S.t -> string -> unit
  (** Remove a file, or an {e empty} directory.
      @raise Vfs.Error [Invalid] when removing a non-empty directory or
      the root. *)

  val readdir : S.t -> string -> (string * Vfs.file_kind) list
  (** Entries of a directory, in insertion order. *)
end
