type fd = int

type file_kind = File | Dir

type stat = { inum : int; size : int; kind : file_kind; protected_ : bool }

type error_code =
  | Not_found
  | Exists
  | Not_dir
  | Is_dir
  | No_space
  | Not_supported
  | Invalid

exception Error of error_code * string

let string_of_error_code = function
  | Not_found -> "not found"
  | Exists -> "already exists"
  | Not_dir -> "not a directory"
  | Is_dir -> "is a directory"
  | No_space -> "no space left on device"
  | Not_supported -> "operation not supported"
  | Invalid -> "invalid argument"

let error code fmt =
  Format.kasprintf (fun msg -> raise (Error (code, msg))) fmt

type t = {
  name : string;
  block_size : int;
  create : string -> fd;
  open_file : string -> fd;
  read : fd -> off:int -> len:int -> bytes;
  write : fd -> off:int -> bytes -> unit;
  truncate : fd -> int -> unit;
  size : fd -> int;
  fsync : fd -> unit;
  sync : unit -> unit;
  remove : string -> unit;
  mkdir : string -> unit;
  readdir : string -> (string * file_kind) list;
  exists : string -> bool;
  stat : string -> stat;
  set_protected : string -> bool -> unit;
}

let () =
  Printexc.register_printer (function
    | Error (code, msg) ->
      Some (Printf.sprintf "Vfs.Error (%s: %s)" (string_of_error_code code) msg)
    | _ -> None)
