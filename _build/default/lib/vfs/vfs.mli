(** File-system interface shared by the log-structured and read-optimized
    file systems.

    The paper's point of comparison is that the {e same} applications (the
    user-level transaction system, TPC-B, the Andrew and Bigfile
    benchmarks) run unchanged on either file system; this record of
    operations is that common system-call surface. A file descriptor is
    simply the file's inode number — the simulation has no per-process
    descriptor table.

    Transaction protection is a file attribute (Section 4): it is set with
    {!field-set_protected} and has an effect only on a file system with an
    embedded transaction manager; others raise [Error (Not_supported, _)]. *)

type fd = int

type file_kind = File | Dir

type stat = { inum : int; size : int; kind : file_kind; protected_ : bool }

type error_code =
  | Not_found
  | Exists
  | Not_dir
  | Is_dir
  | No_space
  | Not_supported
  | Invalid

exception Error of error_code * string

val error : error_code -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error code fmt ...] raises {!Error} with a formatted message. *)

val string_of_error_code : error_code -> string

type t = {
  name : string;  (** "lfs" or "ffs", for reports *)
  block_size : int;
  create : string -> fd;  (** create a regular file; parent must exist *)
  open_file : string -> fd;
  read : fd -> off:int -> len:int -> bytes;
      (** short reads at end-of-file return fewer bytes *)
  write : fd -> off:int -> bytes -> unit;
      (** extends the file if the range ends past the current size *)
  truncate : fd -> int -> unit;
  size : fd -> int;
  fsync : fd -> unit;  (** force the file's dirty blocks to disk *)
  sync : unit -> unit;  (** force all dirty state, including metadata *)
  remove : string -> unit;
  mkdir : string -> unit;
  readdir : string -> (string * file_kind) list;
  exists : string -> bool;
  stat : string -> stat;
  set_protected : string -> bool -> unit;
}
