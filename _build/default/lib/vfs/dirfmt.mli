(** On-disk directory encoding, shared by both file systems.

    A directory's data fork is a flat sequence of entries:
    [u16 name length | u32 inode number | u8 kind | name bytes].
    Directories in the paper's workloads are small (TPC-B uses four files;
    the Andrew tree has a few dozen entries per directory), so the codecs
    work on the whole fork at once. *)

type entry = { name : string; inum : int; kind : Vfs.file_kind }

val encode : entry list -> bytes

val decode : bytes -> entry list
(** @raise Vfs.Error with [Invalid] on a corrupt encoding. *)

val max_name : int
(** Longest permitted entry name (255, as in FFS). *)
