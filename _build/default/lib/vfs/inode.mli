(** LFS inodes: the index structure of Section 2.

    On disk an inode is a fixed 256-byte record holding file attributes
    (including the transaction-protected bit of Section 4.1), 12 direct
    block addresses, one single-indirect address and one double-indirect
    address. In memory we additionally materialize the full
    logical-block → disk-address map so that reads, the cleaner's
    liveness test and the segment writer are all array lookups; indirect
    blocks are (re)generated from the map when the inode is written into
    a segment, and only the dirty ones are rewritten. *)

type t = {
  inum : int;
  mutable kind : Vfs.file_kind;
  mutable protected_ : bool;
  mutable size : int;  (** bytes *)
  mutable mtime : float;
  mutable version : int;  (** bumped on truncation/removal *)
  mutable map : int array;  (** logical block -> disk address; 0 = hole *)
  mutable nmap : int;  (** used prefix of [map] *)
  mutable ind_addrs : int array;  (** disk address of each indirect block *)
  mutable dbl_addr : int;
  mutable dirty : bool;  (** the 256-byte inode record needs rewriting *)
  dirty_ind : (int, unit) Hashtbl.t;
      (** indexes of indirect blocks needing rewriting *)
  mutable dbl_dirty : bool;
}

val ndirect : int
(** Direct addresses per inode (12, as in the paper's description). *)

val per_indirect : block_size:int -> int
(** Addresses per indirect block. *)

val create : inum:int -> kind:Vfs.file_kind -> t

val nblocks : t -> int
(** Logical blocks mapped (the used prefix; trailing entries may be 0). *)

val get_addr : t -> int -> int
(** Disk address of logical block [lblock]; 0 for holes/out of range. *)

val set_addr : t -> block_size:int -> int -> int -> unit
(** [set_addr t ~block_size lblock addr] updates the map, growing it as
    needed, and marks the inode and the covering indirect block dirty. *)

val truncate_map : t -> block_size:int -> int -> unit
(** Shrink the map to [n] logical blocks, marking affected metadata
    dirty. *)

val indirect_count : t -> block_size:int -> int
(** Number of indirect blocks the current map requires. *)

val encode : t -> bytes
(** The 256-byte on-disk record. *)

val decode : bytes -> int -> t option
(** [decode block off] reads a record at byte offset [off]; [None] if the
    slot is unallocated. The map is sized but unfilled beyond direct
    blocks — the mount code fills it from the indirect blocks. *)

val encode_indirect : t -> block_size:int -> int -> bytes
(** Materialize the [idx]-th indirect block from the in-memory map. *)

val decode_indirect : t -> block_size:int -> int -> bytes -> unit
(** Fill the map range covered by indirect block [idx] from disk bytes. *)

val encode_double : t -> block_size:int -> bytes
(** Materialize the double-indirect block (addresses of indirect blocks
    1..n-1; indirect block 0's address lives in the inode itself). *)

val decode_double : t -> block_size:int -> bytes -> unit
