
type t = {
  inum : int;
  mutable kind : Vfs.file_kind;
  mutable protected_ : bool;
  mutable size : int;
  mutable mtime : float;
  mutable version : int;
  mutable map : int array;
  mutable nmap : int;
  mutable ind_addrs : int array;
  mutable dbl_addr : int;
  mutable dirty : bool;
  dirty_ind : (int, unit) Hashtbl.t;
  mutable dbl_dirty : bool;
}

let ndirect = 12
let per_indirect ~block_size = block_size / 4
let magic = 0x494e (* "IN" *)

let create ~inum ~kind =
  {
    inum;
    kind;
    protected_ = false;
    size = 0;
    mtime = 0.0;
    version = 0;
    map = [||];
    nmap = 0;
    ind_addrs = [||];
    dbl_addr = 0;
    dirty = true;
    dirty_ind = Hashtbl.create 4;
    dbl_dirty = false;
  }

let nblocks t = t.nmap

let get_addr t lblock = if lblock < t.nmap then t.map.(lblock) else 0

let grow_array a n fill =
  if Array.length a >= n then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let indirect_count_for ~block_size nmap =
  if nmap <= ndirect then 0
  else
    let per = per_indirect ~block_size in
    (nmap - ndirect + per - 1) / per

let indirect_count t ~block_size = indirect_count_for ~block_size t.nmap

(* Which indirect block covers logical block [lblock] (if any). *)
let ind_index ~block_size lblock =
  if lblock < ndirect then None
  else Some ((lblock - ndirect) / per_indirect ~block_size)

let mark_meta_dirty t ~block_size lblock =
  t.dirty <- true;
  match ind_index ~block_size lblock with
  | None -> ()
  | Some idx ->
    Hashtbl.replace t.dirty_ind idx ();
    if idx > 0 then t.dbl_dirty <- true

let set_addr t ~block_size lblock addr =
  if lblock < 0 then invalid_arg "Inode.set_addr: negative block";
  if lblock >= Array.length t.map then t.map <- grow_array t.map (lblock + 1) 0;
  if lblock >= t.nmap then begin
    (* Newly covered range: any skipped entries are holes (already 0). *)
    t.nmap <- lblock + 1;
    let nind = indirect_count t ~block_size in
    if nind > Array.length t.ind_addrs then
      t.ind_addrs <- grow_array t.ind_addrs nind 0
  end;
  t.map.(lblock) <- addr;
  mark_meta_dirty t ~block_size lblock

let truncate_map t ~block_size n =
  if n < t.nmap then begin
    for i = n to t.nmap - 1 do
      if i < Array.length t.map then t.map.(i) <- 0
    done;
    t.nmap <- n;
    t.dirty <- true;
    (* Metadata past the cut no longer needs writing; re-mark the boundary
       indirect block dirty since its tail changed. *)
    let nind = indirect_count t ~block_size in
    let stale = Hashtbl.fold (fun idx () acc -> if idx >= nind then idx :: acc else acc) t.dirty_ind [] in
    List.iter (Hashtbl.remove t.dirty_ind) stale;
    if nind > 0 then Hashtbl.replace t.dirty_ind (nind - 1) ();
    t.dbl_dirty <- nind > 1
  end

let encode t =
  let b = Bytes.make 256 '\000' in
  Enc.set_u16 b 0 magic;
  Enc.set_u8 b 2 (match t.kind with Vfs.File -> 0 | Vfs.Dir -> 1);
  Enc.set_u8 b 3 (if t.protected_ then 1 else 0);
  Enc.set_u8 b 4 1 (* allocated *);
  Enc.set_i64 b 8 (Int64.of_int t.size);
  Enc.set_f64 b 16 t.mtime;
  Enc.set_u32 b 24 t.version;
  Enc.set_u32 b 28 t.inum;
  Enc.set_u32 b 32 (if Array.length t.ind_addrs > 0 then t.ind_addrs.(0) else 0);
  Enc.set_u32 b 36 t.dbl_addr;
  for i = 0 to ndirect - 1 do
    Enc.set_u32 b (40 + (4 * i)) (if i < t.nmap then t.map.(i) else 0)
  done;
  Enc.set_u32 b 88 t.nmap;
  b

let decode block off =
  if Enc.get_u16 block off <> magic || Enc.get_u8 block (off + 4) = 0 then None
  else
    let nmap = Enc.get_u32 block (off + 88) in
    let t =
      {
        inum = Enc.get_u32 block (off + 28);
        kind = (if Enc.get_u8 block (off + 2) = 1 then Vfs.Dir else Vfs.File);
        protected_ = Enc.get_u8 block (off + 3) = 1;
        size = Int64.to_int (Enc.get_i64 block (off + 8));
        mtime = Enc.get_f64 block (off + 16);
        version = Enc.get_u32 block (off + 24);
        map = Array.make (max nmap 1) 0;
        nmap;
        ind_addrs = [||];
        dbl_addr = Enc.get_u32 block (off + 36);
        dirty = false;
        dirty_ind = Hashtbl.create 4;
        dbl_dirty = false;
      }
    in
    for i = 0 to min (ndirect - 1) (nmap - 1) do
      t.map.(i) <- Enc.get_u32 block (off + 40 + (4 * i))
    done;
    let ind0 = Enc.get_u32 block (off + 32) in
    let nind = max (if ind0 <> 0 then 1 else 0) 0 in
    t.ind_addrs <- Array.make (max nind 1) 0;
    if ind0 <> 0 then t.ind_addrs.(0) <- ind0;
    Some t

let range_of_indirect ~block_size idx nmap =
  let per = per_indirect ~block_size in
  let lo = ndirect + (idx * per) in
  let hi = min nmap (lo + per) in
  (lo, hi)

let encode_indirect t ~block_size idx =
  let b = Bytes.make block_size '\000' in
  let lo, hi = range_of_indirect ~block_size idx t.nmap in
  for l = lo to hi - 1 do
    Enc.set_u32 b (4 * (l - lo)) t.map.(l)
  done;
  b

let decode_indirect t ~block_size idx b =
  let lo, hi = range_of_indirect ~block_size idx t.nmap in
  if hi > Array.length t.map then t.map <- grow_array t.map hi 0;
  for l = lo to hi - 1 do
    t.map.(l) <- Enc.get_u32 b (4 * (l - lo))
  done

let encode_double t ~block_size =
  let b = Bytes.make block_size '\000' in
  let nind = indirect_count t ~block_size in
  for i = 1 to nind - 1 do
    Enc.set_u32 b (4 * (i - 1)) t.ind_addrs.(i)
  done;
  b

let decode_double t ~block_size b =
  let nind = indirect_count t ~block_size in
  if nind > Array.length t.ind_addrs then
    t.ind_addrs <- grow_array t.ind_addrs nind 0;
  for i = 1 to nind - 1 do
    t.ind_addrs.(i) <- Enc.get_u32 b (4 * (i - 1))
  done
