
type entry = { name : string; inum : int; kind : Vfs.file_kind }

let max_name = 255

let kind_code = function Vfs.File -> 0 | Vfs.Dir -> 1

let kind_of_code = function
  | 0 -> Vfs.File
  | 1 -> Vfs.Dir
  | c -> Vfs.error Invalid "directory entry: bad kind code %d" c

let entry_size e = 2 + 4 + 1 + String.length e.name

let encode entries =
  let total = List.fold_left (fun acc e -> acc + entry_size e) 0 entries in
  let b = Bytes.create total in
  let off = ref 0 in
  let put e =
    Enc.set_u16 b !off (String.length e.name);
    Enc.set_u32 b (!off + 2) e.inum;
    Enc.set_u8 b (!off + 6) (kind_code e.kind);
    Enc.set_string b (!off + 7) e.name;
    off := !off + entry_size e
  in
  List.iter put entries;
  b

let decode b =
  let len = Bytes.length b in
  let rec go off acc =
    if off = len then List.rev acc
    else if off + 7 > len then Vfs.error Invalid "directory: truncated entry"
    else
      let nlen = Enc.get_u16 b off in
      if nlen = 0 || nlen > max_name || off + 7 + nlen > len then
        Vfs.error Invalid "directory: bad name length %d" nlen
      else
        let inum = Enc.get_u32 b (off + 2) in
        let kind = kind_of_code (Enc.get_u8 b (off + 6)) in
        let name = Enc.get_string b (off + 7) ~len:nlen in
        go (off + 7 + nlen) ({ name; inum; kind } :: acc)
  in
  go 0 []
