module type STORE = sig
  type t

  val root : t -> int
  val read : t -> int -> off:int -> len:int -> bytes
  val write : t -> int -> off:int -> bytes -> unit
  val truncate : t -> int -> len:int -> unit
  val size : t -> int -> int
  val alloc_inode : t -> kind:Vfs.file_kind -> int
  val free_inode : t -> int -> unit
end

module Make (S : STORE) = struct
  let split path =
    let n = String.length path in
    if n = 0 || path.[0] <> '/' then
      Vfs.error Invalid "path %S must be absolute" path;
    String.split_on_char '/' path
    |> List.filter_map (fun c ->
           if c = "" then None
           else if String.length c > Dirfmt.max_name then
             Vfs.error Invalid "path component %S too long" c
           else Some c)

  let entries t dinum =
    Dirfmt.decode (S.read t dinum ~off:0 ~len:(S.size t dinum))

  let write_entries t dinum es =
    let b = Dirfmt.encode es in
    S.truncate t dinum ~len:(Bytes.length b);
    if Bytes.length b > 0 then S.write t dinum ~off:0 b

  let lookup t path =
    let rec walk dinum = function
      | [] -> Some (dinum, Vfs.Dir)
      | [ last ] -> (
        match List.find_opt (fun e -> e.Dirfmt.name = last) (entries t dinum) with
        | Some e -> Some (e.inum, e.kind)
        | None -> None)
      | comp :: rest -> (
        match List.find_opt (fun e -> e.Dirfmt.name = comp) (entries t dinum) with
        | Some { kind = Vfs.Dir; inum; _ } -> walk inum rest
        | Some _ | None -> None)
    in
    walk (S.root t) (split path)

  (* Resolve the parent directory of [path]; returns (parent inum, leaf name). *)
  let parent_of t path =
    match List.rev (split path) with
    | [] -> Vfs.error Invalid "cannot operate on the root directory"
    | leaf :: rev_parents -> (
      let parent_path =
        "/" ^ String.concat "/" (List.rev rev_parents)
      in
      match lookup t parent_path with
      | Some (dinum, Vfs.Dir) -> (dinum, leaf)
      | Some (_, Vfs.File) -> Vfs.error Not_dir "%s" parent_path
      | None -> Vfs.error Not_found "%s" parent_path)

  let create t path ~kind =
    let dinum, leaf = parent_of t path in
    let es = entries t dinum in
    if List.exists (fun e -> e.Dirfmt.name = leaf) es then
      Vfs.error Exists "%s" path;
    let inum = S.alloc_inode t ~kind in
    write_entries t dinum (es @ [ { Dirfmt.name = leaf; inum; kind } ]);
    inum

  let remove t path =
    let dinum, leaf = parent_of t path in
    let es = entries t dinum in
    match List.find_opt (fun e -> e.Dirfmt.name = leaf) es with
    | None -> Vfs.error Not_found "%s" path
    | Some e ->
      (if e.kind = Vfs.Dir && S.size t e.inum > 0 then
         Vfs.error Invalid "directory %s not empty" path);
      write_entries t dinum (List.filter (fun x -> x.Dirfmt.name <> leaf) es);
      S.free_inode t e.inum

  let readdir t path =
    match lookup t path with
    | Some (dinum, Vfs.Dir) ->
      List.map (fun e -> (e.Dirfmt.name, e.kind)) (entries t dinum)
    | Some (_, Vfs.File) -> Vfs.error Not_dir "%s" path
    | None -> Vfs.error Not_found "%s" path
end
