type t = { mutable now : float }

let create () = { now = 0.0 }

let now t = t.now

let advance t dt =
  if not (Float.is_finite dt) || dt < 0.0 then
    invalid_arg (Printf.sprintf "Clock.advance: bad delta %g" dt);
  t.now <- t.now +. dt

let sleep_until t deadline = if deadline > t.now then t.now <- deadline
