(** Named simulation counters and accumulators.

    Every subsystem records what it did (seeks performed, blocks read,
    segments cleaned, locks waited on, …) into a shared [Stats.t] so the
    experiment harness can report not just elapsed time but {e why} time
    was spent. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Add 1 to the integer counter named by the key. *)

val add : t -> string -> int -> unit
(** Add [n] to the integer counter. *)

val add_time : t -> string -> float -> unit
(** Accumulate [dt] seconds under the key. *)

val record_max : t -> string -> float -> unit
(** Keep the maximum of all values reported under the key (stored in the
    time table; read it back with {!time}). *)

val count : t -> string -> int
(** Current value of the integer counter (0 if never touched). *)

val time : t -> string -> float
(** Current value of the time accumulator (0.0 if never touched). *)

val reset : t -> unit
(** Zero every counter and accumulator. *)

val to_list : t -> (string * [ `Count of int | `Seconds of float ]) list
(** Sorted dump of all entries, for reports and debugging. *)

val pp : Format.formatter -> t -> unit
