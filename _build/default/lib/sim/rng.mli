(** Deterministic pseudo-random source.

    All simulation randomness flows through one of these so that every
    experiment is reproducible from its seed, and "five runs" statistics
    (the paper reports means of five tests) come from five seeds. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** A new independent generator derived from [t]'s stream. *)
