(** Simulated wall clock.

    Every simulation instance (one "machine") owns exactly one clock. All
    costs — disk service times, CPU charges, sleeps — advance it. Because
    the reproduction runs at multiprogramming level 1 (as the paper's
    measurements did), elapsed simulated time is simply the sum of all
    charges. *)

type t

val create : unit -> t
(** A clock starting at time 0.0 seconds. *)

val now : t -> float
(** Current simulated time in seconds. *)

val advance : t -> float -> unit
(** [advance t dt] moves the clock forward by [dt] seconds.
    @raise Invalid_argument if [dt] is negative or not finite. *)

val sleep_until : t -> float -> unit
(** [sleep_until t deadline] advances the clock to [deadline] if it is in
    the future; a no-op otherwise. Used by group commit timeouts and the
    periodic syncer. *)
