type t = {
  counts : (string, int ref) Hashtbl.t;
  times : (string, float ref) Hashtbl.t;
}

let create () = { counts = Hashtbl.create 32; times = Hashtbl.create 32 }

let cell tbl zero key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref zero in
    Hashtbl.add tbl key r;
    r

let add t key n =
  let r = cell t.counts 0 key in
  r := !r + n

let incr t key = add t key 1

let add_time t key dt =
  let r = cell t.times 0.0 key in
  r := !r +. dt

let record_max t key v =
  let r = cell t.times 0.0 key in
  if v > !r then r := v

let count t key =
  match Hashtbl.find_opt t.counts key with Some r -> !r | None -> 0

let time t key =
  match Hashtbl.find_opt t.times key with Some r -> !r | None -> 0.0

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.times

let to_list t =
  let entries = ref [] in
  Hashtbl.iter (fun k r -> entries := (k, `Count !r) :: !entries) t.counts;
  Hashtbl.iter (fun k r -> entries := (k, `Seconds !r) :: !entries) t.times;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !entries

let pp ppf t =
  let pp_entry ppf = function
    | key, `Count n -> Format.fprintf ppf "%s: %d" key n
    | key, `Seconds s -> Format.fprintf ppf "%s: %.6fs" key s
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    (to_list t)
