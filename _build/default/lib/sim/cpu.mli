(** Central CPU cost accounting.

    All processor charges go through {!charge} so that every simulated
    instruction-path cost is (a) taken from {!Config.cpu} in one place and
    (b) attributed in the shared {!Stats.t} under a ["cpu."] key. *)

type kind =
  | Syscall  (** one trap into the kernel *)
  | Context_switch
  | User_mutex
      (** user-level semaphore acquire+release; two system calls on a
          machine without test-and-set (the DECstation), a few
          instructions otherwise — the mechanism behind Figure 4's
          user/kernel gap *)
  | Kernel_mutex  (** kernel-side synchronization inside a system call *)
  | Copy_block
  | Buffer_lookup
  | Protection_check
  | Record_op
  | Cursor_next
  | Lock_op
  | Log_record
  | File_op
  | Compile_unit

val cost : Config.cpu -> kind -> float
(** Seconds charged for one occurrence of [kind]. *)

val charge : Clock.t -> Stats.t -> Config.cpu -> kind -> unit
(** Advance the clock by {!cost} and record it in the stats. *)
