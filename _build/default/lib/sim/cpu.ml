type kind =
  | Syscall
  | Context_switch
  | User_mutex
  | Kernel_mutex
  | Copy_block
  | Buffer_lookup
  | Protection_check
  | Record_op
  | Cursor_next
  | Lock_op
  | Log_record
  | File_op
  | Compile_unit

let cost (cpu : Config.cpu) = function
  | Syscall -> cpu.syscall_s
  | Context_switch -> cpu.context_switch_s
  | User_mutex ->
    (* Acquire + release. Without hardware test-and-set each operation is
       a semaphore system call (Section 5.1). *)
    if cpu.has_test_and_set then 2.0 *. cpu.test_and_set_s
    else 2.0 *. cpu.syscall_s
  | Kernel_mutex ->
    (* Synchronization performed inside an already-entered system call:
       a spin on an uncontended in-kernel lock. *)
    cpu.test_and_set_s
  | Copy_block -> cpu.copy_block_s
  | Buffer_lookup -> cpu.buffer_lookup_s
  | Protection_check -> cpu.protection_check_s
  | Record_op -> cpu.record_op_s
  | Cursor_next -> cpu.cursor_next_s
  | Lock_op -> cpu.lock_op_s
  | Log_record -> cpu.log_record_s
  | File_op -> cpu.file_op_s
  | Compile_unit -> cpu.compile_unit_s

let key = function
  | Syscall -> "cpu.syscall"
  | Context_switch -> "cpu.context_switch"
  | User_mutex -> "cpu.user_mutex"
  | Kernel_mutex -> "cpu.kernel_mutex"
  | Copy_block -> "cpu.copy_block"
  | Buffer_lookup -> "cpu.buffer_lookup"
  | Protection_check -> "cpu.protection_check"
  | Record_op -> "cpu.record_op"
  | Cursor_next -> "cpu.cursor_next"
  | Lock_op -> "cpu.lock_op"
  | Log_record -> "cpu.log_record"
  | File_op -> "cpu.file_op"
  | Compile_unit -> "cpu.compile_unit"

let charge clock stats cpu kind =
  let dt = cost cpu kind in
  Clock.advance clock dt;
  Stats.add_time stats (key kind) dt;
  Stats.incr stats (key kind ^ ".n")
