let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 b off = Bytes.get_uint16_be b off
let set_u16 b off v = Bytes.set_uint16_be b off v

let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xffffffff

let set_u32 b off v =
  if v < 0 || v > 0xffffffff then
    invalid_arg (Printf.sprintf "Enc.set_u32: %d out of range" v);
  Bytes.set_int32_be b off (Int32.of_int v)

let get_i64 b off = Bytes.get_int64_be b off
let set_i64 b off v = Bytes.set_int64_be b off v

let get_f64 b off = Int64.float_of_bits (Bytes.get_int64_be b off)
let set_f64 b off v = Bytes.set_int64_be b off (Int64.bits_of_float v)

let get_string b off ~len = Bytes.sub_string b off len
let set_string b off s = Bytes.blit_string s 0 b off (String.length s)

let get_lstring b off =
  let len = get_u16 b off in
  (Bytes.sub_string b (off + 2) len, off + 2 + len)

let set_lstring b off s =
  let len = String.length s in
  if len > 0xffff then invalid_arg "Enc.set_lstring: string too long";
  set_u16 b off len;
  Bytes.blit_string s 0 b (off + 2) len;
  off + 2 + len

let lstring_size s = 2 + String.length s
