lib/sim/config.mli:
