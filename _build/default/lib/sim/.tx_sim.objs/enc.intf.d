lib/sim/enc.mli:
