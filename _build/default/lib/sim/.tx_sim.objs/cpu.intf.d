lib/sim/cpu.mli: Clock Config Stats
