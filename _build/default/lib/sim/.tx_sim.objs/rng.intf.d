lib/sim/rng.mli:
