lib/sim/config.ml:
