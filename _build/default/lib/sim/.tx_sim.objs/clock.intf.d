lib/sim/clock.mli:
