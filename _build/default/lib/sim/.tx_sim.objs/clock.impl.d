lib/sim/clock.ml: Float Printf
