lib/sim/cpu.ml: Clock Config Stats
