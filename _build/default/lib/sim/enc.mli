(** Binary encoding helpers for on-disk structures.

    Every persistent structure in the reproduction (inodes, segment
    summaries, checkpoint regions, WAL records, B-tree pages) is laid out
    with these fixed-width big-endian accessors, so that a disk image is a
    well-defined byte string that survives crash-and-remount. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit

val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit

val get_u32 : bytes -> int -> int
(** Reads 4 bytes as a non-negative OCaml int. *)

val set_u32 : bytes -> int -> int -> unit
(** @raise Invalid_argument if the value does not fit in 32 bits. *)

val get_i64 : bytes -> int -> int64
val set_i64 : bytes -> int -> int64 -> unit

val get_f64 : bytes -> int -> float
val set_f64 : bytes -> int -> float -> unit

val get_string : bytes -> int -> len:int -> string
(** Raw fixed-width read of [len] bytes. *)

val set_string : bytes -> int -> string -> unit

val get_lstring : bytes -> int -> string * int
(** Length-prefixed (u16) string; returns the string and the offset just
    past it. *)

val set_lstring : bytes -> int -> string -> int
(** Writes a u16 length prefix then the bytes; returns the offset just
    past the written data. *)

val lstring_size : string -> int
(** On-disk size of a length-prefixed string. *)
