type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x5e17_2e53; seed lxor 0x1f5 |]

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound

let bool t = Random.State.bool t

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
