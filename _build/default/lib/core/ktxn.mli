(** The embedded (kernel) transaction manager — the paper's contribution
    (Section 4).

    Transaction support lives inside the log-structured file system:

    - transaction protection is a {e file attribute} (set with
      {!protect}); the read/write interface is unchanged, and the three
      new "system calls" are {!txn_begin}, {!txn_commit} and {!txn_abort};
    - concurrency control is a lock table in the file-system state, keyed
      by (file, block) and chained per transaction (Section 4.1);
    - buffer-cache integration (Section 4.2): page reads take a shared
      lock, writes an exclusive one; a transaction's dirty buffers go on
      the inode's transaction list and are pinned in memory until the
      transaction resolves;
    - {e no log is kept}: the no-overwrite policy of LFS preserves
      before-images on disk, and commit forces the transaction's dirty
      pages to the log as a segment write, which makes the after-images
      durable (Section 4.3). Abort simply invalidates the dirty buffers,
      so the next read returns to the on-disk (pre-transaction) state;
    - group commit (Section 4.4) can delay the commit-time flush to batch
      several transactions' pages into one larger segment write.

    The kernel synchronizes with in-kernel mutexes inside an
    already-entered system call — one trap per operation, versus the two
    semaphore system calls per mutex the user-level system pays on
    hardware without test-and-set. That asymmetry is the measured
    user/kernel gap of Figure 4. *)

type t

type txn

exception Conflict of int list
exception Deadlock_abort of int
exception Too_large
(** The transaction dirtied more pages than the buffer cache can pin
    (implementation restriction 1 of Section 4.5). *)

val create : Lfs.t -> t
(** Attach a transaction manager to a mounted LFS. *)

val lfs : t -> Lfs.t

val protect : t -> string -> unit
(** Mark a file transaction-protected ("like protections or access
    control lists ... turned on or off through a provided utility"). *)

val unprotect : t -> string -> unit

val txn_begin : t -> txn
val txn_id : txn -> int

val read_page : t -> txn -> inum:int -> page:int -> bytes
(** Read a page of a transaction-protected file under a shared lock. On
    an unprotected file no lock is taken (transaction calls "have no
    effect on unprotected files"). The returned bytes are the kernel
    buffer: callers must not mutate them. *)

val write_page : t -> txn -> inum:int -> page:int -> bytes -> unit
(** Write a full page under an exclusive lock. The buffer joins the
    transaction's dirty list and stays in memory until commit or abort. *)

val txn_commit : t -> txn -> unit
(** Move the transaction's buffers to the dirty list and force them to
    the log (one segment write), then release the lock chain. With a
    non-zero group-commit timeout the flush may be deferred: the
    committing process sleeps until [group_commit_size] commits have
    accumulated or the timeout expires, and the next event past the
    deadline (a new {!txn_begin}, or {!flush_commits}) performs the
    shared flush. *)

val flush_commits : t -> unit
(** Force any commits deferred by group commit to disk now. Call this
    before unmounting or crashing deliberately: deferred commits are
    exactly as durable as their flush, and the file system's own [sync]
    does not know about them. *)

val txn_abort : t -> txn -> unit
(** Invalidate the transaction's dirty buffers — the on-disk
    before-images become current again — and release the lock chain. *)

val pager : t -> txn -> inum:int -> Pager.t
(** Page-access interface for the record library, bound to [txn]. *)

val active : t -> int
val locks : t -> Lockmgr.t
