lib/core/core.mli: Btree Clock Config Disk Hashdb Ktxn Lfs Recno Stats
