lib/core/ktxn.ml: Bytes Cache Clock Config Cpu Float Hashtbl Lfs List Lockmgr Pager Stats Vfs
