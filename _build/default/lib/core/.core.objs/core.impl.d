lib/core/core.ml: Btree Clock Config Disk Hashdb Ktxn Lfs Recno Stats String Vfs
