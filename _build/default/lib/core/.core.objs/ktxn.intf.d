lib/core/ktxn.mli: Lfs Lockmgr Pager
