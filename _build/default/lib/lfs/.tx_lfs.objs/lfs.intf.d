lib/lfs/lfs.mli: Cache Clock Config Disk Stats Vfs
