lib/lfs/layout.mli:
