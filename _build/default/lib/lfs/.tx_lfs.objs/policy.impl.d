lib/lfs/policy.ml: Float Option
