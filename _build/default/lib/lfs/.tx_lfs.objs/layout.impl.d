lib/lfs/layout.ml: Array Bytes Char Enc List Vfs
