lib/lfs/policy.mli:
