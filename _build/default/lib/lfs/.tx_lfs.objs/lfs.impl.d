lib/lfs/lfs.ml: Array Bytes Cache Clock Config Cpu Disk Enc Fun Hashtbl Inode Int Int64 Layout List Namespace Option Policy Printf Set Stats Vfs
