(** The non-transaction benchmarks of Section 5.2 and the sequential-read
    test of Section 5.3. All run against a {!Vfs.t}, so the same code
    measures both file systems and both kernels. *)

(** Parameters of the Andrew-like engineering-workstation benchmark:
    copy a tree of small files, traverse it with stats, read every file,
    and "compile" (CPU burn + object-file writes). *)
type andrew_params = {
  dirs : int;  (** directories in the tree *)
  files_per_dir : int;
  file_bytes : int;  (** size of each small source file *)
}

val default_andrew : andrew_params

type phase_times = (string * float) list
(** (phase name, simulated seconds) in execution order. *)

val andrew : Clock.t -> Stats.t -> Config.t -> Vfs.t -> Rng.t -> andrew_params -> phase_times
(** Runs under ["/andrew"]; returns per-phase elapsed times. The total is
    the Figure 5 number. *)

type bigfile_params = { sizes_bytes : int list }
(** File sizes to create, copy and remove; the paper uses 1, 5 and 10 MB
    on a 300 MB file system. *)

val default_bigfile : bigfile_params

val bigfile : Clock.t -> Stats.t -> Config.t -> Vfs.t -> Rng.t -> bigfile_params -> phase_times

val scan : Clock.t -> Stats.t -> Config.t -> Vfs.t -> Tpcb.db -> float
(** The SCAN test: read the TPC-B account relation in key order through a
    B-tree cursor (Section 5.3) and return the simulated elapsed time. *)
