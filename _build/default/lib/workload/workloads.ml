type andrew_params = { dirs : int; files_per_dir : int; file_bytes : int }

let default_andrew = { dirs = 20; files_per_dir = 10; file_bytes = 6_000 }

type phase_times = (string * float) list

let payload rng len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Rng.int rng 256))
  done;
  b

let timed clock name f acc =
  let t0 = Clock.now clock in
  f ();
  acc := (name, Clock.now clock -. t0) :: !acc

let dir_path d = Printf.sprintf "/andrew/d%02d" d
let src_path d f = Printf.sprintf "/andrew/d%02d/src%02d.c" d f
let obj_path d f = Printf.sprintf "/andrew/d%02d/src%02d.o" d f

let andrew clock stats cfg (vfs : Vfs.t) rng p =
  let phases = ref [] in
  let each f =
    for d = 0 to p.dirs - 1 do
      for i = 0 to p.files_per_dir - 1 do
        f d i
      done
    done
  in
  (* Phase 1: create the directory hierarchy. *)
  timed clock "mkdir" (fun () ->
      vfs.Vfs.mkdir "/andrew";
      for d = 0 to p.dirs - 1 do
        vfs.Vfs.mkdir (dir_path d)
      done)
    phases;
  (* Phase 2: copy in the small source files. *)
  timed clock "copy" (fun () ->
      each (fun d i ->
          let fd = vfs.Vfs.create (src_path d i) in
          vfs.Vfs.write fd ~off:0 (payload rng p.file_bytes)))
    phases;
  (* Phase 3: recursive stat traversal. *)
  timed clock "stat" (fun () ->
      List.iter
        (fun (name, kind) ->
          if kind = Vfs.Dir then
            List.iter
              (fun (leaf, _) -> ignore (vfs.Vfs.stat ("/andrew/" ^ name ^ "/" ^ leaf)))
              (vfs.Vfs.readdir ("/andrew/" ^ name)))
        (vfs.Vfs.readdir "/andrew"))
    phases;
  (* Phase 4: read every file. *)
  timed clock "read" (fun () ->
      each (fun d i ->
          let fd = vfs.Vfs.open_file (src_path d i) in
          ignore (vfs.Vfs.read fd ~off:0 ~len:p.file_bytes)))
    phases;
  (* Phase 5: compile — burn CPU per unit and write the objects. *)
  timed clock "compile" (fun () ->
      each (fun d i ->
          let fd = vfs.Vfs.open_file (src_path d i) in
          ignore (vfs.Vfs.read fd ~off:0 ~len:p.file_bytes);
          Cpu.charge clock stats cfg.Config.cpu Cpu.Compile_unit;
          let out = vfs.Vfs.create (obj_path d i) in
          vfs.Vfs.write out ~off:0 (payload rng p.file_bytes)))
    phases;
  vfs.Vfs.sync ();
  List.rev !phases

type bigfile_params = { sizes_bytes : int list }

let default_bigfile =
  { sizes_bytes = [ 1_000_000; 5_000_000; 10_000_000 ] }

let bigfile clock _stats _cfg (vfs : Vfs.t) rng p =
  let phases = ref [] in
  vfs.Vfs.mkdir "/bigfile";
  let chunk = 64 * 1024 in
  let write_file path size =
    let fd = vfs.Vfs.create path in
    let off = ref 0 in
    while !off < size do
      let n = min chunk (size - !off) in
      vfs.Vfs.write fd ~off:!off (payload rng n);
      off := !off + n
    done
  in
  let copy_file src dst =
    let s = vfs.Vfs.open_file src in
    let size = vfs.Vfs.size s in
    let d = vfs.Vfs.create dst in
    let off = ref 0 in
    while !off < size do
      let n = min chunk (size - !off) in
      vfs.Vfs.write d ~off:!off (vfs.Vfs.read s ~off:!off ~len:n);
      off := !off + n
    done
  in
  List.iteri
    (fun i size ->
      let mb = size / 1_000_000 in
      let orig = Printf.sprintf "/bigfile/f%d" i in
      let dup = Printf.sprintf "/bigfile/f%d.copy" i in
      timed clock (Printf.sprintf "create-%dMB" mb) (fun () ->
          write_file orig size;
          vfs.Vfs.fsync (vfs.Vfs.open_file orig))
        phases;
      timed clock (Printf.sprintf "copy-%dMB" mb) (fun () ->
          copy_file orig dup;
          vfs.Vfs.fsync (vfs.Vfs.open_file dup))
        phases;
      timed clock (Printf.sprintf "remove-%dMB" mb) (fun () ->
          vfs.Vfs.remove orig;
          vfs.Vfs.remove dup;
          vfs.Vfs.sync ())
        phases)
    p.sizes_bytes;
  List.rev !phases

let scan clock stats cfg (vfs : Vfs.t) (db : Tpcb.db) =
  let t0 = Clock.now clock in
  let bt =
    Btree.attach clock stats cfg.Config.cpu
      (Pager.plain vfs (Tpcb.account_fd db))
  in
  let n = ref 0 in
  Btree.iter bt (fun _ _ ->
      incr n;
      true);
  Stats.add stats "scan.records" !n;
  Clock.now clock -. t0
