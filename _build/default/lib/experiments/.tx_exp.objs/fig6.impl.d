lib/experiments/fig6.ml: Config Expcommon Ffs Lfs Libtp Printf Rng Tpcb Vfs Workloads
