lib/experiments/fig7.ml: Expcommon Fig4 Fig6 List Printf
