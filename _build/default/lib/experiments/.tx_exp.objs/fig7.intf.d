lib/experiments/fig7.mli: Config Fig4 Fig6
