lib/experiments/expcommon.ml: Clock Config Disk Ffs Ktxn Lfs Libtp List Printf Rng Stats String Tpcb
