lib/experiments/fig5.ml: Clock Config Expcommon Lfs Libtp List Printf Rng Tpcb Workloads
