lib/experiments/fig4.ml: Config Expcommon List Printf Tpcb
