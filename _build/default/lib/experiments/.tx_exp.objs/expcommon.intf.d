lib/experiments/expcommon.mli: Clock Config Disk Stats Tpcb
