lib/experiments/ablation.ml: Clock Config Expcommon Ktxn Lfs Libtp List Printf Rng Tpcb Workloads
