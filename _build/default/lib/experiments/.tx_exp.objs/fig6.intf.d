lib/experiments/fig6.mli: Config
