(** Shared machinery for the paper-reproduction experiments: booting
    machines, building TPC-B databases on either file system, running the
    transaction phase under any of the three configurations, and small
    statistics helpers. *)

type machine = {
  cfg : Config.t;
  clock : Clock.t;
  stats : Stats.t;
  disk : Disk.t;
}

val machine : Config.t -> machine

(** The three measured configurations of Figure 4. *)
type setup =
  | Readopt_user  (** user-level transactions on the read-optimized FS *)
  | Lfs_user  (** user-level transactions on LFS *)
  | Lfs_kernel  (** the embedded transaction manager in LFS *)

val setup_label : setup -> string

type tpcb_run = {
  setup : setup;
  seed : int;
  result : Tpcb.result;
  cleaner_stall_s : float;  (** total time the system stalled cleaning *)
  cleaner_max_stall_s : float;
}

val run_tpcb :
  ?pool_pages:int ->
  config:Config.t ->
  scale:Tpcb.scale ->
  txns:int ->
  seed:int ->
  setup ->
  tpcb_run
(** Boot a fresh machine, build the database, run [txns] transactions,
    and report throughput plus cleaner interference. *)

val mean : float list -> float
val stdev : float list -> float

val pp_header : string -> unit
(** Print a section banner for the experiment reports. *)
