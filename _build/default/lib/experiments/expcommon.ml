type machine = {
  cfg : Config.t;
  clock : Clock.t;
  stats : Stats.t;
  disk : Disk.t;
}

let machine cfg =
  let clock = Clock.create () in
  let stats = Stats.create () in
  { cfg; clock; stats; disk = Disk.create clock stats cfg.Config.disk }

type setup = Readopt_user | Lfs_user | Lfs_kernel

let setup_label = function
  | Readopt_user -> "read-optimized / user-level"
  | Lfs_user -> "LFS / user-level"
  | Lfs_kernel -> "LFS / kernel (embedded)"

type tpcb_run = {
  setup : setup;
  seed : int;
  result : Tpcb.result;
  cleaner_stall_s : float;
  cleaner_max_stall_s : float;
}

let run_tpcb ?(pool_pages = 1024) ~config ~scale ~txns ~seed setup =
  let m = machine config in
  let rng = Rng.create ~seed in
  let vfs, backend =
    match setup with
    | Readopt_user ->
      let fs = Ffs.format m.disk m.clock m.stats m.cfg in
      let v = Ffs.vfs fs in
      let db = Tpcb.build m.clock m.stats m.cfg v ~rng ~scale in
      ignore db;
      let env =
        Libtp.open_env m.clock m.stats m.cfg v ~pool_pages ~log_path:"/tpcb/log" ()
      in
      (v, Tpcb.User env)
    | Lfs_user ->
      let fs = Lfs.format m.disk m.clock m.stats m.cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build m.clock m.stats m.cfg v ~rng ~scale in
      ignore db;
      let env =
        Libtp.open_env m.clock m.stats m.cfg v ~pool_pages ~log_path:"/tpcb/log" ()
      in
      (v, Tpcb.User env)
    | Lfs_kernel ->
      let fs = Lfs.format m.disk m.clock m.stats m.cfg in
      let v = Lfs.vfs fs in
      let db = Tpcb.build m.clock m.stats m.cfg v ~rng ~scale in
      ignore db;
      let k = Ktxn.create fs in
      Tpcb.protect_all db k;
      (v, Tpcb.Kernel k)
  in
  let db = Tpcb.open_db vfs ~scale in
  (* Measure the transaction phase only, like the paper. Cleaner stall
     accounting is also restricted to the measured window. *)
  let stall0 = Stats.time m.stats "cleaner.stall" in
  let result = Tpcb.run m.clock m.stats m.cfg db backend ~rng ~n:txns in
  {
    setup;
    seed;
    result;
    cleaner_stall_s = Stats.time m.stats "cleaner.stall" -. stall0;
    cleaner_max_stall_s = Stats.time m.stats "cleaner.max_stall";
  }

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stdev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let pp_header title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line
