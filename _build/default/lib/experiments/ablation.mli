(** Ablations for the design points the paper discusses:

    - {b test-and-set} (Section 5.1 / [1]): with a hardware test-and-set
      instruction, user-level mutexes stop costing two system calls and
      the user/kernel gap of Figure 4 closes;
    - {b cleaner placement} (Section 5.4): the user-space cleaner cleans
      incrementally instead of locking files for a long batch, shrinking
      the worst-case transaction stall;
    - {b cleaning policy}: greedy vs cost-benefit victim selection under
      the TPC-B hot-update workload;
    - {b group commit} (Section 4.4): commit-flush batching vs timeout at
      multiprogramming level 1. *)

type row = { label : string; tps : float; max_latency_s : float; note : string }

type t = { title : string; rows : row list }

val test_and_set : ?config:Config.t -> ?tps_scale:int -> ?txns:int -> unit -> t

type coalesce_result = {
  scan_before_s : float;  (** LFS key-order scan right after the run *)
  scan_after_s : float;  (** the same scan after coalescing *)
  coalesce_cost_s : float;  (** simulated time the idle-cleaner spent *)
  contiguity_before : float;
  contiguity_after : float;
}

val coalescing :
  ?config:Config.t -> ?tps_scale:int -> ?txns:int -> unit -> coalesce_result
(** Section 5.4's proposed fix for Figure 6: after the random-update run,
    an idle-time coalescing cleaner rewrites the account file in logical
    order, and the key-order scan drops back toward its pre-fragmentation
    time. *)

val print_coalescing : coalesce_result -> unit

val multiprogramming :
  ?config:Config.t -> ?tps_scale:int -> ?txns:int -> unit -> t
(** TPC-B throughput at multiprogramming levels 1-4. The paper notes its
    configuration "is so disk-bound that increasing the multiprogramming
    level increases throughput only marginally"; with one simulated disk
    and CPU the same holds here, while lock conflicts appear. *)

val cleaner_placement : ?config:Config.t -> ?tps_scale:int -> ?txns:int -> unit -> t
val cleaning_policy : ?config:Config.t -> ?tps_scale:int -> ?txns:int -> unit -> t
val group_commit : ?config:Config.t -> ?tps_scale:int -> ?txns:int -> unit -> t

val print : t -> unit
