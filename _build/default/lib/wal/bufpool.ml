type t = {
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  vfs : Vfs.t;
  log : Logmgr.t;
  cache : Cache.t;
  lsns : (int * int, Logrec.lsn) Hashtbl.t; (* (file,page) -> last update LSN *)
  ps : int;
}

let page_size t = t.ps

let write_back t (f : Cache.frame) =
  (* WAL rule: the log must cover the page's last update before the page
     itself reaches disk. *)
  (match Hashtbl.find_opt t.lsns (f.Cache.file, f.Cache.lblock) with
  | Some lsn -> Logmgr.force t.log ~upto:lsn
  | None -> ());
  t.vfs.Vfs.write f.Cache.file ~off:(f.Cache.lblock * t.ps) f.Cache.data;
  Stats.incr t.stats "pool.writebacks"

let create clock stats (cfg : Config.t) vfs log ~pages =
  let ps = vfs.Vfs.block_size in
  let cache = Cache.create clock stats cfg.cpu ~capacity:pages in
  let t = { clock; stats; cfg; vfs; log; cache; lsns = Hashtbl.create 256; ps } in
  Cache.set_writeback cache (fun f -> write_back t f);
  t

let latch t = Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.User_mutex

let get t ~file ~page =
  latch t;
  match Cache.lookup t.cache ~file ~lblock:page with
  | Some f -> f.Cache.data
  | None ->
    let data = Bytes.make t.ps '\000' in
    let size = t.vfs.Vfs.size file in
    if page * t.ps < size then begin
      let chunk = t.vfs.Vfs.read file ~off:(page * t.ps) ~len:t.ps in
      Bytes.blit chunk 0 data 0 (Bytes.length chunk)
    end;
    (Cache.insert t.cache ~file ~lblock:page data).Cache.data

let apply_update t ~file ~page ~off data lsn =
  latch t;
  let f =
    match Cache.lookup t.cache ~file ~lblock:page with
    | Some f -> f
    | None ->
      (* Bring the page in before patching it. *)
      ignore (get t ~file ~page);
      Option.get (Cache.lookup t.cache ~file ~lblock:page)
  in
  Bytes.blit data 0 f.Cache.data off (Bytes.length data);
  Cache.mark_dirty t.cache f;
  Hashtbl.replace t.lsns (file, page) lsn

let flush_all t =
  let frames = Cache.dirty_frames t.cache () in
  (match frames with [] -> () | _ -> Logmgr.force t.log ~upto:(Logmgr.next_lsn t.log - 1));
  let files = Hashtbl.create 8 in
  List.iter
    (fun f ->
      write_back t f;
      Cache.mark_clean t.cache f;
      Hashtbl.replace files f.Cache.file ())
    frames;
  Hashtbl.iter (fun fd () -> t.vfs.Vfs.fsync fd) files

let drop t =
  Cache.iter t.cache (fun f -> Cache.mark_clean t.cache f);
  let frames = ref [] in
  Cache.iter t.cache (fun f -> frames := f :: !frames);
  List.iter (Cache.invalidate t.cache) !frames;
  Hashtbl.reset t.lsns

let dirty_pages t = List.length (Cache.dirty_frames t.cache ())
