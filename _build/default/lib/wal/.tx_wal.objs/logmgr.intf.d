lib/wal/logmgr.mli: Clock Config Logrec Seq Stats Vfs
