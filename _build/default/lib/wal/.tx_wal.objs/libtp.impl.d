lib/wal/libtp.ml: Bufpool Bytes Clock Config Cpu Hashtbl List Lockmgr Logmgr Logrec Stats Vfs
