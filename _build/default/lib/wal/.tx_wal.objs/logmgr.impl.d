lib/wal/logmgr.ml: Buffer Bytes Clock Config Cpu Logrec Seq Stats Vfs
