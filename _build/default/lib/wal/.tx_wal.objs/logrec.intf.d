lib/wal/logrec.mli:
