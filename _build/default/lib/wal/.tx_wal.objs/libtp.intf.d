lib/wal/libtp.mli: Bufpool Clock Config Lockmgr Logmgr Stats Vfs
