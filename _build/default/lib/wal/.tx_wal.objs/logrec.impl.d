lib/wal/logrec.ml: Bytes Char Enc Int64 List Option
