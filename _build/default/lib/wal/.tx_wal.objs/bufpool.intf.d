lib/wal/bufpool.mli: Clock Config Logmgr Logrec Stats Vfs
