lib/wal/bufpool.ml: Bytes Cache Clock Config Cpu Hashtbl List Logmgr Logrec Option Stats Vfs
