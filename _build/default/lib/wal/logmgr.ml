type t = {
  clock : Clock.t;
  stats : Stats.t;
  cfg : Config.t;
  vfs : Vfs.t;
  fd : Vfs.fd;
  buf : Buffer.t; (* records appended since [flushed] *)
  mutable flushed : int; (* bytes durable on disk *)
  mutable pending_commits : int;
}

let scan_end vfs fd =
  let size = vfs.Vfs.size fd in
  let data = vfs.Vfs.read fd ~off:0 ~len:size in
  let rec go off =
    match Logrec.decode data off with
    | Some (_, next) -> go next
    | None -> off
  in
  go 0

let open_log clock stats cfg vfs ~path =
  let fd =
    if vfs.Vfs.exists path then vfs.Vfs.open_file path
    else begin
      let fd = vfs.Vfs.create path in
      (* Creating the environment is a utility operation: make the log's
         directory entry durable so recovery can find it after a crash —
         fsync alone covers the file, not its name. *)
      vfs.Vfs.sync ();
      fd
    end
  in
  let tail = scan_end vfs fd in
  (* Drop any torn tail so new records append at a clean boundary. *)
  if tail < vfs.Vfs.size fd then vfs.Vfs.truncate fd tail;
  {
    clock;
    stats;
    cfg;
    vfs;
    fd;
    buf = Buffer.create 4096;
    flushed = tail;
    pending_commits = 0;
  }

let flushed_lsn t = t.flushed
let next_lsn t = t.flushed + Buffer.length t.buf

let append t rec_ =
  Cpu.charge t.clock t.stats t.cfg.Config.cpu Cpu.Log_record;
  let lsn = next_lsn t in
  Buffer.add_bytes t.buf (Logrec.encode rec_);
  Stats.incr t.stats "log.appends";
  lsn

let do_force t =
  if Buffer.length t.buf > 0 then begin
    let data = Buffer.to_bytes t.buf in
    t.vfs.Vfs.write t.fd ~off:t.flushed data;
    t.vfs.Vfs.fsync t.fd;
    t.flushed <- t.flushed + Bytes.length data;
    Buffer.clear t.buf;
    t.pending_commits <- 0;
    Stats.incr t.stats "log.forces"
  end

let force t ~upto = if upto >= t.flushed then do_force t

let force_commit t ~upto =
  if upto >= t.flushed then begin
    t.pending_commits <- t.pending_commits + 1;
    let timeout = t.cfg.Config.fs.group_commit_timeout_s in
    if timeout <= 0.0 || t.pending_commits >= t.cfg.Config.fs.group_commit_size
    then do_force t
    else begin
      (* Wait for company; at MPL 1 nobody arrives and the timeout
         expires (Section 4.4). *)
      Clock.advance t.clock timeout;
      Stats.add_time t.stats "log.group_commit_wait" timeout;
      do_force t
    end
  end

let read_from t lsn =
  let size = t.vfs.Vfs.size t.fd in
  let data = t.vfs.Vfs.read t.fd ~off:0 ~len:size in
  let rec seq off () =
    match Logrec.decode data off with
    | Some (rec_, next) -> Seq.Cons ((off, rec_), seq next)
    | None -> Seq.Nil
  in
  seq (max 0 lsn)

let truncate t =
  if Buffer.length t.buf > 0 then
    invalid_arg "Logmgr.truncate: unflushed records";
  t.vfs.Vfs.truncate t.fd 0;
  t.vfs.Vfs.fsync t.fd;
  t.flushed <- 0;
  Stats.incr t.stats "log.truncations"
