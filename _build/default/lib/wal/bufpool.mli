(** User-level buffer pool (the LRU cache of database pages that LIBTP
    keeps in shared memory, Section 3).

    STEAL / NO-FORCE: dirty pages may be evicted before commit (after
    forcing the log up to the page's last update — the WAL rule) and are
    not forced at commit. Note that pages read here travel through the
    kernel's buffer cache too; that double caching is inherent to the
    user-level architecture the paper compares against. *)

type t

val create : Clock.t -> Stats.t -> Config.t -> Vfs.t -> Logmgr.t -> pages:int -> t

val page_size : t -> int

val get : t -> file:int -> page:int -> bytes
(** The cached page contents (loaded from the file system on a miss,
    zero-filled past end of file). The returned bytes are the pool's
    buffer: callers must treat them as read-only and go through
    {!apply_update} for changes. Charges a pool latch (user mutex). *)

val apply_update : t -> file:int -> page:int -> off:int -> bytes -> Logrec.lsn -> unit
(** Overwrite a byte range of the cached page, marking it dirty and
    recording the LSN of the log record describing the change. *)

val flush_all : t -> unit
(** Write every dirty page back (checkpoint); forces the log first. *)

val drop : t -> unit
(** Forget all cached pages (crash simulation at the user level). *)

val dirty_pages : t -> int
