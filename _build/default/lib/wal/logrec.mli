(** Write-ahead-log record format for the user-level transaction system.

    Records carry before- and after-images of the changed byte range
    (Section 3: "before-image and after-image logging to support both redo
    and undo recovery"), a per-transaction back-chain for undo, and a
    checksum so a torn tail write is detected as the end of the log. *)

type lsn = int
(** Byte offset of the record in the log file. *)

val null_lsn : lsn

type body =
  | Begin
  | Update of {
      file : int;  (** inode number of the database file *)
      page : int;
      off : int;  (** byte offset of the change within the page *)
      before : bytes;
      after : bytes;  (** same length as [before] *)
    }
  | Commit
  | Abort
  | Checkpoint of { active : int list }

type t = {
  txn : int;
  prev : lsn;  (** previous record of the same transaction, or [null_lsn] *)
  body : body;
}

val encode : t -> bytes

val decode : bytes -> int -> (t * int) option
(** [decode buf off] parses the record at [off], returning it and the
    offset just past it; [None] on a truncated, torn or corrupt record
    (which recovery treats as end of log). *)

val size : t -> int
(** Encoded size in bytes. *)
