type lsn = int

let null_lsn = -1

type body =
  | Begin
  | Update of {
      file : int;
      page : int;
      off : int;
      before : bytes;
      after : bytes;
    }
  | Commit
  | Abort
  | Checkpoint of { active : int list }

type t = { txn : int; prev : lsn; body : body }

let body_size = function
  | Begin | Commit | Abort -> 0
  | Update { before; after; _ } -> 12 + 2 + Bytes.length before + 2 + Bytes.length after
  | Checkpoint { active } -> 2 + (4 * List.length active)

(* Header: u32 total size | u8 kind | u32 txn | i64 prev | u32 checksum. *)
let header_size = 21

let size t = header_size + body_size t.body

let kind_code = function
  | Begin -> 0
  | Update _ -> 1
  | Commit -> 2
  | Abort -> 3
  | Checkpoint _ -> 4

let checksum b off len =
  let acc = ref 0 in
  for i = off to off + len - 1 do
    acc :=
      (!acc + (Char.code (Bytes.unsafe_get b i) * (1 + ((i - off) land 0xff))))
      land 0x3fffffff
  done;
  !acc

let encode t =
  let total = size t in
  let b = Bytes.make total '\000' in
  Enc.set_u32 b 0 total;
  Enc.set_u8 b 4 (kind_code t.body);
  Enc.set_u32 b 5 t.txn;
  Enc.set_i64 b 9 (Int64.of_int t.prev);
  (match t.body with
  | Begin | Commit | Abort -> ()
  | Update { file; page; off; before; after } ->
    Enc.set_u32 b 21 file;
    Enc.set_u32 b 25 page;
    Enc.set_u32 b 29 off;
    Enc.set_u16 b 33 (Bytes.length before);
    Bytes.blit before 0 b 35 (Bytes.length before);
    let apos = 35 + Bytes.length before in
    Enc.set_u16 b apos (Bytes.length after);
    Bytes.blit after 0 b (apos + 2) (Bytes.length after)
  | Checkpoint { active } ->
    Enc.set_u16 b 21 (List.length active);
    List.iteri (fun i txn -> Enc.set_u32 b (23 + (4 * i)) txn) active);
  Enc.set_u32 b 17 ((checksum b header_size (total - header_size) lxor (total * 2654435761)) land 0xffffffff);
  b

let decode buf off =
  let len = Bytes.length buf in
  if off + header_size > len then None
  else
    let total = Enc.get_u32 buf off in
    if total < header_size || off + total > len then None
    else
      let stored = Enc.get_u32 buf (off + 17) in
      let body_len = total - header_size in
      (* Checksum over the body, relative to the record. *)
      let sub = Bytes.sub buf off total in
      let computed =
        (checksum sub header_size body_len lxor (total * 2654435761)) land 0xffffffff
      in
      if stored land 0xffffffff <> computed land 0xffffffff then None
      else
        let txn = Enc.get_u32 buf (off + 5) in
        let prev = Int64.to_int (Enc.get_i64 buf (off + 9)) in
        let body =
          match Enc.get_u8 buf (off + 4) with
          | 0 -> Some Begin
          | 2 -> Some Commit
          | 3 -> Some Abort
          | 1 ->
            let file = Enc.get_u32 buf (off + 21) in
            let page = Enc.get_u32 buf (off + 25) in
            let boff = Enc.get_u32 buf (off + 29) in
            let blen = Enc.get_u16 buf (off + 33) in
            let before = Bytes.sub buf (off + 35) blen in
            let apos = off + 35 + blen in
            let alen = Enc.get_u16 buf apos in
            let after = Bytes.sub buf (apos + 2) alen in
            Some (Update { file; page; off = boff; before; after })
          | 4 ->
            let n = Enc.get_u16 buf (off + 21) in
            let active = List.init n (fun i -> Enc.get_u32 buf (off + 23 + (4 * i))) in
            Some (Checkpoint { active })
          | _ -> None
        in
        Option.map (fun body -> ({ txn; prev; body }, off + total)) body
