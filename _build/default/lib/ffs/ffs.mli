(** The read-optimized, update-in-place file system — the paper's baseline
    (Sprite's conventional FFS-derived file system).

    Blocks are assigned {e permanent} disk addresses when first allocated;
    rewriting a block overwrites the same address. The allocator chases
    contiguity (next-fit from the file's previous block), so sequentially
    written files stay sequential on disk and later random updates do not
    move them — which is exactly why this system wins the SCAN benchmark
    of Section 5.3 and pays seeks during transaction processing.

    Dirty pages are delayed writes: a 30-second syncer flushes them,
    elevator-sorted into the disk queue (Section 5.1). [fsync] forces one
    file synchronously. There is no crash-consistency machinery beyond
    {!fsck}, mirroring the original. *)

type t

exception Crashed

val format : Disk.t -> Clock.t -> Stats.t -> Config.t -> t
val mount : Disk.t -> Clock.t -> Stats.t -> Config.t -> t
val unmount : t -> unit

val crash : t -> unit
(** Discard all volatile state; the disk image keeps only what was
    physically written. *)

val vfs : t -> Vfs.t

val config : t -> Config.t
val clock : t -> Clock.t
val stats : t -> Stats.t
val cache : t -> Cache.t
val free_blocks : t -> int
val inum_of : t -> string -> int
val sync : t -> unit

type fsck_report = {
  scanned_inodes : int;
  leaked_blocks : int;  (** marked used but referenced by no inode *)
  cross_allocated : int;  (** referenced by more than one inode *)
  fixed : bool;  (** whether the bitmap was rewritten *)
}

val fsck : t -> fsck_report
(** Rebuild the allocation bitmap from the inodes, reporting (and fixing)
    leaks from an unclean shutdown. *)

val contiguity : t -> string -> float
(** Fraction of a file's adjacent logical blocks that are also adjacent
    on disk — 1.0 for a perfectly laid-out file. Used by the SCAN
    experiment to show the two systems' layouts diverging. *)
