lib/db/hashdb.ml: Bytes Clock Config Cpu Enc Hashtbl List Pager Stats String
