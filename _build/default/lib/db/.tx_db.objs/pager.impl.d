lib/db/pager.ml: Bytes Libtp Vfs
