lib/db/btree.ml: Bytes Clock Config Cpu Enc List Option Pager Printf Stats String
