lib/db/db.mli: Clock Config Pager Stats
