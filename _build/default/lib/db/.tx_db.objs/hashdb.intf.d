lib/db/hashdb.mli: Clock Config Pager Stats
