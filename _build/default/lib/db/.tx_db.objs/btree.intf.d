lib/db/btree.mli: Clock Config Pager Stats
