lib/db/recno.ml: Bytes Clock Config Cpu Enc Pager Printf Stats
