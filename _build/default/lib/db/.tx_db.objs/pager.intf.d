lib/db/pager.mli: Libtp Vfs
