lib/db/recno.mli: Clock Config Pager Stats
