lib/db/db.ml: Btree Bytes Enc Hashdb Pager Recno
