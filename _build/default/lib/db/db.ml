type kind = Btree_db | Hash_db of int | Recno_db of int

type handle =
  | Hbtree of Btree.t
  | Hhash of Hashdb.t
  | Hrecno of Recno.t

type t = { kind : kind; handle : handle }

(* Each access method stamps its own magic on page 0; opening with the
   wrong kind must fail rather than reinterpret the pages. *)
let detect_kind (pager : Pager.t) =
  let meta = pager.Pager.get 0 in
  match Enc.get_u32 meta 0 with
  | 0x42545231 -> Some Btree_db
  | 0x48534831 -> Some (Hash_db 0)
  | 0x52454331 -> Some (Recno_db 0)
  | _ -> None

let same_family a b =
  match (a, b) with
  | Btree_db, Btree_db | Hash_db _, Hash_db _ | Recno_db _, Recno_db _ -> true
  | _ -> false

let opendb clock stats cpu pager kind =
  (match detect_kind pager with
  | Some existing when not (same_family existing kind) ->
    invalid_arg "Db.opendb: file holds a different access method"
  | _ -> ());
  let handle =
    match kind with
    | Btree_db -> Hbtree (Btree.attach clock stats cpu pager)
    | Hash_db buckets -> Hhash (Hashdb.attach clock stats cpu pager ~buckets:(max 1 buckets))
    | Recno_db reclen -> Hrecno (Recno.attach clock stats cpu pager ~reclen)
  in
  { kind; handle }

let kind t = t.kind

let recno_key key =
  match int_of_string_opt key with
  | Some n when n >= 0 -> n
  | _ -> invalid_arg "Db: recno keys are non-negative decimal record numbers"

let get t key =
  match t.handle with
  | Hbtree bt -> Btree.find bt key
  | Hhash h -> Hashdb.find h key
  | Hrecno r -> (
    match Recno.get r (recno_key key) with
    | data -> Some (Bytes.to_string data)
    | exception Not_found -> None)

let put t key value =
  match t.handle with
  | Hbtree bt -> Btree.insert bt key value
  | Hhash h -> Hashdb.insert h key value
  | Hrecno r ->
    let n = recno_key key in
    let data = Bytes.of_string value in
    if n = Recno.count r then ignore (Recno.append r data)
    else Recno.set r n data

let del t key =
  match t.handle with
  | Hbtree bt -> Btree.delete bt key
  | Hhash h -> Hashdb.delete h key
  | Hrecno _ -> invalid_arg "Db.del: recno records cannot be deleted"

let seq t f =
  match t.handle with
  | Hbtree bt -> Btree.iter bt f
  | Hhash h -> Hashdb.iter h f
  | Hrecno r ->
    Recno.iter r (fun recno data -> f (string_of_int recno) (Bytes.to_string data))

let count t =
  match t.handle with
  | Hbtree bt -> Btree.count bt
  | Hhash h -> Hashdb.count h
  | Hrecno r -> Recno.count r
