(** The record-oriented subroutine interface of 4.4BSD db(3), unified
    over the three access methods — the surface the paper's transaction
    application is written against ("the record-oriented subroutine
    interface provided by the 4.4BSD database access routines [to] read
    and write B-Tree, hashed, or fixed-length records").

    Keys are byte strings for B-tree and hash, and decimal record
    numbers for recno (as db(3)'s [DB_RECNO] does via its integer keys).
    A handle is bound to one pager — plain, WAL, or kernel — so the same
    application code runs on all three transaction configurations. *)

type kind =
  | Btree_db  (** sorted keys, data in the leaves *)
  | Hash_db of int  (** bucket count for a fresh database *)
  | Recno_db of int  (** fixed record length *)

type t

val opendb : Clock.t -> Stats.t -> Config.cpu -> Pager.t -> kind -> t
(** Open (creating if blank) a database of the given kind through the
    pager.
    @raise Invalid_argument if the file exists with a different kind. *)

val kind : t -> kind

val get : t -> string -> string option
(** Look up by key (recno: the key is a decimal record number). *)

val put : t -> string -> string -> unit
(** Insert or replace. For recno, the key must be the next record number
    or an existing one (db(3) recno semantics for fixed-length files). *)

val del : t -> string -> bool
(** Delete by key. Recno files do not support deletion (fixed-length
    records are overwritten, not removed); raises
    [Invalid_argument]. *)

val seq : t -> (string -> string -> bool) -> unit
(** Sequential scan: key order for B-tree, record order for recno,
    unspecified order for hash. Stops early on [false]. *)

val count : t -> int
