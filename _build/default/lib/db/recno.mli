(** Fixed-length record files, addressable by record number — the access
    method behind the TPC-B history relation ("records are accessible
    sequentially or by record number").

    Records are packed whole into pages (no record straddles a page
    boundary). Appending is sequential, which on LFS turns the history
    file into a pure log-friendly stream. *)

type t

val attach : Clock.t -> Stats.t -> Config.cpu -> Pager.t -> reclen:int -> t
(** Open the file through the pager; initializes it with the given
    record length if blank.
    @raise Invalid_argument if the stored record length disagrees with
    [reclen], or [reclen] exceeds a page. *)

val reclen : t -> int
val count : t -> int

val append : t -> bytes -> int
(** Add a record at the end; returns its record number.
    @raise Invalid_argument on a wrong-sized record. *)

val get : t -> int -> bytes
(** @raise Not_found if the record number is out of range. *)

val set : t -> int -> bytes -> unit
(** Overwrite an existing record. *)

val iter : t -> (int -> bytes -> bool) -> unit
(** Sequential scan; stops early when the callback returns [false]. *)
