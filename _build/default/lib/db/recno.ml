let magic = 0x52454331 (* "REC1" *)

type t = {
  clock : Clock.t;
  stats : Stats.t;
  cpu : Config.cpu;
  pager : Pager.t;
  rl : int;
  mutable n : int;
}

let per_page t = t.pager.Pager.page_size / t.rl

let write_meta t =
  let b = Bytes.make t.pager.Pager.page_size '\000' in
  Enc.set_u32 b 0 magic;
  Enc.set_u32 b 4 t.rl;
  Enc.set_u32 b 8 t.n;
  t.pager.Pager.put 0 b

let attach clock stats cpu (pager : Pager.t) ~reclen =
  if reclen <= 0 || reclen > pager.Pager.page_size then
    invalid_arg "Recno.attach: record length must fit in a page";
  let meta = pager.Pager.get 0 in
  if Enc.get_u32 meta 0 = magic then begin
    let stored = Enc.get_u32 meta 4 in
    if stored <> reclen then
      invalid_arg
        (Printf.sprintf "Recno.attach: record length %d, file has %d" reclen
           stored);
    { clock; stats; cpu; pager; rl = reclen; n = Enc.get_u32 meta 8 }
  end
  else begin
    let t = { clock; stats; cpu; pager; rl = reclen; n = 0 } in
    write_meta t;
    t
  end

let reclen t = t.rl
let count t = t.n

let charge t kind = Cpu.charge t.clock t.stats t.cpu kind

let location t recno =
  let pp = per_page t in
  (1 + (recno / pp), recno mod pp * t.rl)

let check_size t data =
  if Bytes.length data <> t.rl then
    invalid_arg
      (Printf.sprintf "Recno: record must be %d bytes, got %d" t.rl
         (Bytes.length data))

let set_at t recno data =
  let page, off = location t recno in
  let b = Bytes.copy (t.pager.Pager.get page) in
  Bytes.blit data 0 b off t.rl;
  t.pager.Pager.put page b

let append t data =
  charge t Cpu.Record_op;
  check_size t data;
  let recno = t.n in
  set_at t recno data;
  t.n <- recno + 1;
  write_meta t;
  recno

let get t recno =
  charge t Cpu.Record_op;
  if recno < 0 || recno >= t.n then raise Not_found;
  let page, off = location t recno in
  Bytes.sub (t.pager.Pager.get page) off t.rl

let set t recno data =
  charge t Cpu.Record_op;
  check_size t data;
  if recno < 0 || recno >= t.n then raise Not_found;
  set_at t recno data

let iter t f =
  let continue_ = ref true in
  let recno = ref 0 in
  while !continue_ && !recno < t.n do
    charge t Cpu.Cursor_next;
    let page, off = location t !recno in
    let data = Bytes.sub (t.pager.Pager.get page) off t.rl in
    continue_ := f !recno data;
    incr recno
  done
