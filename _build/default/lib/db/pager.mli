(** The page-access interface the record library is written against.

    The paper's central comparison runs the {e same} access methods on
    three substrates; a [Pager.t] is that seam. {!plain} goes straight to
    the file system (no transactions); {!wal} routes every page through
    LIBTP's locks, log and buffer pool (the user-level system of
    Section 3); the kernel pager for the embedded system lives in
    [lib/core] next to the transaction manager it belongs to.

    Contract: [get] returns bytes the caller must not mutate; changed
    pages are produced fresh and handed to [put] whole (the WAL pager
    diffs them to log only the changed range, Section 3's byte-range
    logging). *)

type t = {
  page_size : int;
  get : int -> bytes;
  put : int -> bytes -> unit;
}

val plain : Vfs.t -> Vfs.fd -> t
(** Direct, non-transactional paging (used to bulk-load databases and by
    non-transactional applications). *)

val wal : Libtp.t -> Libtp.txn -> Vfs.fd -> t
(** User-level transactional paging: [get] takes a shared page lock,
    [put] an exclusive one and logs before/after images. The pager is
    bound to one transaction. *)
