(** Hashed access method (the third record format of the 4.4BSD db(3)
    interface the paper's record layer exposes).

    A fixed directory of buckets is chosen at creation; each bucket is a
    page with an overflow chain. This is simpler than db(3)'s extendible
    linear hashing but exercises the same page-access pattern: one page
    probe per lookup when the table is sized sensibly, chains when it is
    not. *)

type t

exception Entry_too_large

val attach : Clock.t -> Stats.t -> Config.cpu -> Pager.t -> buckets:int -> t
(** Open through the pager, creating an empty table with [buckets]
    buckets if the file is blank ([buckets] is then ignored on reopen). *)

val find : t -> string -> string option
val insert : t -> string -> string -> unit
val delete : t -> string -> bool
val count : t -> int
val iter : t -> (string -> string -> bool) -> unit
(** Unordered scan over all buckets and chains. *)
