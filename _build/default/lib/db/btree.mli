(** Page-based B+tree access method, in the style of the 4.4BSD db(3)
    B-tree used by the paper's benchmark: the TPC-B account, branch and
    teller relations are "primary B-Tree indices (the data resides in the
    B-Tree file)".

    Keys and values are byte strings ordered lexicographically; data
    lives in the leaves, which are chained for key-order scans (the SCAN
    experiment of Section 5.3 is one long cursor walk). Deletion is lazy
    — emptied pages are not merged — matching db(3)'s behaviour.

    The tree is bound to a {!Pager.t}, so the same code runs
    non-transactionally, under LIBTP, or under the embedded kernel
    transaction manager. Every [find]/[insert]/[delete] charges one
    record-operation of query-processing CPU; cursor steps charge the
    (cheaper) per-record scan cost. *)

type t

exception Entry_too_large

val attach : Clock.t -> Stats.t -> Config.cpu -> Pager.t -> t
(** Open the tree through the pager, initializing an empty tree if the
    meta page is blank. *)

val find : t -> string -> string option
val insert : t -> string -> string -> unit
(** Upsert. @raise Entry_too_large if the pair cannot fit four-to-a-page. *)

val delete : t -> string -> bool
(** [true] if the key existed. *)

val iter : t -> ?from:string -> (string -> string -> bool) -> unit
(** In-order scan starting at the first key [>= from] (or the smallest
    key); stops early when the callback returns [false]. *)

val count : t -> int
val height : t -> int

val check : t -> unit
(** Structural invariant check (sorted keys, separator bounds, leaf chain
    order); raises [Failure] on violation. For tests. *)
