type t = {
  page_size : int;
  get : int -> bytes;
  put : int -> bytes -> unit;
}

let plain (vfs : Vfs.t) fd =
  let ps = vfs.Vfs.block_size in
  {
    page_size = ps;
    get =
      (fun page ->
        let b = Bytes.make ps '\000' in
        let size = vfs.Vfs.size fd in
        if page * ps < size then begin
          let chunk = vfs.Vfs.read fd ~off:(page * ps) ~len:ps in
          Bytes.blit chunk 0 b 0 (Bytes.length chunk)
        end;
        b);
    put = (fun page data -> vfs.Vfs.write fd ~off:(page * ps) data);
  }

let wal env txn fd =
  {
    page_size = Libtp.page_size env;
    get = (fun page -> Bytes.copy (Libtp.read_page env txn ~file:fd ~page));
    put = (fun page data -> Libtp.write_page env txn ~file:fd ~page data);
  }
