(* File-system conformance suite: behavioural cases every Vfs.t
   implementation must satisfy, run against both the log-structured and the
   read-optimized file systems. A harness supplies a fresh file system and
   a sync-then-remount operation (crash + recover/mount). *)

type harness = { vfs : unit -> Vfs.t; sync_remount : unit -> unit }

let bs h = (h.vfs ()).Vfs.block_size

let test_write_read h () =
  let v = h.vfs () in
  let fd = v.Vfs.create "/c/basic" in
  let data = Tutil.payload 11 1000 in
  v.Vfs.write fd ~off:0 data;
  Tutil.check_bytes "roundtrip" data (v.Vfs.read fd ~off:0 ~len:1000)

let test_overwrite h () =
  let v = h.vfs () in
  let n = 3 * bs h in
  let fd = v.Vfs.create "/c/over" in
  v.Vfs.write fd ~off:0 (Tutil.payload 1 n);
  let newer = Tutil.payload 2 n in
  v.Vfs.write fd ~off:0 newer;
  Tutil.check_bytes "latest wins" newer (v.Vfs.read fd ~off:0 ~len:n);
  Alcotest.(check int) "size unchanged" n (v.Vfs.size fd)

let test_append_growth h () =
  let v = h.vfs () in
  let fd = v.Vfs.create "/c/log" in
  let chunks = List.init 20 (fun i -> Tutil.payload i 300) in
  List.iteri (fun i c -> v.Vfs.write fd ~off:(i * 300) c) chunks;
  Alcotest.(check int) "size" 6000 (v.Vfs.size fd);
  List.iteri
    (fun i c -> Tutil.check_bytes "chunk" c (v.Vfs.read fd ~off:(i * 300) ~len:300))
    chunks

let test_deep_paths h () =
  let v = h.vfs () in
  v.Vfs.mkdir "/c/a";
  v.Vfs.mkdir "/c/a/b";
  v.Vfs.mkdir "/c/a/b/c";
  let fd = v.Vfs.create "/c/a/b/c/leaf" in
  v.Vfs.write fd ~off:0 (Bytes.of_string "x");
  Alcotest.(check bool) "resolves" true (v.Vfs.exists "/c/a/b/c/leaf");
  Alcotest.(check (list string)) "listing" [ "leaf" ]
    (List.map fst (v.Vfs.readdir "/c/a/b/c"))

let test_remove_then_recreate h () =
  let v = h.vfs () in
  let fd = v.Vfs.create "/c/tmp" in
  v.Vfs.write fd ~off:0 (Tutil.payload 5 5000);
  v.Vfs.remove "/c/tmp";
  Alcotest.(check bool) "gone" false (v.Vfs.exists "/c/tmp");
  let fd = v.Vfs.create "/c/tmp" in
  Alcotest.(check int) "fresh file empty" 0 (v.Vfs.size fd);
  Alcotest.(check string) "no stale bytes" ""
    (Bytes.to_string (v.Vfs.read fd ~off:0 ~len:10))

let test_durability h () =
  let v = h.vfs () in
  let data = Tutil.payload 21 (2 * bs h) in
  let fd = v.Vfs.create "/c/durable" in
  v.Vfs.write fd ~off:0 data;
  h.sync_remount ();
  let v = h.vfs () in
  let fd = v.Vfs.open_file "/c/durable" in
  Tutil.check_bytes "survives remount" data (v.Vfs.read fd ~off:0 ~len:(2 * bs h));
  (* And the namespace survives too. *)
  Alcotest.(check bool) "dir intact" true (v.Vfs.exists "/c")

let test_many_files_durable h () =
  let v = h.vfs () in
  let files =
    List.init 30 (fun i ->
        let p = Printf.sprintf "/c/n%02d" i in
        let d = Tutil.payload (100 + i) (137 * (i + 1)) in
        let fd = v.Vfs.create p in
        v.Vfs.write fd ~off:0 d;
        (p, d))
  in
  h.sync_remount ();
  let v = h.vfs () in
  List.iter
    (fun (p, d) ->
      let fd = v.Vfs.open_file p in
      Alcotest.(check int) (p ^ " size") (Bytes.length d) (v.Vfs.size fd);
      Tutil.check_bytes p d (v.Vfs.read fd ~off:0 ~len:(Bytes.length d)))
    files

let test_error_paths h () =
  let v = h.vfs () in
  let expect code thunk =
    match thunk () with
    | exception Vfs.Error (c, _) -> c = code
    | _ -> false
  in
  Alcotest.(check bool) "open missing" true
    (expect Vfs.Not_found (fun () -> v.Vfs.open_file "/c/nothing"));
  ignore (v.Vfs.create "/c/f1");
  Alcotest.(check bool) "create duplicate" true
    (expect Vfs.Exists (fun () -> v.Vfs.create "/c/f1"));
  Alcotest.(check bool) "open dir as file" true
    (expect Vfs.Is_dir (fun () -> v.Vfs.open_file "/c"));
  v.Vfs.mkdir "/c/d1";
  ignore (v.Vfs.create "/c/d1/inner");
  Alcotest.(check bool) "remove non-empty dir" true
    (expect Vfs.Invalid (fun () -> v.Vfs.remove "/c/d1"))

let test_fsync_durability h () =
  let v = h.vfs () in
  let fd = v.Vfs.create "/c/fsynced" in
  let data = Tutil.payload 31 (3 * bs h) in
  v.Vfs.write fd ~off:0 data;
  v.Vfs.fsync fd;
  Tutil.check_bytes "readable after fsync" data (v.Vfs.read fd ~off:0 ~len:(3 * bs h))

let test_stat_on_directory h () =
  let v = h.vfs () in
  v.Vfs.mkdir "/c/statdir";
  let st = v.Vfs.stat "/c/statdir" in
  Alcotest.(check bool) "kind is Dir" true (st.Vfs.kind = Vfs.Dir);
  let st_root = v.Vfs.stat "/" in
  Alcotest.(check bool) "root is Dir" true (st_root.Vfs.kind = Vfs.Dir)

let test_readdir_kinds h () =
  let v = h.vfs () in
  v.Vfs.mkdir "/c/mixed";
  v.Vfs.mkdir "/c/mixed/sub";
  ignore (v.Vfs.create "/c/mixed/file");
  let entries = List.sort compare (v.Vfs.readdir "/c/mixed") in
  Alcotest.(check bool) "file and dir kinds reported" true
    (entries = [ ("file", Vfs.File); ("sub", Vfs.Dir) ])

let test_zero_length_file h () =
  let v = h.vfs () in
  let fd = v.Vfs.create "/c/empty" in
  Alcotest.(check int) "size 0" 0 (v.Vfs.size fd);
  Alcotest.(check string) "empty read" ""
    (Bytes.to_string (v.Vfs.read fd ~off:0 ~len:100));
  h.sync_remount ();
  let v = h.vfs () in
  Alcotest.(check bool) "survives remount" true (v.Vfs.exists "/c/empty");
  Alcotest.(check int) "still size 0" 0 (v.Vfs.size (v.Vfs.open_file "/c/empty"))

let test_truncate_to_zero_and_rewrite h () =
  let v = h.vfs () in
  let fd = v.Vfs.create "/c/reset" in
  v.Vfs.write fd ~off:0 (Tutil.payload 77 (4 * bs h));
  v.Vfs.truncate fd 0;
  Alcotest.(check int) "emptied" 0 (v.Vfs.size fd);
  let fresh = Tutil.payload 78 500 in
  v.Vfs.write fd ~off:0 fresh;
  Tutil.check_bytes "rewritten" fresh (v.Vfs.read fd ~off:0 ~len:500);
  Alcotest.(check int) "new size" 500 (v.Vfs.size fd)

let cases make =
  let with_harness f () =
    let h = make () in
    let v = h.vfs () in
    v.Vfs.mkdir "/c";
    f h ()
  in
  [
    Alcotest.test_case "write/read" `Quick (with_harness test_write_read);
    Alcotest.test_case "overwrite" `Quick (with_harness test_overwrite);
    Alcotest.test_case "append growth" `Quick (with_harness test_append_growth);
    Alcotest.test_case "deep paths" `Quick (with_harness test_deep_paths);
    Alcotest.test_case "remove/recreate" `Quick
      (with_harness test_remove_then_recreate);
    Alcotest.test_case "durability" `Quick (with_harness test_durability);
    Alcotest.test_case "many files durable" `Quick
      (with_harness test_many_files_durable);
    Alcotest.test_case "error paths" `Quick (with_harness test_error_paths);
    Alcotest.test_case "fsync durability" `Quick (with_harness test_fsync_durability);
    Alcotest.test_case "stat on directory" `Quick (with_harness test_stat_on_directory);
    Alcotest.test_case "readdir kinds" `Quick (with_harness test_readdir_kinds);
    Alcotest.test_case "zero-length file" `Quick (with_harness test_zero_length_file);
    Alcotest.test_case "truncate to zero" `Quick
      (with_harness test_truncate_to_zero_and_rewrite);
  ]
