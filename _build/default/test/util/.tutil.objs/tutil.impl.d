test/util/tutil.ml: Alcotest Bytes Char Clock Config Disk Lfs QCheck2 QCheck_alcotest Stats
