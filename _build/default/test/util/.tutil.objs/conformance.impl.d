test/util/conformance.ml: Alcotest Bytes List Printf Tutil Vfs
