(* Focused tests for the Inode module: block-map manipulation, the
   addressing-regime boundaries (direct / single-indirect /
   double-indirect), codecs, and truncation. *)

let bs = 4096
let per = Inode.per_indirect ~block_size:bs (* 1024 *)

let mk () = Inode.create ~inum:7 ~kind:Vfs.File

let test_direct_addressing () =
  let ino = mk () in
  Alcotest.(check int) "empty map" 0 (Inode.nblocks ino);
  Alcotest.(check int) "hole reads 0" 0 (Inode.get_addr ino 5);
  Inode.set_addr ino ~block_size:bs 0 100;
  Inode.set_addr ino ~block_size:bs 11 111;
  Alcotest.(check int) "lblock 0" 100 (Inode.get_addr ino 0);
  Alcotest.(check int) "lblock 11" 111 (Inode.get_addr ino 11);
  Alcotest.(check int) "nblocks" 12 (Inode.nblocks ino);
  Alcotest.(check int) "no indirects yet" 0 (Inode.indirect_count ino ~block_size:bs);
  Alcotest.(check bool) "inode dirty" true ino.Inode.dirty;
  Alcotest.(check int) "no dirty indirect" 0 (Hashtbl.length ino.Inode.dirty_ind)

let test_indirect_boundaries () =
  let ino = mk () in
  (* First block beyond the direct range. *)
  Inode.set_addr ino ~block_size:bs Inode.ndirect 500;
  Alcotest.(check int) "one indirect" 1 (Inode.indirect_count ino ~block_size:bs);
  Alcotest.(check bool) "indirect 0 dirty" true (Hashtbl.mem ino.Inode.dirty_ind 0);
  Alcotest.(check bool) "no double-indirect yet" false ino.Inode.dbl_dirty;
  (* Last block of the first indirect. *)
  Inode.set_addr ino ~block_size:bs (Inode.ndirect + per - 1) 501;
  Alcotest.(check int) "still one indirect" 1 (Inode.indirect_count ino ~block_size:bs);
  (* First block of the second indirect: the double-indirect appears. *)
  Inode.set_addr ino ~block_size:bs (Inode.ndirect + per) 502;
  Alcotest.(check int) "two indirects" 2 (Inode.indirect_count ino ~block_size:bs);
  Alcotest.(check bool) "indirect 1 dirty" true (Hashtbl.mem ino.Inode.dirty_ind 1);
  Alcotest.(check bool) "double-indirect dirty" true ino.Inode.dbl_dirty

let test_inode_record_roundtrip () =
  let ino = mk () in
  ino.Inode.size <- 123_456;
  ino.Inode.mtime <- 42.5;
  ino.Inode.protected_ <- true;
  for i = 0 to 11 do
    Inode.set_addr ino ~block_size:bs i (1000 + i)
  done;
  let block = Bytes.make bs '\000' in
  Bytes.blit (Inode.encode ino) 0 block 512 256;
  match Inode.decode block 512 with
  | None -> Alcotest.fail "decode failed"
  | Some d ->
    Alcotest.(check int) "inum" 7 d.Inode.inum;
    Alcotest.(check int) "size" 123_456 d.Inode.size;
    Alcotest.(check (float 0.0)) "mtime" 42.5 d.Inode.mtime;
    Alcotest.(check bool) "protected" true d.Inode.protected_;
    Alcotest.(check bool) "kind" true (d.Inode.kind = Vfs.File);
    for i = 0 to 11 do
      Alcotest.(check int) "direct addr" (1000 + i) (Inode.get_addr d i)
    done;
    Alcotest.(check bool) "decoded clean" false d.Inode.dirty

let test_decode_blank_slot () =
  Alcotest.(check bool) "blank slot is None" true
    (Inode.decode (Bytes.make bs '\000') 0 = None)

let test_indirect_block_roundtrip () =
  let ino = mk () in
  (* Populate the second indirect block's range sparsely. *)
  let lo = Inode.ndirect + per in
  Inode.set_addr ino ~block_size:bs lo 7_000;
  Inode.set_addr ino ~block_size:bs (lo + 17) 7_017;
  Inode.set_addr ino ~block_size:bs (lo + per - 1) 7_999;
  let encoded = Inode.encode_indirect ino ~block_size:bs 1 in
  (* Clear and rebuild from the encoded block. *)
  let fresh = mk () in
  (* Make the fresh inode's map the same size (nmap governs the range). *)
  Inode.set_addr fresh ~block_size:bs (lo + per - 1) 0;
  Inode.decode_indirect fresh ~block_size:bs 1 encoded;
  Alcotest.(check int) "first" 7_000 (Inode.get_addr fresh lo);
  Alcotest.(check int) "middle" 7_017 (Inode.get_addr fresh (lo + 17));
  Alcotest.(check int) "last" 7_999 (Inode.get_addr fresh (lo + per - 1))

let test_double_indirect_roundtrip () =
  let ino = mk () in
  Inode.set_addr ino ~block_size:bs (Inode.ndirect + (3 * per)) 1 (* 4 indirects *);
  ino.Inode.ind_addrs <- [| 11; 22; 33; 44 |];
  let b = Inode.encode_double ino ~block_size:bs in
  let fresh = mk () in
  Inode.set_addr fresh ~block_size:bs (Inode.ndirect + (3 * per)) 1;
  fresh.Inode.ind_addrs <- [| 11; 0; 0; 0 |];
  Inode.decode_double fresh ~block_size:bs b;
  (* Indirect 0 lives in the inode record, not the double block. *)
  Alcotest.(check int) "ind 1" 22 fresh.Inode.ind_addrs.(1);
  Alcotest.(check int) "ind 2" 33 fresh.Inode.ind_addrs.(2);
  Alcotest.(check int) "ind 3" 44 fresh.Inode.ind_addrs.(3)

let test_truncate_map () =
  let ino = mk () in
  for i = 0 to Inode.ndirect + per + 5 do
    Inode.set_addr ino ~block_size:bs i (10_000 + i)
  done;
  Alcotest.(check int) "two indirects" 2 (Inode.indirect_count ino ~block_size:bs);
  Inode.truncate_map ino ~block_size:bs 5;
  Alcotest.(check int) "shrunk" 5 (Inode.nblocks ino);
  Alcotest.(check int) "past cut reads 0" 0 (Inode.get_addr ino 10);
  Alcotest.(check int) "no indirects left" 0 (Inode.indirect_count ino ~block_size:bs);
  (* Regrow: old entries must not resurface. *)
  Inode.set_addr ino ~block_size:bs 9 1;
  Alcotest.(check int) "hole between stays 0" 0 (Inode.get_addr ino 7)

let prop_set_get =
  Tutil.qtest "set_addr/get_addr agree with a map model"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_bound 3000) (int_range 1 100000)))
    (fun ops ->
      let ino = mk () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (lblock, addr) ->
          Inode.set_addr ino ~block_size:bs lblock addr;
          Hashtbl.replace model lblock addr)
        ops;
      Hashtbl.fold
        (fun lblock addr ok -> ok && Inode.get_addr ino lblock = addr)
        model true)

let () =
  Alcotest.run "inode"
    [
      ( "map",
        [
          Alcotest.test_case "direct" `Quick test_direct_addressing;
          Alcotest.test_case "indirect boundaries" `Quick test_indirect_boundaries;
          Alcotest.test_case "truncate" `Quick test_truncate_map;
          prop_set_get;
        ] );
      ( "codec",
        [
          Alcotest.test_case "record roundtrip" `Quick test_inode_record_roundtrip;
          Alcotest.test_case "blank slot" `Quick test_decode_blank_slot;
          Alcotest.test_case "indirect roundtrip" `Quick test_indirect_block_roundtrip;
          Alcotest.test_case "double-indirect roundtrip" `Quick
            test_double_indirect_roundtrip;
        ] );
    ]
