(* Tests for the buffer cache: lookup/insert, LRU eviction, dirty
   writeback, pinning, and transaction-owned frames. *)

let mk ?(capacity = 4) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  let cache = Cache.create clock stats Config.default.Config.cpu ~capacity in
  (clock, stats, cache)

let block c = Bytes.make 16 c

let test_insert_lookup () =
  let _, _, c = mk () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Alcotest.(check bool) "same frame on lookup" true
    (match Cache.lookup c ~file:1 ~lblock:0 with
    | Some f' -> f' == f
    | None -> false);
  Alcotest.(check bool) "miss on other key" true
    (Cache.lookup c ~file:1 ~lblock:1 = None)

let test_lru_eviction_order () =
  let _, _, c = mk ~capacity:2 () in
  let evicted = ref [] in
  Cache.set_writeback c (fun f -> evicted := (f.Cache.file, f.Cache.lblock) :: !evicted);
  ignore (Cache.insert c ~file:1 ~lblock:0 (block 'a'));
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  (* Touch (1,0) so (1,1) becomes LRU. *)
  ignore (Cache.lookup c ~file:1 ~lblock:0);
  ignore (Cache.insert c ~file:1 ~lblock:2 (block 'c'));
  Alcotest.(check bool) "LRU victim gone" true
    (Cache.lookup c ~file:1 ~lblock:1 = None);
  Alcotest.(check bool) "recently used survives" true
    (Cache.lookup c ~file:1 ~lblock:0 <> None);
  Alcotest.(check (list (pair int int))) "clean eviction: no writeback" []
    !evicted

let test_dirty_eviction_writes_back () =
  let _, _, c = mk ~capacity:1 () in
  let written = ref [] in
  Cache.set_writeback c (fun f ->
      written := Bytes.to_string f.Cache.data :: !written);
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  Alcotest.(check (list string)) "dirty victim written back"
    [ Bytes.to_string (block 'a') ]
    !written

let test_pinned_not_evicted () =
  let _, _, c = mk ~capacity:2 () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.pin f;
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  ignore (Cache.insert c ~file:1 ~lblock:2 (block 'c'));
  Alcotest.(check bool) "pinned frame survives" true
    (Cache.lookup c ~file:1 ~lblock:0 <> None);
  Cache.unpin f;
  (* The survival check above touched the frame, so push two more blocks
     through to evict it. *)
  ignore (Cache.insert c ~file:1 ~lblock:3 (block 'd'));
  ignore (Cache.insert c ~file:1 ~lblock:4 (block 'e'));
  Alcotest.(check bool) "unpinned frame evictable" true
    (Cache.lookup c ~file:1 ~lblock:0 = None)

let test_txn_frames_protected () =
  let _, _, c = mk ~capacity:2 () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  Cache.set_txn c f 7;
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'b'));
  ignore (Cache.insert c ~file:1 ~lblock:2 (block 'c'));
  Alcotest.(check bool) "txn frame survives eviction pressure" true
    (Cache.lookup c ~file:1 ~lblock:0 <> None);
  Alcotest.(check bool) "txn frame not in dirty list" true
    (Cache.dirty_frames c () = []);
  Alcotest.(check int) "txn_frames finds it" 1 (List.length (Cache.txn_frames c 7));
  Cache.set_txn c f (-1);
  Alcotest.(check int) "released to dirty list" 1
    (List.length (Cache.dirty_frames c ()))

let test_cache_full () =
  let _, _, c = mk ~capacity:1 () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.pin f;
  Alcotest.(check bool) "all pinned -> Cache_full" true
    (match Cache.insert c ~file:1 ~lblock:1 (block 'b') with
    | exception Cache.Cache_full -> true
    | _ -> false)

let test_dirty_frames_order () =
  let clock, _, c =
    let clock = Clock.create () in
    let stats = Stats.create () in
    (clock, stats, Cache.create clock stats Config.default.Config.cpu ~capacity:8)
  in
  Cache.set_writeback c (fun _ -> ());
  let f1 = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  let f2 = Cache.insert c ~file:1 ~lblock:1 (block 'b') in
  Clock.advance clock 1.0;
  Cache.mark_dirty c f2;
  Clock.advance clock 1.0;
  Cache.mark_dirty c f1;
  Alcotest.(check (list int)) "oldest dirtied first" [ 1; 0 ]
    (List.map (fun f -> f.Cache.lblock) (Cache.dirty_frames c ()))

let test_invalidate () =
  let _, _, c = mk () in
  Cache.set_writeback c (fun _ -> Alcotest.fail "invalidate must not write");
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  Cache.mark_dirty c f;
  Cache.invalidate c f;
  Alcotest.(check bool) "gone" true (Cache.lookup c ~file:1 ~lblock:0 = None);
  Alcotest.(check int) "resident count" 0 (Cache.resident c)

let test_file_frames () =
  let _, _, c = mk ~capacity:8 () in
  Cache.set_writeback c (fun _ -> ());
  ignore (Cache.insert c ~file:1 ~lblock:0 (block 'a'));
  ignore (Cache.insert c ~file:2 ~lblock:0 (block 'b'));
  ignore (Cache.insert c ~file:1 ~lblock:1 (block 'c'));
  Alcotest.(check int) "frames of file 1" 2 (List.length (Cache.file_frames c 1));
  Alcotest.(check int) "frames of file 2" 1 (List.length (Cache.file_frames c 2))

let test_modseq_monotone () =
  let _, _, c = mk () in
  Cache.set_writeback c (fun _ -> ());
  let f = Cache.insert c ~file:1 ~lblock:0 (block 'a') in
  let s0 = Cache.modseq c in
  Cache.mark_dirty c f;
  let s1 = Cache.modseq c in
  Cache.mark_dirty c f;
  let s2 = Cache.modseq c in
  Alcotest.(check bool) "monotone" true (s0 < s1 && s1 < s2);
  Alcotest.(check int) "frame carries latest" s2 f.Cache.modseq

let prop_never_exceeds_capacity =
  Tutil.qtest "resident <= capacity"
    QCheck2.Gen.(list (pair (int_bound 3) (int_bound 10)))
    (fun keys ->
      let _, _, c = mk ~capacity:4 () in
      Cache.set_writeback c (fun _ -> ());
      List.iter
        (fun (file, lblock) -> ignore (Cache.insert c ~file ~lblock (block 'x')))
        keys;
      Cache.resident c <= 4)

let () =
  Alcotest.run "tx_buf"
    [
      ( "cache",
        [
          Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
          Alcotest.test_case "LRU order" `Quick test_lru_eviction_order;
          Alcotest.test_case "dirty writeback" `Quick
            test_dirty_eviction_writes_back;
          Alcotest.test_case "pinning" `Quick test_pinned_not_evicted;
          Alcotest.test_case "txn frames" `Quick test_txn_frames_protected;
          Alcotest.test_case "cache full" `Quick test_cache_full;
          Alcotest.test_case "dirty order" `Quick test_dirty_frames_order;
          Alcotest.test_case "invalidate" `Quick test_invalidate;
          Alcotest.test_case "file frames" `Quick test_file_frames;
          Alcotest.test_case "modseq" `Quick test_modseq_monotone;
          prop_never_exceeds_capacity;
        ] );
    ]
