test/test_inode.ml: Alcotest Array Bytes Hashtbl Inode List QCheck2 Tutil Vfs
