test/test_db.ml: Alcotest Array Btree Bytes Config Db Enc Fun Hashdb Hashtbl Lfs Libtp List Logmgr Pager Printf QCheck2 Recno Rng Stats String Tutil Vfs
