test/test_wal.ml: Alcotest Buffer Bufpool Bytes Char Clock Config Hashtbl Lfs Libtp List Logmgr Logrec Printf QCheck2 Stats String Tutil Vfs
