test/test_inode.mli:
