test/test_tpcb.ml: Alcotest Btree Bytes Config Ffs Ktxn Lfs Libtp List Pager Printf Rng Stats Tpcb Tutil Vfs Workloads
