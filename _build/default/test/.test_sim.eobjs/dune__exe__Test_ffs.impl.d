test/test_ffs.ml: Alcotest Bytes Clock Config Conformance Ffs Hashtbl List Option Printf QCheck2 Stats Tutil Vfs
