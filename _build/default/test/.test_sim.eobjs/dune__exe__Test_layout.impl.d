test/test_layout.ml: Alcotest Array Bytes Int64 Layout QCheck2 Tutil Vfs
