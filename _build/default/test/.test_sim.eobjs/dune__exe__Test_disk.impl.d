test/test_disk.ml: Alcotest Bytes Clock Config Disk List Printf QCheck2 Sched Tutil
