test/test_buf.ml: Alcotest Bytes Cache Clock Config List QCheck2 Stats Tutil
