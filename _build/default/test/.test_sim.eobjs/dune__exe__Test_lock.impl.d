test/test_lock.ml: Alcotest Clock Config List Lockmgr QCheck2 Stats Tutil
