test/test_sim.ml: Alcotest Array Bytes Clock Config Cpu Enc Float Fun List QCheck2 Rng Stats Tutil
