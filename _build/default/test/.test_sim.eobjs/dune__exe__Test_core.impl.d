test/test_core.ml: Alcotest Btree Bytes Char Clock Config Core Hashtbl Ktxn Lfs List Lockmgr Printf QCheck2 Stats Tutil Vfs
