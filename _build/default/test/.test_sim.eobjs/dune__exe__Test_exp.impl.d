test/test_exp.ml: Ablation Alcotest Config Expcommon Fig4 Fig5 Fig6 Fig7 Float List Printf Tpcb
