test/test_lfs.ml: Alcotest Array Bytes Config Conformance Hashtbl Lfs List Option Policy Printf QCheck2 Rng Stats Tutil Vfs
