test/test_ffs.mli:
