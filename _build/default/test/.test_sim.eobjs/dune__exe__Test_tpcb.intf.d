test/test_tpcb.mli:
