test/test_vfs.ml: Alcotest Bytes Dirfmt Hashtbl List Namespace Printf QCheck2 Tutil Vfs
