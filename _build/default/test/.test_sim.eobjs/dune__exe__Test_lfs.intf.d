test/test_lfs.mli:
