(* Unit and property tests for the simulation core: clock, stats, cost
   model, RNG and binary encoding. *)

let test_clock_basics () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 1.5;
  Clock.advance c 0.25;
  Alcotest.(check (float 1e-9)) "accumulates" 1.75 (Clock.now c);
  Clock.sleep_until c 1.0;
  Alcotest.(check (float 1e-9)) "sleep into the past is a no-op" 1.75
    (Clock.now c);
  Clock.sleep_until c 3.0;
  Alcotest.(check (float 1e-9)) "sleep into the future" 3.0 (Clock.now c)

let test_clock_rejects_bad_delta () =
  let c = Clock.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: bad delta -1")
    (fun () -> Clock.advance c (-1.0));
  (match Clock.advance c Float.nan with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "nan delta accepted")

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.add s "a" 4;
  Stats.add_time s "t" 0.5;
  Stats.add_time s "t" 0.25;
  Alcotest.(check int) "count" 5 (Stats.count s "a");
  Alcotest.(check (float 1e-9)) "time" 0.75 (Stats.time s "t");
  Alcotest.(check int) "missing count is 0" 0 (Stats.count s "nope");
  Stats.record_max s "m" 2.0;
  Stats.record_max s "m" 1.0;
  Alcotest.(check (float 1e-9)) "max keeps larger" 2.0 (Stats.time s "m");
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.count s "a")

let test_cpu_charges () =
  let cfg = Config.default.Config.cpu in
  let clock = Clock.create () in
  let stats = Stats.create () in
  Cpu.charge clock stats cfg Cpu.Syscall;
  Alcotest.(check (float 1e-12)) "syscall advances clock" cfg.Config.syscall_s
    (Clock.now clock);
  Alcotest.(check int) "recorded" 1 (Stats.count stats "cpu.syscall.n")

let test_user_mutex_cost () =
  let cpu = Config.default.Config.cpu in
  let without = Cpu.cost cpu Cpu.User_mutex in
  let with_tas = Cpu.cost { cpu with Config.has_test_and_set = true } Cpu.User_mutex in
  Alcotest.(check (float 1e-12)) "no TAS: two syscalls"
    (2.0 *. cpu.Config.syscall_s) without;
  Alcotest.(check bool) "TAS much cheaper" true (with_tas < without /. 10.0)

let test_config_scaled () =
  let c = Config.scaled ~factor:0.5 Config.default in
  Alcotest.(check int) "disk halved" (Config.default.Config.disk.nblocks / 2)
    c.Config.disk.nblocks;
  Alcotest.(check int) "cache halved" (Config.default.Config.fs.cache_blocks / 2)
    c.Config.fs.cache_blocks;
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Config.scaled: factor must be in (0, 1]") (fun () ->
      ignore (Config.scaled ~factor:0.0 Config.default))

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create ~seed:43 in
  let zs = List.init 100 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_shuffle_is_permutation () =
  let r = Rng.create ~seed:7 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_enc_fixed_width () =
  let b = Bytes.make 64 '\000' in
  Enc.set_u8 b 0 0xab;
  Enc.set_u16 b 1 0xbeef;
  Enc.set_u32 b 3 0xdeadbeef;
  Enc.set_i64 b 7 (-123456789L);
  Enc.set_f64 b 15 3.14159;
  Alcotest.(check int) "u8" 0xab (Enc.get_u8 b 0);
  Alcotest.(check int) "u16" 0xbeef (Enc.get_u16 b 1);
  Alcotest.(check int) "u32" 0xdeadbeef (Enc.get_u32 b 3);
  Alcotest.(check int64) "i64" (-123456789L) (Enc.get_i64 b 7);
  Alcotest.(check (float 0.0)) "f64" 3.14159 (Enc.get_f64 b 15)

let test_enc_u32_range () =
  let b = Bytes.make 8 '\000' in
  Alcotest.(check bool) "max u32 fits" true
    (Enc.set_u32 b 0 0xffffffff;
     Enc.get_u32 b 0 = 0xffffffff);
  (match Enc.set_u32 b 0 (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative accepted")

let prop_lstring_roundtrip =
  Tutil.qtest "lstring round-trip" QCheck2.Gen.(string_size (int_bound 300))
    (fun s ->
      let b = Bytes.make (Enc.lstring_size s + 8) '\000' in
      let stop = Enc.set_lstring b 4 s in
      let s', stop' = Enc.get_lstring b 4 in
      s = s' && stop = stop')

let prop_u32_roundtrip =
  Tutil.qtest "u32 round-trip" QCheck2.Gen.(int_bound 0xffffffff) (fun v ->
      let b = Bytes.make 4 '\000' in
      Enc.set_u32 b 0 v;
      Enc.get_u32 b 0 = v)

let () =
  Alcotest.run "tx_sim"
    [
      ( "clock",
        [
          Alcotest.test_case "basics" `Quick test_clock_basics;
          Alcotest.test_case "bad delta" `Quick test_clock_rejects_bad_delta;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick test_stats ]);
      ( "cpu",
        [
          Alcotest.test_case "charges" `Quick test_cpu_charges;
          Alcotest.test_case "user mutex" `Quick test_user_mutex_cost;
        ] );
      ("config", [ Alcotest.test_case "scaled" `Quick test_config_scaled ]);
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_is_permutation;
        ] );
      ( "enc",
        [
          Alcotest.test_case "fixed width" `Quick test_enc_fixed_width;
          Alcotest.test_case "u32 range" `Quick test_enc_u32_range;
          prop_lstring_roundtrip;
          prop_u32_roundtrip;
        ] );
    ]
