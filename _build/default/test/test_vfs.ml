(* Tests for the VFS layer: directory encoding and the generic namespace,
   exercised over a toy in-memory inode store. *)

let entry name inum kind = { Dirfmt.name; inum; kind }

let test_dirfmt_roundtrip () =
  let es =
    [ entry "a" 2 Vfs.File; entry "subdir" 3 Vfs.Dir; entry "b.txt" 9 Vfs.File ]
  in
  let decoded = Dirfmt.decode (Dirfmt.encode es) in
  Alcotest.(check int) "count" 3 (List.length decoded);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "name" a.Dirfmt.name b.Dirfmt.name;
      Alcotest.(check int) "inum" a.Dirfmt.inum b.Dirfmt.inum;
      Alcotest.(check bool) "kind" true (a.Dirfmt.kind = b.Dirfmt.kind))
    es decoded

let test_dirfmt_empty () =
  Alcotest.(check int) "empty" 0 (List.length (Dirfmt.decode (Dirfmt.encode [])))

let test_dirfmt_corrupt () =
  Alcotest.(check bool) "truncated rejected" true
    (match Dirfmt.decode (Bytes.make 3 '\255') with
    | exception Vfs.Error (Vfs.Invalid, _) -> true
    | _ -> false)

let prop_dirfmt_roundtrip =
  let name_gen =
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 20))
  in
  Tutil.qtest "dirfmt round-trip"
    QCheck2.Gen.(list (pair name_gen (int_bound 100000)))
    (fun pairs ->
      let es = List.map (fun (n, i) -> entry n i Vfs.File) pairs in
      let decoded = Dirfmt.decode (Dirfmt.encode es) in
      List.map (fun e -> (e.Dirfmt.name, e.Dirfmt.inum)) decoded = pairs)

(* A trivial in-memory store to exercise the namespace functor. *)
module Memstore = struct
  type file = { mutable data : bytes; kind : Vfs.file_kind }

  type t = {
    files : (int, file) Hashtbl.t;
    mutable next : int;
  }

  let make () =
    let t = { files = Hashtbl.create 8; next = 2 } in
    Hashtbl.add t.files 1 { data = Bytes.empty; kind = Vfs.Dir };
    t

  let root _ = 1

  let find t inum =
    match Hashtbl.find_opt t.files inum with
    | Some f -> f
    | None -> Vfs.error Not_found "inode %d" inum

  let read t inum ~off ~len =
    let f = find t inum in
    let len = max 0 (min len (Bytes.length f.data - off)) in
    Bytes.sub f.data off len

  let write t inum ~off data =
    let f = find t inum in
    let need = off + Bytes.length data in
    if need > Bytes.length f.data then begin
      let b = Bytes.make need '\000' in
      Bytes.blit f.data 0 b 0 (Bytes.length f.data);
      f.data <- b
    end;
    Bytes.blit data 0 f.data off (Bytes.length data)

  let truncate t inum ~len =
    let f = find t inum in
    let b = Bytes.make len '\000' in
    Bytes.blit f.data 0 b 0 (min len (Bytes.length f.data));
    f.data <- b

  let size t inum = Bytes.length (find t inum).data

  let alloc_inode t ~kind =
    let inum = t.next in
    t.next <- inum + 1;
    Hashtbl.add t.files inum { data = Bytes.empty; kind };
    inum

  let free_inode t inum = Hashtbl.remove t.files inum
end

module Ns = Namespace.Make (Memstore)

let test_ns_create_lookup () =
  let t = Memstore.make () in
  let inum = Ns.create t "/hello" ~kind:Vfs.File in
  Alcotest.(check bool) "lookup finds it" true
    (Ns.lookup t "/hello" = Some (inum, Vfs.File));
  Alcotest.(check bool) "root resolves" true (Ns.lookup t "/" = Some (1, Vfs.Dir));
  Alcotest.(check bool) "missing" true (Ns.lookup t "/nope" = None)

let test_ns_nested () =
  let t = Memstore.make () in
  let d = Ns.create t "/a" ~kind:Vfs.Dir in
  let _ = Ns.create t "/a/b" ~kind:Vfs.Dir in
  let f = Ns.create t "/a/b/c" ~kind:Vfs.File in
  Alcotest.(check bool) "deep lookup" true
    (Ns.lookup t "/a/b/c" = Some (f, Vfs.File));
  Alcotest.(check bool) "intermediate" true (Ns.lookup t "/a" = Some (d, Vfs.Dir));
  Alcotest.(check (list string)) "readdir /a" [ "b" ]
    (List.map fst (Ns.readdir t "/a"))

let test_ns_errors () =
  let t = Memstore.make () in
  let _ = Ns.create t "/f" ~kind:Vfs.File in
  let expect_error code thunk =
    match thunk () with
    | exception Vfs.Error (c, _) -> c = code
    | _ -> false
  in
  Alcotest.(check bool) "duplicate" true
    (expect_error Vfs.Exists (fun () -> Ns.create t "/f" ~kind:Vfs.File));
  Alcotest.(check bool) "missing parent" true
    (expect_error Vfs.Not_found (fun () -> Ns.create t "/no/x" ~kind:Vfs.File));
  Alcotest.(check bool) "file as parent" true
    (expect_error Vfs.Not_dir (fun () -> Ns.create t "/f/x" ~kind:Vfs.File));
  Alcotest.(check bool) "remove missing" true
    (expect_error Vfs.Not_found (fun () -> Ns.remove t "/ghost"));
  Alcotest.(check bool) "relative path" true
    (expect_error Vfs.Invalid (fun () -> ignore (Ns.lookup t "rel/path")));
  Alcotest.(check bool) "readdir on file" true
    (expect_error Vfs.Not_dir (fun () -> ignore (Ns.readdir t "/f")))

let test_ns_remove () =
  let t = Memstore.make () in
  let _ = Ns.create t "/d" ~kind:Vfs.Dir in
  let _ = Ns.create t "/d/f" ~kind:Vfs.File in
  Alcotest.(check bool) "non-empty dir protected" true
    (match Ns.remove t "/d" with
    | exception Vfs.Error (Vfs.Invalid, _) -> true
    | _ -> false);
  Ns.remove t "/d/f";
  Ns.remove t "/d";
  Alcotest.(check bool) "gone" true (Ns.lookup t "/d" = None)

let test_ns_many_entries () =
  let t = Memstore.make () in
  for i = 0 to 99 do
    ignore (Ns.create t (Printf.sprintf "/file%03d" i) ~kind:Vfs.File)
  done;
  Alcotest.(check int) "100 entries" 100 (List.length (Ns.readdir t "/"));
  for i = 0 to 99 do
    Alcotest.(check bool) "each resolvable" true
      (Ns.lookup t (Printf.sprintf "/file%03d" i) <> None)
  done

let () =
  Alcotest.run "tx_vfs"
    [
      ( "dirfmt",
        [
          Alcotest.test_case "roundtrip" `Quick test_dirfmt_roundtrip;
          Alcotest.test_case "empty" `Quick test_dirfmt_empty;
          Alcotest.test_case "corrupt" `Quick test_dirfmt_corrupt;
          prop_dirfmt_roundtrip;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "create/lookup" `Quick test_ns_create_lookup;
          Alcotest.test_case "nested" `Quick test_ns_nested;
          Alcotest.test_case "errors" `Quick test_ns_errors;
          Alcotest.test_case "remove" `Quick test_ns_remove;
          Alcotest.test_case "many entries" `Quick test_ns_many_entries;
        ] );
    ]
