(* Tests for the read-optimized file system: the shared conformance suite
   plus FFS-specific behaviour — stable block addresses, contiguous layout,
   the elevator syncer, and fsck. *)

let make_harness () =
  let m = Tutil.machine () in
  let fs = ref (Ffs.format m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg) in
  {
    Conformance.vfs = (fun () -> Ffs.vfs !fs);
    sync_remount =
      (fun () ->
        Ffs.sync !fs;
        Ffs.crash !fs;
        fs := Ffs.mount m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg);
  }

let fresh () =
  let m = Tutil.machine () in
  (m, Ffs.format m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg)

let test_sequential_layout_is_contiguous () =
  let _, fs = fresh () in
  let v = Ffs.vfs fs in
  let bs = v.Vfs.block_size in
  let fd = v.Vfs.create "/seq" in
  for i = 0 to 63 do
    v.Vfs.write fd ~off:(i * bs) (Tutil.payload i bs)
  done;
  Ffs.sync fs;
  Alcotest.(check (float 0.01)) "fully contiguous" 1.0 (Ffs.contiguity fs "/seq")

let test_update_in_place_preserves_layout () =
  let m, fs = fresh () in
  let v = Ffs.vfs fs in
  let bs = v.Vfs.block_size in
  let fd = v.Vfs.create "/db" in
  for i = 0 to 63 do
    v.Vfs.write fd ~off:(i * bs) (Tutil.payload i bs)
  done;
  Ffs.sync fs;
  let writes_before = Stats.count m.Tutil.stats "ffs.blocks_allocated" in
  (* Random in-place updates. *)
  for r = 0 to 199 do
    let i = r * 37 mod 64 in
    v.Vfs.write fd ~off:(i * bs) (Tutil.payload (1000 + r) bs)
  done;
  Ffs.sync fs;
  Alcotest.(check int) "no new allocations for overwrites" writes_before
    (Stats.count m.Tutil.stats "ffs.blocks_allocated");
  Alcotest.(check (float 0.01)) "layout unchanged" 1.0 (Ffs.contiguity fs "/db")

let test_syncer_flushes_delayed_writes () =
  let m, fs = fresh () in
  let v = Ffs.vfs fs in
  let fd = v.Vfs.create "/delayed" in
  v.Vfs.write fd ~off:0 (Tutil.payload 3 8192);
  let before = Stats.count m.Tutil.stats "ffs.inplace_writes" in
  (* Push simulated time past the syncer interval; the next operation
     triggers the flush. *)
  Clock.advance m.Tutil.clock 31.0;
  ignore (v.Vfs.exists "/delayed");
  ignore (v.Vfs.open_file "/delayed");
  Alcotest.(check bool) "syncer wrote the dirty pages" true
    (Stats.count m.Tutil.stats "ffs.inplace_writes" > before)

let test_fsck_clean () =
  let _, fs = fresh () in
  let v = Ffs.vfs fs in
  let fd = v.Vfs.create "/a" in
  v.Vfs.write fd ~off:0 (Tutil.payload 1 20000);
  Ffs.sync fs;
  let r = Ffs.fsck fs in
  Alcotest.(check int) "no leaks" 0 r.Ffs.leaked_blocks;
  Alcotest.(check int) "no cross allocation" 0 r.Ffs.cross_allocated

let test_fsck_fixes_bitmap_after_crash () =
  let m, fs = fresh () in
  let v = Ffs.vfs fs in
  (* Namespace durable first. *)
  let fd = v.Vfs.create "/a" in
  Ffs.sync fs;
  (* fsync writes the file's data blocks and inode (with fresh block
     pointers) but not the allocation bitmap; a crash here leaves blocks
     referenced by an inode yet marked free on disk. *)
  v.Vfs.write fd ~off:0 (Tutil.payload 1 40960);
  v.Vfs.fsync fd;
  Ffs.crash fs;
  let fs = Ffs.mount m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let r = Ffs.fsck fs in
  Alcotest.(check bool) "bitmap repaired" true r.Ffs.fixed;
  Alcotest.(check int) "no cross allocation" 0 r.Ffs.cross_allocated;
  (* After the repair, the image is clean and the data is intact. *)
  let r2 = Ffs.fsck fs in
  Alcotest.(check bool) "second pass clean" false r2.Ffs.fixed;
  let v = Ffs.vfs fs in
  let fd = v.Vfs.open_file "/a" in
  Tutil.check_bytes "data intact" (Tutil.payload 1 40960)
    (v.Vfs.read fd ~off:0 ~len:40960)

let test_free_blocks_accounting () =
  let _, fs = fresh () in
  let v = Ffs.vfs fs in
  let before = Ffs.free_blocks fs in
  let fd = v.Vfs.create "/x" in
  v.Vfs.write fd ~off:0 (Tutil.payload 1 (10 * v.Vfs.block_size));
  Ffs.sync fs;
  let after = Ffs.free_blocks fs in
  Alcotest.(check bool) "10+ blocks consumed" true (before - after >= 10);
  v.Vfs.remove "/x";
  Ffs.sync fs;
  Alcotest.(check bool) "blocks released" true (Ffs.free_blocks fs > after)

let test_protection_unsupported () =
  let _, fs = fresh () in
  let v = Ffs.vfs fs in
  ignore (v.Vfs.create "/f");
  Alcotest.(check bool) "set_protected rejected" true
    (match v.Vfs.set_protected "/f" true with
    | exception Vfs.Error (Vfs.Not_supported, _) -> true
    | _ -> false)

let test_no_space () =
  let cfg = Tutil.small_config () in
  let cfg = { cfg with Config.disk = { cfg.Config.disk with nblocks = 768 } } in
  let m = Tutil.machine ~cfg () in
  let fs = Ffs.format m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg in
  let v = Ffs.vfs fs in
  let fd = v.Vfs.create "/big" in
  Alcotest.(check bool) "fills up" true
    (match
       for i = 0 to 2000 do
         v.Vfs.write fd ~off:(i * v.Vfs.block_size) (Tutil.payload i v.Vfs.block_size);
         if i mod 16 = 0 then Ffs.sync fs
       done
     with
    | exception Vfs.Error (Vfs.No_space, _) -> true
    | () -> false)

(* Model-based property test mirroring the LFS one: random
   create/write/truncate/remove/sync/remount sequences vs an in-memory
   map. Only synced state survives a remount. *)
let prop_model =
  let op_gen =
    QCheck2.Gen.(
      frequency
        [
          (6, map2 (fun f (off, len) -> `Write (f, off, len))
                (int_bound 4) (pair (int_bound 3000) (int_range 1 2000)));
          (2, map (fun f -> `Remove f) (int_bound 4));
          (2, map (fun f -> `Truncate f) (int_bound 4));
          (1, return `Sync);
          (1, return `Remount);
        ])
  in
  Tutil.qtest ~count:25 "model equivalence" QCheck2.Gen.(list_size (int_range 1 40) op_gen)
    (fun ops ->
      let m = Tutil.machine () in
      let fs = ref (Ffs.format m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg) in
      let model : (string, bytes) Hashtbl.t = Hashtbl.create 8 in
      let synced = ref [] in
      let path i = Printf.sprintf "/file%d" i in
      let counter = ref 0 in
      List.iter
        (fun op ->
          let v = Ffs.vfs !fs in
          incr counter;
          match op with
          | `Write (i, off, len) ->
            let p = path i in
            let data = Tutil.payload !counter len in
            let fd = if v.Vfs.exists p then v.Vfs.open_file p else v.Vfs.create p in
            v.Vfs.write fd ~off data;
            let old = Option.value (Hashtbl.find_opt model p) ~default:Bytes.empty in
            let size = max (Bytes.length old) (off + len) in
            let b = Bytes.make size '\000' in
            Bytes.blit old 0 b 0 (Bytes.length old);
            Bytes.blit data 0 b off len;
            Hashtbl.replace model p b
          | `Remove i ->
            let p = path i in
            if v.Vfs.exists p then begin
              v.Vfs.remove p;
              Hashtbl.remove model p
            end
          | `Truncate i ->
            let p = path i in
            if v.Vfs.exists p then begin
              let n = v.Vfs.size (v.Vfs.open_file p) / 2 in
              v.Vfs.truncate (v.Vfs.open_file p) n;
              let old = Hashtbl.find model p in
              Hashtbl.replace model p (Bytes.sub old 0 (min n (Bytes.length old)))
            end
          | `Sync ->
            v.Vfs.sync ();
            synced := Hashtbl.fold (fun k d acc -> (k, Bytes.copy d) :: acc) model []
          | `Remount ->
            Ffs.crash !fs;
            fs := Ffs.mount m.Tutil.disk m.Tutil.clock m.Tutil.stats m.Tutil.cfg;
            ignore (Ffs.fsck !fs);
            Hashtbl.reset model;
            List.iter (fun (k, d) -> Hashtbl.replace model k d) !synced)
        ops;
      let v = Ffs.vfs !fs in
      Hashtbl.fold
        (fun p data ok ->
          ok
          && v.Vfs.exists p
          &&
          let fd = v.Vfs.open_file p in
          v.Vfs.size fd = Bytes.length data
          && Bytes.equal (v.Vfs.read fd ~off:0 ~len:(Bytes.length data)) data)
        model true)

let () =
  Alcotest.run "tx_ffs"
    [
      ("conformance", Conformance.cases make_harness);
      ( "layout",
        [
          Alcotest.test_case "sequential contiguity" `Quick
            test_sequential_layout_is_contiguous;
          Alcotest.test_case "update in place" `Quick
            test_update_in_place_preserves_layout;
          Alcotest.test_case "free block accounting" `Quick
            test_free_blocks_accounting;
        ] );
      ( "syncer",
        [ Alcotest.test_case "delayed writes" `Quick test_syncer_flushes_delayed_writes ] );
      ( "fsck",
        [
          Alcotest.test_case "clean image" `Quick test_fsck_clean;
          Alcotest.test_case "repairs bitmap" `Quick test_fsck_fixes_bitmap_after_crash;
        ] );
      ( "misc",
        [
          Alcotest.test_case "protection unsupported" `Quick
            test_protection_unsupported;
          Alcotest.test_case "no space" `Quick test_no_space;
        ] );
      ("model", [ prop_model ]);
    ]
