(* Tests for the lock manager: compatibility matrix, upgrades, chains,
   deadlock detection, and a property test that the table is empty after
   all transactions release. *)

let mk () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  (stats, Lockmgr.create clock stats Config.default.Config.cpu)

let obj f p = (f, p)

let test_compatibility_matrix () =
  let _, lm = mk () in
  let o = obj 1 0 in
  (* S + S compatible *)
  Alcotest.(check bool) "S grant" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "S+S" true (Lockmgr.acquire lm ~txn:2 o Shared = `Granted);
  (* S + X conflicts *)
  (match Lockmgr.acquire lm ~txn:3 o Exclusive with
  | `Would_block blockers ->
    Alcotest.(check (list int)) "blockers" [ 1; 2 ] (List.sort compare blockers)
  | _ -> Alcotest.fail "X over S should block");
  Lockmgr.release_all lm ~txn:1;
  Lockmgr.release_all lm ~txn:2;
  Lockmgr.cancel_wait lm ~txn:3;
  (* X + anything conflicts *)
  Alcotest.(check bool) "X grant" true
    (Lockmgr.acquire lm ~txn:3 o Exclusive = `Granted);
  Alcotest.(check bool) "S over X blocks" true
    (match Lockmgr.acquire lm ~txn:4 o Shared with
    | `Would_block _ -> true
    | _ -> false);
  Alcotest.(check bool) "X over X blocks" true
    (match Lockmgr.acquire lm ~txn:5 o Exclusive with
    | `Would_block _ -> true
    | _ -> false)

let test_reentrant_and_upgrade () =
  let _, lm = mk () in
  let o = obj 1 1 in
  Alcotest.(check bool) "S" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "S again" true (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "upgrade to X (sole holder)" true
    (Lockmgr.acquire lm ~txn:1 o Exclusive = `Granted);
  Alcotest.(check bool) "X then S is no-op" true
    (Lockmgr.acquire lm ~txn:1 o Shared = `Granted);
  Alcotest.(check bool) "held at X" true (Lockmgr.holds lm ~txn:1 o = Some Exclusive);
  (* Upgrade blocked when another reader exists. *)
  let o2 = obj 1 2 in
  ignore (Lockmgr.acquire lm ~txn:1 o2 Shared);
  ignore (Lockmgr.acquire lm ~txn:2 o2 Shared);
  Alcotest.(check bool) "upgrade blocks with two readers" true
    (match Lockmgr.acquire lm ~txn:1 o2 Exclusive with
    | `Would_block [ 2 ] -> true
    | _ -> false)

let test_chain_traversal () =
  let _, lm = mk () in
  ignore (Lockmgr.acquire lm ~txn:7 (obj 1 0) Shared);
  ignore (Lockmgr.acquire lm ~txn:7 (obj 1 1) Exclusive);
  ignore (Lockmgr.acquire lm ~txn:7 (obj 2 5) Shared);
  Alcotest.(check int) "chain length" 3 (List.length (Lockmgr.chain lm ~txn:7));
  Alcotest.(check int) "three objects locked" 3 (Lockmgr.locked_objects lm);
  Lockmgr.release_all lm ~txn:7;
  Alcotest.(check int) "chain empty" 0 (List.length (Lockmgr.chain lm ~txn:7));
  Alcotest.(check int) "table empty" 0 (Lockmgr.locked_objects lm)

let test_deadlock_detection () =
  let stats, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  (* 1 waits for b (held by 2)... *)
  Alcotest.(check bool) "1 blocks on b" true
    (match Lockmgr.acquire lm ~txn:1 b Exclusive with
    | `Would_block _ -> true
    | _ -> false);
  (* ...and 2 requesting a would close the cycle. *)
  Alcotest.(check bool) "2 on a deadlocks" true
    (Lockmgr.acquire lm ~txn:2 a Exclusive = `Deadlock);
  Alcotest.(check int) "counted" 1 (Stats.count stats "lock.deadlocks");
  (* Victim aborts; the survivor can proceed. *)
  Lockmgr.release_all lm ~txn:2;
  Alcotest.(check bool) "1 retries and wins" true
    (Lockmgr.acquire lm ~txn:1 b Exclusive = `Granted)

let test_three_party_deadlock () =
  let _, lm = mk () in
  let a = obj 1 0 and b = obj 1 1 and c = obj 1 2 in
  ignore (Lockmgr.acquire lm ~txn:1 a Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 b Exclusive);
  ignore (Lockmgr.acquire lm ~txn:3 c Exclusive);
  ignore (Lockmgr.acquire lm ~txn:1 b Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 c Exclusive);
  Alcotest.(check bool) "closing the 3-cycle detected" true
    (Lockmgr.acquire lm ~txn:3 a Exclusive = `Deadlock)

let test_early_release () =
  let _, lm = mk () in
  let o = obj 9 9 in
  ignore (Lockmgr.acquire lm ~txn:1 o Exclusive);
  Lockmgr.release lm ~txn:1 o;
  Alcotest.(check bool) "free for others" true
    (Lockmgr.acquire lm ~txn:2 o Exclusive = `Granted)

let test_wait_cleared_on_grant () =
  let _, lm = mk () in
  let o = obj 1 0 in
  ignore (Lockmgr.acquire lm ~txn:1 o Exclusive);
  ignore (Lockmgr.acquire lm ~txn:2 o Exclusive);
  Alcotest.(check bool) "2 waiting" true (Lockmgr.waiting lm ~txn:2);
  Lockmgr.release_all lm ~txn:1;
  Alcotest.(check bool) "retry wins" true (Lockmgr.acquire lm ~txn:2 o Exclusive = `Granted);
  Alcotest.(check bool) "no longer waiting" false (Lockmgr.waiting lm ~txn:2)

let prop_release_all_empties =
  Tutil.qtest "release_all leaves no residue"
    QCheck2.Gen.(list (tup3 (int_range 1 4) (int_bound 8) bool))
    (fun reqs ->
      let _, lm = mk () in
      List.iter
        (fun (txn, page, excl) ->
          let mode = if excl then Lockmgr.Exclusive else Lockmgr.Shared in
          ignore (Lockmgr.acquire lm ~txn (0, page) mode))
        reqs;
      List.iter (fun txn -> Lockmgr.release_all lm ~txn) [ 1; 2; 3; 4 ];
      Lockmgr.locked_objects lm = 0)

let prop_shared_never_conflicts =
  Tutil.qtest "readers never conflict"
    QCheck2.Gen.(list (pair (int_range 1 6) (int_bound 10)))
    (fun reqs ->
      let _, lm = mk () in
      List.for_all
        (fun (txn, page) -> Lockmgr.acquire lm ~txn (0, page) Shared = `Granted)
        reqs)

let () =
  Alcotest.run "tx_lock"
    [
      ( "locks",
        [
          Alcotest.test_case "compatibility" `Quick test_compatibility_matrix;
          Alcotest.test_case "reentrancy/upgrade" `Quick test_reentrant_and_upgrade;
          Alcotest.test_case "chains" `Quick test_chain_traversal;
          Alcotest.test_case "deadlock" `Quick test_deadlock_detection;
          Alcotest.test_case "3-party deadlock" `Quick test_three_party_deadlock;
          Alcotest.test_case "early release" `Quick test_early_release;
          Alcotest.test_case "wait cleared" `Quick test_wait_cleared_on_grant;
          prop_release_all_empties;
          prop_shared_never_conflicts;
        ] );
    ]
