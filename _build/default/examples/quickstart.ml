(* Quickstart: boot a simulated machine with a log-structured file system
   and the embedded transaction manager, store some records
   transactionally, and survive a crash.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A fresh machine: simulated clock + RZ55-like disk + LFS + the
     embedded (kernel) transaction manager. *)
  let sys = Core.boot () in

  (* Transaction protection is a file attribute; Core.btree creates the
     file, protects it, and opens a B-tree bound to our transaction. *)
  Core.with_txn sys (fun txn ->
      let accounts = Core.btree sys txn ~path:"/bank/accounts" in
      Btree.insert accounts "alice" "100";
      Btree.insert accounts "bob" "250");
  print_endline "committed: alice=100 bob=250";

  (* A transaction that raises is aborted: LFS's no-overwrite policy means
     the before-images are still on disk, so abort is just dropping the
     dirty buffers. *)
  (try
     Core.with_txn sys (fun txn ->
         let accounts = Core.btree sys txn ~path:"/bank/accounts" in
         Btree.insert accounts "alice" "0";
         Btree.insert accounts "mallory" "1000000";
         failwith "fraud detected")
   with Failure msg -> Printf.printf "aborted: %s\n" msg);

  (* Committed state survives a power failure with no separate log:
     recovery rolls the log-structured segments forward. *)
  let sys = Core.reboot sys in
  Core.with_txn sys (fun txn ->
      let accounts = Core.btree sys txn ~path:"/bank/accounts" in
      Printf.printf "after crash+recovery: alice=%s bob=%s mallory=%s\n"
        (Option.value (Btree.find accounts "alice") ~default:"?")
        (Option.value (Btree.find accounts "bob") ~default:"?")
        (Option.value (Btree.find accounts "mallory") ~default:"(absent)"));

  Printf.printf "simulated time elapsed: %.3fs\n" (Core.elapsed sys)
