(* Version store: the paper's closing motivation is that "products such as
   source code control systems [and] software development environments
   ... could take advantage of this additional file system functionality."

   This example builds a toy source-control store where a check-in updates
   several ordinary transaction-protected files atomically: the content
   B-tree (path -> contents), a metadata B-tree (path -> revision), and a
   changelog. A failed check-in leaves the repository untouched — without
   the application implementing any rollback of its own.

   Run with: dune exec examples/version_store.exe *)

type repo = { sys : Core.system }

let checkin repo ~message files =
  Core.with_txn repo.sys (fun txn ->
      let contents = Core.btree repo.sys txn ~path:"/repo/contents" in
      let meta = Core.btree repo.sys txn ~path:"/repo/meta" in
      let log = Core.recno repo.sys txn ~path:"/repo/changelog" ~reclen:80 in
      List.iter
        (fun (path, data) ->
          if String.length data = 0 then
            failwith (path ^ ": refusing to check in an empty file");
          let rev =
            match Btree.find meta path with
            | Some r -> int_of_string r + 1
            | None -> 1
          in
          Btree.insert contents path data;
          Btree.insert meta path (string_of_int rev))
        files;
      let entry =
        Printf.sprintf "%-20s (%d files)" message (List.length files)
      in
      ignore
        (Recno.append log
           (Bytes.of_string (entry ^ String.make (80 - String.length entry) ' '))))

let cat repo path =
  Core.with_txn repo.sys (fun txn ->
      let contents = Core.btree repo.sys txn ~path:"/repo/contents" in
      let meta = Core.btree repo.sys txn ~path:"/repo/meta" in
      match (Btree.find contents path, Btree.find meta path) with
      | Some data, Some rev -> Printf.sprintf "%s (r%s): %s" path rev data
      | _ -> path ^ ": not in repository")

let () =
  let repo = { sys = Core.boot ~config:(Config.scaled ~factor:0.1 Config.default) () } in

  checkin repo ~message:"initial import"
    [
      ("src/main.ml", "let () = print_endline \"hello\"");
      ("src/util.ml", "let twice x = x * 2");
      ("Makefile", "all:\n\tdune build");
    ];
  print_endline (cat repo "src/main.ml");

  checkin repo ~message:"fix greeting"
    [ ("src/main.ml", "let () = print_endline \"hello, world\"") ];
  print_endline (cat repo "src/main.ml");

  (* A broken check-in: the second file is empty, so the whole check-in
     aborts — including the first file's update and the changelog entry. *)
  (try
     checkin repo ~message:"broken refactor"
       [ ("src/util.ml", "let twice x = x + x"); ("src/new.ml", "") ]
   with Failure msg -> Printf.printf "check-in rejected: %s\n" msg);
  print_endline (cat repo "src/util.ml");

  (* The repository survives a crash with full history. *)
  let repo = { sys = Core.reboot repo.sys } in
  print_endline "after crash + recovery:";
  print_endline (cat repo "src/main.ml");
  print_endline (cat repo "src/util.ml");
  Core.with_txn repo.sys (fun txn ->
      let log = Core.recno repo.sys txn ~path:"/repo/changelog" ~reclen:80 in
      Printf.printf "changelog (%d entries):\n" (Recno.count log);
      Recno.iter log (fun i data ->
          Printf.printf "  %d: %s\n" (i + 1) (String.trim (Bytes.to_string data));
          true))
