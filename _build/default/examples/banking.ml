(* Banking: a miniature TPC-B-style bank on the embedded transaction
   manager. Transfers touch two account records and an audit trail
   atomically; an invariant check shows that no money is created or
   destroyed across commits, aborts, and a crash.

   Run with: dune exec examples/banking.exe *)

let n_accounts = 500
let initial_balance = 1_000

let key i = Printf.sprintf "acct%05d" i

let balance bt i =
  match Btree.find bt (key i) with
  | Some v -> int_of_string v
  | None -> failwith "missing account"

let transfer sys ~from_ ~to_ ~amount =
  Core.with_txn sys (fun txn ->
      let accounts = Core.btree sys txn ~path:"/bank/accounts" in
      let audit = Core.recno sys txn ~path:"/bank/audit" ~reclen:64 in
      let src = balance accounts from_ in
      if src < amount then failwith "insufficient funds";
      Btree.insert accounts (key from_) (string_of_int (src - amount));
      Btree.insert accounts (key to_) (string_of_int (balance accounts to_ + amount));
      let entry = Printf.sprintf "%05d -> %05d : %d" from_ to_ amount in
      ignore
        (Recno.append audit
           (Bytes.of_string (entry ^ String.make (64 - String.length entry) ' '))))

let total_money sys =
  Core.with_txn sys (fun txn ->
      let accounts = Core.btree sys txn ~path:"/bank/accounts" in
      let total = ref 0 in
      Btree.iter accounts (fun _ v ->
          total := !total + int_of_string v;
          true);
      !total)

let () =
  let sys = Core.boot ~config:(Config.scaled ~factor:0.1 Config.default) () in
  let rng = Rng.create ~seed:2026 in

  (* Open the bank. *)
  Core.with_txn sys (fun txn ->
      let accounts = Core.btree sys txn ~path:"/bank/accounts" in
      for i = 0 to n_accounts - 1 do
        Btree.insert accounts (key i) (string_of_int initial_balance)
      done);
  Printf.printf "opened %d accounts with %d each; total=%d\n" n_accounts
    initial_balance (total_money sys);

  (* A day of trading: random transfers, some of which bounce. *)
  let committed = ref 0 and bounced = ref 0 in
  for _ = 1 to 2_000 do
    let from_ = Rng.int rng n_accounts and to_ = Rng.int rng n_accounts in
    let amount = 1 + Rng.int rng 2_000 in
    match transfer sys ~from_ ~to_ ~amount with
    | () -> incr committed
    | exception Failure _ -> incr bounced
  done;
  Printf.printf "transfers: %d committed, %d bounced (insufficient funds)\n"
    !committed !bounced;
  assert (total_money sys = n_accounts * initial_balance);
  print_endline "invariant holds: total money unchanged";

  (* Power failure in the middle of a transfer. *)
  let txn = Ktxn.txn_begin sys.Core.ktxn in
  let accounts = Core.btree sys txn ~path:"/bank/accounts" in
  Btree.insert accounts (key 0) "999999999";
  print_endline "crash with a transfer in flight...";
  let sys = Core.reboot sys in
  assert (total_money sys = n_accounts * initial_balance);
  Printf.printf
    "recovered: in-flight transfer vanished, total still %d; audit has %d entries\n"
    (total_money sys)
    (Core.with_txn sys (fun txn ->
         Recno.count (Core.recno sys txn ~path:"/bank/audit" ~reclen:64)))
