examples/version_store.ml: Btree Bytes Config Core List Printf Recno String
