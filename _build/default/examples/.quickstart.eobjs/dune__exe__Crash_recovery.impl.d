examples/crash_recovery.ml: Bytes Clock Config Core Disk Ktxn Lfs Libtp List Logmgr Printf Stats String Vfs
