examples/quickstart.mli:
