examples/banking.mli:
