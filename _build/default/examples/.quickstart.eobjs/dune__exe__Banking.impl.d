examples/banking.ml: Btree Bytes Config Core Ktxn Printf Recno Rng String
