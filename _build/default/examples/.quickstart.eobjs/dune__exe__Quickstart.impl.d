examples/quickstart.ml: Btree Core Option Printf
